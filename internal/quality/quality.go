// Package quality reports model quality (perplexity / accuracy) under bit
// assignments, on two paths:
//
//   - Reference path: real measurements on the internal/nn transformer —
//     pseudo-perplexity (exp of cross-entropy on a self-generated corpus)
//     and agreement accuracy (greedy-prediction match rate against the
//     full-precision model). Used for Fig 4, Table 1, and Table 6.
//
//   - Calibrated path: for the 13b–176b models that cannot be
//     instantiated, perplexity is anchored to the paper's published FP16
//     numbers and the per-bit deltas its tables imply, with the variance
//     indicator ω interpolating between anchors for mixed assignments
//     (DESIGN.md §3). Used for Tables 4, 5, 7.
package quality

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/indicator"
	"repro/internal/nn"
	"repro/internal/quant"
)

// ReferenceResult is a real measurement on the reference transformer.
type ReferenceResult struct {
	PPL      float64 // exp(mean CE) on the evaluation corpus
	Accuracy float64 // greedy agreement with the FP16 model, in [0,1]
}

// Reference bundles a model with its evaluation corpus.
type Reference struct {
	Model  *nn.Model
	corpus [][]int
	// FP16 greedy predictions per corpus sequence position, for agreement
	// accuracy.
	teacher [][]int
}

// NewReference builds a reference evaluator: the model generates its own
// low-temperature corpus (the stand-in for WikiText2/PTB/C4) and records
// its full-precision greedy predictions.
func NewReference(cfg nn.Config, seed int64, sequences, tokensPer int) (*Reference, error) {
	if sequences < 1 || tokensPer < 4 {
		return nil, fmt.Errorf("quality: need ≥1 sequences of ≥4 tokens")
	}
	m, err := nn.New(cfg, seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	r := &Reference{Model: m}
	for i := 0; i < sequences; i++ {
		prompt := []int{rng.Intn(cfg.Vocab), rng.Intn(cfg.Vocab)}
		seq, err := m.Generate(prompt, tokensPer, 0.7, rng)
		if err != nil {
			return nil, err
		}
		r.corpus = append(r.corpus, seq)
	}
	for _, seq := range r.corpus {
		preds, err := greedyPreds(m, seq)
		if err != nil {
			return nil, err
		}
		r.teacher = append(r.teacher, preds)
	}
	return r, nil
}

// NewTrainedReference builds a reference evaluator around a model TRAINED
// on a synthetic Markov corpus (pure-Go backprop, internal/nn): every
// training step sees fresh chain samples, and held-out chain sequences
// form the evaluation corpus. Quantization damage measured here reflects
// genuinely learned structure — the closest this substrate gets to the
// paper's real checkpoints.
func NewTrainedReference(cfg nn.Config, seed int64, steps int) (*Reference, error) {
	if steps < 1 {
		return nil, fmt.Errorf("quality: need ≥1 training steps")
	}
	m, err := nn.New(cfg, seed)
	if err != nil {
		return nil, err
	}
	tr, err := nn.NewTrainer(m, 3e-3)
	if err != nil {
		return nil, err
	}
	const batch = 8
	seqLen := cfg.MaxSeq / 2
	if seqLen < 8 {
		seqLen = 8
	}
	corpus := nn.MarkovCorpus(cfg.Vocab, steps*batch+6, seqLen, seed+1)
	for s := 0; s < steps; s++ {
		if _, err := tr.Step(corpus[s*batch : (s+1)*batch]); err != nil {
			return nil, err
		}
	}
	r := &Reference{Model: m, corpus: corpus[steps*batch:]}
	for _, seq := range r.corpus {
		preds, err := greedyPreds(m, seq)
		if err != nil {
			return nil, err
		}
		r.teacher = append(r.teacher, preds)
	}
	return r, nil
}

func greedyPreds(m *nn.Model, seq []int) ([]int, error) {
	logits, err := m.Forward(seq[:len(seq)-1], nil)
	if err != nil {
		return nil, err
	}
	preds := make([]int, logits.Rows)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		preds[i] = best
	}
	return preds, nil
}

// Measure applies a bit assignment and measures PPL and agreement
// accuracy. The model is restored to FP16 afterwards.
func (r *Reference) Measure(bits []int) (ReferenceResult, error) {
	if err := r.Model.ApplyBitAssignment(bits, quant.Deterministic, nil); err != nil {
		return ReferenceResult{}, err
	}
	return r.measureApplied()
}

// MeasureScheme applies a uniform bitwidth under a fine-grained
// quantization scheme (per-channel / group-wise, §7) and measures quality.
func (r *Reference) MeasureScheme(bits int, scheme quant.Scheme, groupSize int) (ReferenceResult, error) {
	for i := range r.Model.Layers {
		if err := r.Model.SetLayerScheme(i, bits, scheme, groupSize, quant.Deterministic, nil); err != nil {
			return ReferenceResult{}, err
		}
	}
	return r.measureApplied()
}

func (r *Reference) measureApplied() (ReferenceResult, error) {
	defer func() {
		full := make([]int, len(r.Model.Layers))
		for i := range full {
			full[i] = 16
		}
		_ = r.Model.ApplyBitAssignment(full, quant.Deterministic, nil)
	}()
	var ceSum float64
	var agree, total int
	for si, seq := range r.corpus {
		ce, err := r.Model.CrossEntropy(seq)
		if err != nil {
			return ReferenceResult{}, err
		}
		ceSum += ce
		preds, err := greedyPreds(r.Model, seq)
		if err != nil {
			return ReferenceResult{}, err
		}
		for i, p := range preds {
			if p == r.teacher[si][i] {
				agree++
			}
			total++
		}
	}
	return ReferenceResult{
		PPL:      math.Exp(ceSum / float64(len(r.corpus))),
		Accuracy: float64(agree) / float64(total),
	}, nil
}

// UniformBits builds a uniform assignment.
func UniformBits(layers, bits int) []int {
	out := make([]int, layers)
	for i := range out {
		out[i] = bits
	}
	return out
}

// MixedBits alternates between two precisions uniformly at random with a
// seed (the paper's 'mixed4-8' / 'mixed3-4' setups).
func MixedBits(layers, bitsA, bitsB int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, layers)
	for i := range out {
		if rng.Intn(2) == 0 {
			out[i] = bitsA
		} else {
			out[i] = bitsB
		}
	}
	return out
}

// Scorer is the calibrated path for full-size models.
type Scorer struct {
	ModelName string
	BasePPL   float64 // published FP16 perplexity (average over the three sets)
	BaseAcc   float64 // published zero-shot accuracy
	// alpha converts total ω to ΔPPL, calibrated so a uniform INT4
	// assignment lands on the paper's INT4 delta.
	alpha    float64
	accAlpha float64
	omega    indicator.Omega
}

// paperAnchor holds published FP16 PPL and the ΔPPL a uniform INT4 model
// shows (estimated from the paper's tables).
type paperAnchor struct {
	fp16   float64
	delta4 float64
	acc    float64
}

var anchors = map[string]paperAnchor{
	"opt-1.3b":   {fp16: 15.20, delta4: 0.55, acc: 0.633},
	"bloom-3b":   {fp16: 17.40, delta4: 0.42, acc: 0.612},
	"opt-13b":    {fp16: 11.22, delta4: 0.16, acc: 0.655},
	"opt-30b":    {fp16: 10.70, delta4: 0.10, acc: 0.668},
	"opt-66b":    {fp16: 10.33, delta4: 0.17, acc: 0.674},
	"bloom-176b": {fp16: 10.90, delta4: 0.07, acc: 0.681},
}

// NewScorer calibrates a scorer for a full-size model against its ω table.
func NewScorer(modelName string, omega indicator.Omega) (*Scorer, error) {
	a, ok := anchors[modelName]
	if !ok {
		return nil, fmt.Errorf("quality: no published anchor for %q", modelName)
	}
	// Total ω of uniform INT4.
	var total float64
	for l := 0; l < omega.Layers(); l++ {
		w, err := omega.At(l, 4)
		if err != nil {
			return nil, err
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("quality: degenerate omega (uniform INT4 total %.3g)", total)
	}
	return &Scorer{
		ModelName: modelName,
		BasePPL:   a.fp16,
		BaseAcc:   a.acc,
		alpha:     a.delta4 / total,
		accAlpha:  (a.delta4 / total) * 0.6, // accuracy degrades ~0.6pt per PPL point (Table 1 ratio)
		omega:     omega,
	}, nil
}

// PPL predicts perplexity for a bit assignment (len = omega layers).
func (s *Scorer) PPL(assignment []int) (float64, error) {
	total, err := s.omega.Total(assignment)
	if err != nil {
		return 0, err
	}
	return s.BasePPL + s.alpha*total, nil
}

// Accuracy predicts zero-shot accuracy for a bit assignment.
func (s *Scorer) Accuracy(assignment []int) (float64, error) {
	total, err := s.omega.Total(assignment)
	if err != nil {
		return 0, err
	}
	acc := s.BaseAcc - s.accAlpha*total
	if acc < 0 {
		acc = 0
	}
	return acc, nil
}
