package quality

import (
	"math"
	"testing"

	"repro/internal/indicator"
	"repro/internal/model"
	"repro/internal/nn"
)

var qCfg = nn.Config{Vocab: 128, Hidden: 32, FFN: 128, Layers: 8, Heads: 4, MaxSeq: 48, SensitivitySlope: 2.0}

func newRef(t *testing.T) *Reference {
	t.Helper()
	r, err := NewReference(qCfg, 31, 4, 28)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestReferenceFP16Baseline(t *testing.T) {
	r := newRef(t)
	res, err := r.Measure(UniformBits(qCfg.Layers, 16))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != 1.0 {
		t.Errorf("FP16 agreement with itself should be 1.0, got %.4f", res.Accuracy)
	}
	if res.PPL <= 1 || math.IsNaN(res.PPL) {
		t.Errorf("FP16 PPL %.4f implausible", res.PPL)
	}
}

func TestReferenceQuantizationOrdering(t *testing.T) {
	// Fig 4 shape: PPL(16) ≤ PPL(8) ≲ PPL(4) < PPL(3); accuracy opposite.
	r := newRef(t)
	ppl := map[int]float64{}
	acc := map[int]float64{}
	for _, b := range []int{16, 8, 4, 3} {
		res, err := r.Measure(UniformBits(qCfg.Layers, b))
		if err != nil {
			t.Fatal(err)
		}
		ppl[b] = res.PPL
		acc[b] = res.Accuracy
	}
	if !(ppl[4] <= ppl[3] && ppl[8] <= ppl[4]) {
		t.Errorf("PPL ordering broken: %v", ppl)
	}
	if ppl[3] <= ppl[16] {
		t.Errorf("INT3 PPL %.4f should exceed FP16 %.4f", ppl[3], ppl[16])
	}
	if acc[3] >= acc[16] {
		t.Errorf("INT3 accuracy %.4f should trail FP16 %.4f", acc[3], acc[16])
	}
}

func TestMixedBetweenUniform(t *testing.T) {
	// Fig 4: mixed4-8 sits between uniform 4 and uniform 8.
	r := newRef(t)
	p8, _ := r.Measure(UniformBits(qCfg.Layers, 8))
	p4, _ := r.Measure(UniformBits(qCfg.Layers, 4))
	mix, err := r.Measure(MixedBits(qCfg.Layers, 4, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Min(p8.PPL, p4.PPL), math.Max(p8.PPL, p4.PPL)
	slack := (hi - lo) * 0.3
	if mix.PPL < lo-slack || mix.PPL > hi+slack {
		t.Errorf("mixed4-8 PPL %.4f outside [%.4f, %.4f]", mix.PPL, lo, hi)
	}
}

func TestMeasureRestoresModel(t *testing.T) {
	r := newRef(t)
	a, _ := r.Measure(UniformBits(qCfg.Layers, 16))
	if _, err := r.Measure(UniformBits(qCfg.Layers, 3)); err != nil {
		t.Fatal(err)
	}
	b, _ := r.Measure(UniformBits(qCfg.Layers, 16))
	if a.PPL != b.PPL {
		t.Errorf("Measure must restore the model: %.6f vs %.6f", a.PPL, b.PPL)
	}
}

func TestLaterRangeHurtsMore(t *testing.T) {
	// Table 1 ordering on the reference model.
	r := newRef(t)
	mk := func(lo, hi int) []int {
		bits := UniformBits(qCfg.Layers, 16)
		for i := lo; i < hi; i++ {
			bits[i] = 4
		}
		return bits
	}
	early, err := r.Measure(mk(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	late, err := r.Measure(mk(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	if early.PPL >= late.PPL {
		t.Errorf("early-range PPL %.4f should be below late-range %.4f (Table 1)", early.PPL, late.PPL)
	}
}

func TestScorerCalibration(t *testing.T) {
	omega := indicator.Synthetic(model.OPT30B, []int{3, 4, 8, 16}, 1)
	s, err := NewScorer("opt-30b", omega)
	if err != nil {
		t.Fatal(err)
	}
	fp16, err := s.PPL(UniformBits(model.OPT30B.Layers, 16))
	if err != nil {
		t.Fatal(err)
	}
	if fp16 != 10.70 {
		t.Errorf("FP16 PPL %.4f, anchor 10.70", fp16)
	}
	int4, _ := s.PPL(UniformBits(model.OPT30B.Layers, 4))
	if math.Abs(int4-10.80) > 1e-9 {
		t.Errorf("uniform INT4 PPL %.4f, calibrated anchor 10.80", int4)
	}
	int8, _ := s.PPL(UniformBits(model.OPT30B.Layers, 8))
	if int8 <= fp16 || int8 >= int4 {
		t.Errorf("INT8 PPL %.4f should sit strictly between FP16 %.4f and INT4 %.4f", int8, fp16, int4)
	}
	int3, _ := s.PPL(UniformBits(model.OPT30B.Layers, 3))
	if int3 <= int4 {
		t.Errorf("INT3 PPL %.4f should exceed INT4 %.4f", int3, int4)
	}
	accFP, _ := s.Accuracy(UniformBits(model.OPT30B.Layers, 16))
	acc3, _ := s.Accuracy(UniformBits(model.OPT30B.Layers, 3))
	if acc3 >= accFP {
		t.Errorf("accuracy should degrade: %.4f vs %.4f", acc3, accFP)
	}
}

func TestScorerErrors(t *testing.T) {
	omega := indicator.Synthetic(model.OPT30B, []int{3, 4, 8, 16}, 1)
	if _, err := NewScorer("gpt-4", omega); err == nil {
		t.Error("expected unknown model error")
	}
	s, _ := NewScorer("opt-30b", omega)
	if _, err := s.PPL([]int{4}); err == nil {
		t.Error("expected assignment length error")
	}
}

func TestNewReferenceValidation(t *testing.T) {
	if _, err := NewReference(qCfg, 1, 0, 28); err == nil {
		t.Error("expected sequences error")
	}
	if _, err := NewReference(qCfg, 1, 2, 2); err == nil {
		t.Error("expected tokens error")
	}
}
