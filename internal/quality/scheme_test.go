package quality

import (
	"testing"

	"repro/internal/quant"
)

func TestSchemeQualityOrdering(t *testing.T) {
	// §7: finer-grained scales (per-channel, group-wise) recover quality
	// at the same nominal bitwidth — measured with real forward passes.
	r := newRef(t)
	pt, err := r.MeasureScheme(4, quant.PerTensor, 0)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := r.MeasureScheme(4, quant.PerChannel, 0)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := r.MeasureScheme(4, quant.GroupWise, 16)
	if err != nil {
		t.Fatal(err)
	}
	if pc.PPL >= pt.PPL {
		t.Errorf("per-channel PPL %.3f should beat per-tensor %.3f", pc.PPL, pt.PPL)
	}
	if gw.PPL >= pc.PPL {
		t.Errorf("group-wise PPL %.3f should beat per-channel %.3f", gw.PPL, pc.PPL)
	}
	// The model must restore to FP16 afterwards.
	base, err := r.Measure(UniformBits(qCfg.Layers, 16))
	if err != nil {
		t.Fatal(err)
	}
	if base.Accuracy != 1.0 {
		t.Error("model not restored after scheme measurement")
	}
}

func TestGroupWiseClosesBitGap(t *testing.T) {
	// Group-wise 4-bit should land much closer to FP16 than per-tensor
	// 4-bit — the AWQ/SpQR selling point the paper cites.
	r := newRef(t)
	fp16, err := r.Measure(UniformBits(qCfg.Layers, 16))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := r.MeasureScheme(4, quant.PerTensor, 0)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := r.MeasureScheme(4, quant.GroupWise, 16)
	if err != nil {
		t.Fatal(err)
	}
	lossPT := pt.PPL - fp16.PPL
	lossGW := gw.PPL - fp16.PPL
	if lossGW > lossPT*0.6 {
		t.Errorf("group-wise should recover ≥40%% of the 4-bit PPL loss: PT +%.3f vs GW +%.3f", lossPT, lossGW)
	}
}
