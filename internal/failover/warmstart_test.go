package failover

import (
	"reflect"
	"testing"

	"repro/internal/assigner"
	"repro/internal/core"
	"repro/internal/obs"
	rt "repro/internal/runtime"
)

// incumbentSpec only exists to give SurvivorIncumbent a decode
// micro-batch to recompute; the plan projections below are handcrafted.
func incumbentSpec(devices int) *assigner.Spec {
	s := edgeSpec(3.0, 3.0)
	for len(s.Cluster.Devices) > devices {
		s.Cluster.Devices = s.Cluster.Devices[:len(s.Cluster.Devices)-1]
	}
	return s
}

// TestSurvivorIncumbentProjections pins the merge rules: a lost middle
// stage folds into the preceding survivor, a lost leading stage folds
// into the first survivor, and losing everything projects to nil.
func TestSurvivorIncumbentProjections(t *testing.T) {
	plan := &assigner.Plan{
		Order:      []int{0, 1, 2},
		Boundaries: []int{0, 2, 5, 8},
		GroupBits:  []int{8, 8, 4, 4, 4, 16, 16, 16},
		Group:      1, PrefillMB: 2, DecodeMB: 3,
	}
	degraded := incumbentSpec(1)

	t.Run("middle-loss", func(t *testing.T) {
		// Device 1 died; survivors old 0 -> new 0, old 2 -> new 1.
		inc := SurvivorIncumbent(plan, []int{0, 2}, degraded)
		if inc == nil {
			t.Fatal("two survivors projected to nil")
		}
		if !reflect.DeepEqual(inc.Order, []int{0, 1}) {
			t.Errorf("order %v, want [0 1]", inc.Order)
		}
		// Stage 1's groups [2,5) merge into the preceding survivor.
		if !reflect.DeepEqual(inc.Boundaries, []int{0, 5, 8}) {
			t.Errorf("boundaries %v, want [0 5 8]", inc.Boundaries)
		}
		if !reflect.DeepEqual(inc.GroupBits, plan.GroupBits) {
			t.Errorf("group bits %v changed in projection", inc.GroupBits)
		}
		if inc.PrefillMB != plan.PrefillMB {
			t.Errorf("prefill micro-batch %d, want %d", inc.PrefillMB, plan.PrefillMB)
		}
		if want := degraded.DecodeMicroBatch(); inc.DecodeMB != want {
			t.Errorf("decode micro-batch %d, want recomputed %d", inc.DecodeMB, want)
		}
	})
	t.Run("leading-loss", func(t *testing.T) {
		// Device 0 died; its leading groups [0,2) fold into the first
		// survivor.
		inc := SurvivorIncumbent(plan, []int{1, 2}, degraded)
		if inc == nil {
			t.Fatal("two survivors projected to nil")
		}
		if !reflect.DeepEqual(inc.Order, []int{0, 1}) {
			t.Errorf("order %v, want [0 1]", inc.Order)
		}
		if !reflect.DeepEqual(inc.Boundaries, []int{0, 5, 8}) {
			t.Errorf("boundaries %v, want [0 5 8]", inc.Boundaries)
		}
	})
	t.Run("no-survivors", func(t *testing.T) {
		if inc := SurvivorIncumbent(plan, nil, degraded); inc != nil {
			t.Errorf("no survivors must project to nil, got %+v", inc)
		}
	})
	t.Run("nil-plan", func(t *testing.T) {
		if inc := SurvivorIncumbent(nil, []int{0}, degraded); inc != nil {
			t.Errorf("nil plan must project to nil, got %+v", inc)
		}
	})
}

// TestReplanWarmMatchesCold: the same device loss healed through a
// seeded SolveCache and a cold spec must produce identical outcomes, and
// the warm replan must actually hit the cache — the counters land on the
// sim registry via Export.
func TestReplanWarmMatchesCold(t *testing.T) {
	mkLost := func(plan *assigner.Plan) *rt.DeviceLostError {
		return &rt.DeviceLostError{
			Stage: 0, Device: plan.Order[0], AtSec: 0.5,
			Watermark: 4, DurableTokens: 32, PrefillDone: true,
		}
	}

	cold := edgeSpec(3.0, 3.0)
	coldRes, err := assigner.Optimize(cold, nil)
	if err != nil {
		t.Fatal(err)
	}
	coldOut, err := Replan(cold, coldRes.Plan, assigner.ProfilerTimer{}, mkLost(coldRes.Plan), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	warm := edgeSpec(3.0, 3.0)
	warm.Cache = assigner.NewSolveCache()
	warmRes, err := assigner.Optimize(warm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldRes.Plan, warmRes.Plan) {
		t.Fatalf("initial solves diverged before the replan")
	}
	reg := obs.NewRegistry()
	ctrl := obs.NewRegistry()
	warmOut, err := ReplanMulti(warm, warmRes.Plan, assigner.ProfilerTimer{}, mkLost(warmRes.Plan), nil, reg, ctrl, nil)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(coldOut.Plan, warmOut.Plan) {
		t.Errorf("warm replan diverged from cold:\ncold: %+v\nwarm: %+v", coldOut.Plan, warmOut.Plan)
	}
	if !reflect.DeepEqual(coldOut.Migration, warmOut.Migration) {
		t.Errorf("migration bill diverged: cold %+v, warm %+v", coldOut.Migration, warmOut.Migration)
	}
	if coldOut.MovedLayers != warmOut.MovedLayers || coldOut.StartRound != warmOut.StartRound {
		t.Errorf("outcome bookkeeping diverged: cold %+v, warm %+v", coldOut, warmOut)
	}
	if st := warm.Cache.Stats(); st.Hits < 1 {
		t.Errorf("warm replan never hit the seeded cache (stats %+v)", st)
	}
	if got := reg.Counter("llmpq_solver_cache_hits_total").Value(); got < 1 {
		t.Errorf("replan exported %v cache hits to the sim registry, want >= 1", got)
	}
	// The incumbent is consumed, not retained: the outcome's spec must be
	// reusable without warm-start state.
	if warmOut.Degraded.Incumbent != nil {
		t.Error("degraded spec retains the incumbent after the replan")
	}
	// Wall-clock replan latency lands on the control registry only.
	if got := ctrl.Histogram("llmpq_failover_replan_seconds", obs.TimeBuckets()).Count(); got != 1 {
		t.Errorf("replan latency histogram observed %d times on ctrl registry, want 1", got)
	}
}

// benchReplanSetup plans the paper's cluster 3 and fabricates the
// mid-decode loss of the plan's last stage.
func benchReplanSetup(b *testing.B) (*assigner.Spec, *assigner.Plan, *rt.DeviceLostError) {
	b.Helper()
	spec, err := core.BuildSpec(core.Request{
		ClusterID:   3,
		GlobalBatch: 8,
		PromptLen:   128,
		Generate:    16,
		Theta:       0.1,
		Group:       6,
		Method:      assigner.MethodDP,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := assigner.Optimize(spec, nil)
	if err != nil {
		b.Fatal(err)
	}
	stage := res.Plan.NumStages() - 1
	lost := &rt.DeviceLostError{
		Stage: stage, Device: res.Plan.Order[stage], AtSec: 1.0,
		Watermark: 8, DurableTokens: 64, PrefillDone: true,
	}
	return spec, res.Plan, lost
}

// BenchmarkReplan compares the failover replan cold (every solve from
// scratch) against warm (SolveCache seeded by the initial solve plus one
// prior replan — the steady state of a controller that has healed
// before). The warm path memoizes whole combination outcomes, so the
// speedup holds even on a single-core host.
func BenchmarkReplan(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		spec, plan, lost := benchReplanSetup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Replan(spec, plan, assigner.ProfilerTimer{}, lost, nil, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		spec, plan, lost := benchReplanSetup(b)
		spec.Cache = assigner.NewSolveCache()
		if _, err := assigner.Optimize(spec, nil); err != nil {
			b.Fatal(err)
		}
		if _, err := Replan(spec, plan, assigner.ProfilerTimer{}, lost, nil, nil, nil); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Replan(spec, plan, assigner.ProfilerTimer{}, lost, nil, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
