// Package failover is the self-healing replanning loop on top of the
// chaos fault model (DESIGN.md §10). LLM-PQ's offline planner assumes
// the cluster it planned for is the cluster it serves on; when a device
// is permanently lost mid-run (preemption, hardware failure), the
// Controller closes the loop:
//
//  1. run the pipeline under the chaos schedule until it either finishes
//     or halts with a runtime.DeviceLostError carrying the
//     completed-token watermark;
//  2. re-invoke assigner.Optimize on the reduced cluster (same workload,
//     same quality target θ, same Parallelism), producing a degraded but
//     valid plan — partition and quantization adapt to the surviving
//     devices exactly as the paper's planner adapts to heterogeneity;
//  3. cost the migration: every layer that lands on a different physical
//     device re-ships its quantized weights (at the new plan's
//     precision) plus the resident KV state over the interconnect
//     (costmodel.MigrationCost);
//  4. resume the pipeline from the watermark (runtime.Engine.StartRound)
//     so no generated token is produced twice and none is lost.
//
// The whole loop is deterministic: same spec, plan, and chaos schedule
// reproduce the same report byte-for-byte.
package failover

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/assigner"
	"repro/internal/chaos"
	"repro/internal/costmodel"
	"repro/internal/hardware"
	"repro/internal/obs"
	rt "repro/internal/runtime"
)

// Metric families exported by the controller (DESIGN.md §10).
const (
	metricReplans        = "llmpq_failover_replans_total"
	metricLostDevices    = "llmpq_failover_lost_devices"
	metricMovedLayers    = "llmpq_failover_moved_layers"
	metricMigrationBytes = "llmpq_failover_migration_bytes"
	metricMigrationSecs  = "llmpq_failover_migration_seconds"
	metricResumeRound    = "llmpq_failover_resume_round"
	// metricReplanSeconds is the wall-clock latency of one replan solve —
	// the recovery-path number the SolveCache exists to shrink. Unlike the
	// families above it is wall-clock-dependent, so it lands on a control
	// registry only (simctrl.manifest pins it ctrl by exact name).
	metricReplanSeconds = "llmpq_failover_replan_seconds"

	// The restore (heal) half of the loop: a capacity-restoring replan
	// back onto returned devices. Same sim/ctrl split as the shrink
	// families above.
	metricRestores            = "llmpq_failover_restore_total"
	metricRestoredDevices     = "llmpq_failover_restored_devices"
	metricRestoreMovedLayers  = "llmpq_failover_restore_moved_layers"
	metricRestoreMigrationB   = "llmpq_failover_restore_migration_bytes"
	metricRestoreMigrationSec = "llmpq_failover_restore_migration_seconds"
	metricRestoreResumeRound  = "llmpq_failover_restore_resume_round"
	// metricRestoreSeconds mirrors metricReplanSeconds for the restore
	// solve (ctrl by exact name in simctrl.manifest).
	metricRestoreSeconds = "llmpq_failover_restore_seconds"
	// Heal-policy counters (sim: both derive from the schedule alone).
	metricHealReturns     = "llmpq_heal_device_returns_total"
	metricHealQuarantined = "llmpq_heal_quarantined_total"
)

// Report summarizes one fault-tolerant serving run.
type Report struct {
	// Replanned is false when the run finished without a permanent loss
	// (First carries the stats; the migration fields are zero).
	Replanned bool
	// First is the initial run: the complete run when !Replanned,
	// otherwise the partial stats are unavailable (the engine halts) and
	// only Lost describes it.
	First rt.Stats
	// Lost is the device-loss event that triggered the replan (nil when
	// !Replanned).
	Lost *rt.DeviceLostError
	// LostDevice names the physical device that died.
	LostDevice string
	// DegradedPlan is the plan Optimize produced on the reduced cluster.
	DegradedPlan *assigner.Plan
	// MovedLayers counts layers shipped to a different physical device.
	MovedLayers int
	// Migration itemizes the re-shipping cost.
	Migration costmodel.MigrationBreakdown
	// Resumed is the watermark-resumed run on the degraded plan.
	Resumed rt.Stats
	// TotalTokens is the end-to-end generated-token count: durable tokens
	// at the loss plus the resumed run's output. Equals the no-fault
	// run's TokensOut — nothing is lost, nothing is double-counted.
	TotalTokens int
	// TotalLatencySec = loss time + migration transfer + resumed latency
	// (plus, when Restored, the restore halt, migration-back, and final
	// run).
	TotalLatencySec float64

	// Restored is true when the lost device healed and a
	// capacity-restoring replan brought it back mid-run.
	Restored bool
	// RestoreHalt is the voluntary halt that triggered the restore (nil
	// when !Restored).
	RestoreHalt *rt.RestoreHaltError
	// RestoredPlan is the plan solved on the re-expanded cluster.
	RestoredPlan *assigner.Plan
	// RestoreMovedLayers counts layers migrated back onto returned
	// devices; RestoreMigration itemizes the cost.
	RestoreMovedLayers int
	RestoreMigration   costmodel.MigrationBreakdown
	// Final is the run that finished on the restored plan (zero unless
	// Restored).
	Final rt.Stats
	// Quarantined is true when the healed device flapped past the
	// controller's tolerance and was deliberately NOT replanned back in;
	// the run finished degraded.
	Quarantined bool
}

// ReplanFailedError reports that a device loss could not be healed — the
// reduced cluster admits no feasible plan. The triggering DeviceLostError
// stays reachable through errors.As, so callers can still read the
// watermark and durable-token count of the halt even though recovery
// failed.
type ReplanFailedError struct {
	Lost *rt.DeviceLostError
	// Survivors is the device count of the reduced cluster.
	Survivors int
	// Err is the planner's infeasibility error.
	Err error
}

func (e *ReplanFailedError) Error() string {
	return fmt.Sprintf("failover: no feasible degraded plan on %d surviving devices (lost: %v): %v",
		e.Survivors, e.Lost, e.Err)
}

// Unwrap exposes both the planner error and the device loss to
// errors.Is/As chains.
func (e *ReplanFailedError) Unwrap() []error { return []error{e.Err, e.Lost} }

// Outcome is one computed replan: the degraded spec and plan, the
// migration bill, and where to resume — everything a caller needs to
// restart execution, without the execution itself. Controller.Run
// resumes on the in-process engine; internal/dist's coordinator
// reconfigures its surviving workers instead.
type Outcome struct {
	// Degraded is a copy of the original spec on the reduced cluster.
	Degraded *assigner.Spec
	// Plan is the plan Optimize produced on the reduced cluster.
	Plan *assigner.Plan
	// OldID maps the reduced cluster's device IDs back to original IDs.
	OldID []int
	// LostDevice names the physical device that died (the first of
	// LostDevices — kept for single-loss callers and reports).
	LostDevice string
	// LostDevices names every physical device declared lost in this
	// replan. A single chaos crash lists one; a dist worker that served
	// several stages takes all of its devices down at once.
	LostDevices []string
	// MovedLayers counts layers whose physical home changed.
	MovedLayers int
	// Migration itemizes the re-shipping cost.
	Migration costmodel.MigrationBreakdown
	// StartRound is the watermark round the resumed run starts from (0
	// when prefill had not completed — re-prefill from scratch).
	StartRound int
	// DurableTokens is the token count that survives the loss (0 before
	// prefill completes).
	DurableTokens int
}

// Replan closes steps 2–3 of the failover loop for one device loss:
// re-solve on the surviving devices, diff layer homes, and cost the
// migration. It observes the llmpq_failover_* metric families and the
// migrate span when reg/spans are non-nil; ctrlReg, when non-nil,
// additionally receives the wall-clock llmpq_failover_replan_seconds
// histogram (control registry — never byte-diffed). Infeasibility
// surfaces as a *ReplanFailedError that keeps the DeviceLostError
// reachable.
func Replan(spec *assigner.Spec, plan *assigner.Plan, timer assigner.LayerTimer, lost *rt.DeviceLostError, reg, ctrlReg *obs.Registry, spans *obs.SpanRecorder) (*Outcome, error) {
	return ReplanMulti(spec, plan, timer, lost, nil, reg, ctrlReg, spans)
}

// ReplanMulti is Replan for a loss event that takes several devices at
// once. When one failure domain backs multiple pipeline stages — a dist
// worker serving several stages, a node hosting several GPUs — every
// device it backed leaves with it, and healing them one at a time would
// re-solve and re-ship weights once per device instead of once per
// failure. extraDevices lists the additional original-cluster device
// IDs lost alongside lost.Device; duplicates (including a repeated
// lost.Device) are tolerated.
func ReplanMulti(spec *assigner.Spec, plan *assigner.Plan, timer assigner.LayerTimer, lost *rt.DeviceLostError, extraDevices []int, reg, ctrlReg *obs.Registry, spans *obs.SpanRecorder) (*Outcome, error) {
	replanStart := time.Now() //llmpq:allow(simwallclock): replan latency is reported on the control registry only; the degraded plan is independent of it
	devs := append([]int{lost.Device}, extraDevices...)
	reduced, oldID, err := removeDevices(spec.Cluster, devs)
	if err != nil {
		return nil, err
	}
	degraded := *spec
	degraded.Cluster = reduced
	// Warm start: project the surviving assignment onto the reduced
	// cluster and let Optimize prune combinations that provably cannot
	// beat it. With Spec.Cache threaded through, the solve also reuses
	// every timing row and benefit table the loss didn't invalidate.
	// Both are byte-identity-preserving (DESIGN.md §13).
	degraded.Incumbent = SurvivorIncumbent(plan, oldID, &degraded)
	res, err := assigner.Optimize(&degraded, timer)
	degraded.Incumbent = nil // consumed; keep the outcome's spec self-contained
	if err != nil {
		return nil, &ReplanFailedError{Lost: lost, Survivors: reduced.NumDevices(), Err: err}
	}
	out := &Outcome{
		Degraded:   &degraded,
		Plan:       res.Plan,
		OldID:      oldID,
		LostDevice: spec.Cluster.Devices[lost.Device].GPU.Name,
	}
	seen := make(map[int]bool, len(devs))
	for _, d := range devs {
		if !seen[d] {
			seen[d] = true
			out.LostDevices = append(out.LostDevices, spec.Cluster.Devices[d].GPU.Name)
		}
	}

	// Layers whose physical home changed must migrate: quantized weights
	// at the new plan's precision, plus each resident request's KV state
	// up to the watermark (none when prefill had not completed — the
	// resumed run re-prefills from scratch).
	oldHome := layerHomes(plan, spec.Cfg.Layers, nil)
	newHome := layerHomes(res.Plan, spec.Cfg.Layers, oldID)
	newBits := res.Plan.LayerBits(spec.Cfg.Layers)
	var movedBits []int
	for l := 0; l < spec.Cfg.Layers; l++ {
		if newHome[l] != oldHome[l] {
			movedBits = append(movedBits, newBits[l])
		}
	}
	out.MovedLayers = len(movedBits)
	kvSeq := 0
	if lost.PrefillDone {
		kvSeq = spec.Work.Prompt + lost.Watermark
		out.StartRound = lost.Watermark
		out.DurableTokens = lost.DurableTokens
	}
	out.Migration, err = costmodel.MigrationCost(costmodel.MigrationInput{
		Cfg: spec.Cfg, MovedLayerBits: movedBits, GlobalBatch: spec.Work.GlobalBatch,
		KVSeqLen: kvSeq, KVBits: spec.KVBits, Link: spec.Cluster.InterNode,
	})
	if err != nil {
		return nil, err
	}
	observeReplan(reg, spans, lost, out)
	// Flush the cache's deterministic hit/miss counters alongside the
	// replan they served (no-op when spec.Cache or reg is nil).
	spec.Cache.Export(reg)
	if ctrlReg != nil {
		//llmpq:allow(simwallclock): wall-clock observation on the control registry only
		ctrlReg.Histogram(metricReplanSeconds, obs.TimeBuckets()).Observe(time.Since(replanStart).Seconds())
	}
	return out, nil
}

// SurvivorIncumbent projects a plan onto the cluster that remains after
// a device loss, producing the warm-start incumbent for the replan
// solve: surviving stages keep their device (under the reduced cluster's
// reindexing via oldID), their layer ranges, and their bitwidths; a lost
// stage's range is merged into the nearest preceding surviving stage
// (or the first survivor, for leading losses). The decode micro-batch is
// recomputed for the reduced device count. The projection is best-effort
// — Optimize independently validates and re-scores it, ignoring it when
// unusable — and returns nil when no stage survives.
func SurvivorIncumbent(plan *assigner.Plan, oldID []int, degraded *assigner.Spec) *assigner.Plan {
	if plan == nil {
		return nil
	}
	n := plan.NumStages()
	inv := make([]int, n)
	for i := range inv {
		inv[i] = -1
	}
	for newIdx, old := range oldID {
		if old >= 0 && old < n {
			inv[old] = newIdx
		}
	}
	var order, counts []int
	lead := 0
	for j := 0; j < n; j++ {
		k := plan.Boundaries[j+1] - plan.Boundaries[j]
		nd := -1
		if d := plan.Order[j]; d >= 0 && d < n {
			nd = inv[d]
		}
		if nd < 0 {
			if len(counts) > 0 {
				counts[len(counts)-1] += k
			} else {
				lead += k
			}
			continue
		}
		order = append(order, nd)
		counts = append(counts, k)
	}
	if len(order) == 0 {
		return nil
	}
	counts[0] += lead
	inc := &assigner.Plan{
		Order:      order,
		Boundaries: make([]int, len(order)+1),
		GroupBits:  append([]int(nil), plan.GroupBits...),
		Group:      plan.Group,
		PrefillMB:  plan.PrefillMB,
		DecodeMB:   degraded.DecodeMicroBatch(),
	}
	for j, k := range counts {
		inc.Boundaries[j+1] = inc.Boundaries[j] + k
	}
	return inc
}

// RestoreOutcome is one computed capacity-restoring replan: the
// re-expanded spec and plan, the migrate-back bill, and where to resume.
// The restore mirror of Outcome.
type RestoreOutcome struct {
	// Restored is a copy of the original spec on the re-expanded cluster
	// (the full original cluster when every lost device returned).
	Restored *assigner.Spec
	// Plan is the plan Optimize produced on the re-expanded cluster.
	Plan *assigner.Plan
	// OldID maps the re-expanded cluster's device IDs back to original
	// IDs (identity for a full restore).
	OldID []int
	// RestoredDevices names the physical devices replanned back in.
	RestoredDevices []string
	// MovedLayers counts layers whose physical home changed moving off
	// the degraded plan; Migration itemizes the re-shipping cost.
	MovedLayers int
	Migration   costmodel.MigrationBreakdown
	// StartRound / DurableTokens carry the restore halt's watermark into
	// the resumed run (absolute rounds — token conservation holds across
	// any number of hops).
	StartRound    int
	DurableTokens int
}

// ReplanRestore closes the heal half of the failover loop: devices lost
// to the shrink replan have returned, so re-solve on the re-expanded
// cluster and price migrating layers and resident KV state back onto
// them. spec/plan are the ORIGINAL pre-loss spec and plan; degraded is
// the shrink outcome currently serving; halt carries the watermark the
// restored run resumes from; stillLost lists original-cluster device IDs
// that have NOT returned (empty = full restore). A full restore
// warm-starts with the original plan as incumbent — exactly feasible on
// the original cluster — so the fleet replans back to (or strictly
// toward) the pre-loss plan; partial restores rely on the solve cache
// alone. Infeasibility (impossible on a superset of a cluster that
// already served) surfaces as an error; callers typically keep the
// degraded plan in that case.
func ReplanRestore(spec *assigner.Spec, plan *assigner.Plan, timer assigner.LayerTimer, degraded *Outcome, halt *rt.RestoreHaltError, stillLost []int, reg, ctrlReg *obs.Registry, spans *obs.SpanRecorder) (*RestoreOutcome, error) {
	restoreStart := time.Now() //llmpq:allow(simwallclock): restore latency is reported on the control registry only; the restored plan is independent of it
	if degraded == nil || degraded.Plan == nil {
		return nil, fmt.Errorf("failover: restore without a degraded outcome to restore from")
	}
	if halt == nil {
		return nil, fmt.Errorf("failover: restore without a halt watermark")
	}
	cluster := spec.Cluster
	var oldID []int
	if len(stillLost) > 0 {
		var err error
		cluster, oldID, err = removeDevices(spec.Cluster, stillLost)
		if err != nil {
			return nil, err
		}
	} else {
		oldID = make([]int, len(spec.Cluster.Devices))
		for i := range oldID {
			oldID[i] = i
		}
	}
	restored := *spec
	restored.Cluster = cluster
	if len(stillLost) == 0 {
		// Full restore: the pre-loss plan is exactly feasible again, so it
		// both warm-prunes the solve and guarantees the outcome is at
		// least as good as what the fleet ran before the loss.
		restored.Incumbent = plan
	}
	res, err := assigner.Optimize(&restored, timer)
	restored.Incumbent = nil
	if err != nil {
		return nil, fmt.Errorf("failover: no feasible restored plan on %d devices: %w", cluster.NumDevices(), err)
	}
	out := &RestoreOutcome{Restored: &restored, Plan: res.Plan, OldID: oldID}

	// Devices present now but absent from the degraded cluster are the
	// ones that returned.
	had := make(map[int]bool, len(degraded.OldID))
	for _, id := range degraded.OldID {
		had[id] = true
	}
	for _, id := range oldID {
		if !had[id] {
			out.RestoredDevices = append(out.RestoredDevices, spec.Cluster.Devices[id].GPU.Name)
		}
	}

	// Migrate-back bill: diff physical layer homes degraded → restored
	// (both in original-cluster IDs), shipping quantized weights at the
	// restored plan's precision plus resident KV up to the watermark.
	oldHome := layerHomes(degraded.Plan, spec.Cfg.Layers, degraded.OldID)
	newHome := layerHomes(res.Plan, spec.Cfg.Layers, oldID)
	newBits := res.Plan.LayerBits(spec.Cfg.Layers)
	var movedBits []int
	for l := 0; l < spec.Cfg.Layers; l++ {
		if newHome[l] != oldHome[l] {
			movedBits = append(movedBits, newBits[l])
		}
	}
	out.MovedLayers = len(movedBits)
	kvSeq := 0
	if halt.PrefillDone {
		kvSeq = spec.Work.Prompt + halt.Watermark
		out.StartRound = halt.Watermark
		out.DurableTokens = halt.DurableTokens
	}
	out.Migration, err = costmodel.MigrationCost(costmodel.MigrationInput{
		Cfg: spec.Cfg, MovedLayerBits: movedBits, GlobalBatch: spec.Work.GlobalBatch,
		KVSeqLen: kvSeq, KVBits: spec.KVBits, Link: spec.Cluster.InterNode,
	})
	if err != nil {
		return nil, err
	}
	observeRestore(reg, spans, halt, out)
	spec.Cache.Export(reg)
	if ctrlReg != nil {
		//llmpq:allow(simwallclock): wall-clock observation on the control registry only
		ctrlReg.Histogram(metricRestoreSeconds, obs.TimeBuckets()).Observe(time.Since(restoreStart).Seconds())
	}
	return out, nil
}

// observeReplan exports the llmpq_failover_* metrics and the migration
// span for one computed replan.
func observeReplan(reg *obs.Registry, spans *obs.SpanRecorder, lost *rt.DeviceLostError, out *Outcome) {
	if reg != nil {
		reg.Counter(metricReplans).Inc()
		reg.Gauge(metricLostDevices).Set(float64(len(out.LostDevices)))
		reg.Gauge(metricMovedLayers).Set(float64(out.MovedLayers))
		reg.Gauge(metricMigrationBytes).Set(out.Migration.TotalBytes)
		reg.Gauge(metricMigrationSecs).Set(out.Migration.TransferSec)
		reg.Gauge(metricResumeRound).Set(float64(out.StartRound))
	}
	if spans != nil {
		spans.Record(obs.Span{
			Name: "migrate", Cat: "failover", TID: lost.Stage,
			Start: lost.AtSec, Dur: out.Migration.TransferSec,
			Args: map[string]string{
				"moved_layers": fmt.Sprintf("%d", out.MovedLayers),
				"bytes":        fmt.Sprintf("%.0f", out.Migration.TotalBytes),
			},
		})
	}
}

// ObserveReplayed re-exports the llmpq_failover_* families and the
// migration span for a replan that already happened — a coordinator
// recovering from its journal resumes a degraded plan it did not compute
// this run, and the sim registry must still report the replan it resumed
// from.
func ObserveReplayed(reg *obs.Registry, spans *obs.SpanRecorder, lost *rt.DeviceLostError,
	lostDevices []string, movedLayers int, migration costmodel.MigrationBreakdown, startRound int) {
	observeReplan(reg, spans, lost, &Outcome{
		LostDevices: lostDevices,
		MovedLayers: movedLayers,
		Migration:   migration,
		StartRound:  startRound,
	})
}

// observeRestore exports the llmpq_failover_restore_* and llmpq_heal_*
// metrics and the migrate-back span for one computed restore.
func observeRestore(reg *obs.Registry, spans *obs.SpanRecorder, halt *rt.RestoreHaltError, out *RestoreOutcome) {
	if reg != nil {
		reg.Counter(metricRestores).Inc()
		reg.Gauge(metricRestoredDevices).Set(float64(len(out.RestoredDevices)))
		reg.Gauge(metricRestoreMovedLayers).Set(float64(out.MovedLayers))
		reg.Gauge(metricRestoreMigrationB).Set(out.Migration.TotalBytes)
		reg.Gauge(metricRestoreMigrationSec).Set(out.Migration.TransferSec)
		reg.Gauge(metricRestoreResumeRound).Set(float64(out.StartRound))
		for range out.RestoredDevices {
			reg.Counter(metricHealReturns).Inc()
		}
	}
	if spans != nil {
		spans.Record(obs.Span{
			Name: "migrate-back", Cat: "failover", TID: 0,
			Start: halt.AtSec, Dur: out.Migration.TransferSec,
			Args: map[string]string{
				"moved_layers": fmt.Sprintf("%d", out.MovedLayers),
				"bytes":        fmt.Sprintf("%.0f", out.Migration.TotalBytes),
			},
		})
	}
}

// ObserveRestoreReplayed re-exports the restore families and the
// migrate-back span for a restore that already happened — the
// journal-recovery mirror of ObserveReplayed.
func ObserveRestoreReplayed(reg *obs.Registry, spans *obs.SpanRecorder, halt *rt.RestoreHaltError,
	restoredDevices []string, movedLayers int, migration costmodel.MigrationBreakdown, startRound int) {
	observeRestore(reg, spans, halt, &RestoreOutcome{
		RestoredDevices: restoredDevices,
		MovedLayers:     movedLayers,
		Migration:       migration,
		StartRound:      startRound,
	})
}

// Controller reacts to permanent device loss by replanning on the
// reduced cluster and resuming from the completed-token watermark.
type Controller struct {
	Spec  *assigner.Spec
	Plan  *assigner.Plan
	Timer assigner.LayerTimer
	// Obs receives the engine's metrics plus the llmpq_failover_* family;
	// nil runs uninstrumented.
	Obs *obs.Registry
	// Spans, when non-nil, records engine task spans plus one migration
	// span covering the replan-and-reship window.
	Spans *obs.SpanRecorder
	// CtrlObs, when non-nil, receives the wall-clock
	// llmpq_failover_replan_seconds histogram. Kept separate from Obs:
	// replan latency depends on the host, so it must never land in the
	// byte-diffed sim registry.
	CtrlObs *obs.Registry
	// HealDwellSec is the lease-stability dwell a returned device must
	// hold before the capacity-restoring replan fires: the restore halt
	// is scheduled that long after the fault's heal instant, so a device
	// about to flap again never triggers a migrate-back it immediately
	// invalidates. 0 restores as soon as the device returns.
	HealDwellSec float64
	// FlapTolerance caps how many loss/rejoin cycles a healing device may
	// take before it is quarantined — the run finishes on the degraded
	// plan and Report.Quarantined is set. 0 means the default of 2.
	FlapTolerance int
}

// flapTolerance resolves the quarantine threshold.
func (c *Controller) flapTolerance() int {
	if c.FlapTolerance > 0 {
		return c.FlapTolerance
	}
	return 2
}

// healFault returns the schedule's permanent crash when it carries a
// heal schedule (RecoverAfterSec > 0), nil otherwise.
func healFault(sched *chaos.Schedule) *chaos.Fault {
	if sched == nil {
		return nil
	}
	for i := range sched.Faults {
		f := &sched.Faults[i]
		if f.Kind == chaos.KindCrash && f.Permanent && f.RecoverAfterSec > 0 {
			return f
		}
	}
	return nil
}

// Run executes the pipeline under the chaos schedule, self-healing
// through at most one permanent device loss (chaos.Schedule.Validate
// enforces the at-most-one invariant). When the schedule heals the loss
// (Fault.RecoverAfterSec) and the device's flap count stays under
// FlapTolerance, the degraded run voluntarily halts once the returned
// device has held a stable lease for HealDwellSec and a
// capacity-restoring replan (ReplanRestore) finishes the job on the
// re-expanded cluster; a flappier device is quarantined and the run
// finishes degraded. Every branch is deterministic: same spec, plan, and
// schedule reproduce the same report byte-for-byte.
func (c *Controller) Run(sched *chaos.Schedule) (Report, error) {
	eng := &rt.Engine{Spec: c.Spec, Plan: c.Plan, Timer: c.Timer, Chaos: sched, Obs: c.Obs, Spans: c.Spans}
	stats, err := eng.Run()
	if err == nil {
		return Report{First: stats, TotalTokens: stats.TokensOut, TotalLatencySec: stats.LatencySec}, nil
	}
	var lost *rt.DeviceLostError
	if !errors.As(err, &lost) {
		return Report{}, err
	}
	return c.replan(sched, lost)
}

// replan rebuilds the pipeline after a permanent device loss and resumes
// it from the watermark, arming the restore halt when the schedule heals
// the loss.
func (c *Controller) replan(sched *chaos.Schedule, lost *rt.DeviceLostError) (Report, error) {
	rep := Report{Replanned: true, Lost: lost}
	out, err := Replan(c.Spec, c.Plan, c.Timer, lost, c.Obs, c.CtrlObs, c.Spans)
	if err != nil {
		return Report{}, err
	}
	rep.LostDevice = out.LostDevice
	rep.DegradedPlan = out.Plan
	rep.MovedLayers = out.MovedLayers
	rep.Migration = out.Migration

	eng := &rt.Engine{Spec: out.Degraded, Plan: out.Plan, Timer: c.Timer, StartRound: out.StartRound, Obs: c.Obs, Spans: c.Spans}
	if heal := healFault(sched); heal != nil {
		if heal.Flaps >= c.flapTolerance() {
			// Flap damping: the device keeps bouncing; replanning it back
			// in would trade a migrate-back bill for capacity about to
			// vanish again. Serve the rest of the run degraded.
			rep.Quarantined = true
			if c.Obs != nil {
				c.Obs.Counter(metricHealQuarantined).Inc()
			}
		} else {
			// The device stabilizes RecoverAfterSec after each loss, flaps
			// included, then must hold its lease for the dwell. The resumed
			// run's clock starts after the loss and the migration window,
			// so shift the stability instant into resumed-run time (clamped
			// to epsilon: a heal already stable when the resumed run starts
			// restores immediately).
			at := heal.RecoverAfterSec*float64(1+heal.Flaps) + c.HealDwellSec - rep.Migration.TransferSec
			if at < 1e-9 {
				at = 1e-9
			}
			eng.RestoreAtSec = at
		}
	}
	rep.Resumed, err = eng.Run()
	if err != nil {
		var halt *rt.RestoreHaltError
		if !errors.As(err, &halt) {
			return Report{}, fmt.Errorf("failover: resumed run failed: %w", err)
		}
		return c.restore(rep, out, halt)
	}
	rep.TotalTokens = out.DurableTokens + rep.Resumed.TokensOut
	rep.TotalLatencySec = lost.AtSec + rep.Migration.TransferSec + rep.Resumed.LatencySec
	return rep, nil
}

// restore finishes a degraded run that halted for a capacity-restoring
// replan: re-solve on the full original cluster, migrate back, and run
// from the halt watermark to completion.
func (c *Controller) restore(rep Report, degraded *Outcome, halt *rt.RestoreHaltError) (Report, error) {
	out, err := ReplanRestore(c.Spec, c.Plan, c.Timer, degraded, halt, nil, c.Obs, c.CtrlObs, c.Spans)
	if err != nil {
		return Report{}, err
	}
	rep.Restored = true
	rep.RestoreHalt = halt
	rep.RestoredPlan = out.Plan
	rep.RestoreMovedLayers = out.MovedLayers
	rep.RestoreMigration = out.Migration

	eng := &rt.Engine{Spec: out.Restored, Plan: out.Plan, Timer: c.Timer, StartRound: out.StartRound, Obs: c.Obs, Spans: c.Spans}
	rep.Final, err = eng.Run()
	if err != nil {
		return Report{}, fmt.Errorf("failover: restored run failed: %w", err)
	}
	// The halt watermark is absolute (resumed runs carry rounds forward),
	// so DurableTokens already folds in everything generated before and
	// after the loss.
	rep.TotalTokens = out.DurableTokens + rep.Final.TokensOut
	rep.TotalLatencySec = rep.Lost.AtSec + rep.Migration.TransferSec + halt.AtSec + out.Migration.TransferSec + rep.Final.LatencySec
	return rep, nil
}

// removeDevice returns a copy of the cluster without the given device,
// surviving devices reindexed to contiguous IDs (node placement
// preserved), plus the newID→oldID mapping.
func removeDevice(c hardware.Cluster, dev int) (hardware.Cluster, []int, error) {
	return removeDevices(c, []int{dev})
}

// removeDevices is removeDevice for a set of losses (duplicates
// tolerated). At least one device must survive.
func removeDevices(c hardware.Cluster, devs []int) (hardware.Cluster, []int, error) {
	drop := make(map[int]bool, len(devs))
	for _, dev := range devs {
		if dev < 0 || dev >= len(c.Devices) {
			return hardware.Cluster{}, nil, fmt.Errorf("failover: device %d out of [0,%d)", dev, len(c.Devices))
		}
		drop[dev] = true
	}
	if len(drop) == 0 {
		return hardware.Cluster{}, nil, fmt.Errorf("failover: no devices to remove")
	}
	if len(drop) >= len(c.Devices) {
		return hardware.Cluster{}, nil, fmt.Errorf("failover: losing %d of %d devices leaves no survivors", len(drop), len(c.Devices))
	}
	out := hardware.Cluster{
		Name: c.Name + "-degraded", InterNode: c.InterNode, ModelName: c.ModelName,
	}
	var oldID []int
	for _, d := range c.Devices {
		if drop[d.ID] {
			continue
		}
		oldID = append(oldID, d.ID)
		d.ID = len(out.Devices)
		out.Devices = append(out.Devices, d)
	}
	return out, oldID, nil
}

// layerHomes maps each model layer to the physical device serving it
// under a plan. idMap, when non-nil, translates the plan's device
// indices (into a reduced cluster) back to original physical IDs.
func layerHomes(p *assigner.Plan, layers int, idMap []int) []int {
	home := make([]int, layers)
	g := p.Group
	if g <= 1 {
		g = 1
	}
	for j := 0; j < p.NumStages(); j++ {
		dev := p.Order[j]
		if idMap != nil {
			dev = idMap[dev]
		}
		for grp := p.Boundaries[j]; grp < p.Boundaries[j+1]; grp++ {
			for l := grp * g; l < (grp+1)*g && l < layers; l++ {
				home[l] = dev
			}
		}
	}
	return home
}
