// Package failover is the self-healing replanning loop on top of the
// chaos fault model (DESIGN.md §10). LLM-PQ's offline planner assumes
// the cluster it planned for is the cluster it serves on; when a device
// is permanently lost mid-run (preemption, hardware failure), the
// Controller closes the loop:
//
//  1. run the pipeline under the chaos schedule until it either finishes
//     or halts with a runtime.DeviceLostError carrying the
//     completed-token watermark;
//  2. re-invoke assigner.Optimize on the reduced cluster (same workload,
//     same quality target θ, same Parallelism), producing a degraded but
//     valid plan — partition and quantization adapt to the surviving
//     devices exactly as the paper's planner adapts to heterogeneity;
//  3. cost the migration: every layer that lands on a different physical
//     device re-ships its quantized weights (at the new plan's
//     precision) plus the resident KV state over the interconnect
//     (costmodel.MigrationCost);
//  4. resume the pipeline from the watermark (runtime.Engine.StartRound)
//     so no generated token is produced twice and none is lost.
//
// The whole loop is deterministic: same spec, plan, and chaos schedule
// reproduce the same report byte-for-byte.
package failover

import (
	"errors"
	"fmt"

	"repro/internal/assigner"
	"repro/internal/chaos"
	"repro/internal/costmodel"
	"repro/internal/hardware"
	"repro/internal/obs"
	rt "repro/internal/runtime"
)

// Metric families exported by the controller (DESIGN.md §10).
const (
	metricReplans        = "llmpq_failover_replans_total"
	metricMovedLayers    = "llmpq_failover_moved_layers"
	metricMigrationBytes = "llmpq_failover_migration_bytes"
	metricMigrationSecs  = "llmpq_failover_migration_seconds"
	metricResumeRound    = "llmpq_failover_resume_round"
)

// Report summarizes one fault-tolerant serving run.
type Report struct {
	// Replanned is false when the run finished without a permanent loss
	// (First carries the stats; the migration fields are zero).
	Replanned bool
	// First is the initial run: the complete run when !Replanned,
	// otherwise the partial stats are unavailable (the engine halts) and
	// only Lost describes it.
	First rt.Stats
	// Lost is the device-loss event that triggered the replan (nil when
	// !Replanned).
	Lost *rt.DeviceLostError
	// LostDevice names the physical device that died.
	LostDevice string
	// DegradedPlan is the plan Optimize produced on the reduced cluster.
	DegradedPlan *assigner.Plan
	// MovedLayers counts layers shipped to a different physical device.
	MovedLayers int
	// Migration itemizes the re-shipping cost.
	Migration costmodel.MigrationBreakdown
	// Resumed is the watermark-resumed run on the degraded plan.
	Resumed rt.Stats
	// TotalTokens is the end-to-end generated-token count: durable tokens
	// at the loss plus the resumed run's output. Equals the no-fault
	// run's TokensOut — nothing is lost, nothing is double-counted.
	TotalTokens int
	// TotalLatencySec = loss time + migration transfer + resumed latency.
	TotalLatencySec float64
}

// Controller reacts to permanent device loss by replanning on the
// reduced cluster and resuming from the completed-token watermark.
type Controller struct {
	Spec  *assigner.Spec
	Plan  *assigner.Plan
	Timer assigner.LayerTimer
	// Obs receives the engine's metrics plus the llmpq_failover_* family;
	// nil runs uninstrumented.
	Obs *obs.Registry
	// Spans, when non-nil, records engine task spans plus one migration
	// span covering the replan-and-reship window.
	Spans *obs.SpanRecorder
}

// Run executes the pipeline under the chaos schedule, self-healing
// through at most one permanent device loss (chaos.Schedule.Validate
// enforces the at-most-one invariant).
func (c *Controller) Run(sched *chaos.Schedule) (Report, error) {
	eng := &rt.Engine{Spec: c.Spec, Plan: c.Plan, Timer: c.Timer, Chaos: sched, Obs: c.Obs, Spans: c.Spans}
	stats, err := eng.Run()
	if err == nil {
		return Report{First: stats, TotalTokens: stats.TokensOut, TotalLatencySec: stats.LatencySec}, nil
	}
	var lost *rt.DeviceLostError
	if !errors.As(err, &lost) {
		return Report{}, err
	}
	return c.replan(lost)
}

// replan rebuilds the pipeline after a permanent device loss and resumes
// it from the watermark.
func (c *Controller) replan(lost *rt.DeviceLostError) (Report, error) {
	s := c.Spec
	rep := Report{Replanned: true, Lost: lost}
	rep.LostDevice = s.Cluster.Devices[lost.Device].GPU.Name

	reduced, oldID, err := removeDevice(s.Cluster, lost.Device)
	if err != nil {
		return Report{}, err
	}
	degraded := *s
	degraded.Cluster = reduced
	res, err := assigner.Optimize(&degraded, c.Timer)
	if err != nil {
		return Report{}, fmt.Errorf("failover: no feasible degraded plan on %d surviving devices: %w",
			reduced.NumDevices(), err)
	}
	rep.DegradedPlan = res.Plan

	// Layers whose physical home changed must migrate: quantized weights
	// at the new plan's precision, plus each resident request's KV state
	// up to the watermark (none when prefill had not completed — the
	// resumed run re-prefills from scratch).
	oldHome := layerHomes(c.Plan, s.Cfg.Layers, nil)
	newHome := layerHomes(res.Plan, s.Cfg.Layers, oldID)
	newBits := res.Plan.LayerBits(s.Cfg.Layers)
	var movedBits []int
	for l := 0; l < s.Cfg.Layers; l++ {
		if newHome[l] != oldHome[l] {
			movedBits = append(movedBits, newBits[l])
		}
	}
	rep.MovedLayers = len(movedBits)
	kvSeq := 0
	if lost.PrefillDone {
		kvSeq = s.Work.Prompt + lost.Watermark
	}
	rep.Migration, err = costmodel.MigrationCost(costmodel.MigrationInput{
		Cfg: s.Cfg, MovedLayerBits: movedBits, GlobalBatch: s.Work.GlobalBatch,
		KVSeqLen: kvSeq, KVBits: s.KVBits, Link: s.Cluster.InterNode,
	})
	if err != nil {
		return Report{}, err
	}
	c.observe(&rep)

	start := 0
	if lost.PrefillDone {
		start = lost.Watermark
	}
	eng := &rt.Engine{Spec: &degraded, Plan: res.Plan, Timer: c.Timer, StartRound: start, Obs: c.Obs, Spans: c.Spans}
	rep.Resumed, err = eng.Run()
	if err != nil {
		return Report{}, fmt.Errorf("failover: resumed run failed: %w", err)
	}
	durable := lost.DurableTokens
	if !lost.PrefillDone {
		durable = 0
	}
	rep.TotalTokens = durable + rep.Resumed.TokensOut
	rep.TotalLatencySec = lost.AtSec + rep.Migration.TransferSec + rep.Resumed.LatencySec
	return rep, nil
}

// observe exports the llmpq_failover_* metrics and the migration span.
func (c *Controller) observe(rep *Report) {
	if c.Obs != nil {
		c.Obs.Counter(metricReplans).Inc()
		c.Obs.Gauge(metricMovedLayers).Set(float64(rep.MovedLayers))
		c.Obs.Gauge(metricMigrationBytes).Set(rep.Migration.TotalBytes)
		c.Obs.Gauge(metricMigrationSecs).Set(rep.Migration.TransferSec)
		round := 0
		if rep.Lost.PrefillDone {
			round = rep.Lost.Watermark
		}
		c.Obs.Gauge(metricResumeRound).Set(float64(round))
	}
	if c.Spans != nil {
		c.Spans.Record(obs.Span{
			Name: "migrate", Cat: "failover", TID: rep.Lost.Stage,
			Start: rep.Lost.AtSec, Dur: rep.Migration.TransferSec,
			Args: map[string]string{
				"moved_layers": fmt.Sprintf("%d", rep.MovedLayers),
				"bytes":        fmt.Sprintf("%.0f", rep.Migration.TotalBytes),
			},
		})
	}
}

// removeDevice returns a copy of the cluster without the given device,
// surviving devices reindexed to contiguous IDs (node placement
// preserved), plus the newID→oldID mapping.
func removeDevice(c hardware.Cluster, dev int) (hardware.Cluster, []int, error) {
	if dev < 0 || dev >= len(c.Devices) {
		return hardware.Cluster{}, nil, fmt.Errorf("failover: device %d out of [0,%d)", dev, len(c.Devices))
	}
	if len(c.Devices) < 2 {
		return hardware.Cluster{}, nil, fmt.Errorf("failover: cannot lose the only device")
	}
	out := hardware.Cluster{
		Name: c.Name + "-degraded", InterNode: c.InterNode, ModelName: c.ModelName,
	}
	var oldID []int
	for _, d := range c.Devices {
		if d.ID == dev {
			continue
		}
		oldID = append(oldID, d.ID)
		d.ID = len(out.Devices)
		out.Devices = append(out.Devices, d)
	}
	return out, oldID, nil
}

// layerHomes maps each model layer to the physical device serving it
// under a plan. idMap, when non-nil, translates the plan's device
// indices (into a reduced cluster) back to original physical IDs.
func layerHomes(p *assigner.Plan, layers int, idMap []int) []int {
	home := make([]int, layers)
	g := p.Group
	if g <= 1 {
		g = 1
	}
	for j := 0; j < p.NumStages(); j++ {
		dev := p.Order[j]
		if idMap != nil {
			dev = idMap[dev]
		}
		for grp := p.Boundaries[j]; grp < p.Boundaries[j+1]; grp++ {
			for l := grp * g; l < (grp+1)*g && l < layers; l++ {
				home[l] = dev
			}
		}
	}
	return home
}
