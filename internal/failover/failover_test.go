package failover

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/assigner"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/hardware"
	"repro/internal/obs"
	rt "repro/internal/runtime"
)

// table3Spec plans the paper's cluster 3 (3×T4 + V100 serving OPT-30B)
// — the acceptance scenario for permanent device loss.
func table3Spec(t *testing.T) (*assigner.Spec, *assigner.Plan) {
	t.Helper()
	spec, err := core.BuildSpec(core.Request{
		ClusterID:   3,
		GlobalBatch: 8,
		PromptLen:   128,
		Generate:    16,
		Theta:       0.1,
		Group:       6,
		Method:      assigner.MethodDP,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := assigner.Optimize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	return spec, res.Plan
}

// TestFailoverTable3PermanentLoss is the headline acceptance scenario:
// lose a device mid-run on a Table-3 cluster, replan on the survivors,
// resume from the watermark, and finish every token.
func TestFailoverTable3PermanentLoss(t *testing.T) {
	spec, plan := table3Spec(t)
	clean, err := (&rt.Engine{Spec: spec, Plan: plan, Timer: assigner.ProfilerTimer{}}).Run()
	if err != nil {
		t.Fatal(err)
	}

	run := func() Report {
		reg := obs.NewRegistry()
		ctl := &Controller{Spec: spec, Plan: plan, Timer: assigner.ProfilerTimer{}, Obs: reg}
		sched := &chaos.Schedule{Faults: []chaos.Fault{
			{Kind: chaos.KindCrash, Stage: 1, AtSec: clean.LatencySec * 0.6, Permanent: true},
		}}
		rep, err := ctl.Run(sched)
		if err != nil {
			t.Fatal(err)
		}
		if got := reg.Counter("llmpq_failover_replans_total").Value(); got != 1 {
			t.Errorf("replans counter %.0f, want 1", got)
		}
		return rep
	}
	rep := run()
	if !rep.Replanned || rep.Lost == nil {
		t.Fatal("expected a replan")
	}
	// The degraded plan must be valid for the reduced cluster: same spec
	// with the surviving devices (memory constraints are part of the
	// solve; Validate re-checks structure + stage memory fit).
	degraded := *spec
	reduced, _, err := removeDevice(spec.Cluster, rep.Lost.Device)
	if err != nil {
		t.Fatal(err)
	}
	degraded.Cluster = reduced
	if err := rep.DegradedPlan.Validate(&degraded); err != nil {
		t.Errorf("degraded plan invalid: %v", err)
	}
	if rep.DegradedPlan.NumStages() != spec.Cluster.NumDevices()-1 {
		t.Errorf("degraded plan has %d stages, want %d", rep.DegradedPlan.NumStages(), spec.Cluster.NumDevices()-1)
	}
	// Token conservation: the failover run generates exactly the no-fault
	// total — nothing lost, nothing double-counted.
	if rep.TotalTokens != clean.TokensOut {
		t.Errorf("total tokens %d, want %d (clean run)", rep.TotalTokens, clean.TokensOut)
	}
	if rep.TotalLatencySec <= clean.LatencySec {
		t.Errorf("failover latency %.4f not above clean %.4f", rep.TotalLatencySec, clean.LatencySec)
	}
	if rep.MovedLayers <= 0 || rep.Migration.TransferSec <= 0 {
		t.Errorf("migration empty: %d layers, %.4f s", rep.MovedLayers, rep.Migration.TransferSec)
	}
	// Byte-for-byte repeatability of the whole report.
	if again := run(); !reflect.DeepEqual(rep, again) {
		t.Errorf("failover run not deterministic:\nfirst: %+v\nagain: %+v", rep, again)
	}
}

// TestFailoverCleanRunPassesThrough: without a permanent fault the
// controller reports the plain run.
func TestFailoverCleanRunPassesThrough(t *testing.T) {
	spec, plan := table3Spec(t)
	ctl := &Controller{Spec: spec, Plan: plan, Timer: assigner.ProfilerTimer{}}
	rep, err := ctl.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replanned || rep.Lost != nil {
		t.Error("clean run must not replan")
	}
	if rep.TotalTokens != rep.First.TokensOut || rep.TotalTokens == 0 {
		t.Errorf("pass-through tokens %d vs %d", rep.TotalTokens, rep.First.TokensOut)
	}
}

// TestFailoverPrefillIncompleteLoss: a loss before prefill completes has
// no durable tokens — the resumed run re-executes from scratch and the
// migration ships weights only.
func TestFailoverPrefillIncompleteLoss(t *testing.T) {
	spec, plan := table3Spec(t)
	ctl := &Controller{Spec: spec, Plan: plan, Timer: assigner.ProfilerTimer{}}
	rep, err := ctl.Run(&chaos.Schedule{Faults: []chaos.Fault{
		{Kind: chaos.KindCrash, Stage: 0, AtSec: 1e-4, Permanent: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Replanned {
		t.Fatal("expected a replan")
	}
	if rep.Lost.PrefillDone || rep.Lost.Watermark != 0 {
		t.Fatalf("loss at t≈0 must precede prefill: %+v", rep.Lost)
	}
	if rep.Migration.KVBytes != 0 {
		t.Errorf("no KV to migrate before prefill, got %.0f bytes", rep.Migration.KVBytes)
	}
	clean, err := (&rt.Engine{Spec: spec, Plan: plan, Timer: assigner.ProfilerTimer{}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalTokens != clean.TokensOut {
		t.Errorf("total tokens %d, want %d", rep.TotalTokens, clean.TokensOut)
	}
}

func TestRemoveDevice(t *testing.T) {
	c := hardware.Clusters[3] // 3×T4 + V100
	out, oldID, err := removeDevice(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumDevices() != 3 {
		t.Fatalf("surviving devices %d, want 3", out.NumDevices())
	}
	wantOld := []int{0, 2, 3}
	if !reflect.DeepEqual(oldID, wantOld) {
		t.Errorf("oldID map %v, want %v", oldID, wantOld)
	}
	for i, d := range out.Devices {
		if d.ID != i {
			t.Errorf("device %d reindexed to %d", i, d.ID)
		}
		if want := c.Devices[wantOld[i]].Node; d.Node != want {
			t.Errorf("device %d node %d, want %d", i, d.Node, want)
		}
	}
	if !strings.HasSuffix(out.Name, "-degraded") {
		t.Errorf("degraded cluster name %q", out.Name)
	}
	if _, _, err := removeDevice(c, 9); err == nil {
		t.Error("out-of-range device must fail")
	}
	single := hardware.Clusters[1]
	if _, _, err := removeDevice(single, 0); err == nil {
		t.Error("losing the only device must fail")
	}
}

func TestRemoveDevicesMulti(t *testing.T) {
	c := hardware.Clusters[3] // 3×T4 + V100
	out, oldID, err := removeDevices(c, []int{3, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumDevices() != 2 {
		t.Fatalf("surviving devices %d, want 2", out.NumDevices())
	}
	wantOld := []int{0, 2}
	if !reflect.DeepEqual(oldID, wantOld) {
		t.Errorf("oldID map %v, want %v", oldID, wantOld)
	}
	for i, d := range out.Devices {
		if d.ID != i {
			t.Errorf("device %d reindexed to %d", i, d.ID)
		}
		if want := c.Devices[wantOld[i]].Node; d.Node != want {
			t.Errorf("device %d node %d, want %d", i, d.Node, want)
		}
	}
	if _, _, err := removeDevices(c, nil); err == nil {
		t.Error("empty loss set must fail")
	}
	if _, _, err := removeDevices(c, []int{0, 1, 2, 3}); err == nil {
		t.Error("losing every device must fail")
	}
	if _, _, err := removeDevices(c, []int{0, 7}); err == nil {
		t.Error("out-of-range device must fail")
	}
}

// TestReplanMultiTwoDevices: one replan heals a loss event spanning two
// devices — the path internal/dist takes when a worker serving several
// stages dies. The outcome must be deterministic and name both devices.
func TestReplanMultiTwoDevices(t *testing.T) {
	spec, plan := table3Spec(t)
	lost := &rt.DeviceLostError{
		Stage: 1, Device: 1, AtSec: 1.5,
		Watermark: 4, DurableTokens: 32, PrefillDone: true,
	}
	run := func() (*Outcome, *obs.Registry) {
		reg := obs.NewRegistry()
		out, err := ReplanMulti(spec, plan, nil, lost, []int{2}, reg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return out, reg
	}
	out, reg := run()
	if got := out.Degraded.Cluster.NumDevices(); got != 2 {
		t.Fatalf("degraded cluster has %d devices, want 2", got)
	}
	if len(out.LostDevices) != 2 || out.LostDevices[0] != out.LostDevice {
		t.Errorf("lost devices %v (first should be %q)", out.LostDevices, out.LostDevice)
	}
	if err := out.Plan.Validate(out.Degraded); err != nil {
		t.Errorf("degraded plan invalid: %v", err)
	}
	if out.StartRound != 4 || out.DurableTokens != 32 {
		t.Errorf("watermark carry-through: round %d tokens %d, want 4/32", out.StartRound, out.DurableTokens)
	}
	if out.MovedLayers <= 0 {
		t.Errorf("two lost devices must move layers, got %d", out.MovedLayers)
	}
	if got := reg.Counter("llmpq_failover_replans_total").Value(); got != 1 {
		t.Errorf("replans counter %.0f, want 1 (a multi-device loss is ONE replan)", got)
	}
	if got := reg.Gauge("llmpq_failover_lost_devices").Value(); got != 2 {
		t.Errorf("lost-devices gauge %.0f, want 2", got)
	}
	// Single-device Replan keeps the one-element list in sync.
	single, err := Replan(spec, plan, nil, lost, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(single.LostDevices) != 1 || single.LostDevices[0] != single.LostDevice {
		t.Errorf("single-loss LostDevices %v vs LostDevice %q", single.LostDevices, single.LostDevice)
	}
	// Byte-for-byte repeatability.
	again, _ := run()
	if !reflect.DeepEqual(out, again) {
		t.Errorf("multi-device replan not deterministic:\nfirst: %+v\nagain: %+v", out, again)
	}
}

func TestMigrationCost(t *testing.T) {
	spec, _ := table3Spec(t)
	br, err := costmodel.MigrationCost(costmodel.MigrationInput{
		Cfg: spec.Cfg, MovedLayerBits: []int{4, 4, 8}, GlobalBatch: 8,
		KVSeqLen: 144, Link: spec.Cluster.InterNode,
	})
	if err != nil {
		t.Fatal(err)
	}
	if br.WeightBytes <= 0 || br.KVBytes <= 0 || br.TransferSec <= 0 {
		t.Errorf("degenerate breakdown: %+v", br)
	}
	if br.TotalBytes != br.WeightBytes+br.KVBytes {
		t.Errorf("total %.0f != %.0f + %.0f", br.TotalBytes, br.WeightBytes, br.KVBytes)
	}
	// Zero moved layers = zero cost, no error.
	zero, err := costmodel.MigrationCost(costmodel.MigrationInput{Cfg: spec.Cfg})
	if err != nil || zero.TotalBytes != 0 {
		t.Errorf("empty migration: %+v, %v", zero, err)
	}
	if _, err := costmodel.MigrationCost(costmodel.MigrationInput{
		Cfg: spec.Cfg, MovedLayerBits: []int{5}, GlobalBatch: 8, KVSeqLen: 10,
	}); err == nil {
		t.Error("bitwidth 5 must be rejected")
	}
	if _, err := costmodel.MigrationCost(costmodel.MigrationInput{
		Cfg: spec.Cfg, MovedLayerBits: []int{4}, GlobalBatch: 0, KVSeqLen: 10,
	}); err == nil {
		t.Error("zero batch must be rejected")
	}
}
