package failover

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/assigner"
	"repro/internal/chaos"
	"repro/internal/costmodel"
	"repro/internal/obs"
	rt "repro/internal/runtime"
)

// healSchedule builds the canonical heal scenario on the Table-3
// cluster: a permanent loss at 60% of the clean latency that heals
// shortly after, with the given flap count.
func healSched(clean rt.Stats, flaps int) *chaos.Schedule {
	return &chaos.Schedule{Faults: []chaos.Fault{{
		Kind: chaos.KindCrash, Stage: 1, AtSec: clean.LatencySec * 0.6,
		Permanent: true, RecoverAfterSec: clean.LatencySec * 0.05, Flaps: flaps,
	}}}
}

// TestFailoverHealRestoresCapacity is the heal acceptance scenario: lose
// a device mid-run, replan degraded, then — once the device returns and
// holds its lease for the dwell — replan back onto the full cluster and
// finish there. Token conservation must hold across all three hops and
// the whole report must be byte-deterministic.
func TestFailoverHealRestoresCapacity(t *testing.T) {
	spec, plan := table3Spec(t)
	clean, err := (&rt.Engine{Spec: spec, Plan: plan, Timer: assigner.ProfilerTimer{}}).Run()
	if err != nil {
		t.Fatal(err)
	}

	// Each run gets a freshly built spec (cold solve cache) — the shape
	// of two separate seeded processes, whose artifacts must byte-match.
	// The registry text is snapshotted before any assertion can register
	// new zero-valued families via lookup.
	run := func() (Report, *obs.Registry, string) {
		s, p := table3Spec(t)
		reg := obs.NewRegistry()
		ctl := &Controller{
			Spec: s, Plan: p, Timer: assigner.ProfilerTimer{}, Obs: reg,
			HealDwellSec: clean.LatencySec * 0.02,
		}
		rep, err := ctl.Run(healSched(clean, 0))
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := reg.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		return rep, reg, b.String()
	}
	rep, reg, text := run()
	if !rep.Replanned || !rep.Restored || rep.Quarantined {
		t.Fatalf("expected replan+restore, got replanned=%v restored=%v quarantined=%v",
			rep.Replanned, rep.Restored, rep.Quarantined)
	}
	if rep.RestoreHalt == nil || rep.RestoreHalt.Watermark < rep.Lost.Watermark {
		t.Fatalf("restore halt %+v must not regress the loss watermark %d", rep.RestoreHalt, rep.Lost.Watermark)
	}
	// The restored plan serves the ORIGINAL cluster again — and because
	// the pre-loss plan warm-starts the restore solve, the fleet replans
	// back to exactly the plan it ran before the loss.
	if err := rep.RestoredPlan.Validate(spec); err != nil {
		t.Errorf("restored plan invalid on the original spec: %v", err)
	}
	if !reflect.DeepEqual(rep.RestoredPlan, plan) {
		t.Errorf("full restore did not return to the pre-loss plan:\nrestored: %+v\noriginal: %+v", rep.RestoredPlan, plan)
	}
	// Token conservation across loss → degraded → restore → final.
	if rep.TotalTokens != clean.TokensOut {
		t.Errorf("total tokens %d, want %d (clean run)", rep.TotalTokens, clean.TokensOut)
	}
	if rep.Final.TokensOut <= 0 {
		t.Error("final run on the restored plan generated nothing")
	}
	if rep.TotalLatencySec <= clean.LatencySec {
		t.Errorf("heal-cycle latency %.4f not above clean %.4f", rep.TotalLatencySec, clean.LatencySec)
	}
	if got := reg.Counter("llmpq_failover_restore_total").Value(); got != 1 {
		t.Errorf("restore counter %.0f, want 1", got)
	}
	if got := reg.Counter("llmpq_heal_device_returns_total").Value(); got != 1 {
		t.Errorf("heal returns counter %.0f, want 1", got)
	}
	if got := reg.Counter("llmpq_heal_quarantined_total").Value(); got != 0 {
		t.Errorf("quarantine counter %.0f, want 0", got)
	}
	// Seeded flap schedules must reproduce byte-for-byte.
	again, _, text2 := run()
	if !reflect.DeepEqual(rep, again) {
		t.Errorf("heal run not deterministic:\nfirst: %+v\nagain: %+v", rep, again)
	}
	if text != text2 {
		t.Error("sim registries differ across identical heal runs")
	}
}

// TestFailoverFlapQuarantine: a device that flaps past the tolerance is
// not replanned back in — the run finishes degraded, tokens conserved.
func TestFailoverFlapQuarantine(t *testing.T) {
	spec, plan := table3Spec(t)
	clean, err := (&rt.Engine{Spec: spec, Plan: plan, Timer: assigner.ProfilerTimer{}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctl := &Controller{Spec: spec, Plan: plan, Timer: assigner.ProfilerTimer{}, Obs: reg}
	rep, err := ctl.Run(healSched(clean, 2)) // 2 flaps >= default tolerance 2
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Quarantined || rep.Restored {
		t.Fatalf("2 flaps must quarantine: quarantined=%v restored=%v", rep.Quarantined, rep.Restored)
	}
	if rep.TotalTokens != clean.TokensOut {
		t.Errorf("quarantined run tokens %d, want %d", rep.TotalTokens, clean.TokensOut)
	}
	if got := reg.Counter("llmpq_heal_quarantined_total").Value(); got != 1 {
		t.Errorf("quarantine counter %.0f, want 1", got)
	}
	if got := reg.Counter("llmpq_failover_restore_total").Value(); got != 0 {
		t.Errorf("restore counter %.0f, want 0 when quarantined", got)
	}
	// A raised tolerance admits the same schedule.
	ctl2 := &Controller{Spec: spec, Plan: plan, Timer: assigner.ProfilerTimer{}, FlapTolerance: 3}
	rep2, err := ctl2.Run(healSched(clean, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Quarantined || !rep2.Restored {
		t.Errorf("tolerance 3 must admit 2 flaps: quarantined=%v restored=%v", rep2.Quarantined, rep2.Restored)
	}
	if rep2.TotalTokens != clean.TokensOut {
		t.Errorf("restored run tokens %d, want %d", rep2.TotalTokens, clean.TokensOut)
	}
}

// TestFailoverHealAfterDrain: a heal scheduled past the degraded run's
// completion never fires — the report is the plain shrink failover.
func TestFailoverHealAfterDrain(t *testing.T) {
	spec, plan := table3Spec(t)
	clean, err := (&rt.Engine{Spec: spec, Plan: plan, Timer: assigner.ProfilerTimer{}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	ctl := &Controller{Spec: spec, Plan: plan, Timer: assigner.ProfilerTimer{}}
	sched := &chaos.Schedule{Faults: []chaos.Fault{{
		Kind: chaos.KindCrash, Stage: 1, AtSec: clean.LatencySec * 0.6,
		Permanent: true, RecoverAfterSec: clean.LatencySec * 100,
	}}}
	rep, err := ctl.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored || rep.Quarantined {
		t.Errorf("late heal must not restore: restored=%v quarantined=%v", rep.Restored, rep.Quarantined)
	}
	if !rep.Replanned || rep.TotalTokens != clean.TokensOut {
		t.Errorf("shrink failover broken: replanned=%v tokens=%d want %d", rep.Replanned, rep.TotalTokens, clean.TokensOut)
	}
}

// TestReplanRestoreValidation pins the restore preconditions.
func TestReplanRestoreValidation(t *testing.T) {
	spec, plan := table3Spec(t)
	halt := &rt.RestoreHaltError{AtSec: 1, Watermark: 4, DurableTokens: 32, PrefillDone: true}
	if _, err := ReplanRestore(spec, plan, nil, nil, halt, nil, nil, nil, nil); err == nil ||
		!strings.Contains(err.Error(), "degraded outcome") {
		t.Errorf("nil degraded outcome accepted: %v", err)
	}
	lost := &rt.DeviceLostError{Stage: 1, Device: 1, AtSec: 1, Watermark: 4, DurableTokens: 32, PrefillDone: true}
	out, err := Replan(spec, plan, nil, lost, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReplanRestore(spec, plan, nil, out, nil, nil, nil, nil, nil); err == nil ||
		!strings.Contains(err.Error(), "halt watermark") {
		t.Errorf("nil halt accepted: %v", err)
	}
}

// TestReplanRestorePartial: when only some lost devices return, the
// restore solves on the partially re-expanded cluster and names exactly
// the returned devices.
func TestReplanRestorePartial(t *testing.T) {
	spec, plan := table3Spec(t)
	lost := &rt.DeviceLostError{Stage: 1, Device: 1, AtSec: 1, Watermark: 4, DurableTokens: 32, PrefillDone: true}
	// Lose devices 1 and 2 together; only device 1 comes back.
	out, err := ReplanMulti(spec, plan, nil, lost, []int{2}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	halt := &rt.RestoreHaltError{AtSec: 2, Watermark: 6, DurableTokens: 48, PrefillDone: true}
	rout, err := ReplanRestore(spec, plan, nil, out, halt, []int{2}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := rout.Restored.Cluster.NumDevices(); n != spec.Cluster.NumDevices()-1 {
		t.Errorf("partial restore cluster has %d devices, want %d", n, spec.Cluster.NumDevices()-1)
	}
	want := []string{spec.Cluster.Devices[1].GPU.Name}
	if !reflect.DeepEqual(rout.RestoredDevices, want) {
		t.Errorf("restored devices %v, want %v", rout.RestoredDevices, want)
	}
	if err := rout.Plan.Validate(rout.Restored); err != nil {
		t.Errorf("partial-restore plan invalid: %v", err)
	}
	if rout.StartRound != halt.Watermark || rout.DurableTokens != halt.DurableTokens {
		t.Errorf("resume point %d/%d, want %d/%d", rout.StartRound, rout.DurableTokens, halt.Watermark, halt.DurableTokens)
	}
}

// TestObserveRestoreReplayed: journal recovery re-exports the restore
// families without recomputing the solve.
func TestObserveRestoreReplayed(t *testing.T) {
	reg := obs.NewRegistry()
	halt := &rt.RestoreHaltError{AtSec: 3, Watermark: 5, DurableTokens: 40, PrefillDone: true}
	ObserveRestoreReplayed(reg, nil, halt, []string{"T4", "V100"}, 7,
		costmodel.MigrationBreakdown{TotalBytes: 1024, TransferSec: 0.5}, 5)
	if got := reg.Counter("llmpq_failover_restore_total").Value(); got != 1 {
		t.Errorf("restore counter %.0f, want 1", got)
	}
	if got := reg.Counter("llmpq_heal_device_returns_total").Value(); got != 2 {
		t.Errorf("heal returns %.0f, want 2", got)
	}
	if got := reg.Gauge("llmpq_failover_restore_moved_layers").Value(); got != 7 {
		t.Errorf("moved layers gauge %.0f, want 7", got)
	}
	if got := reg.Gauge("llmpq_failover_restore_resume_round").Value(); got != 5 {
		t.Errorf("resume round gauge %.0f, want 5", got)
	}
}
