package failover

import (
	"errors"
	"testing"

	"repro/internal/assigner"
	"repro/internal/chaos"
	"repro/internal/hardware"
	"repro/internal/indicator"
	"repro/internal/model"
	rt "repro/internal/runtime"
)

var edgeModel = model.Config{
	Name: "fo-test", Family: model.OPT, Hidden: 2048, FFN: 8192,
	Layers: 8, Heads: 16, VocabSize: 50272, MaxPosEmb: 2048, TiedEmbed: true,
}

func edgeGPU(name string, memGB float64) hardware.GPU {
	return hardware.GPU{
		Name: name, MemoryGB: memGB, FP16TFLOPS: 50, BandwidthGBs: 600,
		ComputeEff:       map[int]float64{3: 0.45, 4: 0.5, 8: 0.8, 16: 1.0},
		MemEff:           map[int]float64{3: 0.7, 4: 0.78, 8: 0.91, 16: 1.0},
		LaunchOverheadUS: 10,
	}
}

// edgeSpec builds a two-node toy cluster (one device per node, memA and
// memB gigabytes) serving edgeModel — small enough that feasibility
// flips with device memory.
func edgeSpec(memA, memB float64) *assigner.Spec {
	full := indicator.Synthetic(edgeModel, []int{3, 4, 8, 16}, 7)
	omega := indicator.Omega{Bits: []int{4, 8, 16}}
	for l := 0; l < full.Layers(); l++ {
		row := make([]float64, 3)
		for i, b := range []int{4, 8, 16} {
			v, _ := full.At(l, b)
			row[i] = v
		}
		omega.Values = append(omega.Values, row)
	}
	return &assigner.Spec{
		Cfg: edgeModel,
		Cluster: hardware.Cluster{
			Name: "fo-edge", InterNode: hardware.Eth800Gbps,
			Devices: []hardware.Device{
				{ID: 0, GPU: edgeGPU("gpuA", memA), Node: 0},
				{ID: 1, GPU: edgeGPU("gpuB", memB), Node: 1},
			},
		},
		Work:   assigner.Workload{GlobalBatch: 8, Prompt: 128, Generate: 16},
		Bits:   []int{4, 8, 16},
		Omega:  omega,
		Theta:  0.01,
		Method: assigner.MethodDP,
	}
}

// TestFailoverOnlyDeviceOnNode: losing the only device of a node leaves
// a reduced cluster with that node absent entirely; the replanned run
// still conserves every token.
func TestFailoverOnlyDeviceOnNode(t *testing.T) {
	spec := edgeSpec(3.0, 3.0)
	res, err := assigner.Optimize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := (&rt.Engine{Spec: spec, Plan: res.Plan, Timer: assigner.ProfilerTimer{}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Device 1 is the only device on node 1.
	lostStage := -1
	for j, d := range res.Plan.Order {
		if d == 1 {
			lostStage = j
		}
	}
	if lostStage < 0 {
		t.Fatal("plan does not place device 1")
	}
	ctl := &Controller{Spec: spec, Plan: res.Plan, Timer: assigner.ProfilerTimer{}}
	rep, err := ctl.Run(&chaos.Schedule{Faults: []chaos.Fault{
		{Kind: chaos.KindCrash, Stage: lostStage, AtSec: clean.LatencySec * 0.6, Permanent: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Replanned {
		t.Fatal("expected a replan")
	}
	for _, d := range rep.DegradedPlan.Order {
		if d != 0 {
			t.Errorf("degraded plan uses device %d, want only the survivor", d)
		}
	}
	if rep.TotalTokens != clean.TokensOut {
		t.Errorf("total tokens %d, want %d", rep.TotalTokens, clean.TokensOut)
	}
}

// TestReplanPrefillLossHasNoKVTerm: calling the exported Replan step for
// a loss before prefill completed prices weights only — no KV migration
// term, resume from round zero, zero durable tokens.
func TestReplanPrefillLossHasNoKVTerm(t *testing.T) {
	spec := edgeSpec(3.0, 3.0)
	res, err := assigner.Optimize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	lost := &rt.DeviceLostError{Stage: 0, Device: res.Plan.Order[0], AtSec: 1e-4, PrefillDone: false}
	out, err := Replan(spec, res.Plan, assigner.ProfilerTimer{}, lost, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.StartRound != 0 || out.DurableTokens != 0 {
		t.Errorf("prefill loss must resume from scratch: start %d durable %d", out.StartRound, out.DurableTokens)
	}
	if out.Migration.KVBytes != 0 {
		t.Errorf("no KV to migrate before prefill, got %.0f bytes", out.Migration.KVBytes)
	}
	if out.MovedLayers > 0 && out.Migration.WeightBytes <= 0 {
		t.Errorf("moved %d layers but zero weight bytes", out.MovedLayers)
	}
}

// TestReplanInfeasibleSurfacesDeviceLoss: when the reduced cluster
// cannot hold the model at any precision, the controller returns a clean
// *ReplanFailedError with the original *DeviceLostError still reachable
// via errors.As — and terminates rather than deadlocking.
func TestReplanInfeasibleSurfacesDeviceLoss(t *testing.T) {
	// 0.5 GB per device: feasible split across two, hopeless on one.
	spec := edgeSpec(0.5, 0.5)
	res, err := assigner.Optimize(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := (&rt.Engine{Spec: spec, Plan: res.Plan, Timer: assigner.ProfilerTimer{}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	ctl := &Controller{Spec: spec, Plan: res.Plan, Timer: assigner.ProfilerTimer{}}
	_, err = ctl.Run(&chaos.Schedule{Faults: []chaos.Fault{
		{Kind: chaos.KindCrash, Stage: 0, AtSec: clean.LatencySec * 0.5, Permanent: true},
	}})
	if err == nil {
		t.Fatal("replan on a hopeless survivor must fail")
	}
	var rf *ReplanFailedError
	if !errors.As(err, &rf) {
		t.Fatalf("want *ReplanFailedError, got %T: %v", err, err)
	}
	if rf.Survivors != 1 {
		t.Errorf("survivors %d, want 1", rf.Survivors)
	}
	var lost *rt.DeviceLostError
	if !errors.As(err, &lost) {
		t.Fatalf("DeviceLostError must stay reachable through the failure: %v", err)
	}
	if lost.Stage != 0 {
		t.Errorf("lost stage %d, want 0", lost.Stage)
	}
}
