package dist

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/journal"
)

// TestDecodeStateViolations pins the semantic validator's taxonomy: each
// structural violation is a typed corruption naming the record index,
// never a panic or a silently skipped record.
func TestDecodeStateViolations(t *testing.T) {
	s := distSpec(t)
	p := distPlan(t, s)
	payload := NewPlanPayload(s, p)
	enc := func(recs ...*Record) [][]byte {
		out := make([][]byte, len(recs))
		for i, r := range recs {
			buf, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = buf
		}
		return out
	}
	plan0 := func() *Record {
		return &Record{Type: RecPlan, Seq: 1, Plan: &PlanRecord{Epoch: 0, Reason: "initial", Payload: payload}}
	}
	cases := []struct {
		name string
		want string
		recs [][]byte
	}{
		{"bad json", "bad JSON", [][]byte{[]byte("{")}},
		{"seq break", "seq 2, want 1", enc(&Record{Type: RecDone, Seq: 2})},
		{"first not plan", "must open with a plan", enc(&Record{Type: RecDone, Seq: 1})},
		{"record after done", "after done", enc(plan0(), &Record{Type: RecDone, Seq: 2}, &Record{Type: RecDone, Seq: 3})},
		{"plan without payload", "plan record without payload", enc(&Record{Type: RecPlan, Seq: 1})},
		{"plan epoch skip", "plan epoch 2, want 1", enc(plan0(),
			&Record{Type: RecPlan, Seq: 2, Plan: &PlanRecord{Epoch: 2, Payload: payload}})},
		{"plan missing inner payload", "without plan payload", enc(&Record{Type: RecPlan, Seq: 1, Plan: &PlanRecord{}})},
		{"plan invalid inner payload", "invalid plan payload", enc(&Record{Type: RecPlan, Seq: 1, Plan: &PlanRecord{Payload: &PlanPayload{}}})},
		{"plan negative watermark", "negative watermark", enc(&Record{Type: RecPlan, Seq: 1, Plan: &PlanRecord{Payload: payload, StartRound: -1}})},
		{"member without payload", "member record without payload", enc(plan0(), &Record{Type: RecMember, Seq: 2})},
		{"member missing token", "missing name, token", enc(plan0(),
			&Record{Type: RecMember, Seq: 2, Member: &MemberRecord{Name: "w", Ord: 1}})},
		{"round without payload", "round record without payload", enc(plan0(), &Record{Type: RecRound, Seq: 2})},
		{"round negative watermark", "negative watermark in round", enc(plan0(),
			&Record{Type: RecRound, Seq: 2, Round: &RoundRecord{Watermark: -1}})},
		{"round unadopted epoch", "unadopted epoch 1", enc(plan0(),
			&Record{Type: RecRound, Seq: 2, Round: &RoundRecord{Epoch: 1, Watermark: 1}})},
		{"replan without payload", "replan record without payload", enc(plan0(), &Record{Type: RecReplan, Seq: 2})},
		{"replan without worker", "without a lost worker", enc(plan0(),
			&Record{Type: RecReplan, Seq: 2, Replan: &ReplanRecord{}})},
		{"restore without payload", "restore record without payload", enc(plan0(), &Record{Type: RecRestore, Seq: 2})},
		{"restore without worker", "without a healed worker", enc(plan0(),
			&Record{Type: RecRestore, Seq: 2, Restore: &RestoreRecord{}})},
		{"restore before replan", "without a preceding replan", enc(plan0(),
			&Record{Type: RecRestore, Seq: 2, Restore: &RestoreRecord{HealedWorkers: []string{"w"}}})},
		{"recover without payload", "recover record without payload", enc(plan0(), &Record{Type: RecRecover, Seq: 2})},
		{"unknown type", "unknown record type", enc(plan0(), &Record{Type: "bogus", Seq: 2})},
		{"empty journal", "no plan record", nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := DecodeState(c.recs)
			if err == nil {
				t.Fatal("violation decoded cleanly")
			}
			var corrupt *journal.CorruptJournalError
			if !errors.As(err, &corrupt) {
				t.Fatalf("error is not the typed corruption: %v", err)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}
