package dist

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
)

// NewFaultListener wraps a listener so the schedule's network faults
// (chaos.KindConnDrop, KindPartition, KindNetDelay) are realized at the
// transport layer of every accepted connection:
//
//   - conn-drop severs the fault's accepted-connection ordinal after it
//     has delivered AfterFrames complete frames — a frame count, not a
//     timestamp, so the trigger point is deterministic;
//   - partition makes reads and writes on matching connections fail
//     during [AtSec, AtSec+DurationSec) measured from the wrap;
//   - net-delay stalls each read on matching connections by DelaySec
//     inside its window.
//
// Connections sever by closing, so the peer observes an ordinary
// connection reset and exercises its real reconnect path. sim, when
// non-nil, receives llmpq_dist_injected_conn_drops_total — conn drops
// trip at a deterministic frame count, so the counter is safe for
// byte-diffed artifacts; ctrl receives the wall-clock-dependent
// partition and delay trip counters. A schedule with no network faults
// returns inner unchanged.
func NewFaultListener(inner net.Listener, sched *chaos.Schedule, sim, ctrl *obs.Registry) net.Listener {
	nf := sched.NetFaults()
	if len(nf) == 0 {
		return inner
	}
	return &faultListener{Listener: inner, faults: nf, start: time.Now(), sim: sim, ctrl: ctrl}
}

type faultListener struct {
	net.Listener
	faults []chaos.Fault
	start  time.Time
	sim    *obs.Registry
	ctrl   *obs.Registry

	mu       sync.Mutex
	accepted int
}

func (fl *faultListener) Accept() (net.Conn, error) {
	c, err := fl.Listener.Accept()
	if err != nil {
		return nil, err
	}
	fl.mu.Lock()
	ord := fl.accepted
	fl.accepted++
	fl.mu.Unlock()

	fc := &faultConn{Conn: c, fl: fl, ord: ord}
	for i := range fl.faults {
		f := &fl.faults[i]
		switch f.Kind {
		case chaos.KindConnDrop:
			if f.Conn == ord {
				fc.drop = f
			}
		case chaos.KindPartition:
			if f.Conn == -1 || f.Conn == ord {
				fc.partitions = append(fc.partitions, f)
			}
		case chaos.KindNetDelay:
			if f.Conn == -1 || f.Conn == ord {
				fc.delays = append(fc.delays, f)
			}
		}
	}
	return fc, nil
}

// faultConn applies the matched faults to one accepted connection. The
// embedded frame parser counts completed frames delivered to the
// coordinator so a conn-drop severs at an exact, reproducible point in
// the conversation.
type faultConn struct {
	net.Conn
	fl  *faultListener
	ord int

	drop       *chaos.Fault
	partitions []*chaos.Fault
	delays     []*chaos.Fault

	// Frame-parser state over the read byte stream.
	hdr     [4]byte
	hdrGot  int
	payload int // payload bytes still owed for the current frame
	frames  int
	dropped bool
}

// elapsedSec is wall time since the listener was armed.
func (fc *faultConn) elapsedSec() float64 { return time.Since(fc.fl.start).Seconds() }

// partitioned reports whether any matching partition window covers now.
func (fc *faultConn) partitioned() bool {
	at := fc.elapsedSec()
	for _, f := range fc.partitions {
		if at >= f.AtSec && at < f.AtSec+f.DurationSec {
			return true
		}
	}
	return false
}

func (fc *faultConn) Read(p []byte) (int, error) {
	if fc.dropped {
		return 0, fmt.Errorf("dist: connection %d severed by injected conn-drop", fc.ord)
	}
	if fc.partitioned() {
		fc.trip(fc.fl.ctrl, "llmpq_dist_partition_severs_total")
		_ = fc.Conn.Close() //llmpq:allow(errdrop): fault injection severs the conn on purpose; the injected error below is the signal
		return 0, fmt.Errorf("dist: connection %d severed by injected partition", fc.ord)
	}
	at := fc.elapsedSec()
	for _, f := range fc.delays {
		if at >= f.AtSec && at < f.AtSec+f.DurationSec {
			fc.trip(fc.fl.ctrl, "llmpq_dist_delayed_reads_total")
			time.Sleep(time.Duration(f.DelaySec * float64(time.Second)))
			break
		}
	}
	n, err := fc.Conn.Read(p)
	if n > 0 && fc.drop != nil {
		fc.countFrames(p[:n])
		if fc.frames >= fc.drop.AfterFrames {
			fc.dropped = true
			fc.trip(fc.fl.sim, "llmpq_dist_injected_conn_drops_total")
			_ = fc.Conn.Close() //llmpq:allow(errdrop): fault injection severs the conn on purpose; the next use observes it
			// The bytes already read are delivered; the very next use of
			// the connection observes the severing.
		}
	}
	return n, err
}

func (fc *faultConn) Write(p []byte) (int, error) {
	if fc.dropped {
		return 0, fmt.Errorf("dist: connection %d severed by injected conn-drop", fc.ord)
	}
	if fc.partitioned() {
		fc.trip(fc.fl.ctrl, "llmpq_dist_partition_severs_total")
		_ = fc.Conn.Close() //llmpq:allow(errdrop): fault injection severs the conn on purpose; the injected error below is the signal
		return 0, fmt.Errorf("dist: connection %d severed by injected partition", fc.ord)
	}
	return fc.Conn.Write(p)
}

// countFrames advances the frame parser over a read chunk.
func (fc *faultConn) countFrames(b []byte) {
	for len(b) > 0 {
		if fc.payload == 0 {
			// Reading the 4-byte length prefix.
			n := copy(fc.hdr[fc.hdrGot:], b)
			fc.hdrGot += n
			b = b[n:]
			if fc.hdrGot == 4 {
				fc.payload = int(binary.BigEndian.Uint32(fc.hdr[:]))
				fc.hdrGot = 0
			}
			continue
		}
		n := fc.payload
		if n > len(b) {
			n = len(b)
		}
		fc.payload -= n
		b = b[n:]
		if fc.payload == 0 {
			fc.frames++
		}
	}
}

func (fc *faultConn) trip(reg *obs.Registry, name string) {
	if reg != nil {
		reg.Counter(name).Inc()
	}
}
