package dist

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/obs"
)

// MaxFrameBytes bounds a single frame: a 4-byte big-endian length
// prefix followed by that many bytes of JSON. Plan payloads for even
// very large clusters are well under a megabyte; the cap exists so a
// corrupt or hostile length prefix cannot make a reader allocate
// gigabytes.
const MaxFrameBytes = 8 << 20

// writeFrame emits one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("dist: refusing to write an empty frame")
	}
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("dist: frame of %d bytes exceeds the %d-byte cap", len(payload), MaxFrameBytes)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("dist: zero-length frame")
	}
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("dist: frame of %d bytes exceeds the %d-byte cap", n, MaxFrameBytes)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// wire is one framed JSON connection. Sends are serialized by a mutex
// so the heartbeat goroutine and request senders interleave whole
// frames; receives belong to a single reader goroutine.
type wire struct {
	c  net.Conn
	br *bufio.Reader

	wmu sync.Mutex

	// closedCh fires once when the wire is torn down, letting a request
	// waiting on this connection resend promptly instead of riding out
	// its full deadline.
	closedCh  chan struct{}
	closeOnce sync.Once

	// Control-plane accounting (wall-clock dependent, never part of the
	// deterministic artifact): frames and bytes sent on this side.
	frames *obs.Counter
	bytes  *obs.Counter
}

// newWire wraps a connection. ctrl may be nil for an uninstrumented
// link.
func newWire(c net.Conn, ctrl *obs.Registry) *wire {
	w := &wire{c: c, br: bufio.NewReader(c), closedCh: make(chan struct{})}
	if ctrl != nil {
		w.frames = ctrl.Counter("llmpq_dist_frames_sent_total")
		w.bytes = ctrl.Counter("llmpq_dist_bytes_sent_total")
	}
	return w
}

// send marshals and writes one message as a frame.
func (w *wire) send(m *Message) error {
	if err := m.validate(); err != nil {
		return err
	}
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	w.wmu.Lock()
	defer w.wmu.Unlock()
	if err := writeFrame(w.c, b); err != nil {
		return err
	}
	if w.frames != nil {
		w.frames.Inc()
		w.bytes.Add(float64(len(b) + 4))
	}
	return nil
}

// recv reads and unmarshals one message.
func (w *wire) recv() (*Message, error) {
	b, err := readFrame(w.br)
	if err != nil {
		return nil, err
	}
	var m Message
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("dist: bad frame: %w", err)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// close tears the connection down; safe to call more than once.
func (w *wire) close() {
	w.closeOnce.Do(func() { close(w.closedCh) })
	_ = w.c.Close() //llmpq:allow(errdrop): idempotent teardown; the peer may have closed first
}

// closed fires once the wire is torn down.
func (w *wire) closed() <-chan struct{} { return w.closedCh }
