package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/assigner"
	"repro/internal/core/retry"
	"repro/internal/obs"
	rt "repro/internal/runtime"
)

// WorkerConfig parameterizes one worker process.
type WorkerConfig struct {
	// Name is the worker's stable identity; reconnects present it with
	// the rejoin token so the coordinator reattaches rather than
	// re-admitting.
	Name string
	// Connect is the coordinator's host:port.
	Connect string
	// Timer evaluates layer times; nil uses the roofline profiler —
	// which the coordinator assumes, so only override it in tests.
	Timer assigner.LayerTimer
	// Hold injects an artificial wall-clock delay before every
	// stage-time evaluation — pacing for demos and deadline tests.
	Hold time.Duration
	// FailAfterCalls, when positive, makes the worker die (sever the
	// connection and return an error) after that many evaluations — the
	// test hook for lease-expiry failover without killing a process.
	FailAfterCalls int
	// Rejoin marks every hello as a heal-capable rejoin: a coordinator
	// running with Config.Rejoin re-admits this name even after its
	// lease expired (a SIGKILLed worker restarted under the same name),
	// instead of fencing it out of the closed membership.
	Rejoin bool
	// CtrlObs receives control-plane metrics (reconnects, heartbeats
	// sent, deadline aborts); wall-clock-dependent, never byte-diffed.
	// The name carries the role: the registrysplit analyzer keys the
	// sim/ctrl registry split on it.
	CtrlObs *obs.Registry
	// Retry shapes the reconnect backoff; the zero value uses
	// retry.Default(). RetrySeed keeps the jitter deterministic.
	Retry     retry.Policy
	RetrySeed int64

	Logf func(format string, args ...any)
}

// errBye is the clean-shutdown sentinel inside the worker loop.
var errBye = errors.New("dist: coordinator said bye")

// ErrInjectedDeath is returned by RunWorker when FailAfterCalls fires.
var ErrInjectedDeath = errors.New("dist: injected worker death")

// RunWorker joins the coordinator and serves stage-time evaluations
// until told bye, the context ends, or — after a connection loss — the
// reconnect budget is exhausted. Transient disconnects are healed with
// the deterministic jittered backoff of internal/core/retry; the worker
// reattaches under its rejoin token so in-flight membership survives as
// long as the lease allows.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	if cfg.Name == "" || cfg.Connect == "" {
		return fmt.Errorf("dist: worker needs a name and a coordinator address")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Retry.MaxAttempts == 0 {
		cfg.Retry = retry.Default()
	}
	ws := &workerState{cfg: cfg}
	for {
		sess, err := ws.connect(ctx)
		if err != nil {
			return err
		}
		err = ws.serve(ctx, sess)
		switch {
		case errors.Is(err, errBye):
			cfg.Logf("worker %s: clean shutdown", cfg.Name)
			return nil
		case errors.Is(err, ErrInjectedDeath):
			return err
		case ctx.Err() != nil:
			return ctx.Err()
		default:
			cfg.Logf("worker %s: connection lost (%v); reconnecting", cfg.Name, err)
			ws.ctrlInc("llmpq_dist_reconnects_total")
		}
	}
}

// workerState is the identity that survives reconnects.
type workerState struct {
	cfg     WorkerConfig
	token   string
	payload *PlanPayload
	calls   int
}

// session is one live connection plus its membership terms.
type session struct {
	w            *wire
	heartbeatSec float64
}

// connect dials and handshakes under the retry policy. A reject is
// terminal — the coordinator will never admit this worker — while
// dial/handshake transport errors are retried with backoff.
func (ws *workerState) connect(ctx context.Context) (*session, error) {
	var sess *session
	var fatal error
	err := ws.cfg.Retry.DoContext(ctx, ws.cfg.RetrySeed, func(attempt int) error {
		if attempt > 1 {
			ws.ctrlInc("llmpq_dist_reconnect_attempts_total")
		}
		c, err := net.DialTimeout("tcp", ws.cfg.Connect, 5*time.Second)
		if err != nil {
			return err
		}
		w := newWire(c, ws.cfg.CtrlObs)
		hello := &Hello{Version: ProtocolVersion, Name: ws.cfg.Name, Token: ws.token, Rejoin: ws.cfg.Rejoin}
		if err := w.send(&Message{Type: MsgHello, Hello: hello}); err != nil {
			w.close()
			return err
		}
		_ = c.SetReadDeadline(time.Now().Add(10 * time.Second)) //llmpq:allow(errdrop): a failed deadline surfaces as the recv error on the next line
		msg, err := w.recv()
		_ = c.SetReadDeadline(time.Time{}) //llmpq:allow(errdrop): clearing a deadline on a dying conn can only fail harmlessly
		if err != nil {
			w.close()
			return err
		}
		switch msg.Type {
		case MsgWelcome:
			ws.token = msg.Welcome.Token
			if msg.Welcome.Plan != nil {
				if err := msg.Welcome.Plan.Validate(); err != nil {
					w.close()
					fatal = err
					return nil
				}
				ws.payload = msg.Welcome.Plan
			}
			sess = &session{w: w, heartbeatSec: msg.Welcome.HeartbeatSec}
			return nil
		case MsgReject:
			w.close()
			if msg.Reject.Retryable {
				// Transient refusal (e.g. a handshake for our name is
				// still in flight): surface as a retryable error so the
				// backoff loop tries again.
				return fmt.Errorf("dist: coordinator rejected worker %s (retryable): %s", ws.cfg.Name, msg.Reject.Reason)
			}
			fatal = fmt.Errorf("dist: coordinator rejected worker %s: %s", ws.cfg.Name, msg.Reject.Reason)
			return nil
		default:
			w.close()
			return fmt.Errorf("dist: expected welcome, got %q", msg.Type)
		}
	}, retry.WallSleep)
	if fatal != nil {
		return nil, fatal
	}
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s cannot reach coordinator at %s: %w", ws.cfg.Name, ws.cfg.Connect, err)
	}
	ws.cfg.Logf("worker %s: joined %s (heartbeat %.3gs)", ws.cfg.Name, ws.cfg.Connect, sess.heartbeatSec)
	return sess, nil
}

// serve pumps one session: a heartbeat goroutine renews the lease while
// the read loop answers stage-time, reconfigure, and bye frames.
func (ws *workerState) serve(ctx context.Context, sess *session) error {
	w := sess.w
	defer w.close()
	done := make(chan struct{})
	defer close(done)

	hb := time.Duration(sess.heartbeatSec * float64(time.Second))
	if hb <= 0 {
		hb = 500 * time.Millisecond
	}
	go func() {
		tick := time.NewTicker(hb)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				// Unblock the read loop so the worker notices cancellation.
				w.close()
				return
			case <-tick.C:
				if err := w.send(&Message{Type: MsgHeartbeat}); err != nil {
					w.close()
					return
				}
				ws.ctrlInc("llmpq_dist_heartbeats_sent_total")
			}
		}
	}()

	for {
		msg, err := w.recv()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		switch msg.Type {
		case MsgStageTime:
			res, alive := ws.evalStageTime(msg.StageTime)
			if !alive {
				return ErrInjectedDeath
			}
			if err := w.send(&Message{Type: MsgStageTimeResult, ID: msg.ID, StageTimeResult: res}); err != nil {
				return err
			}
		case MsgReconfigure:
			if err := msg.Reconfigure.Validate(); err != nil {
				return fmt.Errorf("dist: bad reconfigure payload: %w", err)
			}
			ws.payload = msg.Reconfigure
			ws.cfg.Logf("worker %s: reconfigured to %d stages", ws.cfg.Name, msg.Reconfigure.Plan.NumStages())
			if err := w.send(&Message{Type: MsgReconfigureOK, ID: msg.ID}); err != nil {
				return err
			}
		case MsgBye:
			return errBye
		case MsgHeartbeat, MsgWelcome:
			// Benign; nothing to do.
		default:
			// Ignore unknown frames for forward compatibility.
		}
	}
}

// evalStageTime answers one request, honoring the deadline and the
// injected-death hook. alive=false means the worker must die without
// responding.
func (ws *workerState) evalStageTime(req *StageTimeRequest) (res *StageTimeResult, alive bool) {
	expired := func() bool {
		return req.DeadlineUnixNano > 0 && time.Now().UnixNano() > req.DeadlineUnixNano
	}
	if expired() {
		ws.ctrlInc("llmpq_dist_deadline_aborts_total")
		return &StageTimeResult{Aborted: true}, true
	}
	if ws.cfg.Hold > 0 {
		time.Sleep(ws.cfg.Hold)
		if expired() {
			// The hold outlived the deadline: report the abort rather
			// than an answer the coordinator no longer wants.
			ws.ctrlInc("llmpq_dist_deadline_aborts_total")
			return &StageTimeResult{Aborted: true}, true
		}
	}
	ws.calls++
	if ws.cfg.FailAfterCalls > 0 && ws.calls > ws.cfg.FailAfterCalls {
		return nil, false
	}
	if ws.payload == nil {
		return &StageTimeResult{Err: "worker has no plan payload"}, true
	}
	sec, err := rt.StageTime(ws.payload.Spec(), ws.payload.Plan, ws.cfg.Timer, req.Stage, req.Batch, req.Round, req.Prefill)
	if err != nil {
		return &StageTimeResult{Err: err.Error()}, true
	}
	return &StageTimeResult{Seconds: sec}, true
}

func (ws *workerState) ctrlInc(name string) {
	if ws.cfg.CtrlObs != nil {
		ws.cfg.CtrlObs.Counter(name).Inc()
	}
}
