package dist

import (
	"bytes"
	"context"
	"errors"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/assigner"
	"repro/internal/chaos"
	"repro/internal/core/retry"
	"repro/internal/hardware"
	"repro/internal/indicator"
	"repro/internal/model"
	"repro/internal/obs"
	rt "repro/internal/runtime"
)

var distModel = model.Config{
	Name: "dist-test", Family: model.OPT, Hidden: 2048, FFN: 8192,
	Layers: 8, Heads: 16, VocabSize: 50272, MaxPosEmb: 2048, TiedEmbed: true,
}

func distGPU(name string, memGB float64) hardware.GPU {
	return hardware.GPU{
		Name: name, MemoryGB: memGB, FP16TFLOPS: 50, BandwidthGBs: 600,
		ComputeEff:       map[int]float64{4: 0.5, 8: 0.8, 16: 1.0},
		MemEff:           map[int]float64{4: 0.78, 8: 0.91, 16: 1.0},
		LaunchOverheadUS: 10,
	}
}

// distSpec builds a two-device heterogeneous toy cluster; 3 GB per
// device keeps a single survivor feasible after failover.
func distSpec(t testing.TB) *assigner.Spec {
	t.Helper()
	full := indicator.Synthetic(distModel, []int{4, 8, 16}, 7)
	omega := indicator.Omega{Bits: []int{4, 8, 16}}
	for l := 0; l < full.Layers(); l++ {
		row := make([]float64, 3)
		for i, b := range []int{4, 8, 16} {
			v, _ := full.At(l, b)
			row[i] = v
		}
		omega.Values = append(omega.Values, row)
	}
	return &assigner.Spec{
		Cfg: distModel,
		Cluster: hardware.Cluster{
			Name: "dist-toy", InterNode: hardware.Eth800Gbps,
			Devices: []hardware.Device{
				{ID: 0, GPU: distGPU("gpuA", 3.0), Node: 0},
				{ID: 1, GPU: distGPU("gpuB", 3.0), Node: 1},
			},
		},
		Work:   assigner.Workload{GlobalBatch: 8, Prompt: 128, Generate: 8},
		Bits:   []int{4, 8, 16},
		Omega:  omega,
		Theta:  0.01,
		Method: assigner.MethodDP,
	}
}

// distSpec3 extends the toy cluster to three devices so two workers
// share them unevenly: the round-robin assignment gives the first
// worker two stages — the multi-device loss scenario.
func distSpec3(t testing.TB) *assigner.Spec {
	t.Helper()
	s := distSpec(t)
	s.Cluster.Name = "dist-toy-3"
	s.Cluster.Devices = append(s.Cluster.Devices,
		hardware.Device{ID: 2, GPU: distGPU("gpuC", 3.0), Node: 2})
	return s
}

func distPlan(t testing.TB, s *assigner.Spec) *assigner.Plan {
	t.Helper()
	res, err := assigner.Optimize(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.Plan
}

// startWorkers launches n in-process workers against addr and returns a
// join function collecting their exit errors.
func startWorkers(ctx context.Context, n int, addr string, mut func(i int, cfg *WorkerConfig)) func() []error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	names := []string{"worker-a", "worker-b", "worker-c"}
	for i := 0; i < n; i++ {
		cfg := WorkerConfig{Name: names[i], Connect: addr, RetrySeed: int64(100 + i)}
		if mut != nil {
			mut(i, &cfg)
		}
		wg.Add(1)
		go func(i int, cfg WorkerConfig) {
			defer wg.Done()
			errs[i] = RunWorker(ctx, cfg)
		}(i, cfg)
	}
	return func() []error { wg.Wait(); return errs }
}

func listen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte(`{"type":"heartbeat"}`)); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil || string(got) != `{"type":"heartbeat"}` {
		t.Fatalf("round trip: %q, %v", got, err)
	}
	if err := writeFrame(&buf, nil); err == nil {
		t.Error("empty frame must be rejected")
	}
	if err := writeFrame(&buf, make([]byte, MaxFrameBytes+1)); err == nil {
		t.Error("oversize frame must be rejected")
	}
	// A hostile length prefix must fail without allocating.
	if _, err := readFrame(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})); err == nil {
		t.Error("oversize length prefix must be rejected")
	}
	if _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Error("zero-length frame must be rejected")
	}
}

func TestPlanPayloadSpecParity(t *testing.T) {
	s := distSpec(t)
	p := distPlan(t, s)
	pp := NewPlanPayload(s, p)
	if err := pp.Validate(); err != nil {
		t.Fatal(err)
	}
	for stage := 0; stage < p.NumStages(); stage++ {
		want, err := rt.StageTime(s, p, nil, stage, p.PrefillMB, 0, true)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rt.StageTime(pp.Spec(), pp.Plan, nil, stage, p.PrefillMB, 0, true)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("stage %d: payload spec %.17g, full spec %.17g", stage, got, want)
		}
	}
}

// TestCleanRunParity: a loopback coordinator with two worker goroutines
// produces stats deeply equal to the single-process engine — the
// bit-identical invariant the control plane is built on.
func TestCleanRunParity(t *testing.T) {
	s := distSpec(t)
	p := distPlan(t, s)
	local, err := (&rt.Engine{Spec: s, Plan: p, Timer: assigner.ProfilerTimer{}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ln := listen(t)
	join := startWorkers(ctx, 2, ln.Addr().String(), nil)
	res, err := Serve(ctx, Config{
		Listener: ln, Workers: 2, Spec: s, Plan: p,
		Heartbeat: 100 * time.Millisecond, Lease: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replanned {
		t.Fatal("clean run must not replan")
	}
	if !reflect.DeepEqual(res.First, local) {
		t.Errorf("distributed stats diverged:\nremote: %+v\nlocal:  %+v", res.First, local)
	}
	for i, werr := range join() {
		if werr != nil {
			t.Errorf("worker %d exit: %v", i, werr)
		}
	}
}

// TestWorkerLossFailover: a worker that dies mid-decode expires its
// lease, the coordinator replans onto the survivor, and watermark
// resume conserves every token against the clean run.
func TestWorkerLossFailover(t *testing.T) {
	s := distSpec(t)
	p := distPlan(t, s)
	clean, err := (&rt.Engine{Spec: s, Plan: p, Timer: assigner.ProfilerTimer{}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStages() < 2 {
		t.Fatalf("need a 2-stage plan, got %d", p.NumStages())
	}
	// worker-b (second in name order) owns stage 1; kill it after its
	// prefill calls plus one decode round so the loss lands mid-decode.
	kp := (s.Work.GlobalBatch + p.PrefillMB - 1) / p.PrefillMB
	kd := (s.Work.GlobalBatch + p.DecodeMB - 1) / p.DecodeMB
	reg := obs.NewRegistry()
	ctrl := obs.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ln := listen(t)
	join := startWorkers(ctx, 2, ln.Addr().String(), func(i int, cfg *WorkerConfig) {
		if i == 1 {
			cfg.FailAfterCalls = kp + kd
		}
	})
	res, err := Serve(ctx, Config{
		Listener: ln, Workers: 2, Spec: s, Plan: p,
		Heartbeat: 50 * time.Millisecond, Lease: 400 * time.Millisecond,
		Obs: reg, CtrlObs: ctrl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replanned {
		t.Fatal("expected a replan after the worker death")
	}
	if res.LostWorker != "worker-b" {
		t.Errorf("lost worker %q, want worker-b", res.LostWorker)
	}
	if !res.Lost.PrefillDone || res.Lost.Watermark < 1 {
		t.Errorf("loss should land mid-decode with a positive watermark: %+v", res.Lost)
	}
	if res.TotalTokens != clean.TokensOut {
		t.Errorf("token conservation violated: %d vs clean %d", res.TotalTokens, clean.TokensOut)
	}
	var sim bytes.Buffer
	if err := reg.WriteText(&sim); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sim.String(), "llmpq_failover_replans_total 1") {
		t.Errorf("sim metrics missing replan counter:\n%s", sim.String())
	}
	werrs := join()
	if !errors.Is(werrs[1], ErrInjectedDeath) {
		t.Errorf("worker-b should report injected death, got %v", werrs[1])
	}
	if werrs[0] != nil {
		t.Errorf("survivor exit: %v", werrs[0])
	}
}

// TestMultiStageWorkerLossSingleReplan: with 3 stages round-robined
// over 2 workers, worker-a serves stages 0 and 2. When it dies, BOTH of
// its devices must be declared lost in one replan (DESIGN.md §11) — the
// survivor takes the whole pipeline and token conservation still holds.
func TestMultiStageWorkerLossSingleReplan(t *testing.T) {
	s := distSpec3(t)
	p := distPlan(t, s)
	if p.NumStages() != 3 {
		t.Fatalf("need a 3-stage plan for two-stage ownership, got %d", p.NumStages())
	}
	clean, err := (&rt.Engine{Spec: s, Plan: p, Timer: assigner.ProfilerTimer{}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	// worker-a owns stages 0 and 2, so it sees two calls per pipeline
	// step; let it survive prefill plus two decode rounds, then die.
	kp := (s.Work.GlobalBatch + p.PrefillMB - 1) / p.PrefillMB
	kd := (s.Work.GlobalBatch + p.DecodeMB - 1) / p.DecodeMB
	reg := obs.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ln := listen(t)
	join := startWorkers(ctx, 2, ln.Addr().String(), func(i int, cfg *WorkerConfig) {
		if i == 0 {
			cfg.FailAfterCalls = 2 * (kp + 2*kd)
		}
	})
	res, err := Serve(ctx, Config{
		Listener: ln, Workers: 2, Spec: s, Plan: p,
		Heartbeat: 50 * time.Millisecond, Lease: 400 * time.Millisecond,
		Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replanned {
		t.Fatal("expected a replan after the worker death")
	}
	if res.LostWorker != "worker-a" {
		t.Errorf("lost worker %q, want worker-a", res.LostWorker)
	}
	if len(res.LostDevices) != 2 {
		t.Fatalf("lost devices %v, want both of worker-a's", res.LostDevices)
	}
	if res.LostDevices[0] != res.LostDevice {
		t.Errorf("LostDevice %q should lead LostDevices %v", res.LostDevice, res.LostDevices)
	}
	if got := res.DegradedPlan.NumStages(); got != 1 {
		t.Errorf("degraded plan has %d stages, want 1 (single survivor)", got)
	}
	if res.TotalTokens != clean.TokensOut {
		t.Errorf("token conservation violated: %d vs clean %d", res.TotalTokens, clean.TokensOut)
	}
	if got := reg.Counter("llmpq_failover_replans_total").Value(); got != 1 {
		t.Errorf("replans counter %.0f, want 1 (one replan for the whole worker)", got)
	}
	if got := reg.Gauge("llmpq_failover_lost_devices").Value(); got != 2 {
		t.Errorf("lost-devices gauge %.0f, want 2", got)
	}
	werrs := join()
	if !errors.Is(werrs[0], ErrInjectedDeath) {
		t.Errorf("worker-a should report injected death, got %v", werrs[0])
	}
	if werrs[1] != nil {
		t.Errorf("survivor exit: %v", werrs[1])
	}
}

// TestConnDropReconnect: an injected transport-level conn drop severs a
// worker mid-run; the worker reconnects under its rejoin token within
// the lease and the run completes with stats identical to a clean one.
func TestConnDropReconnect(t *testing.T) {
	s := distSpec(t)
	p := distPlan(t, s)
	local, err := (&rt.Engine{Spec: s, Plan: p, Timer: assigner.ProfilerTimer{}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	sched := &chaos.Schedule{Faults: []chaos.Fault{
		{Kind: chaos.KindConnDrop, Conn: 0, AfterFrames: 6},
	}}
	if err := sched.Validate(p.NumStages()); err != nil {
		t.Fatal(err)
	}
	sim := obs.NewRegistry()
	ctrl := obs.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ln := NewFaultListener(listen(t), sched, sim, ctrl)
	join := startWorkers(ctx, 2, ln.Addr().String(), func(i int, cfg *WorkerConfig) {
		cfg.Retry = retry.Policy{MaxAttempts: 10, BaseDelaySec: 0.02, Factor: 2, MaxDelaySec: 0.2, JitterFrac: 0.2}
	})
	res, err := Serve(ctx, Config{
		Listener: ln, Workers: 2, Spec: s, Plan: p,
		Heartbeat: 50 * time.Millisecond, Lease: 2 * time.Second,
		Obs: sim, CtrlObs: ctrl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replanned {
		t.Fatal("a transient conn drop must heal without a replan")
	}
	if res.First.TokensOut != local.TokensOut || res.First.LatencySec != local.LatencySec {
		t.Errorf("stats diverged after reconnect: %+v vs %+v", res.First, local)
	}
	var buf bytes.Buffer
	if err := sim.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "llmpq_dist_injected_conn_drops_total 1") {
		t.Errorf("expected exactly one injected conn drop:\n%s", buf.String())
	}
	for i, werr := range join() {
		if werr != nil {
			t.Errorf("worker %d exit: %v", i, werr)
		}
	}
}

// TestPartitionHeals: a brief full partition severs every connection;
// with a lease comfortably longer than the window, both workers
// reattach and the run completes without a replan.
func TestPartitionHeals(t *testing.T) {
	s := distSpec(t)
	p := distPlan(t, s)
	sched := &chaos.Schedule{Faults: []chaos.Fault{
		{Kind: chaos.KindPartition, Conn: -1, AtSec: 0.1, DurationSec: 0.1},
	}}
	if err := sched.Validate(p.NumStages()); err != nil {
		t.Fatal(err)
	}
	ctrl := obs.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ln := NewFaultListener(listen(t), sched, nil, ctrl)
	join := startWorkers(ctx, 2, ln.Addr().String(), func(i int, cfg *WorkerConfig) {
		// The hold paces the run past the partition window; the patient
		// retry policy outlives it.
		cfg.Hold = 10 * time.Millisecond
		cfg.Retry = retry.Policy{MaxAttempts: 12, BaseDelaySec: 0.05, Factor: 2, MaxDelaySec: 0.2, JitterFrac: 0.2}
	})
	res, err := Serve(ctx, Config{
		Listener: ln, Workers: 2, Spec: s, Plan: p,
		Heartbeat: 50 * time.Millisecond, Lease: 3 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replanned {
		t.Fatal("a partition shorter than the lease must heal without a replan")
	}
	if res.First.TokensOut != s.Work.GlobalBatch*s.Work.Generate {
		t.Errorf("tokens %d, want %d", res.First.TokensOut, s.Work.GlobalBatch*s.Work.Generate)
	}
	var buf bytes.Buffer
	if werr := ctrl.WriteText(&buf); werr != nil {
		t.Fatal(werr)
	}
	if !strings.Contains(buf.String(), "llmpq_dist_partition_severs_total") {
		t.Errorf("the partition window never fired:\n%s", buf.String())
	}
	for i, werr := range join() {
		if werr != nil {
			t.Errorf("worker %d exit: %v", i, werr)
		}
	}
}

// TestDeadlineAbort: a worker holding longer than the round deadline
// aborts every evaluation; after the retry budget the coordinator fails
// the run with a deadline error instead of hanging.
func TestDeadlineAbort(t *testing.T) {
	s := distSpec(t)
	p := distPlan(t, s)
	ctrl := obs.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ln := listen(t)
	join := startWorkers(ctx, 2, ln.Addr().String(), func(i int, cfg *WorkerConfig) {
		cfg.Hold = 300 * time.Millisecond
	})
	_, err := Serve(ctx, Config{
		Listener: ln, Workers: 2, Spec: s, Plan: p,
		Heartbeat: 50 * time.Millisecond, Lease: 5 * time.Second,
		RoundDeadline: 50 * time.Millisecond, DeadlineRetries: 1,
		CtrlObs: ctrl,
	})
	if err == nil {
		t.Fatal("holding past the deadline must fail the run")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Errorf("error should name the deadline: %v", err)
	}
	var lost *rt.DeviceLostError
	if errors.As(err, &lost) {
		t.Error("a deadline failure must not masquerade as device loss")
	}
	cancel()
	join()
	var buf bytes.Buffer
	if werr := ctrl.WriteText(&buf); werr != nil {
		t.Fatal(werr)
	}
	if !strings.Contains(buf.String(), "llmpq_dist_deadline_aborts_total") {
		t.Errorf("control metrics missing deadline aborts:\n%s", buf.String())
	}
}

// TestVersionMismatchRejected: a hello with the wrong protocol version
// is rejected before joining; the worker gives up instead of retrying.
func TestVersionMismatchRejected(t *testing.T) {
	s := distSpec(t)
	p := distPlan(t, s)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln := listen(t)
	serveDone := make(chan error, 1)
	go func() {
		_, err := Serve(ctx, Config{
			Listener: ln, Workers: 1, Spec: s, Plan: p,
			JoinTimeout: 5 * time.Second,
		})
		serveDone <- err
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	w := newWire(c, nil)
	if err := w.send(&Message{Type: MsgHello, Hello: &Hello{Version: ProtocolVersion + 1, Name: "time-traveler"}}); err != nil {
		t.Fatal(err)
	}
	msg, err := w.recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgReject || !strings.Contains(msg.Reject.Reason, "version") {
		t.Fatalf("want a version reject, got %+v", msg)
	}
	w.close()
	cancel()
	if err := <-serveDone; err == nil {
		t.Error("coordinator without workers should fail once cancelled")
	}
}

// TestRejoinTokenGuardsName: a second worker claiming an admitted name
// without the rejoin token is turned away.
func TestRejoinTokenGuardsName(t *testing.T) {
	s := distSpec(t)
	p := distPlan(t, s)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ln := listen(t)
	join := startWorkers(ctx, 1, ln.Addr().String(), func(i int, cfg *WorkerConfig) {
		cfg.Name = "only"
	})
	attached := make(chan struct{})
	var attachOnce sync.Once
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_, err := Serve(ctx, Config{
			Listener: ln, Workers: 1, Spec: s, Plan: p,
			Heartbeat: 100 * time.Millisecond, Lease: 5 * time.Second,
			Logf: func(format string, args ...any) {
				if strings.Contains(format, "attached") {
					attachOnce.Do(func() { close(attached) })
				}
			},
		})
		if err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	// Squat the name only after the legitimate worker holds it.
	select {
	case <-attached:
	case <-ctx.Done():
		t.Fatal("worker never attached")
	}
	err := RunWorker(ctx, WorkerConfig{
		Name: "only", Connect: ln.Addr().String(),
		Retry: retry.Policy{MaxAttempts: 1, BaseDelaySec: 0.01, Factor: 2, MaxDelaySec: 0.1},
	})
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Errorf("squatter should be rejected, got %v", err)
	}
	<-serveDone
	join()
}
