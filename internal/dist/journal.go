package dist

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/costmodel"
	"repro/internal/journal"
	"repro/internal/obs"
)

// JournalFile is the journal's file name inside Config.JournalDir.
const JournalFile = "coordinator.journal"

// RecordType discriminates journal records (DESIGN.md §14).
type RecordType string

const (
	// RecPlan adopts a plan epoch: the full wire payload plus the
	// watermark it starts from. Epoch 0 is the configured strategy;
	// each failover replan appends the next epoch.
	RecPlan RecordType = "plan"
	// RecMember records a minted rejoin token — appended only after the
	// welcome carrying it was delivered.
	RecMember RecordType = "member"
	// RecRound records a completed-token watermark advance.
	RecRound RecordType = "round"
	// RecReplan records a worker loss and the ReplanMulti outcome; the
	// next record is the degraded RecPlan.
	RecReplan RecordType = "replan"
	// RecRestore records a heal: the lost worker rejoined, held its
	// lease for the dwell, and the fleet replanned capacity back; the
	// next record is the restored RecPlan.
	RecRestore RecordType = "restore"
	// RecRecover marks a recovery boundary: a restarted coordinator
	// replayed everything before it.
	RecRecover RecordType = "recover"
	// RecDone marks clean completion; a journal ending in it has nothing
	// to recover.
	RecDone RecordType = "done"
)

// Record is the envelope every journal entry carries; exactly the field
// matching Type is populated (RecDone carries none).
type Record struct {
	Type RecordType `json:"type"`
	// Seq increments by one per record, across recovery boundaries — a
	// replayed prefix of length n continues at seq n+1.
	Seq     int            `json:"seq"`
	Plan    *PlanRecord    `json:"plan,omitempty"`
	Member  *MemberRecord  `json:"member,omitempty"`
	Round   *RoundRecord   `json:"round,omitempty"`
	Replan  *ReplanRecord  `json:"replan,omitempty"`
	Restore *RestoreRecord `json:"restore,omitempty"`
	Recover *RecoverRecord `json:"recover,omitempty"`
}

// PlanRecord is one plan adoption.
type PlanRecord struct {
	Epoch int `json:"epoch"`
	// Reason is "initial" for epoch 0, "replan" afterwards.
	Reason  string       `json:"reason"`
	Payload *PlanPayload `json:"payload"`
	// StartRound is the watermark this epoch runs from (0 for epoch 0).
	StartRound int `json:"start_round"`
	// DurableTokens is the cumulative token count credited before this
	// epoch — GlobalBatch × StartRound.
	DurableTokens int `json:"durable_tokens"`
	// StrategyHash fingerprints the strategy file; recovery refuses a
	// journal whose hash disagrees with the configured strategy.
	StrategyHash string `json:"strategy_hash,omitempty"`
	// Solve-cache provenance: whether a warm-start cache produced this
	// plan, and its cumulative hit/miss counters at adoption time.
	SolveCache  bool  `json:"solve_cache,omitempty"`
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
}

// MemberRecord is one rejoin-token mint (admission or rotation).
type MemberRecord struct {
	Name  string `json:"name"`
	Token string `json:"token"`
	// Ord is the mint ordinal; recovery resumes minting above the
	// maximum so rotated tokens never collide with journaled ones.
	Ord int `json:"ord"`
}

// RoundRecord is one watermark advance (Engine.OnRoundCommit).
type RoundRecord struct {
	Epoch int `json:"epoch"`
	// Watermark is the decode round every request durably holds.
	Watermark int `json:"watermark"`
	// DurableTokens = GlobalBatch × Watermark, cumulative.
	DurableTokens int  `json:"durable_tokens"`
	PrefillDone   bool `json:"prefill_done"`
	// RunTokens is what the current engine run had generated at the
	// commit (its resumed-token count on a post-replan epoch).
	RunTokens int `json:"run_tokens"`
}

// ReplanRecord is one healed worker loss: the DeviceLostError the engine
// surfaced plus the ReplanMulti outcome. The loss instant is wall-clock
// dependent (a lease expiry), so it cannot be re-derived after a crash —
// this record is what makes a post-replan run recoverable.
type ReplanRecord struct {
	LostWorker    string                      `json:"lost_worker"`
	LostStage     int                         `json:"lost_stage"`
	LostDevice    int                         `json:"lost_device"`
	AtSec         float64                     `json:"at_sec"`
	Watermark     int                         `json:"watermark"`
	DurableTokens int                         `json:"durable_tokens"`
	PrefillDone   bool                        `json:"prefill_done"`
	LostDevices   []string                    `json:"lost_devices"`
	MovedLayers   int                         `json:"moved_layers"`
	Migration     costmodel.MigrationBreakdown `json:"migration"`
	StartRound    int                         `json:"start_round"`
}

// RestoreRecord is one heal: the restore halt the engine surfaced plus
// the ReplanRestore outcome. Like the loss, the heal instant is
// wall-clock dependent (a dwell expiry after a rejoin), so it is
// journaled write-ahead before any worker acts on the restored plan.
type RestoreRecord struct {
	HealedWorkers   []string                     `json:"healed_workers"`
	ReturnedDevices []string                     `json:"returned_devices,omitempty"`
	AtSec           float64                      `json:"at_sec"`
	Watermark       int                          `json:"watermark"`
	DurableTokens   int                          `json:"durable_tokens"`
	PrefillDone     bool                         `json:"prefill_done"`
	MovedLayers     int                          `json:"moved_layers"`
	Migration       costmodel.MigrationBreakdown `json:"migration"`
	StartRound      int                          `json:"start_round"`
}

// RecoverRecord marks a recovery boundary.
type RecoverRecord struct {
	Replayed  int   `json:"replayed"`
	TornBytes int64 `json:"torn_bytes,omitempty"`
}

// RecoveredState is a journal replayed into coordinator state.
type RecoveredState struct {
	// Plans holds every adopted epoch in order; the last is current.
	Plans []*PlanRecord
	// Members holds each worker's latest minted token, first-mint order.
	Members []*MemberRecord
	// LastRound is the latest watermark commit, nil before prefill
	// completed.
	LastRound *RoundRecord
	// Replans holds every healed worker loss in order.
	Replans []*ReplanRecord
	// Restores holds every heal (capacity-restoring replan) in order.
	Restores []*RestoreRecord
	// Done reports the journal ends in RecDone — nothing to recover.
	Done bool
	// Records is the replayed record count; the next append is seq
	// Records+1.
	Records int
}

// corrupt wraps a semantic decode failure in the journal's typed error so
// callers (and the fuzz target) see one corruption taxonomy.
func corrupt(index int, format string, args ...any) error {
	return &journal.CorruptJournalError{
		Offset: int64(index),
		Reason: fmt.Sprintf("record %d: %s", index, fmt.Sprintf(format, args...)),
	}
}

// DecodeState decodes and semantically validates replayed journal
// payloads. Any structural violation — bad JSON, unknown type, missing
// payload, sequence break, epoch disorder — returns a
// *journal.CorruptJournalError (with the record index as the offset),
// never a panic.
func DecodeState(records [][]byte) (*RecoveredState, error) {
	st := &RecoveredState{}
	byName := map[string]int{}
	for i, raw := range records {
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, corrupt(i, "bad JSON: %v", err)
		}
		if rec.Seq != i+1 {
			return nil, corrupt(i, "seq %d, want %d", rec.Seq, i+1)
		}
		if st.Done {
			return nil, corrupt(i, "record after done")
		}
		if i == 0 && rec.Type != RecPlan {
			return nil, corrupt(i, "journal must open with a plan record, got %q", rec.Type)
		}
		switch rec.Type {
		case RecPlan:
			p := rec.Plan
			if p == nil {
				return nil, corrupt(i, "plan record without payload")
			}
			if p.Epoch != len(st.Plans) {
				return nil, corrupt(i, "plan epoch %d, want %d", p.Epoch, len(st.Plans))
			}
			if p.Payload == nil {
				return nil, corrupt(i, "plan record without plan payload")
			}
			if err := p.Payload.Validate(); err != nil {
				return nil, corrupt(i, "invalid plan payload: %v", err)
			}
			if p.StartRound < 0 || p.DurableTokens < 0 {
				return nil, corrupt(i, "negative watermark in plan record")
			}
			st.Plans = append(st.Plans, p)
		case RecMember:
			m := rec.Member
			if m == nil {
				return nil, corrupt(i, "member record without payload")
			}
			if m.Name == "" || m.Token == "" || m.Ord < 1 {
				return nil, corrupt(i, "member record missing name, token, or ordinal")
			}
			if j, ok := byName[m.Name]; ok {
				st.Members[j] = m // token rotation: latest mint wins
			} else {
				byName[m.Name] = len(st.Members)
				st.Members = append(st.Members, m)
			}
		case RecRound:
			r := rec.Round
			if r == nil {
				return nil, corrupt(i, "round record without payload")
			}
			if r.Watermark < 0 || r.DurableTokens < 0 {
				return nil, corrupt(i, "negative watermark in round record")
			}
			if r.Epoch >= len(st.Plans) {
				return nil, corrupt(i, "round record for unadopted epoch %d", r.Epoch)
			}
			st.LastRound = r
		case RecReplan:
			r := rec.Replan
			if r == nil {
				return nil, corrupt(i, "replan record without payload")
			}
			if r.LostWorker == "" {
				return nil, corrupt(i, "replan record without a lost worker")
			}
			st.Replans = append(st.Replans, r)
		case RecRestore:
			r := rec.Restore
			if r == nil {
				return nil, corrupt(i, "restore record without payload")
			}
			if len(r.HealedWorkers) == 0 {
				return nil, corrupt(i, "restore record without a healed worker")
			}
			if len(st.Replans) <= len(st.Restores) {
				return nil, corrupt(i, "restore record without a preceding replan")
			}
			st.Restores = append(st.Restores, r)
		case RecRecover:
			if rec.Recover == nil {
				return nil, corrupt(i, "recover record without payload")
			}
		case RecDone:
			st.Done = true
		default:
			return nil, corrupt(i, "unknown record type %q", rec.Type)
		}
	}
	if len(st.Plans) == 0 {
		return nil, corrupt(0, "journal has no plan record")
	}
	st.Records = len(records)
	return st, nil
}

// coordJournal serializes the coordinator's appends, stamps sequence
// numbers, counts the ctrl metrics, and latches the first write error so
// the run fails loudly instead of silently losing durability.
type coordJournal struct {
	mu  sync.Mutex
	w   *journal.Writer
	seq int
	err error

	appends *obs.Counter
	bytes   *obs.Counter
}

func newCoordJournal(w *journal.Writer, ctrl *obs.Registry) *coordJournal {
	j := &coordJournal{w: w}
	if ctrl != nil {
		j.appends = ctrl.Counter("llmpq_journal_appends_total")
		j.bytes = ctrl.Counter("llmpq_journal_bytes_total")
	}
	return j
}

// append stamps and writes one record; after the first failure every
// append is a no-op and Err reports it.
func (j *coordJournal) append(rec *Record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.seq++
	rec.Seq = j.seq
	buf, err := json.Marshal(rec)
	if err != nil {
		j.err = fmt.Errorf("dist: journal encode: %w", err)
		return
	}
	n, err := j.w.Append(buf)
	if err != nil {
		j.err = fmt.Errorf("dist: journal append: %w", err)
		return
	}
	if j.appends != nil {
		j.appends.Inc()
		j.bytes.Add(float64(n))
	}
}

// Err returns the sticky append error, if any.
func (j *coordJournal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// close releases the underlying file; safe to call more than once.
func (j *coordJournal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	_ = j.w.Close() //llmpq:allow(errdrop): shutdown path; appends were already fsync'd record-by-record
}
