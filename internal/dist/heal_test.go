package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/assigner"
	"repro/internal/core/retry"
	"repro/internal/obs"
	rt "repro/internal/runtime"
)

// TestLostWorkerAdmitFence pins the default fence: once the lease
// sweeper declares a worker LOST, no hello — not even one carrying the
// worker's own current rejoin token — reopens the name. The heal path
// (Config.Rejoin) deliberately relaxes this for flagged rejoins; with
// rejoin disabled the fence must hold so a run's membership stays
// closed after loss.
func TestLostWorkerAdmitFence(t *testing.T) {
	s := distSpec(t)
	p := distPlan(t, s)
	cfg := Config{Workers: 2, Spec: s, Plan: p}
	co := &coordinator{
		cfg:     cfg.withDefaults(),
		members: make(map[string]*member),
		payload: NewPlanPayload(s, p),
		joined:  make(chan struct{}),
	}

	m, rec, rej, _ := co.admit(&Hello{Name: "w"})
	if rej != "" || m == nil || rec == nil {
		t.Fatalf("fresh admit failed: %q", rej)
	}
	// Prove the worker (token echo), then let the sweeper lose it.
	if _, _, rej, _ := co.admit(&Hello{Name: "w", Token: rec.Token}); rej != "" {
		t.Fatalf("token echo rejected: %q", rej)
	}
	m.markLost()

	cases := []struct {
		name  string
		hello *Hello
	}{
		{"own current token", &Hello{Name: "w", Token: rec.Token}},
		{"token-less restart", &Hello{Name: "w"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, recGot, rej, retryable := co.admit(c.hello)
			if rej == "" {
				t.Fatalf("LOST member admitted (member %v, record %v)", got, recGot)
			}
			if retryable {
				t.Error("the fence must be fatal, not retryable")
			}
			if !strings.Contains(rej, "lease expired") {
				t.Errorf("reject %q does not name the expired lease", rej)
			}
		})
	}
}

// TestRejoinAdmitStateMachine walks the heal half of admit under
// Config.Rejoin: stale tokens and un-flagged restarts stay fenced,
// flagged restarts rotate the token and enter REJOINING, the member's
// own current token reopens the name without rotation, and a flapper
// past the tolerance is quarantined for good.
func TestRejoinAdmitStateMachine(t *testing.T) {
	s := distSpec(t)
	p := distPlan(t, s)
	cfg := Config{Workers: 2, Spec: s, Plan: p, Rejoin: true}
	co := &coordinator{
		cfg:     cfg.withDefaults(),
		members: make(map[string]*member),
		payload: NewPlanPayload(s, p),
		joined:  make(chan struct{}),
	}
	m, rec, rej, _ := co.admit(&Hello{Name: "w"})
	if rej != "" {
		t.Fatalf("fresh admit failed: %q", rej)
	}
	if _, _, rej, _ := co.admit(&Hello{Name: "w", Token: rec.Token}); rej != "" {
		t.Fatalf("token echo rejected: %q", rej)
	}
	m.markLost() // loss 1

	if _, _, rej, retryable := co.admit(&Hello{Name: "w", Token: "lease-99-w", Rejoin: true}); !strings.Contains(rej, "stale rejoin token") || retryable {
		t.Errorf("stale token must fence fatally, got %q retryable=%v", rej, retryable)
	}
	if _, _, rej, _ := co.admit(&Hello{Name: "w"}); !strings.Contains(rej, "lease expired") {
		t.Errorf("un-flagged restart must keep the closed-membership fence, got %q", rej)
	}
	got, rec2, rej, _ := co.admit(&Hello{Name: "w", Rejoin: true})
	if rej != "" || got != m {
		t.Fatalf("flagged restart not re-admitted: %q", rej)
	}
	if rec2 == nil || rec2.Token == rec.Token {
		t.Fatalf("rejoin must rotate the token, got %+v", rec2)
	}
	m.mu.Lock()
	rejoining, lost := m.rejoining, m.lost
	m.mu.Unlock()
	if !rejoining || lost {
		t.Errorf("member should be REJOINING, got rejoining=%v lost=%v", rejoining, lost)
	}

	// A surviving process back from a partition reopens with its own
	// current token, no rotation.
	m.markLost() // loss 2
	got, rec3, rej, _ := co.admit(&Hello{Name: "w", Token: rec2.Token})
	if rej != "" || got != m || rec3 != nil {
		t.Fatalf("tokened rejoin failed: member=%v rec=%v rej=%q", got, rec3, rej)
	}

	// Loss 3 exceeds the default tolerance of 2: quarantine.
	m.markLost()
	if _, _, rej, retryable := co.admit(&Hello{Name: "w", Rejoin: true}); !strings.Contains(rej, "quarantined") || retryable {
		t.Errorf("third loss must quarantine, got %q retryable=%v", rej, retryable)
	}
	// Quarantine is sticky: even the current token no longer opens it.
	if _, _, rej, _ := co.admit(&Hello{Name: "w", Token: rec2.Token}); !strings.Contains(rej, "quarantined") {
		t.Errorf("quarantine must survive a tokened retry, got %q", rej)
	}
}

// TestRejoinRaceBeforeLeaseExpiry: a heal-capable restart that reconnects
// before the sweeper's verdict is told to back off (retryable), not
// fenced out fatally — the restart raced its own lease.
func TestRejoinRaceBeforeLeaseExpiry(t *testing.T) {
	s := distSpec(t)
	p := distPlan(t, s)
	cfg := Config{Workers: 2, Spec: s, Plan: p, Rejoin: true}
	co := &coordinator{
		cfg:     cfg.withDefaults(),
		members: make(map[string]*member),
		payload: NewPlanPayload(s, p),
		joined:  make(chan struct{}),
	}
	_, rec, rej, _ := co.admit(&Hello{Name: "w"})
	if rej != "" {
		t.Fatalf("fresh admit failed: %q", rej)
	}
	if _, _, rej, _ := co.admit(&Hello{Name: "w", Token: rec.Token}); rej != "" {
		t.Fatalf("token echo rejected: %q", rej)
	}
	// The member is proven and detached (no conn was ever attached in
	// this bare-coordinator test), not yet lost.
	_, _, rej, retryable := co.admit(&Hello{Name: "w", Rejoin: true})
	if rej == "" || !retryable {
		t.Errorf("pre-expiry rejoin should be retryable, got %q retryable=%v", rej, retryable)
	}
	// Without the heal flag the collision stays fatal.
	if _, _, rej, retryable := co.admit(&Hello{Name: "w"}); rej == "" || retryable {
		t.Errorf("un-flagged name claim must stay fatal, got %q retryable=%v", rej, retryable)
	}
}

// TestSeedRecoveredHealResurrects: a journal recording loss → replan →
// heal → restore seeds the worker back in as a live member (under its
// rotated token) instead of pre-marking it lost, and adopts the restored
// epoch as current.
func TestSeedRecoveredHealResurrects(t *testing.T) {
	s := distSpec(t)
	p := distPlan(t, s)
	payload := NewPlanPayload(s, p)
	enc := func(recs ...*Record) [][]byte {
		out := make([][]byte, len(recs))
		for i, r := range recs {
			r.Seq = i + 1
			buf, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = buf
		}
		return out
	}
	st, err := DecodeState(enc(
		&Record{Type: RecPlan, Plan: &PlanRecord{Epoch: 0, Reason: "initial", Payload: payload}},
		&Record{Type: RecMember, Member: &MemberRecord{Name: "worker-a", Token: "lease-1-worker-a", Ord: 1}},
		&Record{Type: RecMember, Member: &MemberRecord{Name: "worker-b", Token: "lease-2-worker-b", Ord: 2}},
		&Record{Type: RecReplan, Replan: &ReplanRecord{LostWorker: "worker-b", Watermark: 2, StartRound: 2}},
		&Record{Type: RecPlan, Plan: &PlanRecord{Epoch: 1, Reason: "replan", Payload: payload, StartRound: 2, DurableTokens: 16}},
		&Record{Type: RecMember, Member: &MemberRecord{Name: "worker-b", Token: "lease-3-worker-b", Ord: 3}},
		&Record{Type: RecRestore, Restore: &RestoreRecord{HealedWorkers: []string{"worker-b"}, Watermark: 6, StartRound: 6}},
		&Record{Type: RecPlan, Plan: &PlanRecord{Epoch: 2, Reason: "restore", Payload: payload, StartRound: 6, DurableTokens: 48}},
	))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Restores) != 1 || st.Restores[0].HealedWorkers[0] != "worker-b" {
		t.Fatalf("restores not decoded: %+v", st.Restores)
	}
	cfg := Config{Workers: 2, Spec: s, Plan: p, Rejoin: true}
	co := &coordinator{
		cfg:     cfg.withDefaults(),
		members: make(map[string]*member),
		payload: NewPlanPayload(s, p),
		joined:  make(chan struct{}),
	}
	if err := co.seedRecovered(st); err != nil {
		t.Fatal(err)
	}
	b := co.members["worker-b"]
	if b == nil {
		t.Fatal("worker-b missing from the recovered membership")
	}
	b.mu.Lock()
	lost, token := b.lost, b.token
	b.mu.Unlock()
	if lost {
		t.Error("the journaled heal must resurrect worker-b")
	}
	if token != "lease-3-worker-b" {
		t.Errorf("worker-b token %q, want the rotated lease-3-worker-b", token)
	}
	if co.epoch != 2 || co.startRound != 6 || co.baseDurable != 48 {
		t.Errorf("current epoch %d/%d/%d, want restored 2/6/48", co.epoch, co.startRound, co.baseDurable)
	}
}

// TestWorkerRejoinHeal is the dist heal acceptance scenario: worker-b is
// killed mid-decode, its lease expires, the fleet replans degraded; a
// restarted worker-b presents its name with the rejoin flag, holds its
// lease through the dwell, and the coordinator halts the degraded run,
// replans back onto the full cluster — returning to exactly the
// pre-loss plan — and finishes there with every token conserved.
func TestWorkerRejoinHeal(t *testing.T) {
	s := distSpec(t)
	s.Work.Generate = 32 // enough decode runway for the heal to land mid-run
	p := distPlan(t, s)
	clean, err := (&rt.Engine{Spec: s, Plan: p, Timer: assigner.ProfilerTimer{}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	kp := (s.Work.GlobalBatch + p.PrefillMB - 1) / p.PrefillMB
	kd := (s.Work.GlobalBatch + p.DecodeMB - 1) / p.DecodeMB
	reg := obs.NewRegistry()
	ctrl := obs.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	ln := listen(t)

	pace := 20 * time.Millisecond
	// The restart's backoff must beat the degraded run: tight cadence so
	// the rejoin lands within the decode runway.
	pol := retry.Policy{MaxAttempts: 60, BaseDelaySec: 0.02, Factor: 1.3, MaxDelaySec: 0.1, JitterFrac: 0.2}
	var wg sync.WaitGroup
	var aErr, bErr1, bErr2 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		aErr = RunWorker(ctx, WorkerConfig{
			Name: "worker-a", Connect: ln.Addr().String(), Hold: pace, RetrySeed: 100,
		})
	}()
	go func() {
		defer wg.Done()
		// First incarnation dies mid-decode; the second presents the same
		// name token-less with the rejoin flag — a restarted process.
		bErr1 = RunWorker(ctx, WorkerConfig{
			Name: "worker-b", Connect: ln.Addr().String(), Hold: pace, RetrySeed: 101,
			FailAfterCalls: kp + kd,
		})
		bErr2 = RunWorker(ctx, WorkerConfig{
			Name: "worker-b", Connect: ln.Addr().String(), Hold: pace, RetrySeed: 102,
			Rejoin: true, Retry: pol,
		})
	}()

	res, err := Serve(ctx, Config{
		Listener: ln, Workers: 2, Spec: s, Plan: p,
		Heartbeat: 50 * time.Millisecond, Lease: 400 * time.Millisecond,
		Rejoin: true, HealDwell: 50 * time.Millisecond,
		Obs: reg, CtrlObs: ctrl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replanned || res.LostWorker != "worker-b" {
		t.Fatalf("expected worker-b loss+replan, got replanned=%v lost=%q", res.Replanned, res.LostWorker)
	}
	if !res.Restored {
		t.Fatal("the rejoined worker never healed back in")
	}
	if !reflect.DeepEqual(res.HealedWorkers, []string{"worker-b"}) {
		t.Errorf("healed workers %v, want [worker-b]", res.HealedWorkers)
	}
	if res.RestoreHalt == nil || res.RestoreHalt.Watermark < res.Lost.Watermark {
		t.Errorf("restore halt %+v must not regress the loss watermark %d", res.RestoreHalt, res.Lost.Watermark)
	}
	// The warm-started restore solve returns to exactly the pre-loss plan.
	if !reflect.DeepEqual(res.RestoredPlan, p) {
		t.Errorf("restore did not return to the pre-loss plan:\nrestored: %+v\noriginal: %+v", res.RestoredPlan, p)
	}
	if res.TotalTokens != clean.TokensOut {
		t.Errorf("token conservation violated: %d vs clean %d", res.TotalTokens, clean.TokensOut)
	}
	if res.Final.TokensOut <= 0 {
		t.Error("the restored plan generated nothing")
	}
	var sim bytes.Buffer
	if err := reg.WriteText(&sim); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"llmpq_failover_restore_total 1", "llmpq_heal_device_returns_total 1"} {
		if !strings.Contains(sim.String(), want) {
			t.Errorf("sim metrics missing %q:\n%s", want, sim.String())
		}
	}
	if got := ctrl.Counter("llmpq_heal_rejoins_total").Value(); got < 1 {
		t.Errorf("ctrl rejoin counter %.0f, want >= 1", got)
	}
	wg.Wait()
	if aErr != nil {
		t.Errorf("worker-a exit: %v", aErr)
	}
	if !errors.Is(bErr1, ErrInjectedDeath) {
		t.Errorf("worker-b first incarnation should die injected, got %v", bErr1)
	}
	if bErr2 != nil {
		t.Errorf("worker-b rejoin exit: %v", bErr2)
	}
}
