package dist

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/journal"
)

// fuzzSeedJournal builds a well-formed journal holding one record of
// every type, returning its raw bytes — the interesting seed for
// mutation-based fuzzing of the replay path.
func fuzzSeedJournal(f *testing.F) []byte {
	f.Helper()
	path := filepath.Join(f.TempDir(), "seed.journal")
	w, err := journal.Create(path)
	if err != nil {
		f.Fatal(err)
	}
	recs := []*Record{
		{Type: RecPlan, Seq: 1, Plan: &PlanRecord{Epoch: 0, Reason: "initial", Payload: &PlanPayload{}}},
		{Type: RecMember, Seq: 2, Member: &MemberRecord{Name: "w", Token: "lease-1-w", Ord: 1}},
		{Type: RecRound, Seq: 3, Round: &RoundRecord{Watermark: 1, DurableTokens: 8, PrefillDone: true, RunTokens: 8}},
		{Type: RecReplan, Seq: 4, Replan: &ReplanRecord{LostWorker: "w", Watermark: 1, DurableTokens: 8}},
		{Type: RecRecover, Seq: 5, Recover: &RecoverRecord{Replayed: 4}},
		{Type: RecDone, Seq: 6},
	}
	for _, r := range recs {
		buf, err := json.Marshal(r)
		if err != nil {
			f.Fatal(err)
		}
		if _, err := w.Append(buf); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzJournalReplay is the crash-recovery robustness contract: arbitrary
// mutations and truncations of a journal must never panic the replay or
// the semantic decoder. Every outcome is either a valid prefix (with
// torn bytes accounted for) or a typed *journal.CorruptJournalError.
func FuzzJournalReplay(f *testing.F) {
	seed := fuzzSeedJournal(f)
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 0, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := journal.ReplayBytes(data)
		if rep == nil {
			t.Fatal("ReplayBytes returned a nil replay")
		}
		if err != nil {
			var corrupt *journal.CorruptJournalError
			if !errors.As(err, &corrupt) {
				t.Fatalf("replay error is not the typed corruption: %v", err)
			}
		}
		if rep.ValidBytes+rep.TornBytes > int64(len(data)) {
			t.Fatalf("replay accounted %d+%d bytes of a %d-byte input", rep.ValidBytes, rep.TornBytes, len(data))
		}
		// The semantic decoder over whatever prefix survived must also be
		// panic-free and typed.
		if _, derr := DecodeState(rep.Records); derr != nil {
			var corrupt *journal.CorruptJournalError
			if !errors.As(derr, &corrupt) {
				t.Fatalf("decode error is not the typed corruption: %v", derr)
			}
		}
	})
}
