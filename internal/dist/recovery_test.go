package dist

import (
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/assigner"
	"repro/internal/chaos"
	"repro/internal/core/retry"
	"repro/internal/journal"
	"repro/internal/obs"
	rt "repro/internal/runtime"
)

// patientRetry keeps workers alive across a coordinator restart: the gap
// between the crash and the recovered listener is bounded by test code,
// but each dial attempt must survive connection-refused in between.
var patientRetry = retry.Policy{MaxAttempts: 200, BaseDelaySec: 0.02, Factor: 1.5, MaxDelaySec: 0.2, JitterFrac: 0.2}

// rebind binds the exact address a previous listener held — the restart
// contract: workers keep dialing the address they joined.
func rebind(t *testing.T, addr string) net.Listener {
	t.Helper()
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("rebind %s: %v", addr, err)
	return nil
}

func metricsText(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestCoordinatorCrashRecovery is the tentpole contract end to end: a
// journaled coordinator crashes mid-decode (injected, indistinguishable
// from SIGKILL on the wire), a fresh coordinator replays the journal,
// the workers reattach under their rejoin tokens, and the recovered
// run's stats AND sim-metrics text are byte-identical to a journaled run
// that never crashed.
func TestCoordinatorCrashRecovery(t *testing.T) {
	s := distSpec(t)
	p := distPlan(t, s)
	kp := (s.Work.GlobalBatch + p.PrefillMB - 1) / p.PrefillMB
	kd := (s.Work.GlobalBatch + p.DecodeMB - 1) / p.DecodeMB
	stages := p.NumStages()
	// Crash after prefill plus three decode rounds: mid-decode, with
	// round watermarks already journaled.
	crashAt := stages*kp + 3*stages*kd + 1

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Reference: a journaled run that never crashes.
	refReg := obs.NewRegistry()
	refDir := t.TempDir()
	lnRef := listen(t)
	joinRef := startWorkers(ctx, 2, lnRef.Addr().String(), func(i int, cfg *WorkerConfig) {
		cfg.Retry = patientRetry
	})
	ref, err := Serve(ctx, Config{
		Listener: lnRef, Workers: 2, Spec: s, Plan: p,
		Heartbeat: 50 * time.Millisecond, Lease: 2 * time.Second,
		JournalDir: refDir, StrategyHash: "fnv1a:test",
		Obs: refReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, werr := range joinRef() {
		if werr != nil {
			t.Fatalf("reference worker %d exit: %v", i, werr)
		}
	}
	refState := replayDir(t, refDir)
	if !refState.Done {
		t.Error("reference journal should end in a done record")
	}
	if refState.LastRound == nil || refState.LastRound.Watermark != s.Work.Generate {
		t.Errorf("reference journal watermark %+v, want %d", refState.LastRound, s.Work.Generate)
	}

	// Crash run: same workload, coordinator dies after crashAt calls.
	dir := t.TempDir()
	ln1 := listen(t)
	addr := ln1.Addr().String()
	join := startWorkers(ctx, 2, addr, func(i int, cfg *WorkerConfig) {
		cfg.Retry = patientRetry
	})
	_, err = Serve(ctx, Config{
		Listener: ln1, Workers: 2, Spec: s, Plan: p,
		Heartbeat: 50 * time.Millisecond, Lease: 2 * time.Second,
		JournalDir: dir, StrategyHash: "fnv1a:test",
		CoordFailAfter: crashAt,
	})
	if !errors.Is(err, ErrInjectedCoordCrash) {
		t.Fatalf("crash run returned %v, want ErrInjectedCoordCrash", err)
	}
	mid := replayDir(t, dir)
	if mid.Done {
		t.Fatal("crashed journal must not record completion")
	}
	if mid.LastRound == nil || mid.LastRound.Watermark < 1 {
		t.Fatalf("crash landed before any round commit: %+v", mid.LastRound)
	}

	// Recovery: rebind the same address, replay, reattach, finish.
	reg2 := obs.NewRegistry()
	ctrl2 := obs.NewRegistry()
	ln2 := rebind(t, addr)
	res, err := Serve(ctx, Config{
		Listener: ln2, Workers: 2, Spec: s, Plan: p,
		Heartbeat: 50 * time.Millisecond, Lease: 2 * time.Second,
		JournalDir: dir, Recover: true, StrategyHash: "fnv1a:test",
		Obs: reg2, CtrlObs: ctrl2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replanned {
		t.Fatal("recovered pre-replan run must not report a replan")
	}
	if !reflect.DeepEqual(res.First, ref.First) {
		t.Errorf("recovered stats diverged from the uninterrupted run:\nrecovered: %+v\nreference: %+v", res.First, ref.First)
	}
	if got, want := metricsText(t, reg2), metricsText(t, refReg); got != want {
		t.Errorf("recovered sim metrics are not byte-identical:\nrecovered:\n%s\nreference:\n%s", got, want)
	}
	if v := ctrl2.Counter("llmpq_journal_replayed_records").Value(); v < 1 {
		t.Errorf("replayed-records counter %.0f, want >= 1", v)
	}
	if v := ctrl2.Counter("llmpq_dist_reattach_total").Value(); v != 2 {
		t.Errorf("reattach counter %.0f, want 2 (both workers rejoin by token)", v)
	}
	fin := replayDir(t, dir)
	if !fin.Done {
		t.Error("recovered journal should end in a done record")
	}
	if len(fin.Members) != 2 {
		t.Errorf("journal holds %d members, want 2", len(fin.Members))
	}
	for i, werr := range join() {
		if werr != nil {
			t.Errorf("worker %d exit: %v", i, werr)
		}
	}
}

// replayDir decodes the journal under dir.
func replayDir(t *testing.T, dir string) *RecoveredState {
	t.Helper()
	rep, err := journal.ReplayFile(filepath.Join(dir, JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	st, err := DecodeState(rep.Records)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCrashAfterReplanRecovery covers the journal's load-bearing case: a
// worker loss triggers a failover replan, the coordinator crashes during
// the resumed run, and recovery — which cannot re-derive the wall-clock
// loss instant — resumes the journaled degraded epoch from the durable
// watermark with exact token conservation.
func TestCrashAfterReplanRecovery(t *testing.T) {
	s := distSpec(t)
	p := distPlan(t, s)
	clean, err := (&rt.Engine{Spec: s, Plan: p, Timer: assigner.ProfilerTimer{}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	kp := (s.Work.GlobalBatch + p.PrefillMB - 1) / p.PrefillMB
	kd := (s.Work.GlobalBatch + p.DecodeMB - 1) / p.DecodeMB
	workerDiesAt := kp + kd

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Reference failover run (no coordinator crash) to count the total
	// completed stage calls — the crash point is then placed two calls
	// before the end, safely inside the post-replan resumed run.
	refReg := obs.NewRegistry()
	lnRef := listen(t)
	joinRef := startWorkers(ctx, 2, lnRef.Addr().String(), func(i int, cfg *WorkerConfig) {
		if i == 1 {
			cfg.FailAfterCalls = workerDiesAt
		}
	})
	refRes, err := Serve(ctx, Config{
		Listener: lnRef, Workers: 2, Spec: s, Plan: p,
		Heartbeat: 50 * time.Millisecond, Lease: 400 * time.Millisecond,
		Obs: refReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !refRes.Replanned || refRes.TotalTokens != clean.TokensOut {
		t.Fatalf("reference failover run malformed: %+v", refRes)
	}
	joinRef()
	totalCalls := int(refReg.Counter("llmpq_dist_stage_calls_total").Value())
	if totalCalls < 4 {
		t.Fatalf("reference run made only %d stage calls", totalCalls)
	}

	// Crash run: worker-b dies, replan lands in the journal, then the
	// coordinator dies near the end of the resumed run.
	dir := t.TempDir()
	ln1 := listen(t)
	addr := ln1.Addr().String()
	join := startWorkers(ctx, 2, addr, func(i int, cfg *WorkerConfig) {
		cfg.Retry = patientRetry
		if i == 1 {
			cfg.FailAfterCalls = workerDiesAt
		}
	})
	_, err = Serve(ctx, Config{
		Listener: ln1, Workers: 2, Spec: s, Plan: p,
		Heartbeat: 50 * time.Millisecond, Lease: 400 * time.Millisecond,
		JournalDir: dir, CoordFailAfter: totalCalls - 2,
	})
	if !errors.Is(err, ErrInjectedCoordCrash) {
		t.Fatalf("crash run returned %v, want ErrInjectedCoordCrash", err)
	}
	mid := replayDir(t, dir)
	if len(mid.Replans) != 1 || len(mid.Plans) != 2 {
		t.Fatalf("crashed journal should hold the replan (replans=%d plans=%d)", len(mid.Replans), len(mid.Plans))
	}

	// Recovery: only the survivor reattaches; worker-b is journaled lost.
	reg2 := obs.NewRegistry()
	ctrl2 := obs.NewRegistry()
	ln2 := rebind(t, addr)
	res, err := Serve(ctx, Config{
		Listener: ln2, Workers: 2, Spec: s, Plan: p,
		Heartbeat: 50 * time.Millisecond, Lease: 2 * time.Second,
		JournalDir: dir, Recover: true,
		Obs: reg2, CtrlObs: ctrl2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replanned {
		t.Fatal("recovery of a post-replan crash must report the replan")
	}
	if res.LostWorker != "worker-b" {
		t.Errorf("lost worker %q, want worker-b", res.LostWorker)
	}
	if res.TotalTokens != clean.TokensOut {
		t.Errorf("token conservation violated across crash recovery: %d vs clean %d", res.TotalTokens, clean.TokensOut)
	}
	if v := reg2.Counter("llmpq_failover_replans_total").Value(); v != 1 {
		t.Errorf("recovered sim registry replans %.0f, want 1 (re-exported from the journal)", v)
	}
	if v := ctrl2.Counter("llmpq_journal_replayed_records").Value(); v < 1 {
		t.Errorf("replayed-records counter %.0f, want >= 1", v)
	}
	werrs := join()
	if !errors.Is(werrs[1], ErrInjectedDeath) {
		t.Errorf("worker-b should report injected death, got %v", werrs[1])
	}
	if werrs[0] != nil {
		t.Errorf("survivor exit: %v", werrs[0])
	}
}

// TestHandshakeConnDropRace drops a worker's connection immediately
// after its hello — the welcome carrying the freshly minted rejoin token
// dies on the wire. The retrying worker must be readmitted under a
// rotated token (never double-registered, never handed the leaked one)
// and the run must complete with clean-run parity.
func TestHandshakeConnDropRace(t *testing.T) {
	s := distSpec(t)
	p := distPlan(t, s)
	local, err := (&rt.Engine{Spec: s, Plan: p, Timer: assigner.ProfilerTimer{}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	sched := &chaos.Schedule{Faults: []chaos.Fault{
		{Kind: chaos.KindConnDrop, Conn: 0, AfterFrames: 1}, // sever right after the hello
	}}
	if err := sched.Validate(p.NumStages()); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ctrl := obs.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	ln := NewFaultListener(listen(t), sched, nil, ctrl)
	join := startWorkers(ctx, 2, ln.Addr().String(), func(i int, cfg *WorkerConfig) {
		cfg.Retry = patientRetry
	})
	res, err := Serve(ctx, Config{
		Listener: ln, Workers: 2, Spec: s, Plan: p,
		Heartbeat: 50 * time.Millisecond, Lease: 2 * time.Second,
		JournalDir: dir, CtrlObs: ctrl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replanned {
		t.Fatal("a handshake conn drop must heal without a replan")
	}
	if res.First.TokensOut != local.TokensOut || res.First.LatencySec != local.LatencySec {
		t.Errorf("stats diverged after the handshake race: %+v vs %+v", res.First, local)
	}
	st := replayDir(t, dir)
	if len(st.Members) != 2 {
		t.Fatalf("journal registered %d members, want 2 (no double registration)", len(st.Members))
	}
	// The dropped welcome's token must have been rotated away: the
	// journal's latest mint for the victim outranks its first.
	byName := map[string]int{}
	for _, m := range st.Members {
		byName[m.Name]++
	}
	for name, n := range byName {
		if n != 1 {
			t.Errorf("worker %q registered %d times in decoded membership", name, n)
		}
	}
	if !st.Done {
		t.Error("run should have sealed the journal")
	}
	for i, werr := range join() {
		if werr != nil {
			t.Errorf("worker %d exit: %v", i, werr)
		}
	}
}

// TestAdmitCollisionAndRotation pins the admit state machine directly:
// lost-welcome rotation, stale-token rejection, retryable mid-handshake
// collision, and the proven latch that closes the name for good.
func TestAdmitCollisionAndRotation(t *testing.T) {
	s := distSpec(t)
	p := distPlan(t, s)
	cfg := Config{Workers: 2, Spec: s, Plan: p}
	co := &coordinator{
		cfg:     cfg.withDefaults(),
		members: make(map[string]*member),
		payload: NewPlanPayload(s, p),
		joined:  make(chan struct{}),
	}

	m1, rec1, rej, retryable := co.admit(&Hello{Name: "w"})
	if rej != "" || m1 == nil || rec1 == nil {
		t.Fatalf("fresh admit failed: %q", rej)
	}
	if retryable {
		t.Error("fresh admit must not be marked retryable")
	}

	// Same name, no token, unattached and unproven: the welcome was lost;
	// the token rotates and the old one is dead.
	m2, rec2, rej, _ := co.admit(&Hello{Name: "w"})
	if rej != "" || m2 != m1 {
		t.Fatalf("lost-welcome retry must resolve to the same member (reject %q)", rej)
	}
	if rec2 == nil || rec2.Token == rec1.Token || rec2.Ord <= rec1.Ord {
		t.Fatalf("rotation did not mint a fresh token: %+v then %+v", rec1, rec2)
	}
	if _, _, rej, retryable = co.admit(&Hello{Name: "w", Token: rec1.Token}); rej == "" || retryable {
		t.Error("the leaked (rotated-away) token must be fatally rejected")
	}

	// The rotated token opens the name and proves the worker.
	m3, rec3, rej, _ := co.admit(&Hello{Name: "w", Token: rec2.Token})
	if rej != "" || m3 != m1 || rec3 != nil {
		t.Fatalf("current token rejected: %q (rec %+v)", rej, rec3)
	}
	if !m1.proven {
		t.Fatal("token echo must mark the member proven")
	}

	// Once proven, a token-less hello for the name is fatal, attached or
	// not — rotation would hand the name to a usurper.
	if _, _, rej, retryable = co.admit(&Hello{Name: "w"}); rej == "" || retryable {
		t.Errorf("token-less hello for a proven name must be fatally rejected (got %q retryable=%v)", rej, retryable)
	}

	// An unproven but attached name is a handshake in flight: transient.
	mu, _, rej, _ := co.admit(&Hello{Name: "u"})
	if rej != "" {
		t.Fatal(rej)
	}
	c1, c2 := net.Pipe()
	defer c1.Close() //llmpq:allow(errdrop): test cleanup
	defer c2.Close() //llmpq:allow(errdrop): test cleanup
	mu.attach(newWire(c1, nil))
	if _, _, rej, retryable = co.admit(&Hello{Name: "u"}); rej == "" || !retryable {
		t.Errorf("mid-handshake collision must be a retryable reject (got %q retryable=%v)", rej, retryable)
	}

	// An unknown token never opens anything.
	if _, _, rej, _ = co.admit(&Hello{Name: "ghost", Token: "lease-9-ghost"}); rej == "" {
		t.Error("unknown token must be rejected")
	}
}

// TestRecoverTruncatesTornTail exercises openJournal's torn-tail path at
// the unit level: a journal whose final append was cut mid-record
// recovers to the last complete record, truncates the tail, bumps the
// ctrl counters, and continues appending cleanly.
func TestRecoverTruncatesTornTail(t *testing.T) {
	s := distSpec(t)
	p := distPlan(t, s)
	dir := t.TempDir()
	mk := func(recover bool, ctrl *obs.Registry) *coordinator {
		cfg := Config{Workers: 2, Spec: s, Plan: p, JournalDir: dir, Recover: recover, CtrlObs: ctrl}
		return &coordinator{
			cfg:     cfg.withDefaults(),
			members: make(map[string]*member),
			payload: NewPlanPayload(s, p),
			joined:  make(chan struct{}),
		}
	}

	co := mk(false, nil)
	if err := co.openJournal(); err != nil {
		t.Fatal(err)
	}
	co.jnl.append(&Record{Type: RecMember, Member: &MemberRecord{Name: "w", Token: "lease-1-w", Ord: 1}})
	if err := co.jnl.Err(); err != nil {
		t.Fatal(err)
	}
	co.jnl.close()
	// Simulate a crash mid-append: a dangling half-record.
	path := filepath.Join(dir, JournalFile)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 40, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	ctrl := obs.NewRegistry()
	co2 := mk(true, ctrl)
	if err := co2.openJournal(); err != nil {
		t.Fatal(err)
	}
	if v := ctrl.Counter("llmpq_journal_torn_tail_total").Value(); v != 1 {
		t.Errorf("torn-tail counter %.0f, want 1", v)
	}
	if v := ctrl.Counter("llmpq_journal_replayed_records").Value(); v != 2 {
		t.Errorf("replayed-records counter %.0f, want 2", v)
	}
	if len(co2.recovered.Members) != 1 || co2.tokens != 1 {
		t.Errorf("membership not reconstructed: %+v tokens=%d", co2.recovered.Members, co2.tokens)
	}
	co2.jnl.append(&Record{Type: RecDone})
	if err := co2.jnl.Err(); err != nil {
		t.Fatal(err)
	}
	co2.jnl.close()

	rep, err := journal.ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TornBytes != 0 {
		t.Errorf("journal still torn after recovery (%d bytes)", rep.TornBytes)
	}
	st, err := DecodeState(rep.Records)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Records != 4 {
		t.Errorf("recovered journal should hold plan+member+recover+done, got %d records (done=%v)", st.Records, st.Done)
	}
}

// TestRecoverRefusesForeignJournal: recovery must fail loudly when the
// journal belongs to a different strategy (hash or payload mismatch) or
// records a completed run.
func TestRecoverRefusesForeignJournal(t *testing.T) {
	s := distSpec(t)
	p := distPlan(t, s)
	dir := t.TempDir()
	mk := func(recover bool, hash string, spec *assigner.Spec, plan *assigner.Plan) *coordinator {
		cfg := Config{Workers: 2, Spec: spec, Plan: plan, JournalDir: dir, Recover: recover, StrategyHash: hash}
		return &coordinator{
			cfg:     cfg.withDefaults(),
			members: make(map[string]*member),
			payload: NewPlanPayload(spec, plan),
			joined:  make(chan struct{}),
		}
	}
	co := mk(false, "fnv1a:aaaa", s, p)
	if err := co.openJournal(); err != nil {
		t.Fatal(err)
	}
	co.jnl.close()

	if err := mk(true, "fnv1a:bbbb", s, p).openJournal(); err == nil || !strings.Contains(err.Error(), "strategy") {
		t.Errorf("hash mismatch must fail recovery, got %v", err)
	}

	s3 := distSpec3(t)
	p3 := distPlan(t, s3)
	if err := mk(true, "fnv1a:aaaa", s3, p3).openJournal(); err == nil || !strings.Contains(err.Error(), "plan") {
		t.Errorf("payload mismatch must fail recovery, got %v", err)
	}

	co4 := mk(false, "", s, p)
	co4.cfg.Recover = false
	// Seal a fresh journal and verify a completed run refuses recovery.
	dir2 := t.TempDir()
	co4.cfg.JournalDir = dir2
	if err := co4.openJournal(); err != nil {
		t.Fatal(err)
	}
	co4.jnl.append(&Record{Type: RecDone})
	co4.jnl.close()
	co5 := mk(true, "", s, p)
	co5.cfg.JournalDir = dir2
	if err := co5.openJournal(); err == nil || !strings.Contains(err.Error(), "completed") {
		t.Errorf("a sealed journal must refuse recovery, got %v", err)
	}
}

// TestRecoveryPartialReattach: a journaled member that never comes back
// after the crash is declared lost at the recovery barrier, and the run
// proceeds on the workers that did return — the barrier reassigns every
// stage to the survivors, so a pre-replan crash still finishes with the
// clean run's exact stats.
func TestRecoveryPartialReattach(t *testing.T) {
	s := distSpec(t)
	p := distPlan(t, s)
	clean, err := (&rt.Engine{Spec: s, Plan: p, Timer: assigner.ProfilerTimer{}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	kp := (s.Work.GlobalBatch + p.PrefillMB - 1) / p.PrefillMB
	kd := (s.Work.GlobalBatch + p.DecodeMB - 1) / p.DecodeMB
	crashAt := p.NumStages()*(kp+kd) + 1

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	dir := t.TempDir()
	ln1 := listen(t)
	addr := ln1.Addr().String()
	joinA := startWorkers(ctx, 1, addr, func(i int, cfg *WorkerConfig) {
		cfg.Retry = patientRetry
	})
	ctxB, cancelB := context.WithCancel(ctx)
	errB := make(chan error, 1)
	go func() {
		errB <- RunWorker(ctxB, WorkerConfig{
			Name: "worker-b", Connect: addr, RetrySeed: 101, Retry: patientRetry,
		})
	}()
	_, err = Serve(ctx, Config{
		Listener: ln1, Workers: 2, Spec: s, Plan: p,
		Heartbeat: 50 * time.Millisecond, Lease: 2 * time.Second,
		JournalDir: dir, CoordFailAfter: crashAt,
	})
	if !errors.Is(err, ErrInjectedCoordCrash) {
		t.Fatalf("crash run returned %v, want ErrInjectedCoordCrash", err)
	}
	cancelB() // worker-b never reattaches
	<-errB

	ctrl2 := obs.NewRegistry()
	ln2 := rebind(t, addr)
	res, err := Serve(ctx, Config{
		Listener: ln2, Workers: 2, Spec: s, Plan: p,
		Heartbeat: 50 * time.Millisecond, Lease: 2 * time.Second,
		JoinTimeout: 2 * time.Second,
		JournalDir:  dir, Recover: true, CtrlObs: ctrl2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replanned {
		t.Error("barrier reassignment must heal a pre-replan crash without a replan")
	}
	if res.TotalTokens != clean.TokensOut {
		t.Errorf("partial reattach lost tokens: %d vs clean %d", res.TotalTokens, clean.TokensOut)
	}
	if !reflect.DeepEqual(res.First, clean) {
		t.Errorf("recovered stats diverged: %+v vs %+v", res.First, clean)
	}
	if v := ctrl2.Counter("llmpq_dist_lease_expiries_total").Value(); v != 1 {
		t.Errorf("absent member should count one lease expiry, got %.0f", v)
	}
	if werrs := joinA(); werrs[0] != nil {
		t.Errorf("survivor exit: %v", werrs[0])
	}
}

// TestRecoveryJoinTimeoutNoWorkers: when nobody reattaches, recovery
// must fail at the barrier with a membership error, not hang.
func TestRecoveryJoinTimeoutNoWorkers(t *testing.T) {
	s := distSpec(t)
	p := distPlan(t, s)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_, err := Serve(ctx, Config{
		Listener: listen(t), Workers: 2, Spec: s, Plan: p,
		JoinTimeout: 200 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "joined within") {
		t.Fatalf("empty barrier returned %v, want a join-timeout error", err)
	}
}
