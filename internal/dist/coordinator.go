package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/assigner"
	"repro/internal/costmodel"
	"repro/internal/failover"
	"repro/internal/obs"
	rt "repro/internal/runtime"
)

// Config parameterizes one coordinator run.
type Config struct {
	// Listener accepts worker connections; the caller owns binding (and
	// may wrap it with NewFaultListener). Serve closes it.
	Listener net.Listener
	// Workers is the membership size Serve waits for before running.
	Workers int

	Spec *assigner.Spec
	Plan *assigner.Plan
	// Timer prices replans and any locally evaluated stage times; nil
	// uses the roofline profiler, matching the workers' default.
	Timer assigner.LayerTimer

	// Heartbeat is the interval workers beacon at (shipped in the
	// welcome) and the lease sweeper's tick. Default 500ms.
	Heartbeat time.Duration
	// Lease is how long a worker may stay silent before it is declared
	// permanently lost. A detached worker that reattaches within the
	// lease resumes seamlessly. Default 4×Heartbeat.
	Lease time.Duration
	// RoundDeadline bounds each remote stage-time evaluation; the worker
	// aborts and reports rather than answering late. 0 disables
	// deadlines. Default 10s.
	RoundDeadline time.Duration
	// DeadlineRetries is how many aborted/timed-out evaluations of one
	// task the coordinator retries before failing the run. Default 2.
	DeadlineRetries int
	// JoinTimeout bounds the initial membership barrier. Default 30s.
	JoinTimeout time.Duration

	// Obs is the deterministic (simulated-time) registry: engine and
	// failover families plus the dist counters whose values are pure
	// functions of the run — successful stage calls, the worker gauge,
	// injected conn drops. Safe to byte-diff across runs.
	Obs *obs.Registry
	// CtrlObs is the wall-clock control-plane registry: heartbeats,
	// lease expiries, deadline aborts, resends, frame/byte counts. Never
	// part of a diffed artifact.
	CtrlObs *obs.Registry
	Spans   *obs.SpanRecorder
	Trace   bool

	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Heartbeat <= 0 {
		out.Heartbeat = 500 * time.Millisecond
	}
	if out.Lease <= 0 {
		out.Lease = 4 * out.Heartbeat
	}
	if out.RoundDeadline < 0 {
		out.RoundDeadline = 0
	} else if out.RoundDeadline == 0 {
		out.RoundDeadline = 10 * time.Second
	}
	if out.DeadlineRetries <= 0 {
		out.DeadlineRetries = 2
	}
	if out.JoinTimeout <= 0 {
		out.JoinTimeout = 30 * time.Second
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// Result summarizes one coordinated run; it mirrors failover.Report so
// the multi-process path reports exactly what the in-process controller
// would.
type Result struct {
	// First is the initial run's stats; zero when Replanned (the engine
	// halted — Lost describes the partial run).
	First rt.Stats
	// Replanned reports a permanent worker loss was healed mid-run.
	Replanned bool
	Lost      *rt.DeviceLostError
	// LostWorker names the worker whose lease expired.
	LostWorker string
	// LostDevice names the physical device serving the stage that halted
	// the engine (first of LostDevices).
	LostDevice string
	// LostDevices names every physical device declared lost with the
	// worker — one per stage it served, all healed in a single replan.
	LostDevices  []string
	DegradedPlan *assigner.Plan
	MovedLayers  int
	Migration    costmodel.MigrationBreakdown
	// Resumed is the watermark-resumed run on the degraded plan.
	Resumed rt.Stats
	// TotalTokens is durable-at-loss plus resumed output; equals a clean
	// run's TokensOut exactly.
	TotalTokens     int
	TotalLatencySec float64
}

// errMemberLost signals a lease expiry to a waiting stage call.
var errMemberLost = errors.New("dist: worker lease expired")

// errAwaitTimeout signals a request that outlived its generous wait.
var errAwaitTimeout = errors.New("dist: request timed out")

// errConnClosed signals the request's connection died before the
// response arrived; the caller resends after the reattach.
var errConnClosed = errors.New("dist: connection closed mid-request")

// memberState tracks one worker through the lease state machine:
// joining (hello seen) → active (conn up) ⇄ detached (conn down, lease
// running) → lost (lease expired; terminal).
type member struct {
	name  string
	token string

	mu         sync.Mutex
	conn       *wire
	lastHeard  time.Time
	lost       bool
	reattached chan struct{} // replaced on detach, closed on attach
	lostCh     chan struct{} // closed once on lease expiry
}

func (m *member) touch() {
	m.mu.Lock()
	m.lastHeard = time.Now()
	m.mu.Unlock()
}

func (m *member) attach(w *wire) {
	m.mu.Lock()
	old := m.conn
	m.conn = w
	m.lastHeard = time.Now()
	if m.reattached != nil {
		close(m.reattached)
		m.reattached = nil
	}
	m.mu.Unlock()
	if old != nil && old != w {
		old.close()
	}
}

// detachIf drops the connection only if w is still current — a stale
// reader racing a reattach must not clobber the fresh connection.
func (m *member) detachIf(w *wire) {
	m.mu.Lock()
	if m.conn == w {
		m.conn = nil
		m.reattached = make(chan struct{})
	}
	m.mu.Unlock()
	w.close()
}

// markLost transitions to the terminal state; idempotent.
func (m *member) markLost() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lost {
		return false
	}
	m.lost = true
	if m.conn != nil {
		m.conn.close()
		m.conn = nil
	}
	close(m.lostCh)
	return true
}

// awaitConn returns the member's live connection, waiting through a
// detach window; it fails with errMemberLost once the lease expires.
func (m *member) awaitConn(ctx context.Context) (*wire, error) {
	for {
		m.mu.Lock()
		if m.lost {
			m.mu.Unlock()
			return nil, errMemberLost
		}
		if m.conn != nil {
			w := m.conn
			m.mu.Unlock()
			return w, nil
		}
		re := m.reattached
		m.mu.Unlock()
		select {
		case <-re:
		case <-m.lostCh:
			return nil, errMemberLost
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

type coordinator struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	members map[string]*member
	owners  []*member // stage index → serving member
	payload *PlanPayload
	tokens  int

	joinOnce sync.Once
	joined   chan struct{}

	pmu     sync.Mutex
	pending map[uint64]chan *Message
	idSeq   atomic.Uint64

	// Deterministic counters (sim registry).
	stageCalls *obs.Counter
}

// Serve runs one offline workload on the distributed control plane:
// wait for the membership, drive the deterministic engine with remote
// stage-time evaluation, and — on a permanent worker loss — replan on
// the survivors and resume from the token watermark.
func Serve(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Listener == nil {
		return nil, fmt.Errorf("dist: coordinator needs a listener")
	}
	defer cfg.Listener.Close() //llmpq:allow(errdrop): shutdown path; a listener close error has no one left to tell
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("dist: need at least one worker, got %d", cfg.Workers)
	}
	if cfg.Spec == nil || cfg.Plan == nil {
		return nil, fmt.Errorf("dist: coordinator needs a spec and plan")
	}
	if err := cfg.Plan.Validate(cfg.Spec); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	co := &coordinator{
		cfg:     cfg,
		members: make(map[string]*member),
		payload: NewPlanPayload(cfg.Spec, cfg.Plan),
		joined:  make(chan struct{}),
		pending: make(map[uint64]chan *Message),
	}
	if cfg.Obs != nil {
		co.stageCalls = cfg.Obs.Counter("llmpq_dist_stage_calls_total")
	}
	co.ctx, co.cancel = context.WithCancel(ctx)
	defer co.cancel()
	go co.acceptLoop()
	go co.sweeper()

	joinTimer := time.NewTimer(cfg.JoinTimeout)
	defer joinTimer.Stop()
	select {
	case <-co.joined:
	case <-joinTimer.C:
		return nil, fmt.Errorf("dist: only %d of %d workers joined within %s",
			co.memberCount(), cfg.Workers, cfg.JoinTimeout)
	case <-co.ctx.Done():
		return nil, co.ctx.Err()
	}
	live := co.liveMembers()
	co.assignStages(cfg.Plan, live)
	co.setWorkersGauge(len(live))
	cfg.Logf("membership complete: %d workers, %d stages", len(live), cfg.Plan.NumStages())

	eng, err := rt.NewEngine(cfg.Spec, cfg.Plan, cfg.Timer)
	if err != nil {
		return nil, err
	}
	eng.StageTimer = co.stageTime
	eng.Obs, eng.Spans, eng.Trace = cfg.Obs, cfg.Spans, cfg.Trace
	stats, err := eng.Run()
	if err == nil {
		co.shutdown("done")
		return &Result{First: stats, TotalTokens: stats.TokensOut, TotalLatencySec: stats.LatencySec}, nil
	}
	var lost *rt.DeviceLostError
	if !errors.As(err, &lost) {
		co.shutdown("failed")
		return nil, err
	}
	res, ferr := co.failover(lost)
	if ferr != nil {
		co.shutdown("failover failed")
		return nil, ferr
	}
	co.shutdown("done")
	return res, nil
}

// failover heals a permanent worker loss: replan on the reduced
// cluster, reconfigure the survivors, reassign stages, and resume the
// engine from the watermark.
func (co *coordinator) failover(lost *rt.DeviceLostError) (*Result, error) {
	cfg := co.cfg
	deadName := ""
	var coLost []int
	co.mu.Lock()
	if lost.Stage < len(co.owners) {
		dead := co.owners[lost.Stage]
		deadName = dead.name
		// The worker is the failure domain, not the stage: every other
		// stage it served loses its device with it. Declaring them all in
		// this one replan re-solves and re-ships weights once, instead of
		// cascading through a failover cycle per stage.
		for j, m := range co.owners {
			if m == dead && cfg.Plan.Order[j] != lost.Device {
				coLost = append(coLost, cfg.Plan.Order[j])
			}
		}
		sort.Ints(coLost)
	}
	co.mu.Unlock()
	cfg.Logf("worker %s lost (stage %d, device %d, co-lost devices %v) at %.3fs; replanning on survivors",
		deadName, lost.Stage, lost.Device, coLost, lost.AtSec)

	out, err := failover.ReplanMulti(cfg.Spec, cfg.Plan, cfg.Timer, lost, coLost, cfg.Obs, cfg.CtrlObs, cfg.Spans)
	if err != nil {
		return nil, err
	}
	survivors := co.liveMembers()
	if len(survivors) == 0 {
		return nil, fmt.Errorf("dist: no surviving workers to resume on")
	}
	payload := NewPlanPayload(out.Degraded, out.Plan)
	co.mu.Lock()
	co.payload = payload
	co.mu.Unlock()
	for _, m := range survivors {
		if err := co.reconfigure(m, payload); err != nil {
			return nil, fmt.Errorf("dist: reconfigure %s: %w", m.name, err)
		}
	}
	co.assignStages(out.Plan, survivors)
	co.setWorkersGauge(len(survivors))
	cfg.Logf("replanned: %d stages on %d survivors, %d layers migrate (%.0f bytes), resume round %d",
		out.Plan.NumStages(), len(survivors), out.MovedLayers, out.Migration.TotalBytes, out.StartRound)

	eng, err := rt.NewEngine(out.Degraded, out.Plan, cfg.Timer)
	if err != nil {
		return nil, err
	}
	eng.StartRound = out.StartRound
	eng.StageTimer = co.stageTime
	eng.Obs, eng.Spans, eng.Trace = cfg.Obs, cfg.Spans, cfg.Trace
	resumed, err := eng.Run()
	if err != nil {
		return nil, fmt.Errorf("dist: resumed run failed: %w", err)
	}
	return &Result{
		Replanned:       true,
		Lost:            lost,
		LostWorker:      deadName,
		LostDevice:      out.LostDevice,
		LostDevices:     out.LostDevices,
		DegradedPlan:    out.Plan,
		MovedLayers:     out.MovedLayers,
		Migration:       out.Migration,
		Resumed:         resumed,
		TotalTokens:     out.DurableTokens + resumed.TokensOut,
		TotalLatencySec: lost.AtSec + out.Migration.TransferSec + resumed.LatencySec,
	}, nil
}

// stageTime is the Engine.StageTimer callback: evaluate one task on the
// worker owning the stage, surviving detach windows and deadline
// aborts, and converting a lease expiry into a StageLostError.
func (co *coordinator) stageTime(stage, batch, round int, prefill bool) (float64, error) {
	co.mu.Lock()
	if stage >= len(co.owners) {
		co.mu.Unlock()
		return 0, fmt.Errorf("dist: stage %d has no assigned worker", stage)
	}
	m := co.owners[stage]
	co.mu.Unlock()

	aborts := 0
	for {
		w, err := m.awaitConn(co.ctx)
		if errors.Is(err, errMemberLost) {
			return 0, &rt.StageLostError{Stage: stage}
		}
		if err != nil {
			return 0, err
		}
		id := co.idSeq.Add(1)
		ch := co.register(id)
		req := &StageTimeRequest{Stage: stage, Batch: batch, Round: round, Prefill: prefill}
		if co.cfg.RoundDeadline > 0 {
			req.DeadlineUnixNano = time.Now().Add(co.cfg.RoundDeadline).UnixNano()
		}
		if err := w.send(&Message{Type: MsgStageTime, ID: id, StageTime: req}); err != nil {
			co.unregister(id)
			m.detachIf(w)
			co.ctrlInc("llmpq_dist_stage_resends_total")
			continue
		}
		// The response must arrive within deadline + lease: either the
		// worker answers (possibly with an abort), the connection dies
		// (resend after reattach), or the lease expires.
		msg, err := co.await(id, ch, m, w, co.cfg.RoundDeadline+co.cfg.Lease)
		switch {
		case errors.Is(err, errMemberLost):
			return 0, &rt.StageLostError{Stage: stage}
		case errors.Is(err, errConnClosed):
			co.ctrlInc("llmpq_dist_stage_resends_total")
			continue
		case errors.Is(err, errAwaitTimeout):
			// Conn is up but the worker went mute; force a reconnect and
			// charge a deadline strike.
			m.detachIf(w)
			co.ctrlInc("llmpq_dist_deadline_aborts_total")
			aborts++
			if aborts > co.cfg.DeadlineRetries {
				return 0, fmt.Errorf("dist: stage %d task exceeded its %s deadline %d times", stage, co.cfg.RoundDeadline, aborts)
			}
			continue
		case err != nil:
			return 0, err
		}
		res := msg.StageTimeResult
		if res.Aborted {
			co.ctrlInc("llmpq_dist_deadline_aborts_total")
			aborts++
			if aborts > co.cfg.DeadlineRetries {
				return 0, fmt.Errorf("dist: stage %d task exceeded its %s deadline %d times", stage, co.cfg.RoundDeadline, aborts)
			}
			continue
		}
		if res.Err != "" {
			return 0, fmt.Errorf("dist: worker %s stage %d: %s", m.name, stage, res.Err)
		}
		if co.stageCalls != nil {
			co.stageCalls.Inc()
		}
		return res.Seconds, nil
	}
}

// await blocks until the pending request id resolves, the request's
// connection dies, the member is lost, the wait elapses, or the
// coordinator stops.
func (co *coordinator) await(id uint64, ch chan *Message, m *member, w *wire, wait time.Duration) (*Message, error) {
	var tC <-chan time.Time
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		tC = t.C
	}
	select {
	case msg := <-ch:
		return msg, nil
	case <-w.closed():
		co.unregister(id)
		return nil, errConnClosed
	case <-m.lostCh:
		co.unregister(id)
		return nil, errMemberLost
	case <-tC:
		co.unregister(id)
		return nil, errAwaitTimeout
	case <-co.ctx.Done():
		co.unregister(id)
		return nil, co.ctx.Err()
	}
}

// reconfigure ships a new plan payload to one member and waits for the
// acknowledgement, resending across transient disconnects.
func (co *coordinator) reconfigure(m *member, payload *PlanPayload) error {
	for {
		w, err := m.awaitConn(co.ctx)
		if err != nil {
			return err
		}
		id := co.idSeq.Add(1)
		ch := co.register(id)
		if err := w.send(&Message{Type: MsgReconfigure, ID: id, Reconfigure: payload}); err != nil {
			co.unregister(id)
			m.detachIf(w)
			continue
		}
		_, err = co.await(id, ch, m, w, co.cfg.RoundDeadline+co.cfg.Lease)
		if errors.Is(err, errConnClosed) {
			continue
		}
		return err
	}
}

func (co *coordinator) register(id uint64) chan *Message {
	ch := make(chan *Message, 1)
	co.pmu.Lock()
	co.pending[id] = ch
	co.pmu.Unlock()
	return ch
}

func (co *coordinator) unregister(id uint64) {
	co.pmu.Lock()
	delete(co.pending, id)
	co.pmu.Unlock()
}

// route delivers a response frame to its waiting request; late
// responses to abandoned ids are dropped.
func (co *coordinator) route(msg *Message) {
	co.pmu.Lock()
	ch := co.pending[msg.ID]
	delete(co.pending, msg.ID)
	co.pmu.Unlock()
	if ch != nil {
		ch <- msg
	}
}

// acceptLoop admits connections until the coordinator stops.
func (co *coordinator) acceptLoop() {
	for {
		c, err := co.cfg.Listener.Accept()
		if err != nil {
			if co.ctx.Err() != nil {
				return
			}
			// The listener may surface transient errors (including
			// injected partitions); keep accepting until shutdown.
			select {
			case <-co.ctx.Done():
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		go co.handleConn(c)
	}
}

// handleConn runs the handshake and then the per-connection read loop.
func (co *coordinator) handleConn(c net.Conn) {
	w := newWire(c, co.cfg.CtrlObs)
	_ = c.SetReadDeadline(time.Now().Add(co.cfg.Lease)) //llmpq:allow(errdrop): a failed deadline surfaces as the recv error on the next line
	msg, err := w.recv()
	_ = c.SetReadDeadline(time.Time{}) //llmpq:allow(errdrop): clearing a deadline on a dying conn can only fail harmlessly
	if err != nil || msg.Type != MsgHello {
		w.close()
		return
	}
	h := msg.Hello
	if h.Version != ProtocolVersion {
		//llmpq:allow(errdrop): best-effort courtesy reject; the connection closes either way
		_ = w.send(&Message{Type: MsgReject, Reject: &Reject{
			Reason: fmt.Sprintf("protocol version %d, coordinator speaks %d", h.Version, ProtocolVersion)}})
		w.close()
		return
	}
	m, reject := co.admit(h)
	if reject != "" {
		_ = w.send(&Message{Type: MsgReject, Reject: &Reject{Reason: reject}}) //llmpq:allow(errdrop): best-effort courtesy reject; the connection closes either way
		w.close()
		return
	}
	m.attach(w)
	co.mu.Lock()
	payload := co.payload
	co.mu.Unlock()
	welcome := &Welcome{
		Token:        m.token,
		HeartbeatSec: co.cfg.Heartbeat.Seconds(),
		LeaseSec:     co.cfg.Lease.Seconds(),
		Plan:         payload,
	}
	if err := w.send(&Message{Type: MsgWelcome, Welcome: welcome}); err != nil {
		m.detachIf(w)
		return
	}
	co.cfg.Logf("worker %s attached", m.name)

	for {
		msg, err := w.recv()
		if err != nil {
			m.detachIf(w)
			co.cfg.Logf("worker %s detached: %v", m.name, err)
			return
		}
		m.touch()
		switch msg.Type {
		case MsgHeartbeat:
			co.ctrlInc("llmpq_dist_heartbeats_received_total")
		case MsgStageTimeResult, MsgReconfigureOK:
			co.route(msg)
		case MsgBye:
			m.detachIf(w)
			return
		default:
			// Unknown frames renew the lease and are otherwise ignored —
			// forward compatibility within a protocol version.
		}
	}
}

// admit resolves a hello into a member or a rejection reason.
func (co *coordinator) admit(h *Hello) (*member, string) {
	if h.Name == "" {
		return nil, "worker name must not be empty"
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if m, ok := co.members[h.Name]; ok {
		if m.token != h.Token {
			return nil, fmt.Sprintf("worker name %q is taken", h.Name)
		}
		m.mu.Lock()
		lost := m.lost
		m.mu.Unlock()
		if lost {
			return nil, fmt.Sprintf("worker %q lease expired; membership is closed", h.Name)
		}
		return m, ""
	}
	if len(co.members) >= co.cfg.Workers {
		return nil, fmt.Sprintf("cluster is full (%d workers)", co.cfg.Workers)
	}
	co.tokens++
	m := &member{
		name:   h.Name,
		token:  fmt.Sprintf("lease-%d-%s", co.tokens, h.Name),
		lostCh: make(chan struct{}),
	}
	m.lastHeard = time.Now()
	co.members[h.Name] = m
	if len(co.members) == co.cfg.Workers {
		co.joinOnce.Do(func() { close(co.joined) })
	}
	return m, ""
}

// sweeper expires leases: any member silent past the lease is declared
// permanently lost, which unblocks waiting stage calls with
// StageLostError and drives the failover path.
func (co *coordinator) sweeper() {
	tick := time.NewTicker(co.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-co.ctx.Done():
			return
		case <-tick.C:
		}
		now := time.Now()
		co.mu.Lock()
		members := make([]*member, 0, len(co.members))
		for _, m := range co.members {
			members = append(members, m)
		}
		co.mu.Unlock()
		for _, m := range members {
			m.mu.Lock()
			expired := !m.lost && now.Sub(m.lastHeard) > co.cfg.Lease
			m.mu.Unlock()
			if expired && m.markLost() {
				co.ctrlInc("llmpq_dist_lease_expiries_total")
				co.cfg.Logf("worker %s lease expired (silent > %s)", m.name, co.cfg.Lease)
			}
		}
	}
}

// assignStages maps the plan's stages round-robin over the members in
// name order — a pure function of (plan, membership), so every
// coordinator restart with the same workers reproduces it.
func (co *coordinator) assignStages(p *assigner.Plan, members []*member) {
	owners := make([]*member, p.NumStages())
	for j := range owners {
		owners[j] = members[j%len(members)]
	}
	co.mu.Lock()
	co.owners = owners
	co.mu.Unlock()
}

// liveMembers returns the not-lost members sorted by name.
func (co *coordinator) liveMembers() []*member {
	co.mu.Lock()
	defer co.mu.Unlock()
	var out []*member
	for _, m := range co.members {
		m.mu.Lock()
		lost := m.lost
		m.mu.Unlock()
		if !lost {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (co *coordinator) memberCount() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return len(co.members)
}

// shutdown says goodbye to every live worker and stops the loops.
func (co *coordinator) shutdown(reason string) {
	for _, m := range co.liveMembers() {
		m.mu.Lock()
		w := m.conn
		m.mu.Unlock()
		if w != nil {
			_ = w.send(&Message{Type: MsgBye, Bye: &Bye{Reason: reason}}) //llmpq:allow(errdrop): best-effort farewell during shutdown; unreachable workers time out on their own
		}
	}
	co.cancel()
}

func (co *coordinator) setWorkersGauge(n int) {
	if co.cfg.Obs != nil {
		co.cfg.Obs.Gauge("llmpq_dist_workers").Set(float64(n))
	}
}

func (co *coordinator) ctrlInc(name string) {
	if co.cfg.CtrlObs != nil {
		co.cfg.CtrlObs.Counter(name).Inc()
	}
}
