package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/assigner"
	"repro/internal/costmodel"
	"repro/internal/failover"
	"repro/internal/journal"
	"repro/internal/obs"
	rt "repro/internal/runtime"
)

// Config parameterizes one coordinator run.
type Config struct {
	// Listener accepts worker connections; the caller owns binding (and
	// may wrap it with NewFaultListener). Serve closes it.
	Listener net.Listener
	// Workers is the membership size Serve waits for before running.
	Workers int

	Spec *assigner.Spec
	Plan *assigner.Plan
	// Timer prices replans and any locally evaluated stage times; nil
	// uses the roofline profiler, matching the workers' default.
	Timer assigner.LayerTimer

	// Heartbeat is the interval workers beacon at (shipped in the
	// welcome) and the lease sweeper's tick. Default 500ms.
	Heartbeat time.Duration
	// Lease is how long a worker may stay silent before it is declared
	// permanently lost. A detached worker that reattaches within the
	// lease resumes seamlessly. Default 4×Heartbeat.
	Lease time.Duration
	// RoundDeadline bounds each remote stage-time evaluation; the worker
	// aborts and reports rather than answering late. 0 disables
	// deadlines. Default 10s.
	RoundDeadline time.Duration
	// DeadlineRetries is how many aborted/timed-out evaluations of one
	// task the coordinator retries before failing the run. Default 2.
	DeadlineRetries int
	// JoinTimeout bounds the initial membership barrier. Default 30s.
	JoinTimeout time.Duration

	// Rejoin opens the heal half of the membership state machine: a LOST
	// worker (or a freshly restarted process presenting its name with the
	// Hello rejoin flag) may re-admit mid-run — LOST → REJOINING — and,
	// once its lease has held for HealDwell, the coordinator voluntarily
	// halts the degraded run and replans capacity back onto the returned
	// devices. Off (the default), the membership stays closed after loss:
	// the pre-heal fence.
	Rejoin bool
	// HealDwell is how long a rejoined worker's lease must hold before
	// the capacity-restoring replan fires — flap damping's first line.
	// Default: Lease.
	HealDwell time.Duration
	// FlapTolerance caps total loss events per worker: a worker losing
	// its lease more than this many times is quarantined (its rejoins are
	// fatally rejected and it is never replanned back in). Default 2.
	FlapTolerance int

	// JournalDir, when non-empty, makes the coordinator durable: every
	// determinism-relevant state transition — plan adoption, token
	// mints, watermark commits, failover replans, completion — is
	// appended (CRC-framed, fsync'd per record) to
	// JournalDir/coordinator.journal, so a crashed coordinator can be
	// restarted with Recover.
	JournalDir string
	// Recover replays the journal in JournalDir instead of starting
	// fresh: membership (names + rejoin tokens), the adopted plan
	// epochs, and the progress watermark are reconstructed, journaled
	// workers reattach under their existing tokens, and the run resumes.
	// A torn final record (the crash landed mid-append) is truncated
	// with a warning; a corrupt record fails recovery with a
	// *journal.CorruptJournalError.
	Recover bool
	// StrategyHash, when non-empty, fingerprints the strategy the plan
	// came from; it is stamped into plan records and cross-checked on
	// recovery so a journal cannot silently resume a different strategy.
	StrategyHash string
	// CoordFailAfter, when positive, crashes the coordinator after that
	// many completed remote stage evaluations — the deterministic chaos
	// seam for recovery tests and -coord-fail-after. The crash goes
	// through Die.
	CoordFailAfter int
	// Die performs the injected crash. Nil (tests) severs every worker
	// connection without a farewell and makes Serve return
	// ErrInjectedCoordCrash — from the workers' side indistinguishable
	// from a SIGKILL. cmd/llmpq-dist installs a real self-SIGKILL.
	Die func()

	// Obs is the deterministic (simulated-time) registry: engine and
	// failover families plus the dist counters whose values are pure
	// functions of the run — successful stage calls, the worker gauge,
	// injected conn drops. Safe to byte-diff across runs.
	Obs *obs.Registry
	// CtrlObs is the wall-clock control-plane registry: heartbeats,
	// lease expiries, deadline aborts, resends, frame/byte counts. Never
	// part of a diffed artifact.
	CtrlObs *obs.Registry
	Spans   *obs.SpanRecorder
	Trace   bool

	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Heartbeat <= 0 {
		out.Heartbeat = 500 * time.Millisecond
	}
	if out.Lease <= 0 {
		out.Lease = 4 * out.Heartbeat
	}
	if out.RoundDeadline < 0 {
		out.RoundDeadline = 0
	} else if out.RoundDeadline == 0 {
		out.RoundDeadline = 10 * time.Second
	}
	if out.DeadlineRetries <= 0 {
		out.DeadlineRetries = 2
	}
	if out.JoinTimeout <= 0 {
		out.JoinTimeout = 30 * time.Second
	}
	if out.HealDwell <= 0 {
		out.HealDwell = out.Lease
	}
	if out.FlapTolerance <= 0 {
		out.FlapTolerance = 2
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// Result summarizes one coordinated run; it mirrors failover.Report so
// the multi-process path reports exactly what the in-process controller
// would.
type Result struct {
	// First is the initial run's stats; zero when Replanned (the engine
	// halted — Lost describes the partial run).
	First rt.Stats
	// Replanned reports a permanent worker loss was healed mid-run.
	Replanned bool
	Lost      *rt.DeviceLostError
	// LostWorker names the worker whose lease expired.
	LostWorker string
	// LostDevice names the physical device serving the stage that halted
	// the engine (first of LostDevices).
	LostDevice string
	// LostDevices names every physical device declared lost with the
	// worker — one per stage it served, all healed in a single replan.
	LostDevices  []string
	DegradedPlan *assigner.Plan
	MovedLayers  int
	Migration    costmodel.MigrationBreakdown
	// Resumed is the watermark-resumed run on the degraded plan.
	Resumed rt.Stats
	// TotalTokens is durable-at-loss plus resumed output; equals a clean
	// run's TokensOut exactly.
	TotalTokens     int
	TotalLatencySec float64

	// Restored reports the lost worker rejoined mid-run and a
	// capacity-restoring replan brought its devices back.
	Restored bool
	// HealedWorkers names the rejoined workers admitted by the restore.
	HealedWorkers []string
	// RestoredDevices names the physical devices replanned back in.
	RestoredDevices []string
	// RestoreHalt is the voluntary halt that triggered the restore.
	RestoreHalt  *rt.RestoreHaltError
	RestoredPlan *assigner.Plan
	// RestoreMovedLayers / RestoreMigration are the migrate-back bill.
	RestoreMovedLayers int
	RestoreMigration   costmodel.MigrationBreakdown
	// Final is the run that finished on the restored plan (zero unless
	// Restored; TotalTokens and TotalLatencySec then fold it in).
	Final rt.Stats
}

// errMemberLost signals a lease expiry to a waiting stage call.
var errMemberLost = errors.New("dist: worker lease expired")

// errAwaitTimeout signals a request that outlived its generous wait.
var errAwaitTimeout = errors.New("dist: request timed out")

// errConnClosed signals the request's connection died before the
// response arrived; the caller resends after the reattach.
var errConnClosed = errors.New("dist: connection closed mid-request")

// ErrInjectedCoordCrash is returned by Serve when Config.CoordFailAfter
// fires with a nil Die hook: the in-process stand-in for a SIGKILL.
var ErrInjectedCoordCrash = errors.New("dist: injected coordinator crash")

// memberState tracks one worker through the lease state machine:
// joining (hello seen) → active (conn up) ⇄ detached (conn down, lease
// running) → lost (lease expired). LOST is terminal unless the
// coordinator runs with Config.Rejoin, which adds the heal transitions
// LOST → rejoining → active (DESIGN.md §15); a worker that keeps
// flapping past Config.FlapTolerance lands in quarantined, which IS
// terminal.
type member struct {
	name  string
	token string

	mu        sync.Mutex
	conn      *wire
	lastHeard time.Time
	lost      bool
	// proven is set once a hello echoed the member's token: the worker
	// demonstrably received its welcome. Until then a token-less retry
	// of the same name is treated as the same worker whose welcome was
	// lost in flight (the token is rotated and re-issued); after, the
	// token is the only key that opens the name.
	proven     bool
	reattached chan struct{} // replaced on detach, closed on attach
	lostCh     chan struct{} // closed on lease expiry, replaced on rejoin
	// rejoining marks a healed worker not yet replanned back in; it
	// serves no stage until the restore replan promotes it. rejoinedAt
	// starts the heal dwell.
	rejoining  bool
	rejoinedAt time.Time
	// flaps counts lease losses; past the tolerance the worker is
	// quarantined and its rejoins fence out fatally.
	flaps       int
	quarantined bool
}

func (m *member) touch() {
	m.mu.Lock()
	m.lastHeard = time.Now()
	m.mu.Unlock()
}

func (m *member) setProven() {
	m.mu.Lock()
	m.proven = true
	m.mu.Unlock()
}

// currentToken reads the token under the lock — rotation mutates it.
func (m *member) currentToken() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.token
}

func (m *member) attach(w *wire) {
	m.mu.Lock()
	old := m.conn
	m.conn = w
	m.lastHeard = time.Now()
	if m.reattached != nil {
		close(m.reattached)
		m.reattached = nil
	}
	m.mu.Unlock()
	if old != nil && old != w {
		old.close()
	}
}

// detachIf drops the connection only if w is still current — a stale
// reader racing a reattach must not clobber the fresh connection.
func (m *member) detachIf(w *wire) {
	m.mu.Lock()
	if m.conn == w {
		m.conn = nil
		m.reattached = make(chan struct{})
	}
	m.mu.Unlock()
	w.close()
}

// markLost transitions to lost; idempotent. Each loss counts one flap —
// a rejoining worker that goes silent again burns tolerance budget.
func (m *member) markLost() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lost {
		return false
	}
	m.lost = true
	m.rejoining = false
	m.flaps++
	if m.conn != nil {
		m.conn.close()
		m.conn = nil
	}
	close(m.lostCh)
	return true
}

// rejoin performs the LOST → REJOINING transition under the lock: the
// lease channel is replaced (never re-close a closed channel) and the
// heal dwell starts now. Caller has already decided admission.
func (m *member) rejoin() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lost = false
	m.lostCh = make(chan struct{})
	m.rejoining = true
	m.rejoinedAt = time.Now()
	m.lastHeard = time.Now()
}

// healReady reports a rejoined worker whose lease has held for the
// dwell — attached, not re-lost, dwell elapsed.
func (m *member) healReady(dwell time.Duration) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rejoining && !m.lost && m.conn != nil && time.Since(m.rejoinedAt) >= dwell
}

// awaitConn returns the member's live connection, waiting through a
// detach window; it fails with errMemberLost once the lease expires.
func (m *member) awaitConn(ctx context.Context) (*wire, error) {
	for {
		m.mu.Lock()
		if m.lost {
			m.mu.Unlock()
			return nil, errMemberLost
		}
		if m.conn != nil {
			w := m.conn
			m.mu.Unlock()
			return w, nil
		}
		re := m.reattached
		m.mu.Unlock()
		select {
		case <-re:
		case <-m.lostCh:
			return nil, errMemberLost
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

type coordinator struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	members map[string]*member
	owners  []*member // stage index → serving member
	payload *PlanPayload
	tokens  int

	joinOnce sync.Once
	joined   chan struct{}

	pmu     sync.Mutex
	pending map[uint64]chan *Message
	idSeq   atomic.Uint64

	// Durable state (nil jnl = journaling off; nil recovered = fresh).
	jnl       *coordJournal
	recovered *RecoveredState
	// epoch/startRound/baseDurable describe the current plan: epoch 0 is
	// the configured strategy, each replan increments; startRound is the
	// watermark the epoch runs from and baseDurable the tokens credited
	// before it.
	epoch       int
	startRound  int
	baseDurable int

	// calls counts completed remote evaluations (CoordFailAfter seam).
	calls atomic.Int64
	// healArmed is set while the degraded epoch runs under Config.Rejoin:
	// the first stage call that finds a dwell-stable rejoined worker
	// swaps it false and halts the engine for the restore replan (one
	// restore per run, mirroring the at-most-one-loss invariant).
	healArmed atomic.Bool

	// Deterministic counters (sim registry).
	stageCalls *obs.Counter
}

// Serve runs one offline workload on the distributed control plane:
// wait for the membership, drive the deterministic engine with remote
// stage-time evaluation, and — on a permanent worker loss — replan on
// the survivors and resume from the token watermark. With
// Config.JournalDir the run is durable; with Config.Recover it resumes
// a crashed predecessor from its journal.
func Serve(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Listener == nil {
		return nil, fmt.Errorf("dist: coordinator needs a listener")
	}
	defer cfg.Listener.Close() //llmpq:allow(errdrop): shutdown path; a listener close error has no one left to tell
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("dist: need at least one worker, got %d", cfg.Workers)
	}
	if cfg.Spec == nil || cfg.Plan == nil {
		return nil, fmt.Errorf("dist: coordinator needs a spec and plan")
	}
	if err := cfg.Plan.Validate(cfg.Spec); err != nil {
		return nil, err
	}
	if cfg.Recover && cfg.JournalDir == "" {
		return nil, fmt.Errorf("dist: recovery needs a journal directory")
	}
	cfg = cfg.withDefaults()

	co := &coordinator{
		cfg:     cfg,
		members: make(map[string]*member),
		payload: NewPlanPayload(cfg.Spec, cfg.Plan),
		joined:  make(chan struct{}),
		pending: make(map[uint64]chan *Message),
	}
	if cfg.Obs != nil {
		co.stageCalls = cfg.Obs.Counter("llmpq_dist_stage_calls_total")
	}
	if cfg.JournalDir != "" {
		if err := co.openJournal(); err != nil {
			return nil, err
		}
		defer co.jnl.close()
	}
	co.ctx, co.cancel = context.WithCancel(ctx)
	defer co.cancel()
	go co.acceptLoop()
	go co.sweeper()

	if err := co.awaitMembership(); err != nil {
		return nil, err
	}
	live := co.liveMembers()
	if len(live) == 0 {
		return nil, fmt.Errorf("dist: no live workers after the membership barrier")
	}
	co.mu.Lock()
	curPlan := co.payload.Plan
	co.mu.Unlock()
	co.assignStages(curPlan, live)
	co.setWorkersGauge(len(live))
	cfg.Logf("membership complete: %d workers, %d stages", len(live), curPlan.NumStages())

	if co.recovered != nil && co.epoch > 0 {
		// The crash happened after a failover replan. The loss instant
		// was wall-clock dependent (a lease expiry) and cannot be
		// re-derived, so the journaled replan record is load-bearing:
		// resume the degraded plan from the journaled watermark.
		return co.resumeReplanned(live)
	}

	// Fresh run, or recovery of a crash that predates any replan. The
	// recovered case deliberately re-executes the whole deterministic
	// engine rather than resuming mid-stream: simulated time is virtual,
	// so re-execution costs only wall clock proportional to the event
	// count, and it is the only way the final artifacts (sim metrics,
	// trace, stdout summary) come out byte-identical to a run that never
	// crashed — a mid-epoch resume would be correct but different.
	eng, err := rt.NewEngine(cfg.Spec, cfg.Plan, cfg.Timer)
	if err != nil {
		return nil, err
	}
	eng.StageTimer = co.stageTime
	eng.OnRoundCommit = co.onRoundCommit
	eng.Obs, eng.Spans, eng.Trace = cfg.Obs, cfg.Spans, cfg.Trace
	stats, err := eng.Run()
	if err == nil {
		if jerr := co.finishJournal(); jerr != nil {
			co.shutdown("failed")
			return nil, jerr
		}
		co.shutdown("done")
		return &Result{First: stats, TotalTokens: stats.TokensOut, TotalLatencySec: stats.LatencySec}, nil
	}
	if errors.Is(err, ErrInjectedCoordCrash) {
		return nil, err
	}
	var lost *rt.DeviceLostError
	if !errors.As(err, &lost) {
		co.shutdown("failed")
		return nil, err
	}
	res, ferr := co.failover(lost)
	if ferr != nil {
		if errors.Is(ferr, ErrInjectedCoordCrash) {
			return nil, ferr
		}
		co.shutdown("failover failed")
		return nil, ferr
	}
	co.shutdown("done")
	return res, nil
}

// openJournal creates a fresh journal (adopting epoch 0) or, under
// Recover, replays and continues the existing one.
func (co *coordinator) openJournal() error {
	path := filepath.Join(co.cfg.JournalDir, JournalFile)
	if !co.cfg.Recover {
		if err := os.MkdirAll(co.cfg.JournalDir, 0o755); err != nil {
			return fmt.Errorf("dist: journal dir: %w", err)
		}
		w, err := journal.Create(path)
		if err != nil {
			return err
		}
		co.jnl = newCoordJournal(w, co.cfg.CtrlObs)
		co.jnl.append(&Record{Type: RecPlan, Plan: co.planRecord(0, "initial", co.payload, 0, 0)})
		return co.jnl.Err()
	}
	w, rep, err := journal.Continue(path)
	if err != nil {
		return fmt.Errorf("dist: recover: %w", err)
	}
	st, err := DecodeState(rep.Records)
	if err != nil {
		_ = w.Close() //llmpq:allow(errdrop): recovery is failing anyway; the decode error is the one to report
		return fmt.Errorf("dist: recover: %w", err)
	}
	co.ctrlAdd("llmpq_journal_replayed_records", float64(st.Records))
	if rep.TornBytes > 0 {
		co.ctrlInc("llmpq_journal_torn_tail_total")
		co.cfg.Logf("journal: truncated a %d-byte torn tail (the crash landed mid-append)", rep.TornBytes)
	}
	if err := co.seedRecovered(st); err != nil {
		_ = w.Close() //llmpq:allow(errdrop): recovery is failing anyway; the seed error is the one to report
		return err
	}
	co.jnl = newCoordJournal(w, co.cfg.CtrlObs)
	co.jnl.seq = st.Records
	co.jnl.append(&Record{Type: RecRecover, Recover: &RecoverRecord{Replayed: st.Records, TornBytes: rep.TornBytes}})
	co.cfg.Logf("recovered journal: %d records, epoch %d, %d members, watermark round %d",
		st.Records, co.epoch, len(st.Members), co.startRound)
	return co.jnl.Err()
}

// planRecord builds a PlanRecord with the solve-cache provenance of the
// moment.
func (co *coordinator) planRecord(epoch int, reason string, payload *PlanPayload, startRound, durable int) *PlanRecord {
	pr := &PlanRecord{
		Epoch: epoch, Reason: reason, Payload: payload,
		StartRound: startRound, DurableTokens: durable,
		StrategyHash: co.cfg.StrategyHash,
	}
	if c := co.cfg.Spec.Cache; c != nil {
		stats := c.Stats()
		pr.SolveCache = true
		pr.CacheHits, pr.CacheMisses = stats.Hits, stats.Misses
	}
	return pr
}

// seedRecovered loads a replayed journal into coordinator state:
// membership (with workers named in replan records pre-marked lost), the
// current plan epoch, and the watermark.
func (co *coordinator) seedRecovered(st *RecoveredState) error {
	if st.Done {
		return fmt.Errorf("dist: recover: the journal records a completed run; nothing to resume")
	}
	first := st.Plans[0]
	if co.cfg.StrategyHash != "" && first.StrategyHash != "" && first.StrategyHash != co.cfg.StrategyHash {
		return fmt.Errorf("dist: recover: journal strategy %s does not match configured strategy %s",
			first.StrategyHash, co.cfg.StrategyHash)
	}
	// The journaled epoch-0 payload must be byte-identical to the one
	// this configuration derives: recovery resumes a run, it never
	// adopts a foreign plan.
	want, err := json.Marshal(co.payload)
	if err != nil {
		return err
	}
	got, err := json.Marshal(first.Payload)
	if err != nil {
		return err
	}
	if !bytes.Equal(want, got) {
		return fmt.Errorf("dist: recover: the journaled plan does not match the configured strategy")
	}
	if len(st.Members) > co.cfg.Workers {
		return fmt.Errorf("dist: recover: journal holds %d members, config allows %d", len(st.Members), co.cfg.Workers)
	}
	lost := make(map[string]bool, len(st.Replans))
	for _, rr := range st.Replans {
		lost[rr.LostWorker] = true
	}
	// A journaled heal resurrects the worker: it reattaches under its
	// rotated token like any survivor. (Flap counts are not journaled —
	// the tolerance budget resets with the coordinator process.)
	for _, hr := range st.Restores {
		for _, name := range hr.HealedWorkers {
			delete(lost, name)
		}
	}
	for _, mr := range st.Members {
		m := &member{name: mr.Name, token: mr.Token, proven: true, lostCh: make(chan struct{})}
		m.lastHeard = time.Now()
		if lost[mr.Name] {
			m.lost = true
			close(m.lostCh)
		}
		co.members[mr.Name] = m
		if mr.Ord > co.tokens {
			co.tokens = mr.Ord
		}
	}
	cur := st.Plans[len(st.Plans)-1]
	co.epoch = cur.Epoch
	co.startRound = cur.StartRound
	co.baseDurable = cur.DurableTokens
	co.payload = cur.Payload
	co.recovered = st
	return nil
}

// awaitMembership runs the join barrier. On a fresh start it demands the
// full membership attached at once; on recovery, journaled members that
// never reattach within the window are declared lost (the lease verdict,
// delivered at the barrier) and the run proceeds on the ones that came
// back — the failover path heals the difference.
func (co *coordinator) awaitMembership() error {
	joinTimer := time.NewTimer(co.cfg.JoinTimeout)
	defer joinTimer.Stop()
	select {
	case <-co.joined:
		return nil
	case <-joinTimer.C:
		if co.recovered != nil && co.attachedCount() >= 1 {
			for _, m := range co.absentMembers() {
				if m.markLost() {
					co.ctrlInc("llmpq_dist_lease_expiries_total")
					co.cfg.Logf("worker %s did not reattach within %s; declared lost", m.name, co.cfg.JoinTimeout)
				}
			}
			// Open the barrier so the sweeper starts enforcing leases.
			co.joinOnce.Do(func() { close(co.joined) })
			return nil
		}
		return fmt.Errorf("dist: only %d of %d workers joined within %s",
			co.memberCount(), co.cfg.Workers, co.cfg.JoinTimeout)
	case <-co.ctx.Done():
		return co.ctx.Err()
	}
}

// resumeReplanned finishes a recovered run whose crash postdates a
// failover replan: re-adopt the journaled current plan — degraded, or
// restored if a heal was journaled before the crash — and resume from
// the latest durable watermark. Token conservation is exact —
// durable-at-resume plus the resumed output equals a clean run's total —
// but no byte-identity is promised here (the loss instant was wall-clock
// data the clean run never saw), matching the uninterrupted failover
// path's contract. A recovered coordinator does not re-arm the heal: the
// degraded Outcome it would replan from died with the original process,
// so an un-healed loss stays degraded to completion.
func (co *coordinator) resumeReplanned(live []*member) (*Result, error) {
	cfg := co.cfg
	st := co.recovered
	rr := st.Replans[len(st.Replans)-1]
	plan := co.payload.Plan

	start, base := co.startRound, co.baseDurable
	if lr := st.LastRound; lr != nil && lr.Epoch == co.epoch && lr.Watermark > start {
		// The degraded run had already committed rounds before the
		// crash; resume past them rather than re-earning their tokens.
		start, base = lr.Watermark, lr.DurableTokens
	}
	if g := cfg.Spec.Work.Generate; start >= g {
		// Every round was durable but the Done record never landed:
		// re-run the final round (cheap, idempotent) so the engine has
		// work to do and the stats stay well-formed.
		start = g - 1
		base = cfg.Spec.Work.GlobalBatch * start
	}

	degraded := *cfg.Spec
	degraded.Cluster = co.payload.Cluster
	eng, err := rt.NewEngine(&degraded, plan, cfg.Timer)
	if err != nil {
		return nil, err
	}
	eng.StartRound = start
	eng.StageTimer = co.stageTime
	eng.OnRoundCommit = co.onRoundCommit
	eng.Obs, eng.Spans, eng.Trace = cfg.Obs, cfg.Spans, cfg.Trace

	lost := &rt.DeviceLostError{
		Stage: rr.LostStage, Device: rr.LostDevice, AtSec: rr.AtSec,
		Watermark: rr.Watermark, DurableTokens: rr.DurableTokens, PrefillDone: rr.PrefillDone,
	}
	// Re-export the failover families from the journal so the recovered
	// run's sim registry still reports the replan it resumed from.
	failover.ObserveReplayed(cfg.Obs, cfg.Spans, lost, rr.LostDevices, rr.MovedLayers, rr.Migration, rr.StartRound)
	var hr *RestoreRecord
	var halt *rt.RestoreHaltError
	if st.Plans[len(st.Plans)-1].Reason == "restore" && len(st.Restores) > 0 {
		// The crash postdates a journaled heal: the current payload is the
		// restored plan, and the restore families replay alongside it.
		hr = st.Restores[len(st.Restores)-1]
		halt = &rt.RestoreHaltError{
			AtSec: hr.AtSec, Watermark: hr.Watermark,
			DurableTokens: hr.DurableTokens, PrefillDone: hr.PrefillDone,
		}
		failover.ObserveRestoreReplayed(cfg.Obs, cfg.Spans, halt, hr.ReturnedDevices, hr.MovedLayers, hr.Migration, hr.StartRound)
	}
	cfg.Logf("resuming replanned epoch %d from round %d on %d workers", co.epoch, start, len(live))

	resumed, err := eng.Run()
	if err != nil {
		if errors.Is(err, ErrInjectedCoordCrash) {
			return nil, err
		}
		co.shutdown("failed")
		return nil, fmt.Errorf("dist: recovered resume failed: %w", err)
	}
	if jerr := co.finishJournal(); jerr != nil {
		co.shutdown("failed")
		return nil, jerr
	}
	co.shutdown("done")
	res := &Result{
		Replanned:       true,
		Lost:            lost,
		LostWorker:      rr.LostWorker,
		LostDevices:     rr.LostDevices,
		DegradedPlan:    plan,
		MovedLayers:     rr.MovedLayers,
		Migration:       rr.Migration,
		Resumed:         resumed,
		TotalTokens:     base + resumed.TokensOut,
		TotalLatencySec: rr.AtSec + rr.Migration.TransferSec + resumed.LatencySec,
	}
	if len(rr.LostDevices) > 0 {
		res.LostDevice = rr.LostDevices[0]
	}
	if hr != nil {
		// The resumed run served the restored plan; report it as the heal's
		// final leg, mirroring the uninterrupted restore path.
		res.Restored = true
		res.HealedWorkers = hr.HealedWorkers
		res.RestoredDevices = hr.ReturnedDevices
		res.RestoreHalt = halt
		res.RestoredPlan = plan
		// The degraded plan is the epoch before the restore's.
		res.DegradedPlan = st.Plans[len(st.Plans)-2].Payload.Plan
		res.RestoreMovedLayers = hr.MovedLayers
		res.RestoreMigration = hr.Migration
		res.Final = resumed
		res.Resumed = rt.Stats{}
		res.TotalLatencySec = rr.AtSec + rr.Migration.TransferSec + hr.AtSec + hr.Migration.TransferSec + resumed.LatencySec
	}
	return res, nil
}

// onRoundCommit is the Engine.OnRoundCommit callback: journal every
// watermark advance so recovery can restore progress exactly.
func (co *coordinator) onRoundCommit(watermark, durable, runTokens int) {
	if co.jnl == nil {
		return
	}
	co.jnl.append(&Record{Type: RecRound, Round: &RoundRecord{
		Epoch: co.epoch, Watermark: watermark, DurableTokens: durable,
		PrefillDone: true, RunTokens: runTokens,
	}})
}

// finishJournal seals a completed run and surfaces any append error the
// run accumulated — a silently lossy journal must fail the run.
func (co *coordinator) finishJournal() error {
	if co.jnl == nil {
		return nil
	}
	co.jnl.append(&Record{Type: RecDone})
	return co.jnl.Err()
}

// crash simulates sudden coordinator death for CoordFailAfter: sever
// every worker connection without a farewell, leave the journal exactly
// as a SIGKILL would (no Done record), and stop the control loops. With
// a Die hook the process never returns from it.
func (co *coordinator) crash() {
	co.cfg.Logf("injected coordinator crash after %d stage calls", co.cfg.CoordFailAfter)
	if co.cfg.Die != nil {
		co.cfg.Die()
	}
	co.mu.Lock()
	members := make([]*member, 0, len(co.members))
	for _, m := range co.members {
		members = append(members, m)
	}
	co.mu.Unlock()
	for _, m := range members {
		m.mu.Lock()
		w := m.conn
		m.conn = nil
		m.mu.Unlock()
		if w != nil {
			w.close()
		}
	}
	if co.jnl != nil {
		co.jnl.close()
	}
	co.cancel()
}

// failover heals a permanent worker loss: replan on the reduced
// cluster, reconfigure the survivors, reassign stages, and resume the
// engine from the watermark.
func (co *coordinator) failover(lost *rt.DeviceLostError) (*Result, error) {
	cfg := co.cfg
	deadName := ""
	var coLost []int
	co.mu.Lock()
	if lost.Stage < len(co.owners) {
		dead := co.owners[lost.Stage]
		deadName = dead.name
		// The worker is the failure domain, not the stage: every other
		// stage it served loses its device with it. Declaring them all in
		// this one replan re-solves and re-ships weights once, instead of
		// cascading through a failover cycle per stage.
		for j, m := range co.owners {
			if m == dead && cfg.Plan.Order[j] != lost.Device {
				coLost = append(coLost, cfg.Plan.Order[j])
			}
		}
		sort.Ints(coLost)
	}
	co.mu.Unlock()
	cfg.Logf("worker %s lost (stage %d, device %d, co-lost devices %v) at %.3fs; replanning on survivors",
		deadName, lost.Stage, lost.Device, coLost, lost.AtSec)

	out, err := failover.ReplanMulti(cfg.Spec, cfg.Plan, cfg.Timer, lost, coLost, cfg.Obs, cfg.CtrlObs, cfg.Spans)
	if err != nil {
		return nil, err
	}
	survivors := co.liveMembers()
	if len(survivors) == 0 {
		return nil, fmt.Errorf("dist: no surviving workers to resume on")
	}
	payload := NewPlanPayload(out.Degraded, out.Plan)
	co.mu.Lock()
	co.payload = payload
	co.mu.Unlock()
	// Make the replan durable before any survivor acts on it: the loss
	// instant is wall-clock data a recovered coordinator cannot
	// re-derive, so the replan record plus the degraded plan epoch are
	// the journal's only load-bearing entries.
	co.epoch++
	co.startRound, co.baseDurable = out.StartRound, out.DurableTokens
	if co.jnl != nil {
		co.jnl.append(&Record{Type: RecReplan, Replan: &ReplanRecord{
			LostWorker: deadName, LostStage: lost.Stage, LostDevice: lost.Device,
			AtSec: lost.AtSec, Watermark: lost.Watermark, DurableTokens: lost.DurableTokens,
			PrefillDone: lost.PrefillDone, LostDevices: out.LostDevices,
			MovedLayers: out.MovedLayers, Migration: out.Migration, StartRound: out.StartRound,
		}})
		co.jnl.append(&Record{Type: RecPlan, Plan: co.planRecord(co.epoch, "replan", payload, out.StartRound, out.DurableTokens)})
		if jerr := co.jnl.Err(); jerr != nil {
			return nil, jerr
		}
	}
	for _, m := range survivors {
		if err := co.reconfigure(m, payload); err != nil {
			return nil, fmt.Errorf("dist: reconfigure %s: %w", m.name, err)
		}
	}
	co.assignStages(out.Plan, survivors)
	co.setWorkersGauge(len(survivors))
	cfg.Logf("replanned: %d stages on %d survivors, %d layers migrate (%.0f bytes), resume round %d",
		out.Plan.NumStages(), len(survivors), out.MovedLayers, out.Migration.TotalBytes, out.StartRound)

	eng, err := rt.NewEngine(out.Degraded, out.Plan, cfg.Timer)
	if err != nil {
		return nil, err
	}
	eng.StartRound = out.StartRound
	eng.StageTimer = co.stageTime
	eng.OnRoundCommit = co.onRoundCommit
	eng.Obs, eng.Spans, eng.Trace = cfg.Obs, cfg.Spans, cfg.Trace
	if cfg.Rejoin {
		// Arm the heal: the lost worker may rejoin mid-epoch, and once
		// its lease has held for the dwell the next stage call halts this
		// engine for the capacity-restoring replan.
		co.healArmed.Store(true)
	}
	resumed, err := eng.Run()
	co.healArmed.Store(false)
	if err != nil {
		if errors.Is(err, ErrInjectedCoordCrash) {
			return nil, err
		}
		var halt *rt.RestoreHaltError
		if errors.As(err, &halt) {
			return co.restore(lost, deadName, out, halt)
		}
		return nil, fmt.Errorf("dist: resumed run failed: %w", err)
	}
	if jerr := co.finishJournal(); jerr != nil {
		return nil, jerr
	}
	return &Result{
		Replanned:       true,
		Lost:            lost,
		LostWorker:      deadName,
		LostDevice:      out.LostDevice,
		LostDevices:     out.LostDevices,
		DegradedPlan:    out.Plan,
		MovedLayers:     out.MovedLayers,
		Migration:       out.Migration,
		Resumed:         resumed,
		TotalTokens:     out.DurableTokens + resumed.TokensOut,
		TotalLatencySec: lost.AtSec + out.Migration.TransferSec + resumed.LatencySec,
	}, nil
}

// restore finishes a degraded run that voluntarily halted because the
// lost worker healed: replan capacity back onto the returned devices
// (warm-started by the original pre-loss plan), journal the heal
// write-ahead, re-run the join barrier only for the returning members
// (their reconfigure round-trip), and drive the restored plan from the
// halt watermark to completion.
func (co *coordinator) restore(lost *rt.DeviceLostError, lostWorker string, degraded *failover.Outcome, halt *rt.RestoreHaltError) (*Result, error) {
	cfg := co.cfg
	healed := co.healedMembers()
	if len(healed) == 0 {
		// The healed worker vanished again between the halt trigger and
		// the replan: finish the run degraded from the halt watermark.
		cfg.Logf("restore halt at %.3fs found no stable healed worker; continuing degraded", halt.AtSec)
		return co.resumeDegraded(lost, lostWorker, degraded, halt)
	}
	rout, err := failover.ReplanRestore(cfg.Spec, cfg.Plan, cfg.Timer, degraded, halt, nil, cfg.Obs, cfg.CtrlObs, cfg.Spans)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(healed))
	for _, m := range healed {
		names = append(names, m.name)
	}
	payload := NewPlanPayload(rout.Restored, rout.Plan)
	co.mu.Lock()
	co.payload = payload
	co.mu.Unlock()
	// The heal transition is journaled write-ahead, before any worker
	// acts on the restored plan: like the loss, the heal instant is
	// wall-clock data (a dwell expiry) a recovered coordinator cannot
	// re-derive.
	co.epoch++
	co.startRound, co.baseDurable = rout.StartRound, rout.DurableTokens
	if co.jnl != nil {
		co.jnl.append(&Record{Type: RecRestore, Restore: &RestoreRecord{
			HealedWorkers: names, ReturnedDevices: rout.RestoredDevices,
			AtSec: halt.AtSec, Watermark: halt.Watermark, DurableTokens: halt.DurableTokens,
			PrefillDone: halt.PrefillDone, MovedLayers: rout.MovedLayers,
			Migration: rout.Migration, StartRound: rout.StartRound,
		}})
		co.jnl.append(&Record{Type: RecPlan, Plan: co.planRecord(co.epoch, "restore", payload, rout.StartRound, rout.DurableTokens)})
		if jerr := co.jnl.Err(); jerr != nil {
			return nil, jerr
		}
	}
	// The returning members complete their join barrier first — the
	// restored plan is what admits them back to serving — then the
	// survivors follow.
	for _, m := range healed {
		if err := co.reconfigure(m, payload); err != nil {
			return nil, fmt.Errorf("dist: reconfigure healed %s: %w", m.name, err)
		}
		m.mu.Lock()
		m.rejoining = false
		m.mu.Unlock()
	}
	healedSet := make(map[string]bool, len(healed))
	for _, m := range healed {
		healedSet[m.name] = true
	}
	live := co.liveMembers()
	for _, m := range live {
		if healedSet[m.name] {
			continue
		}
		if err := co.reconfigure(m, payload); err != nil {
			return nil, fmt.Errorf("dist: reconfigure %s: %w", m.name, err)
		}
	}
	co.assignStages(rout.Plan, live)
	co.setWorkersGauge(len(live))
	cfg.Logf("restored: %d stages on %d workers (healed %v), %d layers migrate back (%.0f bytes), resume round %d",
		rout.Plan.NumStages(), len(live), names, rout.MovedLayers, rout.Migration.TotalBytes, rout.StartRound)

	eng, err := rt.NewEngine(rout.Restored, rout.Plan, cfg.Timer)
	if err != nil {
		return nil, err
	}
	eng.StartRound = rout.StartRound
	eng.StageTimer = co.stageTime
	eng.OnRoundCommit = co.onRoundCommit
	eng.Obs, eng.Spans, eng.Trace = cfg.Obs, cfg.Spans, cfg.Trace
	final, err := eng.Run()
	if err != nil {
		if errors.Is(err, ErrInjectedCoordCrash) {
			return nil, err
		}
		return nil, fmt.Errorf("dist: restored run failed: %w", err)
	}
	if jerr := co.finishJournal(); jerr != nil {
		return nil, jerr
	}
	return &Result{
		Replanned:          true,
		Lost:               lost,
		LostWorker:         lostWorker,
		LostDevice:         degraded.LostDevice,
		LostDevices:        degraded.LostDevices,
		DegradedPlan:       degraded.Plan,
		MovedLayers:        degraded.MovedLayers,
		Migration:          degraded.Migration,
		Restored:           true,
		HealedWorkers:      names,
		RestoredDevices:    rout.RestoredDevices,
		RestoreHalt:        halt,
		RestoredPlan:       rout.Plan,
		RestoreMovedLayers: rout.MovedLayers,
		RestoreMigration:   rout.Migration,
		Final:              final,
		TotalTokens:        rout.DurableTokens + final.TokensOut,
		TotalLatencySec:    lost.AtSec + degraded.Migration.TransferSec + halt.AtSec + rout.Migration.TransferSec + final.LatencySec,
	}, nil
}

// resumeDegraded finishes the degraded epoch from a restore halt whose
// healed worker evaporated before the replan could run.
func (co *coordinator) resumeDegraded(lost *rt.DeviceLostError, lostWorker string, degraded *failover.Outcome, halt *rt.RestoreHaltError) (*Result, error) {
	cfg := co.cfg
	eng, err := rt.NewEngine(degraded.Degraded, degraded.Plan, cfg.Timer)
	if err != nil {
		return nil, err
	}
	eng.StartRound = halt.Watermark
	eng.StageTimer = co.stageTime
	eng.OnRoundCommit = co.onRoundCommit
	eng.Obs, eng.Spans, eng.Trace = cfg.Obs, cfg.Spans, cfg.Trace
	resumed, err := eng.Run()
	if err != nil {
		if errors.Is(err, ErrInjectedCoordCrash) {
			return nil, err
		}
		return nil, fmt.Errorf("dist: degraded continuation failed: %w", err)
	}
	if jerr := co.finishJournal(); jerr != nil {
		return nil, jerr
	}
	return &Result{
		Replanned:       true,
		Lost:            lost,
		LostWorker:      lostWorker,
		LostDevice:      degraded.LostDevice,
		LostDevices:     degraded.LostDevices,
		DegradedPlan:    degraded.Plan,
		MovedLayers:     degraded.MovedLayers,
		Migration:       degraded.Migration,
		Resumed:         resumed,
		TotalTokens:     halt.DurableTokens + resumed.TokensOut,
		TotalLatencySec: lost.AtSec + degraded.Migration.TransferSec + resumed.LatencySec,
	}, nil
}

// stageTime is the Engine.StageTimer callback: evaluate one task on the
// worker owning the stage, surviving detach windows and deadline
// aborts, and converting a lease expiry into a StageLostError. While the
// degraded epoch runs with heal armed, the first call that finds a
// dwell-stable rejoined worker instead halts the engine with a
// StageRestoreError so the restore replan can bring it back.
func (co *coordinator) stageTime(stage, batch, round int, prefill bool) (float64, error) {
	if co.healArmed.Load() && len(co.healedMembers()) > 0 && co.healArmed.CompareAndSwap(true, false) {
		return 0, &rt.StageRestoreError{}
	}
	co.mu.Lock()
	if stage >= len(co.owners) {
		co.mu.Unlock()
		return 0, fmt.Errorf("dist: stage %d has no assigned worker", stage)
	}
	m := co.owners[stage]
	co.mu.Unlock()

	aborts := 0
	for {
		w, err := m.awaitConn(co.ctx)
		if errors.Is(err, errMemberLost) {
			return 0, &rt.StageLostError{Stage: stage}
		}
		if err != nil {
			return 0, err
		}
		id := co.idSeq.Add(1)
		ch := co.register(id)
		req := &StageTimeRequest{Stage: stage, Batch: batch, Round: round, Prefill: prefill}
		if co.cfg.RoundDeadline > 0 {
			req.DeadlineUnixNano = time.Now().Add(co.cfg.RoundDeadline).UnixNano()
		}
		if err := w.send(&Message{Type: MsgStageTime, ID: id, StageTime: req}); err != nil {
			co.unregister(id)
			m.detachIf(w)
			co.ctrlInc("llmpq_dist_stage_resends_total")
			continue
		}
		// The response must arrive within deadline + lease: either the
		// worker answers (possibly with an abort), the connection dies
		// (resend after reattach), or the lease expires.
		msg, err := co.await(id, ch, m, w, co.cfg.RoundDeadline+co.cfg.Lease)
		switch {
		case errors.Is(err, errMemberLost):
			return 0, &rt.StageLostError{Stage: stage}
		case errors.Is(err, errConnClosed):
			co.ctrlInc("llmpq_dist_stage_resends_total")
			continue
		case errors.Is(err, errAwaitTimeout):
			// Conn is up but the worker went mute; force a reconnect and
			// charge a deadline strike.
			m.detachIf(w)
			co.ctrlInc("llmpq_dist_deadline_aborts_total")
			aborts++
			if aborts > co.cfg.DeadlineRetries {
				return 0, fmt.Errorf("dist: stage %d task exceeded its %s deadline %d times", stage, co.cfg.RoundDeadline, aborts)
			}
			continue
		case err != nil:
			return 0, err
		}
		res := msg.StageTimeResult
		if res.Aborted {
			co.ctrlInc("llmpq_dist_deadline_aborts_total")
			aborts++
			if aborts > co.cfg.DeadlineRetries {
				return 0, fmt.Errorf("dist: stage %d task exceeded its %s deadline %d times", stage, co.cfg.RoundDeadline, aborts)
			}
			continue
		}
		if res.Err != "" {
			return 0, fmt.Errorf("dist: worker %s stage %d: %s", m.name, stage, res.Err)
		}
		if co.stageCalls != nil {
			co.stageCalls.Inc()
		}
		// Injected-crash seam: dying on the Nth completed evaluation is
		// deterministic (the engine issues stage calls in virtual-time
		// order), so recovery tests can crash at a reproducible point.
		if n := co.cfg.CoordFailAfter; n > 0 && co.calls.Add(1) == int64(n) {
			co.crash()
			return 0, ErrInjectedCoordCrash
		}
		return res.Seconds, nil
	}
}

// await blocks until the pending request id resolves, the request's
// connection dies, the member is lost, the wait elapses, or the
// coordinator stops.
func (co *coordinator) await(id uint64, ch chan *Message, m *member, w *wire, wait time.Duration) (*Message, error) {
	var tC <-chan time.Time
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		tC = t.C
	}
	select {
	case msg := <-ch:
		return msg, nil
	case <-w.closed():
		co.unregister(id)
		return nil, errConnClosed
	case <-m.lostCh:
		co.unregister(id)
		return nil, errMemberLost
	case <-tC:
		co.unregister(id)
		return nil, errAwaitTimeout
	case <-co.ctx.Done():
		co.unregister(id)
		return nil, co.ctx.Err()
	}
}

// reconfigure ships a new plan payload to one member and waits for the
// acknowledgement, resending across transient disconnects.
func (co *coordinator) reconfigure(m *member, payload *PlanPayload) error {
	for {
		w, err := m.awaitConn(co.ctx)
		if err != nil {
			return err
		}
		id := co.idSeq.Add(1)
		ch := co.register(id)
		if err := w.send(&Message{Type: MsgReconfigure, ID: id, Reconfigure: payload}); err != nil {
			co.unregister(id)
			m.detachIf(w)
			continue
		}
		_, err = co.await(id, ch, m, w, co.cfg.RoundDeadline+co.cfg.Lease)
		if errors.Is(err, errConnClosed) {
			continue
		}
		return err
	}
}

func (co *coordinator) register(id uint64) chan *Message {
	ch := make(chan *Message, 1)
	co.pmu.Lock()
	co.pending[id] = ch
	co.pmu.Unlock()
	return ch
}

func (co *coordinator) unregister(id uint64) {
	co.pmu.Lock()
	delete(co.pending, id)
	co.pmu.Unlock()
}

// route delivers a response frame to its waiting request; late
// responses to abandoned ids are dropped.
func (co *coordinator) route(msg *Message) {
	co.pmu.Lock()
	ch := co.pending[msg.ID]
	delete(co.pending, msg.ID)
	co.pmu.Unlock()
	if ch != nil {
		ch <- msg
	}
}

// acceptLoop admits connections until the coordinator stops.
func (co *coordinator) acceptLoop() {
	for {
		c, err := co.cfg.Listener.Accept()
		if err != nil {
			if co.ctx.Err() != nil {
				return
			}
			// The listener may surface transient errors (including
			// injected partitions); keep accepting until shutdown.
			select {
			case <-co.ctx.Done():
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		go co.handleConn(c)
	}
}

// handleConn runs the handshake and then the per-connection read loop.
func (co *coordinator) handleConn(c net.Conn) {
	w := newWire(c, co.cfg.CtrlObs)
	_ = c.SetReadDeadline(time.Now().Add(co.cfg.Lease)) //llmpq:allow(errdrop): a failed deadline surfaces as the recv error on the next line
	msg, err := w.recv()
	_ = c.SetReadDeadline(time.Time{}) //llmpq:allow(errdrop): clearing a deadline on a dying conn can only fail harmlessly
	if err != nil || msg.Type != MsgHello {
		w.close()
		return
	}
	h := msg.Hello
	if h.Version != ProtocolVersion {
		//llmpq:allow(errdrop): best-effort courtesy reject; the connection closes either way
		_ = w.send(&Message{Type: MsgReject, Reject: &Reject{
			Reason: fmt.Sprintf("protocol version %d, coordinator speaks %d", h.Version, ProtocolVersion)}})
		w.close()
		return
	}
	m, rec, reject, retryable := co.admit(h)
	if reject != "" {
		//llmpq:allow(errdrop): best-effort courtesy reject; the connection closes either way
		_ = w.send(&Message{Type: MsgReject, Reject: &Reject{Reason: reject, Retryable: retryable}})
		w.close()
		return
	}
	m.attach(w)
	co.mu.Lock()
	payload := co.payload
	token := m.currentToken()
	co.mu.Unlock()
	welcome := &Welcome{
		Token:        token,
		HeartbeatSec: co.cfg.Heartbeat.Seconds(),
		LeaseSec:     co.cfg.Lease.Seconds(),
		Plan:         payload,
	}
	if err := w.send(&Message{Type: MsgWelcome, Welcome: welcome}); err != nil {
		m.detachIf(w)
		return
	}
	// Journal the mint only after the welcome went out: recovery must
	// never hold a worker to a token it was never offered.
	if rec != nil && co.jnl != nil {
		co.jnl.append(&Record{Type: RecMember, Member: rec})
	}
	if h.Token != "" {
		co.ctrlInc("llmpq_dist_reattach_total")
	}
	co.maybeJoined()
	co.cfg.Logf("worker %s attached", m.name)

	for {
		msg, err := w.recv()
		if err != nil {
			m.detachIf(w)
			co.cfg.Logf("worker %s detached: %v", m.name, err)
			return
		}
		// Any post-welcome frame proves the worker proceeded past the
		// handshake — from here the token is the only key to the name.
		m.touch()
		m.setProven()
		switch msg.Type {
		case MsgHeartbeat:
			co.ctrlInc("llmpq_dist_heartbeats_received_total")
		case MsgStageTimeResult, MsgReconfigureOK:
			co.route(msg)
		case MsgBye:
			m.detachIf(w)
			return
		default:
			// Unknown frames renew the lease and are otherwise ignored —
			// forward compatibility within a protocol version.
		}
	}
}

// admit resolves a hello into a member plus, when a token was minted or
// rotated, the MemberRecord to journal once the welcome is delivered; or
// into a rejection (retryable for transient mid-handshake collisions).
// Under Config.Rejoin a LOST name may heal back in — see admitRejoin —
// while stale tokens and quarantined flappers stay fenced out.
func (co *coordinator) admit(h *Hello) (*member, *MemberRecord, string, bool) {
	if h.Name == "" {
		return nil, nil, "worker name must not be empty", false
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if m, ok := co.members[h.Name]; ok {
		m.mu.Lock()
		lost, proven, attached := m.lost, m.proven, m.conn != nil
		tokenOK := h.Token != "" && m.token == h.Token
		if tokenOK {
			m.proven = true
		}
		m.mu.Unlock()
		if lost {
			if co.cfg.Rejoin {
				return co.admitRejoin(h, m, tokenOK)
			}
			return nil, nil, fmt.Sprintf("worker %q lease expired; membership is closed", h.Name), false
		}
		if tokenOK {
			return m, nil, "", false
		}
		if h.Token == "" && !proven && !attached {
			// The worker never demonstrably received its welcome and is
			// retrying from scratch: same worker, mint lost in flight.
			// Rotate the token so the journal's latest mint is the live
			// one and the stale mint can never open the name.
			co.tokens++
			m.mu.Lock()
			m.token = fmt.Sprintf("lease-%d-%s", co.tokens, h.Name)
			tok := m.token
			m.mu.Unlock()
			return m, &MemberRecord{Name: h.Name, Token: tok, Ord: co.tokens}, "", false
		}
		if h.Token == "" && !proven && attached {
			// Another handshake for this name is in flight on a live
			// connection; retry once it either proves itself (heartbeat)
			// or dies (rotation path above).
			return nil, nil, fmt.Sprintf("worker name %q is mid-handshake", h.Name), true
		}
		if co.cfg.Rejoin && h.Rejoin {
			// A heal-capable restart raced the lease: the old incarnation is
			// dead (or dying) but the sweeper has not yet declared it — the
			// restart may even beat the coordinator noticing the severed
			// connection. Back off until the lease verdict opens the rejoin
			// door; an actual live holder keeps the name (the squatter's
			// retries run out against a healthy lease).
			return nil, nil, fmt.Sprintf("worker %q lease is still live; retry after expiry", h.Name), true
		}
		return nil, nil, fmt.Sprintf("worker name %q is taken", h.Name), false
	}
	if h.Token != "" {
		return nil, nil, "unknown rejoin token", false
	}
	if len(co.members) >= co.cfg.Workers {
		return nil, nil, fmt.Sprintf("cluster is full (%d workers)", co.cfg.Workers), false
	}
	co.tokens++
	m := &member{
		name:   h.Name,
		token:  fmt.Sprintf("lease-%d-%s", co.tokens, h.Name),
		lostCh: make(chan struct{}),
	}
	m.lastHeard = time.Now()
	co.members[h.Name] = m
	return m, &MemberRecord{Name: h.Name, Token: m.token, Ord: co.tokens}, "", false
}

// admitRejoin is the heal half of admit (Config.Rejoin; co.mu held):
// decide whether a hello for a LOST name re-opens it. Two doors in —
// the member's own current token (a surviving process back from a long
// partition) or a token-less hello carrying the rejoin flag (a
// restarted process reclaiming its name; the token rotates so the dead
// incarnation's mint can never open the name again). Stale non-empty
// tokens stay fatally fenced, un-flagged token-less hellos keep the
// closed-membership fence, and a flapper past the tolerance is
// quarantined for the rest of the run.
func (co *coordinator) admitRejoin(h *Hello, m *member, tokenOK bool) (*member, *MemberRecord, string, bool) {
	m.mu.Lock()
	quarantined, flaps := m.quarantined, m.flaps
	m.mu.Unlock()
	if quarantined {
		return nil, nil, fmt.Sprintf("worker %q is quarantined after %d lease losses", h.Name, flaps), false
	}
	if !tokenOK && h.Token != "" {
		// A stale mint (or a squatter guessing): epoch fencing holds even
		// with the heal door open.
		return nil, nil, fmt.Sprintf("worker %q presented a stale rejoin token", h.Name), false
	}
	if !tokenOK && !h.Rejoin {
		return nil, nil, fmt.Sprintf("worker %q lease expired; membership is closed", h.Name), false
	}
	if flaps > co.cfg.FlapTolerance {
		m.mu.Lock()
		m.quarantined = true
		m.mu.Unlock()
		co.ctrlInc("llmpq_heal_flap_quarantines_total")
		co.cfg.Logf("worker %s quarantined: %d lease losses exceed the flap tolerance %d", h.Name, flaps, co.cfg.FlapTolerance)
		return nil, nil, fmt.Sprintf("worker %q is quarantined after %d lease losses", h.Name, flaps), false
	}
	var rec *MemberRecord
	if !tokenOK {
		// Restarted process: rotate the token so the journal's latest
		// mint is the live one.
		co.tokens++
		m.mu.Lock()
		m.token = fmt.Sprintf("lease-%d-%s", co.tokens, h.Name)
		m.proven = false
		rec = &MemberRecord{Name: h.Name, Token: m.token, Ord: co.tokens}
		m.mu.Unlock()
	}
	m.rejoin()
	co.ctrlInc("llmpq_heal_rejoins_total")
	co.cfg.Logf("worker %s rejoined (loss %d of %d tolerated); heal dwell %s starts",
		h.Name, flaps, co.cfg.FlapTolerance, co.cfg.HealDwell)
	return m, rec, "", false
}

// maybeJoined closes the join barrier once the membership is complete
// and every not-lost member holds a live connection. Recovery seeds the
// membership from the journal, so completeness there means "everyone the
// journal knows", not the configured worker count.
func (co *coordinator) maybeJoined() {
	co.mu.Lock()
	if co.recovered == nil && len(co.members) < co.cfg.Workers {
		co.mu.Unlock()
		return
	}
	members := make([]*member, 0, len(co.members))
	for _, m := range co.members {
		members = append(members, m)
	}
	co.mu.Unlock()
	for _, m := range members {
		m.mu.Lock()
		ready := m.lost || m.conn != nil
		m.mu.Unlock()
		if !ready {
			return
		}
	}
	co.joinOnce.Do(func() { close(co.joined) })
}

// attachedCount counts not-lost members with a live connection.
func (co *coordinator) attachedCount() int {
	co.mu.Lock()
	members := make([]*member, 0, len(co.members))
	for _, m := range co.members {
		members = append(members, m)
	}
	co.mu.Unlock()
	n := 0
	for _, m := range members {
		m.mu.Lock()
		if !m.lost && m.conn != nil {
			n++
		}
		m.mu.Unlock()
	}
	return n
}

// absentMembers returns not-lost members with no live connection.
func (co *coordinator) absentMembers() []*member {
	co.mu.Lock()
	members := make([]*member, 0, len(co.members))
	for _, m := range co.members {
		members = append(members, m)
	}
	co.mu.Unlock()
	var out []*member
	for _, m := range members {
		m.mu.Lock()
		if !m.lost && m.conn == nil {
			out = append(out, m)
		}
		m.mu.Unlock()
	}
	return out
}

// sweeper expires leases: any member silent past the lease is declared
// permanently lost, which unblocks waiting stage calls with
// StageLostError and drives the failover path.
func (co *coordinator) sweeper() {
	tick := time.NewTicker(co.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-co.ctx.Done():
			return
		case <-tick.C:
		}
		// Leases start at the join barrier: a recovered membership must
		// get its full reattach window before the sweeper may expire it.
		select {
		case <-co.joined:
		default:
			continue
		}
		now := time.Now()
		co.mu.Lock()
		members := make([]*member, 0, len(co.members))
		for _, m := range co.members {
			members = append(members, m)
		}
		co.mu.Unlock()
		for _, m := range members {
			m.mu.Lock()
			expired := !m.lost && now.Sub(m.lastHeard) > co.cfg.Lease
			m.mu.Unlock()
			if expired && m.markLost() {
				co.ctrlInc("llmpq_dist_lease_expiries_total")
				co.cfg.Logf("worker %s lease expired (silent > %s)", m.name, co.cfg.Lease)
			}
		}
	}
}

// assignStages maps the plan's stages round-robin over the members in
// name order — a pure function of (plan, membership), so every
// coordinator restart with the same workers reproduces it.
func (co *coordinator) assignStages(p *assigner.Plan, members []*member) {
	owners := make([]*member, p.NumStages())
	for j := range owners {
		owners[j] = members[j%len(members)]
	}
	co.mu.Lock()
	co.owners = owners
	co.mu.Unlock()
}

// liveMembers returns the serving members sorted by name — not lost and
// not parked in the rejoining dwell (a rejoined worker serves no stage
// until the restore replan promotes it).
func (co *coordinator) liveMembers() []*member {
	co.mu.Lock()
	defer co.mu.Unlock()
	var out []*member
	for _, m := range co.members {
		m.mu.Lock()
		skip := m.lost || m.rejoining
		m.mu.Unlock()
		if !skip {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// healedMembers returns rejoined members whose lease has held for the
// heal dwell, sorted by name.
func (co *coordinator) healedMembers() []*member {
	co.mu.Lock()
	members := make([]*member, 0, len(co.members))
	for _, m := range co.members {
		members = append(members, m)
	}
	co.mu.Unlock()
	var out []*member
	for _, m := range members {
		if m.healReady(co.cfg.HealDwell) {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func (co *coordinator) memberCount() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	return len(co.members)
}

// shutdown says goodbye to every live worker and stops the loops.
func (co *coordinator) shutdown(reason string) {
	for _, m := range co.liveMembers() {
		m.mu.Lock()
		w := m.conn
		m.mu.Unlock()
		if w != nil {
			_ = w.send(&Message{Type: MsgBye, Bye: &Bye{Reason: reason}}) //llmpq:allow(errdrop): best-effort farewell during shutdown; unreachable workers time out on their own
		}
	}
	co.cancel()
}

func (co *coordinator) setWorkersGauge(n int) {
	if co.cfg.Obs != nil {
		co.cfg.Obs.Gauge("llmpq_dist_workers").Set(float64(n))
	}
}

func (co *coordinator) ctrlInc(name string) {
	if co.cfg.CtrlObs != nil {
		co.cfg.CtrlObs.Counter(name).Inc()
	}
}

func (co *coordinator) ctrlAdd(name string, v float64) {
	if co.cfg.CtrlObs != nil {
		co.cfg.CtrlObs.Counter(name).Add(v)
	}
}
