// Package dist is the real multi-process control plane for llmpq-dist
// (DESIGN.md §11): a coordinator that owns the deterministic global
// event loop and per-stage workers that evaluate the pure stage-time
// function remotely, speaking length-prefixed JSON over TCP.
//
// The design invariant is that a multi-process run is bit-identical to
// the single-process engine: runtime.StageTime is a pure function of
// (spec, plan, stage, batch, round, phase), Go's JSON encoder
// round-trips float64 exactly, and the coordinator keeps the entire
// discrete-event simulation local — workers contribute values, never
// scheduling decisions. Liveness is layered on top with worker→
// coordinator heartbeats and a lease: a worker that stays silent past
// its lease is declared lost, which surfaces in the engine as a
// runtime.StageLostError and drives the same failover.Replan →
// watermark-resume path a chaos permanent crash does.
package dist

import (
	"fmt"

	"repro/internal/assigner"
	"repro/internal/hardware"
	"repro/internal/model"
)

// ProtocolVersion gates the handshake: a worker whose hello carries a
// different version is rejected before it can join the membership.
const ProtocolVersion = 1

// MsgType discriminates the frames of the wire protocol.
type MsgType string

const (
	// MsgHello is the worker's first frame: version, name, and (on
	// reattach) the rejoin token from a previous welcome.
	MsgHello MsgType = "hello"
	// MsgWelcome admits a worker: rejoin token, heartbeat/lease terms,
	// and the current plan payload.
	MsgWelcome MsgType = "welcome"
	// MsgReject refuses a hello (version mismatch, name collision,
	// cluster full) and closes the connection.
	MsgReject MsgType = "reject"
	// MsgHeartbeat is the worker's periodic liveness beacon; any frame
	// renews the lease, heartbeats exist to renew it when idle.
	MsgHeartbeat MsgType = "heartbeat"
	// MsgStageTime asks the worker to evaluate runtime.StageTime for one
	// task, subject to a deadline.
	MsgStageTime MsgType = "stagetime"
	// MsgStageTimeResult answers a MsgStageTime with the same ID.
	MsgStageTimeResult MsgType = "stagetime_result"
	// MsgReconfigure ships a replacement plan payload after a failover
	// replan.
	MsgReconfigure MsgType = "reconfigure"
	// MsgReconfigureOK acknowledges a MsgReconfigure with the same ID.
	MsgReconfigureOK MsgType = "reconfigure_ok"
	// MsgBye is the coordinator's clean shutdown: the worker exits
	// instead of reconnecting.
	MsgBye MsgType = "bye"
)

// Message is the single envelope every frame carries; exactly the field
// matching Type is populated.
type Message struct {
	Type MsgType `json:"type"`
	// ID correlates a request with its response (stagetime and
	// reconfigure round trips).
	ID uint64 `json:"id,omitempty"`

	Hello           *Hello            `json:"hello,omitempty"`
	Welcome         *Welcome          `json:"welcome,omitempty"`
	Reject          *Reject           `json:"reject,omitempty"`
	StageTime       *StageTimeRequest `json:"stagetime,omitempty"`
	StageTimeResult *StageTimeResult  `json:"stagetime_result,omitempty"`
	Reconfigure     *PlanPayload      `json:"reconfigure,omitempty"`
	Bye             *Bye              `json:"bye,omitempty"`
}

// Hello opens a worker session.
type Hello struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	// Token is empty on first join; on reconnect it must echo the token
	// the welcome handed out, proving the worker is the same process
	// reattaching rather than a name squatter.
	Token string `json:"token,omitempty"`
	// Rejoin asks the coordinator to re-admit this name even if its
	// lease already expired — the heal handshake. Honored only when the
	// coordinator runs with Config.Rejoin; a token-less rejoin is a
	// restarted process reclaiming its name, a tokened one a surviving
	// process returning from a long partition. Stale tokens stay fenced
	// either way.
	Rejoin bool `json:"rejoin,omitempty"`
}

// Welcome admits a worker and states the membership terms.
type Welcome struct {
	Token        string  `json:"token"`
	HeartbeatSec float64 `json:"heartbeat_sec"`
	LeaseSec     float64 `json:"lease_sec"`
	Plan         *PlanPayload
}

// Reject refuses a hello. Retryable marks transient refusals (a
// mid-handshake name collision): the worker should back off and retry
// rather than die.
type Reject struct {
	Reason    string `json:"reason"`
	Retryable bool   `json:"retryable,omitempty"`
}

// Bye ends a session cleanly.
type Bye struct {
	Reason string `json:"reason,omitempty"`
}

// StageTimeRequest asks for one runtime.StageTime evaluation.
type StageTimeRequest struct {
	Stage   int  `json:"stage"`
	Batch   int  `json:"batch"`
	Round   int  `json:"round"`
	Prefill bool `json:"prefill,omitempty"`
	// DeadlineUnixNano is the wall-clock instant after which the
	// coordinator no longer wants the answer; the worker aborts and
	// reports instead of computing late. 0 means no deadline.
	DeadlineUnixNano int64 `json:"deadline_unix_nano,omitempty"`
}

// StageTimeResult answers a StageTimeRequest.
type StageTimeResult struct {
	Seconds float64 `json:"seconds"`
	// Aborted reports the deadline had passed before (or while) the
	// worker served the request; Seconds is meaningless.
	Aborted bool `json:"aborted,omitempty"`
	// Err carries a stage-time evaluation failure.
	Err string `json:"err,omitempty"`
}

// PlanPayload is everything a worker needs to evaluate
// runtime.StageTime: the model, the (possibly degraded) cluster, the
// workload, the KV precision, and the plan. It is deliberately not a
// core.Request — a degraded cluster produced by failover cannot be
// re-expressed as named device counts.
type PlanPayload struct {
	Cfg     model.Config      `json:"cfg"`
	Cluster hardware.Cluster  `json:"cluster"`
	Work    assigner.Workload `json:"work"`
	KVBits  int               `json:"kv_bits,omitempty"`
	Plan    *assigner.Plan    `json:"plan"`
}

// NewPlanPayload extracts the wire payload from a spec and plan.
func NewPlanPayload(s *assigner.Spec, p *assigner.Plan) *PlanPayload {
	return &PlanPayload{Cfg: s.Cfg, Cluster: s.Cluster, Work: s.Work, KVBits: s.KVBits, Plan: p}
}

// Spec rebuilds the minimal assigner.Spec StageTime reads. The solver
// fields (Bits, Omega, Theta, Method) are not shipped — workers never
// plan, they only evaluate.
func (pp *PlanPayload) Spec() *assigner.Spec {
	return &assigner.Spec{Cfg: pp.Cfg, Cluster: pp.Cluster, Work: pp.Work, KVBits: pp.KVBits}
}

// Validate checks the payload is structurally usable for StageTime.
func (pp *PlanPayload) Validate() error {
	if pp.Plan == nil || pp.Plan.NumStages() == 0 {
		return fmt.Errorf("dist: payload has no plan")
	}
	if err := pp.Work.Validate(); err != nil {
		return err
	}
	n := pp.Cluster.NumDevices()
	for _, d := range pp.Plan.Order {
		if d < 0 || d >= n {
			return fmt.Errorf("dist: plan device %d outside cluster of %d", d, n)
		}
	}
	return nil
}

// validate checks an envelope has the payload its type requires.
func (m *Message) validate() error {
	switch m.Type {
	case MsgHello:
		if m.Hello == nil {
			return fmt.Errorf("dist: hello frame without hello payload")
		}
	case MsgWelcome:
		if m.Welcome == nil {
			return fmt.Errorf("dist: welcome frame without welcome payload")
		}
	case MsgReject:
		if m.Reject == nil {
			return fmt.Errorf("dist: reject frame without reason")
		}
	case MsgStageTime:
		if m.StageTime == nil {
			return fmt.Errorf("dist: stagetime frame without request")
		}
	case MsgStageTimeResult:
		if m.StageTimeResult == nil {
			return fmt.Errorf("dist: stagetime_result frame without result")
		}
	case MsgReconfigure:
		if m.Reconfigure == nil {
			return fmt.Errorf("dist: reconfigure frame without payload")
		}
	case MsgHeartbeat, MsgReconfigureOK, MsgBye:
	default:
		return fmt.Errorf("dist: unknown message type %q", m.Type)
	}
	return nil
}
