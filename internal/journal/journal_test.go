package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func writeRecords(t *testing.T, path string, payloads ...[]byte) {
	t.Helper()
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if _, err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	want := [][]byte{[]byte("plan"), []byte("member-a"), []byte(`{"round":3}`)}
	writeRecords(t, path, want...)
	rep, err := ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TornBytes != 0 {
		t.Fatalf("clean journal reports %d torn bytes", rep.TornBytes)
	}
	if len(rep.Records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(rep.Records), len(want))
	}
	for i, r := range rep.Records {
		if string(r) != string(want[i]) {
			t.Errorf("record %d = %q, want %q", i, r, want[i])
		}
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != rep.ValidBytes {
		t.Errorf("ValidBytes %d, file size %d", rep.ValidBytes, fi.Size())
	}
}

func TestAppendRejectsDegenerateRecords(t *testing.T) {
	w, err := Create(filepath.Join(t.TempDir(), "j"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close() //llmpq:allow(errdrop): test cleanup
	if _, err := w.Append(nil); err == nil {
		t.Error("empty append did not error")
	}
	if _, err := w.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Error("oversize append did not error")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("x")); err == nil {
		t.Error("append after close did not error")
	}
}

// TestTornTailEveryOffset is the torn-write tolerance contract: a journal
// cut at every byte offset inside its final record replays to exactly the
// records before it, reporting the dangling bytes, never an error.
func TestTornTailEveryOffset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	writeRecords(t, path, []byte("first record"), []byte("second"), []byte("the final record"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	finalStart := len(data) - headerBytes - len("the final record")
	for cut := finalStart; cut < len(data); cut++ {
		rep, err := ReplayBytes(data[:cut])
		if err != nil {
			t.Fatalf("cut at %d: unexpected error %v", cut, err)
		}
		if len(rep.Records) != 2 {
			t.Fatalf("cut at %d: replayed %d records, want 2", cut, len(rep.Records))
		}
		if int(rep.ValidBytes) != finalStart {
			t.Fatalf("cut at %d: ValidBytes %d, want %d", cut, rep.ValidBytes, finalStart)
		}
		if wantTorn := int64(cut - finalStart); rep.TornBytes != wantTorn {
			t.Fatalf("cut at %d: TornBytes %d, want %d", cut, rep.TornBytes, wantTorn)
		}
	}
}

func TestCorruptRecordsTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	writeRecords(t, path, []byte("alpha"), []byte("beta"))
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"flip payload byte", func(d []byte) []byte {
			d[headerBytes] ^= 0xff
			return d
		}},
		{"flip crc byte", func(d []byte) []byte {
			d[5] ^= 0x01
			return d
		}},
		{"zero length", func(d []byte) []byte {
			binary.BigEndian.PutUint32(d[0:4], 0)
			return d
		}},
		{"oversize length", func(d []byte) []byte {
			binary.BigEndian.PutUint32(d[0:4], MaxRecordBytes+1)
			return d
		}},
	}
	for _, c := range cases {
		data := append([]byte(nil), clean...)
		rep, err := ReplayBytes(c.mutate(data))
		var corrupt *CorruptJournalError
		if !errors.As(err, &corrupt) {
			t.Errorf("%s: error %v, want CorruptJournalError", c.name, err)
			continue
		}
		if corrupt.Offset != 0 {
			t.Errorf("%s: offset %d, want 0", c.name, corrupt.Offset)
		}
		if rep == nil || len(rep.Records) != 0 {
			t.Errorf("%s: corrupt first record still yielded a prefix", c.name)
		}
	}
	// Corruption in the second record preserves the first as the prefix.
	data := append([]byte(nil), clean...)
	second := headerBytes + len("alpha")
	data[second+headerBytes] ^= 0xff
	rep, err := ReplayBytes(data)
	var corrupt *CorruptJournalError
	if !errors.As(err, &corrupt) {
		t.Fatalf("second-record corruption: %v, want CorruptJournalError", err)
	}
	if corrupt.Offset != int64(second) {
		t.Errorf("offset %d, want %d", corrupt.Offset, second)
	}
	if len(rep.Records) != 1 || string(rep.Records[0]) != "alpha" {
		t.Errorf("prefix = %q, want [alpha]", rep.Records)
	}
}

func TestContinueTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	writeRecords(t, path, []byte("kept"), []byte("also kept"))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	whole := fi.Size()
	// Simulate a crash mid-append: a header plus half a payload.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := make([]byte, headerBytes+3)
	binary.BigEndian.PutUint32(torn[0:4], 10) // claims 10 bytes, only 3 follow
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	w, rep, err := Continue(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TornBytes != int64(len(torn)) {
		t.Errorf("TornBytes %d, want %d", rep.TornBytes, len(torn))
	}
	if len(rep.Records) != 2 {
		t.Fatalf("replayed %d records, want 2", len(rep.Records))
	}
	if _, err := w.Append([]byte("resumed")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rep2, err := ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(rep2.Records))
	for i, r := range rep2.Records {
		got[i] = string(r)
	}
	if fmt.Sprint(got) != "[kept also kept resumed]" {
		t.Errorf("after continue: %v", got)
	}
	if rep2.TornBytes != 0 {
		t.Errorf("continued journal still torn (%d bytes)", rep2.TornBytes)
	}
	fi2, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi2.Size() <= whole {
		t.Errorf("continue did not grow the journal (%d -> %d)", whole, fi2.Size())
	}
}

func TestContinueRefusesCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	writeRecords(t, path, []byte("only"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerBytes] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Continue(path); err == nil {
		t.Fatal("Continue accepted a corrupt journal")
	} else {
		var corrupt *CorruptJournalError
		if !errors.As(err, &corrupt) {
			t.Fatalf("error %v, want CorruptJournalError", err)
		}
	}
}

// TestConcurrentAppend exercises the writer mutex under the race
// detector: records from racing goroutines interleave whole, never torn.
func TestConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 20
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := w.Append([]byte(fmt.Sprintf("g%d-i%d", g, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != writers*each {
		t.Fatalf("replayed %d records, want %d", len(rep.Records), writers*each)
	}
	if rep.TornBytes != 0 {
		t.Errorf("concurrent appends left a torn tail")
	}
}

func TestErrorPaths(t *testing.T) {
	e := &CorruptJournalError{Offset: 12, Reason: "crc mismatch"}
	if msg := e.Error(); !strings.Contains(msg, "12") || !strings.Contains(msg, "crc mismatch") {
		t.Errorf("corruption error must carry offset and reason, got %q", msg)
	}
	if _, err := Create(filepath.Join(t.TempDir(), "no-such-dir", "j")); err == nil {
		t.Error("Create into a missing directory must fail")
	}
	missing := filepath.Join(t.TempDir(), "missing.journal")
	if _, err := ReplayFile(missing); err == nil {
		t.Error("ReplayFile on a missing file must fail")
	}
	if _, _, err := Continue(missing); err == nil {
		t.Error("Continue on a missing file must fail")
	}
}
