// Package journal is the durable write-ahead log behind the distributed
// coordinator's crash recovery (DESIGN.md §14). Records are opaque byte
// payloads framed as
//
//	[4-byte big-endian payload length][4-byte big-endian CRC32-IEEE][payload]
//
// and every append is fsync'd, so the log on disk is always a valid
// prefix of the records handed to Append — possibly followed by one torn
// tail from a crash that landed mid-write. Replay distinguishes the two
// failure shapes a reader can meet:
//
//   - a torn tail (the file ends inside a header or payload): expected
//     after a crash. Replay returns the records of the valid prefix and
//     reports the dangling byte count; Continue truncates it away.
//   - a corrupt record (CRC mismatch, zero or oversize length) anywhere
//     before EOF: the log itself is damaged. Replay stops at the valid
//     prefix and returns a *CorruptJournalError — never a panic,
//     whatever the bytes (the FuzzJournalReplay contract).
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// headerBytes frames each record: 4-byte length + 4-byte CRC32 (IEEE).
const headerBytes = 8

// MaxRecordBytes bounds one record, mirroring the wire protocol's frame
// cap: a length field beyond it is corruption, not a huge record.
const MaxRecordBytes = 8 << 20

// CorruptJournalError reports a structurally damaged record at Offset.
// A torn tail is not corruption — see Replayed.TornBytes.
type CorruptJournalError struct {
	Offset int64
	Reason string
}

func (e *CorruptJournalError) Error() string {
	return fmt.Sprintf("journal: corrupt record at byte %d: %s", e.Offset, e.Reason)
}

// Writer appends CRC-checked records to a journal file, fsync'ing each
// one so a crash never loses an acknowledged append. Safe for concurrent
// use.
type Writer struct {
	mu     sync.Mutex
	f      *os.File
	closed bool
}

// Create opens (truncating) a fresh journal at path.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &Writer{f: f}, nil
}

// Append frames, writes, and fsyncs one record, returning the bytes the
// journal grew by.
func (w *Writer) Append(payload []byte) (int, error) {
	if len(payload) == 0 {
		return 0, fmt.Errorf("journal: empty record")
	}
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("journal: record of %d bytes exceeds the %d cap", len(payload), MaxRecordBytes)
	}
	buf := make([]byte, headerBytes+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[headerBytes:], payload)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("journal: append to a closed writer")
	}
	if _, err := w.f.Write(buf); err != nil {
		return 0, err
	}
	if err := w.f.Sync(); err != nil {
		return 0, err
	}
	return len(buf), nil
}

// Close releases the file; further appends fail.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}

// Replayed is the result of reading a journal back.
type Replayed struct {
	// Records holds each complete, CRC-valid payload in append order.
	Records [][]byte
	// ValidBytes is the length of the well-formed prefix.
	ValidBytes int64
	// TornBytes counts trailing bytes of an incomplete final record — a
	// crash landed mid-append. 0 means the file ends on a record
	// boundary.
	TornBytes int64
}

// ReplayBytes decodes a journal image. It never panics: it returns the
// valid-prefix records plus either nil (clean or torn tail) or a
// *CorruptJournalError (a complete record failed its checks). The
// Replayed result is valid in both cases.
func ReplayBytes(data []byte) (*Replayed, error) {
	rep := &Replayed{}
	off := 0
	for {
		rem := len(data) - off
		if rem == 0 {
			return rep, nil
		}
		if rem < headerBytes {
			rep.TornBytes = int64(rem)
			return rep, nil
		}
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		sum := binary.BigEndian.Uint32(data[off+4 : off+8])
		if n == 0 {
			return rep, &CorruptJournalError{Offset: int64(off), Reason: "zero-length record"}
		}
		if n > MaxRecordBytes {
			return rep, &CorruptJournalError{Offset: int64(off),
				Reason: fmt.Sprintf("record length %d exceeds the %d cap", n, MaxRecordBytes)}
		}
		if rem < headerBytes+n {
			// The final record's payload is cut short: a torn write, not
			// corruption — the crash raced the append.
			rep.TornBytes = int64(rem)
			return rep, nil
		}
		payload := data[off+headerBytes : off+headerBytes+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return rep, &CorruptJournalError{Offset: int64(off), Reason: "CRC32 mismatch"}
		}
		rep.Records = append(rep.Records, payload)
		off += headerBytes + n
		rep.ValidBytes = int64(off)
	}
}

// ReplayFile reads and decodes the journal at path.
func ReplayFile(path string) (*Replayed, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ReplayBytes(data)
}

// Continue resumes writing an existing journal: replay it, truncate a
// torn tail (a crash mid-append leaves one; the lost record was never
// acknowledged), and return a writer positioned after the last complete
// record. A corrupt record fails the whole recovery — truncating real
// damage would silently rewrite history.
func Continue(path string) (*Writer, *Replayed, error) {
	rep, err := ReplayFile(path)
	if err != nil {
		return nil, rep, err
	}
	if rep.TornBytes > 0 {
		if err := os.Truncate(path, rep.ValidBytes); err != nil {
			return nil, rep, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, rep, err
	}
	return &Writer{f: f}, rep, nil
}
