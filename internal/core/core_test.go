package core

import (
	"path/filepath"
	"testing"

	"repro/internal/assigner"
	"repro/internal/indicator"
	"repro/internal/model"
)

func TestPlanAndServeCluster3(t *testing.T) {
	spec, res, err := Plan(Request{ClusterID: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(spec); err != nil {
		t.Fatalf("invalid plan: %v", err)
	}
	st, err := Serve(spec, res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if st.Throughput <= 0 {
		t.Errorf("throughput %.3f", st.Throughput)
	}
	ppl, err := PredictPPL(spec, res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if ppl < 10.5 || ppl > 12 {
		t.Errorf("opt-30b PPL %.2f outside plausible band", ppl)
	}
}

func TestPlanAdHocCluster(t *testing.T) {
	spec, res, err := Plan(Request{
		ModelName:   "opt-13b",
		DeviceNames: []string{"V100"}, DeviceNumbers: []int{1},
		GlobalBatch: 16, PromptLen: 256, Generate: 50,
		Interconnect: "nvlink",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.NumStages() != 1 {
		t.Errorf("single device plan should have one stage")
	}
	if spec.Cfg.Name != "opt-13b" {
		t.Errorf("model %s", spec.Cfg.Name)
	}
}

func TestRequestValidation(t *testing.T) {
	if _, _, err := Plan(Request{ModelName: "nope", DeviceNames: []string{"V100"}, DeviceNumbers: []int{1}}); err == nil {
		t.Error("expected unknown-model error")
	}
	if _, _, err := Plan(Request{ModelName: "opt-13b", DeviceNames: []string{"V100"}, DeviceNumbers: []int{1}, Interconnect: "carrier-pigeon"}); err == nil {
		t.Error("expected interconnect error")
	}
	if _, _, err := Plan(Request{ClusterID: 99}); err == nil {
		t.Error("expected cluster error")
	}
}

func TestStrategyRoundTrip(t *testing.T) {
	spec, res, err := Plan(Request{ClusterID: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "strategy.json")
	if err := SaveStrategy(path, Strategy{Request: Request{ClusterID: 1}, Plan: res.Plan}); err != nil {
		t.Fatal(err)
	}
	s, err := LoadStrategy(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Plan.Validate(spec); err != nil {
		t.Fatalf("loaded plan invalid: %v", err)
	}
	if s.Plan.PrefillMB != res.Plan.PrefillMB {
		t.Error("plan fields lost in round trip")
	}
	if _, err := LoadStrategy(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("expected read error")
	}
}

func TestOmegaFileRoundTrip(t *testing.T) {
	o := indicator.Synthetic(model.OPT13B, []int{3, 4, 8, 16}, 1)
	path := filepath.Join(t.TempDir(), "omega.json")
	if err := SaveOmega(path, o); err != nil {
		t.Fatal(err)
	}
	back, err := LoadOmega(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Layers() != o.Layers() {
		t.Fatalf("layers %d vs %d", back.Layers(), o.Layers())
	}
	a, _ := o.At(3, 4)
	b, _ := back.At(3, 4)
	if a != b {
		t.Error("omega values lost in round trip")
	}
	// Planning with a loaded omega file must work end to end.
	_, res, err := Plan(Request{ClusterID: 1, OmegaFile: path})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("no plan")
	}
}

func TestMethodsAllWork(t *testing.T) {
	for _, m := range []assigner.Method{assigner.MethodDP, assigner.MethodHeuristic, assigner.MethodAdabits} {
		_, res, err := Plan(Request{ClusterID: 1, Method: m})
		if err != nil {
			t.Fatalf("method %v: %v", m, err)
		}
		if res.Plan == nil {
			t.Fatalf("method %v: nil plan", m)
		}
	}
}
