// Package core is the high-level LLM-PQ API: one call to plan a serving
// strategy (phase-aware partition + adaptive quantization + micro-batch
// sizing, paper §4) and one call to serve it (distributed pipeline runtime,
// §3/§5). The cmd/ binaries and examples/ programs are thin wrappers over
// this package; the pieces live in internal/assigner, internal/runtime and
// friends.
package core

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/assigner"
	"repro/internal/hardware"
	"repro/internal/indicator"
	"repro/internal/model"
	"repro/internal/quality"
	"repro/internal/runtime"
)

// Request describes one planning problem — the inputs of the paper's
// llmpq-algo entry point.
type Request struct {
	ModelName     string   // e.g. "opt-30b"
	DeviceNames   []string // e.g. {"T4", "V100"}
	DeviceNumbers []int    // e.g. {3, 1}
	// ClusterID selects a Table 3 cluster instead of DeviceNames/Numbers
	// when > 0.
	ClusterID   int
	GlobalBatch int
	PromptLen   int     // --s
	Generate    int     // --n
	Theta       float64 // quality scalar θ
	Group       int     // layer grouping (0/1 = none)
	Method      assigner.Method
	TimeLimit   time.Duration
	// OmegaSeed seeds the synthetic sensitivity table; OmegaFile, when
	// set, loads ω from JSON instead (the paper's --omega_file).
	OmegaSeed int64
	OmegaFile string
	Bits      []int
	// KVBits selects the KV-cache precision (0/16 = FP16, 8 = INT8 KV).
	KVBits int
	// Interconnect for ad-hoc clusters ("nvlink", "eth800", "eth100").
	Interconnect string
	// Parallelism bounds the planner's worker pool (0 = all CPUs). A
	// runtime knob, not part of the planning problem — excluded from
	// strategy files so serial and parallel runs serialize identically.
	Parallelism int `json:"-"`
}

func (r *Request) defaults() {
	if len(r.Bits) == 0 {
		r.Bits = []int{3, 4, 8, 16}
	}
	if r.OmegaSeed == 0 {
		r.OmegaSeed = 42
	}
	if r.GlobalBatch == 0 {
		r.GlobalBatch = 32
	}
	if r.PromptLen == 0 {
		r.PromptLen = 512
	}
	if r.Generate == 0 {
		r.Generate = 100
	}
	if r.Theta == 0 {
		r.Theta = 1
	}
	if r.Interconnect == "" {
		r.Interconnect = "eth800"
	}
}

func (r *Request) link() (hardware.Link, error) {
	switch r.Interconnect {
	case "nvlink":
		return hardware.NVLink, nil
	case "eth800":
		return hardware.Eth800Gbps, nil
	case "eth100":
		return hardware.Eth100Gbps, nil
	default:
		return hardware.Link{}, fmt.Errorf("core: unknown interconnect %q (nvlink|eth800|eth100)", r.Interconnect)
	}
}

// BuildSpec resolves a Request into an assigner.Spec.
func BuildSpec(r Request) (*assigner.Spec, error) {
	r.defaults()
	var cl hardware.Cluster
	var err error
	if r.ClusterID > 0 {
		cl, err = hardware.ClusterByID(r.ClusterID)
		if err != nil {
			return nil, err
		}
		if r.ModelName == "" {
			r.ModelName = cl.ModelName
		}
	} else {
		link, lerr := r.link()
		if lerr != nil {
			return nil, lerr
		}
		cl, err = hardware.NewCluster(r.DeviceNames, r.DeviceNumbers, link, r.ModelName)
		if err != nil {
			return nil, err
		}
	}
	cfg, err := model.ByName(r.ModelName)
	if err != nil {
		return nil, err
	}
	var omega indicator.Omega
	if r.OmegaFile != "" {
		omega, err = LoadOmega(r.OmegaFile)
		if err != nil {
			return nil, err
		}
	} else {
		omega = indicator.Synthetic(cfg, r.Bits, r.OmegaSeed)
	}
	omega, err = normalize(omega)
	if err != nil {
		return nil, err
	}
	group := r.Group
	if group <= 1 {
		group = 1
	}
	return &assigner.Spec{
		Cfg:         cfg,
		Cluster:     cl,
		Work:        assigner.Workload{GlobalBatch: r.GlobalBatch, Prompt: r.PromptLen, Generate: r.Generate},
		Bits:        r.Bits,
		Omega:       assigner.GroupOmega(omega, group),
		Theta:       r.Theta,
		Group:       group,
		Method:      r.Method,
		TimeLimit:   r.TimeLimit,
		KVBits:      r.KVBits,
		Parallelism: r.Parallelism,
	}, nil
}

// normalize rescales ω so uniform INT4 totals 1 (θ's reference scale).
func normalize(o indicator.Omega) (indicator.Omega, error) {
	var total float64
	for l := 0; l < o.Layers(); l++ {
		w, err := o.At(l, 4)
		if err != nil {
			return indicator.Omega{}, err
		}
		total += w
	}
	if total <= 0 {
		return indicator.Omega{}, fmt.Errorf("core: degenerate omega")
	}
	out := indicator.Omega{Bits: o.Bits}
	for l := 0; l < o.Layers(); l++ {
		row := make([]float64, len(o.Bits))
		for bi := range o.Bits {
			row[bi] = o.Values[l][bi] / total
		}
		out.Values = append(out.Values, row)
	}
	return out, nil
}

// Plan runs the LLM-PQ assigner on a request.
func Plan(r Request) (*assigner.Spec, *assigner.Result, error) {
	spec, err := BuildSpec(r)
	if err != nil {
		return nil, nil, err
	}
	res, err := assigner.Optimize(spec, nil)
	if err != nil {
		return nil, nil, err
	}
	return spec, res, nil
}

// Serve executes a plan on the simulated distributed runtime.
func Serve(spec *assigner.Spec, plan *assigner.Plan) (runtime.Stats, error) {
	eng, err := runtime.NewEngine(spec, plan, nil)
	if err != nil {
		return runtime.Stats{}, err
	}
	return eng.Run()
}

// PredictPPL scores a plan's quality on the calibrated scorer.
func PredictPPL(spec *assigner.Spec, plan *assigner.Plan) (float64, error) {
	omega := indicator.Synthetic(spec.Cfg, []int{3, 4, 8, 16}, 42)
	scorer, err := quality.NewScorer(spec.Cfg.Name, omega)
	if err != nil {
		return 0, err
	}
	return scorer.PPL(plan.LayerBits(spec.Cfg.Layers))
}

// Strategy is the serialized execution plan the llmpq-algo binary emits and
// llmpq-dist consumes (the paper's strategy file).
type Strategy struct {
	Request Request        `json:"request"`
	Plan    *assigner.Plan `json:"plan"`
}

// SaveStrategy writes a strategy file.
func SaveStrategy(path string, s Strategy) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadStrategy reads a strategy file.
func LoadStrategy(path string) (Strategy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Strategy{}, err
	}
	var s Strategy
	if err := json.Unmarshal(data, &s); err != nil {
		return Strategy{}, fmt.Errorf("core: parse %s: %w", path, err)
	}
	if s.Plan == nil {
		return Strategy{}, fmt.Errorf("core: strategy %s has no plan", path)
	}
	return s, nil
}

// omegaFile is the JSON schema of --omega_file.
type omegaFile struct {
	Bits   []int       `json:"bits"`
	Values [][]float64 `json:"values"`
}

// LoadOmega reads a sensitivity table from JSON.
func LoadOmega(path string) (indicator.Omega, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return indicator.Omega{}, err
	}
	var f omegaFile
	if err := json.Unmarshal(data, &f); err != nil {
		return indicator.Omega{}, fmt.Errorf("core: parse omega %s: %w", path, err)
	}
	if len(f.Bits) == 0 || len(f.Values) == 0 {
		return indicator.Omega{}, fmt.Errorf("core: omega file %s empty", path)
	}
	for i, row := range f.Values {
		if len(row) != len(f.Bits) {
			return indicator.Omega{}, fmt.Errorf("core: omega row %d has %d entries for %d bits", i, len(row), len(f.Bits))
		}
	}
	return indicator.Omega{Bits: f.Bits, Values: f.Values}, nil
}

// SaveOmega writes a sensitivity table to JSON.
func SaveOmega(path string, o indicator.Omega) error {
	data, err := json.MarshalIndent(omegaFile{Bits: o.Bits, Values: o.Values}, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
