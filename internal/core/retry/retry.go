// Package retry provides deterministic bounded retry with jittered
// exponential backoff. Unlike the usual wall-clock retry helpers, every
// delay is a pure function of (policy, seed, attempt): the jitter comes
// from an explicitly seeded source, never time.Now or the global rand
// (the seededrand analyzer enforces this repo-wide), so simulated-time
// consumers — the online simulator's transient KV-allocation path —
// replay byte-for-byte, and real-time consumers inject their own sleep.
package retry

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// Policy bounds one retry loop.
type Policy struct {
	// MaxAttempts is the total number of tries including the first
	// (>= 1; 1 means no retries).
	MaxAttempts int
	// BaseDelaySec is the backoff before the second attempt.
	BaseDelaySec float64
	// Factor multiplies the delay each further attempt (>= 1).
	Factor float64
	// MaxDelaySec caps a single delay (0 = uncapped).
	MaxDelaySec float64
	// JitterFrac spreads each delay uniformly over
	// [delay·(1−J), delay·(1+J)); must sit in [0, 1).
	JitterFrac float64
}

// Default is the policy used when a consumer enables retries without
// configuring them: 4 attempts, 10 ms base, doubling, 200 ms cap, ±20%.
func Default() Policy {
	return Policy{MaxAttempts: 4, BaseDelaySec: 0.010, Factor: 2, MaxDelaySec: 0.200, JitterFrac: 0.2}
}

// Validate checks the policy.
func (p Policy) Validate() error {
	if p.MaxAttempts < 1 {
		return fmt.Errorf("retry: MaxAttempts %d < 1", p.MaxAttempts)
	}
	if p.BaseDelaySec < 0 {
		return fmt.Errorf("retry: negative BaseDelaySec %g", p.BaseDelaySec)
	}
	if p.Factor < 1 {
		return fmt.Errorf("retry: Factor %g < 1", p.Factor)
	}
	if p.MaxDelaySec < 0 {
		return fmt.Errorf("retry: negative MaxDelaySec %g", p.MaxDelaySec)
	}
	if p.JitterFrac < 0 || p.JitterFrac >= 1 {
		return fmt.Errorf("retry: JitterFrac %g outside [0,1)", p.JitterFrac)
	}
	return nil
}

// DelaySec returns the backoff after the attempt-th failure (attempt is
// 1-based; attempt 1 is the delay between the first and second tries).
// The value is a pure function of (policy, seed, attempt): the jitter
// rng is re-derived per call, so delays do not depend on how many other
// retry loops share the seed or in what order they run.
func (p Policy) DelaySec(seed int64, attempt int) float64 {
	if attempt < 1 {
		return 0
	}
	d := p.BaseDelaySec
	for i := 1; i < attempt; i++ {
		d *= p.Factor
		if p.MaxDelaySec > 0 && d > p.MaxDelaySec {
			d = p.MaxDelaySec
			break
		}
	}
	if p.MaxDelaySec > 0 && d > p.MaxDelaySec {
		d = p.MaxDelaySec
	}
	if p.JitterFrac > 0 {
		// Mix attempt into the seed (odd LCG-style constant) so each
		// attempt draws an independent, reproducible jitter.
		rng := rand.New(rand.NewSource(seed ^ (int64(attempt) * 0x5851f42d4c957f2d)))
		d *= 1 - p.JitterFrac + 2*p.JitterFrac*rng.Float64()
	}
	return d
}

// Delays returns all MaxAttempts−1 inter-attempt delays for one loop.
func (p Policy) Delays(seed int64) []float64 {
	if p.MaxAttempts <= 1 {
		return nil
	}
	out := make([]float64, p.MaxAttempts-1)
	for i := range out {
		out[i] = p.DelaySec(seed, i+1)
	}
	return out
}

// Do runs op up to MaxAttempts times, calling sleep with the policy's
// delay between attempts. op receives the 1-based attempt number; a nil
// return stops the loop. sleep is injected so simulated-time callers
// advance a virtual clock and real-time callers block — Do itself never
// touches the wall clock. The last error is returned after the attempts
// are exhausted.
func (p Policy) Do(seed int64, op func(attempt int) error, sleep func(delaySec float64)) error {
	if err := p.Validate(); err != nil {
		return err
	}
	var last error
	for attempt := 1; attempt <= p.MaxAttempts; attempt++ {
		if last = op(attempt); last == nil {
			return nil
		}
		if attempt < p.MaxAttempts && sleep != nil {
			sleep(p.DelaySec(seed, attempt))
		}
	}
	return last
}

// DoContext is Do with cancellation: the loop stops as soon as ctx is
// done — before an attempt, or mid-backoff when sleep honours the
// context (WallSleep does). Delays stay the pure (policy, seed, attempt)
// function of Do, so the attempt count up to any cancellation point is
// deterministic. On cancellation the context error is returned, wrapped
// over the last op error (errors.Is finds either).
func (p Policy) DoContext(ctx context.Context, seed int64, op func(attempt int) error, sleep func(ctx context.Context, delaySec float64) error) error {
	if err := p.Validate(); err != nil {
		return err
	}
	var last error
	for attempt := 1; attempt <= p.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return canceled(err, last)
		}
		if last = op(attempt); last == nil {
			return nil
		}
		if attempt < p.MaxAttempts && sleep != nil {
			if err := sleep(ctx, p.DelaySec(seed, attempt)); err != nil {
				return canceled(err, last)
			}
		}
	}
	return last
}

// canceled folds the context error over the last attempt's error.
func canceled(ctxErr, last error) error {
	if last == nil {
		return ctxErr
	}
	return fmt.Errorf("%w (last attempt: %w)", ctxErr, last)
}

// WallSleep blocks for delaySec of wall-clock time or until ctx is done,
// whichever comes first, returning the context error when interrupted.
// It is the real-time sleep injected into DoContext by consumers whose
// backoff must yield to an external deadline — the distributed control
// plane's reconnect loop aborting when the coordinator's round deadline
// or its lease fires.
func WallSleep(ctx context.Context, delaySec float64) error {
	if delaySec <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(time.Duration(delaySec * float64(time.Second)))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
