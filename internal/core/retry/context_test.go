package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestDoContextDeterministicAttempts: with a never-cancelled context,
// DoContext behaves exactly like Do — same attempt count, same delays.
func TestDoContextDeterministicAttempts(t *testing.T) {
	p := Policy{MaxAttempts: 4, BaseDelaySec: 0.01, Factor: 2, JitterFrac: 0.2}
	var slept []float64
	calls := 0
	err := p.DoContext(context.Background(), 7, func(attempt int) error {
		calls++
		if attempt == 3 {
			return nil
		}
		return fmt.Errorf("attempt %d", attempt)
	}, func(_ context.Context, d float64) error {
		slept = append(slept, d)
		return nil
	})
	if err != nil || calls != 3 || len(slept) != 2 {
		t.Fatalf("err %v calls %d sleeps %d, want nil/3/2", err, calls, len(slept))
	}
	want := p.Delays(7)
	if slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("sleeps %v, want prefix of %v", slept, want)
	}
}

// TestDoContextCancelMidBackoff: cancelling during the backoff sleep
// stops the loop with a deterministic attempt count — the sleep's
// context error aborts the loop, and no further attempt runs.
func TestDoContextCancelMidBackoff(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelaySec: 0.01, Factor: 2}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	opErr := errors.New("transient")
	err := p.DoContext(ctx, 1, func(int) error {
		calls++
		return opErr
	}, func(ctx context.Context, d float64) error {
		if calls == 2 {
			cancel() // the lease fired while we were backing off
		}
		return WallSleep(ctx, d)
	})
	if calls != 2 {
		t.Fatalf("calls %d, want exactly 2 (cancelled in backoff after attempt 2)", calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
	if !errors.Is(err, opErr) {
		t.Fatalf("want last op error preserved in chain, got %v", err)
	}
}

// TestDoContextPreCancelled: a context already done runs zero attempts.
func TestDoContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Default().DoContext(ctx, 0, func(int) error { calls++; return nil }, nil)
	if calls != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("calls %d err %v, want 0 attempts and context.Canceled", calls, err)
	}
}

// TestWallSleepInterruptible: a 10-second sleep returns promptly once the
// context is cancelled — the backoff is interruptible, not merely bounded.
func TestWallSleepInterruptible(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := WallSleep(ctx, 10)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("sleep was not interrupted (took %v)", elapsed)
	}
}

// TestWallSleepCompletes: an uninterrupted short sleep returns nil after
// roughly the requested delay; non-positive delays return immediately.
func TestWallSleepCompletes(t *testing.T) {
	if err := WallSleep(context.Background(), 0.005); err != nil {
		t.Fatalf("uninterrupted sleep: %v", err)
	}
	if err := WallSleep(context.Background(), 0); err != nil {
		t.Fatalf("zero delay: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := WallSleep(ctx, -1); !errors.Is(err, context.Canceled) {
		t.Fatalf("non-positive delay must still report a dead context, got %v", err)
	}
}

// TestDoContextValidates: an invalid policy fails before any attempt.
func TestDoContextValidates(t *testing.T) {
	err := Policy{MaxAttempts: 0}.DoContext(context.Background(), 0, func(int) error { return nil }, nil)
	if err == nil {
		t.Fatal("invalid policy must fail DoContext")
	}
}
