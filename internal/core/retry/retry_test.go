package retry

import (
	"fmt"
	"strings"
	"testing"
)

func TestPolicyValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
	cases := []struct {
		p    Policy
		want string
	}{
		{Policy{MaxAttempts: 0}, "MaxAttempts"},
		{Policy{MaxAttempts: 2, BaseDelaySec: -1, Factor: 2}, "BaseDelaySec"},
		{Policy{MaxAttempts: 2, Factor: 0.5}, "Factor"},
		{Policy{MaxAttempts: 2, Factor: 2, MaxDelaySec: -1}, "MaxDelaySec"},
		{Policy{MaxAttempts: 2, Factor: 2, JitterFrac: 1}, "JitterFrac"},
		{Policy{MaxAttempts: 2, Factor: 2, JitterFrac: -0.1}, "JitterFrac"},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Validate(%+v) = %v, want substring %q", tc.p, err, tc.want)
		}
	}
}

func TestDelayDeterministicAndBounded(t *testing.T) {
	p := Default()
	for attempt := 1; attempt < p.MaxAttempts; attempt++ {
		a := p.DelaySec(99, attempt)
		b := p.DelaySec(99, attempt)
		if a != b {
			t.Fatalf("attempt %d: delay not deterministic (%g vs %g)", attempt, a, b)
		}
		// Base grows as BaseDelaySec·Factor^(attempt−1), capped; jitter
		// spreads ±20%.
		base := p.BaseDelaySec
		for i := 1; i < attempt; i++ {
			base *= p.Factor
		}
		if base > p.MaxDelaySec {
			base = p.MaxDelaySec
		}
		lo, hi := base*(1-p.JitterFrac), base*(1+p.JitterFrac)
		if a < lo || a >= hi {
			t.Errorf("attempt %d: delay %g outside [%g, %g)", attempt, a, lo, hi)
		}
	}
	// Different seeds draw different jitter (overwhelmingly likely).
	if p.DelaySec(1, 1) == p.DelaySec(2, 1) {
		t.Error("seeds 1 and 2 drew identical jitter")
	}
	if got := p.DelaySec(1, 0); got != 0 {
		t.Errorf("attempt 0 delay %g, want 0", got)
	}
}

func TestDelayCapAndNoJitter(t *testing.T) {
	p := Policy{MaxAttempts: 10, BaseDelaySec: 1, Factor: 10, MaxDelaySec: 5}
	if got := p.DelaySec(0, 5); got != 5 {
		t.Errorf("capped delay %g, want 5", got)
	}
	if got := p.DelaySec(0, 1); got != 1 {
		t.Errorf("uncapped first delay %g, want 1", got)
	}
	d := Policy{MaxAttempts: 3, BaseDelaySec: 2, Factor: 3}.Delays(0)
	if len(d) != 2 || d[0] != 2 || d[1] != 6 {
		t.Errorf("Delays = %v, want [2 6]", d)
	}
	if (Policy{MaxAttempts: 1, Factor: 1}).Delays(0) != nil {
		t.Error("single-attempt policy has no delays")
	}
}

func TestDoRetriesThenSucceeds(t *testing.T) {
	p := Default()
	var slept []float64
	calls := 0
	err := p.Do(7, func(attempt int) error {
		calls++
		if attempt != calls {
			t.Fatalf("attempt %d on call %d", attempt, calls)
		}
		if attempt < 3 {
			return fmt.Errorf("transient %d", attempt)
		}
		return nil
	}, func(d float64) { slept = append(slept, d) })
	if err != nil {
		t.Fatalf("Do failed: %v", err)
	}
	if calls != 3 || len(slept) != 2 {
		t.Fatalf("calls %d sleeps %d, want 3 and 2", calls, len(slept))
	}
	want := p.Delays(7)
	if slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("sleeps %v, want prefix of %v", slept, want)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseDelaySec: 0.001, Factor: 2}
	calls := 0
	err := p.Do(0, func(attempt int) error {
		calls++
		return fmt.Errorf("always fails (attempt %d)", attempt)
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "attempt 3") {
		t.Fatalf("want last error after exhaustion, got %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls %d, want 3", calls)
	}
}

func TestDoValidatesPolicy(t *testing.T) {
	err := Policy{MaxAttempts: 0}.Do(0, func(int) error { return nil }, nil)
	if err == nil || !strings.Contains(err.Error(), "MaxAttempts") {
		t.Fatalf("invalid policy must fail Do, got %v", err)
	}
}
