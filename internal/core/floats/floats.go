// Package floats holds the epsilon comparison helpers the floateq analyzer
// (internal/analysis) requires wherever non-test code would otherwise
// compare floating-point values with == or !=. It is a leaf package —
// anything from internal/quant up to internal/core may import it.
package floats

import "math"

// DefaultTol is the combined absolute/relative tolerance used by
// AlmostEqual: loose enough to absorb the rounding of cost-model sums,
// tight enough to distinguish any two distinct plan objectives.
const DefaultTol = 1e-9

// AlmostEqual reports a ≈ b under DefaultTol.
func AlmostEqual(a, b float64) bool { return EqTol(a, b, DefaultTol) }

// EqTol reports |a−b| ≤ tol·max(1, |a|, |b|): absolute near zero,
// relative for large magnitudes. Infinities compare equal only to
// themselves; NaN compares equal to nothing.
func EqTol(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b //llmpq:ignore floateq — infinities are exact
	}
	scale := 1.0
	if aa := math.Abs(a); aa > scale {
		scale = aa
	}
	if ab := math.Abs(b); ab > scale {
		scale = ab
	}
	return math.Abs(a-b) <= tol*scale
}

// Zero reports x ≈ 0 under the absolute tolerance tol.
func Zero(x, tol float64) bool { return math.Abs(x) <= tol }
