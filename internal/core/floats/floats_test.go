package floats

import (
	"math"
	"testing"
)

func TestEqTol(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 1e-9, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1 + 1e-6, 1e-9, false},
		{1e12, 1e12 * (1 + 1e-12), 1e-9, true}, // relative regime
		{0, 1e-12, 1e-9, true},                 // absolute regime near zero
		{0, 1e-6, 1e-9, false},
		{math.Inf(1), math.Inf(1), 1e-9, true},
		{math.Inf(1), math.Inf(-1), 1e-9, false},
		{math.Inf(1), 1e300, 1e-9, false},
		{math.NaN(), math.NaN(), 1e-9, false},
		{math.NaN(), 1, 1e-9, false},
	}
	for _, c := range cases {
		if got := EqTol(c.a, c.b, c.tol); got != c.want {
			t.Errorf("EqTol(%g, %g, %g) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestAlmostEqualAndZero(t *testing.T) {
	if !AlmostEqual(0.1+0.2, 0.3) {
		t.Error("AlmostEqual should absorb float rounding")
	}
	if AlmostEqual(0.3, 0.300001) {
		t.Error("AlmostEqual too loose")
	}
	if !Zero(1e-12, 1e-9) || Zero(1e-3, 1e-9) {
		t.Error("Zero tolerance misbehaves")
	}
}
