package experiments

import (
	"math"
	"math/rand"

	"repro/internal/costmodel"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/profiler"
)

// Fig7Result summarizes cost-model fidelity.
type Fig7Result struct {
	// MemErr is the relative error of the analytical weight-memory model
	// against exact parameter counts, per model.
	MemErr map[string]float64
	// LatErr is the mean relative error of the fitted latency model on 50
	// unseen workloads, per device.
	LatErr map[string]float64
}

// Fig7 reproduces the cost-model fidelity evaluation: the memory model is
// checked against exact parameter counting (and, for the reference
// configs, against a real instantiated network); the latency model is
// fitted on the profiling grid and evaluated on 50 unseen workloads per
// device (batch 3/5/7, past length 384/768, random precisions) — the
// paper's protocol.
func Fig7() (*Table, *Fig7Result, error) {
	res := &Fig7Result{MemErr: map[string]float64{}, LatErr: map[string]float64{}}
	t := &Table{
		ID: "fig7", Title: "Cost model fidelity: memory and latency",
		Header: []string{"Target", "Kind", "Mean rel. error"},
	}

	// Memory model vs exact parameter accounting for the paper's models.
	for _, name := range []string{"bloom-560m", "bloom-1b7", "opt-13b", "opt-30b", "opt-66b"} {
		cfg, err := model.ByName(name)
		if err != nil {
			return nil, nil, err
		}
		// Predicted FP16 weight bytes: embedding + L layers (+ LM head).
		pred := cfg.EmbedBytes() + cfg.LMHeadBytes()
		for i := 0; i < cfg.Layers; i++ {
			pred += cfg.LayerWeightBytes(16)
		}
		exact := float64(cfg.TotalParams()) * 2
		e := math.Abs(pred-exact) / exact
		res.MemErr[name] = e
		t.Rows = append(t.Rows, []string{name, "memory(weights)", f(e*100, 2) + "%"})
	}

	// Memory model vs a real instantiated reference network.
	refCfg := nn.TinyOPT
	m, err := nn.New(refCfg, OmegaSeed)
	if err != nil {
		return nil, nil, err
	}
	var actualParams int64
	actualParams += int64(refCfg.Vocab+refCfg.MaxSeq) * int64(refCfg.Hidden)       // embed + pos
	actualParams += 2 * int64(refCfg.Hidden)                                       // final LN
	perLayer := int64(4*refCfg.Hidden*refCfg.Hidden + 2*refCfg.Hidden*refCfg.FFN + // linear weights
		4*refCfg.Hidden + refCfg.FFN + refCfg.Hidden + 4*refCfg.Hidden) // biases + LNs
	actualParams += int64(len(m.Layers)) * perLayer
	predCfg := model.Config{Name: "ref", Family: model.OPT, Hidden: refCfg.Hidden, FFN: refCfg.FFN,
		Layers: refCfg.Layers, Heads: refCfg.Heads, VocabSize: refCfg.Vocab, MaxPosEmb: refCfg.MaxSeq, TiedEmbed: true}
	pred := predCfg.EmbedBytes()
	for i := 0; i < predCfg.Layers; i++ {
		pred += predCfg.LayerWeightBytes(16)
	}
	eRef := math.Abs(pred-float64(actualParams)*2) / (float64(actualParams) * 2)
	res.MemErr["reference-net"] = eRef
	t.Rows = append(t.Rows, []string{"reference-net", "memory(weights)", f(eRef*100, 2) + "%"})

	// Latency model on unseen workloads.
	rng := rand.New(rand.NewSource(OmegaSeed))
	for _, gpu := range []hardware.GPU{hardware.T4, hardware.P100, hardware.V100, hardware.A100} {
		cfg := model.OPT13B
		pts, err := profiler.ProfileGrid(gpu, cfg, OmegaSeed)
		if err != nil {
			return nil, nil, err
		}
		lm, err := costmodel.FitLatency(gpu, cfg, pts)
		if err != nil {
			return nil, nil, err
		}
		var unseen []profiler.Point
		batches := []int{3, 5, 7}
		pasts := []int{384, 768}
		for i := 0; i < 50; i++ {
			bits := Bits[rng.Intn(len(Bits))]
			b := batches[rng.Intn(len(batches))]
			var w profiler.Workload
			if i%2 == 0 {
				w = profiler.Workload{Batch: b, Prompt: 128 + rng.Intn(512), Prefill: true, Bits: bits}
			} else {
				w = profiler.Workload{Batch: b, Context: pasts[rng.Intn(2)], Bits: bits}
			}
			tm, err := profiler.Sample(gpu, cfg, w, rng)
			if err != nil {
				return nil, nil, err
			}
			unseen = append(unseen, profiler.Point{W: w, Time: tm})
		}
		mre, err := lm.MeanRelativeError(unseen)
		if err != nil {
			return nil, nil, err
		}
		res.LatErr[gpu.Name] = mre
		t.Rows = append(t.Rows, []string{gpu.Name, "latency", f(mre*100, 2) + "%"})
	}
	t.Notes = append(t.Notes,
		"paper: memory error almost negligible, latency error <6% — same regime here",
		"latency evaluated on 50 unseen (precision, batch, length) workloads per device")
	return t, res, nil
}
