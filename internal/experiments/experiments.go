// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the simulated substrate. Each runner returns a Table
// (renderable as aligned text) plus typed results that tests assert the
// paper's qualitative shape on: who wins, by roughly what factor, where
// the crossovers fall (DESIGN.md §6).
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/assigner"
	"repro/internal/baselines"
	"repro/internal/hardware"
	"repro/internal/indicator"
	"repro/internal/model"
	"repro/internal/quality"
	"repro/internal/runtime"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string // "table4", "fig7", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Bits are the candidate precisions used throughout the evaluation.
var Bits = []int{3, 4, 8, 16}

// OmegaSeed fixes the synthetic sensitivity tables.
const OmegaSeed = 42

// Setup is one cluster's solver configuration (Table 9).
type Setup struct {
	Cluster int
	Group   int
	Method  assigner.Method
	Theta   float64
}

// SolverSetups reproduces Table 9: θ and solver choice per cluster. The
// paper runs Gurobi with group=1 where tractable and the Algorithm 2
// heuristic on clusters 4, 5, 10, 11; our exact structured DP plays the
// group=1 solver's role (DESIGN.md §3).
var SolverSetups = map[int]Setup{
	1:  {Cluster: 1, Group: 1, Method: assigner.MethodDP, Theta: 1},
	2:  {Cluster: 2, Group: 1, Method: assigner.MethodDP, Theta: 1},
	3:  {Cluster: 3, Group: 1, Method: assigner.MethodDP, Theta: 1},
	4:  {Cluster: 4, Group: 1, Method: assigner.MethodHeuristic, Theta: 1000},
	5:  {Cluster: 5, Group: 1, Method: assigner.MethodHeuristic, Theta: 50},
	6:  {Cluster: 6, Group: 1, Method: assigner.MethodDP, Theta: 100},
	7:  {Cluster: 7, Group: 2, Method: assigner.MethodDP, Theta: 10},
	8:  {Cluster: 8, Group: 2, Method: assigner.MethodDP, Theta: 10},
	9:  {Cluster: 9, Group: 1, Method: assigner.MethodDP, Theta: 1},
	10: {Cluster: 10, Group: 1, Method: assigner.MethodHeuristic, Theta: 1},
	11: {Cluster: 11, Group: 2, Method: assigner.MethodHeuristic, Theta: 10},
}

// DefaultWork is the paper's default workload: batch 32, prompts padded to
// 512 tokens, 100 generated tokens per request.
var DefaultWork = assigner.Workload{GlobalBatch: 32, Prompt: 512, Generate: 100}

// ShortWork is the §6.6 variant: prompt 128, generation 200.
var ShortWork = assigner.Workload{GlobalBatch: 32, Prompt: 128, Generate: 200}

// SpecFor builds the LLM-PQ spec for a Table 3 cluster.
func SpecFor(clusterID int, work assigner.Workload) (*assigner.Spec, error) {
	cl, err := hardware.ClusterByID(clusterID)
	if err != nil {
		return nil, err
	}
	cfg, err := model.ByName(cl.ModelName)
	if err != nil {
		return nil, err
	}
	setup, ok := SolverSetups[clusterID]
	if !ok {
		return nil, fmt.Errorf("experiments: no solver setup for cluster %d", clusterID)
	}
	// Normalize ω so a uniform INT4 model totals 1 — this puts the paper's
	// θ values (Table 9) on the scale they were tuned for.
	omega, err := normalizeOmega(indicator.Synthetic(cfg, Bits, OmegaSeed))
	if err != nil {
		return nil, err
	}
	s := &assigner.Spec{
		Cfg:     cfg,
		Cluster: cl,
		Work:    work,
		Bits:    Bits,
		Omega:   assigner.GroupOmega(omega, setup.Group),
		Theta:   setup.Theta,
		Group:   setup.Group,
		Method:  setup.Method,
		// Keep the enumeration light for the bigger clusters.
		PrefillMicroBatches: []int{1, 2, 4, 8},
	}
	return s, nil
}

// baselineSpec builds the ungrouped spec baselines plan over.
func baselineSpec(clusterID int, work assigner.Workload) (*assigner.Spec, error) {
	s, err := SpecFor(clusterID, work)
	if err != nil {
		return nil, err
	}
	s.Group = 1
	omega, err := normalizeOmega(indicator.Synthetic(s.Cfg, Bits, OmegaSeed))
	if err != nil {
		return nil, err
	}
	s.Omega = omega
	return s, nil
}

// SchemeResult is one row of a serving comparison.
type SchemeResult struct {
	Scheme     string
	PPL        float64
	LatencySec float64
	Throughput float64
	OOM        bool
	SolveTime  time.Duration
	Plan       *assigner.Plan
}

// scorerFor builds the calibrated PPL scorer over per-layer ω.
func scorerFor(cfg model.Config) (*quality.Scorer, error) {
	return quality.NewScorer(cfg.Name, indicator.Synthetic(cfg, Bits, OmegaSeed))
}

// execute runs a plan on the runtime engine and scores its quality.
func execute(s *assigner.Spec, plan *assigner.Plan, scheme string) (SchemeResult, error) {
	eng, err := runtime.NewEngine(s, plan, nil)
	if err != nil {
		return SchemeResult{}, err
	}
	st, err := eng.Run()
	if err != nil {
		if _, ok := err.(*runtime.OOMError); ok {
			return SchemeResult{Scheme: scheme, OOM: true}, nil
		}
		return SchemeResult{}, err
	}
	scorer, err := scorerFor(s.Cfg)
	if err != nil {
		return SchemeResult{}, err
	}
	ppl, err := scorer.PPL(plan.LayerBits(s.Cfg.Layers))
	if err != nil {
		return SchemeResult{}, err
	}
	return SchemeResult{
		Scheme:     scheme,
		PPL:        ppl,
		LatencySec: st.LatencySec,
		Throughput: st.Throughput,
		Plan:       plan,
	}, nil
}

// RunLLMPQ plans with the cluster's Table 9 setup and executes.
func RunLLMPQ(clusterID int, work assigner.Workload) (SchemeResult, error) {
	s, err := SpecFor(clusterID, work)
	if err != nil {
		return SchemeResult{}, err
	}
	res, err := assigner.Optimize(s, nil)
	if err != nil {
		return SchemeResult{}, err
	}
	out, err := execute(s, res.Plan, "LLM-PQ")
	if err != nil {
		return SchemeResult{}, err
	}
	out.SolveTime = res.Solve
	return out, nil
}

// RunPipeEdge plans and executes the PipeEdge baseline.
func RunPipeEdge(clusterID int, work assigner.Workload) (SchemeResult, error) {
	s, err := baselineSpec(clusterID, work)
	if err != nil {
		return SchemeResult{}, err
	}
	plan, _, err := baselines.PipeEdge(s, nil)
	if err == baselines.ErrOOM {
		return SchemeResult{Scheme: "PipeEdge", OOM: true}, nil
	}
	if err != nil {
		return SchemeResult{}, err
	}
	return execute(s, plan, "PipeEdge")
}

// RunUniform plans and executes the Uniform baseline.
func RunUniform(clusterID int, work assigner.Workload) (SchemeResult, error) {
	s, err := baselineSpec(clusterID, work)
	if err != nil {
		return SchemeResult{}, err
	}
	plan, _, err := baselines.Uniform(s, nil)
	if err == baselines.ErrOOM {
		return SchemeResult{Scheme: "Uniform", OOM: true}, nil
	}
	if err != nil {
		return SchemeResult{}, err
	}
	return execute(s, plan, "Uniform")
}

// RunFlexGen estimates the offloading baseline (OPT models only, like the
// paper: "FlexGen is specialized for OPT models").
func RunFlexGen(clusterID int, work assigner.Workload, int8 bool) (SchemeResult, error) {
	s, err := baselineSpec(clusterID, work)
	if err != nil {
		return SchemeResult{}, err
	}
	name := "FlexGen"
	if int8 {
		name = "FlexGen-int8"
	}
	if s.Cfg.Family != model.OPT {
		return SchemeResult{Scheme: name, OOM: true}, nil
	}
	st, err := baselines.FlexGen(s, nil, int8)
	if err != nil {
		return SchemeResult{}, err
	}
	scorer, err := scorerFor(s.Cfg)
	if err != nil {
		return SchemeResult{}, err
	}
	ppl, err := scorer.PPL(quality.UniformBits(s.Cfg.Layers, st.Bits))
	if err != nil {
		return SchemeResult{}, err
	}
	return SchemeResult{
		Scheme:     name,
		PPL:        ppl,
		LatencySec: st.LatencySec,
		Throughput: st.Throughput,
	}, nil
}

func f(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

func resultRow(clusterID int, modelName string, r SchemeResult, baseTP float64) []string {
	if r.OOM {
		return []string{fmt.Sprint(clusterID), modelName, r.Scheme, "-", "-", "OOM", "-"}
	}
	speedup := "-"
	if baseTP > 0 {
		speedup = f(r.Throughput/baseTP, 2) + "x"
	}
	return []string{
		fmt.Sprint(clusterID), modelName, r.Scheme,
		f(r.PPL, 2), f(r.LatencySec, 2), f(r.Throughput, 2), speedup,
	}
}
