package experiments

import (
	"strings"
	"testing"
)

func TestFig1Shape(t *testing.T) {
	tab, rows, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	util := map[string]float64{}
	for _, r := range rows {
		byName[r.GPUType] = r.Share
		util[r.GPUType] = r.MeanUtil
	}
	if byName["T4"] <= byName["A100-40G"] {
		t.Error("fleet should be dominated by low-calibre GPUs (Fig 1a)")
	}
	if util["A100-40G"] <= util["T4"] {
		t.Error("A100 should be far busier than T4 (Fig 1b)")
	}
	if !strings.Contains(tab.Render(), "fig1") {
		t.Error("render missing id")
	}
}

func TestFig3PhaseGap(t *testing.T) {
	_, rows, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	var fp16 *Fig3Row
	for i := range rows {
		if rows[i].Device == "P100" && rows[i].Bits == 16 {
			fp16 = &rows[i]
		}
	}
	if fp16 == nil {
		t.Fatal("missing P100 FP16 row")
	}
	// Fig 3 annotation: the P100/V100 ratio differs sharply by phase.
	if fp16.PrefillRatioVsV100 < 2*fp16.DecodeRatioVsV100 {
		t.Errorf("prefill ratio %.2f should dwarf decode ratio %.2f", fp16.PrefillRatioVsV100, fp16.DecodeRatioVsV100)
	}
}

func TestFig4MixedBetweenUniform(t *testing.T) {
	_, rows, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	get := func(model, scheme string) float64 {
		for _, r := range rows {
			if r.Model == model && r.Scheme == scheme {
				return r.PPL
			}
		}
		t.Fatalf("missing %s/%s", model, scheme)
		return 0
	}
	for _, m := range []string{"opt-1.3b(ref)", "bloom-3b(ref)"} {
		fp16 := get(m, "fp16")
		int3 := get(m, "int3")
		int4 := get(m, "int4")
		int8 := get(m, "int8")
		mix48 := get(m, "mixed4-8")
		if int3 <= fp16 {
			t.Errorf("%s: INT3 PPL %.3f should exceed FP16 %.3f", m, int3, fp16)
		}
		if int4 > int3 {
			t.Errorf("%s: INT4 PPL %.3f should not exceed INT3 %.3f", m, int4, int3)
		}
		lo, hi := min2(int8, int4), max2(int8, int4)
		slack := (hi - lo) * 0.35
		if mix48 < lo-slack || mix48 > hi+slack {
			t.Errorf("%s: mixed4-8 PPL %.3f outside [%.3f, %.3f]", m, mix48, lo, hi)
		}
	}
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func TestFig5FP16PrefillOftenFastest(t *testing.T) {
	_, rows, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	// On V100 at any batch, FP16 prefill beats INT4 (dequant overhead) and
	// INT4 decode beats FP16 (memory-bound) — the §2.4 observation.
	pre := map[int]float64{}
	dec := map[int]float64{}
	for _, r := range rows {
		if r.Device == "V100" && r.Batch == 4 {
			pre[r.Bits] = r.Prefill
			dec[r.Bits] = r.Decode
		}
	}
	if pre[16] >= pre[4] {
		t.Errorf("V100 FP16 prefill %.4g should beat INT4 %.4g", pre[16], pre[4])
	}
	if dec[4] >= dec[16] {
		t.Errorf("V100 INT4 decode %.4g should beat FP16 %.4g", dec[4], dec[16])
	}
}

func TestTable1EarlierRangesHurtLess(t *testing.T) {
	_, rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	// Per model, PPL should be non-decreasing across the three ranges.
	byModel := map[string][]float64{}
	for _, r := range rows {
		byModel[r.Model] = append(byModel[r.Model], r.PPL)
	}
	for m, ppls := range byModel {
		if len(ppls) != 3 {
			t.Fatalf("%s: %d ranges", m, len(ppls))
		}
		if !(ppls[0] < ppls[2]) {
			t.Errorf("%s: earliest range PPL %.3f should beat latest %.3f (Table 1)", m, ppls[0], ppls[2])
		}
	}
}

func TestFig7Fidelity(t *testing.T) {
	_, res, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for name, e := range res.MemErr {
		if e > 0.02 {
			t.Errorf("%s: memory model error %.2f%% not negligible", name, e*100)
		}
	}
	for name, e := range res.LatErr {
		if e > 0.12 {
			t.Errorf("%s: latency model error %.1f%% too high (paper <6%%)", name, e*100)
		}
	}
}

func TestTable4LLMPQWinsHeterogeneous(t *testing.T) {
	_, all, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 8 {
		t.Fatalf("%d clusters", len(all))
	}
	for _, sc := range all {
		pq, ok := sc.Get("LLM-PQ")
		if !ok || pq.OOM {
			t.Fatalf("cluster %d: LLM-PQ missing or OOM", sc.Cluster)
		}
		for _, other := range sc.Results {
			if other.Scheme == "LLM-PQ" || other.OOM {
				continue
			}
			if pq.Throughput < other.Throughput*0.999 {
				t.Errorf("cluster %d: LLM-PQ %.2f tok/s loses to %s %.2f",
					sc.Cluster, pq.Throughput, other.Scheme, other.Throughput)
			}
		}
		// Quality stays at or near the best baseline PPL.
		if pe, ok := sc.Get("PipeEdge"); ok && !pe.OOM {
			if pq.PPL > pe.PPL+0.3 {
				t.Errorf("cluster %d: LLM-PQ PPL %.2f much worse than PipeEdge %.2f", sc.Cluster, pq.PPL, pe.PPL)
			}
		}
	}
	avg, max, n := AverageSpeedup(all)
	if n < 6 {
		t.Fatalf("only %d comparable clusters", n)
	}
	if avg <= 1.0 {
		t.Errorf("average speedup %.2fx should exceed 1 (paper: up to 2.88x)", avg)
	}
	if max <= 1.05 {
		t.Errorf("max speedup %.2fx too small", max)
	}
}

func TestTable5HomogeneousGainsSmaller(t *testing.T) {
	_, hetero, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	_, homo, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	ha, hm, _ := AverageSpeedup(hetero)
	oa, _, n := AverageSpeedup(homo)
	if n == 0 {
		t.Fatal("no homogeneous comparisons")
	}
	// §6.4: gains still exist on homogeneous clusters. (The paper's own
	// Table 5 has cluster 9 at 2.57x — above several heterogeneous rows —
	// so we assert no regression plus existence of gains on both sides,
	// not a strict ordering.)
	if oa < 0.95 {
		t.Errorf("homogeneous speedup %.2fx should not regress", oa)
	}
	if ha <= 1.0 {
		t.Errorf("heterogeneous average speedup %.2fx should exceed 1", ha)
	}
	if hm <= 1.05 {
		t.Errorf("heterogeneous max speedup %.2fx too small", hm)
	}
}

func TestTable6IndicatorShape(t *testing.T) {
	_, rows, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	get := func(m string) Table6Row {
		for _, r := range rows {
			if r.Method == m {
				return r
			}
		}
		t.Fatalf("missing %s", m)
		return Table6Row{}
	}
	random := get("Random")
	hess := get("Hessian")
	variance := get("LLM-PQ (variance)")
	// Table 6: variance matches Hessian; random is at best tied (on the
	// paper's cluster 6 the three are within 0.02 PPL of each other, so we
	// assert a band rather than a strict win).
	if variance.PPL > random.PPL*1.005 {
		t.Errorf("variance PPL %.4f should not trail random %.4f by >0.5%%", variance.PPL, random.PPL)
	}
	if variance.PPL > hess.PPL*1.02 {
		t.Errorf("variance PPL %.4f should track Hessian %.4f (Table 6: same PPL)", variance.PPL, hess.PPL)
	}
	if hess.Overhead < 10*variance.Overhead {
		t.Errorf("Hessian overhead %v should dwarf variance %v (paper: 58-73x)", hess.Overhead, variance.Overhead)
	}
}

func TestTable7ShortPrompts(t *testing.T) {
	_, all, err := Table7()
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range all {
		pq, ok := sc.Get("LLM-PQ")
		if !ok || pq.OOM {
			t.Fatalf("cluster %d: LLM-PQ missing", sc.Cluster)
		}
		pe, ok := sc.Get("PipeEdge")
		if ok && !pe.OOM && pq.Throughput < pe.Throughput*0.999 {
			t.Errorf("cluster %d short prompts: LLM-PQ %.2f loses to PipeEdge %.2f",
				sc.Cluster, pq.Throughput, pe.Throughput)
		}
	}
}

func TestTable8StrategyTradeoffs(t *testing.T) {
	_, rows, err := Table8()
	if err != nil {
		t.Fatal(err)
	}
	byCluster := map[int]map[string]Table8Row{}
	for _, r := range rows {
		if byCluster[r.Cluster] == nil {
			byCluster[r.Cluster] = map[string]Table8Row{}
		}
		byCluster[r.Cluster][r.Strategy] = r
	}
	for cid, m := range byCluster {
		g1, g2, heu := m["group=1"], m["group=2"], m["heuristic"]
		if g1.Throughput <= 0 || g2.Throughput <= 0 || heu.Throughput <= 0 {
			t.Fatalf("cluster %d: missing strategies", cid)
		}
		// group=2 must solve at least as fast as group=1 (smaller space).
		if g2.Overhead > g1.Overhead*2 {
			t.Errorf("cluster %d: group=2 solve %v should not exceed group=1 %v", cid, g2.Overhead, g1.Overhead)
		}
		// group=1 throughput within a sane band of group=2 (usually ≥).
		if g1.Throughput < g2.Throughput*0.85 {
			t.Errorf("cluster %d: group=1 tok/s %.2f far below group=2 %.2f", cid, g1.Throughput, g2.Throughput)
		}
	}
}

func TestFig8ThetaMonotone(t *testing.T) {
	_, rows, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	byCluster := map[int][]Fig8Row{}
	for _, r := range rows {
		byCluster[r.Cluster] = append(byCluster[r.Cluster], r)
	}
	for cid, rs := range byCluster {
		for i := 1; i < len(rs); i++ {
			if rs[i].PPL > rs[i-1].PPL+1e-9 {
				t.Errorf("cluster %d: PPL should not worsen as theta grows: %.3f → %.3f",
					cid, rs[i-1].PPL, rs[i].PPL)
			}
			if rs[i].Throughput > rs[i-1].Throughput*1.02 {
				t.Errorf("cluster %d: throughput should not rise as theta grows: %.2f → %.2f",
					cid, rs[i-1].Throughput, rs[i].Throughput)
			}
		}
	}
}

func TestFig9LLMPQBeatsAdabits(t *testing.T) {
	_, rows, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	byCluster := map[int]map[string]float64{}
	for _, r := range rows {
		if byCluster[r.Cluster] == nil {
			byCluster[r.Cluster] = map[string]float64{}
		}
		byCluster[r.Cluster][r.Scheme] = r.Throughput
	}
	for cid, m := range byCluster {
		if m["LLM-PQ"] < m["adabits"]*0.999 {
			t.Errorf("cluster %d: LLM-PQ %.2f tok/s should beat adabits %.2f (Fig 9)",
				cid, m["LLM-PQ"], m["adabits"])
		}
	}
}

func TestTable10Overheads(t *testing.T) {
	tab, rows, err := Table10()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("%d clusters", len(rows))
	}
	for _, r := range rows {
		if r.Solve <= 0 {
			t.Errorf("cluster %d: zero solve time", r.Cluster)
		}
		if r.Solve.Seconds() > 120 {
			t.Errorf("cluster %d: solve %.1fs exceeds the paper's worst case regime", r.Cluster, r.Solve.Seconds())
		}
	}
	if len(tab.Rows) != 13 { // 11 + AVG + SLOWEST
		t.Errorf("table rows %d", len(tab.Rows))
	}
}

func TestTable3And9Render(t *testing.T) {
	t3 := Table3()
	if len(t3.Rows) != 11 {
		t.Errorf("table3 rows %d", len(t3.Rows))
	}
	t9 := Table9()
	if len(t9.Rows) != 11 {
		t.Errorf("table9 rows %d", len(t9.Rows))
	}
	if !strings.Contains(t3.Render(), "3xT4") {
		t.Error("table3 should describe cluster 3 as 3xT4 + 1xV100")
	}
}
