package experiments

import (
	"fmt"

	"repro/internal/assigner"
	"repro/internal/hardware"
	"repro/internal/indicator"
	"repro/internal/loader"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/online"
	"repro/internal/quality"
	"repro/internal/quant"
	"repro/internal/tp"
)

// The paper's §5 implementation notes and §7 discussion describe four
// extensions; each gets an experiment here (DESIGN.md lists them as
// optional-feature reproductions):
//
//	ExtSchemes — newer weight-only schemes (AWQ/SpQR-style fine scales)
//	ExtLoader  — the on-the-fly quantizer's loading/DRAM/recovery wins
//	ExtTP      — tensor-parallelism search over device meshes
//	ExtOnline  — the online-serving speed-vs-KV-memory trade-off

// SchemeRow is one quantization-scheme quality measurement.
type SchemeRow struct {
	Scheme string
	Bits   int
	PPL    float64
	Acc    float64
}

// ExtSchemes measures per-tensor vs per-channel vs group-wise 4-bit and
// 3-bit quality on the reference model (§7 "Other Quantization Schemes").
func ExtSchemes() (*Table, []SchemeRow, error) {
	ref, err := quality.NewReference(nn.TinyOPT, OmegaSeed, 6, 48)
	if err != nil {
		return nil, nil, err
	}
	var rows []SchemeRow
	fp16, err := ref.Measure(quality.UniformBits(nn.TinyOPT.Layers, 16))
	if err != nil {
		return nil, nil, err
	}
	rows = append(rows, SchemeRow{Scheme: "fp16", Bits: 16, PPL: fp16.PPL, Acc: fp16.Accuracy})
	for _, bits := range []int{4, 3} {
		for _, sc := range []struct {
			name   string
			scheme quant.Scheme
			group  int
		}{
			{"per-tensor", quant.PerTensor, 0},
			{"per-channel", quant.PerChannel, 0},
			{"group-wise/16", quant.GroupWise, 16},
		} {
			res, err := ref.MeasureScheme(bits, sc.scheme, sc.group)
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, SchemeRow{Scheme: sc.name, Bits: bits, PPL: res.PPL, Acc: res.Accuracy})
		}
	}
	t := &Table{
		ID: "ext-schemes", Title: "Fine-grained quantization schemes (§7): quality at equal bits",
		Header: []string{"Scheme", "Bits", "PPL", "Agreement acc"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Scheme, fmt.Sprint(r.Bits), f(r.PPL, 3), f(r.Acc*100, 1) + "%"})
	}
	t.Notes = append(t.Notes, "group-wise < per-channel < per-tensor PPL at the same bitwidth: the AWQ/SpQR effect, measured with real forward passes")
	return t, rows, nil
}

// LoaderRow is one loading-granularity measurement.
type LoaderRow struct {
	ChunkMB  float64
	LoadSec  float64
	PeakDRAM float64
}

// ExtLoader reproduces the §5 on-the-fly quantizer claims on an OPT-66b
// stage shard: loading time and host DRAM vs granularity, plus recovery
// time for one failed stage.
func ExtLoader() (*Table, []LoaderRow, error) {
	cfg := model.OPT66B
	var shard float64
	for i := 0; i < cfg.Layers/4; i++ { // one stage of a 4-stage deployment
		shard += cfg.LayerWeightBytes(16)
	}
	var rows []LoaderRow
	t := &Table{
		ID: "ext-loader", Title: "On-the-fly quantized loading (§5): OPT-66b stage shard (16 layers, FP16 on disk)",
		Header: []string{"Chunk", "Load(s)", "Peak host DRAM"},
	}
	for _, chunkMB := range []float64{0, 4096, 1024, 256, 64, 16} {
		chunk := chunkMB * 1e6
		var p loader.Plan
		var err error
		if chunkMB == 0 {
			p, err = loader.Monolithic(loader.DefaultResources, shard)
		} else {
			p, err = loader.Load(loader.DefaultResources, shard, chunk)
		}
		if err != nil {
			return nil, nil, err
		}
		label := "whole shard"
		if chunkMB > 0 {
			label = fmt.Sprintf("%.0f MB", chunkMB)
		}
		rows = append(rows, LoaderRow{ChunkMB: chunkMB, LoadSec: p.LoadTime, PeakDRAM: p.PeakDRAM})
		t.Rows = append(t.Rows, []string{label, f(p.LoadTime, 2), fmt.Sprintf("%.2f GB", p.PeakDRAM/1e9)})
	}
	rec, err := loader.RecoveryTime(loader.DefaultResources, shard, 256e6)
	if err != nil {
		return nil, nil, err
	}
	full := shard * 4
	recFull, err := loader.RecoveryTime(loader.DefaultResources, full, 256e6)
	if err != nil {
		return nil, nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("single-stage recovery %.1fs vs full-model reload %.1fs (the §5 recovery claim)", rec, recFull),
		"module-level chunks cut host DRAM by ~100x while overlap keeps loading at the disk bound")
	return t, rows, nil
}

// TPRow is one tensor-parallel search outcome.
type TPRow struct {
	Cluster  string
	BestMesh string
	Degrees  []int
	TokS     float64
	BaseTokS float64 // pipeline-only (identity mesh)
}

// ExtTP runs the §7 tensor-parallelism search on two settings: the
// Table 3 cluster 10 (where pure pipeline is already fine) and a
// deep-pipeline pathology (8 devices, shallow model) where TP must win.
func ExtTP() (*Table, []TPRow, error) {
	var rows []TPRow
	add := func(name string, s *assigner.Spec) error {
		base, err := assigner.Optimize(s, nil)
		if err != nil {
			return err
		}
		clone := *s
		res, err := tp.Optimize(&clone, nil)
		if err != nil {
			return err
		}
		rows = append(rows, TPRow{
			Cluster: name, BestMesh: res.Mesh.Desc, Degrees: res.Mesh.Degrees,
			TokS: res.Eval.Throughput, BaseTokS: base.Eval.Throughput,
		})
		return nil
	}
	s10, err := SpecFor(10, DefaultWork)
	if err != nil {
		return nil, nil, err
	}
	s10.PrefillMicroBatches = []int{1, 4}
	if err := add("cluster-10 (4xV100, opt-66b)", s10); err != nil {
		return nil, nil, err
	}
	small := model.Config{Name: "opt-13b", Family: model.OPT, Hidden: 5120, FFN: 20480,
		Layers: 12, Heads: 40, VocabSize: 50272, MaxPosEmb: 2048, TiedEmbed: true}
	cl, err := hardware.NewCluster([]string{"V100"}, []int{8}, hardware.Eth100Gbps, "deep")
	if err != nil {
		return nil, nil, err
	}
	deep := &assigner.Spec{
		Cfg: small, Cluster: cl,
		Work:                DefaultWork,
		Bits:                Bits,
		Omega:               mustNormalizedSynthetic(small),
		Theta:               1,
		Method:              assigner.MethodDP,
		PrefillMicroBatches: []int{1, 4},
	}
	if err := add("8xV100, 12-layer model (deep-pipeline pathology)", deep); err != nil {
		return nil, nil, err
	}
	t := &Table{
		ID: "ext-tp", Title: "Tensor-parallelism search (§7): best mesh vs pipeline-only",
		Header: []string{"Setting", "Best mesh", "Tok/s", "Pipeline-only tok/s"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Cluster, r.BestMesh, f(r.TokS, 2), f(r.BaseTokS, 2)})
	}
	t.Notes = append(t.Notes, "TP groups are planned as fused devices over the same 1-D partition — exactly the paper's §7 construction")
	return t, rows, nil
}

func mustNormalizedSynthetic(cfg model.Config) indicator.Omega {
	om, err := normalizeOmega(indicator.Synthetic(cfg, Bits, OmegaSeed))
	if err != nil {
		panic(err)
	}
	return om
}

// TrainedCfg is the reference configuration used for trained-model quality
// experiments (small enough to train in seconds on CPU, structured enough
// to show real quantization behaviour).
var TrainedCfg = nn.Config{Vocab: 48, Hidden: 32, FFN: 128, Layers: 4, Heads: 4, MaxSeq: 48, SensitivitySlope: 1}

// ExtTrained re-runs the Fig-4 quality comparison on a model TRAINED with
// real backpropagation (gradients verified against finite differences in
// internal/nn tests) — quantization damage on learned structure rather
// than on random weights.
func ExtTrained() (*Table, []QualityRow, error) {
	ref, err := quality.NewTrainedReference(TrainedCfg, OmegaSeed, 200)
	if err != nil {
		return nil, nil, err
	}
	L := TrainedCfg.Layers
	var rows []QualityRow
	for _, sc := range []struct {
		name string
		bits []int
	}{
		{"fp16", quality.UniformBits(L, 16)},
		{"int8", quality.UniformBits(L, 8)},
		{"int4", quality.UniformBits(L, 4)},
		{"int3", quality.UniformBits(L, 3)},
		{"mixed4-8", quality.MixedBits(L, 4, 8, OmegaSeed)},
	} {
		res, err := ref.Measure(sc.bits)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, QualityRow{Model: "trained(ref)", Scheme: sc.name, PPL: res.PPL, Acc: res.Accuracy})
	}
	t := &Table{
		ID: "ext-trained", Title: "Quality vs bitwidth on a TRAINED reference model (pure-Go backprop)",
		Header: []string{"Model", "Scheme", "PPL", "Agreement acc"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Model, r.Scheme, f(r.PPL, 3), f(r.Acc*100, 1) + "%"})
	}
	t.Notes = append(t.Notes,
		"the model is trained on a Markov corpus until held-out CE ≪ ln(V); the Fig-4 orderings must hold on learned structure",
		"training: 200 Adam steps of fresh chain samples; gradients finite-difference-verified in internal/nn")
	return t, rows, nil
}

// KVRow is one KV-precision comparison.
type KVRow struct {
	Cluster  int
	KVBits   int
	TokS     float64
	PPL      float64
	OmegaSum float64
}

// ExtKVCache compares FP16 vs INT8 KV caches on the KV-heavy clusters
// (1 and 9): halving the reservation frees memory for higher weight
// precisions and shrinks decode traffic.
func ExtKVCache() (*Table, []KVRow, error) {
	var rows []KVRow
	for _, cid := range []int{1, 9} {
		for _, kv := range []int{16, 8} {
			s, err := SpecFor(cid, DefaultWork)
			if err != nil {
				return nil, nil, err
			}
			s.KVBits = kv
			res, err := assigner.Optimize(s, nil)
			if err != nil {
				return nil, nil, err
			}
			out, err := execute(s, res.Plan, fmt.Sprintf("kv%d", kv))
			if err != nil {
				return nil, nil, err
			}
			if out.OOM {
				return nil, nil, fmt.Errorf("experiments: unexpected OOM at kv=%d on cluster %d", kv, cid)
			}
			rows = append(rows, KVRow{Cluster: cid, KVBits: kv, TokS: out.Throughput, PPL: out.PPL, OmegaSum: res.Eval.OmegaSum})
		}
	}
	t := &Table{
		ID: "ext-kv", Title: "KV-cache quantization (extension): FP16 vs INT8 KV on KV-heavy clusters",
		Header: []string{"Cluster", "KV bits", "Tok/s", "PPL", "ω"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{fmt.Sprint(r.Cluster), fmt.Sprint(r.KVBits), f(r.TokS, 2), f(r.PPL, 3), f(r.OmegaSum, 4)})
	}
	t.Notes = append(t.Notes,
		"INT8 KV halves the per-request reservation: the planner spends the freed memory on higher weight bits and larger effective batches",
		"INT8 KV near-losslessness is validated with real arithmetic on the reference transformer (internal/nn KV-quantization tests)")
	return t, rows, nil
}

// ExtOnline sweeps the §7 online-serving trade-off: precision × arrival
// rate on one V100 serving OPT-13b.
func ExtOnline() (*Table, []online.SweepPoint, error) {
	pts, err := online.Sweep(hardware.V100, model.OPT13B, []int{4, 8, 16}, []float64{0.5, 4, 24}, 48, 11)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		ID: "ext-online", Title: "Online serving trade-off (§7): precision vs load on 1xV100, OPT-13b",
		Header: []string{"Bits", "Arrivals/s", "Tok/s", "Mean batch", "P95 latency(s)", "KV capacity(tok)"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.Bits), f(p.Arrival, 1), f(p.Stats.Throughput, 1),
			f(p.Stats.MeanBatch, 1), f(p.Stats.P95Latency, 1), fmt.Sprint(p.Stats.KVCapacityTok),
		})
	}
	t.Notes = append(t.Notes,
		"low load favours the fastest kernels; high load favours the precision that frees the most paged-KV memory",
		"FP16 OPT-13b leaves only a sliver of KV on 30GB: its batches stop growing under load and throughput collapses")
	return t, pts, nil
}
