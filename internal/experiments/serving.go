package experiments

import (
	"fmt"

	"repro/internal/assigner"
)

// ServingComparison bundles all schemes on one cluster.
type ServingComparison struct {
	Cluster int
	Model   string
	Results []SchemeResult
}

// Get returns the named scheme's result.
func (sc ServingComparison) Get(scheme string) (SchemeResult, bool) {
	for _, r := range sc.Results {
		if r.Scheme == scheme {
			return r, true
		}
	}
	return SchemeResult{}, false
}

// CompareCluster runs every scheme of Table 4/5 on one cluster.
func CompareCluster(clusterID int, w assigner.Workload) (ServingComparison, error) {
	s, err := SpecFor(clusterID, w)
	if err != nil {
		return ServingComparison{}, err
	}
	sc := ServingComparison{Cluster: clusterID, Model: s.Cfg.Name}
	pe, err := RunPipeEdge(clusterID, w)
	if err != nil {
		return ServingComparison{}, fmt.Errorf("cluster %d pipeedge: %w", clusterID, err)
	}
	sc.Results = append(sc.Results, pe)
	un, err := RunUniform(clusterID, w)
	if err != nil {
		return ServingComparison{}, fmt.Errorf("cluster %d uniform: %w", clusterID, err)
	}
	sc.Results = append(sc.Results, un)
	fg, err := RunFlexGen(clusterID, w, false)
	if err != nil {
		return ServingComparison{}, fmt.Errorf("cluster %d flexgen: %w", clusterID, err)
	}
	sc.Results = append(sc.Results, fg)
	fg8, err := RunFlexGen(clusterID, w, true)
	if err != nil {
		return ServingComparison{}, fmt.Errorf("cluster %d flexgen-int8: %w", clusterID, err)
	}
	sc.Results = append(sc.Results, fg8)
	pq, err := RunLLMPQ(clusterID, w)
	if err != nil {
		return ServingComparison{}, fmt.Errorf("cluster %d llm-pq: %w", clusterID, err)
	}
	sc.Results = append(sc.Results, pq)
	return sc, nil
}

// Table4 reproduces the heterogeneous serving comparison (clusters 1–8).
func Table4() (*Table, []ServingComparison, error) {
	return servingTable("table4", "Serving performance on heterogeneous clusters (s=512, n=100, B=32)",
		[]int{1, 2, 3, 4, 5, 6, 7, 8}, DefaultWork)
}

// Table5 reproduces the homogeneous comparison (clusters 9–11).
func Table5() (*Table, []ServingComparison, error) {
	return servingTable("table5", "Serving performance on homogeneous clusters (s=512, n=100, B=32)",
		[]int{9, 10, 11}, DefaultWork)
}

// Table7 reproduces the shorter-prompt comparison (§6.6: s=128, n=200) on
// clusters 1, 4 and 6.
func Table7() (*Table, []ServingComparison, error) {
	return servingTable("table7", "Serving performance with shorter prompts (s=128, n=200, B=32)",
		[]int{1, 4, 6}, ShortWork)
}

func servingTable(id, title string, clusters []int, w assigner.Workload) (*Table, []ServingComparison, error) {
	t := &Table{
		ID: id, Title: title,
		Header: []string{"Cluster", "Model", "Scheme", "PPL", "Latency(s)", "Tok/s", "vs PipeEdge"},
	}
	var all []ServingComparison
	for _, cid := range clusters {
		sc, err := CompareCluster(cid, w)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, sc)
		base := 0.0
		if pe, ok := sc.Get("PipeEdge"); ok && !pe.OOM {
			base = pe.Throughput
		}
		for _, r := range sc.Results {
			t.Rows = append(t.Rows, resultRow(cid, sc.Model, r, base))
		}
	}
	t.Notes = append(t.Notes,
		"PPL from the calibrated scorer (paper-anchored FP16 + ω-interpolated deltas; DESIGN.md §3)",
		"latency/throughput measured on the discrete-event runtime",
		"FlexGen rows marked OOM on BLOOM clusters: the paper's FlexGen supports OPT only")
	return t, all, nil
}

// AverageSpeedup computes LLM-PQ's mean throughput gain over PipeEdge
// across comparisons where both ran (the paper headline: up to 2.88x,
// on-average improvement).
func AverageSpeedup(all []ServingComparison) (avg, max float64, n int) {
	for _, sc := range all {
		pq, ok1 := sc.Get("LLM-PQ")
		pe, ok2 := sc.Get("PipeEdge")
		if !ok1 || !ok2 || pq.OOM || pe.OOM {
			continue
		}
		s := pq.Throughput / pe.Throughput
		avg += s
		if s > max {
			max = s
		}
		n++
	}
	if n > 0 {
		avg /= float64(n)
	}
	return avg, max, n
}
