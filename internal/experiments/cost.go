package experiments

import (
	"fmt"

	"repro/internal/assigner"
	"repro/internal/hardware"
	"repro/internal/indicator"
	"repro/internal/runtime"
)

// CostRow is one serving-cost measurement.
type CostRow struct {
	Cluster    string
	HourlyUSD  float64
	TokS       float64
	USDPerMTok float64
}

// ExtCost quantifies the paper's motivation (§1, Fig 1): serving OPT-30b
// on harvested idle low-calibre GPUs (cluster 3: 3×T4 + 1×V100) versus
// renting fresh high-calibre capacity (2×A100-40G). LLM-PQ plans both;
// dollars per million generated tokens is the verdict.
func ExtCost() (*Table, []CostRow, error) {
	var rows []CostRow
	add := func(name string, cl hardware.Cluster) error {
		cfg := cl.ModelName
		s, err := SpecFor(3, DefaultWork) // reuse model/θ plumbing
		if err != nil {
			return err
		}
		_ = cfg
		s.Cluster = cl
		omega, err := normalizeOmega(indicator.Synthetic(s.Cfg, Bits, OmegaSeed))
		if err != nil {
			return err
		}
		s.Omega = omega
		res, err := assigner.Optimize(s, nil)
		if err != nil {
			return err
		}
		eng, err := runtime.NewEngine(s, res.Plan, nil)
		if err != nil {
			return err
		}
		st, err := eng.Run()
		if err != nil {
			return err
		}
		rows = append(rows, CostRow{
			Cluster:    name,
			HourlyUSD:  cl.HourlyUSD(),
			TokS:       st.Throughput,
			USDPerMTok: cl.CostPerMTok(st.Throughput),
		})
		return nil
	}
	c3, err := hardware.ClusterByID(3)
	if err != nil {
		return nil, nil, err
	}
	if err := add("3xT4 + 1xV100 (harvested idle fleet)", c3); err != nil {
		return nil, nil, err
	}
	a100s, err := hardware.NewCluster([]string{"A100-40G"}, []int{2}, hardware.NVLink, "opt-30b")
	if err != nil {
		return nil, nil, err
	}
	if err := add("2xA100-40G (fresh high-calibre)", a100s); err != nil {
		return nil, nil, err
	}
	t := &Table{
		ID: "ext-cost", Title: "Serving cost (§1 motivation): OPT-30b on idle heterogeneous vs fresh homogeneous GPUs",
		Header: []string{"Cluster", "$/hour", "Tok/s", "$/Mtok"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Cluster, f(r.HourlyUSD, 2), f(r.TokS, 2), f(r.USDPerMTok, 2)})
	}
	if len(rows) == 2 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("at on-demand list prices the fresh A100s win per token (%.2f vs %.2f $/Mtok) — raw speed matters",
				rows[1].USDPerMTok, rows[0].USDPerMTok),
			"the paper's Fig-1 argument is about ALREADY-OWNED idle GPUs: their marginal cost is power+amortization (~15% of list), at which the harvested fleet serves tokens for "+
				f(rows[0].USDPerMTok*0.15, 2)+" $/Mtok — well under the A100 rate",
			"either way, LLM-PQ is what makes the idle fleet usable at all: uniform FP16 does not fit it")
	}
	return t, rows, nil
}
