package experiments

import (
	"fmt"

	"repro/internal/clustertrace"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/profiler"
	"repro/internal/quality"
)

// Fig1 reproduces the motivation figure: GPU fleet shares and monthly
// utilization in a production cluster.
func Fig1() (*Table, []clustertrace.TypeSummary, error) {
	rows, err := clustertrace.Summarize(OmegaSeed)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		ID: "fig1", Title: "GPU proportions and utilization in a production AI cluster",
		Header: []string{"GPU", "Fleet share", "Mean util (30d)", "Idle capacity share"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.GPUType, f(r.Share*100, 1) + "%", f(r.MeanUtil*100, 1) + "%", f(r.IdleShare*100, 1) + "%",
		})
	}
	t.Notes = append(t.Notes, "synthetic trace with the paper's qualitative shape: scarce busy A100s, plentiful idle T4/P100s")
	return t, rows, nil
}

// Fig3Row is one phase-decomposition measurement.
type Fig3Row struct {
	Device  string
	Bits    int
	Prefill float64
	Decode  float64
	// RatioVsV100 mirrors the figure's "× indicates time on P100 compared
	// to V100" annotation.
	PrefillRatioVsV100 float64
	DecodeRatioVsV100  float64
}

// Fig3 reproduces the phase time decomposition: single OPT-30b layer,
// prompt 512, batch 8, across precisions on P100 vs V100.
func Fig3() (*Table, []Fig3Row, error) {
	cfg := model.OPT30B
	devices := []hardware.GPU{hardware.V100, hardware.P100}
	base := map[int][2]float64{}
	var rows []Fig3Row
	for _, gpu := range devices {
		for _, bits := range Bits {
			pre, err := profiler.LayerTime(gpu, cfg, profiler.Workload{Batch: 8, Prompt: 512, Prefill: true, Bits: bits})
			if err != nil {
				return nil, nil, err
			}
			dec, err := profiler.LayerTime(gpu, cfg, profiler.Workload{Batch: 8, Prompt: 512, Context: 512, Bits: bits})
			if err != nil {
				return nil, nil, err
			}
			r := Fig3Row{Device: gpu.Name, Bits: bits, Prefill: pre, Decode: dec}
			if gpu.Name == "V100" {
				base[bits] = [2]float64{pre, dec}
			} else {
				r.PrefillRatioVsV100 = pre / base[bits][0]
				r.DecodeRatioVsV100 = dec / base[bits][1]
			}
			rows = append(rows, r)
		}
	}
	t := &Table{
		ID: "fig3", Title: "Phase time decomposition, one OPT-30b layer (s=512, b=8)",
		Header: []string{"Device", "Bits", "Prefill(ms)", "Decode(ms)", "Prefill xV100", "Decode xV100"},
	}
	for _, r := range rows {
		pr, dr := "-", "-"
		if r.PrefillRatioVsV100 > 0 {
			pr = f(r.PrefillRatioVsV100, 2) + "x"
			dr = f(r.DecodeRatioVsV100, 2) + "x"
		}
		t.Rows = append(t.Rows, []string{r.Device, fmt.Sprint(r.Bits), f(r.Prefill*1000, 2), f(r.Decode*1000, 2), pr, dr})
	}
	t.Notes = append(t.Notes, "paper annotates P100/V100 ≈ 14.5x for FP16 prefill vs ≈1x decode: the phase-dependent gap motivating phase-aware partition")
	return t, rows, nil
}

// QualityRow is one Fig 4 / Table 1 measurement on a reference model.
type QualityRow struct {
	Model  string
	Scheme string
	PPL    float64
	Acc    float64
}

// Fig4 reproduces quality vs bitwidth (uniform 3/4/8/16, mixed3-4,
// mixed4-8) on the reference OPT and BLOOM models — real quantization, real
// forward passes.
func Fig4() (*Table, []QualityRow, error) {
	var rows []QualityRow
	for _, mc := range []struct {
		name string
		cfg  nn.Config
	}{{"opt-1.3b(ref)", nn.TinyOPT}, {"bloom-3b(ref)", nn.TinyBLOOM}} {
		ref, err := quality.NewReference(mc.cfg, OmegaSeed, 6, 48)
		if err != nil {
			return nil, nil, err
		}
		L := mc.cfg.Layers
		schemes := []struct {
			name string
			bits []int
		}{
			{"fp16", quality.UniformBits(L, 16)},
			{"int8", quality.UniformBits(L, 8)},
			{"int4", quality.UniformBits(L, 4)},
			{"int3", quality.UniformBits(L, 3)},
			{"mixed4-8", quality.MixedBits(L, 4, 8, OmegaSeed)},
			{"mixed3-4", quality.MixedBits(L, 3, 4, OmegaSeed)},
		}
		for _, sc := range schemes {
			res, err := ref.Measure(sc.bits)
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, QualityRow{Model: mc.name, Scheme: sc.name, PPL: res.PPL, Acc: res.Accuracy})
		}
	}
	t := &Table{
		ID: "fig4", Title: "Perplexity & accuracy under quantization schemes (reference models)",
		Header: []string{"Model", "Scheme", "PPL", "Agreement acc"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Model, r.Scheme, f(r.PPL, 3), f(r.Acc*100, 1) + "%"})
	}
	t.Notes = append(t.Notes, "mixed4-8 lands between uniform INT4 and INT8; mixed3-4 between INT3 and INT4 (Fig 4 claim)")
	return t, rows, nil
}

// Fig5Row is one precision × batch measurement.
type Fig5Row struct {
	Device  string
	Bits    int
	Batch   int
	Prefill float64
	Decode  float64
}

// Fig5 reproduces execution time under different precisions and batch
// sizes (one OPT-30b layer, prompt 512) on V100 and T4.
func Fig5() (*Table, []Fig5Row, error) {
	cfg := model.OPT30B
	var rows []Fig5Row
	for _, gpu := range []hardware.GPU{hardware.V100, hardware.T4} {
		for _, bits := range Bits {
			for _, b := range []int{1, 4, 16} {
				pre, err := profiler.LayerTime(gpu, cfg, profiler.Workload{Batch: b, Prompt: 512, Prefill: true, Bits: bits})
				if err != nil {
					return nil, nil, err
				}
				dec, err := profiler.LayerTime(gpu, cfg, profiler.Workload{Batch: b, Prompt: 512, Context: 512, Bits: bits})
				if err != nil {
					return nil, nil, err
				}
				rows = append(rows, Fig5Row{Device: gpu.Name, Bits: bits, Batch: b, Prefill: pre, Decode: dec})
			}
		}
	}
	t := &Table{
		ID: "fig5", Title: "Prefill/decode time under precisions and batch sizes (OPT-30b layer, s=512)",
		Header: []string{"Device", "Bits", "Batch", "Prefill(ms)", "Decode(ms)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Device, fmt.Sprint(r.Bits), fmt.Sprint(r.Batch), f(r.Prefill*1000, 2), f(r.Decode*1000, 2)})
	}
	t.Notes = append(t.Notes, "uniform low precision does not always win: FP16 prefill beats INT4/INT3 (dequant overhead); quantization pays off in memory-bound decode")
	return t, rows, nil
}

// Table1 reproduces the layer-range sensitivity result: quantizing
// different thirds of the model to 4-bit.
func Table1() (*Table, []QualityRow, error) {
	var rows []QualityRow
	cases := []struct {
		name   string
		cfg    nn.Config
		ranges [][2]int
	}{
		{"opt-1.3b(ref)", nn.TinyOPT, [][2]int{{0, 8}, {8, 16}, {16, 24}}},
		{"bloom-3b(ref)", nn.TinyBLOOM, [][2]int{{0, 10}, {10, 20}, {20, 30}}},
	}
	for _, c := range cases {
		ref, err := quality.NewReference(c.cfg, OmegaSeed, 6, 48)
		if err != nil {
			return nil, nil, err
		}
		for _, rg := range c.ranges {
			bits := quality.UniformBits(c.cfg.Layers, 16)
			for i := rg[0]; i < rg[1]; i++ {
				bits[i] = 4
			}
			res, err := ref.Measure(bits)
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, QualityRow{
				Model:  c.name,
				Scheme: fmt.Sprintf("layers %d-%d @4bit", rg[0], rg[1]),
				PPL:    res.PPL,
				Acc:    res.Accuracy,
			})
		}
	}
	t := &Table{
		ID: "table1", Title: "Model quality when different layer ranges are quantized to 4-bit",
		Header: []string{"Model", "Quantized range", "PPL", "Agreement acc"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Model, r.Scheme, f(r.PPL, 3), f(r.Acc*100, 1) + "%"})
	}
	t.Notes = append(t.Notes, "earlier ranges hurt least (best PPL bold in the paper); sensitivity grows with depth")
	return t, rows, nil
}

// Table3 renders the cluster configurations (data, from internal/hardware).
func Table3() *Table {
	t := &Table{
		ID: "table3", Title: "Cluster configurations",
		Header: []string{"Cluster", "Devices", "Model"},
	}
	for id := 1; id <= 11; id++ {
		cl, _ := hardware.ClusterByID(id)
		counts := map[string]int{}
		var order []string
		for _, d := range cl.Devices {
			if counts[d.GPU.Name] == 0 {
				order = append(order, d.GPU.Name)
			}
			counts[d.GPU.Name]++
		}
		desc := ""
		for i, name := range order {
			if i > 0 {
				desc += " + "
			}
			desc += fmt.Sprintf("%dx%s", counts[name], name)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(id), desc, cl.ModelName})
	}
	return t
}
