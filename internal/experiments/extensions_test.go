package experiments

import (
	"testing"
)

func TestExtSchemesOrdering(t *testing.T) {
	_, rows, err := ExtSchemes()
	if err != nil {
		t.Fatal(err)
	}
	get := func(scheme string, bits int) float64 {
		for _, r := range rows {
			if r.Scheme == scheme && r.Bits == bits {
				return r.PPL
			}
		}
		t.Fatalf("missing %s@%d", scheme, bits)
		return 0
	}
	for _, bits := range []int{4, 3} {
		pt := get("per-tensor", bits)
		pc := get("per-channel", bits)
		gw := get("group-wise/16", bits)
		if !(gw < pc && pc < pt) {
			t.Errorf("%d-bit: expected group-wise < per-channel < per-tensor, got %.3f / %.3f / %.3f", bits, gw, pc, pt)
		}
	}
	// Group-wise 4-bit should approach FP16.
	fp16 := get("fp16", 16)
	gw4 := get("group-wise/16", 4)
	pt4 := get("per-tensor", 4)
	if (gw4 - fp16) > 0.5*(pt4-fp16) {
		t.Errorf("group-wise should recover ≥50%% of the 4-bit loss: fp16 %.3f gw %.3f pt %.3f", fp16, gw4, pt4)
	}
}

func TestExtLoaderShape(t *testing.T) {
	_, rows, err := ExtLoader()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("%d rows", len(rows))
	}
	mono := rows[0] // whole shard
	var best LoaderRow
	best = rows[1]
	for _, r := range rows[1:] {
		if r.LoadSec < best.LoadSec {
			best = r
		}
	}
	if best.LoadSec >= mono.LoadSec {
		t.Errorf("chunked loading %.2fs should beat monolithic %.2fs", best.LoadSec, mono.LoadSec)
	}
	if best.PeakDRAM >= mono.PeakDRAM/5 {
		t.Errorf("chunked DRAM %.2fGB should be far below monolithic %.2fGB", best.PeakDRAM/1e9, mono.PeakDRAM/1e9)
	}
}

func TestExtTPShape(t *testing.T) {
	_, rows, err := ExtTP()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// TP search includes the identity mesh: never worse.
		if r.TokS < r.BaseTokS*0.999 {
			t.Errorf("%s: TP search %.2f tok/s worse than pipeline-only %.2f", r.Cluster, r.TokS, r.BaseTokS)
		}
	}
	// The deep-pipeline pathology must pick a TP degree > 1.
	deep := rows[1]
	allOne := true
	for _, d := range deep.Degrees {
		if d > 1 {
			allOne = false
		}
	}
	if allOne {
		t.Errorf("deep pipeline should choose TP>1, got %v", deep.Degrees)
	}
}

func TestExtTrainedOrdering(t *testing.T) {
	_, rows, err := ExtTrained()
	if err != nil {
		t.Fatal(err)
	}
	get := func(s string) QualityRow {
		for _, r := range rows {
			if r.Scheme == s {
				return r
			}
		}
		t.Fatalf("missing %s", s)
		return QualityRow{}
	}
	fp16, int8, int4, int3 := get("fp16"), get("int8"), get("int4"), get("int3")
	mix := get("mixed4-8")
	// The model must actually be trained: PPL far below uniform (=vocab).
	if fp16.PPL > float64(TrainedCfg.Vocab)/4 {
		t.Fatalf("trained PPL %.2f too close to chance %d — training failed", fp16.PPL, TrainedCfg.Vocab)
	}
	if !(int8.PPL <= int4.PPL && int4.PPL <= int3.PPL) {
		t.Errorf("ordering broken: 8→%.3f 4→%.3f 3→%.3f", int8.PPL, int4.PPL, int3.PPL)
	}
	// INT8 near-lossless on learned structure.
	if int8.Acc < 0.95 {
		t.Errorf("trained INT8 agreement %.2f should be near 1", int8.Acc)
	}
	// Mixed between its endpoints (with slack).
	lo, hi := min2(int8.PPL, int4.PPL), max2(int8.PPL, int4.PPL)
	slack := (hi - lo) * 0.35
	if mix.PPL < lo-slack || mix.PPL > hi+slack {
		t.Errorf("mixed4-8 PPL %.3f outside [%.3f, %.3f]", mix.PPL, lo, hi)
	}
}

func TestExtKVCacheImprovesBothAxes(t *testing.T) {
	_, rows, err := ExtKVCache()
	if err != nil {
		t.Fatal(err)
	}
	byCluster := map[int]map[int]KVRow{}
	for _, r := range rows {
		if byCluster[r.Cluster] == nil {
			byCluster[r.Cluster] = map[int]KVRow{}
		}
		byCluster[r.Cluster][r.KVBits] = r
	}
	for cid, m := range byCluster {
		fp16, int8 := m[16], m[8]
		if int8.TokS < fp16.TokS*0.999 {
			t.Errorf("cluster %d: INT8 KV throughput %.2f should not trail FP16 KV %.2f", cid, int8.TokS, fp16.TokS)
		}
		if int8.OmegaSum > fp16.OmegaSum+1e-9 {
			t.Errorf("cluster %d: INT8 KV should free memory for better weights: ω %.4f vs %.4f", cid, int8.OmegaSum, fp16.OmegaSum)
		}
	}
}

func TestExtBucketsWin(t *testing.T) {
	_, rows, err := ExtBuckets()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	padAll, bucketed := rows[0], rows[1]
	if bucketed.TokPerSec <= padAll.TokPerSec*1.2 {
		t.Errorf("bucketed planning %.1f tok/s should clearly beat pad-to-max %.1f (§2.1 length spread)",
			bucketed.TokPerSec, padAll.TokPerSec)
	}
}

func TestExtOnlineCrossover(t *testing.T) {
	_, pts, err := ExtOnline()
	if err != nil {
		t.Fatal(err)
	}
	get := func(bits int, arrival float64) (float64, bool) {
		for _, p := range pts {
			if p.Bits == bits && p.Arrival == arrival {
				return p.Stats.Throughput, true
			}
		}
		return 0, false
	}
	hi4, ok := get(4, 24)
	if !ok {
		t.Fatal("missing INT4 high-load point")
	}
	hi8, ok := get(8, 24)
	if !ok {
		t.Fatal("missing INT8 high-load point")
	}
	// Under heavy load the KV-richest precision should not lose badly.
	if hi4 < hi8*0.7 {
		t.Errorf("INT4 %.1f tok/s collapses vs INT8 %.1f at high load", hi4, hi8)
	}
	// KV capacities must be ordered by precision.
	var kv4, kv8 int
	for _, p := range pts {
		if p.Arrival == 24 {
			if p.Bits == 4 {
				kv4 = p.Stats.KVCapacityTok
			}
			if p.Bits == 8 {
				kv8 = p.Stats.KVCapacityTok
			}
		}
	}
	if kv4 <= kv8 {
		t.Errorf("INT4 should free more KV: %d vs %d tokens", kv4, kv8)
	}
}
