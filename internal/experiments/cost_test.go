package experiments

import (
	"testing"

	"repro/internal/hardware"
)

func TestClusterCostAccounting(t *testing.T) {
	c3, _ := hardware.ClusterByID(3)
	// 3xT4 (0.53) + 1xV100 (2.48) = 4.07 $/h.
	if got := c3.HourlyUSD(); got < 4.06 || got > 4.08 {
		t.Errorf("cluster 3 hourly $%.2f, want 4.07", got)
	}
	// 100 tok/s → 360k tok/h → $4.07 per 0.36 Mtok → ~$11.3/Mtok.
	got := c3.CostPerMTok(100)
	if got < 11 || got > 11.6 {
		t.Errorf("cost per Mtok %.2f, want ≈11.3", got)
	}
	if c3.CostPerMTok(0) != 0 {
		t.Error("zero throughput should yield zero (undefined) cost")
	}
}

func TestExtCostShape(t *testing.T) {
	_, rows, err := ExtCost()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	hetero, a100 := rows[0], rows[1]
	if hetero.HourlyUSD >= a100.HourlyUSD {
		t.Errorf("idle fleet $%.2f/h should rent below 2xA100 $%.2f/h", hetero.HourlyUSD, a100.HourlyUSD)
	}
	if a100.TokS <= hetero.TokS {
		t.Errorf("A100s %.1f tok/s should outrun the T4 fleet %.1f", a100.TokS, hetero.TokS)
	}
	// Both positive and in a plausible $/Mtok band.
	for _, r := range rows {
		if r.USDPerMTok <= 0 || r.USDPerMTok > 100 {
			t.Errorf("%s: $/Mtok %.2f implausible", r.Cluster, r.USDPerMTok)
		}
	}
	// The paper's marginal-cost reading: at ~15% of list price the idle
	// fleet undercuts the A100s.
	if hetero.USDPerMTok*0.15 >= a100.USDPerMTok {
		t.Errorf("idle fleet at marginal cost %.2f should undercut A100s %.2f",
			hetero.USDPerMTok*0.15, a100.USDPerMTok)
	}
}

func TestAllGPUsPriced(t *testing.T) {
	for _, name := range hardware.GPUNames() {
		g, err := hardware.GPUByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if g.HourlyUSD <= 0 {
			t.Errorf("%s has no price", name)
		}
	}
	// Price ordering tracks capability: T4 < P100 < V100 < A100 ≤ A800.
	t4, _ := hardware.GPUByName("T4")
	v100, _ := hardware.GPUByName("V100")
	a100, _ := hardware.GPUByName("A100-40G")
	if !(t4.HourlyUSD < v100.HourlyUSD && v100.HourlyUSD < a100.HourlyUSD) {
		t.Error("price ordering broken")
	}
}
