package experiments

import (
	"fmt"

	"repro/internal/assigner"
	"repro/internal/runtime"
	"repro/internal/workload"
)

// BucketRow summarizes one prompt-length planning strategy.
type BucketRow struct {
	Strategy  string
	Batches   int
	TotalSec  float64
	TokPerSec float64
}

// ExtBuckets quantifies what §2.1's ShareGPT observation implies for the
// offline planner: real prompt lengths vary wildly, so padding everything
// to the global maximum wastes prefill compute and KV memory. Bucketing
// the requests by length and re-planning per bucket (cheap — Table 10
// shows sub-second solves) recovers the waste.
func ExtBuckets() (*Table, []BucketRow, error) {
	const (
		cluster  = 3
		nReq     = 512
		maxLen   = 1024
		batch    = 32
		generate = 100
	)
	lengths := workload.ShareGPTLengths(nReq, maxLen, OmegaSeed)

	serve := func(prompt, requests int) (float64, error) {
		w := assigner.Workload{GlobalBatch: batch, Prompt: prompt, Generate: generate}
		s, err := SpecFor(cluster, w)
		if err != nil {
			return 0, err
		}
		res, err := assigner.Optimize(s, nil)
		if err != nil {
			return 0, err
		}
		eng, err := runtime.NewEngine(s, res.Plan, nil)
		if err != nil {
			return 0, err
		}
		st, err := eng.Run()
		if err != nil {
			return 0, err
		}
		batches := (requests + batch - 1) / batch
		return st.LatencySec * float64(batches), nil
	}

	// Strategy A: one plan, every prompt padded to the global max.
	padAll, err := serve(maxLen, nReq)
	if err != nil {
		return nil, nil, err
	}

	// Strategy B: three length buckets, re-planned per bucket.
	bounds := []int{128, 512, maxLen}
	counts := make([]int, len(bounds))
	for _, l := range lengths {
		for bi, hi := range bounds {
			if l <= hi {
				counts[bi]++
				break
			}
		}
	}
	var bucketed float64
	for bi, hi := range bounds {
		if counts[bi] == 0 {
			continue
		}
		t, err := serve(hi, counts[bi])
		if err != nil {
			return nil, nil, err
		}
		bucketed += t
	}

	genTok := float64(nReq * generate)
	rows := []BucketRow{
		{Strategy: "pad-to-max (one plan)", Batches: (nReq + batch - 1) / batch, TotalSec: padAll, TokPerSec: genTok / padAll},
		{Strategy: "bucketed (plan per bucket)", Batches: sumBatches(counts, batch), TotalSec: bucketed, TokPerSec: genTok / bucketed},
	}
	t := &Table{
		ID: "ext-buckets", Title: "ShareGPT prompt-length bucketing (§2.1): pad-to-max vs per-bucket plans (cluster 3)",
		Header: []string{"Strategy", "Batches", "Total(s)", "Tok/s"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Strategy, fmt.Sprint(r.Batches), f(r.TotalSec, 1), f(r.TokPerSec, 2)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"%d requests, lengths p50=%d p99=%d; buckets ≤128/≤512/≤1024 hold %d/%d/%d requests",
		nReq, p50(lengths), p99(lengths), counts[0], counts[1], counts[2]))
	return t, rows, nil
}

func sumBatches(counts []int, batch int) int {
	total := 0
	for _, c := range counts {
		total += (c + batch - 1) / batch
	}
	return total
}

func p50(ls []int) int { return quantile(ls, 0.50) }
func p99(ls []int) int { return quantile(ls, 0.99) }

func quantile(ls []int, q float64) int {
	sorted := append([]int(nil), ls...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[int(q*float64(len(sorted)-1))]
}
