package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/assigner"
	"repro/internal/hardware"
	"repro/internal/indicator"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/quality"
	"repro/internal/quant"
)

// normalizeOmega rescales ω so a uniform INT4 assignment totals 1 — the
// paper's trick to "ensure that different indicators lead to similar
// inference latency, eliminating the influence of value range" (§6.5).
func normalizeOmega(o indicator.Omega) (indicator.Omega, error) {
	var total float64
	for l := 0; l < o.Layers(); l++ {
		w, err := o.At(l, 4)
		if err != nil {
			return indicator.Omega{}, err
		}
		total += w
	}
	if total <= 0 {
		return indicator.Omega{}, fmt.Errorf("experiments: degenerate omega")
	}
	out := indicator.Omega{Bits: o.Bits}
	for l := 0; l < o.Layers(); l++ {
		row := make([]float64, len(o.Bits))
		for bi := range o.Bits {
			row[bi] = o.Values[l][bi] / total
		}
		out.Values = append(out.Values, row)
	}
	return out, nil
}

// Table6Row is one indicator-comparison result.
type Table6Row struct {
	Method   string
	PPL      float64
	Overhead time.Duration
}

// Table6 reproduces the variance-indicator effectiveness study: plan the
// same memory-constrained serving problem with Random, Hessian-probe, and
// Variance sensitivities; apply each plan's bits to the REAL reference
// model and measure perplexity; record indicator-generation overhead.
func Table6() (*Table, []Table6Row, error) {
	cfg := nn.TinyOPT
	ref, err := quality.NewReference(cfg, OmegaSeed, 6, 48)
	if err != nil {
		return nil, nil, err
	}
	// Calibration pass for the variance indicator's activation statistics,
	// and calibration sequences for the Hessian probe.
	var calib [][]int
	for i := 0; i < 3; i++ {
		rng := rand.New(rand.NewSource(int64(i) + OmegaSeed))
		seq, err := ref.Model.Generate([]int{int(OmegaSeed) % cfg.Vocab, i + 1}, 32, 0.7, rng)
		if err != nil {
			return nil, nil, err
		}
		calib = append(calib, seq)
	}
	if err := ref.Model.CalibrateStats(calib[0]); err != nil {
		return nil, nil, err
	}

	start := time.Now()
	varOmega, err := indicator.Variance(ref.Model, Bits, quant.Deterministic)
	if err != nil {
		return nil, nil, err
	}
	varTime := time.Since(start)
	start = time.Now()
	hessOmega, err := indicator.Hessian(ref.Model, Bits, calib)
	if err != nil {
		return nil, nil, err
	}
	hessTime := time.Since(start)
	randOmega := indicator.Random(cfg.Layers, Bits, OmegaSeed)

	cluster := refClusterMB(2.2, 2.2)
	planCfg := refPlanConfig(cfg)
	work := assigner.Workload{GlobalBatch: 4, Prompt: 32, Generate: 16}

	var rows []Table6Row
	for _, c := range []struct {
		name     string
		omega    indicator.Omega
		overhead time.Duration
	}{
		{"Random", randOmega, 0},
		{"Hessian", hessOmega, hessTime},
		{"LLM-PQ (variance)", varOmega, varTime},
	} {
		norm, err := normalizeOmega(c.omega)
		if err != nil {
			return nil, nil, err
		}
		s := &assigner.Spec{
			Cfg: planCfg, Cluster: cluster, Work: work,
			Bits: Bits, Omega: norm, Theta: 0.5, Method: assigner.MethodDP,
		}
		res, err := assigner.Optimize(s, nil)
		if err != nil {
			return nil, nil, err
		}
		q, err := ref.Measure(res.Plan.LayerBits(cfg.Layers))
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, Table6Row{Method: c.name, PPL: q.PPL, Overhead: c.overhead})
	}
	t := &Table{
		ID: "table6", Title: "Effectiveness of the variance indicator (reference model, memory-tight cluster)",
		Header: []string{"Method", "PPL", "Overhead(s)", "Speedup vs Hessian"},
	}
	for _, r := range rows {
		sp := "-"
		if r.Overhead > 0 && r.Method != "Hessian" {
			sp = f(float64(rows[1].Overhead)/float64(r.Overhead), 1) + "x"
		}
		t.Rows = append(t.Rows, []string{r.Method, f(r.PPL, 3), f(r.Overhead.Seconds(), 4), sp})
	}
	t.Notes = append(t.Notes, "paper: variance matches Hessian PPL at 58-73x lower overhead; Random trails both")
	return t, rows, nil
}

// Table8Row is one optimizer-strategy measurement.
type Table8Row struct {
	Model      string
	Cluster    int
	Strategy   string
	Throughput float64
	Overhead   time.Duration
}

// Table8 reproduces the optimizer-expediting study: group=2, group=1 and
// the Algorithm 2 heuristic on clusters 3, 4, 6, 10 (the paper's 60 s ILP
// budget maps to our exact structured solver, which needs no budget).
func Table8() (*Table, []Table8Row, error) {
	var rows []Table8Row
	for _, cid := range []int{3, 4, 6, 10} {
		for _, strat := range []struct {
			name   string
			group  int
			method assigner.Method
		}{
			{"group=2", 2, assigner.MethodDP},
			{"group=1", 1, assigner.MethodDP},
			{"heuristic", 1, assigner.MethodHeuristic},
		} {
			s, err := SpecFor(cid, DefaultWork)
			if err != nil {
				return nil, nil, err
			}
			s.Group = strat.group
			s.Method = strat.method
			norm, err := normalizeOmega(indicator.Synthetic(s.Cfg, Bits, OmegaSeed))
			if err != nil {
				return nil, nil, err
			}
			s.Omega = assigner.GroupOmega(norm, strat.group)
			res, err := assigner.Optimize(s, nil)
			if err != nil {
				return nil, nil, err
			}
			out, err := execute(s, res.Plan, strat.name)
			if err != nil {
				return nil, nil, err
			}
			if out.OOM {
				return nil, nil, fmt.Errorf("experiments: unexpected OOM for %s on cluster %d", strat.name, cid)
			}
			rows = append(rows, Table8Row{
				Model: s.Cfg.Name, Cluster: cid, Strategy: strat.name,
				Throughput: out.Throughput, Overhead: res.Solve,
			})
		}
	}
	t := &Table{
		ID: "table8", Title: "Optimizer strategies: grouping and heuristic (throughput vs solve time)",
		Header: []string{"Model", "Cluster", "Strategy", "Tok/s", "Solve(s)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Model, fmt.Sprint(r.Cluster), r.Strategy, f(r.Throughput, 2), f(r.Overhead.Seconds(), 3)})
	}
	t.Notes = append(t.Notes, "group=1 explores the full space at higher solve cost; the heuristic is cheapest (Table 8 trade-off)")
	return t, rows, nil
}

// Fig8Row is one θ-sensitivity point.
type Fig8Row struct {
	Cluster    int
	Theta      float64
	Throughput float64
	PPL        float64
}

// Fig8 reproduces the θ sensitivity sweep on clusters 9 (OPT-30b) and 5
// (OPT-66b): larger θ weights quality over speed.
func Fig8() (*Table, []Fig8Row, error) {
	var rows []Fig8Row
	for _, cid := range []int{9, 5} {
		for _, theta := range []float64{0.01, 1, 100, 10000} {
			s, err := SpecFor(cid, DefaultWork)
			if err != nil {
				return nil, nil, err
			}
			s.Theta = theta
			res, err := assigner.Optimize(s, nil)
			if err != nil {
				return nil, nil, err
			}
			out, err := execute(s, res.Plan, "LLM-PQ")
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, Fig8Row{Cluster: cid, Theta: theta, Throughput: out.Throughput, PPL: out.PPL})
		}
	}
	t := &Table{
		ID: "fig8", Title: "Sensitivity to the quality scalar θ",
		Header: []string{"Cluster", "Theta", "Tok/s", "PPL"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{fmt.Sprint(r.Cluster), f(r.Theta, 2), f(r.Throughput, 2), f(r.PPL, 3)})
	}
	t.Notes = append(t.Notes, "larger θ → same or better PPL at same or lower throughput (Fig 8 trend)")
	return t, rows, nil
}

// Fig9Row compares LLM-PQ against pure adaptive quantization.
type Fig9Row struct {
	Cluster    int
	Scheme     string
	Throughput float64
}

// Fig9 reproduces the adabits comparison: clusters 3, 5, 6, 9 at s=512 and
// cluster 4 at s=128.
func Fig9() (*Table, []Fig9Row, error) {
	var rows []Fig9Row
	run := func(cid int, work assigner.Workload) error {
		for _, m := range []struct {
			name   string
			method assigner.Method
		}{{"adabits", assigner.MethodAdabits}, {"LLM-PQ", assigner.MethodDP}} {
			s, err := SpecFor(cid, work)
			if err != nil {
				return err
			}
			s.Method = m.method
			res, err := assigner.Optimize(s, nil)
			if err != nil {
				return err
			}
			out, err := execute(s, res.Plan, m.name)
			if err != nil {
				return err
			}
			rows = append(rows, Fig9Row{Cluster: cid, Scheme: m.name, Throughput: out.Throughput})
		}
		return nil
	}
	for _, cid := range []int{3, 5, 6, 9} {
		if err := run(cid, DefaultWork); err != nil {
			return nil, nil, err
		}
	}
	if err := run(4, ShortWork); err != nil {
		return nil, nil, err
	}
	t := &Table{
		ID: "fig9", Title: "LLM-PQ vs pure adaptive quantization (adabits)",
		Header: []string{"Cluster", "Scheme", "Tok/s"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{fmt.Sprint(r.Cluster), r.Scheme, f(r.Throughput, 2)})
	}
	t.Notes = append(t.Notes, "joint partition+quantization+micro-batch beats quantization-only in every case (Fig 9)")
	return t, rows, nil
}

// Table9 renders the per-cluster solver setup.
func Table9() *Table {
	t := &Table{
		ID: "table9", Title: "Solver setups per cluster",
		Header: []string{"Cluster", "Group", "Method", "Theta"},
	}
	for id := 1; id <= 11; id++ {
		s := SolverSetups[id]
		t.Rows = append(t.Rows, []string{fmt.Sprint(id), fmt.Sprint(s.Group), s.Method.String(), f(s.Theta, 0)})
	}
	return t
}

// Table10Row records plan-solving overhead.
type Table10Row struct {
	Cluster int
	Solve   time.Duration
}

// Table10 measures plan-solving overhead on every cluster.
func Table10() (*Table, []Table10Row, error) {
	var rows []Table10Row
	var total time.Duration
	var slowest time.Duration
	for id := 1; id <= 11; id++ {
		s, err := SpecFor(id, DefaultWork)
		if err != nil {
			return nil, nil, err
		}
		res, err := assigner.Optimize(s, nil)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, Table10Row{Cluster: id, Solve: res.Solve})
		total += res.Solve
		if res.Solve > slowest {
			slowest = res.Solve
		}
	}
	t := &Table{
		ID: "table10", Title: "Plan-solving overhead per cluster",
		Header: []string{"Cluster", "Solve(s)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{fmt.Sprint(r.Cluster), f(r.Solve.Seconds(), 3)})
	}
	t.Rows = append(t.Rows, []string{"AVG", f(total.Seconds()/float64(len(rows)), 3)})
	t.Rows = append(t.Rows, []string{"SLOWEST", f(slowest.Seconds(), 3)})
	return t, rows, nil
}

// refClusterMB builds a two-device reference-scale cluster with the given
// memory budgets in MEGABYTES (reference models are ~4MB).
func refClusterMB(memA, memB float64) hardware.Cluster {
	mk := func(name string, memMB, tflops, bw float64) hardware.GPU {
		return hardware.GPU{
			Name: name, MemoryGB: memMB / 1000, FP16TFLOPS: tflops, BandwidthGBs: bw,
			ComputeEff:       map[int]float64{3: 0.45, 4: 0.5, 8: 0.8, 16: 1.0},
			MemEff:           map[int]float64{3: 0.7, 4: 0.78, 8: 0.91, 16: 1.0},
			LaunchOverheadUS: 10,
		}
	}
	return hardware.Cluster{
		Name: "ref", InterNode: hardware.Eth800Gbps,
		Devices: []hardware.Device{
			{ID: 0, GPU: mk("ref-slow", memB, 10, 300), Node: 0},
			{ID: 1, GPU: mk("ref-fast", memA, 40, 600), Node: 1},
		},
	}
}

// refPlanConfig mirrors an nn.Config as planning metadata.
func refPlanConfig(c nn.Config) model.Config {
	return model.Config{
		Name: "reference", Family: model.OPT, Hidden: c.Hidden, FFN: c.FFN,
		Layers: c.Layers, Heads: c.Heads, VocabSize: c.Vocab, MaxPosEmb: c.MaxSeq, TiedEmbed: true,
	}
}
