package simclock

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	c := New()
	var order []int
	c.At(2.0, func() { order = append(order, 2) })
	c.At(1.0, func() { order = append(order, 1) })
	c.At(3.0, func() { order = append(order, 3) })
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order %v", order)
	}
	if c.Now() != 3.0 {
		t.Errorf("final time %.3f", c.Now())
	}
}

func TestTieBreakByInsertion(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.At(1.0, func() { order = append(order, i) })
	}
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	c := New()
	var hits []float64
	c.At(1.0, func() {
		hits = append(hits, c.Now())
		c.After(0.5, func() { hits = append(hits, c.Now()) })
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || hits[0] != 1.0 || hits[1] != 1.5 {
		t.Errorf("hits %v", hits)
	}
}

func TestErrors(t *testing.T) {
	c := New()
	c.At(1.0, func() {})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := c.At(0.5, func() {}); err == nil {
		t.Error("expected past-scheduling error")
	}
	if err := c.After(-1, func() {}); err == nil {
		t.Error("expected negative-delay error")
	}
	if err := c.At(2.0, nil); err == nil {
		t.Error("expected nil-callback error")
	}
}

func TestRunawayProtection(t *testing.T) {
	c := New()
	var loop func()
	loop = func() { c.After(0.001, loop) }
	c.After(0, loop)
	if err := c.Run(100); err == nil {
		t.Error("expected runaway error")
	}
	if c.Fired() != 100 {
		t.Errorf("fired %d, want 100", c.Fired())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		c := New()
		var ts []float64
		for i := 0; i < 10; i++ {
			d := float64(i%3) * 0.1
			c.At(d, func() { ts = append(ts, c.Now()) })
		}
		c.Run(0)
		return ts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic event times")
		}
	}
}
