// Package simclock is a deterministic discrete-event scheduler: a virtual
// clock plus a priority queue of callbacks. Ties in firing time are broken
// by insertion order, so a simulation run is reproducible byte-for-byte.
package simclock

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback.
type event struct {
	at    float64
	seq   uint64
	fire  func()
	index int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at < h[j].at {
		return true
	}
	if h[i].at > h[j].at {
		return false
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Clock is the simulation driver.
type Clock struct {
	now    float64
	seq    uint64
	events eventHeap
	fired  int
}

// New creates a clock at time zero.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Fired returns the number of events processed so far.
func (c *Clock) Fired() int { return c.fired }

// Pending returns the number of scheduled events not yet fired.
func (c *Clock) Pending() int { return len(c.events) }

// At schedules fn at absolute virtual time t (must not precede Now).
func (c *Clock) At(t float64, fn func()) error {
	if t < c.now {
		return fmt.Errorf("simclock: scheduling at %.9f before now %.9f", t, c.now)
	}
	if fn == nil {
		return fmt.Errorf("simclock: nil event callback")
	}
	c.seq++
	heap.Push(&c.events, &event{at: t, seq: c.seq, fire: fn})
	return nil
}

// After schedules fn delay seconds from now.
func (c *Clock) After(delay float64, fn func()) error {
	if delay < 0 {
		return fmt.Errorf("simclock: negative delay %.9f", delay)
	}
	return c.At(c.now+delay, fn)
}

// Run fires events in order until none remain or maxEvents is exceeded
// (0 = no limit). Returns an error on runaway simulations.
func (c *Clock) Run(maxEvents int) error {
	for len(c.events) > 0 {
		if maxEvents > 0 && c.fired >= maxEvents {
			return fmt.Errorf("simclock: exceeded %d events at t=%.6f (runaway simulation?)", maxEvents, c.now)
		}
		e := heap.Pop(&c.events).(*event)
		c.now = e.at
		c.fired++
		e.fire()
	}
	return nil
}
