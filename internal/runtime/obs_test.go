package runtime

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/assigner"
	"repro/internal/nn"
	"repro/internal/obs"
)

// TestEngineNilRegistryIsNoOp pins the acceptance contract: with no
// observability attached, Run produces byte-identical Stats to an
// instrumented run — instrumentation observes, it never perturbs.
func TestEngineNilRegistryIsNoOp(t *testing.T) {
	s := rtSpec(2.2, 1.4)
	p := planFor(t, s)

	plain, err := func() (Stats, error) {
		eng, err := NewEngine(s, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		return eng.Run()
	}()
	if err != nil {
		t.Fatal(err)
	}

	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Obs = obs.NewRegistry()
	eng.Spans = obs.NewSpanRecorder()
	instrumented, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}

	a := fmt.Sprintf("%+v", plain)
	b := fmt.Sprintf("%+v", instrumented)
	if a != b {
		t.Errorf("instrumentation changed Stats:\nnil obs:      %s\ninstrumented: %s", a, b)
	}
	if eng.Spans.Len() == 0 {
		t.Error("instrumented run recorded no spans")
	}
}

func TestEngineMetricsAndSpans(t *testing.T) {
	s := rtSpec(2.2, 1.4)
	p := planFor(t, s)
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rec := obs.NewSpanRecorder()
	eng.Obs = reg
	eng.Spans = rec
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	n := p.NumStages()

	// Per-stage busy histograms must exist for both phases, and their sums
	// must reproduce Stats.StageBusy (the same quantities, two sinks).
	for j := 0; j < n; j++ {
		sl := obs.L("stage", fmt.Sprint(j))
		pre := reg.Histogram(metricStageBusy, obs.TimeBuckets(), sl, obs.L("phase", "prefill"))
		dec := reg.Histogram(metricStageBusy, obs.TimeBuckets(), sl, obs.L("phase", "decode"))
		if pre.Count() == 0 || dec.Count() == 0 {
			t.Errorf("stage %d: busy histograms empty (prefill %d, decode %d)", j, pre.Count(), dec.Count())
		}
		got := pre.Sum() + dec.Sum()
		want := st.StageBusy[j]
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("stage %d: busy histogram sum %.9f != StageBusy %.9f", j, got, want)
		}
		if kv := reg.Gauge(metricStageKV, sl).Value(); kv <= 0 {
			t.Errorf("stage %d: KV reservation gauge %.3f", j, kv)
		}
	}
	if oom := reg.Counter(metricOOM).Value(); oom > 0 {
		t.Errorf("OOM counter %.0f on a feasible run", oom)
	}

	// Spans must cover every stage and both phases.
	stages := map[int]bool{}
	cats := map[string]bool{}
	for _, sp := range rec.Spans() {
		stages[sp.TID] = true
		cats[sp.Cat] = true
	}
	for j := 0; j < n; j++ {
		if !stages[j] {
			t.Errorf("no span recorded for stage %d", j)
		}
	}
	if !cats["prefill"] || !cats["decode"] {
		t.Errorf("span categories %v, want prefill and decode", cats)
	}
	if !cats["comm"] {
		t.Errorf("no comm spans recorded across a 2-node cluster")
	}

	// The text dump must carry the per-stage busy families.
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		metricStageBusy + `_bucket{phase="prefill",stage="0"`,
		metricStageBusy + `_bucket{phase="decode",stage="1"`,
		metricStageIdle, metricStageComm, metricStageKV,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
}

func TestEngineOOMCounter(t *testing.T) {
	s := rtSpec(0.4, 0.4)
	p := &assigner.Plan{
		Order: []int{0, 1}, Boundaries: []int{0, 4, 8},
		GroupBits: []int{16, 16, 16, 16, 16, 16, 16, 16},
		Group:     1, PrefillMB: 4, DecodeMB: 4,
	}
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	eng.Obs = reg
	if _, err := eng.Run(); err == nil {
		t.Fatal("expected OOM")
	}
	if got := reg.Counter(metricOOM).Value(); got < 1 {
		t.Errorf("OOM counter %.0f, want ≥1", got)
	}
}

// TestPipelineInstrumented runs the real goroutine pipeline with
// observability attached: tokens must match the uninstrumented run, and
// compute plus wait activity must land in metrics and spans. Under
// `make verify-race` this is the data-race gate for concurrent span and
// histogram writes.
func TestPipelineInstrumented(t *testing.T) {
	cfg := nn.Config{Vocab: 96, Hidden: 32, FFN: 128, Layers: 6, Heads: 4, MaxSeq: 40, SensitivitySlope: 1}
	bits := []int{16, 16, 8, 8, 16, 16}
	prompts := [][]int{{3, 14, 15}, {9, 2, 6, 5}, {31}}
	const steps = 8

	gen := func(instrument bool) ([][]int, *obs.Registry, *obs.SpanRecorder) {
		m, err := nn.New(cfg, 21)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := NewPipeline(m, []int{0, 2, 4, 6}, bits)
		if err != nil {
			t.Fatal(err)
		}
		var reg *obs.Registry
		var rec *obs.SpanRecorder
		if instrument {
			reg = obs.NewRegistry()
			rec = obs.NewSpanRecorder()
			pl.Instrument(reg, rec)
		}
		out, err := pl.Generate(prompts, steps)
		if err != nil {
			t.Fatal(err)
		}
		return out, reg, rec
	}

	want, _, _ := gen(false)
	got, reg, rec := gen(true)
	for r := range want {
		if len(got[r]) != len(want[r]) {
			t.Fatalf("request %d: instrumented length %d vs %d", r, len(got[r]), len(want[r]))
		}
		for i := range want[r] {
			if got[r][i] != want[r][i] {
				t.Fatalf("request %d: instrumentation changed tokens at %d", r, i)
			}
		}
	}

	for j := 0; j < 3; j++ {
		sl := obs.L("stage", fmt.Sprint(j))
		comp := reg.Histogram(metricPipeCompute, obs.TimeBuckets(), sl)
		if comp.Count() == 0 {
			t.Errorf("stage %d: no compute samples", j)
		}
		if reg.Histogram(metricPipeRecv, obs.TimeBuckets(), sl).Count() == 0 {
			t.Errorf("stage %d: no recv-wait samples", j)
		}
		if reg.Histogram(metricPipeSend, obs.TimeBuckets(), sl).Count() == 0 {
			t.Errorf("stage %d: no send-wait samples", j)
		}
	}
	cats := map[string]int{}
	for _, sp := range rec.Spans() {
		cats[sp.Cat]++
	}
	for _, want := range []string{"compute", "recv", "send"} {
		if cats[want] == 0 {
			t.Errorf("no %q spans recorded (got %v)", want, cats)
		}
	}
}
