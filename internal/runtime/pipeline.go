package runtime

import (
	"fmt"
	"sync"

	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// Pipeline runs the reference transformer across goroutine "workers", one
// per pipeline stage, with channels as the interconnect — a functional
// miniature of the paper's distributed runtime (§3, §5): the master engine
// does embedding lookup and logits post-processing, each worker owns a
// contiguous layer shard at its own mixed precision and its shard's KV
// cache, and activations stream between stages asynchronously.
type Pipeline struct {
	model      *nn.Model
	boundaries []int // len = stages+1, over layers
	stages     int
	// Optional observability (Instrument): wall-clock per-stage compute
	// and send/recv-wait histograms and spans.
	obs   *obs.Registry
	spans *obs.SpanRecorder
}

// NewPipeline shards a reference model at the given layer boundaries and
// applies the per-layer bit assignment.
func NewPipeline(m *nn.Model, boundaries []int, layerBits []int) (*Pipeline, error) {
	L := len(m.Layers)
	if len(boundaries) < 2 || boundaries[0] != 0 || boundaries[len(boundaries)-1] != L {
		return nil, fmt.Errorf("runtime: boundaries %v must span [0,%d]", boundaries, L)
	}
	for i := 1; i < len(boundaries); i++ {
		if boundaries[i] <= boundaries[i-1] {
			return nil, fmt.Errorf("runtime: non-increasing boundaries %v", boundaries)
		}
	}
	if len(layerBits) != L {
		return nil, fmt.Errorf("runtime: %d layer bits for %d layers", len(layerBits), L)
	}
	if err := m.ApplyBitAssignment(layerBits, quant.Deterministic, nil); err != nil {
		return nil, err
	}
	return &Pipeline{model: m, boundaries: boundaries, stages: len(boundaries) - 1}, nil
}

// Instrument attaches observability to the pipeline: reg (may be nil)
// receives per-stage compute and send/recv-wait histograms in wall-clock
// seconds; rec (may be nil) receives the matching spans, one trace row
// per stage. Call before Generate; with both nil the pipeline stays
// uninstrumented and its hot path is unchanged.
func (p *Pipeline) Instrument(reg *obs.Registry, rec *obs.SpanRecorder) {
	p.obs = reg
	p.spans = rec
}

// activation is the inter-stage message: hidden states of one request.
type activation struct {
	req int
	x   *tensor.Matrix
}

// Generate serves a batch of prompts, producing `n` tokens per prompt by
// greedy decoding. Requests are pipelined: while stage 2 decodes request A,
// stage 1 can process request B. Output is deterministic (greedy), so
// results are independent of goroutine scheduling.
func (p *Pipeline) Generate(prompts [][]int, n int) ([][]int, error) {
	if len(prompts) == 0 || n <= 0 {
		return nil, fmt.Errorf("runtime: need prompts and n>0")
	}
	R := len(prompts)
	// Per-request per-stage KV caches (indexed by absolute layer).
	caches := make([][]*nn.KVCache, R)
	lengths := make([]int, R)
	outputs := make([][]int, R)
	for r := range prompts {
		if len(prompts[r]) == 0 {
			return nil, fmt.Errorf("runtime: empty prompt %d", r)
		}
		caches[r] = make([]*nn.KVCache, p.stages)
		for j := 0; j < p.stages; j++ {
			caches[r][j] = p.model.NewCache()
		}
		outputs[r] = append([]int(nil), prompts[r]...)
	}

	// Channels between stages; master feeds chans[0], collects from done.
	chans := make([]chan activation, p.stages+1)
	for i := range chans {
		chans[i] = make(chan activation, R)
	}
	errCh := make(chan error, p.stages+1)
	var wg sync.WaitGroup
	var mu sync.Mutex // guards caches (each req visits stages in order, so per-req access is already serialized; mu protects the slice headers)
	po := newPipelineObs(p.obs, p.spans, p.stages)

	for j := 0; j < p.stages; j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(chans[j+1]) // always unwind the cascade
			lo, hi := p.boundaries[j], p.boundaries[j+1]
			for {
				t0 := po.since()
				act, ok := <-chans[j]
				if !ok {
					return
				}
				po.op("recv", j, act.req, t0)
				mu.Lock()
				cache := caches[act.req][j]
				mu.Unlock()
				c0 := po.since()
				out, err := p.model.ForwardRange(lo, hi, act.x, cache)
				if err != nil {
					errCh <- fmt.Errorf("stage %d: %w", j, err)
					return
				}
				po.op("compute", j, act.req, c0)
				s0 := po.since()
				chans[j+1] <- activation{req: act.req, x: out}
				po.op("send", j, act.req, s0)
			}
		}()
	}

	var closeInput sync.Once
	shutdown := func() { closeInput.Do(func() { close(chans[0]) }) }

	// Master: inject prefill for every request, then drive decode rounds.
	masterErr := func() error {
		defer shutdown()
		// Prefill all requests (pipelined).
		for r := 0; r < R; r++ {
			x, err := p.model.EmbedTokens(prompts[r], 0)
			if err != nil {
				return err
			}
			lengths[r] = len(prompts[r])
			chans[0] <- activation{req: r, x: x}
		}
		pending := R
		remaining := make([]int, R)
		for r := range remaining {
			remaining[r] = n
		}
		for pending > 0 {
			var act activation
			var ok bool
			select {
			case act, ok = <-chans[p.stages]:
				if !ok {
					return fmt.Errorf("runtime: pipeline closed early")
				}
			case err := <-errCh:
				return err
			}
			r := act.req
			logits, err := p.model.Logits(act.x)
			if err != nil {
				return err
			}
			tok := argmax(logits.Row(logits.Rows - 1))
			outputs[r] = append(outputs[r], tok)
			remaining[r]--
			if remaining[r] == 0 || lengths[r]+1 > p.model.Cfg.MaxSeq {
				pending--
				continue
			}
			x, err := p.model.EmbedTokens([]int{tok}, lengths[r])
			if err != nil {
				return err
			}
			lengths[r]++
			chans[0] <- activation{req: r, x: x}
		}
		return nil
	}()

	shutdown()
	// Drain the tail channel so workers never block while unwinding.
	go func() {
		for range chans[p.stages] {
		}
	}()
	wg.Wait()
	if masterErr != nil {
		return nil, masterErr
	}
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	return outputs, nil
}

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}
