package runtime

import (
	"testing"

	"repro/internal/loader"
)

func TestFailureRecoveryCompletesAllWork(t *testing.T) {
	s := rtSpec(2.2, 1.4)
	p := planFor(t, s)
	clean, err := func() (Stats, error) {
		eng, err := NewEngine(s, p, nil)
		if err != nil {
			return Stats{}, err
		}
		return eng.Run()
	}()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Failure = &FailureInjection{Stage: 1, AtSec: clean.LatencySec / 3, RecoverySec: 2.0}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Every token is still produced.
	if st.TokensOut != clean.TokensOut {
		t.Errorf("tokens after failure %d, want %d", st.TokensOut, clean.TokensOut)
	}
	// Latency grows by at least the outage, at most outage + a couple of
	// pipeline drains.
	if st.LatencySec < clean.LatencySec+2.0*0.9 {
		t.Errorf("failure should add ≥ recovery time: %.2fs vs clean %.2fs", st.LatencySec, clean.LatencySec)
	}
	if st.LatencySec > clean.LatencySec+2.0+clean.LatencySec {
		t.Errorf("failure overhead implausible: %.2fs vs clean %.2fs", st.LatencySec, clean.LatencySec)
	}
	if st.DowntimeSec != 2.0 {
		t.Errorf("downtime %.2f", st.DowntimeSec)
	}
}

func TestFailureDeterministic(t *testing.T) {
	s := rtSpec(2.2, 1.4)
	p := planFor(t, s)
	run := func() Stats {
		eng, _ := NewEngine(s, p, nil)
		eng.Failure = &FailureInjection{Stage: 0, AtSec: 0.5, RecoverySec: 1.0}
		st, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.LatencySec != b.LatencySec || a.Events != b.Events {
		t.Error("failure injection broke determinism")
	}
}

func TestFailureValidation(t *testing.T) {
	s := rtSpec(2.2, 1.4)
	p := planFor(t, s)
	eng, _ := NewEngine(s, p, nil)
	eng.Failure = &FailureInjection{Stage: 9, AtSec: 1, RecoverySec: 1}
	if _, err := eng.Run(); err == nil {
		t.Error("expected stage-range error")
	}
	eng.Failure = &FailureInjection{Stage: 0, AtSec: -1, RecoverySec: 1}
	if _, err := eng.Run(); err == nil {
		t.Error("expected timing error")
	}
}

func TestRecoveryTimeFromLoaderIsRealistic(t *testing.T) {
	// End-to-end §5 story: the recovery window injected into the runtime
	// comes from the loader's chunked-reload model, and a chunked reload
	// recovers much faster than a monolithic one.
	s := rtSpec(2.2, 1.4)
	p := planFor(t, s)
	var shard float64
	bits := p.StageLayerBits(s.Cfg.Layers)[1]
	for _, b := range bits {
		shard += s.Cfg.LayerWeightBytes(16) // FP16 on disk
		_ = b
	}
	chunked, err := loader.RecoveryTime(loader.DefaultResources, shard, 64e6)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := loader.Monolithic(loader.DefaultResources, shard)
	if err != nil {
		t.Fatal(err)
	}
	if chunked >= mono.LoadTime {
		t.Fatalf("chunked recovery %.2fs should beat monolithic %.2fs", chunked, mono.LoadTime)
	}
	eng, _ := NewEngine(s, p, nil)
	eng.Failure = &FailureInjection{Stage: 1, AtSec: 0.5, RecoverySec: chunked}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.TokensOut != s.Work.GlobalBatch*s.Work.Generate {
		t.Error("recovery run lost tokens")
	}
}
