package runtime

import (
	"fmt"
	"math"
	"strings"
)

// TaskSpan is one executed task interval, recorded when tracing is on.
type TaskSpan struct {
	Stage   int
	MB      int
	Round   int
	Prefill bool
	Start   float64
	End     float64
}

// RenderGantt draws the per-stage execution timeline as ASCII: 'P' marks
// prefill work, 'd' decode work, '·' idle. One row per stage, `width`
// character buckets across the run — the quickest way to SEE pipeline
// bubbles and stragglers.
func RenderGantt(spans []TaskSpan, stages int, horizon float64, width int) (string, error) {
	if stages <= 0 || width <= 0 {
		return "", fmt.Errorf("runtime: need stages>0 and width>0")
	}
	if horizon <= 0 {
		for _, s := range spans {
			if s.End > horizon {
				horizon = s.End
			}
		}
	}
	if horizon <= 0 {
		return "", fmt.Errorf("runtime: empty trace")
	}
	grid := make([][]rune, stages)
	for i := range grid {
		grid[i] = []rune(strings.Repeat("·", width))
	}
	for _, s := range spans {
		if s.Stage < 0 || s.Stage >= stages {
			return "", fmt.Errorf("runtime: span stage %d out of range", s.Stage)
		}
		lo := int(s.Start / horizon * float64(width))
		hi := int(math.Ceil(s.End / horizon * float64(width)))
		if hi > width {
			hi = width
		}
		if lo >= width {
			lo = width - 1
		}
		ch := 'd'
		if s.Prefill {
			ch = 'P'
		}
		for x := lo; x < hi; x++ {
			grid[s.Stage][x] = ch
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time → %.2fs (each cell ≈ %.3fs)\n", horizon, horizon/float64(width))
	for j := 0; j < stages; j++ {
		fmt.Fprintf(&b, "stage %d |%s|\n", j, string(grid[j]))
	}
	return b.String(), nil
}

// BusyFraction computes per-stage busy time from a trace over a horizon.
func BusyFraction(spans []TaskSpan, stages int, horizon float64) ([]float64, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("runtime: horizon must be positive")
	}
	busy := make([]float64, stages)
	for _, s := range spans {
		if s.Stage < 0 || s.Stage >= stages {
			return nil, fmt.Errorf("runtime: span stage %d out of range", s.Stage)
		}
		busy[s.Stage] += s.End - s.Start
	}
	for j := range busy {
		busy[j] /= horizon
	}
	return busy, nil
}
