// Package runtime executes inference plans. It provides two engines:
//
//   - Engine (this file): a deterministic discrete-event simulation of the
//     paper's distributed pipeline serving runtime — master engine,
//     per-stage workers, asynchronous inter-stage communication, KV-cache
//     reservation, micro-batch scheduling for both generation phases, and
//     OOM detection. All timing comes from the same hardware model the
//     profiler uses, so measured latencies play the role of the paper's
//     testbed measurements.
//
//   - Pipeline (pipeline.go): a real goroutine-per-stage pipeline running
//     the reference transformer, producing actual tokens — the functional
//     counterpart used to validate plan execution end to end.
//
// The engine also hosts the chaos fault model (internal/chaos): a
// schedule of stage crashes (transient or permanent device loss),
// compute stragglers, and slow interconnect hops, injected into the same
// event queue as the workload so fault runs stay byte-for-byte
// reproducible. A permanent loss halts the simulation and surfaces a
// DeviceLostError carrying the completed-token watermark; the
// self-healing replanner in internal/failover consumes it.
package runtime

import (
	"errors"
	"fmt"

	"repro/internal/assigner"
	"repro/internal/chaos"
	"repro/internal/costmodel"
	"repro/internal/obs"
	"repro/internal/profiler"
	"repro/internal/simclock"
)

// OOMError reports a stage whose reserved memory exceeds device capacity —
// the condition behind the missing baseline entries in Table 4.
type OOMError struct {
	Stage  int
	Device string
	NeedGB float64
	HaveGB float64
}

func (e *OOMError) Error() string {
	return fmt.Sprintf("runtime: OOM on stage %d (%s): needs %.1fGB, capacity %.1fGB",
		e.Stage, e.Device, e.NeedGB, e.HaveGB)
}

// DeviceLostError reports a permanent device loss (chaos.KindCrash with
// Permanent set): the simulation halted at AtSec with the pipeline
// incomplete. Watermark is the completed-token watermark — every request
// durably holds at least Watermark generated tokens — which is where the
// failover controller resumes the replanned pipeline (Engine.StartRound).
// Work in flight beyond the watermark is lost and re-executed after
// migration, exactly like a task lost to a transient crash.
type DeviceLostError struct {
	Stage  int // pipeline stage that died
	Device int // cluster device id serving that stage
	AtSec  float64
	// Watermark is the durable generated-token count per request (0 when
	// prefill had not completed).
	Watermark int
	// DurableTokens = GlobalBatch × Watermark, the tokens that survive.
	DurableTokens int
	// PrefillDone reports whether every prefill micro-batch had finished.
	PrefillDone bool
}

func (e *DeviceLostError) Error() string {
	return fmt.Sprintf("runtime: permanent device loss on stage %d (device %d) at %.3fs (watermark %d tokens/request)",
		e.Stage, e.Device, e.AtSec, e.Watermark)
}

// StageLostError is how an external control plane tells the engine that
// the worker serving a stage is permanently gone: returned from a
// StageTimer callback, it halts the run exactly like a chaos permanent
// crash — the engine freezes at the current virtual time and surfaces a
// DeviceLostError carrying the completed-token watermark, which the
// failover path consumes. internal/dist produces it when a worker's
// lease expires mid-call.
type StageLostError struct {
	Stage int
}

func (e *StageLostError) Error() string {
	return fmt.Sprintf("runtime: worker serving stage %d is lost", e.Stage)
}

// StageRestoreError is the inverse of StageLostError: an external
// control plane tells the engine that lost capacity has healed and a
// capacity-restoring replan is wanted. Returned from a StageTimer
// callback, it freezes the run at the current virtual time and surfaces
// a *RestoreHaltError carrying the completed-token watermark; the
// failover restore path re-solves on the re-expanded cluster and
// resumes from that watermark. internal/dist produces it when a
// rejoined worker's lease has held for the heal dwell.
type StageRestoreError struct{}

func (e *StageRestoreError) Error() string {
	return "runtime: healed capacity available; restore replan requested"
}

// RestoreHaltError reports a voluntary halt for a capacity-restoring
// replan: the pipeline is incomplete but nothing was lost — the run
// stopped at AtSec so the failover controller can re-expand the cluster
// and resume from Watermark. The fields mirror DeviceLostError; work in
// flight beyond the watermark is re-executed after migration.
type RestoreHaltError struct {
	AtSec float64
	// Watermark is the durable generated-token count per request (0 when
	// prefill had not completed).
	Watermark int
	// DurableTokens = GlobalBatch × Watermark, the tokens that survive.
	DurableTokens int
	// PrefillDone reports whether every prefill micro-batch had finished.
	PrefillDone bool
}

func (e *RestoreHaltError) Error() string {
	return fmt.Sprintf("runtime: restore replan halt at %.3fs (watermark %d tokens/request)",
		e.AtSec, e.Watermark)
}

// Stats summarizes one serving run.
type Stats struct {
	LatencySec  float64 // end-to-end batch latency
	PrefillSec  float64 // time until every request has its first token
	Throughput  float64 // generated tokens per second
	TokensOut   int
	StageBusy   []float64 // per-stage busy seconds
	StageMemGB  []float64 // per-stage reserved memory
	Utilization []float64 // busy / latency
	Events      int
	// DowntimeSec totals the injected transient-crash outages.
	DowntimeSec float64
	// LostTasks counts in-flight tasks killed by crash faults and
	// re-executed after recovery.
	LostTasks int
	// Trace holds per-task execution spans when Engine.Trace is set.
	Trace []TaskSpan
}

// FailureInjection makes one pipeline stage fail mid-run and come back
// after RecoverySec (the time to restream its shard through the §5
// on-the-fly loader — see internal/loader.RecoveryTime). The task running
// on the failed stage is lost and re-executed after recovery.
//
// Deprecated: FailureInjection is the legacy single-fault interface,
// kept as a shim over the chaos schedule; new code should set
// Engine.Chaos with a chaos.KindCrash fault instead.
type FailureInjection struct {
	Stage       int
	AtSec       float64
	RecoverySec float64
}

// schedule converts the legacy injection into a one-fault chaos schedule.
func (fi *FailureInjection) schedule() *chaos.Schedule {
	return &chaos.Schedule{Faults: []chaos.Fault{{
		Kind: chaos.KindCrash, Stage: fi.Stage, AtSec: fi.AtSec, RecoverySec: fi.RecoverySec,
	}}}
}

// Validate checks the injection against a plan, through the chaos
// schedule's validation (stage range, negative timings).
func (fi *FailureInjection) Validate(stages int) error {
	return fi.schedule().Validate(stages)
}

// Engine simulates plan execution on a cluster.
type Engine struct {
	Spec  *assigner.Spec
	Plan  *assigner.Plan
	Timer assigner.LayerTimer
	// Failure, when non-nil, injects a single stage outage.
	//
	// Deprecated: use Chaos; setting both is an error.
	Failure *FailureInjection
	// Chaos, when non-nil, injects the schedule's faults: concurrent
	// stage crashes (transient or permanent), compute stragglers, and
	// slow-link windows. KV-allocation faults are ignored here (they
	// target online serving). The schedule is validated against the
	// plan's stage count and its own horizon before the run starts.
	Chaos *chaos.Schedule
	// StageTimer, when non-nil, replaces the local per-task stage-time
	// computation (StageTime) — the distributed control plane's seam:
	// internal/dist's coordinator installs a callback that asks the
	// worker owning the stage to compute it remotely. The callback must
	// return exactly what StageTime would (it is a pure function, so a
	// faithful remote evaluation reproduces the single-process run
	// bit-for-bit). Returning a *StageLostError halts the run with a
	// watermarked *DeviceLostError; any other error aborts it.
	StageTimer func(stage, batch, round int, prefill bool) (float64, error)
	// StartRound resumes a pipeline from a completed-token watermark:
	// prefill is skipped and decode micro-batches are injected at this
	// round (tokens already held per request). 0 runs normally from
	// prefill. Used by the failover controller to resume on a degraded
	// plan after a permanent device loss.
	StartRound int
	// OnRoundCommit, when non-nil, fires each time the completed-token
	// watermark advances past StartRound: watermark is the decode round
	// every request durably holds (prefill completion commits round 1),
	// durableTokens = GlobalBatch × watermark is the cumulative token
	// count at that watermark, and runTokens is what this engine run has
	// generated so far. Called synchronously from the event loop in
	// virtual-time order — the distributed coordinator journals each
	// commit so a crashed control plane can restore the watermark
	// exactly.
	OnRoundCommit func(watermark, durableTokens, runTokens int)
	// RestoreAtSec, when positive, schedules a voluntary restore halt at
	// that virtual time: if the pipeline is still incomplete the run
	// freezes and returns a *RestoreHaltError, the simulation seam for
	// the failover controller's heal path (a healed device's dwell
	// expiring is a schedule-derived instant, so the halt — and every
	// artifact downstream of it — stays byte-deterministic). A run that
	// finishes first ignores it.
	RestoreAtSec float64
	// Trace records per-task execution spans into Stats.Trace (render with
	// RenderGantt).
	Trace bool
	// Obs, when non-nil, receives engine metrics: per-stage busy/idle/comm
	// histograms, KV reservation gauges, OOM/task counters, and the
	// llmpq_chaos_* fault families (DESIGN.md §8, §10). Nil keeps the hot
	// path allocation-free, so the uninstrumented simulation is
	// bit-for-bit unchanged.
	Obs *obs.Registry
	// Spans, when non-nil, records one simulated-time span per executed
	// task and inter-stage transfer; export with
	// (*obs.SpanRecorder).WriteChromeTrace.
	Spans *obs.SpanRecorder
}

// NewEngine validates inputs and builds an engine.
func NewEngine(spec *assigner.Spec, plan *assigner.Plan, timer assigner.LayerTimer) (*Engine, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := plan.Validate(spec); err != nil {
		return nil, err
	}
	if timer == nil {
		timer = assigner.ProfilerTimer{}
	}
	return &Engine{Spec: spec, Plan: plan, Timer: timer}, nil
}

// schedule resolves the effective chaos schedule (nil = fault-free).
func (e *Engine) schedule() (*chaos.Schedule, error) {
	if e.Chaos != nil && e.Failure != nil {
		return nil, fmt.Errorf("runtime: both Chaos and the deprecated Failure are set; use Chaos")
	}
	if e.Chaos != nil {
		return e.Chaos, nil
	}
	if e.Failure != nil {
		return e.Failure.schedule(), nil
	}
	return nil, nil
}

type task struct {
	mb      int // micro-batch index
	batch   int // requests in this micro-batch
	prefill bool
	round   int // decode round (tokens already held per request)
}

type stage struct {
	device    int
	layerBits []int
	queue     []task
	busy      bool
	busyTime  float64
	// epoch increments when the stage fails; completions from an older
	// epoch are discarded and their task re-queued (the work was lost).
	epoch int
	// downCount tracks overlapping crash faults; the stage serves only
	// while it is zero.
	downCount int
	cur       task
	// lastEnd is when the previous task completed (idle-gap accounting).
	lastEnd float64
}

// Run simulates the full offline task and returns measured statistics.
// A permanent device loss in the chaos schedule halts the run and
// returns a *DeviceLostError (unless the pipeline had already finished).
func (e *Engine) Run() (Stats, error) {
	s := e.Spec
	p := e.Plan
	n := p.NumStages()
	stages := make([]*stage, n)
	stageBits := p.StageLayerBits(s.Cfg.Layers)
	maxSeq := s.Work.Prompt + s.Work.Generate

	sched, err := e.schedule()
	if err != nil {
		return Stats{}, err
	}
	if err := sched.Validate(n); err != nil {
		return Stats{}, err
	}
	if e.StartRound < 0 || (e.StartRound > 0 && e.StartRound >= s.Work.Generate) {
		return Stats{}, fmt.Errorf("runtime: start round %d outside [0,%d)", e.StartRound, s.Work.Generate)
	}
	if e.RestoreAtSec < 0 {
		return Stats{}, fmt.Errorf("runtime: negative restore time %g", e.RestoreAtSec)
	}

	var stats Stats
	stats.StageMemGB = make([]float64, n)
	eo := newEngineObs(e.Obs, n)
	// Startup: load shards, reserve KV, detect OOM.
	for j := 0; j < n; j++ {
		d := p.Order[j]
		dev := s.Cluster.Devices[d]
		stages[j] = &stage{device: d, layerBits: stageBits[j]}
		in := costmodel.MemoryInput{
			Cfg: s.Cfg, LayerBits: stageBits[j], GlobalBatch: s.Work.GlobalBatch,
			MaxSeq: maxSeq, MicroBatch: p.PrefillMB, PromptLen: s.Work.Prompt,
			First: j == 0, Last: j == n-1, KVBits: s.KVBits,
		}
		br, err := costmodel.StageMemory(in)
		if err != nil {
			return Stats{}, err
		}
		stats.StageMemGB[j] = br.Total / 1e9
		eo.reserve(j, br.Total/1e9)
		if br.Total > dev.GPU.MemoryBytes() {
			eo.oomHit()
			return Stats{}, &OOMError{Stage: j, Device: dev.GPU.Name, NeedGB: br.Total / 1e9, HaveGB: dev.GPU.MemoryGB}
		}
	}

	clk := simclock.New()
	B := s.Work.GlobalBatch
	kp := (B + p.PrefillMB - 1) / p.PrefillMB
	kd := (B + p.DecodeMB - 1) / p.DecodeMB

	prefillDone := 0
	decodeDone := 0
	tokens := 0
	var prefillEnd float64
	var workDoneAt float64
	// rounds[mb] is the durable token count of decode micro-batch mb —
	// the completed-token watermark is their minimum.
	rounds := make([]int, kd)
	resumed := e.StartRound > 0
	if resumed {
		for m := range rounds {
			rounds[m] = e.StartRound
		}
	}
	// committed is the last watermark reported through OnRoundCommit; it
	// starts at the resume point so a resumed run reports only the
	// progress it makes itself.
	committed := e.StartRound
	commitRound := func() {
		if e.OnRoundCommit == nil {
			return
		}
		w := rounds[0]
		for _, r := range rounds[1:] {
			if r < w {
				w = r
			}
		}
		if w > committed {
			committed = w
			e.OnRoundCommit(w, B*w, tokens)
		}
	}
	// halted is set by a permanent device loss: every pending callback
	// becomes a no-op so the event queue drains without scheduling more
	// work, freezing the simulation at the loss instant.
	halted := false
	var lost *DeviceLostError
	var restore *RestoreHaltError
	var simErr error
	fail := func(err error) {
		if simErr == nil {
			simErr = err
		}
	}
	workComplete := func() bool {
		if s.Work.Generate > 1 {
			return decodeDone == kd
		}
		return prefillDone == kp
	}

	var dispatch func(j int)
	arrive := func(j int, t task) {
		if halted {
			return
		}
		stages[j].queue = append(stages[j].queue, t)
		dispatch(j)
	}

	// Completion at the last stage.
	finish := func(t task) {
		if t.prefill {
			prefillDone++
			tokens += t.batch // first token comes out of prefill
			if prefillDone == kp {
				prefillEnd = clk.Now()
				for m := range rounds {
					rounds[m] = 1
				}
				commitRound()
				if workComplete() {
					workDoneAt = clk.Now()
				}
				// Master regroups into decode micro-batches (hybrid
				// micro-batch sizing, §3). One return hop to the master.
				if s.Work.Generate > 1 {
					ret := e.commTime(p.Order[n-1], p.Order[0], p.DecodeMB, 1) * sched.CommMult(n-1, clk.Now())
					for m := 0; m < kd; m++ {
						mb := m
						if err := clk.After(ret, func() {
							arrive(0, task{mb: mb, batch: e.decodeBatch(mb, kd), round: 1})
						}); err != nil {
							fail(err)
						}
					}
				}
			}
			return
		}
		tokens += t.batch
		rounds[t.mb] = t.round + 1
		commitRound()
		if t.round+1 < s.Work.Generate {
			ret := e.commTime(p.Order[n-1], p.Order[0], p.DecodeMB, 1) * sched.CommMult(n-1, clk.Now())
			next := task{mb: t.mb, batch: t.batch, round: t.round + 1}
			if err := clk.After(ret, func() { arrive(0, next) }); err != nil {
				fail(err)
			}
		} else {
			decodeDone++
			if workComplete() {
				workDoneAt = clk.Now()
			}
		}
	}

	dispatch = func(j int) {
		st := stages[j]
		if halted || st.busy || st.downCount > 0 || len(st.queue) == 0 {
			return
		}
		t := st.queue[0]
		st.queue = st.queue[1:]
		st.busy = true
		st.cur = t
		var dur float64
		var err error
		if e.StageTimer != nil {
			dur, err = e.StageTimer(j, t.batch, t.round, t.prefill)
		} else {
			dur, err = e.stageTime(j, t)
		}
		if err != nil {
			var sl *StageLostError
			if errors.As(err, &sl) {
				// The control plane lost this stage's worker: freeze the
				// simulation here, exactly like a chaos permanent crash.
				// The dispatched task had not started — it is part of the
				// work the watermark resume re-executes.
				halted = true
				lost = &DeviceLostError{Stage: j, Device: p.Order[j], AtSec: clk.Now()}
				eo.deviceLost(j)
				return
			}
			var sr *StageRestoreError
			if errors.As(err, &sr) {
				// Healed capacity is ready: freeze voluntarily so the
				// failover restore path can re-expand the cluster. The
				// dispatched task is re-executed after the resume.
				halted = true
				restore = &RestoreHaltError{AtSec: clk.Now()}
				return
			}
			fail(err)
			return
		}
		dur *= sched.ComputeMult(j, clk.Now())
		st.busyTime += dur
		epoch := st.epoch
		startAt := clk.Now()
		eo.idleGap(j, startAt-st.lastEnd)
		if err := clk.After(dur, func() {
			if halted || st.epoch != epoch {
				// The stage failed (or the run halted) while this task ran:
				// the work is lost; on a transient failure it was already
				// re-queued by the failure handler.
				return
			}
			end := clk.Now()
			if e.Trace {
				stats.Trace = append(stats.Trace, TaskSpan{
					Stage: j, MB: t.mb, Round: t.round, Prefill: t.prefill,
					Start: startAt, End: end,
				})
			}
			eo.taskDone(j, t.prefill, end-startAt)
			recordTaskSpan(e.Spans, j, t, startAt, end)
			st.lastEnd = end
			st.busy = false
			if j < n-1 {
				var comm float64
				if t.prefill {
					comm = e.commTime(p.Order[j], p.Order[j+1], t.batch, s.Work.Prompt)
				} else {
					comm = e.commTime(p.Order[j], p.Order[j+1], t.batch, 1)
				}
				comm *= sched.CommMult(j, end)
				eo.commHop(j, comm)
				recordCommSpan(e.Spans, j, t, end, comm)
				tt := t
				if err := clk.After(comm, func() { arrive(j+1, tt) }); err != nil {
					fail(err)
				}
			} else {
				finish(t)
			}
			dispatch(j)
		}); err != nil {
			fail(err)
		}
	}

	// Fault injection: every crash in the schedule lands in the same
	// event queue as the workload (§5 recovery path; DESIGN.md §10).
	// Straggler and slow-link faults act through the multipliers applied
	// at dispatch/transfer time; KV-allocation faults are online-serving
	// only and ignored here.
	if sched != nil {
		for _, f := range sched.Faults {
			if f.Kind != chaos.KindCrash {
				eo.faultInjected(f.Kind)
				continue
			}
			f := f
			st := stages[f.Stage]
			if err := clk.At(f.AtSec, func() {
				if halted {
					return
				}
				eo.faultInjected(f.Kind)
				st.downCount++
				st.epoch++
				if st.busy {
					// The in-flight task is lost; put it back at the head.
					st.queue = append([]task{st.cur}, st.queue...)
					st.busy = false
					stats.LostTasks++
					eo.taskLost(f.Stage)
				}
				if f.Permanent {
					halted = true
					lost = &DeviceLostError{
						Stage: f.Stage, Device: p.Order[f.Stage], AtSec: clk.Now(),
					}
					eo.deviceLost(f.Stage)
				}
			}); err != nil {
				return Stats{}, err
			}
			if f.Permanent {
				continue
			}
			if err := clk.At(f.AtSec+f.RecoverySec, func() {
				if halted {
					return
				}
				st.downCount--
				if st.downCount == 0 {
					dispatch(f.Stage)
				}
			}); err != nil {
				return Stats{}, err
			}
			stats.DowntimeSec += f.RecoverySec
			eo.downtime(f.Stage, f.RecoverySec)
		}
	}

	// A scheduled restore halt shares the event queue with the workload
	// and the chaos faults; it only acts while the pipeline is live and
	// incomplete, so a run that drains first is untouched.
	if e.RestoreAtSec > 0 {
		if err := clk.At(e.RestoreAtSec, func() {
			if halted || workComplete() {
				return
			}
			halted = true
			restore = &RestoreHaltError{AtSec: clk.Now()}
		}); err != nil {
			return Stats{}, err
		}
	}

	// Kick off. A resumed run (StartRound > 0) skips prefill: the master
	// re-injects decode micro-batches at the watermark round, modelling
	// restart from migrated KV state.
	if resumed {
		for m := 0; m < kd; m++ {
			mb := m
			if err := clk.At(0, func() {
				arrive(0, task{mb: mb, batch: e.decodeBatch(mb, kd), round: e.StartRound})
			}); err != nil {
				return Stats{}, err
			}
		}
		prefillDone = kp
	} else {
		// Master embeds and injects prefill micro-batches.
		for m := 0; m < kp; m++ {
			mb := m
			batch := p.PrefillMB
			if mb == kp-1 {
				batch = B - p.PrefillMB*(kp-1)
			}
			if err := clk.At(0, func() { arrive(0, task{mb: mb, batch: batch, prefill: true}) }); err != nil {
				return Stats{}, err
			}
		}
	}

	if err := clk.Run(20_000_000); err != nil {
		return Stats{}, err
	}
	if simErr != nil {
		return Stats{}, simErr
	}
	if lost != nil && !workComplete() {
		// Permanent device loss with the pipeline incomplete: report the
		// watermark so the failover controller can resume a degraded plan.
		lost.PrefillDone = prefillDone == kp
		if lost.PrefillDone {
			w := rounds[0]
			for _, r := range rounds[1:] {
				if r < w {
					w = r
				}
			}
			lost.Watermark = w
		}
		lost.DurableTokens = B * lost.Watermark
		return Stats{}, lost
	}
	if restore != nil && !workComplete() {
		// Voluntary restore halt: report the watermark so the failover
		// controller can resume on the re-expanded cluster.
		restore.PrefillDone = prefillDone == kp
		if restore.PrefillDone {
			w := rounds[0]
			for _, r := range rounds[1:] {
				if r < w {
					w = r
				}
			}
			restore.Watermark = w
		}
		restore.DurableTokens = B * restore.Watermark
		return Stats{}, restore
	}
	if s.Work.Generate > 1 && decodeDone != kd {
		return Stats{}, fmt.Errorf("runtime: simulation ended with %d/%d decode micro-batches complete", decodeDone, kd)
	}

	// A fault scheduled past the pipeline's completion leaves trailing
	// events on the clock; latency is when the work finished, not when
	// the last moot fault event fired.
	stats.LatencySec = workDoneAt
	stats.PrefillSec = prefillEnd
	stats.TokensOut = tokens
	stats.Throughput = float64(stats.TokensOut) / stats.LatencySec
	stats.Events = clk.Fired()
	stats.StageBusy = make([]float64, n)
	stats.Utilization = make([]float64, n)
	for j, st := range stages {
		stats.StageBusy[j] = st.busyTime
		stats.Utilization[j] = st.busyTime / stats.LatencySec
	}
	eo.finish(stats.LatencySec, stats.Events)
	return stats, nil
}

// stageTime computes the execution time of one task on stage j.
func (e *Engine) stageTime(j int, t task) (float64, error) {
	return StageTime(e.Spec, e.Plan, e.Timer, j, t.batch, t.round, t.prefill)
}

// StageTime computes the simulated execution time of one pipeline task on
// stage `stage` under a plan: the sum of the stage's layers at their
// assigned precisions, plus master pre/post-processing on the first
// stage. round is the decode round (tokens already held per request;
// ignored when prefill is set). A nil timer uses the profiler-backed
// default. The result is a pure function of its arguments — the property
// the distributed control plane relies on: a worker given the same spec
// and plan computes bit-identical times remotely (DESIGN.md §11), so a
// multi-process run reproduces the single-process engine exactly.
func StageTime(s *assigner.Spec, p *assigner.Plan, timer assigner.LayerTimer, stage, batch, round int, prefill bool) (float64, error) {
	if timer == nil {
		timer = assigner.ProfilerTimer{}
	}
	if stage < 0 || stage >= p.NumStages() {
		return 0, fmt.Errorf("runtime: stage %d out of [0,%d)", stage, p.NumStages())
	}
	d := p.Order[stage]
	gpu := s.Cluster.Devices[d].GPU
	var total float64
	bits := p.StageLayerBits(s.Cfg.Layers)[stage]
	for _, b := range bits {
		var w profiler.Workload
		if prefill {
			w = profiler.Workload{Batch: batch, Prompt: s.Work.Prompt, Prefill: true, Bits: b, KV: s.KVBits}
		} else {
			ctx := s.Work.Prompt + round
			w = profiler.Workload{Batch: batch, Prompt: s.Work.Prompt, Context: ctx, Bits: b, KV: s.KVBits}
		}
		lt, err := timer.Layer(gpu, s.Cfg, w)
		if err != nil {
			return 0, err
		}
		total += lt
	}
	if stage == 0 {
		tokens := 1
		if prefill {
			tokens = s.Work.Prompt
		}
		et, err := profiler.EmbedTime(gpu, s.Cfg, batch, tokens)
		if err != nil {
			return 0, err
		}
		total += et
	}
	return total, nil
}

// commTime is the transfer time of a micro-batch's activations between two
// devices.
func (e *Engine) commTime(from, to, batch, tokens int) float64 {
	s := e.Spec
	if from == to {
		return 0
	}
	link := s.Cluster.LinkBetween(s.Cluster.Devices[from], s.Cluster.Devices[to])
	bytes := float64(batch) * float64(tokens) * float64(s.Cfg.Hidden) * 2
	return link.TransferTime(bytes)
}

// decodeBatch sizes decode micro-batch m of kd.
func (e *Engine) decodeBatch(m, kd int) int {
	B := e.Spec.Work.GlobalBatch
	mb := e.Plan.DecodeMB
	if m == kd-1 {
		return B - mb*(kd-1)
	}
	return mb
}
