package runtime

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/assigner"
	"repro/internal/chaos"
	"repro/internal/obs"
)

// chaosBaseline plans the standard two-device test workload and runs it
// fault-free, returning the spec, plan, and clean stats.
func chaosBaseline(t *testing.T) (*assigner.Spec, *assigner.Plan, Stats) {
	t.Helper()
	s := rtSpec(2.2, 1.4)
	p := planFor(t, s)
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return s, p, clean
}

// TestChaosOverlappingCrashes injects overlapping transient crashes on
// both stages: the run must still produce every token, accumulate both
// outages, and lose at least one in-flight task.
func TestChaosOverlappingCrashes(t *testing.T) {
	s, p, clean := chaosBaseline(t)
	mid := clean.LatencySec * 0.4
	sched := &chaos.Schedule{Faults: []chaos.Fault{
		{Kind: chaos.KindCrash, Stage: 0, AtSec: mid, RecoverySec: 0.05},
		{Kind: chaos.KindCrash, Stage: 1, AtSec: mid * 1.1, RecoverySec: 0.04},
	}}
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Chaos = sched
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.TokensOut != clean.TokensOut {
		t.Errorf("tokens %d, want %d", st.TokensOut, clean.TokensOut)
	}
	if st.LatencySec <= clean.LatencySec {
		t.Errorf("latency %.4f not above clean %.4f", st.LatencySec, clean.LatencySec)
	}
	if want := 0.05 + 0.04; st.DowntimeSec < want-1e-9 || st.DowntimeSec > want+1e-9 {
		t.Errorf("downtime %.4f, want %.4f", st.DowntimeSec, want)
	}
	if st.LostTasks < 1 {
		t.Errorf("lost tasks %d, want >= 1", st.LostTasks)
	}
}

// TestChaosStragglerPlusCrashSameStage overlaps a straggler window with a
// crash on the same stage; work must still complete, slower than either
// the clean run or the crash alone.
func TestChaosStragglerPlusCrashSameStage(t *testing.T) {
	s, p, clean := chaosBaseline(t)
	mid := clean.LatencySec * 0.3
	crashOnly := &chaos.Schedule{Faults: []chaos.Fault{
		{Kind: chaos.KindCrash, Stage: 0, AtSec: mid, RecoverySec: 0.05},
	}}
	both := &chaos.Schedule{Faults: []chaos.Fault{
		{Kind: chaos.KindCrash, Stage: 0, AtSec: mid, RecoverySec: 0.05},
		{Kind: chaos.KindStraggler, Stage: 0, AtSec: mid * 0.5, Factor: 3, DurationSec: clean.LatencySec},
	}}
	run := func(sched *chaos.Schedule) Stats {
		eng, err := NewEngine(s, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		eng.Chaos = sched
		st, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a := run(crashOnly)
	b := run(both)
	if a.TokensOut != clean.TokensOut || b.TokensOut != clean.TokensOut {
		t.Fatalf("tokens %d / %d, want %d", a.TokensOut, b.TokensOut, clean.TokensOut)
	}
	if b.LatencySec <= a.LatencySec {
		t.Errorf("straggler+crash latency %.4f not above crash-only %.4f", b.LatencySec, a.LatencySec)
	}
}

// TestChaosSlowLink stretches the interconnect hop out of stage 0 and
// expects a slower but complete run.
func TestChaosSlowLink(t *testing.T) {
	s, p, clean := chaosBaseline(t)
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Chaos = &chaos.Schedule{Faults: []chaos.Fault{
		{Kind: chaos.KindSlowLink, Stage: 0, AtSec: 0, Factor: 50, DurationSec: clean.LatencySec * 2},
	}}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.TokensOut != clean.TokensOut {
		t.Errorf("tokens %d, want %d", st.TokensOut, clean.TokensOut)
	}
	if st.LatencySec <= clean.LatencySec {
		t.Errorf("slow-link latency %.4f not above clean %.4f", st.LatencySec, clean.LatencySec)
	}
}

// TestChaosDeterministicAcrossParallelism proves the -chaos-seed
// contract end to end: the same profile seed yields byte-identical Stats
// whether the plan was searched serially or on 4 or 8 workers.
func TestChaosDeterministicAcrossParallelism(t *testing.T) {
	var ref *Stats
	for _, par := range []int{1, 4, 8} {
		s := rtSpec(2.2, 1.4)
		s.Parallelism = par
		p := planFor(t, s)
		sched, err := chaos.New(chaos.ProfileMixed, 1234, p.NumStages(), 1.0)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(s, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		eng.Chaos = sched
		st, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = &st
			continue
		}
		if !reflect.DeepEqual(*ref, st) {
			t.Errorf("parallelism %d changed chaos stats:\nref: %+v\ngot: %+v", par, *ref, st)
		}
	}
}

// TestChaosPermanentLossHalts checks the DeviceLostError contract: the
// watermark is consistent with durable tokens, and the error fires only
// when work was actually incomplete.
func TestChaosPermanentLossHalts(t *testing.T) {
	s, p, clean := chaosBaseline(t)
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	eng.Obs = reg
	eng.Chaos = &chaos.Schedule{Faults: []chaos.Fault{
		{Kind: chaos.KindCrash, Stage: 1, AtSec: clean.LatencySec * 0.6, Permanent: true},
	}}
	_, err = eng.Run()
	var lost *DeviceLostError
	if !errors.As(err, &lost) {
		t.Fatalf("want DeviceLostError, got %v", err)
	}
	if lost.Stage != 1 {
		t.Errorf("lost stage %d, want 1", lost.Stage)
	}
	if lost.Device != p.Order[1] {
		t.Errorf("lost device %d, want %d", lost.Device, p.Order[1])
	}
	if !lost.PrefillDone || lost.Watermark < 1 || lost.Watermark >= s.Work.Generate {
		t.Errorf("watermark %d (prefill done %v) implausible at 60%% of the run", lost.Watermark, lost.PrefillDone)
	}
	if lost.DurableTokens != s.Work.GlobalBatch*lost.Watermark {
		t.Errorf("durable tokens %d, want %d", lost.DurableTokens, s.Work.GlobalBatch*lost.Watermark)
	}
	if !strings.Contains(lost.Error(), "permanent device loss") {
		t.Errorf("error text %q", lost.Error())
	}
	if got := reg.Counter("llmpq_chaos_device_lost_total", obs.L("stage", "1")).Value(); got != 1 {
		t.Errorf("device-lost counter %.0f, want 1", got)
	}

	// The same fault scheduled past completion must be ignored.
	eng2, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng2.Chaos = &chaos.Schedule{Faults: []chaos.Fault{
		{Kind: chaos.KindCrash, Stage: 1, AtSec: clean.LatencySec * 3, Permanent: true},
	}}
	st, err := eng2.Run()
	if err != nil {
		t.Fatalf("post-completion fault must not fail the run: %v", err)
	}
	if st.TokensOut != clean.TokensOut || st.LatencySec != clean.LatencySec {
		t.Errorf("trailing fault changed stats: %+v vs clean %+v", st, clean)
	}
}

// TestChaosResumeFromWatermark runs the loss + resume pair by hand and
// checks token conservation: durable tokens plus the resumed run's
// output must equal the clean total.
func TestChaosResumeFromWatermark(t *testing.T) {
	s, p, clean := chaosBaseline(t)
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Chaos = &chaos.Schedule{Faults: []chaos.Fault{
		{Kind: chaos.KindCrash, Stage: 0, AtSec: clean.LatencySec * 0.7, Permanent: true},
	}}
	_, err = eng.Run()
	var lost *DeviceLostError
	if !errors.As(err, &lost) {
		t.Fatalf("want DeviceLostError, got %v", err)
	}
	resumed, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	resumed.StartRound = lost.Watermark
	st, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := lost.DurableTokens + st.TokensOut; got != clean.TokensOut {
		t.Errorf("durable %d + resumed %d = %d, want %d", lost.DurableTokens, st.TokensOut, got, clean.TokensOut)
	}
	if st.PrefillSec != 0 {
		t.Errorf("resumed run must skip prefill, got PrefillSec %.4f", st.PrefillSec)
	}
}

// TestChaosEngineValidation covers the configuration error paths.
func TestChaosEngineValidation(t *testing.T) {
	s, p, _ := chaosBaseline(t)
	mk := func() *Engine {
		eng, err := NewEngine(s, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	eng := mk()
	eng.Failure = &FailureInjection{Stage: 0, AtSec: 0.1, RecoverySec: 0.1}
	eng.Chaos = &chaos.Schedule{}
	if _, err := eng.Run(); err == nil || !strings.Contains(err.Error(), "both Chaos and the deprecated Failure") {
		t.Errorf("both-set error missing, got %v", err)
	}
	eng = mk()
	eng.Chaos = &chaos.Schedule{Faults: []chaos.Fault{{Kind: chaos.KindCrash, Stage: 5, AtSec: 0.1}}}
	if _, err := eng.Run(); err == nil || !strings.Contains(err.Error(), "out of [0,") {
		t.Errorf("stage-range error missing, got %v", err)
	}
	eng = mk()
	eng.Chaos = &chaos.Schedule{HorizonSec: 0.2, Faults: []chaos.Fault{{Kind: chaos.KindCrash, Stage: 0, AtSec: 1}}}
	if _, err := eng.Run(); err == nil || !strings.Contains(err.Error(), "beyond the") {
		t.Errorf("horizon error missing, got %v", err)
	}
	eng = mk()
	eng.Chaos = &chaos.Schedule{Faults: []chaos.Fault{{Kind: chaos.KindCrash, Stage: 0, AtSec: 0.1, RecoverySec: -1}}}
	if _, err := eng.Run(); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("negative-recovery error missing, got %v", err)
	}
	eng = mk()
	eng.StartRound = -1
	if _, err := eng.Run(); err == nil || !strings.Contains(err.Error(), "start round") {
		t.Errorf("negative start-round error missing, got %v", err)
	}
	eng = mk()
	eng.StartRound = s.Work.Generate
	if _, err := eng.Run(); err == nil || !strings.Contains(err.Error(), "start round") {
		t.Errorf("overflow start-round error missing, got %v", err)
	}
}

// TestChaosKVFaultIgnoredByEngine: KV-allocation faults target online
// serving; the offline engine must run unchanged (aside from the
// injected-fault counter).
func TestChaosKVFaultIgnoredByEngine(t *testing.T) {
	s, p, clean := chaosBaseline(t)
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Chaos = &chaos.Schedule{Faults: []chaos.Fault{
		{Kind: chaos.KindKVAlloc, AtSec: 0, Factor: 0.9, DurationSec: 10},
	}}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.TokensOut != clean.TokensOut || st.LatencySec != clean.LatencySec {
		t.Errorf("KV fault changed the offline run: %+v vs %+v", st, clean)
	}
}
