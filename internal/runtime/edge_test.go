package runtime

import (
	"testing"

	"repro/internal/assigner"
)

func TestEngineGenerateOne(t *testing.T) {
	// n=1: every token comes out of prefill; no decode rounds at all.
	s := rtSpec(2.2, 1.4)
	s.Work.Generate = 1
	p := planFor(t, s)
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.TokensOut != s.Work.GlobalBatch {
		t.Errorf("tokens %d, want %d (one per request)", st.TokensOut, s.Work.GlobalBatch)
	}
	if st.LatencySec <= 0 {
		t.Error("zero latency")
	}
}

func TestEngineBatchNotDivisibleByMicrobatch(t *testing.T) {
	// Global batch 7 with prefill micro-batch 4: last micro-batch is 3.
	s := rtSpec(2.2, 1.4)
	s.Work.GlobalBatch = 7
	s.PrefillMicroBatches = []int{4}
	p := planFor(t, s)
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.TokensOut != 7*s.Work.Generate {
		t.Errorf("tokens %d, want %d", st.TokensOut, 7*s.Work.Generate)
	}
}

func TestEngineRejectsMismatchedPlan(t *testing.T) {
	s := rtSpec(2.2, 1.4)
	p := planFor(t, s)
	bad := *p
	bad.Order = []int{0} // wrong device count
	if _, err := NewEngine(s, &bad, nil); err == nil {
		t.Error("expected plan validation error")
	}
}

func TestEngineSingleStageNoComm(t *testing.T) {
	s := rtSpec(24, 24)
	s.Cluster.Devices = s.Cluster.Devices[:1]
	res, err := assigner.Optimize(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(s, res.Plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The plan evaluator and the simulation must agree tightly with no
	// inter-stage communication in play.
	rel := (st.LatencySec - res.Eval.LatencySec) / st.LatencySec
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.15 {
		t.Errorf("single-stage fidelity: eval %.3fs vs sim %.3fs", res.Eval.LatencySec, st.LatencySec)
	}
}
