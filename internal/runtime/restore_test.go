package runtime

import (
	"errors"
	"testing"
)

// restoreResume finishes a restore-halted run on the same plan from the
// reported watermark and returns the resumed stats.
func restoreResume(t *testing.T, halt *RestoreHaltError) Stats {
	t.Helper()
	s := rtSpec(2.2, 1.4)
	p := planFor(t, s)
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.StartRound = halt.Watermark
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRestoreAtSecHaltsWithWatermark exercises the scheduled restore
// seam: the run freezes mid-decode with an exact watermark and resuming
// from it conserves every token.
func TestRestoreAtSecHaltsWithWatermark(t *testing.T) {
	s, p, clean := chaosBaseline(t)
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.RestoreAtSec = clean.LatencySec * 0.6
	_, err = eng.Run()
	var halt *RestoreHaltError
	if !errors.As(err, &halt) {
		t.Fatalf("want RestoreHaltError, got %v", err)
	}
	if halt.AtSec != eng.RestoreAtSec {
		t.Errorf("halt at %.4f, want the scheduled %.4f", halt.AtSec, eng.RestoreAtSec)
	}
	if !halt.PrefillDone {
		t.Fatal("a 60%-latency halt must land after prefill")
	}
	if halt.Watermark <= 0 || halt.Watermark >= s.Work.Generate {
		t.Fatalf("watermark %d outside (0,%d)", halt.Watermark, s.Work.Generate)
	}
	if halt.DurableTokens != s.Work.GlobalBatch*halt.Watermark {
		t.Errorf("durable %d, want %d", halt.DurableTokens, s.Work.GlobalBatch*halt.Watermark)
	}
	resumed := restoreResume(t, halt)
	if got := halt.DurableTokens + resumed.TokensOut; got != clean.TokensOut {
		t.Errorf("token conservation: durable %d + resumed %d = %d, want %d",
			halt.DurableTokens, resumed.TokensOut, got, clean.TokensOut)
	}
}

// TestRestoreAfterDrainIsNoOp schedules the restore past the pipeline's
// completion: the run must finish untouched.
func TestRestoreAfterDrainIsNoOp(t *testing.T) {
	s, p, clean := chaosBaseline(t)
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.RestoreAtSec = clean.LatencySec * 2
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.TokensOut != clean.TokensOut || st.LatencySec != clean.LatencySec {
		t.Errorf("late restore disturbed the run: %d tokens in %.4fs, want %d in %.4fs",
			st.TokensOut, st.LatencySec, clean.TokensOut, clean.LatencySec)
	}
}

// TestStageRestoreErrorHalts drives the control-plane seam: a StageTimer
// that requests a restore after N evaluations freezes the run exactly
// like the scheduled variant, and the watermark still conserves tokens.
func TestStageRestoreErrorHalts(t *testing.T) {
	s, p, clean := chaosBaseline(t)
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	eng.StageTimer = func(stage, batch, round int, prefill bool) (float64, error) {
		calls++
		if calls > 20 {
			return 0, &StageRestoreError{}
		}
		return StageTime(s, p, nil, stage, batch, round, prefill)
	}
	_, err = eng.Run()
	var halt *RestoreHaltError
	if !errors.As(err, &halt) {
		t.Fatalf("want RestoreHaltError, got %v", err)
	}
	if !halt.PrefillDone || halt.Watermark <= 0 {
		t.Fatalf("halt %+v: expected a post-prefill watermark", halt)
	}
	resumed := restoreResume(t, halt)
	if got := halt.DurableTokens + resumed.TokensOut; got != clean.TokensOut {
		t.Errorf("token conservation: %d, want %d", got, clean.TokensOut)
	}
}

// TestRestoreValidation pins the config errors.
func TestRestoreValidation(t *testing.T) {
	s, p, _ := chaosBaseline(t)
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.RestoreAtSec = -1
	if _, err := eng.Run(); err == nil {
		t.Fatal("negative RestoreAtSec must be rejected")
	}
}
