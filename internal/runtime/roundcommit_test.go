package runtime

import (
	"testing"
)

type commit struct{ w, durable, run int }

// TestOnRoundCommitWatermarks: the hook fires once per watermark advance,
// strictly increasing from 1 (prefill completion) to Generate, with
// durableTokens = B × watermark and the final commit matching the run's
// token total — the journaling contract of the distributed coordinator.
func TestOnRoundCommitWatermarks(t *testing.T) {
	s, p, clean := chaosBaseline(t)
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	var commits []commit
	eng.OnRoundCommit = func(w, durable, run int) {
		commits = append(commits, commit{w, durable, run})
	}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.TokensOut != clean.TokensOut {
		t.Fatalf("instrumented run changed the result: %d vs %d tokens", st.TokensOut, clean.TokensOut)
	}
	if len(commits) != s.Work.Generate {
		t.Fatalf("%d commits, want one per round (%d)", len(commits), s.Work.Generate)
	}
	B := s.Work.GlobalBatch
	for i, c := range commits {
		if c.w != i+1 {
			t.Errorf("commit %d watermark %d, want %d", i, c.w, i+1)
		}
		if c.durable != B*c.w {
			t.Errorf("commit %d durable %d, want %d", i, c.durable, B*c.w)
		}
		if c.run < c.durable {
			t.Errorf("commit %d runTokens %d below durable %d", i, c.run, c.durable)
		}
	}
	last := commits[len(commits)-1]
	if last.durable != st.TokensOut || last.run != st.TokensOut {
		t.Errorf("final commit (%d durable, %d run) does not match TokensOut %d",
			last.durable, last.run, st.TokensOut)
	}
}

// TestOnRoundCommitResumed: a watermark-resumed run reports only the
// rounds past StartRound, and its durable counts stay absolute — so a
// recovered coordinator's journal continues seamlessly from the replan
// record.
func TestOnRoundCommitResumed(t *testing.T) {
	s, p, _ := chaosBaseline(t)
	start := 2
	if s.Work.Generate <= start+1 {
		t.Skipf("workload generates %d rounds, need > %d", s.Work.Generate, start+1)
	}
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.StartRound = start
	var commits []commit
	eng.OnRoundCommit = func(w, durable, run int) {
		commits = append(commits, commit{w, durable, run})
	}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(commits) != s.Work.Generate-start {
		t.Fatalf("%d commits, want %d", len(commits), s.Work.Generate-start)
	}
	if commits[0].w != start+1 {
		t.Errorf("first resumed commit at watermark %d, want %d", commits[0].w, start+1)
	}
	B := s.Work.GlobalBatch
	last := commits[len(commits)-1]
	if last.w != s.Work.Generate || last.durable != B*s.Work.Generate {
		t.Errorf("final commit %+v, want watermark %d durable %d", last, s.Work.Generate, B*s.Work.Generate)
	}
	// Token conservation: durable-at-resume plus this run's output is the
	// clean total.
	if B*start+st.TokensOut != B*s.Work.Generate {
		t.Errorf("resumed run: %d + %d tokens != clean %d", B*start, st.TokensOut, B*s.Work.Generate)
	}
}
