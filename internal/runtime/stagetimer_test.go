package runtime

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/assigner"
)

// TestStageTimerIdentityReproducesRun: an engine whose StageTimer
// evaluates StageTime (the remote-worker contract) produces stats
// bit-identical to the local computation — the parity invariant the
// distributed control plane rests on.
func TestStageTimerIdentityReproducesRun(t *testing.T) {
	s, p, clean := chaosBaseline(t)
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	eng.StageTimer = func(stage, batch, round int, prefill bool) (float64, error) {
		calls++
		return StageTime(s, p, nil, stage, batch, round, prefill)
	}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, clean) {
		t.Errorf("StageTimer run diverged:\nremote: %+v\nlocal:  %+v", st, clean)
	}
	if calls == 0 {
		t.Error("StageTimer was never consulted")
	}
}

// TestStageTimerLossHaltsWithWatermark: a StageLostError from the
// StageTimer halts the run with a watermarked DeviceLostError, and
// resuming from that watermark conserves every token — the cross-process
// equivalent of a chaos permanent crash.
func TestStageTimerLossHaltsWithWatermark(t *testing.T) {
	s, p, clean := chaosBaseline(t)
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	failAfter := 3 * p.NumStages() * ((s.Work.GlobalBatch + p.PrefillMB - 1) / p.PrefillMB)
	eng.StageTimer = func(stage, batch, round int, prefill bool) (float64, error) {
		calls++
		if calls > failAfter && stage == 1 {
			return 0, &StageLostError{Stage: stage}
		}
		return StageTime(s, p, nil, stage, batch, round, prefill)
	}
	_, err = eng.Run()
	var lost *DeviceLostError
	if !errors.As(err, &lost) {
		t.Fatalf("want DeviceLostError, got %v", err)
	}
	if lost.Stage != 1 || lost.Device != p.Order[1] {
		t.Errorf("lost stage %d device %d, want stage 1 device %d", lost.Stage, lost.Device, p.Order[1])
	}
	if !lost.PrefillDone || lost.Watermark < 1 {
		t.Fatalf("loss past prefill must carry a positive watermark: %+v", lost)
	}
	if lost.DurableTokens != s.Work.GlobalBatch*lost.Watermark {
		t.Errorf("durable tokens %d, want %d", lost.DurableTokens, s.Work.GlobalBatch*lost.Watermark)
	}

	// Resume the same plan from the watermark; durable + resumed must
	// equal the clean run's total exactly.
	resumeEng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	resumeEng.StartRound = lost.Watermark
	resumed, err := resumeEng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := lost.DurableTokens + resumed.TokensOut; got != clean.TokensOut {
		t.Errorf("durable %d + resumed %d = %d, want %d", lost.DurableTokens, resumed.TokensOut, got, clean.TokensOut)
	}
}

// TestStageTimerErrorAborts: a non-loss StageTimer error fails the run
// outright (no watermark semantics).
func TestStageTimerErrorAborts(t *testing.T) {
	s, p, _ := chaosBaseline(t)
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("remote worker exploded")
	eng.StageTimer = func(int, int, int, bool) (float64, error) { return 0, boom }
	_, err = eng.Run()
	if !errors.Is(err, boom) {
		t.Fatalf("want the timer error surfaced, got %v", err)
	}
	var lost *DeviceLostError
	if errors.As(err, &lost) {
		t.Error("generic errors must not masquerade as device loss")
	}
}

// TestStageTimeValidatesStage: the exported helper rejects out-of-range
// stages and defaults a nil timer.
func TestStageTimeValidatesStage(t *testing.T) {
	s := rtSpec(2.2, 1.4)
	p := planFor(t, s)
	if _, err := StageTime(s, p, nil, -1, 1, 0, true); err == nil {
		t.Error("negative stage must fail")
	}
	if _, err := StageTime(s, p, nil, p.NumStages(), 1, 0, true); err == nil {
		t.Error("stage beyond pipeline depth must fail")
	}
	got, err := StageTime(s, p, nil, 0, 4, 0, true)
	if err != nil || got <= 0 {
		t.Fatalf("prefill stage time %g, %v", got, err)
	}
	want, err := StageTime(s, p, assigner.ProfilerTimer{}, 0, 4, 0, true)
	if err != nil || want != got {
		t.Errorf("nil timer must default to the profiler timer: %g vs %g (%v)", got, want, err)
	}
}
