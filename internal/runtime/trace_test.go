package runtime

import (
	"math"
	"strings"
	"testing"
)

func TestTraceRecordsAllTasks(t *testing.T) {
	s := rtSpec(2.2, 1.4)
	p := planFor(t, s)
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Trace = true
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	// Every span is well-formed and within the run.
	kp := (s.Work.GlobalBatch + p.PrefillMB - 1) / p.PrefillMB
	kd := (s.Work.GlobalBatch + p.DecodeMB - 1) / p.DecodeMB
	wantTasks := p.NumStages() * (kp + kd*(s.Work.Generate-1))
	if len(st.Trace) != wantTasks {
		t.Errorf("trace has %d spans, want %d", len(st.Trace), wantTasks)
	}
	var prefill, decode int
	for _, sp := range st.Trace {
		if sp.Start < 0 || sp.End <= sp.Start || sp.End > st.LatencySec+1e-9 {
			t.Fatalf("bad span %+v (latency %.4f)", sp, st.LatencySec)
		}
		if sp.Prefill {
			prefill++
		} else {
			decode++
		}
	}
	if prefill == 0 || decode == 0 {
		t.Error("trace should contain both phases")
	}
	// Trace-derived busy time must match the engine's accounting.
	busy, err := BusyFraction(st.Trace, p.NumStages(), st.LatencySec)
	if err != nil {
		t.Fatal(err)
	}
	for j := range busy {
		if math.Abs(busy[j]-st.Utilization[j]) > 1e-6 {
			t.Errorf("stage %d: trace busy %.4f vs engine %.4f", j, busy[j], st.Utilization[j])
		}
	}
}

func TestNoTraceByDefault(t *testing.T) {
	s := rtSpec(2.2, 1.4)
	p := planFor(t, s)
	eng, _ := NewEngine(s, p, nil)
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Trace) != 0 {
		t.Error("trace recorded without Trace flag")
	}
}

func TestRenderGantt(t *testing.T) {
	spans := []TaskSpan{
		{Stage: 0, Prefill: true, Start: 0, End: 1},
		{Stage: 1, Prefill: true, Start: 1, End: 2},
		{Stage: 0, Start: 2, End: 3},
		{Stage: 1, Start: 3, End: 4},
	}
	out, err := RenderGantt(spans, 2, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected header + 2 rows, got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "P") || !strings.Contains(lines[1], "d") {
		t.Errorf("stage 0 row should show both phases: %q", lines[1])
	}
	if !strings.Contains(lines[1], "·") {
		t.Errorf("stage 0 row should show idle cells: %q", lines[1])
	}
	if _, err := RenderGantt(spans, 0, 4, 8); err == nil {
		t.Error("expected stages error")
	}
	if _, err := RenderGantt([]TaskSpan{{Stage: 5, End: 1}}, 2, 4, 8); err == nil {
		t.Error("expected out-of-range span error")
	}
	if _, err := RenderGantt(nil, 2, 0, 8); err == nil {
		t.Error("expected empty-trace error")
	}
}

func TestGanttFromRealRun(t *testing.T) {
	s := rtSpec(2.2, 1.4)
	p := planFor(t, s)
	eng, _ := NewEngine(s, p, nil)
	eng.Trace = true
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	out, err := RenderGantt(st.Trace, p.NumStages(), st.LatencySec, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stage 0") || !strings.Contains(out, "stage 1") {
		t.Errorf("gantt missing stage rows:\n%s", out)
	}
}
