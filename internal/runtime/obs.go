package runtime

import (
	"strconv"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
)

// Metric family names exported by the two runtimes (DESIGN.md §8).
const (
	// Discrete-event engine.
	metricStageBusy = "llmpq_engine_stage_busy_seconds"
	metricStageIdle = "llmpq_engine_stage_idle_seconds"
	metricStageComm = "llmpq_engine_stage_comm_seconds"
	metricStageKV   = "llmpq_engine_stage_reserved_gb"
	metricOOM       = "llmpq_engine_oom_total"
	metricTasks     = "llmpq_engine_tasks_total"
	metricLatency   = "llmpq_engine_latency_seconds"
	metricSimEvents = "llmpq_engine_events_total"
	// Chaos fault injection (DESIGN.md §10).
	metricChaosFaults   = "llmpq_chaos_faults_injected_total"
	metricChaosLost     = "llmpq_chaos_tasks_lost_total"
	metricChaosDowntime = "llmpq_chaos_downtime_seconds"
	metricChaosDevLost  = "llmpq_chaos_device_lost_total"
	// Real goroutine pipeline.
	metricPipeCompute = "llmpq_pipeline_stage_compute_seconds"
	metricPipeRecv    = "llmpq_pipeline_stage_recv_wait_seconds"
	metricPipeSend    = "llmpq_pipeline_stage_send_wait_seconds"
)

func stageLabel(j int) obs.Label { return obs.L("stage", strconv.Itoa(j)) }

// engineObs holds the engine's pre-resolved metric series so the
// discrete-event hot path touches no registry maps. A nil *engineObs
// (built from a nil registry) makes every method a no-op, keeping the
// uninstrumented simulation allocation-free and byte-identical.
type engineObs struct {
	busyPre []*obs.Histogram
	busyDec []*obs.Histogram
	idle    []*obs.Histogram
	comm    []*obs.Histogram
	kv      []*obs.Gauge
	oom     *obs.Counter
	tasks   *obs.Counter
	latency *obs.Gauge
	events  *obs.Counter
	// reg resolves chaos series lazily (faults are rare; no need to
	// pre-resolve per-kind counters for fault-free runs).
	reg *obs.Registry
}

func newEngineObs(r *obs.Registry, stages int) *engineObs {
	if r == nil {
		return nil
	}
	eo := &engineObs{
		reg:     r,
		busyPre: make([]*obs.Histogram, stages),
		busyDec: make([]*obs.Histogram, stages),
		idle:    make([]*obs.Histogram, stages),
		comm:    make([]*obs.Histogram, stages),
		kv:      make([]*obs.Gauge, stages),
		oom:     r.Counter(metricOOM),
		tasks:   r.Counter(metricTasks),
		latency: r.Gauge(metricLatency),
		events:  r.Counter(metricSimEvents),
	}
	tb := obs.TimeBuckets()
	for j := 0; j < stages; j++ {
		sl := stageLabel(j)
		eo.busyPre[j] = r.Histogram(metricStageBusy, tb, sl, obs.L("phase", "prefill"))
		eo.busyDec[j] = r.Histogram(metricStageBusy, tb, sl, obs.L("phase", "decode"))
		eo.idle[j] = r.Histogram(metricStageIdle, tb, sl)
		eo.comm[j] = r.Histogram(metricStageComm, tb, sl)
		eo.kv[j] = r.Gauge(metricStageKV, sl)
	}
	return eo
}

func (o *engineObs) taskDone(j int, prefill bool, sec float64) {
	if o == nil {
		return
	}
	o.tasks.Inc()
	if prefill {
		o.busyPre[j].Observe(sec)
	} else {
		o.busyDec[j].Observe(sec)
	}
}

func (o *engineObs) idleGap(j int, sec float64) {
	if o == nil || sec <= 0 {
		return
	}
	o.idle[j].Observe(sec)
}

func (o *engineObs) commHop(j int, sec float64) {
	if o == nil || sec <= 0 {
		return
	}
	o.comm[j].Observe(sec)
}

func (o *engineObs) reserve(j int, gb float64) {
	if o == nil {
		return
	}
	o.kv[j].Set(gb)
}

func (o *engineObs) oomHit() {
	if o == nil {
		return
	}
	o.oom.Inc()
}

// faultInjected counts one chaos fault becoming active, labelled by kind.
func (o *engineObs) faultInjected(k chaos.Kind) {
	if o == nil {
		return
	}
	o.reg.Counter(metricChaosFaults, obs.L("kind", k.String())).Inc()
}

// taskLost counts an in-flight task killed by a crash fault.
func (o *engineObs) taskLost(j int) {
	if o == nil {
		return
	}
	o.reg.Counter(metricChaosLost, stageLabel(j)).Inc()
}

// downtime accumulates a transient crash's outage on its stage.
func (o *engineObs) downtime(j int, sec float64) {
	if o == nil {
		return
	}
	o.reg.Counter(metricChaosDowntime, stageLabel(j)).Add(sec)
}

// deviceLost counts a permanent device loss halting the run.
func (o *engineObs) deviceLost(j int) {
	if o == nil {
		return
	}
	o.reg.Counter(metricChaosDevLost, stageLabel(j)).Inc()
}

func (o *engineObs) finish(latencySec float64, events int) {
	if o == nil {
		return
	}
	o.latency.Set(latencySec)
	o.events.Add(float64(events))
}

// phaseName returns the span name/category for a task phase.
func phaseName(prefill bool) string {
	if prefill {
		return "prefill"
	}
	return "decode"
}

// recordTaskSpan emits one simulated-time task span.
func recordTaskSpan(rec *obs.SpanRecorder, j int, t task, start, end float64) {
	if rec == nil {
		return
	}
	ph := phaseName(t.prefill)
	rec.Record(obs.Span{
		Name: ph, Cat: ph, TID: j, Start: start, Dur: end - start,
		Args: map[string]string{
			"mb":    strconv.Itoa(t.mb),
			"round": strconv.Itoa(t.round),
			"batch": strconv.Itoa(t.batch),
		},
	})
}

// recordCommSpan emits one simulated-time inter-stage transfer span,
// attributed to the sending stage's row.
func recordCommSpan(rec *obs.SpanRecorder, j int, t task, start, dur float64) {
	if rec == nil || dur <= 0 {
		return
	}
	rec.Record(obs.Span{
		Name: "send", Cat: "comm", TID: j, Start: start, Dur: dur,
		Args: map[string]string{"mb": strconv.Itoa(t.mb), "to": strconv.Itoa(j + 1)},
	})
}

// pipelineObs bundles the real pipeline's instrumentation: per-stage
// wall-clock histograms plus optional spans. nil = uninstrumented.
type pipelineObs struct {
	rec     *obs.SpanRecorder
	epoch   time.Time // timestamp zero when rec is nil
	compute []*obs.Histogram
	recv    []*obs.Histogram
	send    []*obs.Histogram
}

func newPipelineObs(r *obs.Registry, rec *obs.SpanRecorder, stages int) *pipelineObs {
	if r == nil && rec == nil {
		return nil
	}
	po := &pipelineObs{
		rec: rec,
		//llmpq:allow(simwallclock): epoch for live-pipeline span timestamps; the simulated engine path never reads it
		epoch:   time.Now(),
		compute: make([]*obs.Histogram, stages),
		recv:    make([]*obs.Histogram, stages),
		send:    make([]*obs.Histogram, stages),
	}
	tb := obs.TimeBuckets()
	for j := 0; j < stages; j++ {
		sl := stageLabel(j)
		po.compute[j] = r.Histogram(metricPipeCompute, tb, sl)
		po.recv[j] = r.Histogram(metricPipeRecv, tb, sl)
		po.send[j] = r.Histogram(metricPipeSend, tb, sl)
		rec.NameThread(j, "stage "+strconv.Itoa(j))
	}
	return po
}

// since returns wall seconds since the recorder's epoch (so span
// timestamps line up across goroutines), or since pipelineObs creation
// when only metrics are attached. Returns 0 on nil.
func (o *pipelineObs) since() float64 {
	if o == nil {
		return 0
	}
	if o.rec != nil {
		return o.rec.Since()
	}
	return time.Since(o.epoch).Seconds() //llmpq:allow(simwallclock): live-pipeline span timestamps; sim runs use virtual time
}

// op records one finished stage operation (compute / recv wait / send
// wait) that began at start (in since() time): a histogram sample, plus a
// span when a recorder is attached.
func (o *pipelineObs) op(kind string, j, req int, start float64) {
	if o == nil {
		return
	}
	dur := o.since() - start
	switch kind {
	case "compute":
		o.compute[j].Observe(dur)
	case "recv":
		o.recv[j].Observe(dur)
	case "send":
		o.send[j].Observe(dur)
	}
	if o.rec == nil {
		return
	}
	o.rec.Record(obs.Span{
		Name: kind, Cat: kind, TID: j, Start: start, Dur: dur,
		Args: map[string]string{"req": strconv.Itoa(req)},
	})
}
