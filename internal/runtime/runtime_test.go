package runtime

import (
	"errors"
	"math"
	"testing"

	"repro/internal/assigner"
	"repro/internal/hardware"
	"repro/internal/indicator"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/quant"
)

func testGPU(name string, memGB, tflops, bw float64) hardware.GPU {
	return hardware.GPU{
		Name: name, MemoryGB: memGB, FP16TFLOPS: tflops, BandwidthGBs: bw,
		ComputeEff:       map[int]float64{3: 0.45, 4: 0.5, 8: 0.8, 16: 1.0},
		MemEff:           map[int]float64{3: 0.7, 4: 0.78, 8: 0.91, 16: 1.0},
		LaunchOverheadUS: 10,
	}
}

var rtModel = model.Config{
	Name: "rt-test", Family: model.OPT, Hidden: 2048, FFN: 8192,
	Layers: 8, Heads: 16, VocabSize: 50272, MaxPosEmb: 2048, TiedEmbed: true,
}

func rtSpec(memA, memB float64) *assigner.Spec {
	fast := testGPU("fast", memA, 50, 600)
	slow := testGPU("slow", memB, 12, 300)
	return &assigner.Spec{
		Cfg: rtModel,
		Cluster: hardware.Cluster{
			Name: "rt", InterNode: hardware.Eth800Gbps,
			Devices: []hardware.Device{
				{ID: 0, GPU: slow, Node: 0},
				{ID: 1, GPU: fast, Node: 1},
			},
		},
		Work:   assigner.Workload{GlobalBatch: 8, Prompt: 128, Generate: 16},
		Bits:   []int{4, 8, 16},
		Omega:  rtOmega(),
		Theta:  0.01,
		Method: assigner.MethodDP,
	}
}

func rtOmega() indicator.Omega {
	full := indicator.Synthetic(rtModel, []int{3, 4, 8, 16}, 7)
	out := indicator.Omega{Bits: []int{4, 8, 16}}
	for l := 0; l < full.Layers(); l++ {
		row := make([]float64, 3)
		for i, b := range []int{4, 8, 16} {
			v, _ := full.At(l, b)
			row[i] = v
		}
		out.Values = append(out.Values, row)
	}
	return out
}

func planFor(t *testing.T, s *assigner.Spec) *assigner.Plan {
	t.Helper()
	res, err := assigner.Optimize(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.Plan
}

func TestEngineRunsPlan(t *testing.T) {
	s := rtSpec(2.2, 1.4)
	p := planFor(t, s)
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.LatencySec <= 0 {
		t.Fatalf("latency %.4g", st.LatencySec)
	}
	wantTokens := s.Work.GlobalBatch * s.Work.Generate
	if st.TokensOut != wantTokens {
		t.Errorf("tokens out %d, want %d", st.TokensOut, wantTokens)
	}
	if st.PrefillSec <= 0 || st.PrefillSec >= st.LatencySec {
		t.Errorf("prefill %.4g vs latency %.4g", st.PrefillSec, st.LatencySec)
	}
	for j, u := range st.Utilization {
		if u <= 0 || u > 1 {
			t.Errorf("stage %d utilization %.3f out of (0,1]", j, u)
		}
	}
}

func TestEngineDeterministic(t *testing.T) {
	s := rtSpec(2.2, 1.4)
	p := planFor(t, s)
	eng, _ := NewEngine(s, p, nil)
	a, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.LatencySec != b.LatencySec || a.Events != b.Events {
		t.Errorf("non-deterministic simulation: %.9f/%d vs %.9f/%d", a.LatencySec, a.Events, b.LatencySec, b.Events)
	}
}

func TestEngineMatchesEvaluatorWithinTolerance(t *testing.T) {
	// The assigner's cost model and the event simulation must agree on
	// latency within a modest error (Fig 7 spirit: <6% on layer latency;
	// end-to-end pipeline adds scheduling effects — allow 25%).
	s := rtSpec(2.2, 1.4)
	res, err := assigner.Optimize(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng, _ := NewEngine(s, res.Plan, nil)
	st, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(st.LatencySec-res.Eval.LatencySec) / st.LatencySec
	if rel > 0.25 {
		t.Errorf("cost model %.4gs vs simulated %.4gs: %.0f%% error", res.Eval.LatencySec, st.LatencySec, rel*100)
	}
}

func TestEngineOOM(t *testing.T) {
	// FP16 everywhere on starved devices must OOM at startup.
	s := rtSpec(0.4, 0.4)
	p := &assigner.Plan{
		Order: []int{0, 1}, Boundaries: []int{0, 4, 8},
		GroupBits: []int{16, 16, 16, 16, 16, 16, 16, 16},
		Group:     1, PrefillMB: 4, DecodeMB: 4,
	}
	eng, err := NewEngine(s, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run()
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("expected OOM error, got %v", err)
	}
	if oom.NeedGB <= oom.HaveGB {
		t.Errorf("inconsistent OOM report %+v", oom)
	}
}

func TestEngineQuantizedFasterThanFP16WhenMemoryBound(t *testing.T) {
	// Decode is memory-bound: INT4 layers should serve tokens faster than
	// FP16 on the same (big-memory) devices, once generation is long
	// enough that decode dominates the compute-bound prefill.
	s := rtSpec(24, 24)
	s.Work = assigner.Workload{GlobalBatch: 8, Prompt: 64, Generate: 64}
	mk := func(bits int) Stats {
		p := &assigner.Plan{
			Order: []int{0, 1}, Boundaries: []int{0, 4, 8},
			GroupBits: []int{bits, bits, bits, bits, bits, bits, bits, bits},
			Group:     1, PrefillMB: 8, DecodeMB: 4,
		}
		eng, err := NewEngine(s, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		st, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	fp16 := mk(16)
	int4 := mk(4)
	if int4.Throughput <= fp16.Throughput {
		t.Errorf("INT4 throughput %.1f should beat FP16 %.1f (decode memory-bound)", int4.Throughput, fp16.Throughput)
	}
}

func TestPipelineMatchesSingleProcessGeneration(t *testing.T) {
	// The goroutine pipeline must produce exactly the tokens the
	// single-process model produces (greedy decoding).
	cfg := nn.Config{Vocab: 96, Hidden: 32, FFN: 128, Layers: 6, Heads: 4, MaxSeq: 40, SensitivitySlope: 1}
	ref, err := nn.New(cfg, 21)
	if err != nil {
		t.Fatal(err)
	}
	bits := []int{16, 16, 8, 8, 16, 16}
	// Single-process greedy generation.
	single, err := nn.New(cfg, 21)
	if err != nil {
		t.Fatal(err)
	}
	if err := single.ApplyBitAssignment(bits, quant.Deterministic, nil); err != nil {
		t.Fatal(err)
	}
	prompts := [][]int{{3, 14, 15}, {9, 2, 6, 5}, {31}}
	n := 8
	var want [][]int
	for _, pr := range prompts {
		seq := append([]int(nil), pr...)
		cache := single.NewCache()
		logits, err := single.Forward(pr, cache)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			tok := argmax(logits.Row(logits.Rows - 1))
			seq = append(seq, tok)
			if len(seq) >= cfg.MaxSeq {
				break
			}
			logits, err = single.Forward([]int{tok}, cache)
			if err != nil {
				t.Fatal(err)
			}
		}
		want = append(want, seq)
	}
	// Pipelined generation over 3 stages.
	pl, err := NewPipeline(ref, []int{0, 2, 4, 6}, bits)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pl.Generate(prompts, n)
	if err != nil {
		t.Fatal(err)
	}
	for r := range want {
		if len(got[r]) != len(want[r]) {
			t.Fatalf("request %d: length %d vs %d", r, len(got[r]), len(want[r]))
		}
		for i := range want[r] {
			if got[r][i] != want[r][i] {
				t.Fatalf("request %d diverges at %d: %v vs %v", r, i, got[r], want[r])
			}
		}
	}
}

func TestPipelineValidation(t *testing.T) {
	cfg := nn.Config{Vocab: 96, Hidden: 32, FFN: 128, Layers: 4, Heads: 4, MaxSeq: 32, SensitivitySlope: 1}
	m, _ := nn.New(cfg, 1)
	if _, err := NewPipeline(m, []int{0, 2}, []int{16, 16, 16, 16}); err == nil {
		t.Error("expected span error")
	}
	if _, err := NewPipeline(m, []int{0, 2, 2, 4}, []int{16, 16, 16, 16}); err == nil {
		t.Error("expected empty-stage error")
	}
	if _, err := NewPipeline(m, []int{0, 4}, []int{16}); err == nil {
		t.Error("expected bits-length error")
	}
	pl, err := NewPipeline(m, []int{0, 2, 4}, []int{16, 16, 16, 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Generate(nil, 4); err == nil {
		t.Error("expected empty-prompts error")
	}
	if _, err := pl.Generate([][]int{{}}, 4); err == nil {
		t.Error("expected empty-prompt error")
	}
}
