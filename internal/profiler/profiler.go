// Package profiler is the stand-in for the paper's on-GPU kernel profiler
// (§4.1): it produces per-layer execution-time samples for every
// (device, precision, phase, batch, sequence) point the latency cost model
// is fitted on.
//
// Ground truth comes from a roofline execution model — a layer runs at
// max(compute time, memory time) plus fixed launch overhead — which
// naturally yields the paper's two regimes: prefill is compute-bound
// (arithmetic intensity in the thousands) and decode is memory-bound
// (intensity ≈40–50). "Measured" samples add reproducible multiplicative
// noise so the regression in internal/costmodel has something nontrivial to
// fit, exactly like real profiling jitter.
package profiler

import (
	"fmt"
	"math/rand"

	"repro/internal/hardware"
	"repro/internal/model"
)

// KVBits is the precision of the KV cache (kept FP16 throughout, as in the
// paper's runtime).
const KVBits = 16

// Workload is one measurement point.
type Workload struct {
	Batch   int
	Prompt  int // prefill: tokens processed; decode: original prompt length
	Context int // decode only: past KV length
	Prefill bool
	Bits    int
	// KV is the KV-cache element precision; 0 means the default FP16
	// (the paper's runtime). 8 models INT8 KV quantization (extension).
	KV int
}

// KVBitsOf returns the effective KV precision of the workload.
func (w Workload) KVBitsOf() int {
	if w.KV == 0 {
		return KVBits
	}
	return w.KV
}

// Validate checks the workload is well-formed.
func (w Workload) Validate() error {
	if w.Batch <= 0 {
		return fmt.Errorf("profiler: batch must be positive, got %d", w.Batch)
	}
	if w.Prefill && w.Prompt <= 0 {
		return fmt.Errorf("profiler: prefill prompt must be positive, got %d", w.Prompt)
	}
	if !w.Prefill && w.Context < 0 {
		return fmt.Errorf("profiler: negative context %d", w.Context)
	}
	switch w.Bits {
	case 3, 4, 8, 16:
	default:
		return fmt.Errorf("profiler: unsupported bitwidth %d", w.Bits)
	}
	return nil
}

func (w Workload) shape() model.PhaseShape {
	return model.PhaseShape{Batch: w.Batch, Prompt: w.Prompt, Context: w.Context}
}

// LayerTime returns the ground-truth execution time in seconds of one
// decoder layer of cfg on gpu for workload w (roofline + launch overhead).
func LayerTime(gpu hardware.GPU, cfg model.Config, w Workload) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	flops := cfg.LayerFLOPs(w.shape(), w.Prefill)
	mops := cfg.LayerMOPs(w.shape(), w.Prefill, w.Bits, w.KVBitsOf())
	tc := flops / gpu.FLOPS(w.Bits)
	tm := mops / gpu.Bandwidth(w.Bits)
	t := tc
	if tm > t {
		t = tm
	}
	return t + gpu.LaunchOverheadUS*1e-6, nil
}

// EmbedTime returns the time of the embedding block (token+position lookup
// on entry, LM-head projection + softmax sampling on exit), which the paper
// accounts to the master/first stage. Lookups are bandwidth-bound; the
// LM-head projection is a [tokens, h] × [h, vocab] matmul.
func EmbedTime(gpu hardware.GPU, cfg model.Config, batch, tokens int) (float64, error) {
	if batch <= 0 || tokens <= 0 {
		return 0, fmt.Errorf("profiler: embed batch/tokens must be positive (%d, %d)", batch, tokens)
	}
	b := float64(batch)
	n := float64(tokens)
	h := float64(cfg.Hidden)
	v := float64(cfg.VocabSize)
	lookup := b * n * h * 2 / gpu.Bandwidth(16)
	headFLOPs := 2 * b * n * h * v
	head := headFLOPs / gpu.FLOPS(16)
	if bw := (b*n*h*2 + v*h*2) / gpu.Bandwidth(16); bw > head {
		head = bw
	}
	return lookup + head + 2*gpu.LaunchOverheadUS*1e-6, nil
}

// Sample returns a "measured" layer time: ground truth with reproducible
// multiplicative jitter (σ≈3%), as collected by the paper's profiler.
func Sample(gpu hardware.GPU, cfg model.Config, w Workload, rng *rand.Rand) (float64, error) {
	t, err := LayerTime(gpu, cfg, w)
	if err != nil {
		return 0, err
	}
	return t * (1 + 0.03*rng.NormFloat64()), nil
}

// Point is one profiled (workload, time) observation.
type Point struct {
	W    Workload
	Time float64
}

// ProfileGrid samples the standard profiling grid the paper describes:
// "common prompt lengths and batch sizes" for each phase and precision.
// Returns deterministic results for a given seed.
func ProfileGrid(gpu hardware.GPU, cfg model.Config, seed int64) ([]Point, error) {
	rng := rand.New(rand.NewSource(seed))
	prompts := []int{64, 128, 256, 512, 1024}
	batches := []int{1, 2, 4, 8, 16, 32}
	contexts := []int{128, 256, 512, 1024}
	var pts []Point
	for _, bits := range hardware.Bits {
		for _, b := range batches {
			for _, s := range prompts {
				w := Workload{Batch: b, Prompt: s, Prefill: true, Bits: bits}
				t, err := Sample(gpu, cfg, w, rng)
				if err != nil {
					return nil, err
				}
				pts = append(pts, Point{W: w, Time: t})
			}
			for _, c := range contexts {
				w := Workload{Batch: b, Context: c, Bits: bits}
				t, err := Sample(gpu, cfg, w, rng)
				if err != nil {
					return nil, err
				}
				pts = append(pts, Point{W: w, Time: t})
			}
		}
	}
	return pts, nil
}

// ArithmeticIntensity returns FLOPs/byte for the workload — the quantity
// the paper uses to show prefill is compute-bound and decode memory-bound.
func ArithmeticIntensity(cfg model.Config, w Workload) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	return cfg.LayerFLOPs(w.shape(), w.Prefill) / cfg.LayerMOPs(w.shape(), w.Prefill, w.Bits, w.KVBitsOf()), nil
}
