package profiler

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hardware"
	"repro/internal/model"
)

func TestWorkloadValidate(t *testing.T) {
	bad := []Workload{
		{Batch: 0, Prompt: 512, Prefill: true, Bits: 16},
		{Batch: 8, Prompt: 0, Prefill: true, Bits: 16},
		{Batch: 8, Context: -1, Bits: 16},
		{Batch: 8, Prompt: 512, Prefill: true, Bits: 5},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, w)
		}
	}
	good := Workload{Batch: 8, Prompt: 512, Prefill: true, Bits: 16}
	if err := good.Validate(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestPrefillComputeBoundDecodeMemoryBound(t *testing.T) {
	pre := Workload{Batch: 32, Prompt: 512, Prefill: true, Bits: 16}
	dec := Workload{Batch: 32, Prompt: 512, Context: 512, Bits: 16}
	aiPre, err := ArithmeticIntensity(model.OPT30B, pre)
	if err != nil {
		t.Fatal(err)
	}
	aiDec, err := ArithmeticIntensity(model.OPT30B, dec)
	if err != nil {
		t.Fatal(err)
	}
	// Paper §4.1: V100 machine balance is 139 FLOPs/byte. Prefill must sit
	// far above it (compute-bound), decode far below (memory-bound).
	balance := hardware.V100.FLOPS(16) / hardware.V100.Bandwidth(16)
	if aiPre < balance {
		t.Errorf("prefill AI %.0f below machine balance %.0f", aiPre, balance)
	}
	if aiDec > balance {
		t.Errorf("decode AI %.0f above machine balance %.0f", aiDec, balance)
	}
}

func TestPhaseDependentDeviceRatioFig3(t *testing.T) {
	// Fig 3's point: the P100/V100 time ratio differs sharply by phase
	// (annotated 14.53x for FP16 prefill, near-1x for decode), so a
	// partition tuned on one phase is wrong for the other.
	pre := Workload{Batch: 8, Prompt: 512, Prefill: true, Bits: 16}
	dec := Workload{Batch: 8, Prompt: 512, Context: 512, Bits: 16}
	pPre, err := LayerTime(hardware.P100, model.OPT30B, pre)
	if err != nil {
		t.Fatal(err)
	}
	vPre, _ := LayerTime(hardware.V100, model.OPT30B, pre)
	pDec, _ := LayerTime(hardware.P100, model.OPT30B, dec)
	vDec, _ := LayerTime(hardware.V100, model.OPT30B, dec)
	rPre := pPre / vPre
	rDec := pDec / vDec
	if rPre < 3 || rPre > 25 {
		t.Errorf("P100/V100 prefill ratio %.2f outside Fig-3 band (paper: 14.53)", rPre)
	}
	if rDec < 1 || rDec > 2.5 {
		t.Errorf("P100/V100 decode ratio %.2f should be near bandwidth ratio (~1.2)", rDec)
	}
	if rPre < 2*rDec {
		t.Errorf("phase ratios should diverge: prefill %.2f vs decode %.2f", rPre, rDec)
	}
}

func TestQuantSpeedsUpDecodeNotAlwaysPrefill(t *testing.T) {
	// §2.4 observation 2: low-precision weights speed up the memory-bound
	// decode phase, but FP16 often stays fastest for compute-bound prefill
	// (dequant overhead).
	cfg := model.OPT30B
	decFP16, _ := LayerTime(hardware.V100, cfg, Workload{Batch: 4, Prompt: 512, Context: 512, Bits: 16})
	decINT4, _ := LayerTime(hardware.V100, cfg, Workload{Batch: 4, Prompt: 512, Context: 512, Bits: 4})
	if decINT4 >= decFP16 {
		t.Errorf("V100 decode: INT4 %.4gs should beat FP16 %.4gs (memory-bound)", decINT4, decFP16)
	}
	preFP16, _ := LayerTime(hardware.V100, cfg, Workload{Batch: 8, Prompt: 512, Prefill: true, Bits: 16})
	preINT4, _ := LayerTime(hardware.V100, cfg, Workload{Batch: 8, Prompt: 512, Prefill: true, Bits: 4})
	if preINT4 <= preFP16 {
		t.Errorf("V100 prefill: INT4 %.4gs should lose to FP16 %.4gs (dequant overhead)", preINT4, preFP16)
	}
}

func TestT4INT8ComparableToFP16V100INT8Slower(t *testing.T) {
	// §2.5: T4's INT8 prefill comparable to (here: not slower than) FP16;
	// V100's INT8 slower than FP16.
	cfg := model.OPT13B
	w16 := Workload{Batch: 8, Prompt: 512, Prefill: true, Bits: 16}
	w8 := Workload{Batch: 8, Prompt: 512, Prefill: true, Bits: 8}
	t4fp, _ := LayerTime(hardware.T4, cfg, w16)
	t4i8, _ := LayerTime(hardware.T4, cfg, w8)
	if t4i8 > t4fp*1.05 {
		t.Errorf("T4 INT8 prefill %.4g should be comparable to FP16 %.4g", t4i8, t4fp)
	}
	vfp, _ := LayerTime(hardware.V100, cfg, w16)
	vi8, _ := LayerTime(hardware.V100, cfg, w8)
	if vi8 <= vfp {
		t.Errorf("V100 INT8 prefill %.4g should be slower than FP16 %.4g", vi8, vfp)
	}
}

func TestFasterGPUFaster(t *testing.T) {
	w := Workload{Batch: 8, Prompt: 512, Prefill: true, Bits: 16}
	p100, _ := LayerTime(hardware.P100, model.OPT30B, w)
	v100, _ := LayerTime(hardware.V100, model.OPT30B, w)
	a100, _ := LayerTime(hardware.A100, model.OPT30B, w)
	if !(a100 < v100 && v100 < p100) {
		t.Errorf("prefill order wrong: A100=%.4g V100=%.4g P100=%.4g", a100, v100, p100)
	}
	// Fig 3 annotates P100/V100 prefill ratio ≈ our FP16 TFLOPS ratio ≈6.
	r := p100 / v100
	if r < 3 || r > 12 {
		t.Errorf("P100/V100 prefill ratio %.1f outside plausible band", r)
	}
}

func TestSampleReproducibleAndNearTruth(t *testing.T) {
	w := Workload{Batch: 8, Prompt: 512, Prefill: true, Bits: 16}
	truth, _ := LayerTime(hardware.V100, model.OPT30B, w)
	a, err := Sample(hardware.V100, model.OPT30B, w, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Sample(hardware.V100, model.OPT30B, w, rand.New(rand.NewSource(1)))
	if a != b {
		t.Error("same seed must give identical sample")
	}
	if math.Abs(a-truth)/truth > 0.2 {
		t.Errorf("sample %.4g too far from truth %.4g", a, truth)
	}
}

func TestProfileGridCoversAllPrecisions(t *testing.T) {
	pts, err := ProfileGrid(hardware.T4, model.OPT13B, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	var prefill, decode int
	for _, p := range pts {
		seen[p.W.Bits]++
		if p.Time <= 0 {
			t.Fatalf("nonpositive time for %+v", p.W)
		}
		if p.W.Prefill {
			prefill++
		} else {
			decode++
		}
	}
	for _, b := range hardware.Bits {
		if seen[b] == 0 {
			t.Errorf("grid missing %d-bit points", b)
		}
	}
	if prefill == 0 || decode == 0 {
		t.Error("grid must cover both phases")
	}
}

func TestEmbedTime(t *testing.T) {
	tm, err := EmbedTime(hardware.V100, model.OPT30B, 32, 512)
	if err != nil {
		t.Fatal(err)
	}
	if tm <= 0 {
		t.Errorf("embed time %.4g", tm)
	}
	one, _ := EmbedTime(hardware.V100, model.OPT30B, 32, 1)
	if one >= tm {
		t.Error("single-token embed should be cheaper than 512-token")
	}
	if _, err := EmbedTime(hardware.V100, model.OPT30B, 0, 1); err == nil {
		t.Error("expected validation error")
	}
}

func TestDecodeTimeGrowsWithContext(t *testing.T) {
	short, _ := LayerTime(hardware.T4, model.OPT30B, Workload{Batch: 8, Context: 128, Bits: 16})
	long, _ := LayerTime(hardware.T4, model.OPT30B, Workload{Batch: 8, Context: 1024, Bits: 16})
	if long <= short {
		t.Errorf("decode time should grow with KV length: %.4g vs %.4g", short, long)
	}
}
