package loader

import (
	"math"
	"testing"
	"testing/quick"
)

const gb = 1e9

func TestMonolithicVsChunked(t *testing.T) {
	shard := 10 * gb
	mono, err := Monolithic(DefaultResources, shard)
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := Load(DefaultResources, shard, 256e6)
	if err != nil {
		t.Fatal(err)
	}
	// Overlap always wins on time...
	if chunked.LoadTime >= mono.LoadTime {
		t.Errorf("chunked load %.2fs should beat monolithic %.2fs", chunked.LoadTime, mono.LoadTime)
	}
	// ...and the DRAM saving is the §5 headline.
	if chunked.PeakDRAM >= mono.PeakDRAM/10 {
		t.Errorf("chunked DRAM %.2fGB should be ≪ monolithic %.2fGB", chunked.PeakDRAM/gb, mono.PeakDRAM/gb)
	}
}

func TestBottleneckIsDisk(t *testing.T) {
	// Disk (2 GB/s) is the slowest of the three default resources.
	p, err := Load(DefaultResources, 10*gb, 256e6)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bottleneck != "disk" {
		t.Errorf("bottleneck %q, want disk", p.Bottleneck)
	}
	// Loading approaches the disk-bandwidth lower bound as chunks shrink.
	lower := 10 * gb / (DefaultResources.DiskGBs * gb)
	if p.LoadTime < lower {
		t.Errorf("load %.2fs beneath the disk bound %.2fs — impossible", p.LoadTime, lower)
	}
	if p.LoadTime > lower*1.2 {
		t.Errorf("load %.2fs too far above the disk bound %.2fs for good overlap", p.LoadTime, lower)
	}
}

func TestTooFineChunksPayOverhead(t *testing.T) {
	coarse, _ := Load(DefaultResources, 10*gb, 256e6)
	tiny, err := Load(DefaultResources, 10*gb, 1e5) // 100 KB chunks: 100k chunks
	if err != nil {
		t.Fatal(err)
	}
	if tiny.LoadTime <= coarse.LoadTime {
		t.Errorf("per-chunk overhead should punish 100KB chunks: %.2fs vs %.2fs", tiny.LoadTime, coarse.LoadTime)
	}
}

func TestOptimalChunkRespectsDRAMCap(t *testing.T) {
	shard := 20 * gb
	free, err := OptimalChunk(DefaultResources, shard, 1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := OptimalChunk(DefaultResources, shard, 1<<20, 512e6)
	if err != nil {
		t.Fatal(err)
	}
	if capped.PeakDRAM > 512e6 {
		t.Errorf("cap violated: %.0fMB", capped.PeakDRAM/1e6)
	}
	if capped.LoadTime < free.LoadTime-1e-9 {
		t.Error("constrained optimum cannot beat unconstrained")
	}
	if _, err := OptimalChunk(DefaultResources, shard, 1<<30, 1e6); err == nil {
		t.Error("expected no-fit error for impossible DRAM cap")
	}
}

func TestRecoveryFasterThanFullReload(t *testing.T) {
	// One stage of a 4-stage deployment recovers ~4x faster than reloading
	// the whole model — the §5 recovery-speed claim.
	full, err := RecoveryTime(DefaultResources, 40*gb, 256e6)
	if err != nil {
		t.Fatal(err)
	}
	stage, err := RecoveryTime(DefaultResources, 10*gb, 256e6)
	if err != nil {
		t.Fatal(err)
	}
	if stage >= full/3 {
		t.Errorf("single-stage recovery %.2fs should be ≪ full reload %.2fs", stage, full)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Load(Resources{}, gb, 1e6); err == nil {
		t.Error("expected bandwidth validation error")
	}
	if _, err := Load(DefaultResources, -1, 1e6); err == nil {
		t.Error("expected shard size error")
	}
	bad := DefaultResources
	bad.ChunkOverheadUS = -1
	if _, err := Load(bad, gb, 1e6); err == nil {
		t.Error("expected overhead validation error")
	}
}

func TestLoadProperties(t *testing.T) {
	err := quick.Check(func(shardMB, chunkMB uint16) bool {
		shard := float64(shardMB%4000+1) * 1e6
		chunk := float64(chunkMB%512+1) * 1e6
		p, err := Load(DefaultResources, shard, chunk)
		if err != nil {
			return false
		}
		// Invariants: time positive and at least the bottleneck bound;
		// chunks cover the shard; DRAM is two chunks.
		bound := shard / (DefaultResources.DiskGBs * gb)
		return p.LoadTime >= bound-1e-12 &&
			float64(p.Chunks)*p.ChunkBytes >= shard &&
			math.Abs(p.PeakDRAM-2*p.ChunkBytes) < 1e-9
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Error(err)
	}
}
