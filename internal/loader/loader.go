// Package loader models LLM-PQ's on-the-fly quantized weight loading
// (paper §5 "On-The-Fly Quantizer"): the integrated model weight is
// decoupled into module-level chunks, and three resources are overlapped —
// disk→CPU reads, CPU→GPU copies, and on-GPU quantization. Fine
// granularity slashes the host DRAM needed for loading (only a couple of
// chunks are ever resident) and speeds recovery after a worker failure,
// at the price of per-chunk fixed overheads.
//
// The loading pipeline is the classic 3-stage pipeline: with chunk stage
// times t_read, t_copy, t_quant, total time = fill (sum of the three for
// the first chunk) + (n−1)·bottleneck.
package loader

import (
	"fmt"
	"math"
)

// Resources describes the host/device path.
type Resources struct {
	DiskGBs     float64 // disk (or NVMe) sequential read bandwidth
	PCIeGBs     float64 // host→device copy bandwidth
	QuantizeGBs float64 // on-GPU dequant/quant-repack throughput
	// ChunkOverheadUS is the fixed per-chunk cost (file seek, allocator,
	// kernel launch) paid by each stage.
	ChunkOverheadUS float64
}

// DefaultResources matches the paper's testbed description ("GB/s SSD",
// PCIe-attached GPUs).
var DefaultResources = Resources{
	DiskGBs: 2.0, PCIeGBs: 16.0, QuantizeGBs: 80.0, ChunkOverheadUS: 150,
}

// Validate checks the resource description.
func (r Resources) Validate() error {
	if r.DiskGBs <= 0 || r.PCIeGBs <= 0 || r.QuantizeGBs <= 0 {
		return fmt.Errorf("loader: bandwidths must be positive: %+v", r)
	}
	if r.ChunkOverheadUS < 0 {
		return fmt.Errorf("loader: negative chunk overhead")
	}
	return nil
}

// Plan is a loading schedule for one model shard.
type Plan struct {
	ShardBytes float64
	ChunkBytes float64
	Chunks     int
	// LoadTime is the end-to-end pipelined loading time in seconds.
	LoadTime float64
	// PeakDRAM is the host memory high-water mark: double-buffered chunks
	// (one being read, one being copied).
	PeakDRAM float64
	// Bottleneck names the limiting resource ("disk", "pcie", "quant").
	Bottleneck string
}

// stageTimes returns per-chunk (read, copy, quant) seconds.
func (r Resources) stageTimes(chunkBytes float64) (read, cp, q float64) {
	oh := r.ChunkOverheadUS * 1e-6
	read = chunkBytes/(r.DiskGBs*1e9) + oh
	cp = chunkBytes/(r.PCIeGBs*1e9) + oh
	q = chunkBytes/(r.QuantizeGBs*1e9) + oh
	return read, cp, q
}

// Load computes the pipelined loading plan for a shard at a granularity.
func Load(r Resources, shardBytes, chunkBytes float64) (Plan, error) {
	if err := r.Validate(); err != nil {
		return Plan{}, err
	}
	if shardBytes <= 0 {
		return Plan{}, fmt.Errorf("loader: shard bytes must be positive, got %g", shardBytes)
	}
	if chunkBytes <= 0 || chunkBytes > shardBytes {
		chunkBytes = shardBytes
	}
	n := int(math.Ceil(shardBytes / chunkBytes))
	read, cp, q := r.stageTimes(chunkBytes)
	// Pick the slowest stage; on exact ties disk wins over pcie over quant,
	// matching the overlap model's priority.
	bottleneck, name := read, "disk"
	if cp > bottleneck {
		bottleneck, name = cp, "pcie"
	}
	if q > bottleneck {
		bottleneck, name = q, "quant"
	}
	total := read + cp + q + float64(n-1)*bottleneck
	return Plan{
		ShardBytes: shardBytes,
		ChunkBytes: chunkBytes,
		Chunks:     n,
		LoadTime:   total,
		PeakDRAM:   2 * chunkBytes,
		Bottleneck: name,
	}, nil
}

// Monolithic loads the whole shard as one chunk: no overlap, host DRAM
// must hold the entire FP16 shard — the baseline the paper's plugin
// replaces.
func Monolithic(r Resources, shardBytes float64) (Plan, error) {
	return Load(r, shardBytes, shardBytes)
}

// OptimalChunk sweeps power-of-two granularities between minChunk and the
// shard size, returning the plan minimizing load time with DRAM no larger
// than dramCapBytes (0 = unconstrained).
func OptimalChunk(r Resources, shardBytes, minChunk, dramCapBytes float64) (Plan, error) {
	if minChunk <= 0 {
		minChunk = 1 << 20
	}
	var best Plan
	found := false
	for c := minChunk; ; c *= 2 {
		if c > shardBytes {
			c = shardBytes
		}
		p, err := Load(r, shardBytes, c)
		if err != nil {
			return Plan{}, err
		}
		if dramCapBytes <= 0 || p.PeakDRAM <= dramCapBytes {
			if !found || p.LoadTime < best.LoadTime {
				best = p
				found = true
			}
		}
		if c >= shardBytes {
			break
		}
	}
	if !found {
		return Plan{}, fmt.Errorf("loader: no granularity fits DRAM cap %.0f bytes", dramCapBytes)
	}
	return best, nil
}

// RecoveryTime estimates restarting a single failed pipeline stage:
// reload that stage's shard at the given granularity. With module-level
// chunks the failed worker streams back to service without the full-model
// DRAM spike — the §5 recovery claim.
func RecoveryTime(r Resources, stageShardBytes, chunkBytes float64) (float64, error) {
	p, err := Load(r, stageShardBytes, chunkBytes)
	if err != nil {
		return 0, err
	}
	return p.LoadTime, nil
}
