package tp

import (
	"testing"

	"repro/internal/assigner"
	"repro/internal/hardware"
	"repro/internal/indicator"
	"repro/internal/model"
)

func TestFuseGPU(t *testing.T) {
	fused, err := FuseGPU(hardware.V100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fused.MemoryGB != hardware.V100.MemoryGB*4 {
		t.Errorf("memory %.0f, want 4x", fused.MemoryGB)
	}
	// Sub-linear compute scaling.
	if fused.FP16TFLOPS >= hardware.V100.FP16TFLOPS*4 {
		t.Error("TP compute should scale sub-linearly")
	}
	if fused.FP16TFLOPS <= hardware.V100.FP16TFLOPS*2 {
		t.Error("TP-4 should still be much faster than one device")
	}
	if fused.LaunchOverheadUS <= hardware.V100.LaunchOverheadUS {
		t.Error("TP must add all-reduce overhead")
	}
	ident, err := FuseGPU(hardware.V100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ident.Name != hardware.V100.Name {
		t.Error("degree 1 must be identity")
	}
	if _, err := FuseGPU(hardware.V100, 0); err == nil {
		t.Error("expected degree error")
	}
}

func TestEfficiencyMonotone(t *testing.T) {
	prev := 1.1
	for _, d := range []int{1, 2, 4, 8} {
		e := Efficiency(d)
		if e > prev {
			t.Errorf("efficiency should not grow with degree: %d → %.2f", d, e)
		}
		if e <= 0.5 || e > 1 {
			t.Errorf("efficiency %.2f out of band at degree %d", e, d)
		}
		prev = e
	}
}

func TestMeshesEnumeration(t *testing.T) {
	// Cluster 10: 4xV100 on one node → degrees {1,2,4} → 3 meshes.
	c10, _ := hardware.ClusterByID(10)
	ms, err := Meshes(c10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("%d meshes for 4xV100, want 3 (TP 1/2/4)", len(ms))
	}
	// Identity first.
	if ms[0].Degrees[0] != 1 || ms[0].Cluster.NumDevices() != 4 {
		t.Errorf("first mesh should be identity: %+v", ms[0])
	}
	// TP-4 collapses to one fused device.
	last := ms[len(ms)-1]
	if last.Cluster.NumDevices() != 1 {
		t.Errorf("TP-4 mesh should have 1 device, got %d", last.Cluster.NumDevices())
	}
	// Cluster 3: groups 3xT4 (degrees 1,3) and 1xV100 (degree 1) → 2.
	c3, _ := hardware.ClusterByID(3)
	ms3, err := Meshes(c3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms3) != 2 {
		t.Errorf("%d meshes for cluster 3, want 2", len(ms3))
	}
}

func tpSpec(cl hardware.Cluster, cfg model.Config) *assigner.Spec {
	return &assigner.Spec{
		Cfg: cfg, Cluster: cl,
		Work:                assigner.Workload{GlobalBatch: 32, Prompt: 512, Generate: 100},
		Bits:                []int{3, 4, 8, 16},
		Omega:               indicator.Synthetic(cfg, []int{3, 4, 8, 16}, 42),
		Theta:               1,
		Method:              assigner.MethodDP,
		PrefillMicroBatches: []int{1, 4},
	}
}

func TestOptimizeNeverWorseThanPipelineOnly(t *testing.T) {
	// The identity mesh is in the search space, so TP search can only
	// match or improve the plain assigner.
	c10, _ := hardware.ClusterByID(10)
	cfg, _ := model.ByName("opt-66b")
	s := tpSpec(c10, cfg)
	base, err := assigner.Optimize(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(tpSpec(c10, cfg), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Eval.Objective > base.Eval.Objective*1.0001 {
		t.Errorf("TP search objective %.4f worse than pipeline-only %.4f", res.Eval.Objective, base.Eval.Objective)
	}
	if res.Tried != 3 {
		t.Errorf("tried %d meshes, want 3", res.Tried)
	}
}

func TestTPWinsWhenPipelineTooDeep(t *testing.T) {
	// 8 identical devices serving a 12-layer model: a depth-8 pipeline has
	// tiny stages dominated by per-hop communication; fusing into TP
	// groups should win.
	small := model.Config{Name: "tp-test", Family: model.OPT, Hidden: 4096, FFN: 16384,
		Layers: 12, Heads: 32, VocabSize: 50272, MaxPosEmb: 2048, TiedEmbed: true}
	cl, err := hardware.NewCluster([]string{"V100"}, []int{8}, hardware.Eth100Gbps, "tp-test")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(tpSpec(cl, small), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mesh.Degrees[0] == 1 {
		t.Errorf("expected TP degree >1 for a too-deep pipeline, got mesh %v (%s)", res.Mesh.Degrees, res.Mesh.Desc)
	}
	if res.Usable < 2 {
		t.Errorf("expected ≥2 usable meshes, got %d", res.Usable)
	}
}

func TestMeshesErrors(t *testing.T) {
	if _, err := Meshes(hardware.Cluster{}); err == nil {
		t.Error("expected empty-cluster error")
	}
}
