// Package tp implements the tensor-parallelism extension sketched in the
// paper's §7 "Search for Tensor Parallelization": devices along the
// tensor-parallel dimension are viewed as ONE fused device with larger
// memory and different kernel performance (TP introduces all-reduce
// overhead), after which planning remains the same 1-D pipeline-partition
// problem the assigner already solves. The search enumerates the possible
// device meshes (TP degree per same-type node group, mirroring the 2×8 /
// 4×4 / … mesh enumeration the paper describes) and runs the assigner on
// each derived cluster.
package tp

import (
	"fmt"

	"repro/internal/assigner"
	"repro/internal/hardware"
)

// Metric family names exported by the TP mesh search.
const (
	metricMeshesTried  = "llmpq_tp_meshes_tried_total"
	metricMeshesUsable = "llmpq_tp_meshes_usable_total"
)

// Efficiency is the sustained-throughput multiplier per TP degree: the
// all-reduce after every attention and MLP block erodes linear scaling.
func Efficiency(degree int) float64 {
	switch {
	case degree <= 1:
		return 1
	case degree == 2:
		return 0.92
	case degree <= 4:
		return 0.85
	default:
		return 0.78
	}
}

// FuseGPU builds the fused device a TP group of `degree` GPUs presents to
// the pipeline planner.
func FuseGPU(g hardware.GPU, degree int) (hardware.GPU, error) {
	if degree < 1 {
		return hardware.GPU{}, fmt.Errorf("tp: degree must be ≥1, got %d", degree)
	}
	if degree == 1 {
		return g, nil
	}
	eff := Efficiency(degree)
	out := g
	out.Name = fmt.Sprintf("%dx%s-tp", degree, g.Name)
	out.MemoryGB = g.MemoryGB * float64(degree)
	out.FP16TFLOPS = g.FP16TFLOPS * float64(degree) * eff
	out.BandwidthGBs = g.BandwidthGBs * float64(degree) * eff
	// Two all-reduces per decoder layer over NVLink: latency-dominated for
	// decode-size messages; grows with group size.
	out.LaunchOverheadUS = g.LaunchOverheadUS + 18*float64(degree-1)
	out.ComputeEff = g.ComputeEff
	out.MemEff = g.MemEff
	return out, nil
}

// Mesh is one TP configuration: the degree chosen for each same-type node
// group, plus the derived cluster the pipeline planner sees.
type Mesh struct {
	Degrees []int // one per device group, in group order
	Cluster hardware.Cluster
	Desc    string
}

// group is a maximal run of same-type devices on one node.
type group struct {
	gpu   hardware.GPU
	node  int
	count int
}

func groupsOf(c hardware.Cluster) []group {
	var gs []group
	for _, d := range c.Devices {
		if len(gs) > 0 {
			last := &gs[len(gs)-1]
			if last.gpu.Name == d.GPU.Name && last.node == d.Node {
				last.count++
				continue
			}
		}
		gs = append(gs, group{gpu: d.GPU, node: d.Node, count: 1})
	}
	return gs
}

// Meshes enumerates the TP configurations of a cluster: per same-type node
// group, every degree dividing the group size (TP is intra-node, over
// NVLink, as in the paper's testbed). The identity mesh (all degrees 1) is
// always first.
func Meshes(c hardware.Cluster) ([]Mesh, error) {
	gs := groupsOf(c)
	if len(gs) == 0 {
		return nil, fmt.Errorf("tp: empty cluster")
	}
	options := make([][]int, len(gs))
	for i, g := range gs {
		for d := 1; d <= g.count; d++ {
			if g.count%d == 0 {
				options[i] = append(options[i], d)
			}
		}
	}
	var out []Mesh
	var rec func(i int, cur []int)
	rec = func(i int, cur []int) {
		if i == len(gs) {
			m, err := buildMesh(c, gs, cur)
			if err == nil {
				out = append(out, m)
			}
			return
		}
		for _, d := range options[i] {
			rec(i+1, append(cur, d))
		}
	}
	rec(0, nil)
	if len(out) == 0 {
		return nil, fmt.Errorf("tp: no valid meshes")
	}
	return out, nil
}

func buildMesh(c hardware.Cluster, gs []group, degrees []int) (Mesh, error) {
	m := Mesh{Degrees: append([]int(nil), degrees...)}
	derived := hardware.Cluster{
		Name:      c.Name + "+tp",
		InterNode: c.InterNode,
		ModelName: c.ModelName,
	}
	id := 0
	desc := ""
	for i, g := range gs {
		d := degrees[i]
		fused, err := FuseGPU(g.gpu, d)
		if err != nil {
			return Mesh{}, err
		}
		units := g.count / d
		for u := 0; u < units; u++ {
			derived.Devices = append(derived.Devices, hardware.Device{ID: id, GPU: fused, Node: g.node})
			id++
		}
		if i > 0 {
			desc += " + "
		}
		desc += fmt.Sprintf("%dx(%s)", units, fused.Name)
	}
	m.Cluster = derived
	m.Desc = desc
	return m, nil
}

// Result is the outcome of the TP-extended search.
type Result struct {
	Mesh   Mesh
	Plan   *assigner.Plan
	Eval   assigner.Evaluation
	Tried  int // meshes attempted
	Usable int // meshes that produced a feasible plan
}

// Optimize runs Algorithm 1 over every mesh of the spec's cluster and
// returns the best plan across meshes — the §7 extension in full.
func Optimize(s *assigner.Spec, timer assigner.LayerTimer) (*Result, error) {
	meshes, err := Meshes(s.Cluster)
	if err != nil {
		return nil, err
	}
	var best *Result
	tried := 0
	usable := 0
	for _, m := range meshes {
		tried++
		sub := *s
		sub.Cluster = m.Cluster
		if sub.Cluster.NumDevices() > subLayerGroups(&sub) {
			continue // more stages than layer groups: skip
		}
		res, err := assigner.Optimize(&sub, timer)
		if err != nil {
			continue // mesh infeasible (e.g. nothing fits): try the next
		}
		usable++
		if best == nil || res.Eval.Objective < best.Eval.Objective {
			best = &Result{Mesh: m, Plan: res.Plan, Eval: res.Eval}
		}
	}
	// Per-mesh solver metrics already flowed through sub.Obs (Spec is
	// copied by value); the mesh tallies are recorded here. Nil-safe:
	// a nil registry hands out nil counters whose Add is a no-op.
	s.Obs.Counter(metricMeshesTried).Add(float64(tried))
	s.Obs.Counter(metricMeshesUsable).Add(float64(usable))
	if best == nil {
		return nil, fmt.Errorf("tp: no mesh admits a feasible plan for %s", s.Cfg.Name)
	}
	best.Tried = tried
	best.Usable = usable
	return best, nil
}

func subLayerGroups(s *assigner.Spec) int {
	g := s.Group
	if g <= 1 {
		g = 1
	}
	return (s.Cfg.Layers + g - 1) / g
}
