package serve

import (
	"strconv"

	"repro/internal/obs"
)

// Ctrl-registry metric families: wall-clock HTTP serving metrics that
// must never land in the byte-diffed sim registry (simctrl.manifest
// lists llmpq_serve_* as ctrl families; the registrysplit analyzer
// enforces the placement).
const (
	metricHTTPRequests      = "llmpq_serve_http_requests_total"
	metricHTTPLatency       = "llmpq_serve_http_request_seconds"
	metricHTTPInflight      = "llmpq_serve_http_inflight"
	metricHTTPShed          = "llmpq_serve_http_shed_total"
	metricHTTPDrainRefusals = "llmpq_serve_http_drain_refusals_total"
	metricHTTPDrains        = "llmpq_serve_http_drains_total"
	metricHTTPSSEBytes      = "llmpq_serve_http_sse_bytes_total"
)

// ctrlMetrics pre-resolves the gateway's wall-clock families on the
// control registry. A nil registry yields no-op metrics (obs contract).
type ctrlMetrics struct {
	ctrl          *obs.Registry
	latency       *obs.Histogram
	inflight      *obs.Gauge
	shed          *obs.Counter
	drainRefusals *obs.Counter
	drains        *obs.Counter
	sseBytes      *obs.Counter
}

func newCtrlMetrics(ctrl *obs.Registry) *ctrlMetrics {
	return &ctrlMetrics{
		ctrl:          ctrl,
		latency:       ctrl.Histogram(metricHTTPLatency, obs.TimeBuckets()),
		inflight:      ctrl.Gauge(metricHTTPInflight),
		shed:          ctrl.Counter(metricHTTPShed),
		drainRefusals: ctrl.Counter(metricHTTPDrainRefusals),
		drains:        ctrl.Counter(metricHTTPDrains),
		sseBytes:      ctrl.Counter(metricHTTPSSEBytes),
	}
}

// request counts one finished HTTP exchange. The path label is the
// matched route, never the raw URL, so cardinality stays bounded.
func (m *ctrlMetrics) request(route string, code int) {
	m.ctrl.Counter(metricHTTPRequests,
		obs.L("code", strconv.Itoa(code)), obs.L("path", route)).Inc()
}
