package serve

import (
	"strings"
)

// Wire types for the OpenAI-compatible completions surface. Only the
// fields the gateway acts on are declared; unknown fields in request
// bodies are tolerated and ignored, like the real API.

// CompletionRequest is the POST /v1/completions body.
type CompletionRequest struct {
	Model  string `json:"model"`
	Prompt string `json:"prompt"`
	// MaxTokens is the generation budget. nil selects the server default;
	// zero or negative values are rejected with 400, values above the
	// server cap with 400 as well (the simulator bounds per-request work).
	MaxTokens *int `json:"max_tokens"`
	// Stream selects SSE token streaming over a single JSON response.
	Stream bool `json:"stream"`
}

// Choice is one completion alternative (the gateway always returns one).
type Choice struct {
	Text         string  `json:"text"`
	Index        int     `json:"index"`
	FinishReason *string `json:"finish_reason"`
}

// Usage is the OpenAI token-accounting block.
type Usage struct {
	PromptTokens     int `json:"prompt_tokens"`
	CompletionTokens int `json:"completion_tokens"`
	TotalTokens      int `json:"total_tokens"`
}

// Meta is the llmpq extension block: serving state the paper's adaptive
// machinery may have changed while the request ran, surfaced per
// response so clients observe downshifts instead of inferring them.
type Meta struct {
	// Bits is the weight precision the request finished under.
	Bits int `json:"bits"`
	// Downshifts counts precision drops since the server started.
	Downshifts int `json:"downshifts"`
	// KVCapacityTokens is the current paged-KV pool size.
	KVCapacityTokens int `json:"kv_capacity_tokens"`
	// SimLatencySeconds is the request's simulated queue+serve latency.
	SimLatencySeconds float64 `json:"sim_latency_seconds"`
	// PeakBatch is the largest continuous batch any decode step has run.
	PeakBatch int `json:"peak_batch"`
	// DegradationTier is how many precision steps below the configured
	// bitwidth the engine is serving at (0 = full precision).
	DegradationTier int `json:"degradation_tier"`
	// Healing reports the engine has upshifted at least one step back
	// from its deepest downshift but has not reached full precision yet.
	Healing bool `json:"healing,omitempty"`
}

// CompletionResponse is both the unary response body and the SSE chunk
// payload (OpenAI's legacy completions stream reuses the object shape).
type CompletionResponse struct {
	ID      string   `json:"id"`
	Object  string   `json:"object"`
	Created int64    `json:"created"`
	Model   string   `json:"model"`
	Choices []Choice `json:"choices"`
	Usage   *Usage   `json:"usage,omitempty"`
	LLMPQ   *Meta    `json:"llmpq,omitempty"`
}

// apiError mirrors the OpenAI error envelope.
type apiError struct {
	Message string `json:"message"`
	Type    string `json:"type"`
	Code    string `json:"code,omitempty"`
}

type errorResponse struct {
	Error apiError `json:"error"`
}

// PromptTokens estimates a prompt's token count. The repo has no real
// tokenizer — the simulator only consumes a length — so
// whitespace-separated fields stand in for tokens, deterministically.
func PromptTokens(s string) int { return len(strings.Fields(s)) }

// tokenVocab is the synthetic decode vocabulary: the simulator schedules
// tokens, it does not predict them, so streamed text is a deterministic
// cycle — enough for clients to count and display.
var tokenVocab = [...]string{
	"the", "planner", "serves", "quantized", "layers", "across",
	"heterogeneous", "devices", "with", "phase", "aware", "partitions",
	"and", "adaptive", "bitwidths", "under", "paged", "kv", "batching", "pressure",
}

// tokenText renders the i-th generated token (0-based) of a completion.
func tokenText(i int) string {
	if i < 0 {
		i = 0
	}
	return " " + tokenVocab[i%len(tokenVocab)]
}

// completionText renders the full n-token completion.
func completionText(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(tokenText(i))
	}
	return b.String()
}
