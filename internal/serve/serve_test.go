package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/online"
)

// testOptions is the baseline gateway configuration for the e2e suite:
// a small generation cap keeps requests short, a modest StepHold paces
// the scheduler so concurrent arrivals join one continuous batch.
func testOptions() Options {
	return Options{
		Engine: online.Config{
			GPU: hardware.A100, Model: model.OPT13B, Bits: 8,
			MaxNew: 32, MaxBatch: 8, ShedDepth: 64, Seed: 7,
		},
		StepHold:  time.Millisecond,
		RetrySeed: 7,
	}
}

// newTestServer starts a gateway plus an httptest front end and tears
// both down with the test.
func newTestServer(t *testing.T, mutate func(*Options)) (*Server, *httptest.Server) {
	t.Helper()
	opts := testOptions()
	opts.Logf = t.Logf
	if mutate != nil {
		mutate(&opts)
	}
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return srv, ts
}

func postCompletion(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/completions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeCompletion(t *testing.T, resp *http.Response) CompletionResponse {
	t.Helper()
	defer resp.Body.Close()
	var cr CompletionResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatalf("decode completion: %v", err)
	}
	return cr
}

// sseStream collects a full SSE exchange: the data frames before the
// terminator, and whether [DONE] arrived.
type sseStream struct {
	chunks []CompletionResponse
	done   bool
}

// tokens counts the token-bearing chunks (non-empty choice text).
func (s sseStream) tokens() int {
	n := 0
	for _, c := range s.chunks {
		if len(c.Choices) == 1 && c.Choices[0].Text != "" {
			n++
		}
	}
	return n
}

// final returns the usage-bearing terminal chunk.
func (s sseStream) final(t *testing.T) CompletionResponse {
	t.Helper()
	if len(s.chunks) == 0 {
		t.Fatal("stream carried no chunks")
	}
	last := s.chunks[len(s.chunks)-1]
	if last.Usage == nil {
		t.Fatalf("terminal chunk has no usage block: %+v", last)
	}
	return last
}

// readSSE parses "data: ..." frames off resp until [DONE] or EOF.
func readSSE(t *testing.T, resp *http.Response) sseStream {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content-type %q", ct)
	}
	return readSSEFrom(t, resp.Body)
}

// openStream consumes exactly the first SSE data frame off a streaming
// response — proof the request was admitted and is decoding — and
// returns a buffered reader positioned after it for readSSEFrom.
func openStream(t *testing.T, resp *http.Response) *bufio.Reader {
	t.Helper()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("first frame: %v", err)
	}
	if !strings.HasPrefix(line, "data: ") {
		t.Fatalf("first frame %q is not an SSE data line", line)
	}
	return br
}

// readSSEFrom parses frames from r (a fresh body or an openStream
// continuation) until [DONE] or EOF.
func readSSEFrom(t *testing.T, r io.Reader) sseStream {
	t.Helper()
	var out sseStream
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		payload, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			t.Fatalf("malformed SSE line %q", line)
		}
		if payload == "[DONE]" {
			out.done = true
			break
		}
		var cr CompletionResponse
		if err := json.Unmarshal([]byte(payload), &cr); err != nil {
			t.Fatalf("bad chunk %q: %v", payload, err)
		}
		out.chunks = append(out.chunks, cr)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read stream: %v", err)
	}
	return out
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestCompletionUnary covers the non-streaming path end to end: the
// OpenAI response shape, token accounting, and the llmpq metadata block.
func TestCompletionUnary(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	resp := postCompletion(t, ts.URL, `{"prompt": "partition the layers across devices", "max_tokens": 8}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	cr := decodeCompletion(t, resp)
	if cr.Object != "text_completion" || cr.Model != "opt-13b" || !strings.HasPrefix(cr.ID, "cmpl-") {
		t.Errorf("envelope %+v", cr)
	}
	if len(cr.Choices) != 1 || cr.Choices[0].FinishReason == nil || *cr.Choices[0].FinishReason != "length" {
		t.Fatalf("choices %+v", cr.Choices)
	}
	if got := len(strings.Fields(cr.Choices[0].Text)); got != 8 {
		t.Errorf("completion carries %d tokens, want 8", got)
	}
	if cr.Usage == nil || cr.Usage.PromptTokens != 5 || cr.Usage.CompletionTokens != 8 || cr.Usage.TotalTokens != 13 {
		t.Errorf("usage %+v", cr.Usage)
	}
	if cr.LLMPQ == nil || cr.LLMPQ.Bits != 8 || cr.LLMPQ.KVCapacityTokens <= 0 || cr.LLMPQ.SimLatencySeconds <= 0 {
		t.Errorf("llmpq meta %+v", cr.LLMPQ)
	}
	if st := srv.EngineStats(); st.Completed != 1 || st.GeneratedTok != 8 {
		t.Errorf("engine stats %+v", st)
	}
}

// TestCompletionStream covers SSE streaming: one chunk per decoded
// token, a usage-bearing terminal chunk, the [DONE] terminator — and the
// token count agreeing with the engine's own Stats.
func TestCompletionStream(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	resp := postCompletion(t, ts.URL, `{"prompt": "stream please", "max_tokens": 12, "stream": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	st := readSSE(t, resp)
	if !st.done {
		t.Error("stream never sent [DONE]")
	}
	if st.tokens() != 12 {
		t.Errorf("streamed %d token chunks, want 12", st.tokens())
	}
	fin := st.final(t)
	if fin.Usage.CompletionTokens != 12 || fin.Usage.PromptTokens != 2 {
		t.Errorf("final usage %+v", fin.Usage)
	}
	if fin.LLMPQ == nil || fin.LLMPQ.Bits != 8 {
		t.Errorf("final meta %+v", fin.LLMPQ)
	}
	es := srv.EngineStats()
	if es.GeneratedTok != st.tokens() {
		t.Errorf("SSE token count %d != engine GeneratedTok %d", st.tokens(), es.GeneratedTok)
	}
}

// TestConcurrentClientsBatch drives four concurrent streaming clients
// and checks they decode inside ONE continuous batch: the engine's peak
// step batch must reach the client count, and every stream still gets
// its full token budget.
func TestConcurrentClientsBatch(t *testing.T) {
	const clients = 4
	srv, ts := newTestServer(t, func(o *Options) {
		// A wider hold keeps the batch window open while the clients dial.
		o.StepHold = 5 * time.Millisecond
	})
	var wg sync.WaitGroup
	streams := make([]sseStream, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"prompt": "client %d asks for tokens", "max_tokens": 16, "stream": true}`, i)
			resp, err := http.Post(ts.URL+"/v1/completions", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("client %d: status %d", i, resp.StatusCode)
				resp.Body.Close()
				return
			}
			streams[i] = readSSE(t, resp)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i, st := range streams {
		if st.tokens() != 16 || !st.done {
			t.Errorf("client %d: %d tokens, done=%v, want 16/true", i, st.tokens(), st.done)
		}
	}
	es := srv.EngineStats()
	if es.Completed != clients {
		t.Errorf("completed %d, want %d", es.Completed, clients)
	}
	if es.GeneratedTok != clients*16 {
		t.Errorf("generated %d tokens, want %d", es.GeneratedTok, clients*16)
	}
	if es.PeakBatch < clients {
		t.Errorf("peak batch %d: the %d concurrent clients never decoded together", es.PeakBatch, clients)
	}
}

// TestShed429 pins the load-shed contract: with the batch full and the
// waiting queue at the ShedDepth watermark, a new request is refused
// with 429 and a positive Retry-After derived from the retry policy —
// and once the backlog drains the same server admits work again.
func TestShed429(t *testing.T) {
	srv, ts := newTestServer(t, func(o *Options) {
		o.Engine.MaxBatch = 1
		o.Engine.ShedDepth = 1
		o.StepHold = 10 * time.Millisecond // ~320ms of decode per request
	})
	// Client A: admitted into the (size-1) batch. Reading its first token
	// proves it left the queue.
	respA := postCompletion(t, ts.URL, `{"prompt": "long running request", "max_tokens": 32, "stream": true}`)
	defer respA.Body.Close()
	brA := openStream(t, respA)
	// Client B: admitted to the queue, cannot batch (MaxBatch 1).
	type result struct {
		code int
		err  error
	}
	bDone := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/completions", "application/json",
			strings.NewReader(`{"prompt": "queued request", "max_tokens": 4}`))
		if err != nil {
			bDone <- result{err: err}
			return
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			bDone <- result{err: err}
			return
		}
		bDone <- result{code: resp.StatusCode}
	}()
	waitFor(t, "client B to queue", func() bool { return srv.Waiting() == 1 })

	// Client C: queue is at the watermark — shed.
	respC := postCompletion(t, ts.URL, `{"prompt": "one request too many", "max_tokens": 4}`)
	defer respC.Body.Close()
	if respC.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("client C status %d, want 429", respC.StatusCode)
	}
	ra, err := strconv.Atoi(respC.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After %q, want a positive integer", respC.Header.Get("Retry-After"))
	}
	var envC errorResponse
	if err := json.NewDecoder(respC.Body).Decode(&envC); err != nil {
		t.Fatalf("decode 429 body: %v", err)
	}
	if envC.Error.Type != "rate_limit_error" {
		t.Errorf("429 error type %q", envC.Error.Type)
	}

	// Recovery: A and B complete; a post-backlog request sails through.
	// openStream already consumed A's first token, so 31 remain.
	if stA := readSSEFrom(t, brA); stA.tokens() != 31 || !stA.done {
		t.Errorf("client A streamed %d more tokens done=%v, want 31/true", stA.tokens(), stA.done)
	}
	rb := <-bDone
	if rb.err != nil || rb.code != http.StatusOK {
		t.Fatalf("client B: code %d err %v", rb.code, rb.err)
	}
	respD := postCompletion(t, ts.URL, `{"prompt": "after recovery", "max_tokens": 4}`)
	if respD.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery status %d", respD.StatusCode)
	}
	decodeCompletion(t, respD)
	if v := srv.cm.shed.Value(); v != 1 {
		t.Errorf("ctrl shed counter %v, want 1", v)
	}
}

// TestGracefulDrain is the SIGTERM-equivalent: Drain stops admission
// (new requests get 503, /healthz flips to 503) while the in-flight
// stream runs to completion, and Drain only returns once it has.
func TestGracefulDrain(t *testing.T) {
	srv, ts := newTestServer(t, func(o *Options) {
		o.StepHold = 10 * time.Millisecond
	})
	resp := postCompletion(t, ts.URL, `{"prompt": "drain survivor", "max_tokens": 32, "stream": true}`)
	defer resp.Body.Close()
	br := openStream(t, resp)

	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(context.Background()) }()
	waitFor(t, "drain to start", srv.Draining)

	// New work is refused while the old stream keeps flowing.
	refused := postCompletion(t, ts.URL, `{"prompt": "too late", "max_tokens": 4}`)
	defer refused.Body.Close()
	if refused.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("admission during drain: status %d, want 503", refused.StatusCode)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: %d, want 503", hz.StatusCode)
	}

	// The in-flight request still completes in full (one token was
	// consumed by openStream, 31 remain).
	st := readSSEFrom(t, br)
	if st.tokens() != 31 || !st.done {
		t.Errorf("in-flight stream: %d more tokens done=%v, want 31/true", st.tokens(), st.done)
	}
	select {
	case err := <-drainDone:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain never returned after the in-flight request finished")
	}
	es := srv.EngineStats()
	if es.Completed != 1 {
		t.Errorf("completed %d, want 1", es.Completed)
	}
	if v := srv.cm.drainRefusals.Value(); v != 1 {
		t.Errorf("drain refusal counter %v, want 1", v)
	}
}

// TestBadRequests maps malformed inputs to 4xx, never 5xx: the fuzz
// target generalizes this, the table pins the specific contract.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", `{"prompt": `, http.StatusBadRequest},
		{"empty prompt", `{"prompt": "", "max_tokens": 4}`, http.StatusBadRequest},
		{"whitespace prompt", `{"prompt": "   ", "max_tokens": 4}`, http.StatusBadRequest},
		{"zero max_tokens", `{"prompt": "hi there", "max_tokens": 0}`, http.StatusBadRequest},
		{"negative max_tokens", `{"prompt": "hi there", "max_tokens": -5}`, http.StatusBadRequest},
		{"max_tokens above cap", `{"prompt": "hi there", "max_tokens": 33}`, http.StatusBadRequest},
		{"context overflow", `{"prompt": "` + strings.Repeat("w ", 2048) + `", "max_tokens": 4}`, http.StatusBadRequest},
		{"wrong type", `{"prompt": 42}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postCompletion(t, ts.URL, tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("status %d, want %d", resp.StatusCode, tc.want)
			}
			var env errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Errorf("error envelope: %v", err)
			}
		})
	}
	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/completions")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET status %d, want 405", resp.StatusCode)
		}
	})
}

// fetch returns the body of a GET as a string.
func fetch(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMetricsSplit checks the two-registry contract over HTTP: /metrics
// carries both the wall-clock llmpq_serve_* families and the sim
// families, while /metrics/sim — the byte-diffed artifact — contains
// only deterministic llmpq_online_* series.
func TestMetricsSplit(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp := postCompletion(t, ts.URL, `{"prompt": "observe me", "max_tokens": 4}`)
	decodeCompletion(t, resp)

	both := fetch(t, ts.URL+"/metrics")
	for _, fam := range []string{metricHTTPRequests, metricHTTPLatency, metricHTTPInflight, "llmpq_online_completed_total"} {
		if !strings.Contains(both, fam) {
			t.Errorf("/metrics missing family %s", fam)
		}
	}
	sim := fetch(t, ts.URL+"/metrics/sim")
	if strings.Contains(sim, "llmpq_serve_") {
		t.Error("/metrics/sim leaked wall-clock llmpq_serve_* families into the byte-diffed artifact")
	}
	if !strings.Contains(sim, "llmpq_online_completed_total") {
		t.Error("/metrics/sim missing the simulation families")
	}
}

// TestSimRegistryDeterminism is the byte-diff property the serve smoke
// in verify.sh stands on: two identically-seeded servers fed the same
// sequential request sequence expose byte-identical /metrics/sim dumps,
// even though their wall-clock ctrl metrics differ.
func TestSimRegistryDeterminism(t *testing.T) {
	run := func() string {
		_, ts := newTestServer(t, nil)
		for _, body := range []string{
			`{"prompt": "first request with a few tokens", "max_tokens": 8}`,
			`{"prompt": "second", "max_tokens": 16, "stream": true}`,
			`{"prompt": "third request", "max_tokens": 4}`,
		} {
			resp := postCompletion(t, ts.URL, body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}
			if strings.Contains(body, `"stream": true`) {
				readSSE(t, resp)
			} else {
				decodeCompletion(t, resp)
			}
		}
		return fetch(t, ts.URL+"/metrics/sim")
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("sim registry dumps diverged across identical runs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, "llmpq_online_completed_total") {
		t.Error("sim dump missing completion counter")
	}
}

// TestServeSIGTERMDrain exercises Server.Serve's context-driven
// shutdown end to end on a real listener: cancelling the context (what
// the SIGTERM NotifyContext does in cmd/llmpq-serve) drains in-flight
// work before Serve returns.
func TestServeSIGTERMDrain(t *testing.T) {
	opts := testOptions()
	opts.StepHold = 10 * time.Millisecond
	opts.Logf = t.Logf
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := listenLoopback()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, ln, 10*time.Second) }()
	url := "http://" + ln.Addr().String()

	resp, err := http.Post(url+"/v1/completions", "application/json",
		strings.NewReader(`{"prompt": "outlive the signal", "max_tokens": 32, "stream": true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := openStream(t, resp)
	cancel() // the SIGTERM

	st := readSSEFrom(t, br)
	if st.tokens() != 31 || !st.done {
		t.Errorf("in-flight stream after SIGTERM: %d more tokens done=%v, want 31/true", st.tokens(), st.done)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve never returned after drain")
	}
	if es := srv.EngineStats(); es.Completed != 1 {
		t.Errorf("completed %d, want 1", es.Completed)
	}
}

// listenLoopback binds an ephemeral loopback port.
func listenLoopback() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

// TestSSEFrameEncoding pins the framing contract the fuzz target
// explores: payload text cannot forge a frame boundary.
func TestSSEFrameEncoding(t *testing.T) {
	frame, err := encodeSSEFrame(map[string]string{"text": "line\n\nbreak"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(frame, []byte("\n\n")) {
		t.Errorf("frame %q missing terminator", frame)
	}
	if n := bytes.Count(frame, []byte("\n\n")); n != 1 {
		t.Errorf("payload newlines forged %d frame boundaries", n)
	}
	if !bytes.HasPrefix(frame, []byte("data: ")) {
		t.Errorf("frame %q missing data prefix", frame)
	}
}

// TestUnfittableRequest429: a request that passes shape validation but
// can never fit the paged-KV pool is shed at the admission step — the
// handler must turn that post-admission OnShed into a 429 with a
// Retry-After hint, on both the unary and the streaming path (where the
// 200 has not been committed yet).
func TestUnfittableRequest429(t *testing.T) {
	srv, ts := newTestServer(t, func(o *Options) {
		o.Engine.GPU = hardware.T4 // opt-13b at 8-bit: pool < 1k tokens
	})
	pool := srv.EngineStats().KVCapacityTok
	prompt := strings.Repeat("w ", pool+1)
	for _, stream := range []bool{false, true} {
		body := fmt.Sprintf(`{"prompt": "%s", "max_tokens": 32, "stream": %v}`, prompt, stream)
		resp := postCompletion(t, ts.URL, body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("stream=%v: status %d, want 429", stream, resp.StatusCode)
		}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
			t.Errorf("stream=%v: Retry-After %q", stream, resp.Header.Get("Retry-After"))
		}
		resp.Body.Close()
	}
	// A fittable request on the same tiny pool still completes.
	resp := postCompletion(t, ts.URL, `{"prompt": "small prompt fits fine", "max_tokens": 4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fittable request status %d", resp.StatusCode)
	}
	decodeCompletion(t, resp)
}

// TestCloseFailsInflight: Close (the abort path, unlike Drain) fails
// open streams immediately — the unary handler answers 500, a committed
// stream is cut without [DONE] — and the scheduler exits with the
// backlog unfinished.
func TestCloseFailsInflight(t *testing.T) {
	opts := testOptions()
	opts.StepHold = 10 * time.Millisecond
	opts.Logf = t.Logf
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type unary struct {
		code int
		err  error
	}
	uc := make(chan unary, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/completions", "application/json",
			strings.NewReader(`{"prompt": "doomed unary", "max_tokens": 32}`))
		if err != nil {
			uc <- unary{err: err}
			return
		}
		defer resp.Body.Close()
		uc <- unary{code: resp.StatusCode}
	}()
	respS := postCompletion(t, ts.URL, `{"prompt": "doomed stream", "max_tokens": 32, "stream": true}`)
	defer respS.Body.Close()
	brS := openStream(t, respS)
	waitFor(t, "both requests in flight", func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return srv.inflight == 2
	})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if u := <-uc; u.err != nil || u.code != http.StatusInternalServerError {
		t.Errorf("aborted unary: code %d err %v, want 500", u.code, u.err)
	}
	if st := readSSEFrom(t, brS); st.done {
		t.Error("aborted stream still delivered [DONE]")
	}
	// Post-close admission is refused outright.
	late := postCompletion(t, ts.URL, `{"prompt": "after close", "max_tokens": 4}`)
	defer late.Body.Close()
	if late.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-close status %d, want 503", late.StatusCode)
	}
}

// TestDrainContextExpiry: a Drain bounded by an already-expired context
// returns the context error without closing the scheduler; a second,
// unbounded Drain then completes normally.
func TestDrainContextExpiry(t *testing.T) {
	srv, ts := newTestServer(t, func(o *Options) {
		o.StepHold = 10 * time.Millisecond
	})
	resp := postCompletion(t, ts.URL, `{"prompt": "slow request", "max_tokens": 32, "stream": true}`)
	defer resp.Body.Close()
	br := openStream(t, resp)

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Drain(expired); !errors.Is(err, context.Canceled) {
		t.Fatalf("bounded drain returned %v, want context.Canceled", err)
	}
	// Still draining, still serving the in-flight stream.
	if !srv.Draining() {
		t.Error("server stopped draining after the bounded attempt")
	}
	if st := readSSEFrom(t, br); st.tokens() != 31 || !st.done {
		t.Errorf("in-flight stream: %d tokens done=%v", st.tokens(), st.done)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestClientDisconnectMidStream: a client that vanishes mid-stream must
// not wedge the scheduler — the engine finishes the request and the
// server keeps serving others.
func TestClientDisconnectMidStream(t *testing.T) {
	srv, ts := newTestServer(t, func(o *Options) {
		o.StepHold = 5 * time.Millisecond
	})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/completions",
		strings.NewReader(`{"prompt": "abandoned stream", "max_tokens": 32, "stream": true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	openStream(t, resp)
	cancel() // client walks away mid-decode
	resp.Body.Close()

	// The abandoned request still runs to completion in the engine.
	waitFor(t, "abandoned request to finish", func() bool {
		return srv.EngineStats().Completed == 1
	})
	next := postCompletion(t, ts.URL, `{"prompt": "next client", "max_tokens": 4}`)
	if next.StatusCode != http.StatusOK {
		t.Fatalf("post-disconnect status %d", next.StatusCode)
	}
	decodeCompletion(t, next)
}

// TestRegistryAccessors: the wired registries round-trip through the
// server, and defaults are allocated when omitted.
func TestRegistryAccessors(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	if srv.SimRegistry() == nil || srv.CtrlRegistry() == nil {
		t.Fatal("nil registry from accessor")
	}
	if srv.SimRegistry() == srv.CtrlRegistry() {
		t.Fatal("sim and ctrl registries must be distinct")
	}
}

// failWriter drops the connection after n successful writes.
type failWriter struct {
	hdr    http.Header
	writes int
	failAt int
}

func (f *failWriter) Header() http.Header { return f.hdr }
func (f *failWriter) WriteHeader(int)     {}
func (f *failWriter) Write(b []byte) (int, error) {
	f.writes++
	if f.writes >= f.failAt {
		return 0, fmt.Errorf("broken pipe")
	}
	return len(b), nil
}

// TestSSEWriterErrorLatch: the first write error latches — every later
// Event and Done is refused with the same error and no further bytes
// are counted.
func TestSSEWriterErrorLatch(t *testing.T) {
	sw := newSSEWriter(&failWriter{hdr: http.Header{}, failAt: 2})
	if err := sw.Event(map[string]int{"ok": 1}); err != nil {
		t.Fatalf("first event: %v", err)
	}
	n := sw.Bytes()
	if n == 0 {
		t.Fatal("no bytes counted for the successful frame")
	}
	err := sw.Event(map[string]int{"ok": 2})
	if err == nil {
		t.Fatal("write past failure succeeded")
	}
	if err2 := sw.Done(); err2 == nil || err2.Error() != err.Error() {
		t.Errorf("Done after failure: %v, want the latched %v", err2, err)
	}
	if got := sw.Event(map[string]int{"ok": 3}); got == nil {
		t.Error("Event after failure must refuse")
	}
	if sw.Bytes() != n {
		t.Errorf("bytes grew after failure: %d -> %d", n, sw.Bytes())
	}
	// Unencodable payloads surface (and latch) an encode error.
	sw2 := newSSEWriter(&failWriter{hdr: http.Header{}, failAt: 100})
	if err := sw2.Event(make(chan int)); err == nil {
		t.Error("unencodable payload must error")
	}
	if err := sw2.Done(); err == nil {
		t.Error("encode error must latch")
	}
}

// TestTokenText pins the synthetic vocabulary's edge cases.
func TestTokenText(t *testing.T) {
	if tokenText(-1) != tokenText(0) {
		t.Error("negative index must clamp to the first token")
	}
	if got := len(strings.Fields(completionText(5))); got != 5 {
		t.Errorf("completionText(5) has %d fields", got)
	}
	if completionText(0) != "" {
		t.Errorf("completionText(0) = %q", completionText(0))
	}
}
