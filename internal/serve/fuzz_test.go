package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/online"
)

// fuzzServer is one shared gateway per fuzz process: StepHold zero so
// admitted requests complete as fast as the host can step, ShedDepth
// zero so the watermark never refuses (every parse-accepted input
// exercises the full path).
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
)

func fuzzGateway(t testing.TB) *Server {
	fuzzOnce.Do(func() {
		srv, err := New(Options{
			Engine: online.Config{
				GPU: hardware.A100, Model: model.OPT13B, Bits: 8,
				MaxNew: 8, MaxBatch: 8, Seed: 11,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		fuzzSrv = srv
	})
	return fuzzSrv
}

// FuzzCompletionRequest throws arbitrary bytes at the request decoder
// and the SSE frame writer. The contract under fuzz:
//
//   - the handler never panics and never returns 5xx — malformed
//     bodies, huge prompts, and zero/negative max_tokens are 4xx;
//   - any 200 is either a well-formed JSON completion or a well-formed
//     SSE stream terminated by [DONE], with no payload able to forge a
//     frame boundary.
func FuzzCompletionRequest(f *testing.F) {
	f.Add([]byte(`{"prompt": "hello world", "max_tokens": 4}`))
	f.Add([]byte(`{"prompt": "stream me", "max_tokens": 2, "stream": true}`))
	f.Add([]byte(`{"prompt": "hi", "max_tokens": 0}`))
	f.Add([]byte(`{"prompt": "hi", "max_tokens": -3}`))
	f.Add([]byte(`{"prompt": "hi", "max_tokens": 1000000}`))
	f.Add([]byte(`{"prompt": ""}`))
	f.Add([]byte(`{"prompt": `))
	f.Add([]byte(`{"prompt": 42, "stream": "yes"}`))
	f.Add([]byte(`{"prompt": "` + strings.Repeat("tok ", 4096) + `"}`))
	f.Add([]byte("\x00\xff\xfe"))
	f.Add([]byte(`{"prompt": "newline \n\n data: [DONE]", "max_tokens": 1, "stream": true}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		srv := fuzzGateway(t)
		handler := srv.Handler()

		req := httptest.NewRequest(http.MethodPost, "/v1/completions", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		done := make(chan struct{})
		go func() {
			defer close(done)
			handler.ServeHTTP(rec, req)
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("handler wedged on body %q", body)
		}

		code := rec.Code
		if code >= 500 {
			t.Fatalf("5xx (%d) for body %q: %s", code, body, rec.Body.String())
		}
		// Inputs that decode into a shape-invalid request MUST be 4xx.
		var cr CompletionRequest
		if err := json.Unmarshal(body, &cr); err == nil {
			if cr.MaxTokens != nil && *cr.MaxTokens <= 0 && code < 400 {
				t.Fatalf("max_tokens %d accepted with %d", *cr.MaxTokens, code)
			}
			if PromptTokens(cr.Prompt) == 0 && code < 400 {
				t.Fatalf("empty prompt accepted with %d", code)
			}
		}
		if code != http.StatusOK {
			return
		}
		// Well-formedness of the success body.
		if rec.Header().Get("Content-Type") == "text/event-stream" {
			checkSSEBody(t, rec.Body.Bytes())
			return
		}
		var out CompletionResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("200 body is not a completion: %v", err)
		}
	})
}

// checkSSEBody asserts structural integrity of a captured SSE stream:
// every frame is "data: <one-line payload>", payloads before the
// terminator parse as JSON, and exactly one [DONE] arrives, last.
func checkSSEBody(t *testing.T, body []byte) {
	t.Helper()
	frames := bytes.Split(body, []byte("\n\n"))
	if len(frames) < 2 || len(frames[len(frames)-1]) != 0 {
		t.Fatalf("stream does not end with a frame terminator: %q", body)
	}
	frames = frames[:len(frames)-1]
	for i, fr := range frames {
		payload, ok := bytes.CutPrefix(fr, []byte("data: "))
		if !ok {
			t.Fatalf("frame %d lacks data prefix: %q", i, fr)
		}
		if bytes.ContainsRune(payload, '\n') {
			t.Fatalf("frame %d payload spans lines: %q", i, payload)
		}
		if bytes.Equal(payload, []byte("[DONE]")) {
			if i != len(frames)-1 {
				t.Fatalf("[DONE] at frame %d of %d", i, len(frames))
			}
			return
		}
		var cr CompletionResponse
		if err := json.Unmarshal(payload, &cr); err != nil {
			t.Fatalf("frame %d payload not JSON: %q: %v", i, payload, err)
		}
	}
	t.Fatalf("stream never terminated with [DONE]: %q", body)
}
