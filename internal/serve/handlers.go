package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// maxBodyBytes bounds request bodies so hostile prompts cannot exhaust
// memory before validation runs (the decoder sees a clean read error).
const maxBodyBytes = 1 << 20

// Handler builds the gateway's HTTP surface:
//
//	POST /v1/completions  OpenAI-compatible completion (unary or SSE)
//	GET  /healthz         readiness: 200 serving (body names degraded/healing), 503 draining
//	GET  /metrics         ctrl + sim registries concatenated (scraping)
//	GET  /metrics/sim     sim registry only (byte-diffed artifact)
//
// Every route runs under the instrumentation middleware, which records
// wall-clock latency, in-flight count, and per-route/per-code request
// totals on the ctrl registry.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/v1/completions", s.instrument("/v1/completions", s.handleCompletions))
	mux.Handle("/healthz", s.instrument("/healthz", s.handleHealthz))
	mux.Handle("/metrics", s.instrument("/metrics", s.handleMetrics))
	mux.Handle("/metrics/sim", s.instrument("/metrics/sim", s.handleSimMetrics))
	return mux
}

// statusRecorder captures the response code for instrumentation while
// forwarding Flush so SSE streaming keeps working through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a route with the ctrl-registry HTTP metrics. All of
// this is wall-clock territory — serve is a ctrl-role package — and none
// of it may touch the sim registry.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.cm.inflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		s.cm.inflight.Add(-1)
		if rec.code == 0 {
			rec.code = http.StatusOK
		}
		s.cm.latency.Observe(time.Since(start).Seconds())
		s.cm.request(route, rec.code)
	})
}

// writeJSON encodes v as the response body. Encode errors after the
// header is committed can only be logged.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.opts.Logf("serve: encode response: %v", err)
	}
}

// writeError emits the OpenAI error envelope.
func (s *Server) writeError(w http.ResponseWriter, code int, errType, msg string) {
	s.writeJSON(w, code, errorResponse{Error: apiError{
		Message: msg,
		Type:    errType,
		Code:    strconv.Itoa(code),
	}})
}

// healthBody is the /healthz response.
type healthBody struct {
	Status string `json:"status"`
	// DegradationTier is precision steps below the configured bitwidth;
	// only present while degraded or healing.
	DegradationTier int `json:"degradation_tier,omitempty"`
}

// handleHealthz reports readiness. A degraded or healing engine is still
// serving — load balancers must not evict it — so those states stay 200
// and only the body names the tier; draining alone is 503.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		s.writeJSON(w, http.StatusServiceUnavailable, healthBody{Status: "draining"})
		return
	}
	tier, healing := s.Health()
	switch {
	case healing:
		s.writeJSON(w, http.StatusOK, healthBody{Status: "healing", DegradationTier: tier})
	case tier > 0:
		s.writeJSON(w, http.StatusOK, healthBody{Status: "degraded", DegradationTier: tier})
	default:
		s.writeJSON(w, http.StatusOK, healthBody{Status: "ok"})
	}
}

// handleMetrics serves both registries for scraping: ctrl first (the
// wall-clock families), then the deterministic sim families. Scrapers
// get one endpoint; the byte-diff never reads this one.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.opts.Ctrl.WriteText(w); err != nil {
		s.opts.Logf("serve: write ctrl metrics: %v", err)
		return
	}
	if err := s.opts.Sim.WriteText(w); err != nil {
		s.opts.Logf("serve: write sim metrics: %v", err)
	}
}

// handleSimMetrics serves the sim registry alone: the deterministic
// artifact that two identically-seeded runs must reproduce byte for
// byte (scripts/verify.sh asserts exactly that).
func (s *Server) handleSimMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.opts.Sim.WriteText(w); err != nil {
		s.opts.Logf("serve: write sim metrics: %v", err)
	}
}

// decodeCompletionRequest parses and validates the request body,
// returning the resolved token counts. A non-nil error carries the
// client-facing message for a 400.
func (s *Server) decodeCompletionRequest(r *http.Request) (req CompletionRequest, promptTok, maxTok int, err error) {
	body := http.MaxBytesReader(nil, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	if err = dec.Decode(&req); err != nil {
		return req, 0, 0, fmt.Errorf("invalid JSON body: %v", err)
	}
	promptTok = PromptTokens(req.Prompt)
	if promptTok <= 0 {
		return req, 0, 0, fmt.Errorf("prompt must contain at least one token")
	}
	maxTok = s.opts.DefaultMaxTokens
	if req.MaxTokens != nil {
		maxTok = *req.MaxTokens
	}
	if maxTok <= 0 {
		return req, 0, 0, fmt.Errorf("max_tokens must be positive, got %d", maxTok)
	}
	if limit := s.opts.Engine.MaxNew; maxTok > limit {
		return req, 0, 0, fmt.Errorf("max_tokens %d exceeds the server cap %d", maxTok, limit)
	}
	return req, promptTok, maxTok, nil
}

func (s *Server) handleCompletions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "invalid_request_error", "use POST")
		return
	}
	req, promptTok, maxTok, err := s.decodeCompletionRequest(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid_request_error", err.Error())
		return
	}
	adm := s.submit(promptTok, maxTok)
	switch adm.refusal {
	case 0:
	case http.StatusServiceUnavailable:
		s.cm.drainRefusals.Inc()
		s.writeError(w, http.StatusServiceUnavailable, "server_error", "server is draining")
		return
	case http.StatusTooManyRequests:
		s.cm.shed.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(adm.retryAfter))
		s.writeError(w, http.StatusTooManyRequests, "rate_limit_error",
			"admission queue at the shed watermark; retry later")
		return
	default:
		s.writeError(w, adm.refusal, "invalid_request_error", adm.err.Error())
		return
	}
	defer s.release(adm.req)
	s.cond.Broadcast() // wake the scheduler for the new arrival

	modelName := req.Model
	if modelName == "" {
		modelName = s.opts.Engine.Model.Name
	}
	id := fmt.Sprintf("cmpl-%d", adm.req.ID())
	created := time.Now().Unix()

	if req.Stream {
		s.streamCompletion(w, r, adm, id, modelName, created, promptTok)
		return
	}
	s.unaryCompletion(w, r, adm, id, modelName, created, promptTok)
}

// unaryCompletion waits for the request to finish and writes one JSON
// body carrying the whole completion.
func (s *Server) unaryCompletion(w http.ResponseWriter, r *http.Request, adm admission, id, modelName string, created int64, promptTok int) {
	done := 0
	for {
		select {
		case <-r.Context().Done():
			// Client gone; the engine still finishes the request (release
			// drops the stream so remaining hooks are no-ops).
			return
		case ev, ok := <-adm.ch:
			if !ok {
				s.writeError(w, http.StatusInternalServerError, "server_error", "scheduler failed")
				return
			}
			switch ev.kind {
			case evToken:
				done = ev.n
			case evShed:
				s.cm.shed.Inc()
				w.Header().Set("Retry-After", strconv.Itoa(s.shedRetryAfter()))
				s.writeError(w, http.StatusTooManyRequests, "rate_limit_error",
					"request shed before admission; retry later")
				return
			case evFinish:
				done = ev.n
				reason := "length"
				s.writeJSON(w, http.StatusOK, CompletionResponse{
					ID: id, Object: "text_completion", Created: created, Model: modelName,
					Choices: []Choice{{Text: completionText(done), FinishReason: &reason}},
					Usage: &Usage{
						PromptTokens:     promptTok,
						CompletionTokens: done,
						TotalTokens:      promptTok + done,
					},
					LLMPQ: s.meta(adm.req),
				})
				return
			}
		}
	}
}

// streamCompletion relays the request's lifecycle as SSE chunks: one
// chunk per decoded token, a final usage+metadata chunk, then [DONE].
// The 200 is committed only after the first event, so a request shed at
// the admission step can still produce a clean 429.
func (s *Server) streamCompletion(w http.ResponseWriter, r *http.Request, adm admission, id, modelName string, created int64, promptTok int) {
	var sw *sseWriter
	defer func() {
		if sw != nil {
			s.cm.sseBytes.Add(float64(sw.Bytes()))
		}
	}()
	chunk := func(text string, reason *string) CompletionResponse {
		return CompletionResponse{
			ID: id, Object: "text_completion", Created: created, Model: modelName,
			Choices: []Choice{{Text: text, FinishReason: reason}},
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-adm.ch:
			if !ok {
				if sw == nil {
					s.writeError(w, http.StatusInternalServerError, "server_error", "scheduler failed")
				}
				return
			}
			switch ev.kind {
			case evShed:
				s.cm.shed.Inc()
				if sw == nil {
					w.Header().Set("Retry-After", strconv.Itoa(s.shedRetryAfter()))
					s.writeError(w, http.StatusTooManyRequests, "rate_limit_error",
						"request shed before admission; retry later")
				}
				return
			case evToken:
				if sw == nil {
					sw = newSSEWriter(w)
				}
				if err := sw.Event(chunk(tokenText(ev.n-1), nil)); err != nil {
					return
				}
			case evFinish:
				if sw == nil {
					sw = newSSEWriter(w)
				}
				reason := "length"
				final := chunk("", &reason)
				final.Usage = &Usage{
					PromptTokens:     promptTok,
					CompletionTokens: ev.n,
					TotalTokens:      promptTok + ev.n,
				}
				final.LLMPQ = s.meta(adm.req)
				if err := sw.Event(final); err != nil {
					return
				}
				if err := sw.Done(); err != nil {
					s.opts.Logf("serve: write [DONE]: %v", err)
				}
				return
			}
		}
	}
}

// shedRetryAfter is retryAfterLocked for call sites not holding the lock.
func (s *Server) shedRetryAfter() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retryAfterLocked()
}
