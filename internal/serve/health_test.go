package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/hardware"
	"repro/internal/online"
)

// getHealth probes /healthz and decodes the body.
func getHealth(t *testing.T, url string) (int, healthBody) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hb healthBody
	if err := json.NewDecoder(resp.Body).Decode(&hb); err != nil {
		t.Fatalf("decode healthz body: %v", err)
	}
	return resp.StatusCode, hb
}

// sculpt drives the engine directly under the scheduler lock. The
// scheduler goroutine is parked on the cond (nothing here broadcasts),
// so stepping the simulation by hand is race-free and deterministic.
func sculpt(t *testing.T, srv *Server, f func(e *online.Engine) error) {
	t.Helper()
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if err := f(srv.eng); err != nil {
		t.Fatal(err)
	}
}

// pressureWave submits the §7 pressure shape — enough requests to pack
// the current pool past the 90% hot watermark plus a few waiters — and
// steps until the precision drops to wantBits, then drains the wave.
// Requests are sized at 1/12 of the pool (admission packs to within one
// request of capacity, so occupancy lands above 91%) and clamped inside
// the model's context window, which a low-bit pool would otherwise dwarf.
func pressureWave(e *online.Engine, wantBits int) error {
	pool := e.KVCapacityTok()
	per := pool / 12
	if per > 2000 {
		per = 2000
	}
	if per <= 41 {
		return fmt.Errorf("pool %d too small for the pressure shape", pool)
	}
	for submitted := 0; submitted*per < pool+4*per; submitted++ {
		if _, err := e.Submit(per-40, 40); err != nil {
			return err
		}
	}
	for i := 0; e.Bits() != wantBits; i++ {
		if i > 2000 {
			return fmt.Errorf("sustained pressure never reached %d bits (at %d)", wantBits, e.Bits())
		}
		if _, err := e.StepOnce(); err != nil {
			return err
		}
	}
	for i := 0; e.Busy(); i++ {
		if i > 2000 {
			return fmt.Errorf("pressure wave never drained")
		}
		if _, err := e.StepOnce(); err != nil {
			return err
		}
	}
	return nil
}

// TestHealthzDegraded: a downshifted engine keeps serving — /healthz
// stays 200 so load balancers do not evict it — and names the state and
// tier in the body; the per-response llmpq block carries the same tier.
func TestHealthzDegraded(t *testing.T) {
	srv, ts := newTestServer(t, func(o *Options) {
		o.Engine.GPU = hardware.V100
		o.Engine.Bits = 16
		o.Engine.MaxNew = 120
		o.Engine.MaxBatch = 64
		o.Engine.Downshift = true
		o.StepHold = 0
	})
	if code, hb := getHealth(t, ts.URL); code != http.StatusOK || hb.Status != "ok" || hb.DegradationTier != 0 {
		t.Fatalf("fresh server healthz: %d %+v, want 200 ok tier 0", code, hb)
	}
	sculpt(t, srv, func(e *online.Engine) error { return pressureWave(e, 8) })
	code, hb := getHealth(t, ts.URL)
	if code != http.StatusOK {
		t.Errorf("degraded healthz code %d, want 200 — degraded is still serving", code)
	}
	if hb.Status != "degraded" || hb.DegradationTier != 1 {
		t.Errorf("degraded healthz body %+v, want status degraded tier 1", hb)
	}
	// A completion served at the degraded precision reports the tier in
	// its llmpq metadata block.
	resp := postCompletion(t, ts.URL, `{"prompt": "tier check", "max_tokens": 4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("completion at degraded precision: %d", resp.StatusCode)
	}
	cr := decodeCompletion(t, resp)
	if cr.LLMPQ == nil {
		t.Fatal("completion carried no llmpq block")
	}
	if cr.LLMPQ.DegradationTier != 1 || cr.LLMPQ.Bits != 8 || cr.LLMPQ.Healing {
		t.Errorf("llmpq block %+v, want tier 1 at 8 bits, not healing", cr.LLMPQ)
	}
}

// TestHealthzHealing drives the engine two steps down the ladder and one
// recovery step back up: /healthz reports "healing" with the remaining
// tier while the climb is in progress.
func TestHealthzHealing(t *testing.T) {
	srv, ts := newTestServer(t, func(o *Options) {
		o.Engine.GPU = hardware.V100
		o.Engine.Bits = 16
		o.Engine.MaxNew = 120
		o.Engine.MaxBatch = 64
		o.Engine.Downshift = true
		o.Engine.Upshift = true
		o.StepHold = 0
	})
	sculpt(t, srv, func(e *online.Engine) error {
		if err := pressureWave(e, 8); err != nil {
			return err
		}
		return pressureWave(e, 4)
	})
	if code, hb := getHealth(t, ts.URL); code != http.StatusOK || hb.Status != "degraded" || hb.DegradationTier != 2 {
		t.Fatalf("two downshifts deep: %d %+v, want 200 degraded tier 2", code, hb)
	}
	// Calm tail: one small long-running request holds occupancy under the
	// low-watermark until the upshift dwell expires; stop stepping the
	// moment the first recovery step lands so the climb is mid-flight.
	sculpt(t, srv, func(e *online.Engine) error {
		if _, err := e.Submit(100, 120); err != nil {
			return err
		}
		for i := 0; e.Bits() != 8; i++ {
			if i > 2000 {
				return fmt.Errorf("calm tail never upshifted (at %d bits)", e.Bits())
			}
			if _, err := e.StepOnce(); err != nil {
				return err
			}
		}
		return nil
	})
	code, hb := getHealth(t, ts.URL)
	if code != http.StatusOK {
		t.Errorf("healing healthz code %d, want 200", code)
	}
	if hb.Status != "healing" || hb.DegradationTier != 1 {
		t.Errorf("healing healthz body %+v, want status healing tier 1", hb)
	}
}
