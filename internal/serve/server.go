// Package serve is the HTTP serving front door over the online
// continuous-batching engine (DESIGN.md §12): an OpenAI-compatible REST
// gateway that admits concurrent HTTP requests into one scheduler,
// streams tokens per request over SSE, load-sheds with 429 +
// Retry-After when the admission queue sits at the ShedDepth watermark,
// and drains gracefully on shutdown (stop admitting, finish in-flight,
// then close).
//
// Observability follows the two-registry split (DESIGN.md §11): the
// deterministic serving simulation writes llmpq_online_* families to the
// sim registry — byte-diffable across identical request sequences —
// while wall-clock HTTP metrics (llmpq_serve_*) land on the ctrl
// registry and are never diffed.
package serve

import (
	"context"
	"errors"
	"math"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core/retry"
	"repro/internal/obs"
	"repro/internal/online"
)

// Options configures the gateway.
type Options struct {
	// Engine is the online-serving configuration (device, model, weight
	// precision, MaxBatch admission cap, ShedDepth watermark, optional
	// Downshift). Its Obs and Hooks fields are owned by the server and
	// overwritten: metrics go to Sim, lifecycle events drive streams.
	Engine online.Config
	// Sim is the deterministic registry (byte-diffed artifacts). Nil
	// allocates a fresh one; read it back via SimRegistry.
	Sim *obs.Registry
	// Ctrl is the wall-clock registry for HTTP metrics. Nil allocates a
	// fresh one; read it back via CtrlRegistry.
	Ctrl *obs.Registry
	// StepHold pauses the scheduler for this wall duration after every
	// decode step. Zero runs the simulation as fast as the host allows;
	// a positive hold paces token streams and widens the window in which
	// concurrent arrivals join the same continuous batch.
	StepHold time.Duration
	// DefaultMaxTokens is used when a request omits max_tokens. Zero or
	// out-of-range values fall back to Engine.MaxNew (the per-request cap).
	DefaultMaxTokens int
	// RetrySeed seeds the deterministic Retry-After derivation for 429
	// responses (core/retry jittered backoff).
	RetrySeed int64
	// Logf, when non-nil, receives control-plane log lines.
	Logf func(format string, args ...any)
}

// eventKind discriminates per-request stream events.
type eventKind int

const (
	evToken eventKind = iota
	evFinish
	evShed
)

// streamEvent is one lifecycle event forwarded from the engine hooks to
// the handler goroutine that owns the request.
type streamEvent struct {
	kind eventKind
	n    int // tokens generated so far (evToken)
}

// Server owns the engine, the scheduler goroutine, and the HTTP surface.
type Server struct {
	opts Options
	cm   *ctrlMetrics

	mu       sync.Mutex
	cond     *sync.Cond
	eng      *online.Engine
	streams  map[int]chan streamEvent
	inflight int
	draining bool
	closed   bool
	aborted  bool
	schedErr error

	schedDone chan struct{}
}

// New builds the server and starts its scheduler goroutine. Callers must
// Drain or Close it to stop the scheduler.
func New(opts Options) (*Server, error) {
	if opts.Sim == nil {
		opts.Sim = obs.NewRegistry()
	}
	if opts.Ctrl == nil {
		opts.Ctrl = obs.NewRegistry()
	}
	if opts.DefaultMaxTokens <= 0 || opts.DefaultMaxTokens > opts.Engine.MaxNew {
		opts.DefaultMaxTokens = opts.Engine.MaxNew
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	s := &Server{
		opts:      opts,
		cm:        newCtrlMetrics(opts.Ctrl),
		streams:   map[int]chan streamEvent{},
		schedDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	cfg := opts.Engine
	cfg.Obs = opts.Sim
	cfg.Hooks = online.Hooks{
		OnToken:  s.onToken,
		OnFinish: s.onFinish,
		OnShed:   s.onShed,
	}
	eng, err := online.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	s.eng = eng
	go s.schedule()
	return s, nil
}

// SimRegistry is the deterministic serving-sim registry.
func (s *Server) SimRegistry() *obs.Registry { return s.opts.Sim }

// CtrlRegistry is the wall-clock HTTP metrics registry.
func (s *Server) CtrlRegistry() *obs.Registry { return s.opts.Ctrl }

// EngineStats snapshots the serving simulation's statistics.
func (s *Server) EngineStats() online.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Stats()
}

// Waiting is the number of admitted-but-not-yet-batched requests — the
// queue depth the ShedDepth watermark is compared against.
func (s *Server) Waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Waiting()
}

// Draining reports whether the server has stopped admitting requests.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Engine hooks: all run with s.mu held (every engine call site holds
// it), forwarding events into the per-request buffered channels. The
// buffers are sized for the whole lifecycle (maxNew tokens + terminal
// event), so hooks never block the scheduler.

func (s *Server) onToken(r *online.Request) {
	if ch := s.streams[r.ID()]; ch != nil {
		ch <- streamEvent{kind: evToken, n: r.Done()}
	}
}

func (s *Server) onFinish(r *online.Request) {
	if ch := s.streams[r.ID()]; ch != nil {
		ch <- streamEvent{kind: evFinish, n: r.Done()}
		close(ch)
		delete(s.streams, r.ID())
	}
}

func (s *Server) onShed(r *online.Request) {
	if ch := s.streams[r.ID()]; ch != nil {
		ch <- streamEvent{kind: evShed}
		close(ch)
		delete(s.streams, r.ID())
	}
}

// schedule is the continuous-batching loop: admit whatever fits, run one
// decode step, repeat. It sleeps on the condition variable while idle
// and exits once the server is closed (after the backlog drains, or
// immediately when aborted).
func (s *Server) schedule() {
	defer close(s.schedDone)
	for {
		s.mu.Lock()
		for !s.closed && !s.eng.Busy() {
			s.cond.Wait()
		}
		if s.closed && (s.aborted || !s.eng.Busy()) {
			s.mu.Unlock()
			return
		}
		ran, err := s.eng.StepOnce()
		if err != nil {
			// The simulation cannot continue (profiler rejected the step
			// shape). Fail every open stream and refuse future work.
			s.schedErr = err
			s.aborted = true
			s.closed = true
			s.draining = true
			s.closeStreamsLocked()
			s.mu.Unlock()
			s.cond.Broadcast()
			s.opts.Logf("serve: scheduler failed: %v", err)
			return
		}
		s.mu.Unlock()
		// Completions may have released drain waiters.
		s.cond.Broadcast()
		if ran && s.opts.StepHold > 0 {
			time.Sleep(s.opts.StepHold)
		}
	}
}

// closeStreamsLocked terminates every open stream (no terminal event was
// delivered; handlers treat the bare close as a scheduler failure).
// Keys are sorted so shutdown is deterministic.
func (s *Server) closeStreamsLocked() {
	ids := make([]int, 0, len(s.streams))
	for id := range s.streams {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		close(s.streams[id])
	}
	clear(s.streams)
}

// Drain executes the graceful shutdown sequence: stop admitting new
// requests (they get 503), let in-flight requests finish, then stop the
// scheduler. It returns early with the context error when ctx expires
// first; the server keeps draining in that case and Drain may be called
// again.
func (s *Server) Drain(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() { s.cond.Broadcast() })
	defer stop()
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.cm.drains.Inc()
		s.opts.Logf("serve: draining (stopped admitting)")
	}
	for s.inflight > 0 || s.eng.Busy() {
		if err := ctx.Err(); err != nil {
			s.mu.Unlock()
			return err
		}
		s.cond.Wait()
	}
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	select {
	case <-s.schedDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.mu.Lock()
	err := s.schedErr
	s.mu.Unlock()
	return err
}

// Close aborts immediately: open streams are failed, the scheduler
// exits without finishing the backlog. Tests and fatal paths use it;
// production shutdown goes through Drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.draining = true
	s.aborted = true
	s.closed = true
	s.closeStreamsLocked()
	s.mu.Unlock()
	s.cond.Broadcast()
	<-s.schedDone
	return nil
}

// submit validates nothing (handlers did); it owns the lock dance around
// engine admission. The returned channel carries the request's lifecycle
// events; a nil channel means the submission was refused, with refusal
// kind and retry-after seconds describing why.
type admission struct {
	req        *online.Request
	ch         chan streamEvent
	refusal    int // HTTP status when refused, 0 when admitted
	retryAfter int // seconds, for 429 refusals
	err        error
}

func (s *Server) submit(promptTok, maxTok int) admission {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return admission{refusal: http.StatusServiceUnavailable}
	}
	req, err := s.eng.Submit(promptTok, maxTok)
	if errors.Is(err, online.ErrShed) {
		return admission{refusal: http.StatusTooManyRequests, retryAfter: s.retryAfterLocked()}
	}
	if err != nil {
		return admission{refusal: http.StatusBadRequest, err: err}
	}
	ch := make(chan streamEvent, maxTok+2)
	s.streams[req.ID()] = ch
	s.inflight++
	return admission{req: req, ch: ch}
}

// release undoes submit's inflight accounting once the handler is done
// with the request, and drops the stream if it is still registered
// (client gone before the engine finished).
func (s *Server) release(req *online.Request) {
	s.mu.Lock()
	delete(s.streams, req.ID())
	s.inflight--
	s.mu.Unlock()
	s.cond.Broadcast()
}

// retryAfterLocked derives the 429 Retry-After hint from the shared
// retry machinery: the deterministic jittered backoff a retrying client
// would be told to take, with the attempt index scaled by how far past
// the watermark the queue is — deeper overload, longer hint.
func (s *Server) retryAfterLocked() int {
	pol := s.opts.Engine.Retry
	if pol.MaxAttempts == 0 {
		pol = retry.Default()
	}
	attempt := s.eng.Waiting() - s.opts.Engine.ShedDepth + 1
	if attempt < 1 {
		attempt = 1
	}
	if attempt > pol.MaxAttempts {
		attempt = pol.MaxAttempts
	}
	sec := int(math.Ceil(pol.DelaySec(s.opts.RetrySeed, attempt)))
	if sec < 1 {
		sec = 1
	}
	return sec
}

// meta snapshots the llmpq response-metadata block for one request.
func (s *Server) meta(req *online.Request) *Meta {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.eng.Stats()
	m := &Meta{
		Bits:             s.eng.Bits(),
		Downshifts:       st.Downshifts,
		KVCapacityTokens: s.eng.KVCapacityTok(),
		PeakBatch:        st.PeakBatch,
		DegradationTier:  s.eng.DegradationTier(),
		Healing:          s.eng.Healing(),
	}
	if req.FinishSec() > 0 {
		m.SimLatencySeconds = req.LatencySec()
	}
	return m
}

// Health snapshots the engine's degradation state for the readiness
// probe and front-door reporting: the precision tier below configured
// bits and whether the upshift ladder is mid-climb.
func (s *Server) Health() (tier int, healing bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.DegradationTier(), s.eng.Healing()
}

// Serve accepts connections on ln until ctx is cancelled, then runs the
// graceful-drain sequence: stop admitting (503), finish in-flight
// requests, stop the scheduler, close the listener. drainTimeout bounds
// the drain; zero means wait indefinitely.
func (s *Server) Serve(ctx context.Context, ln net.Listener, drainTimeout time.Duration) error {
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	dctx := context.Background()
	if drainTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(dctx, drainTimeout)
		defer cancel()
	}
	derr := s.Drain(dctx)
	serr := hs.Shutdown(dctx)
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if derr != nil {
		return derr
	}
	return serr
}
