package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// encodeSSEFrame renders one server-sent-event data frame:
// "data: <json>\n\n". The payload is JSON-encoded, and JSON never
// contains raw newlines (the encoder escapes them inside strings), so
// token text cannot forge a frame boundary.
func encodeSSEFrame(v any) ([]byte, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("serve: encode SSE frame: %w", err)
	}
	buf := make([]byte, 0, len(payload)+8)
	buf = append(buf, "data: "...)
	buf = append(buf, payload...)
	buf = append(buf, '\n', '\n')
	return buf, nil
}

// doneFrame is the OpenAI stream terminator.
var doneFrame = []byte("data: [DONE]\n\n")

// sseWriter streams SSE frames over a ResponseWriter, flushing after
// every frame so tokens reach the client as they decode. The first
// write error latches: later frames are dropped silently (the client is
// gone; the engine still finishes the request).
type sseWriter struct {
	w     http.ResponseWriter
	flush http.Flusher
	n     int64
	err   error
}

// newSSEWriter commits the 200 response with event-stream headers.
func newSSEWriter(w http.ResponseWriter) *sseWriter {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flush, _ := w.(http.Flusher)
	return &sseWriter{w: w, flush: flush}
}

// Event writes one data frame carrying v.
func (s *sseWriter) Event(v any) error {
	if s.err != nil {
		return s.err
	}
	frame, err := encodeSSEFrame(v)
	if err != nil {
		s.err = err
		return err
	}
	return s.write(frame)
}

// Done writes the [DONE] terminator.
func (s *sseWriter) Done() error {
	if s.err != nil {
		return s.err
	}
	return s.write(doneFrame)
}

func (s *sseWriter) write(b []byte) error {
	n, err := s.w.Write(b)
	s.n += int64(n)
	if err != nil {
		s.err = err
		return err
	}
	if s.flush != nil {
		s.flush.Flush()
	}
	return nil
}

// Bytes is the total byte count streamed so far.
func (s *sseWriter) Bytes() int64 { return s.n }
