// Package costmodel implements the paper's two cost models (§4.1):
//
//   - an analytical memory model that predicts GPU memory occupation of a
//     model shard under a mixed-precision plan (weights + reserved KV cache
//   - peak temporary memory + embedding/LM-head extras), and
//   - a latency cost model: per-(device, precision, phase) linear
//     regressions on FLOPs/MOPs features, fitted to profiler samples.
//
// Fig 7 of the paper validates both against the real system; our
// experiments do the same against the roofline ground truth.
package costmodel

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/profiler"
)

// MemoryInput describes one pipeline stage's contents for the memory model.
type MemoryInput struct {
	Cfg         model.Config
	LayerBits   []int // bitwidth of each decoder layer on this stage
	GlobalBatch int   // total requests resident (KV is reserved for all)
	MaxSeq      int   // prompt + max generated tokens (KV reservation)
	// MicroBatch is the largest micro-batch that transits the stage; peak
	// temporary memory scales with it (the paper's cluster-1 observation:
	// micro-batch sizing reduces peak temporary memory).
	MicroBatch int
	PromptLen  int
	First      bool // holds the embedding table
	Last       bool // holds the LM head
	// KVBits is the KV-cache precision; 0 defaults to FP16.
	KVBits int
}

func (in MemoryInput) kvBits() int {
	if in.KVBits == 0 {
		return profiler.KVBits
	}
	return in.KVBits
}

// Validate checks the input.
func (in MemoryInput) Validate() error {
	if len(in.LayerBits) == 0 {
		return fmt.Errorf("costmodel: stage with no layers")
	}
	for _, b := range in.LayerBits {
		switch b {
		case 3, 4, 8, 16:
		default:
			return fmt.Errorf("costmodel: unsupported bitwidth %d", b)
		}
	}
	if in.GlobalBatch <= 0 || in.MaxSeq <= 0 || in.MicroBatch <= 0 || in.PromptLen <= 0 {
		return fmt.Errorf("costmodel: nonpositive workload fields in %+v", in)
	}
	return nil
}

// MemoryBreakdown itemizes predicted stage memory in bytes.
type MemoryBreakdown struct {
	Weights float64
	KVCache float64
	Temp    float64
	Embed   float64
	Total   float64
}

// StageMemory predicts the peak memory occupation of one stage.
func StageMemory(in MemoryInput) (MemoryBreakdown, error) {
	if err := in.Validate(); err != nil {
		return MemoryBreakdown{}, err
	}
	var br MemoryBreakdown
	for _, bits := range in.LayerBits {
		br.Weights += in.Cfg.LayerWeightBytes(bits)
		br.KVCache += in.Cfg.KVBytesPerLayer(in.GlobalBatch, in.MaxSeq, in.kvBits())
	}
	br.Temp = peakTemp(in.Cfg, in.MicroBatch, in.PromptLen)
	if in.First {
		br.Embed += in.Cfg.EmbedBytes()
	}
	if in.Last {
		br.Embed += in.Cfg.LMHeadBytes()
		if in.Cfg.TiedEmbed && !in.First {
			// Tied weights still need a resident copy on the tail stage.
			br.Embed += float64(in.Cfg.VocabSize) * float64(in.Cfg.Hidden) * 2
		}
	}
	br.Total = br.Weights + br.KVCache + br.Temp + br.Embed
	return br, nil
}

// peakTemp is the worst-case temporary buffer demand of one decoder layer
// during prefill (§4.1 "Peak Temporary Memory ... worst-case scenario"):
// activation working set plus the attention score matrix, which scales with
// micro-batch × heads × prompt².
func peakTemp(cfg model.Config, microBatch, prompt int) float64 {
	b := float64(microBatch)
	s := float64(prompt)
	h := float64(cfg.Hidden)
	f := float64(cfg.FFN)
	// Residual + QKV + MLP intermediate buffers (FP16).
	act := b * s * (6*h + f) * 2
	// Attention probability matrix per head batch.
	scores := b * float64(cfg.Heads) * s * s * 2
	// Framework allocator slack.
	return (act + scores) * 1.15
}

// FitsDevice reports whether the stage fits in capacityBytes and the
// utilization fraction.
func FitsDevice(in MemoryInput, capacityBytes float64) (bool, float64, error) {
	br, err := StageMemory(in)
	if err != nil {
		return false, 0, err
	}
	return br.Total <= capacityBytes, br.Total / capacityBytes, nil
}
