package costmodel

import (
	"fmt"

	"repro/internal/hardware"
	"repro/internal/model"
)

// MigrationInput sizes a failover migration: after a permanent device
// loss, the replanned pipeline places some layers on different physical
// devices, so their quantized weights (at the new plan's precision) and
// the live KV state of every resident request must cross the
// interconnect before serving resumes.
type MigrationInput struct {
	Cfg model.Config
	// MovedLayerBits holds the new-plan bitwidth of each layer that lands
	// on a different physical device than it occupied before the loss.
	// Empty means nothing moves (zero cost).
	MovedLayerBits []int
	// GlobalBatch is the number of resident requests whose KV cache moves
	// with the layers.
	GlobalBatch int
	// KVSeqLen is the per-request KV length to ship: prompt plus the
	// completed-token watermark at the time of the loss.
	KVSeqLen int
	// KVBits is the KV-cache precision; 0 defaults to FP16.
	KVBits int
	// Link carries the traffic — conservatively the cluster's inter-node
	// link, since a lost device forces cross-node reshuffling.
	Link hardware.Link
}

// MigrationBreakdown itemizes the predicted migration cost.
type MigrationBreakdown struct {
	WeightBytes float64
	KVBytes     float64
	TotalBytes  float64
	TransferSec float64
}

// MigrationCost predicts the downtime a failover migration adds: the
// serialized transfer of moved quantized weights plus moved KV state over
// the given link. It is deliberately pessimistic-simple (one link, no
// overlap with compute) — the same spirit as the §4.1 memory model.
func MigrationCost(in MigrationInput) (MigrationBreakdown, error) {
	var br MigrationBreakdown
	if len(in.MovedLayerBits) == 0 {
		return br, nil
	}
	for i, b := range in.MovedLayerBits {
		switch b {
		case 3, 4, 8, 16:
		default:
			return br, fmt.Errorf("costmodel: migration layer %d has unsupported bitwidth %d", i, b)
		}
	}
	if in.GlobalBatch <= 0 || in.KVSeqLen < 0 {
		return br, fmt.Errorf("costmodel: migration batch %d / KV length %d invalid", in.GlobalBatch, in.KVSeqLen)
	}
	kv := in.KVBits
	if kv == 0 {
		kv = 16
	}
	for _, b := range in.MovedLayerBits {
		br.WeightBytes += in.Cfg.LayerWeightBytes(b)
		if in.KVSeqLen > 0 {
			br.KVBytes += in.Cfg.KVBytesPerLayer(in.GlobalBatch, in.KVSeqLen, kv)
		}
	}
	br.TotalBytes = br.WeightBytes + br.KVBytes
	br.TransferSec = in.Link.TransferTime(br.TotalBytes)
	return br, nil
}
