package costmodel

import (
	"fmt"
	"math"

	"repro/internal/core/floats"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/profiler"
)

// phaseKey identifies one fitted regression.
type phaseKey struct {
	bits    int
	prefill bool
}

// regression is t ≈ α·FLOPs + β·MOPs + γ — the paper's observation that
// GEMM (>80% of latency) scales with FLOPs and MOPs while the remaining
// operators scale with MOPs (§4.1).
type regression struct {
	alpha, beta, gamma float64
}

func (r regression) predict(flops, mops float64) float64 {
	t := r.alpha*flops + r.beta*mops + r.gamma
	if t < 0 {
		t = 0
	}
	return t
}

// LatencyModel predicts per-layer execution time for one device type from
// profiled samples.
type LatencyModel struct {
	GPU hardware.GPU
	Cfg model.Config
	fit map[phaseKey]regression
}

// FitLatency fits the latency cost model from profiler points.
func FitLatency(gpu hardware.GPU, cfg model.Config, pts []profiler.Point) (*LatencyModel, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("costmodel: no profiler points")
	}
	groups := map[phaseKey][]profiler.Point{}
	for _, p := range pts {
		k := phaseKey{bits: p.W.Bits, prefill: p.W.Prefill}
		groups[k] = append(groups[k], p)
	}
	m := &LatencyModel{GPU: gpu, Cfg: cfg, fit: make(map[phaseKey]regression)}
	for k, g := range groups {
		if len(g) < 3 {
			return nil, fmt.Errorf("costmodel: %d samples for %+v, need ≥3", len(g), k)
		}
		reg, err := leastSquares(cfg, g)
		if err != nil {
			return nil, fmt.Errorf("costmodel: fit %+v: %w", k, err)
		}
		m.fit[k] = reg
	}
	return m, nil
}

func features(cfg model.Config, w profiler.Workload) (flops, mops float64) {
	sh := model.PhaseShape{Batch: w.Batch, Prompt: w.Prompt, Context: w.Context}
	return cfg.LayerFLOPs(sh, w.Prefill), cfg.LayerMOPs(sh, w.Prefill, w.Bits, w.KVBitsOf())
}

// leastSquares solves the 3-parameter normal equations.
func leastSquares(cfg model.Config, pts []profiler.Point) (regression, error) {
	// Normalize features to comparable magnitude for conditioning.
	var fScale, mScale float64
	for _, p := range pts {
		f, mo := features(cfg, p.W)
		if f > fScale {
			fScale = f
		}
		if mo > mScale {
			mScale = mo
		}
	}
	if fScale == 0 || mScale == 0 {
		return regression{}, fmt.Errorf("degenerate features")
	}
	var a [3][3]float64
	var rhs [3]float64
	for _, p := range pts {
		f, mo := features(cfg, p.W)
		x := [3]float64{f / fScale, mo / mScale, 1}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				a[i][j] += x[i] * x[j]
			}
			rhs[i] += x[i] * p.Time
		}
	}
	sol, err := solve3(a, rhs)
	if err != nil {
		return regression{}, err
	}
	return regression{alpha: sol[0] / fScale, beta: sol[1] / mScale, gamma: sol[2]}, nil
}

func solve3(a [3][3]float64, b [3]float64) ([3]float64, error) {
	// Gaussian elimination with partial pivoting.
	m := [3][4]float64{}
	for i := 0; i < 3; i++ {
		copy(m[i][:3], a[i][:])
		m[i][3] = b[i]
	}
	for col := 0; col < 3; col++ {
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if floats.Zero(m[piv][col], 1e-14) {
			return [3]float64{}, fmt.Errorf("singular normal equations")
		}
		m[col], m[piv] = m[piv], m[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c < 4; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	var x [3]float64
	for i := 0; i < 3; i++ {
		x[i] = m[i][3] / m[i][i]
	}
	return x, nil
}

// PredictLayer returns the predicted execution time of one decoder layer.
func (m *LatencyModel) PredictLayer(w profiler.Workload) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	reg, ok := m.fit[phaseKey{bits: w.Bits, prefill: w.Prefill}]
	if !ok {
		return 0, fmt.Errorf("costmodel: no fit for bits=%d prefill=%v", w.Bits, w.Prefill)
	}
	f, mo := features(m.Cfg, w)
	return reg.predict(f, mo), nil
}

// PredictStage sums layer predictions for a shard: the paper's "latency of
// a model shard is the sum of the latencies of all involved decoder layers
// with respect to their precisions."
func (m *LatencyModel) PredictStage(layerBits []int, batch, prompt, context int, prefill bool) (float64, error) {
	var total float64
	for _, bits := range layerBits {
		w := profiler.Workload{Batch: batch, Prompt: prompt, Context: context, Prefill: prefill, Bits: bits}
		t, err := m.PredictLayer(w)
		if err != nil {
			return 0, err
		}
		total += t
	}
	return total, nil
}

// MeanRelativeError evaluates the fitted model on held-out points.
func (m *LatencyModel) MeanRelativeError(pts []profiler.Point) (float64, error) {
	if len(pts) == 0 {
		return 0, fmt.Errorf("costmodel: no evaluation points")
	}
	var sum float64
	for _, p := range pts {
		pred, err := m.PredictLayer(p.W)
		if err != nil {
			return 0, err
		}
		sum += math.Abs(pred-p.Time) / p.Time
	}
	return sum / float64(len(pts)), nil
}
