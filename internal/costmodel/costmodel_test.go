package costmodel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/profiler"
)

func validInput() MemoryInput {
	bits := make([]int, 12)
	for i := range bits {
		bits[i] = 16
	}
	return MemoryInput{
		Cfg: model.OPT13B, LayerBits: bits, GlobalBatch: 32,
		MaxSeq: 612, MicroBatch: 8, PromptLen: 512, First: true, Last: false,
	}
}

func TestMemoryValidation(t *testing.T) {
	in := validInput()
	in.LayerBits = nil
	if _, err := StageMemory(in); err == nil {
		t.Error("expected empty-layer error")
	}
	in = validInput()
	in.LayerBits[0] = 7
	if _, err := StageMemory(in); err == nil {
		t.Error("expected bitwidth error")
	}
	in = validInput()
	in.GlobalBatch = 0
	if _, err := StageMemory(in); err == nil {
		t.Error("expected workload error")
	}
}

func TestMemoryMatchesAnalyticGroundTruth(t *testing.T) {
	// Fig 7: "the error of the memory cost model is almost negligible".
	// Our ground truth is the same accounting the runtime uses, so the
	// check here is internal consistency: weights = Σ LayerWeightBytes,
	// KV = L · KVBytesPerLayer.
	in := validInput()
	br, err := StageMemory(in)
	if err != nil {
		t.Fatal(err)
	}
	wantW := float64(len(in.LayerBits)) * in.Cfg.LayerWeightBytes(16)
	if math.Abs(br.Weights-wantW) > 1 {
		t.Errorf("weights %.0f want %.0f", br.Weights, wantW)
	}
	wantKV := float64(len(in.LayerBits)) * in.Cfg.KVBytesPerLayer(32, 612, 16)
	if math.Abs(br.KVCache-wantKV) > 1 {
		t.Errorf("kv %.0f want %.0f", br.KVCache, wantKV)
	}
	if br.Total != br.Weights+br.KVCache+br.Temp+br.Embed {
		t.Error("total is not the sum of parts")
	}
	if br.Embed <= 0 {
		t.Error("first stage should carry embedding memory")
	}
}

func TestQuantizationShrinksWeights(t *testing.T) {
	in := validInput()
	full, _ := StageMemory(in)
	for i := range in.LayerBits {
		in.LayerBits[i] = 4
	}
	quant, _ := StageMemory(in)
	r := full.Weights / quant.Weights
	if r < 3.5 || r > 4.5 {
		t.Errorf("4-bit weights should be ≈4x smaller, got %.2fx", r)
	}
	// KV cache unchanged by weight quantization.
	if quant.KVCache != full.KVCache {
		t.Error("KV cache should not depend on weight bits")
	}
}

func TestMicroBatchReducesPeakTemp(t *testing.T) {
	// Paper cluster-1 result: smaller prefill micro-batches reduce peak
	// temporary memory enough to fit the INT8 model.
	in := validInput()
	in.MicroBatch = 32
	big, _ := StageMemory(in)
	in.MicroBatch = 4
	small, _ := StageMemory(in)
	if small.Temp >= big.Temp {
		t.Errorf("temp should shrink with micro-batch: %.0f vs %.0f", small.Temp, big.Temp)
	}
	if big.Temp/small.Temp < 4 {
		t.Errorf("temp should scale roughly with micro-batch (got %.1fx for 8x)", big.Temp/small.Temp)
	}
}

func TestFitsDevice(t *testing.T) {
	in := validInput()
	ok, util, err := FitsDevice(in, hardware.V100.MemoryBytes())
	if err != nil {
		t.Fatal(err)
	}
	// OPT-13b FP16 ≈26GB weights alone; 12 layers ≈ 7.4GB + KV + embed.
	if !ok && util < 1 {
		t.Errorf("inconsistent fit report: ok=%v util=%.2f", ok, util)
	}
	if util <= 0 {
		t.Errorf("utilization %.3f", util)
	}
}

func fitModelForTest(t *testing.T, gpu hardware.GPU, cfg model.Config) *LatencyModel {
	t.Helper()
	pts, err := profiler.ProfileGrid(gpu, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := FitLatency(gpu, cfg, pts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLatencyFidelityUnder6Percent(t *testing.T) {
	// Fig 7: "the average error of the latency cost model is less than 6%".
	// Evaluate on 50 unseen workloads per device like the paper (batch
	// sizes 3/5/7, past lengths 384/768, random precisions).
	rng := rand.New(rand.NewSource(99))
	for _, gpu := range []hardware.GPU{hardware.T4, hardware.V100, hardware.A100} {
		m := fitModelForTest(t, gpu, model.OPT13B)
		var unseen []profiler.Point
		batches := []int{3, 5, 7}
		pasts := []int{384, 768}
		for i := 0; i < 50; i++ {
			bits := hardware.Bits[rng.Intn(4)]
			b := batches[rng.Intn(3)]
			var w profiler.Workload
			if i%2 == 0 {
				w = profiler.Workload{Batch: b, Prompt: 128 + rng.Intn(512), Prefill: true, Bits: bits}
			} else {
				w = profiler.Workload{Batch: b, Context: pasts[rng.Intn(2)], Bits: bits}
			}
			tm, err := profiler.LayerTime(gpu, model.OPT13B, w)
			if err != nil {
				t.Fatal(err)
			}
			unseen = append(unseen, profiler.Point{W: w, Time: tm})
		}
		mre, err := m.MeanRelativeError(unseen)
		if err != nil {
			t.Fatal(err)
		}
		if mre > 0.12 {
			t.Errorf("%s: latency model mean relative error %.1f%% too high (paper <6%%)", gpu.Name, mre*100)
		}
	}
}

func TestPredictStageSumsLayers(t *testing.T) {
	m := fitModelForTest(t, hardware.V100, model.OPT13B)
	one, err := m.PredictLayer(profiler.Workload{Batch: 8, Prompt: 512, Prefill: true, Bits: 16})
	if err != nil {
		t.Fatal(err)
	}
	bits := []int{16, 16, 16, 16}
	four, err := m.PredictStage(bits, 8, 512, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(four-4*one) > 1e-9 {
		t.Errorf("stage prediction %.6g != 4 × layer %.6g", four, one)
	}
}

func TestPredictPreservesDeviceOrdering(t *testing.T) {
	// The fitted model must preserve the cross-device ordering the planner
	// relies on: A100 < V100 < P100 for FP16 prefill.
	cfg := model.OPT30B
	w := profiler.Workload{Batch: 8, Prompt: 512, Prefill: true, Bits: 16}
	var times []float64
	for _, gpu := range []hardware.GPU{hardware.A100, hardware.V100, hardware.P100} {
		m := fitModelForTest(t, gpu, cfg)
		tm, err := m.PredictLayer(w)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, tm)
	}
	if !(times[0] < times[1] && times[1] < times[2]) {
		t.Errorf("device ordering lost in fit: A100=%.4g V100=%.4g P100=%.4g", times[0], times[1], times[2])
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitLatency(hardware.T4, model.OPT13B, nil); err == nil {
		t.Error("expected no-points error")
	}
	pts := []profiler.Point{{W: profiler.Workload{Batch: 1, Prompt: 8, Prefill: true, Bits: 16}, Time: 1}}
	if _, err := FitLatency(hardware.T4, model.OPT13B, pts); err == nil {
		t.Error("expected too-few-samples error")
	}
	m := fitModelForTest(t, hardware.T4, model.OPT13B)
	if _, err := m.PredictLayer(profiler.Workload{Batch: 1, Prompt: 8, Prefill: true, Bits: 5}); err == nil {
		t.Error("expected validation error for bits=5")
	}
}
