package online

import (
	"reflect"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core/retry"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/obs"
)

// kvPressure builds a schedule whose KV-allocation failures cover the
// whole run with probability p.
func kvPressure(p float64) *chaos.Schedule {
	return &chaos.Schedule{Seed: 99, Faults: []chaos.Fault{
		{Kind: chaos.KindKVAlloc, AtSec: 0, Factor: p, DurationSec: 1e6},
	}}
}

// TestKVRetriesSufficientNoLoss: with moderate failure probability and
// the default retry budget, every admission eventually succeeds — the
// run finishes with retries spent but zero requests shed.
func TestKVRetriesSufficientNoLoss(t *testing.T) {
	c := baseConfig()
	c.Chaos = kvPressure(0.3)
	c.Retry = retry.Policy{MaxAttempts: 20, BaseDelaySec: 0.001, Factor: 2, MaxDelaySec: 0.05, JitterFrac: 0.2}
	st, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if st.KVFailures == 0 {
		t.Fatal("pressure schedule never failed an allocation — test is vacuous")
	}
	if st.KVRetries == 0 {
		t.Error("no retries recorded despite failures")
	}
	if st.Shed != 0 {
		t.Errorf("%d requests shed although the retry budget covers p=0.3", st.Shed)
	}
	if st.Completed == 0 {
		t.Error("nothing completed")
	}
	// Zero lost requests: everything that was never rejected completed
	// or was still queued at sim end.
	base, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected > base.Rejected {
		t.Errorf("chaos run rejected %d > baseline %d", st.Rejected, base.Rejected)
	}
}

// TestKVRetriesExhaustedSheds: with certain failure and a tiny retry
// budget, admissions must shed (and count as rejects) instead of
// deadlocking the admission loop; once the window closes, later
// arrivals admit and complete normally.
func TestKVRetriesExhaustedSheds(t *testing.T) {
	c := baseConfig()
	c.Chaos = &chaos.Schedule{Seed: 99, Faults: []chaos.Fault{
		{Kind: chaos.KindKVAlloc, AtSec: 0, Factor: 1.0, DurationSec: 10},
	}}
	c.Retry = retry.Policy{MaxAttempts: 2, BaseDelaySec: 0.001, Factor: 2}
	st, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shed == 0 {
		t.Fatal("certain failure must shed")
	}
	if st.Rejected < st.Shed {
		t.Errorf("shed requests must count as rejected: shed %d, rejected %d", st.Shed, st.Rejected)
	}
	if st.Completed == 0 {
		t.Error("arrivals after the window must still complete")
	}
}

// TestKVChaosDeterministic: same seeds, same stats, byte for byte.
func TestKVChaosDeterministic(t *testing.T) {
	mk := func() Config {
		c := baseConfig()
		c.Chaos = kvPressure(0.4)
		c.ShedDepth = 8
		return c
	}
	a, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("chaos online run not reproducible:\na: %+v\nb: %+v", a, b)
	}
}

// TestLoadSheddingBoundsQueue: a tight shed watermark under overload
// drops the excess instead of queueing it unboundedly.
func TestLoadSheddingBoundsQueue(t *testing.T) {
	c := Config{
		GPU: hardware.V100, Model: model.OPT13B, Bits: 16,
		Arrival: 30, Duration: 10, MaxNew: 64, MaxBatch: 4, Seed: 7,
		ShedDepth: 4,
	}
	st, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shed == 0 {
		t.Fatal("overload with ShedDepth 4 never shed")
	}
	if st.Rejected < st.Shed {
		t.Errorf("shed %d not included in rejected %d", st.Shed, st.Rejected)
	}
	if st.Completed == 0 {
		t.Error("shedding must not starve the admitted requests")
	}
}

// TestBitwidthDownshift: sustained KV pressure with the fallback enabled
// drops the precision ladder and grows the pool.
func TestBitwidthDownshift(t *testing.T) {
	c := Config{
		GPU: hardware.V100, Model: model.OPT13B, Bits: 16,
		Arrival: 30, Duration: 20, MaxNew: 64, MaxBatch: 64, Seed: 7,
		Downshift: true,
	}
	reg := obs.NewRegistry()
	c.Obs = reg
	st, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if st.Downshifts == 0 {
		t.Fatal("sustained overload never downshifted")
	}
	if st.FinalBits >= 16 {
		t.Errorf("final bits %d, want < 16", st.FinalBits)
	}
	if st.FinalKVTok <= st.KVCapacityTok {
		t.Errorf("downshift must grow the pool: %d -> %d", st.KVCapacityTok, st.FinalKVTok)
	}
	if got := reg.Counter("llmpq_online_downshifts_total", obs.L("bits", "16")).Value(); int(got) != st.Downshifts {
		t.Errorf("downshift counter %.0f, want %d", got, st.Downshifts)
	}
	if got := reg.Gauge("llmpq_online_bits").Value(); int(got) != st.FinalBits {
		t.Errorf("bits gauge %.0f, want %d", got, st.FinalBits)
	}

	// The same config without the fallback keeps its precision.
	c2 := c
	c2.Obs = nil
	c2.Downshift = false
	st2, err := Run(c2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Downshifts != 0 || st2.FinalBits != 16 {
		t.Errorf("fallback disabled but shifted: %+v", st2)
	}
}

// TestChaosConfigValidation covers the new knobs' error paths.
func TestChaosConfigValidation(t *testing.T) {
	c := baseConfig()
	c.ShedDepth = -1
	if _, err := Run(c); err == nil {
		t.Error("negative shed depth must fail")
	}
	c = baseConfig()
	c.Chaos = &chaos.Schedule{Faults: []chaos.Fault{{Kind: chaos.KindKVAlloc, AtSec: 0, Factor: 2, DurationSec: 1}}}
	if _, err := Run(c); err == nil {
		t.Error("invalid chaos schedule must fail")
	}
	c = baseConfig()
	c.Retry = retry.Policy{MaxAttempts: 2, Factor: 0.1}
	if _, err := Run(c); err == nil {
		t.Error("invalid retry policy must fail")
	}
}
