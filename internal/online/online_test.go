package online

import (
	"testing"

	"repro/internal/hardware"
	"repro/internal/model"
)

func baseConfig() Config {
	return Config{
		GPU: hardware.A100, Model: model.OPT13B, Bits: 8,
		Arrival: 2, Duration: 30, MaxNew: 64, MaxBatch: 64, Seed: 7,
	}
}

func TestRunBasics(t *testing.T) {
	st, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed == 0 || st.Throughput <= 0 {
		t.Fatalf("degenerate stats %+v", st)
	}
	if st.MeanLatency <= 0 || st.P95Latency < st.MeanLatency {
		t.Errorf("latency stats inconsistent: mean %.3f p95 %.3f", st.MeanLatency, st.P95Latency)
	}
	if st.MeanBatch < 1 {
		t.Errorf("mean batch %.2f", st.MeanBatch)
	}
	if st.KVCapacityTok <= 0 {
		t.Error("no KV capacity")
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.Completed != b.Completed {
		t.Error("online simulation not reproducible")
	}
}

func TestQuantizationFreesKVMemory(t *testing.T) {
	c16 := baseConfig()
	c16.Bits = 16
	c4 := baseConfig()
	c4.Bits = 4
	s16, err := Run(c16)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := Run(c4)
	if err != nil {
		t.Fatal(err)
	}
	if s4.KVCapacityTok <= s16.KVCapacityTok {
		t.Errorf("4-bit weights should leave more KV memory: %d vs %d tokens", s4.KVCapacityTok, s16.KVCapacityTok)
	}
}

func TestValidation(t *testing.T) {
	c := baseConfig()
	c.Bits = 5
	if _, err := Run(c); err == nil {
		t.Error("expected bits error")
	}
	c = baseConfig()
	c.Arrival = 0
	if _, err := Run(c); err == nil {
		t.Error("expected arrival error")
	}
	c = baseConfig()
	c.MaxBatch = 0
	if _, err := Run(c); err == nil {
		t.Error("expected batch error")
	}
	// A model too big for the device at FP16 must error cleanly.
	c = baseConfig()
	c.Model = model.OPT66B
	c.Bits = 16
	if _, err := Run(c); err == nil {
		t.Error("expected no-KV-memory error for OPT-66b FP16 on A100-40G")
	}
}

func TestSpeedMemoryCrossover(t *testing.T) {
	// The §7 trade-off: at LOW load, higher precision wins (faster
	// kernels on V100, KV memory not binding); at HIGH load, lower
	// precision wins (more KV pages → bigger continuous batches).
	pts, err := Sweep(hardware.V100, model.OPT13B, []int{4, 16}, []float64{0.5, 24}, 48, 11)
	if err != nil {
		t.Fatal(err)
	}
	get := func(bits int, arrival float64) (Stats, bool) {
		for _, p := range pts {
			if p.Bits == bits && p.Arrival == arrival {
				return p.Stats, true
			}
		}
		return Stats{}, false
	}
	// OPT-13b FP16 on a 30GB V100 leaves almost no KV: FP16 either errors
	// out or serves tiny batches, while INT4 thrives at high load.
	hi4, ok4 := get(4, 24)
	if !ok4 {
		t.Fatal("missing INT4 high-load point")
	}
	if hi16, ok := get(16, 24); ok {
		if hi4.Throughput <= hi16.Throughput {
			t.Errorf("high load: INT4 %.1f tok/s should beat FP16 %.1f (KV-bound)", hi4.Throughput, hi16.Throughput)
		}
	}
	// Mean batch must grow with load for INT4.
	lo4, ok := get(4, 0.5)
	if !ok {
		t.Fatal("missing INT4 low-load point")
	}
	if hi4.MeanBatch <= lo4.MeanBatch {
		t.Errorf("continuous batching should batch more under load: %.2f vs %.2f", hi4.MeanBatch, lo4.MeanBatch)
	}
}
