package online

import (
	"strings"
	"testing"

	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/obs"
)

// TestUpshiftStepLadder pins the recovery ladder as the exact inverse of
// the fallback ladder.
func TestUpshiftStepLadder(t *testing.T) {
	steps := map[int]int{3: 4, 4: 8, 8: 16, 16: 16}
	for from, want := range steps {
		if got := upshiftStep(from); got != want {
			t.Errorf("upshiftStep(%d) = %d, want %d", from, got, want)
		}
	}
	for _, b := range []int{3, 4, 8} {
		if got := downshiftStep(upshiftStep(b)); got != b {
			t.Errorf("up then down from %d lands on %d", b, got)
		}
	}
}

// TestUpshiftRecoversAfterPressure drives the full degradation/recovery
// cycle through the open-loop engine: sustained KV pressure downshifts
// 16→8, then a calm tail holds occupancy under the low-watermark long
// enough for the dwell to expire and precision climbs back to 16.
func TestUpshiftRecoversAfterPressure(t *testing.T) {
	reg := obs.NewRegistry()
	c := Config{
		GPU: hardware.V100, Model: model.OPT13B, Bits: 16,
		MaxNew: 120, MaxBatch: 64, Seed: 7,
		Downshift: true, Upshift: true, Obs: reg,
	}
	e, err := NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	cap16 := e.KVCapacityTok()
	// Size pressure requests so exactly five fill the pool past the 90%
	// hot watermark and the rest wait.
	per := cap16 * 95 / 100 / 5
	const pressureNew = 40
	if per <= pressureNew+1 {
		t.Fatalf("pool %d too small for the pressure shape", cap16)
	}
	for i := 0; i < 8; i++ {
		if _, err := e.Submit(per-pressureNew, pressureNew); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; e.Bits() == 16; i++ {
		if i > 10*downshiftAfter {
			t.Fatal("sustained pressure never downshifted")
		}
		if _, err := e.StepOnce(); err != nil {
			t.Fatal(err)
		}
	}
	if e.Bits() != 8 {
		t.Fatalf("downshift landed on %d bits, want 8", e.Bits())
	}
	if tier := e.DegradationTier(); tier != 1 {
		t.Fatalf("degradation tier %d, want 1", tier)
	}
	if e.Healing() {
		t.Error("freshly downshifted engine cannot be healing")
	}
	drain(t, e)

	// Calm tail: one small long-running request keeps the batch alive at
	// low occupancy until the upshift dwell expires.
	if _, err := e.Submit(100, 120); err != nil {
		t.Fatal(err)
	}
	drain(t, e)
	st := e.Stats()
	if st.Downshifts < 1 || st.Upshifts < 1 {
		t.Fatalf("cycle incomplete: %d downshifts, %d upshifts", st.Downshifts, st.Upshifts)
	}
	if e.Bits() != 16 || st.FinalBits != 16 {
		t.Errorf("recovery ended at %d bits, want 16", e.Bits())
	}
	if tier := e.DegradationTier(); tier != 0 {
		t.Errorf("degradation tier %d after full recovery, want 0", tier)
	}
	if st.FinalKVTok != cap16 {
		t.Errorf("pool %d after recovery, want the original %d", st.FinalKVTok, cap16)
	}
	if got := reg.Counter("llmpq_online_upshifts_total", obs.L("bits", "16")).Value(); int(got) != st.Upshifts {
		t.Errorf("upshift counter %.0f, want %d", got, st.Upshifts)
	}
	if got := reg.Gauge("llmpq_online_bits").Value(); int(got) != 16 {
		t.Errorf("bits gauge %.0f, want 16", got)
	}
}

// TestUpshiftDisabledStaysDegraded: the same cycle without Upshift keeps
// the degraded precision forever — the pre-heal behavior.
func TestUpshiftDisabledStaysDegraded(t *testing.T) {
	c := Config{
		GPU: hardware.V100, Model: model.OPT13B, Bits: 16,
		MaxNew: 120, MaxBatch: 64, Seed: 7, Downshift: true,
	}
	e, err := NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	per := e.KVCapacityTok() * 95 / 100 / 5
	for i := 0; i < 8; i++ {
		if _, err := e.Submit(per-40, 40); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, e)
	if e.Bits() != 8 {
		t.Fatalf("pressure phase ended at %d bits, want 8", e.Bits())
	}
	if _, err := e.Submit(100, 120); err != nil {
		t.Fatal(err)
	}
	drain(t, e)
	if st := e.Stats(); st.Upshifts != 0 || e.Bits() != 8 {
		t.Errorf("upshift disabled but recovered: %d upshifts, %d bits", st.Upshifts, e.Bits())
	}
}

// TestHealingIndicator drives two downshifts and one recovery step so
// the engine sits between its floor and full precision.
func TestHealingIndicator(t *testing.T) {
	c := Config{
		GPU: hardware.V100, Model: model.OPT13B, Bits: 16,
		MaxNew: 32, MaxBatch: 8, Seed: 7, Downshift: true, Upshift: true,
	}
	e, err := NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	// The transition arithmetic is exercised end-to-end above; here the
	// indicator contract is pinned directly on the engine state.
	e.bits, e.floorBits = 4, 4
	if e.Healing() {
		t.Error("at the floor: degraded, not healing")
	}
	if tier := e.DegradationTier(); tier != 2 {
		t.Errorf("tier %d at 4 of 16 bits, want 2", tier)
	}
	e.bits = 8
	if !e.Healing() {
		t.Error("one step above the floor, below full precision: healing")
	}
	e.bits = 16
	if e.Healing() {
		t.Error("fully recovered: not healing")
	}
}

// TestUpshiftRequiresDownshift pins the config guard.
func TestUpshiftRequiresDownshift(t *testing.T) {
	c := openConfig()
	c.Upshift = true
	if _, err := NewEngine(c); err == nil || !strings.Contains(err.Error(), "downshift") {
		t.Fatalf("upshift without downshift accepted: %v", err)
	}
}
