package online

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core/retry"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/obs"
)

func openConfig() Config {
	return Config{
		GPU: hardware.A100, Model: model.OPT13B, Bits: 8,
		MaxNew: 32, MaxBatch: 8, Seed: 7,
	}
}

// drain steps the engine until it reports idle.
func drain(t *testing.T, e *Engine) {
	t.Helper()
	for i := 0; i < 100000; i++ {
		ran, err := e.StepOnce()
		if err != nil {
			t.Fatal(err)
		}
		if !ran && !e.Busy() {
			return
		}
	}
	t.Fatal("engine never went idle")
}

// TestDownshiftStepFloor pins the 16→8→4→3 fallback ladder and its
// 3-bit floor: the quantizer supports nothing below 3 bits, so the
// ladder must saturate there instead of descending further.
func TestDownshiftStepFloor(t *testing.T) {
	steps := map[int]int{16: 8, 8: 4, 4: 3, 3: 3}
	for from, want := range steps {
		if got := downshiftStep(from); got != want {
			t.Errorf("downshiftStep(%d) = %d, want %d", from, got, want)
		}
	}
	// Repeated application from any supported precision reaches and
	// holds the floor.
	b := 16
	for i := 0; i < 10; i++ {
		b = downshiftStep(b)
	}
	if b != 3 {
		t.Errorf("ladder floor %d, want 3", b)
	}
}

// TestValidateOpen covers the open-loop validation introduced with the
// admission hooks: the Poisson trace knobs are optional, everything the
// engine itself uses is still checked.
func TestValidateOpen(t *testing.T) {
	if err := openConfig().ValidateOpen(); err != nil {
		t.Fatalf("open config invalid: %v", err)
	}
	// Closed-loop Validate still demands an arrival trace.
	if err := openConfig().Validate(); err == nil {
		t.Error("closed-loop Validate must reject a trace-free config")
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"bad bits", func(c *Config) { c.Bits = 5 }},
		{"negative arrival", func(c *Config) { c.Arrival = -1 }},
		{"negative duration", func(c *Config) { c.Duration = -1 }},
		{"zero max-new cap", func(c *Config) { c.MaxNew = 0 }},
		{"zero max batch", func(c *Config) { c.MaxBatch = 0 }},
		{"negative shed depth", func(c *Config) { c.ShedDepth = -1 }},
		{"invalid retry", func(c *Config) { c.Retry.MaxAttempts = 2; c.Retry.Factor = 0.1 }},
	}
	for _, tc := range cases {
		c := openConfig()
		tc.mut(&c)
		if err := c.ValidateOpen(); err == nil {
			t.Errorf("%s: ValidateOpen accepted %+v", tc.name, c)
		}
		if _, err := NewEngine(c); err == nil {
			t.Errorf("%s: NewEngine accepted the invalid config", tc.name)
		}
	}
}

// TestSubmitValidation covers the request-shape errors front doors map
// to 4xx responses.
func TestSubmitValidation(t *testing.T) {
	e, err := NewEngine(openConfig())
	if err != nil {
		t.Fatal(err)
	}
	window := openConfig().Model.MaxPosEmb
	bad := []struct {
		name            string
		prompt, maxNew  int
	}{
		{"zero prompt", 0, 8},
		{"negative prompt", -3, 8},
		{"zero max-new", 10, 0},
		{"negative max-new", 10, -1},
		{"max-new above cap", 10, 33},
		{"context overflow", window, 32},
	}
	for _, tc := range bad {
		if _, err := e.Submit(tc.prompt, tc.maxNew); err == nil {
			t.Errorf("%s: Submit(%d, %d) accepted", tc.name, tc.prompt, tc.maxNew)
		} else if errors.Is(err, ErrShed) {
			t.Errorf("%s: validation error conflated with shedding: %v", tc.name, err)
		}
	}
	if e.Busy() {
		t.Error("rejected submissions must not enqueue work")
	}
}

// TestOpenLoopHooksAndStats drives two requests through the open-loop
// engine and checks every lifecycle hook fires the documented number of
// times, with the token stream totals agreeing with Stats.
func TestOpenLoopHooksAndStats(t *testing.T) {
	c := openConfig()
	var admits, tokens, finishes, sheds int
	var lastDone []int
	c.Hooks = Hooks{
		OnAdmit: func(r *Request) { admits++ },
		OnToken: func(r *Request) {
			tokens++
			for len(lastDone) <= r.ID() {
				lastDone = append(lastDone, 0)
			}
			if r.Done() != lastDone[r.ID()]+1 {
				t.Errorf("request %d token jumped %d -> %d", r.ID(), lastDone[r.ID()], r.Done())
			}
			lastDone[r.ID()] = r.Done()
		},
		OnFinish: func(r *Request) { finishes++ },
		OnShed:   func(r *Request) { sheds++ },
	}
	e, err := NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e.Submit(40, 8)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Submit(25, 16)
	if err != nil {
		t.Fatal(err)
	}
	drain(t, e)
	if admits != 2 || finishes != 2 || sheds != 0 {
		t.Errorf("admits %d finishes %d sheds %d, want 2/2/0", admits, finishes, sheds)
	}
	if want := r1.MaxNew() + r2.MaxNew(); tokens != want {
		t.Errorf("OnToken fired %d times, want %d", tokens, want)
	}
	st := e.Stats()
	if st.Completed != 2 || st.GeneratedTok != 24 {
		t.Errorf("stats %+v, want 2 completed / 24 tokens", st)
	}
	if st.PeakBatch < 2 {
		t.Errorf("peak batch %d, want >= 2 (both requests decode together)", st.PeakBatch)
	}
	if r1.FinishSec() <= 0 || r2.FinishSec() <= 0 {
		t.Error("finished requests must carry positive finish times")
	}
	if r1.LatencySec() <= 0 {
		t.Errorf("latency %.6f, want > 0", r1.LatencySec())
	}
}

// TestOpenLoopShedThenRecover: a queue at the watermark refuses new work
// with ErrShed, and once the backlog drains the same engine admits and
// completes later submissions — shedding is a pressure valve, not a
// terminal state.
func TestOpenLoopShedThenRecover(t *testing.T) {
	c := openConfig()
	c.MaxBatch = 1
	c.ShedDepth = 1
	e, err := NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(40, 8); err != nil {
		t.Fatal(err)
	}
	// Admit r1 into the batch (one decode step).
	if ran, err := e.StepOnce(); err != nil || !ran {
		t.Fatalf("first step ran=%v err=%v", ran, err)
	}
	if e.Running() != 1 {
		t.Fatalf("running %d, want 1", e.Running())
	}
	// r2 waits (MaxBatch 1); r3 finds the queue at the watermark.
	if _, err := e.Submit(40, 8); err != nil {
		t.Fatalf("second submit refused: %v", err)
	}
	if e.Waiting() != 1 {
		t.Fatalf("waiting %d, want 1", e.Waiting())
	}
	r3, err := e.Submit(40, 8)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("third submit: err %v, want ErrShed", err)
	}
	if !r3.Shed() {
		t.Error("refused request not marked shed")
	}
	// Recover: drain the backlog, then a fresh submission sails through.
	drain(t, e)
	if _, err := e.Submit(40, 8); err != nil {
		t.Fatalf("post-recovery submit refused: %v", err)
	}
	drain(t, e)
	st := e.Stats()
	if st.Completed != 3 {
		t.Errorf("completed %d, want 3", st.Completed)
	}
	if st.Shed != 1 {
		t.Errorf("shed %d, want 1", st.Shed)
	}
	if st.Rejected != 1 {
		t.Errorf("rejected %d, want 1 (the shed submission)", st.Rejected)
	}
}

// TestOpenLoopDeterminism: the same submission sequence replays
// byte-for-byte — Stats deep-equal and identical sim-registry dumps —
// which is the property the HTTP front door's byte-diffed artifacts
// stand on.
func TestOpenLoopDeterminism(t *testing.T) {
	run := func() (Stats, string) {
		c := openConfig()
		reg := obs.NewRegistry()
		c.Obs = reg
		e, err := NewEngine(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, sub := range []struct{ p, n int }{{40, 8}, {25, 16}, {100, 4}} {
			if _, err := e.Submit(sub.p, sub.n); err != nil {
				t.Fatal(err)
			}
		}
		drain(t, e)
		var dump strings.Builder
		if err := reg.WriteText(&dump); err != nil {
			t.Fatal(err)
		}
		return e.Stats(), dump.String()
	}
	stA, dumpA := run()
	stB, dumpB := run()
	if !reflect.DeepEqual(stA, stB) {
		t.Errorf("open-loop stats diverged:\na: %+v\nb: %+v", stA, stB)
	}
	if dumpA != dumpB {
		t.Error("open-loop sim registry dumps differ byte-for-byte")
	}
	if stA.Completed != 3 {
		t.Errorf("completed %d, want 3", stA.Completed)
	}
}

// TestClosedLoopPeakBatch: the new PeakBatch stat brackets MeanBatch on
// the closed-loop path too.
func TestClosedLoopPeakBatch(t *testing.T) {
	st, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st.PeakBatch < 1 {
		t.Fatalf("peak batch %d, want >= 1", st.PeakBatch)
	}
	if float64(st.PeakBatch) < st.MeanBatch {
		t.Errorf("peak batch %d below mean %.2f", st.PeakBatch, st.MeanBatch)
	}
}

// TestEngineAccessors pins the read-only surface the HTTP front door
// builds response metadata from.
func TestEngineAccessors(t *testing.T) {
	e, err := NewEngine(openConfig())
	if err != nil {
		t.Fatal(err)
	}
	if e.Now() != 0 {
		t.Errorf("fresh engine Now %v, want 0", e.Now())
	}
	if e.Bits() != 8 {
		t.Errorf("Bits %d, want 8", e.Bits())
	}
	if e.KVCapacityTok() <= 0 {
		t.Errorf("KVCapacityTok %d, want > 0", e.KVCapacityTok())
	}
	r, err := e.Submit(40, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.PromptTokens() != 40 || r.ArriveSec() != 0 {
		t.Errorf("request prompt %d arrive %v", r.PromptTokens(), r.ArriveSec())
	}
	drain(t, e)
	if r.StartSec() < 0 || r.StartSec() > r.FinishSec() {
		t.Errorf("start %v outside [0, finish %v]", r.StartSec(), r.FinishSec())
	}
	if e.Now() <= 0 {
		t.Error("simulated time never advanced")
	}
}

// TestUnfittableHeadRejected: a request that passes shape validation but
// can never fit the paged-KV pool must be rejected at the admission
// step — OnShed fires, the queue does not wedge, and the engine goes
// idle instead of spinning.
func TestUnfittableHeadRejected(t *testing.T) {
	c := openConfig()
	c.GPU = hardware.T4 // opt-13b at 8-bit leaves a pool < 1k tokens
	var sheds int
	c.Hooks = Hooks{OnShed: func(r *Request) { sheds++ }}
	e, err := NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	pool := e.KVCapacityTok()
	if pool <= 0 || pool+1 > c.Model.MaxPosEmb-1-32 {
		t.Fatalf("pool %d tokens not in the unfittable-but-valid range", pool)
	}
	r, err := e.Submit(pool+1, 32) // shape-valid, pool-unfittable
	if err != nil {
		t.Fatalf("shape-valid submit refused: %v", err)
	}
	ran, err := e.StepOnce()
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("unfittable head must not decode")
	}
	if sheds != 1 || !r.Shed() {
		t.Errorf("sheds %d, Shed()=%v, want 1/true", sheds, r.Shed())
	}
	if e.Busy() {
		t.Error("engine must go idle after rejecting the head")
	}
	if st := e.Stats(); st.Rejected != 1 {
		t.Errorf("rejected %d, want 1", st.Rejected)
	}
	// The pool itself still serves fittable work.
	if _, err := e.Submit(100, 8); err != nil {
		t.Fatal(err)
	}
	drain(t, e)
	if st := e.Stats(); st.Completed != 1 {
		t.Errorf("completed %d, want 1", st.Completed)
	}
}

// TestEngineNoKVMemory: a model too large for the device is a
// constructor error, not a runtime wedge.
func TestEngineNoKVMemory(t *testing.T) {
	c := openConfig()
	c.GPU = hardware.V100
	c.Model = model.OPT30B
	c.Bits = 16
	if _, err := NewEngine(c); err == nil {
		t.Fatal("opt-30b fp16 on a V100 must fail to leave KV memory")
	}
}

// TestOpenLoopKVChaosSheds: exhausted KV-allocation retries shed the
// request through the OnShed hook instead of wedging the open loop.
func TestOpenLoopKVChaosSheds(t *testing.T) {
	c := openConfig()
	c.Chaos = kvPressure(1.0) // every allocation fails
	c.Retry = retry.Policy{MaxAttempts: 2, BaseDelaySec: 0.001, Factor: 2, MaxDelaySec: 0.01}
	var sheds int
	c.Hooks = Hooks{OnShed: func(r *Request) { sheds++ }}
	e, err := NewEngine(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(40, 8); err != nil {
		t.Fatal(err)
	}
	drain(t, e)
	st := e.Stats()
	if st.KVFailures == 0 || st.Shed != 1 || sheds != 1 {
		t.Errorf("failures %d shed %d hooks %d, want >0/1/1", st.KVFailures, st.Shed, sheds)
	}
	if st.Completed != 0 {
		t.Errorf("completed %d under certain allocation failure", st.Completed)
	}
}
