package online

import (
	"strings"
	"testing"

	"repro/internal/core/floats"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/obs"
)

// TestRunObserved checks the online simulator's instrumentation: metric
// totals must agree with the returned Stats, and attaching a registry
// must not change the simulation's outcome.
func TestRunObserved(t *testing.T) {
	base := Config{
		GPU: hardware.V100, Model: model.OPT13B, Bits: 8,
		Arrival: 4, Duration: 20, MaxNew: 24, MaxBatch: 32, Seed: 7,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	cfg := base
	cfg.Obs = reg
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Instrumentation must not perturb the simulation.
	if st.Completed != plain.Completed || st.GeneratedTok != plain.GeneratedTok ||
		!floats.AlmostEqual(st.Throughput, plain.Throughput) ||
		!floats.AlmostEqual(st.MeanLatency, plain.MeanLatency) {
		t.Errorf("observed run diverged: %+v vs %+v", st, plain)
	}

	bl := obs.L("bits", "8")
	if got := reg.Counter(metricCompleted, bl).Value(); int(got) != st.Completed {
		t.Errorf("completed counter %.0f, want %d", got, st.Completed)
	}
	lat := reg.Histogram(metricReqLatency, obs.TimeBuckets(), bl)
	if int(lat.Count()) != st.Completed {
		t.Errorf("latency histogram has %d samples, want %d", lat.Count(), st.Completed)
	}
	// Histogram mean of request latencies must reproduce Stats.MeanLatency.
	if !floats.EqTol(lat.Mean(), st.MeanLatency, 1e-9) {
		t.Errorf("latency histogram mean %.6f, Stats.MeanLatency %.6f", lat.Mean(), st.MeanLatency)
	}
	sb := reg.Histogram(metricStepBatch, obs.LinearBuckets(1, 4, 16), bl)
	if sb.Count() == 0 {
		t.Error("no step-batch samples")
	}
	if !floats.EqTol(sb.Mean(), st.MeanBatch, 1e-9) {
		t.Errorf("step-batch mean %.4f, Stats.MeanBatch %.4f", sb.Mean(), st.MeanBatch)
	}
	if cap := reg.Gauge(metricKVCapTok, bl).Value(); int(cap) != st.KVCapacityTok {
		t.Errorf("KV capacity gauge %.0f, want %d", cap, st.KVCapacityTok)
	}
	occ := reg.Histogram(metricKVOccupancy, obs.FractionBuckets(), bl)
	if occ.Count() == 0 {
		t.Error("no KV occupancy samples")
	}
	if hi := occ.Quantile(1); hi > 1.0+1e-9 {
		t.Errorf("occupancy exceeded 1: %g", hi)
	}

	var dump strings.Builder
	if err := reg.WriteText(&dump); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{metricQueueDepth, metricKVOccupancy, metricStepBatch, metricReqLatency} {
		if !strings.Contains(dump.String(), want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
}
