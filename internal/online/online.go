// Package online explores the paper's §7 "Apply to ORCA or vLLM"
// discussion: under ONLINE serving (unpredictable arrivals, paged KV
// memory, continuous batching) the choice of quantization level trades
// kernel speed against the KV memory left for concurrent requests —
// "there is always a trade-off between the speed of quantized operators
// and the amount of available memory."
//
// The simulator is a deliberately small vLLM-alike: requests arrive by a
// seeded Poisson process with ShareGPT-style prompt lengths, are admitted
// when paged-KV memory is available, decode in a continuously-batched
// step loop, and release their pages on completion. It runs on a single
// (possibly fused) device; the experiment sweeps weight precision and
// arrival rate to expose the crossover.
package online

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/chaos"
	"repro/internal/core/retry"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/profiler"
	"repro/internal/workload"
)

// Metric family names exported by the online simulator.
const (
	metricQueueDepth  = "llmpq_online_queue_depth"
	metricKVUsedTok   = "llmpq_online_kv_used_tokens"
	metricKVCapTok    = "llmpq_online_kv_capacity_tokens"
	metricKVOccupancy = "llmpq_online_kv_occupancy"
	metricStepBatch   = "llmpq_online_step_batch"
	metricReqLatency  = "llmpq_online_request_latency_seconds"
	metricAdmitted    = "llmpq_online_admitted_total"
	metricCompleted   = "llmpq_online_completed_total"
	metricRejected    = "llmpq_online_rejected_total"
	// Graceful degradation under chaos (DESIGN.md §10).
	metricKVFailures = "llmpq_online_kv_alloc_failures_total"
	metricKVRetries  = "llmpq_online_kv_retries_total"
	metricShed       = "llmpq_online_shed_total"
	metricDownshifts = "llmpq_online_downshifts_total"
	metricBits       = "llmpq_online_bits"
)

// onlineObs pre-resolves the simulator's metric series; nil = no-op.
type onlineObs struct {
	queueDepth *obs.Histogram
	kvUsed     *obs.Gauge
	kvCap      *obs.Gauge
	occupancy  *obs.Histogram
	stepBatch  *obs.Histogram
	latency    *obs.Histogram
	admitted   *obs.Counter
	completed  *obs.Counter
	rejected   *obs.Counter
	kvFailures *obs.Counter
	kvRetries  *obs.Counter
	shedTotal  *obs.Counter
	downshifts *obs.Counter
	bitsGauge  *obs.Gauge
}

func newOnlineObs(r *obs.Registry, bits int, kvTokens int) *onlineObs {
	if r == nil {
		return nil
	}
	bl := obs.L("bits", fmt.Sprint(bits))
	o := &onlineObs{
		queueDepth: r.Histogram(metricQueueDepth, obs.LinearBuckets(1, 4, 16), bl),
		kvUsed:     r.Gauge(metricKVUsedTok, bl),
		kvCap:      r.Gauge(metricKVCapTok, bl),
		occupancy:  r.Histogram(metricKVOccupancy, obs.FractionBuckets(), bl),
		stepBatch:  r.Histogram(metricStepBatch, obs.LinearBuckets(1, 4, 16), bl),
		latency:    r.Histogram(metricReqLatency, obs.TimeBuckets(), bl),
		admitted:   r.Counter(metricAdmitted, bl),
		completed:  r.Counter(metricCompleted, bl),
		rejected:   r.Counter(metricRejected, bl),
		kvFailures: r.Counter(metricKVFailures, bl),
		kvRetries:  r.Counter(metricKVRetries, bl),
		shedTotal:  r.Counter(metricShed, bl),
		downshifts: r.Counter(metricDownshifts, bl),
		bitsGauge:  r.Gauge(metricBits),
	}
	o.kvCap.Set(float64(kvTokens))
	o.bitsGauge.Set(float64(bits))
	return o
}

// step samples the per-decode-step state: batch size, arrived-but-waiting
// queue depth, and paged-KV occupancy.
func (o *onlineObs) step(batch, waiting, usedTok, kvTokens int) {
	if o == nil {
		return
	}
	o.stepBatch.Observe(float64(batch))
	o.queueDepth.Observe(float64(waiting))
	o.kvUsed.Set(float64(usedTok))
	if kvTokens > 0 {
		o.occupancy.Observe(float64(usedTok) / float64(kvTokens))
	}
}

func (o *onlineObs) admit() {
	if o == nil {
		return
	}
	o.admitted.Inc()
}

func (o *onlineObs) finish(latencySec float64) {
	if o == nil {
		return
	}
	o.completed.Inc()
	o.latency.Observe(latencySec)
}

func (o *onlineObs) reject() {
	if o == nil {
		return
	}
	o.rejected.Inc()
}

// kvFail counts one transient KV-allocation failure and, when it was not
// the first attempt, the retry that hit it.
func (o *onlineObs) kvFail(attempt int) {
	if o == nil {
		return
	}
	o.kvFailures.Inc()
	if attempt > 1 {
		o.kvRetries.Inc()
	}
}

// shed counts a request dropped by graceful degradation (retry
// exhaustion or queue-depth load shedding); shed requests also count as
// rejected so downstream dashboards keep a single loss family.
func (o *onlineObs) shed() {
	if o == nil {
		return
	}
	o.shedTotal.Inc()
	o.rejected.Inc()
}

// downshift records a weight-precision drop under memory pressure.
func (o *onlineObs) downshift(bits, kvTokens int) {
	if o == nil {
		return
	}
	o.downshifts.Inc()
	o.bitsGauge.Set(float64(bits))
	o.kvCap.Set(float64(kvTokens))
}

// Config describes one online-serving simulation.
type Config struct {
	GPU      hardware.GPU
	Model    model.Config
	Bits     int     // uniform weight precision
	Arrival  float64 // mean requests per second (Poisson)
	Duration float64 // simulated seconds of arrivals
	MaxNew   int     // tokens generated per request
	MaxBatch int     // admission cap on concurrent requests
	Seed     int64
	// Obs, when non-nil, receives serving metrics (admission queue depth,
	// paged-KV occupancy, per-step batch size, request latency histogram —
	// DESIGN.md §8). Nil keeps the simulation uninstrumented; results are
	// identical either way.
	Obs *obs.Registry

	// Chaos, when non-nil, injects the schedule's KindKVAlloc faults:
	// paged-KV allocations fail with the schedule's probability inside
	// each fault window. Other fault kinds are ignored here (they target
	// the pipeline engine). Draws come from an explicit rng seeded by
	// (Seed, Chaos.Seed), so fault runs replay byte-for-byte.
	Chaos *chaos.Schedule
	// Retry bounds the per-admission retry loop on transient KV failures.
	// The zero value selects retry.Default(). Backoff advances simulated
	// time (the admission stalls the engine), never the wall clock.
	Retry retry.Policy
	// ShedDepth, when positive, load-sheds: arrived-but-waiting requests
	// beyond this depth are dropped (counted as shed and rejected)
	// instead of queueing unboundedly. 0 disables shedding.
	ShedDepth int
	// Downshift enables the bitwidth fallback under sustained memory
	// pressure: when the KV pool stays >90% occupied with requests
	// waiting, weights requantize one step down the 16→8→4→3 ladder,
	// growing the pool at a one-off requantization stall (§7 trade-off,
	// inverted: spend kernel speed to buy KV memory).
	Downshift bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch c.Bits {
	case 3, 4, 8, 16:
	default:
		return fmt.Errorf("online: unsupported bitwidth %d", c.Bits)
	}
	if c.Arrival <= 0 || c.Duration <= 0 || c.MaxNew <= 0 {
		return fmt.Errorf("online: arrival/duration/maxnew must be positive")
	}
	if c.MaxBatch <= 0 {
		return fmt.Errorf("online: max batch must be positive")
	}
	if c.ShedDepth < 0 {
		return fmt.Errorf("online: negative shed depth %d", c.ShedDepth)
	}
	if c.Chaos != nil {
		// The online simulator is single-stage; only stage-0 (and
		// stage-free KV) faults make sense.
		if err := c.Chaos.Validate(1); err != nil {
			return err
		}
	}
	if c.Retry.MaxAttempts != 0 {
		if err := c.Retry.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// retryPolicy resolves the effective retry policy.
func (c Config) retryPolicy() retry.Policy {
	if c.Retry.MaxAttempts == 0 {
		return retry.Default()
	}
	return c.Retry
}

// Stats summarizes a simulation.
type Stats struct {
	Completed     int
	GeneratedTok  int
	Throughput    float64 // generated tokens per second of simulated time
	MeanLatency   float64 // request completion latency (admission wait + run)
	P95Latency    float64
	MeanBatch     float64 // average concurrent batch while serving
	KVCapacityTok int     // paged-KV capacity in tokens
	Rejected      int     // arrivals the queue never admitted before sim end
	// Graceful-degradation accounting (zero without chaos/shedding).
	Shed       int // requests dropped by retry exhaustion or load shedding
	KVFailures int // transient KV-allocation failures observed
	KVRetries  int // retries spent recovering from them
	Downshifts int // bitwidth drops under sustained memory pressure
	FinalBits  int // weight precision at simulation end
	FinalKVTok int // KV capacity at simulation end (grows on downshift)
}

type request struct {
	arrive float64
	prompt int
	done   int // tokens generated so far
	start  float64
	finish float64
	shed   bool
}

// Run simulates the configured workload.
func Run(c Config) (Stats, error) {
	if err := c.Validate(); err != nil {
		return Stats{}, err
	}
	rng := rand.New(rand.NewSource(c.Seed))

	// Memory budget: weights at the current precision + working set; the
	// remainder is the paged KV pool (vLLM's core resource). Recomputed on
	// bitwidth downshift, where shrinking weights grows the pool.
	perTok := c.Model.KVBytesPerLayer(1, 1, profiler.KVBits) * float64(c.Model.Layers)
	poolFor := func(bits int) (weights float64, kvTokens int) {
		for i := 0; i < c.Model.Layers; i++ {
			weights += c.Model.LayerWeightBytes(bits)
		}
		weights += c.Model.EmbedBytes() + c.Model.LMHeadBytes()
		work := 0.08 * c.GPU.MemoryBytes() // activations + allocator slack
		return weights, int((c.GPU.MemoryBytes() - weights - work) / perTok)
	}
	bits := c.Bits
	weights, kvTokens := poolFor(bits)
	if kvTokens <= 0 {
		return Stats{}, fmt.Errorf("online: %s at %d-bit leaves no KV memory on %s", c.Model.Name, c.Bits, c.GPU.Name)
	}
	oo := newOnlineObs(c.Obs, c.Bits, kvTokens)

	// Chaos: transient KV-allocation failures, retried with deterministic
	// jittered backoff that stalls simulated time.
	kvChaos := c.Chaos.HasKVFaults()
	var kvRng *rand.Rand
	if kvChaos {
		kvRng = rand.New(rand.NewSource(c.Seed ^ c.Chaos.Seed ^ 0x6b76616c6c6f63)) // "kvalloc"
	}
	policy := c.retryPolicy()
	var st Stats

	// Arrivals.
	var queue []*request
	t := 0.0
	for t < c.Duration {
		t += rng.ExpFloat64() / c.Arrival
		p := workload.ShareGPTLengths(1, c.Model.MaxPosEmb-c.MaxNew-1, rng.Int63())[0]
		queue = append(queue, &request{arrive: t, prompt: p})
	}

	var running []*request
	usedTok := 0
	now := 0.0
	var finished []*request
	var batchSamples []float64
	qi := 0

	kvNeed := func(r *request) int { return r.prompt + c.MaxNew }
	// kvAlloc reserves a request's pages, riding out transient chaos
	// failures with bounded backoff (which stalls simulated time). False
	// means the retries were exhausted and the request must be shed.
	kvAlloc := func(r *request, idx int) bool {
		if !kvChaos {
			return true
		}
		err := policy.Do(c.Seed+int64(idx), func(attempt int) error {
			p := c.Chaos.KVFailProb(now)
			if p > 0 && kvRng.Float64() < p {
				st.KVFailures++
				oo.kvFail(attempt)
				return fmt.Errorf("online: transient KV allocation failure")
			}
			if attempt > 1 {
				st.KVRetries++
			}
			return nil
		}, func(delaySec float64) { now += delaySec })
		return err == nil
	}
	shedReq := func(r *request) {
		r.shed = true
		r.finish = -1
		st.Shed++
		oo.shed()
	}
	// shedExcess drops arrived-but-waiting requests beyond the watermark
	// (newest first go, FIFO order for the survivors).
	shedExcess := func() {
		if c.ShedDepth <= 0 {
			return
		}
		waiting := 0
		for k := qi; k < len(queue) && queue[k].arrive <= now; k++ {
			if queue[k].shed {
				continue
			}
			waiting++
			if waiting > c.ShedDepth {
				shedReq(queue[k])
			}
		}
	}
	admit := func() {
		for qi < len(queue) && len(running) < c.MaxBatch {
			r := queue[qi]
			if r.shed {
				qi++
				continue
			}
			if r.arrive > now {
				break
			}
			if usedTok+kvNeed(r) > kvTokens {
				break // head-of-line blocking on KV pages
			}
			if !kvAlloc(r, qi) {
				// Retries exhausted under memory-pressure chaos: shed
				// rather than block the admission queue forever.
				shedReq(r)
				qi++
				continue
			}
			usedTok += kvNeed(r)
			oo.admit()
			r.start = now
			// Prefill cost charged on admission.
			pre, _ := profiler.LayerTime(c.GPU, c.Model, profiler.Workload{
				Batch: 1, Prompt: r.prompt, Prefill: true, Bits: bits,
			})
			now += pre * float64(c.Model.Layers)
			running = append(running, r)
			qi++
		}
	}

	// waitingNow counts arrived-but-unadmitted (and unshed) requests.
	waitingNow := func() int {
		waiting := 0
		for k := qi; k < len(queue) && queue[k].arrive <= now; k++ {
			if !queue[k].shed {
				waiting++
			}
		}
		return waiting
	}

	st.KVCapacityTok = kvTokens
	// Sustained-pressure window before a precision downshift fires.
	const downshiftAfter = 25
	hot := 0

	const maxSteps = 5_000_000
	steps := 0
	for {
		// Jump to the next arrival when idle.
		if len(running) == 0 {
			for qi < len(queue) && queue[qi].shed {
				qi++
			}
			if qi >= len(queue) {
				break
			}
			if queue[qi].arrive > now {
				now = queue[qi].arrive
			}
			shedExcess()
			admit()
			if len(running) == 0 {
				for qi < len(queue) && queue[qi].shed {
					qi++
				}
				if qi < len(queue) && queue[qi].arrive <= now {
					// KV pool cannot fit even one request: reject it.
					queue[qi].finish = -1
					oo.reject()
					qi++
				}
				continue
			}
		}
		// One continuous-batching decode step: every running request
		// produces one token.
		b := len(running)
		batchSamples = append(batchSamples, float64(b))
		if oo != nil {
			oo.step(b, waitingNow(), usedTok, kvTokens)
		}
		ctx := 0
		for _, r := range running {
			ctx += r.prompt + r.done
		}
		stepW := profiler.Workload{Batch: b, Prompt: 512, Context: ctx / b, Bits: bits}
		lt, err := profiler.LayerTime(c.GPU, c.Model, stepW)
		if err != nil {
			return Stats{}, err
		}
		now += lt * float64(c.Model.Layers)
		keep := running[:0]
		for _, r := range running {
			r.done++
			if r.done >= c.MaxNew {
				r.finish = now
				usedTok -= kvNeed(r)
				oo.finish(r.finish - r.arrive)
				finished = append(finished, r)
			} else {
				keep = append(keep, r)
			}
		}
		running = keep
		// Graceful degradation: sustained high KV occupancy with requests
		// waiting triggers one step down the precision ladder — smaller
		// weights, bigger pool, slower kernels (§7 trade-off inverted).
		if c.Downshift && bits > 3 {
			if usedTok*10 > kvTokens*9 && waitingNow() > 0 {
				hot++
			} else {
				hot = 0
			}
			if hot >= downshiftAfter {
				old := weights
				bits = downshiftStep(bits)
				st.Downshifts++
				weights, kvTokens = poolFor(bits)
				// Requantization stall: stream the old weights out and the
				// requantized copy back through HBM.
				now += (old + weights) / (c.GPU.BandwidthGBs * 1e9)
				oo.downshift(bits, kvTokens)
				hot = 0
			}
		}
		shedExcess()
		admit()
		steps++
		if steps > maxSteps {
			return Stats{}, fmt.Errorf("online: runaway simulation after %d steps", steps)
		}
	}

	var latencies []float64
	for _, r := range queue {
		if r.finish < 0 {
			st.Rejected++
		}
	}
	for _, r := range finished {
		st.Completed++
		st.GeneratedTok += c.MaxNew
		latencies = append(latencies, r.finish-r.arrive)
	}
	if st.Completed == 0 {
		return Stats{}, fmt.Errorf("online: nothing completed (arrival %.2f/s, kv %d tok)", c.Arrival, kvTokens)
	}
	st.Throughput = float64(st.GeneratedTok) / now
	sort.Float64s(latencies)
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	st.MeanLatency = sum / float64(len(latencies))
	st.P95Latency = latencies[int(math.Min(float64(len(latencies)-1), 0.95*float64(len(latencies))))]
	for _, b := range batchSamples {
		st.MeanBatch += b
	}
	st.MeanBatch /= float64(len(batchSamples))
	st.FinalBits = bits
	st.FinalKVTok = kvTokens
	return st, nil
}

// downshiftStep is the precision fallback ladder under memory pressure.
func downshiftStep(bits int) int {
	switch bits {
	case 16:
		return 8
	case 8:
		return 4
	default:
		return 3
	}
}

// SweepPoint is one (bits, arrival) measurement.
type SweepPoint struct {
	Bits    int
	Arrival float64
	Stats   Stats
}

// Sweep runs the precision × load grid of the §7 trade-off experiment.
func Sweep(gpu hardware.GPU, cfg model.Config, bits []int, arrivals []float64, maxNew int, seed int64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, b := range bits {
		for _, a := range arrivals {
			st, err := Run(Config{
				GPU: gpu, Model: cfg, Bits: b, Arrival: a,
				Duration: 60, MaxNew: maxNew, MaxBatch: 64, Seed: seed,
			})
			if err != nil {
				// A precision that leaves no KV memory simply has no
				// point at this load.
				continue
			}
			out = append(out, SweepPoint{Bits: b, Arrival: a, Stats: st})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("online: empty sweep")
	}
	return out, nil
}
