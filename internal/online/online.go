// Package online explores the paper's §7 "Apply to ORCA or vLLM"
// discussion: under ONLINE serving (unpredictable arrivals, paged KV
// memory, continuous batching) the choice of quantization level trades
// kernel speed against the KV memory left for concurrent requests —
// "there is always a trade-off between the speed of quantized operators
// and the amount of available memory."
//
// The simulator is a deliberately small vLLM-alike: requests arrive by a
// seeded Poisson process with ShareGPT-style prompt lengths, are admitted
// when paged-KV memory is available, decode in a continuously-batched
// step loop, and release their pages on completion. It runs on a single
// (possibly fused) device; the experiment sweeps weight precision and
// arrival rate to expose the crossover.
package online

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/profiler"
	"repro/internal/workload"
)

// Metric family names exported by the online simulator.
const (
	metricQueueDepth  = "llmpq_online_queue_depth"
	metricKVUsedTok   = "llmpq_online_kv_used_tokens"
	metricKVCapTok    = "llmpq_online_kv_capacity_tokens"
	metricKVOccupancy = "llmpq_online_kv_occupancy"
	metricStepBatch   = "llmpq_online_step_batch"
	metricReqLatency  = "llmpq_online_request_latency_seconds"
	metricAdmitted    = "llmpq_online_admitted_total"
	metricCompleted   = "llmpq_online_completed_total"
	metricRejected    = "llmpq_online_rejected_total"
)

// onlineObs pre-resolves the simulator's metric series; nil = no-op.
type onlineObs struct {
	queueDepth *obs.Histogram
	kvUsed     *obs.Gauge
	kvCap      *obs.Gauge
	occupancy  *obs.Histogram
	stepBatch  *obs.Histogram
	latency    *obs.Histogram
	admitted   *obs.Counter
	completed  *obs.Counter
	rejected   *obs.Counter
}

func newOnlineObs(r *obs.Registry, bits int, kvTokens int) *onlineObs {
	if r == nil {
		return nil
	}
	bl := obs.L("bits", fmt.Sprint(bits))
	o := &onlineObs{
		queueDepth: r.Histogram(metricQueueDepth, obs.LinearBuckets(1, 4, 16), bl),
		kvUsed:     r.Gauge(metricKVUsedTok, bl),
		kvCap:      r.Gauge(metricKVCapTok, bl),
		occupancy:  r.Histogram(metricKVOccupancy, obs.FractionBuckets(), bl),
		stepBatch:  r.Histogram(metricStepBatch, obs.LinearBuckets(1, 4, 16), bl),
		latency:    r.Histogram(metricReqLatency, obs.TimeBuckets(), bl),
		admitted:   r.Counter(metricAdmitted, bl),
		completed:  r.Counter(metricCompleted, bl),
		rejected:   r.Counter(metricRejected, bl),
	}
	o.kvCap.Set(float64(kvTokens))
	return o
}

// step samples the per-decode-step state: batch size, arrived-but-waiting
// queue depth, and paged-KV occupancy.
func (o *onlineObs) step(batch, waiting, usedTok, kvTokens int) {
	if o == nil {
		return
	}
	o.stepBatch.Observe(float64(batch))
	o.queueDepth.Observe(float64(waiting))
	o.kvUsed.Set(float64(usedTok))
	if kvTokens > 0 {
		o.occupancy.Observe(float64(usedTok) / float64(kvTokens))
	}
}

func (o *onlineObs) admit() {
	if o == nil {
		return
	}
	o.admitted.Inc()
}

func (o *onlineObs) finish(latencySec float64) {
	if o == nil {
		return
	}
	o.completed.Inc()
	o.latency.Observe(latencySec)
}

func (o *onlineObs) reject() {
	if o == nil {
		return
	}
	o.rejected.Inc()
}

// Config describes one online-serving simulation.
type Config struct {
	GPU      hardware.GPU
	Model    model.Config
	Bits     int     // uniform weight precision
	Arrival  float64 // mean requests per second (Poisson)
	Duration float64 // simulated seconds of arrivals
	MaxNew   int     // tokens generated per request
	MaxBatch int     // admission cap on concurrent requests
	Seed     int64
	// Obs, when non-nil, receives serving metrics (admission queue depth,
	// paged-KV occupancy, per-step batch size, request latency histogram —
	// DESIGN.md §8). Nil keeps the simulation uninstrumented; results are
	// identical either way.
	Obs *obs.Registry
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch c.Bits {
	case 3, 4, 8, 16:
	default:
		return fmt.Errorf("online: unsupported bitwidth %d", c.Bits)
	}
	if c.Arrival <= 0 || c.Duration <= 0 || c.MaxNew <= 0 {
		return fmt.Errorf("online: arrival/duration/maxnew must be positive")
	}
	if c.MaxBatch <= 0 {
		return fmt.Errorf("online: max batch must be positive")
	}
	return nil
}

// Stats summarizes a simulation.
type Stats struct {
	Completed     int
	GeneratedTok  int
	Throughput    float64 // generated tokens per second of simulated time
	MeanLatency   float64 // request completion latency (admission wait + run)
	P95Latency    float64
	MeanBatch     float64 // average concurrent batch while serving
	KVCapacityTok int     // paged-KV capacity in tokens
	Rejected      int     // arrivals the queue never admitted before sim end
}

type request struct {
	arrive float64
	prompt int
	done   int // tokens generated so far
	start  float64
	finish float64
}

// Run simulates the configured workload.
func Run(c Config) (Stats, error) {
	if err := c.Validate(); err != nil {
		return Stats{}, err
	}
	rng := rand.New(rand.NewSource(c.Seed))

	// Memory budget: weights at Bits + working set; the remainder is the
	// paged KV pool (vLLM's core resource).
	var weights float64
	for i := 0; i < c.Model.Layers; i++ {
		weights += c.Model.LayerWeightBytes(c.Bits)
	}
	weights += c.Model.EmbedBytes() + c.Model.LMHeadBytes()
	work := 0.08 * c.GPU.MemoryBytes() // activations + allocator slack
	kvPool := c.GPU.MemoryBytes() - weights - work
	if kvPool <= 0 {
		return Stats{}, fmt.Errorf("online: %s at %d-bit leaves no KV memory on %s", c.Model.Name, c.Bits, c.GPU.Name)
	}
	perTok := c.Model.KVBytesPerLayer(1, 1, profiler.KVBits) * float64(c.Model.Layers)
	kvTokens := int(kvPool / perTok)
	oo := newOnlineObs(c.Obs, c.Bits, kvTokens)

	// Arrivals.
	var queue []*request
	t := 0.0
	for t < c.Duration {
		t += rng.ExpFloat64() / c.Arrival
		p := workload.ShareGPTLengths(1, c.Model.MaxPosEmb-c.MaxNew-1, rng.Int63())[0]
		queue = append(queue, &request{arrive: t, prompt: p})
	}

	var running []*request
	usedTok := 0
	now := 0.0
	var finished []*request
	var batchSamples []float64
	qi := 0

	kvNeed := func(r *request) int { return r.prompt + c.MaxNew }
	admit := func() {
		for qi < len(queue) && len(running) < c.MaxBatch {
			r := queue[qi]
			if r.arrive > now {
				break
			}
			if usedTok+kvNeed(r) > kvTokens {
				break // head-of-line blocking on KV pages
			}
			usedTok += kvNeed(r)
			oo.admit()
			r.start = now
			// Prefill cost charged on admission.
			pre, _ := profiler.LayerTime(c.GPU, c.Model, profiler.Workload{
				Batch: 1, Prompt: r.prompt, Prefill: true, Bits: c.Bits,
			})
			now += pre * float64(c.Model.Layers)
			running = append(running, r)
			qi++
		}
	}

	const maxSteps = 5_000_000
	steps := 0
	for {
		// Jump to the next arrival when idle.
		if len(running) == 0 {
			if qi >= len(queue) {
				break
			}
			if queue[qi].arrive > now {
				now = queue[qi].arrive
			}
			admit()
			if len(running) == 0 {
				// KV pool cannot fit even one request: reject it.
				queue[qi].finish = -1
				oo.reject()
				qi++
				continue
			}
		}
		// One continuous-batching decode step: every running request
		// produces one token.
		b := len(running)
		batchSamples = append(batchSamples, float64(b))
		if oo != nil {
			waiting := 0
			for k := qi; k < len(queue) && queue[k].arrive <= now; k++ {
				waiting++
			}
			oo.step(b, waiting, usedTok, kvTokens)
		}
		ctx := 0
		for _, r := range running {
			ctx += r.prompt + r.done
		}
		stepW := profiler.Workload{Batch: b, Prompt: 512, Context: ctx / b, Bits: c.Bits}
		lt, err := profiler.LayerTime(c.GPU, c.Model, stepW)
		if err != nil {
			return Stats{}, err
		}
		now += lt * float64(c.Model.Layers)
		keep := running[:0]
		for _, r := range running {
			r.done++
			if r.done >= c.MaxNew {
				r.finish = now
				usedTok -= kvNeed(r)
				oo.finish(r.finish - r.arrive)
				finished = append(finished, r)
			} else {
				keep = append(keep, r)
			}
		}
		running = keep
		admit()
		steps++
		if steps > maxSteps {
			return Stats{}, fmt.Errorf("online: runaway simulation after %d steps", steps)
		}
	}

	st := Stats{KVCapacityTok: kvTokens}
	var latencies []float64
	for _, r := range queue {
		if r.finish < 0 {
			st.Rejected++
		}
	}
	for _, r := range finished {
		st.Completed++
		st.GeneratedTok += c.MaxNew
		latencies = append(latencies, r.finish-r.arrive)
	}
	if st.Completed == 0 {
		return Stats{}, fmt.Errorf("online: nothing completed (arrival %.2f/s, kv %d tok)", c.Arrival, kvTokens)
	}
	st.Throughput = float64(st.GeneratedTok) / now
	sort.Float64s(latencies)
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	st.MeanLatency = sum / float64(len(latencies))
	st.P95Latency = latencies[int(math.Min(float64(len(latencies)-1), 0.95*float64(len(latencies))))]
	for _, b := range batchSamples {
		st.MeanBatch += b
	}
	st.MeanBatch /= float64(len(batchSamples))
	return st, nil
}

// SweepPoint is one (bits, arrival) measurement.
type SweepPoint struct {
	Bits    int
	Arrival float64
	Stats   Stats
}

// Sweep runs the precision × load grid of the §7 trade-off experiment.
func Sweep(gpu hardware.GPU, cfg model.Config, bits []int, arrivals []float64, maxNew int, seed int64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, b := range bits {
		for _, a := range arrivals {
			st, err := Run(Config{
				GPU: gpu, Model: cfg, Bits: b, Arrival: a,
				Duration: 60, MaxNew: maxNew, MaxBatch: 64, Seed: seed,
			})
			if err != nil {
				// A precision that leaves no KV memory simply has no
				// point at this load.
				continue
			}
			out = append(out, SweepPoint{Bits: b, Arrival: a, Stats: st})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("online: empty sweep")
	}
	return out, nil
}
