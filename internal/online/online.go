// Package online explores the paper's §7 "Apply to ORCA or vLLM"
// discussion: under ONLINE serving (unpredictable arrivals, paged KV
// memory, continuous batching) the choice of quantization level trades
// kernel speed against the KV memory left for concurrent requests —
// "there is always a trade-off between the speed of quantized operators
// and the amount of available memory."
//
// The simulator is a deliberately small vLLM-alike: requests are admitted
// when paged-KV memory is available, decode in a continuously-batched
// step loop, and release their pages on completion. It runs on a single
// (possibly fused) device and has two arrival sources:
//
//   - Run: the closed-loop trace mode — a seeded Poisson process with
//     ShareGPT-style prompt lengths sweeps weight precision and arrival
//     rate to expose the §7 crossover.
//   - Engine: the open-loop admission mode — an external front end (the
//     HTTP gateway in internal/serve) pushes requests through Submit and
//     drives decode steps through StepOnce, observing per-request
//     lifecycle via Hooks. Simulated time still only advances inside the
//     engine, so a fixed submission sequence replays byte-for-byte no
//     matter how fast the wall clock runs.
package online

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/chaos"
	"repro/internal/core/retry"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/profiler"
	"repro/internal/workload"
)

// Metric family names exported by the online simulator.
const (
	metricQueueDepth  = "llmpq_online_queue_depth"
	metricKVUsedTok   = "llmpq_online_kv_used_tokens"
	metricKVCapTok    = "llmpq_online_kv_capacity_tokens"
	metricKVOccupancy = "llmpq_online_kv_occupancy"
	metricStepBatch   = "llmpq_online_step_batch"
	metricReqLatency  = "llmpq_online_request_latency_seconds"
	metricAdmitted    = "llmpq_online_admitted_total"
	metricCompleted   = "llmpq_online_completed_total"
	metricRejected    = "llmpq_online_rejected_total"
	// Graceful degradation under chaos (DESIGN.md §10).
	metricKVFailures = "llmpq_online_kv_alloc_failures_total"
	metricKVRetries  = "llmpq_online_kv_retries_total"
	metricShed       = "llmpq_online_shed_total"
	metricDownshifts = "llmpq_online_downshifts_total"
	metricUpshifts   = "llmpq_online_upshifts_total"
	metricBits       = "llmpq_online_bits"
)

// onlineObs pre-resolves the simulator's metric series; nil = no-op.
type onlineObs struct {
	queueDepth *obs.Histogram
	kvUsed     *obs.Gauge
	kvCap      *obs.Gauge
	occupancy  *obs.Histogram
	stepBatch  *obs.Histogram
	latency    *obs.Histogram
	admitted   *obs.Counter
	completed  *obs.Counter
	rejected   *obs.Counter
	kvFailures *obs.Counter
	kvRetries  *obs.Counter
	shedTotal  *obs.Counter
	downshifts *obs.Counter
	upshifts   *obs.Counter
	bitsGauge  *obs.Gauge
}

func newOnlineObs(r *obs.Registry, bits int, kvTokens int) *onlineObs {
	if r == nil {
		return nil
	}
	bl := obs.L("bits", fmt.Sprint(bits))
	o := &onlineObs{
		queueDepth: r.Histogram(metricQueueDepth, obs.LinearBuckets(1, 4, 16), bl),
		kvUsed:     r.Gauge(metricKVUsedTok, bl),
		kvCap:      r.Gauge(metricKVCapTok, bl),
		occupancy:  r.Histogram(metricKVOccupancy, obs.FractionBuckets(), bl),
		stepBatch:  r.Histogram(metricStepBatch, obs.LinearBuckets(1, 4, 16), bl),
		latency:    r.Histogram(metricReqLatency, obs.TimeBuckets(), bl),
		admitted:   r.Counter(metricAdmitted, bl),
		completed:  r.Counter(metricCompleted, bl),
		rejected:   r.Counter(metricRejected, bl),
		kvFailures: r.Counter(metricKVFailures, bl),
		kvRetries:  r.Counter(metricKVRetries, bl),
		shedTotal:  r.Counter(metricShed, bl),
		downshifts: r.Counter(metricDownshifts, bl),
		upshifts:   r.Counter(metricUpshifts, bl),
		bitsGauge:  r.Gauge(metricBits),
	}
	o.kvCap.Set(float64(kvTokens))
	o.bitsGauge.Set(float64(bits))
	return o
}

// step samples the per-decode-step state: batch size, arrived-but-waiting
// queue depth, and paged-KV occupancy.
func (o *onlineObs) step(batch, waiting, usedTok, kvTokens int) {
	if o == nil {
		return
	}
	o.stepBatch.Observe(float64(batch))
	o.queueDepth.Observe(float64(waiting))
	o.kvUsed.Set(float64(usedTok))
	if kvTokens > 0 {
		o.occupancy.Observe(float64(usedTok) / float64(kvTokens))
	}
}

func (o *onlineObs) admit() {
	if o == nil {
		return
	}
	o.admitted.Inc()
}

func (o *onlineObs) finish(latencySec float64) {
	if o == nil {
		return
	}
	o.completed.Inc()
	o.latency.Observe(latencySec)
}

func (o *onlineObs) reject() {
	if o == nil {
		return
	}
	o.rejected.Inc()
}

// kvFail counts one transient KV-allocation failure and, when it was not
// the first attempt, the retry that hit it.
func (o *onlineObs) kvFail(attempt int) {
	if o == nil {
		return
	}
	o.kvFailures.Inc()
	if attempt > 1 {
		o.kvRetries.Inc()
	}
}

// shed counts a request dropped by graceful degradation (retry
// exhaustion or queue-depth load shedding); shed requests also count as
// rejected so downstream dashboards keep a single loss family.
func (o *onlineObs) shed() {
	if o == nil {
		return
	}
	o.shedTotal.Inc()
	o.rejected.Inc()
}

// downshift records a weight-precision drop under memory pressure.
func (o *onlineObs) downshift(bits, kvTokens int) {
	if o == nil {
		return
	}
	o.downshifts.Inc()
	o.bitsGauge.Set(float64(bits))
	o.kvCap.Set(float64(kvTokens))
}

// upshift records a weight-precision recovery step once pressure eases.
func (o *onlineObs) upshift(bits, kvTokens int) {
	if o == nil {
		return
	}
	o.upshifts.Inc()
	o.bitsGauge.Set(float64(bits))
	o.kvCap.Set(float64(kvTokens))
}

// Hooks are the engine's per-request lifecycle callbacks, the admission
// surface an external front end builds on. All hooks run synchronously
// inside Submit/StepOnce on the caller's goroutine and must not block:
// the HTTP gateway forwards events into buffered per-request channels.
// Any hook may be nil.
type Hooks struct {
	// OnAdmit fires when a request wins paged-KV pages and joins the
	// continuous batch (its prefill cost has just been charged).
	OnAdmit func(*Request)
	// OnToken fires after every decoded token; r.Done() is the count
	// generated so far, including this one.
	OnToken func(*Request)
	// OnFinish fires when a request completes its generation budget and
	// releases its pages.
	OnFinish func(*Request)
	// OnShed fires when a request is dropped: load shedding past the
	// watermark, retry exhaustion under KV chaos, or a rejected head
	// request that can never fit the pool.
	OnShed func(*Request)
}

// Config describes one online-serving simulation.
type Config struct {
	GPU      hardware.GPU
	Model    model.Config
	Bits     int     // uniform weight precision
	Arrival  float64 // mean requests per second (Poisson; closed-loop Run only)
	Duration float64 // simulated seconds of arrivals (closed-loop Run only)
	MaxNew   int     // tokens generated per request (open loop: the default/cap)
	MaxBatch int     // admission cap on concurrent requests
	Seed     int64
	// Obs, when non-nil, receives serving metrics (admission queue depth,
	// paged-KV occupancy, per-step batch size, request latency histogram —
	// DESIGN.md §8). Nil keeps the simulation uninstrumented; results are
	// identical either way.
	Obs *obs.Registry

	// Chaos, when non-nil, injects the schedule's KindKVAlloc faults:
	// paged-KV allocations fail with the schedule's probability inside
	// each fault window. Other fault kinds are ignored here (they target
	// the pipeline engine). Draws come from an explicit rng seeded by
	// (Seed, Chaos.Seed), so fault runs replay byte-for-byte.
	Chaos *chaos.Schedule
	// Retry bounds the per-admission retry loop on transient KV failures.
	// The zero value selects retry.Default(). Backoff advances simulated
	// time (the admission stalls the engine), never the wall clock.
	Retry retry.Policy
	// ShedDepth, when positive, load-sheds: arrived-but-waiting requests
	// beyond this depth are dropped (counted as shed and rejected)
	// instead of queueing unboundedly, and open-loop Submit refuses new
	// work while the queue sits at the watermark. 0 disables shedding.
	ShedDepth int
	// Downshift enables the bitwidth fallback under sustained memory
	// pressure: when the KV pool stays >90% occupied with requests
	// waiting, weights requantize one step down the 16→8→4→3 ladder,
	// growing the pool at a one-off requantization stall (§7 trade-off,
	// inverted: spend kernel speed to buy KV memory).
	Downshift bool
	// Upshift enables the inverse recovery path: once pool occupancy has
	// stayed below the 60% low-watermark with nothing waiting for a
	// dwell of upshiftAfter consecutive steps, precision climbs one step
	// back toward the configured Bits (same one-off requantization
	// stall; a step the resident KV no longer fits under is refused).
	// The dwell is twice the downshift window, so the two state machines
	// hysterese rather than oscillate. Requires Downshift.
	Upshift bool
	// Hooks receive per-request lifecycle events (admission, each decoded
	// token, completion, shedding). The zero value observes nothing and
	// changes nothing: hook invocation never alters the simulation.
	Hooks Hooks
}

// Validate checks the configuration for closed-loop (trace) use.
func (c Config) Validate() error {
	switch c.Bits {
	case 3, 4, 8, 16:
	default:
		return fmt.Errorf("online: unsupported bitwidth %d", c.Bits)
	}
	if c.Arrival <= 0 || c.Duration <= 0 || c.MaxNew <= 0 {
		return fmt.Errorf("online: arrival/duration/maxnew must be positive")
	}
	return c.validateServing()
}

// ValidateOpen checks the configuration for open-loop (hook-driven)
// admission, where the Poisson trace knobs are unused: Arrival and
// Duration may be zero, but MaxNew must still be positive — it is the
// per-request generation cap Submit enforces.
func (c Config) ValidateOpen() error {
	switch c.Bits {
	case 3, 4, 8, 16:
	default:
		return fmt.Errorf("online: unsupported bitwidth %d", c.Bits)
	}
	if c.Arrival < 0 || c.Duration < 0 {
		return fmt.Errorf("online: negative arrival/duration in open-loop config")
	}
	if c.MaxNew <= 0 {
		return fmt.Errorf("online: max-new cap must be positive")
	}
	return c.validateServing()
}

// validateServing checks the knobs shared by both arrival sources.
func (c Config) validateServing() error {
	if c.MaxBatch <= 0 {
		return fmt.Errorf("online: max batch must be positive")
	}
	if c.ShedDepth < 0 {
		return fmt.Errorf("online: negative shed depth %d", c.ShedDepth)
	}
	if c.Upshift && !c.Downshift {
		return fmt.Errorf("online: upshift without downshift — there is no degradation to recover from")
	}
	if c.Chaos != nil {
		// The online simulator is single-stage; only stage-0 (and
		// stage-free KV) faults make sense.
		if err := c.Chaos.Validate(1); err != nil {
			return err
		}
	}
	if c.Retry.MaxAttempts != 0 {
		if err := c.Retry.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// retryPolicy resolves the effective retry policy.
func (c Config) retryPolicy() retry.Policy {
	if c.Retry.MaxAttempts == 0 {
		return retry.Default()
	}
	return c.Retry
}

// Stats summarizes a simulation (final for Run, a snapshot for Engine).
type Stats struct {
	Completed     int
	GeneratedTok  int
	Throughput    float64 // generated tokens per second of simulated time
	MeanLatency   float64 // request completion latency (admission wait + run)
	P95Latency    float64
	MeanBatch     float64 // average concurrent batch while serving
	PeakBatch     int     // largest continuous batch any decode step ran
	KVCapacityTok int     // paged-KV capacity in tokens
	Rejected      int     // arrivals the queue never admitted before sim end
	// Graceful-degradation accounting (zero without chaos/shedding).
	Shed       int // requests dropped by retry exhaustion or load shedding
	KVFailures int // transient KV-allocation failures observed
	KVRetries  int // retries spent recovering from them
	Downshifts int // bitwidth drops under sustained memory pressure
	Upshifts   int // bitwidth recovery steps once pressure eased
	FinalBits  int // weight precision at simulation end
	FinalKVTok int // KV capacity at simulation end (grows on downshift)
}

// Request is one unit of admitted work. Fields are engine-owned; hook
// consumers read them through the accessors and must not retain the
// pointer past OnFinish/OnShed.
type Request struct {
	id     int
	arrive float64
	prompt int
	maxNew int
	done   int // tokens generated so far
	start  float64
	finish float64
	shed   bool
}

// ID is the engine-assigned monotonic submission index.
func (r *Request) ID() int { return r.id }

// PromptTokens is the prompt length charged against the KV pool.
func (r *Request) PromptTokens() int { return r.prompt }

// MaxNew is this request's generation budget.
func (r *Request) MaxNew() int { return r.maxNew }

// Done is the number of tokens generated so far.
func (r *Request) Done() int { return r.done }

// ArriveSec is the simulated arrival time.
func (r *Request) ArriveSec() float64 { return r.arrive }

// StartSec is the simulated admission time (0 until admitted).
func (r *Request) StartSec() float64 { return r.start }

// FinishSec is the simulated completion time (negative when dropped,
// 0 while in flight).
func (r *Request) FinishSec() float64 { return r.finish }

// Shed reports whether the request was dropped instead of served.
func (r *Request) Shed() bool { return r.shed || r.finish < 0 }

// LatencySec is the simulated admission-wait + serve latency (valid
// after OnFinish).
func (r *Request) LatencySec() float64 { return r.finish - r.arrive }

// ErrShed is returned by Submit when the admission queue already sits at
// the ShedDepth watermark: the front door should answer 429 and tell the
// client when to retry.
var ErrShed = errors.New("online: admission queue at the shed watermark")

// Engine is the continuous-batching core shared by the closed-loop trace
// (Run) and the open-loop admission surface (Submit/StepOnce). It is not
// concurrency-safe: the caller serializes access (the HTTP gateway holds
// one scheduler lock around every engine call).
type Engine struct {
	cfg    Config
	policy retry.Policy

	bits     int
	weights  float64
	kvTokens int
	poolFor  func(bits int) (weights float64, kvTokens int)

	oo      *onlineObs
	kvChaos bool
	kvRng   *rand.Rand

	queue        []*Request
	qi           int
	running      []*Request
	finished     []*Request
	batchSamples []float64
	usedTok      int
	now          float64
	hot          int
	cool         int // consecutive low-occupancy steps toward an upshift
	floorBits    int // deepest precision reached (healing indicator)
	steps        int
	nextID       int
	st           Stats
}

// NewEngine builds an open-loop engine: requests are pushed through
// Submit and decode steps are driven through StepOnce. The configuration
// is checked with ValidateOpen (the Poisson trace knobs are unused).
func NewEngine(c Config) (*Engine, error) {
	if err := c.ValidateOpen(); err != nil {
		return nil, err
	}
	return newEngine(c)
}

// newEngine computes the memory split and shared state; callers have
// already validated the configuration for their arrival source.
func newEngine(c Config) (*Engine, error) {
	// Memory budget: weights at the current precision + working set; the
	// remainder is the paged KV pool (vLLM's core resource). Recomputed on
	// bitwidth downshift, where shrinking weights grows the pool.
	perTok := c.Model.KVBytesPerLayer(1, 1, profiler.KVBits) * float64(c.Model.Layers)
	poolFor := func(bits int) (weights float64, kvTokens int) {
		for i := 0; i < c.Model.Layers; i++ {
			weights += c.Model.LayerWeightBytes(bits)
		}
		weights += c.Model.EmbedBytes() + c.Model.LMHeadBytes()
		work := 0.08 * c.GPU.MemoryBytes() // activations + allocator slack
		return weights, int((c.GPU.MemoryBytes() - weights - work) / perTok)
	}
	e := &Engine{cfg: c, policy: c.retryPolicy(), bits: c.Bits, floorBits: c.Bits, poolFor: poolFor}
	e.weights, e.kvTokens = poolFor(e.bits)
	if e.kvTokens <= 0 {
		return nil, fmt.Errorf("online: %s at %d-bit leaves no KV memory on %s", c.Model.Name, c.Bits, c.GPU.Name)
	}
	e.oo = newOnlineObs(c.Obs, c.Bits, e.kvTokens)
	// Chaos: transient KV-allocation failures, retried with deterministic
	// jittered backoff that stalls simulated time.
	e.kvChaos = c.Chaos.HasKVFaults()
	if e.kvChaos {
		e.kvRng = rand.New(rand.NewSource(c.Seed ^ c.Chaos.Seed ^ 0x6b76616c6c6f63)) // "kvalloc"
	}
	e.st.KVCapacityTok = e.kvTokens
	return e, nil
}

// Submit pushes one request into the admission queue at the current
// simulated time — the open-loop arrival hook. It validates the request
// shape (front doors map these errors to 4xx), applies the ShedDepth
// watermark (ErrShed maps to 429), and returns the queued request. The
// request is admitted into the batch by a later StepOnce when paged-KV
// pages and a batch slot are available.
func (e *Engine) Submit(prompt, maxNew int) (*Request, error) {
	if prompt <= 0 {
		return nil, fmt.Errorf("online: prompt tokens must be positive, got %d", prompt)
	}
	if maxNew <= 0 {
		return nil, fmt.Errorf("online: max new tokens must be positive, got %d", maxNew)
	}
	if maxNew > e.cfg.MaxNew {
		return nil, fmt.Errorf("online: max new tokens %d above the configured cap %d", maxNew, e.cfg.MaxNew)
	}
	if limit := e.cfg.Model.MaxPosEmb - 1; prompt+maxNew > limit {
		return nil, fmt.Errorf("online: prompt %d + max new %d tokens exceed the %s context window (%d)",
			prompt, maxNew, e.cfg.Model.Name, limit)
	}
	if e.cfg.ShedDepth > 0 && e.waitingNow() >= e.cfg.ShedDepth {
		// Record the refusal on the same shed/reject families the
		// closed-loop watermark uses, so goodput accounting is one story.
		r := &Request{id: e.nextID, arrive: e.now, prompt: prompt, maxNew: maxNew, shed: true, finish: -1}
		e.nextID++
		e.queue = append(e.queue, r)
		e.st.Shed++
		e.oo.shed()
		if e.cfg.Hooks.OnShed != nil {
			e.cfg.Hooks.OnShed(r)
		}
		return r, ErrShed
	}
	r := &Request{id: e.nextID, arrive: e.now, prompt: prompt, maxNew: maxNew}
	e.nextID++
	e.queue = append(e.queue, r)
	return r, nil
}

// Busy reports whether any request is running or waiting for admission.
func (e *Engine) Busy() bool {
	if len(e.running) > 0 {
		return true
	}
	for i := e.qi; i < len(e.queue); i++ {
		if !e.queue[i].shed {
			return true
		}
	}
	return false
}

// Running is the current continuous-batch size.
func (e *Engine) Running() int { return len(e.running) }

// Waiting counts arrived-but-unadmitted (and unshed) requests.
func (e *Engine) Waiting() int { return e.waitingNow() }

// Now is the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Bits is the current weight precision (changes under Downshift).
func (e *Engine) Bits() int { return e.bits }

// KVCapacityTok is the current paged-KV pool size in tokens.
func (e *Engine) KVCapacityTok() int { return e.kvTokens }

// StepOnce admits whatever fits and runs one continuous-batching decode
// step, firing hooks along the way. It reports whether a decode step ran
// — false means the engine is idle (nothing running and nothing
// admissible; a head request that can never fit the pool has been
// rejected so the queue cannot wedge).
func (e *Engine) StepOnce() (bool, error) {
	if len(e.running) == 0 {
		e.shedExcess()
		e.admit()
		if len(e.running) == 0 {
			for e.qi < len(e.queue) && e.queue[e.qi].shed {
				e.qi++
			}
			if e.qi < len(e.queue) && e.queue[e.qi].arrive <= e.now {
				// KV pool cannot fit even one request: reject it.
				e.rejectHead(e.queue[e.qi])
				e.qi++
			}
			return false, nil
		}
	}
	if err := e.step(); err != nil {
		return false, err
	}
	return true, nil
}

// rejectHead drops a head-of-line request that can never be admitted.
func (e *Engine) rejectHead(r *Request) {
	r.finish = -1
	e.oo.reject()
	if e.cfg.Hooks.OnShed != nil {
		e.cfg.Hooks.OnShed(r)
	}
}

// kvNeed is the paged-KV reservation a request holds while running.
func (e *Engine) kvNeed(r *Request) int { return r.prompt + r.maxNew }

// kvAlloc reserves a request's pages, riding out transient chaos
// failures with bounded backoff (which stalls simulated time). False
// means the retries were exhausted and the request must be shed.
func (e *Engine) kvAlloc(r *Request, idx int) bool {
	if !e.kvChaos {
		return true
	}
	err := e.policy.Do(e.cfg.Seed+int64(idx), func(attempt int) error {
		p := e.cfg.Chaos.KVFailProb(e.now)
		if p > 0 && e.kvRng.Float64() < p {
			e.st.KVFailures++
			e.oo.kvFail(attempt)
			return fmt.Errorf("online: transient KV allocation failure")
		}
		if attempt > 1 {
			e.st.KVRetries++
		}
		return nil
	}, func(delaySec float64) { e.now += delaySec })
	return err == nil
}

func (e *Engine) shedReq(r *Request) {
	r.shed = true
	r.finish = -1
	e.st.Shed++
	e.oo.shed()
	if e.cfg.Hooks.OnShed != nil {
		e.cfg.Hooks.OnShed(r)
	}
}

// shedExcess drops arrived-but-waiting requests beyond the watermark
// (newest first go, FIFO order for the survivors).
func (e *Engine) shedExcess() {
	if e.cfg.ShedDepth <= 0 {
		return
	}
	waiting := 0
	for k := e.qi; k < len(e.queue) && e.queue[k].arrive <= e.now; k++ {
		if e.queue[k].shed {
			continue
		}
		waiting++
		if waiting > e.cfg.ShedDepth {
			e.shedReq(e.queue[k])
		}
	}
}

// admit pulls waiting requests into the continuous batch while KV pages
// and batch slots last, charging prefill on admission.
func (e *Engine) admit() {
	for e.qi < len(e.queue) && len(e.running) < e.cfg.MaxBatch {
		r := e.queue[e.qi]
		if r.shed {
			e.qi++
			continue
		}
		if r.arrive > e.now {
			break
		}
		if e.usedTok+e.kvNeed(r) > e.kvTokens {
			break // head-of-line blocking on KV pages
		}
		if !e.kvAlloc(r, e.qi) {
			// Retries exhausted under memory-pressure chaos: shed
			// rather than block the admission queue forever.
			e.shedReq(r)
			e.qi++
			continue
		}
		e.usedTok += e.kvNeed(r)
		e.oo.admit()
		r.start = e.now
		// Prefill cost charged on admission.
		pre, _ := profiler.LayerTime(e.cfg.GPU, e.cfg.Model, profiler.Workload{
			Batch: 1, Prompt: r.prompt, Prefill: true, Bits: e.bits,
		})
		e.now += pre * float64(e.cfg.Model.Layers)
		e.running = append(e.running, r)
		if e.cfg.Hooks.OnAdmit != nil {
			e.cfg.Hooks.OnAdmit(r)
		}
		e.qi++
	}
}

// waitingNow counts arrived-but-unadmitted (and unshed) requests.
func (e *Engine) waitingNow() int {
	waiting := 0
	for k := e.qi; k < len(e.queue) && e.queue[k].arrive <= e.now; k++ {
		if !e.queue[k].shed {
			waiting++
		}
	}
	return waiting
}

// Sustained-pressure window before a precision downshift fires.
const downshiftAfter = 25

// Sustained-calm window before a precision upshift fires: twice the
// downshift window, so recovery needs strictly more evidence than
// degradation and the two never oscillate on a borderline load.
const upshiftAfter = 2 * downshiftAfter

// step runs one continuous-batching decode step: every running request
// produces one token; completions release pages; sustained KV pressure
// may downshift the precision; then the queue is re-shed and re-admitted.
func (e *Engine) step() error {
	b := len(e.running)
	e.batchSamples = append(e.batchSamples, float64(b))
	if b > e.st.PeakBatch {
		e.st.PeakBatch = b
	}
	if e.oo != nil {
		e.oo.step(b, e.waitingNow(), e.usedTok, e.kvTokens)
	}
	ctx := 0
	for _, r := range e.running {
		ctx += r.prompt + r.done
	}
	stepW := profiler.Workload{Batch: b, Prompt: 512, Context: ctx / b, Bits: e.bits}
	lt, err := profiler.LayerTime(e.cfg.GPU, e.cfg.Model, stepW)
	if err != nil {
		return err
	}
	e.now += lt * float64(e.cfg.Model.Layers)
	keep := e.running[:0]
	for _, r := range e.running {
		r.done++
		if e.cfg.Hooks.OnToken != nil {
			e.cfg.Hooks.OnToken(r)
		}
		if r.done >= r.maxNew {
			r.finish = e.now
			e.usedTok -= e.kvNeed(r)
			e.oo.finish(r.finish - r.arrive)
			e.finished = append(e.finished, r)
			if e.cfg.Hooks.OnFinish != nil {
				e.cfg.Hooks.OnFinish(r)
			}
		} else {
			keep = append(keep, r)
		}
	}
	e.running = keep
	// Graceful degradation: sustained high KV occupancy with requests
	// waiting triggers one step down the precision ladder — smaller
	// weights, bigger pool, slower kernels (§7 trade-off inverted).
	if e.cfg.Downshift && e.bits > 3 {
		if e.usedTok*10 > e.kvTokens*9 && e.waitingNow() > 0 {
			e.hot++
		} else {
			e.hot = 0
		}
		if e.hot >= downshiftAfter {
			old := e.weights
			e.bits = downshiftStep(e.bits)
			e.st.Downshifts++
			e.weights, e.kvTokens = e.poolFor(e.bits)
			// Requantization stall: stream the old weights out and the
			// requantized copy back through HBM.
			e.now += (old + e.weights) / (e.cfg.GPU.BandwidthGBs * 1e9)
			e.oo.downshift(e.bits, e.kvTokens)
			e.hot = 0
			// A fresh drop resets recovery evidence and deepens the floor.
			e.cool = 0
			if e.bits < e.floorBits {
				e.floorBits = e.bits
			}
		}
	}
	// The inverse path: sustained calm — pool comfortably under the low
	// watermark, nobody waiting — earns one step back up the ladder. The
	// pool-shrink guard refuses a step the resident KV no longer fits
	// under; evidence resets either way, so a refused step is re-earned
	// only after another full dwell (by then completions may have freed
	// the pool).
	if e.cfg.Upshift && e.bits < e.cfg.Bits {
		if e.usedTok*10 < e.kvTokens*6 && e.waitingNow() == 0 {
			e.cool++
		} else {
			e.cool = 0
		}
		if e.cool >= upshiftAfter {
			next := upshiftStep(e.bits)
			if w, kv := e.poolFor(next); kv >= e.usedTok && kv > 0 {
				old := e.weights
				e.bits = next
				e.st.Upshifts++
				e.weights, e.kvTokens = w, kv
				// Same requantization stall as the downshift: the weight
				// copy streams through HBM in both directions.
				e.now += (old + e.weights) / (e.cfg.GPU.BandwidthGBs * 1e9)
				e.oo.upshift(e.bits, e.kvTokens)
			}
			e.cool = 0
		}
	}
	e.shedExcess()
	e.admit()
	e.steps++
	return nil
}

// Stats snapshots the engine's statistics. Derived aggregates
// (throughput, latency percentiles, mean batch) cover the work completed
// so far; in-flight requests are excluded until they finish.
func (e *Engine) Stats() Stats {
	st := e.st
	for _, r := range e.queue {
		if r.finish < 0 {
			st.Rejected++
		}
	}
	var latencies []float64
	for _, r := range e.finished {
		st.Completed++
		st.GeneratedTok += r.maxNew
		latencies = append(latencies, r.finish-r.arrive)
	}
	if e.now > 0 {
		st.Throughput = float64(st.GeneratedTok) / e.now
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		st.MeanLatency = sum / float64(len(latencies))
		st.P95Latency = latencies[int(math.Min(float64(len(latencies)-1), 0.95*float64(len(latencies))))]
	}
	if len(e.batchSamples) > 0 {
		for _, b := range e.batchSamples {
			st.MeanBatch += b
		}
		st.MeanBatch /= float64(len(e.batchSamples))
	}
	st.FinalBits = e.bits
	st.FinalKVTok = e.kvTokens
	return st
}

// Run simulates the configured closed-loop workload: a seeded Poisson
// arrival trace pushed through the same engine the open-loop admission
// surface drives.
func Run(c Config) (Stats, error) {
	if err := c.Validate(); err != nil {
		return Stats{}, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	e, err := newEngine(c)
	if err != nil {
		return Stats{}, err
	}

	// Arrivals.
	t := 0.0
	for t < c.Duration {
		t += rng.ExpFloat64() / c.Arrival
		p := workload.ShareGPTLengths(1, c.Model.MaxPosEmb-c.MaxNew-1, rng.Int63())[0]
		e.queue = append(e.queue, &Request{id: e.nextID, arrive: t, prompt: p, maxNew: c.MaxNew})
		e.nextID++
	}

	const maxSteps = 5_000_000
	for {
		// Jump to the next arrival when idle.
		if len(e.running) == 0 {
			for e.qi < len(e.queue) && e.queue[e.qi].shed {
				e.qi++
			}
			if e.qi >= len(e.queue) {
				break
			}
			if e.queue[e.qi].arrive > e.now {
				e.now = e.queue[e.qi].arrive
			}
			e.shedExcess()
			e.admit()
			if len(e.running) == 0 {
				for e.qi < len(e.queue) && e.queue[e.qi].shed {
					e.qi++
				}
				if e.qi < len(e.queue) && e.queue[e.qi].arrive <= e.now {
					// KV pool cannot fit even one request: reject it.
					e.rejectHead(e.queue[e.qi])
					e.qi++
				}
				continue
			}
		}
		if err := e.step(); err != nil {
			return Stats{}, err
		}
		if e.steps > maxSteps {
			return Stats{}, fmt.Errorf("online: runaway simulation after %d steps", e.steps)
		}
	}

	st := e.Stats()
	if st.Completed == 0 {
		return Stats{}, fmt.Errorf("online: nothing completed (arrival %.2f/s, kv %d tok)", c.Arrival, e.kvTokens)
	}
	return st, nil
}

// downshiftStep is the precision fallback ladder under memory pressure:
// 16→8→4→3, with 3 bits as the floor (the lowest precision the paper's
// quantizer supports).
func downshiftStep(bits int) int {
	switch bits {
	case 16:
		return 8
	case 8:
		return 4
	default:
		return 3
	}
}

// upshiftStep is the same ladder climbed back up: 3→4→8→16. Stepping
// from any point below the configured precision never overshoots it,
// because the configured precision sits on the same ladder.
func upshiftStep(bits int) int {
	switch bits {
	case 3:
		return 4
	case 4:
		return 8
	default:
		return 16
	}
}

// DegradationTier reports how many precision steps below the configured
// bitwidth the engine currently serves at (0 = full precision). Front
// doors surface it in health probes.
func (e *Engine) DegradationTier() int {
	tier := 0
	for b := e.cfg.Bits; b > e.bits; b = downshiftStep(b) {
		tier++
	}
	return tier
}

// Healing reports whether the engine has climbed at least one step back
// from its deepest downshift but has not yet reached full precision.
func (e *Engine) Healing() bool {
	return e.bits < e.cfg.Bits && e.bits > e.floorBits
}

// SweepPoint is one (bits, arrival) measurement.
type SweepPoint struct {
	Bits    int
	Arrival float64
	Stats   Stats
}

// Sweep runs the precision × load grid of the §7 trade-off experiment.
func Sweep(gpu hardware.GPU, cfg model.Config, bits []int, arrivals []float64, maxNew int, seed int64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, b := range bits {
		for _, a := range arrivals {
			st, err := Run(Config{
				GPU: gpu, Model: cfg, Bits: b, Arrival: a,
				Duration: 60, MaxNew: maxNew, MaxBatch: 64, Seed: seed,
			})
			if err != nil {
				// A precision that leaves no KV memory simply has no
				// point at this load.
				continue
			}
			out = append(out, SweepPoint{Bits: b, Arrival: a, Stats: st})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("online: empty sweep")
	}
	return out, nil
}
