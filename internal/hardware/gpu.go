// Package hardware models the heterogeneous GPU fleet of the paper's
// production cluster: per-device compute/memory characteristics, the
// efficiency of each quantized kernel on each architecture, interconnects,
// and the eleven evaluation clusters of Table 3.
//
// This is the substitution for real CUDA hardware (DESIGN.md §3): the
// planner consumes relative per-device, per-precision phase latencies and
// memory capacities, which this analytic catalog supplies. Published
// datasheet numbers anchor absolute scale; kernel-efficiency factors are
// calibrated to the qualitative facts the paper reports (T4 has fast INT8
// tensor cores, V100/P100 INT8 is slower than FP16, weight-only 3/4-bit
// kernels pay dequantization overhead on compute but save memory traffic).
package hardware

import (
	"fmt"
	"sort"
)

// GPU describes one device type.
type GPU struct {
	Name         string
	MemoryGB     float64 // usable HBM capacity
	FP16TFLOPS   float64 // peak dense FP16 throughput
	BandwidthGBs float64 // HBM bandwidth
	// Compute efficiency multiplier of quantized kernels relative to the
	// FP16 peak, keyed by bitwidth. <1 means the kernel sustains less
	// throughput than FP16 (dequant overhead, no tensor-core path);
	// >1 means a genuinely faster path (INT8 tensor cores).
	ComputeEff map[int]float64
	// MemEff is the efficiency of streaming quantized weights, relative to
	// peak bandwidth, keyed by bitwidth. Packing/unpacking of sub-byte
	// weights wastes some bandwidth.
	MemEff map[int]float64
	// LaunchOverheadUS is the fixed per-layer kernel launch + framework
	// overhead in microseconds.
	LaunchOverheadUS float64
	// HourlyUSD is the on-demand price used for cost-efficiency metrics —
	// the paper's motivation is that harvesting idle low-calibre GPUs
	// "substantially reduces the serving cost".
	HourlyUSD float64
}

// Bits are the candidate precisions of the paper: BITs = {3, 4, 8, 16}.
var Bits = []int{3, 4, 8, 16}

// MemoryBytes returns usable device memory in bytes.
func (g GPU) MemoryBytes() float64 { return g.MemoryGB * 1e9 }

// FLOPS returns sustained FLOP/s at the given weight bitwidth.
func (g GPU) FLOPS(bits int) float64 {
	return g.FP16TFLOPS * 1e12 * g.ComputeEff[bits]
}

// Bandwidth returns sustained bytes/s when streaming weights of the given
// bitwidth.
func (g GPU) Bandwidth(bits int) float64 {
	return g.BandwidthGBs * 1e9 * g.MemEff[bits]
}

// Catalog of the five device types used across the paper's clusters.
// FP16/bandwidth/memory from vendor datasheets; efficiency factors
// calibrated per paper §2.4–2.5 and Fig 3/5.
var (
	T4 = GPU{
		Name: "T4", MemoryGB: 15.0, FP16TFLOPS: 65, BandwidthGBs: 300,
		// Turing tensor cores: INT8 is a fast path (≈2x FP16 peak);
		// 3/4-bit weight-only kernels dequantize on the fly.
		ComputeEff:       map[int]float64{3: 0.52, 4: 0.60, 8: 1.55, 16: 1.0},
		MemEff:           map[int]float64{3: 0.72, 4: 0.80, 8: 0.92, 16: 1.0},
		LaunchOverheadUS: 18,
		HourlyUSD:        0.53,
	}
	P100 = GPU{
		Name: "P100", MemoryGB: 11.0, FP16TFLOPS: 18.7, BandwidthGBs: 732,
		// Pascal: no tensor cores at all; INT8 via dp4a is slower than the
		// native FP16 path, sub-byte kernels worse still.
		ComputeEff:       map[int]float64{3: 0.38, 4: 0.45, 8: 0.70, 16: 1.0},
		MemEff:           map[int]float64{3: 0.66, 4: 0.75, 8: 0.90, 16: 1.0},
		LaunchOverheadUS: 22,
		HourlyUSD:        0.73,
	}
	V100 = GPU{
		Name: "V100", MemoryGB: 30.0, FP16TFLOPS: 112, BandwidthGBs: 900,
		// Volta tensor cores are FP16-only: INT8 always loses to FP16
		// (paper §2.5), weight-only kernels pay dequant.
		ComputeEff:       map[int]float64{3: 0.42, 4: 0.50, 8: 0.78, 16: 1.0},
		MemEff:           map[int]float64{3: 0.70, 4: 0.78, 8: 0.91, 16: 1.0},
		LaunchOverheadUS: 15,
		HourlyUSD:        2.48,
	}
	A100 = GPU{
		Name: "A100-40G", MemoryGB: 39.0, FP16TFLOPS: 312, BandwidthGBs: 1555,
		// Ampere: INT8 tensor cores ≈2x FP16 peak, but the bitsandbytes
		// decomposition kernel the paper uses erodes that to ≈parity.
		ComputeEff:       map[int]float64{3: 0.48, 4: 0.55, 8: 1.05, 16: 1.0},
		MemEff:           map[int]float64{3: 0.72, 4: 0.80, 8: 0.93, 16: 1.0},
		LaunchOverheadUS: 12,
		HourlyUSD:        3.67,
	}
	A800 = GPU{
		Name: "A800-80G", MemoryGB: 79.0, FP16TFLOPS: 312, BandwidthGBs: 2039,
		ComputeEff:       map[int]float64{3: 0.48, 4: 0.55, 8: 1.05, 16: 1.0},
		MemEff:           map[int]float64{3: 0.72, 4: 0.80, 8: 0.93, 16: 1.0},
		LaunchOverheadUS: 12,
		HourlyUSD:        4.10,
	}
)

var gpuCatalog = map[string]GPU{
	"T4": T4, "P100": P100, "V100": V100, "A100-40G": A100, "A800-80G": A800,
}

// GPUByName looks up a device type.
func GPUByName(name string) (GPU, error) {
	g, ok := gpuCatalog[name]
	if !ok {
		names := make([]string, 0, len(gpuCatalog))
		for n := range gpuCatalog {
			names = append(names, n)
		}
		sort.Strings(names)
		return GPU{}, fmt.Errorf("hardware: unknown GPU %q (have %v)", name, names)
	}
	return g, nil
}

// GPUNames lists catalog device names, sorted.
func GPUNames() []string {
	names := make([]string, 0, len(gpuCatalog))
	for n := range gpuCatalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Link describes the interconnect between two adjacent pipeline stages.
type Link struct {
	BandwidthGBs float64 // unidirectional bandwidth
	LatencyUS    float64 // per-message latency
}

// Standard interconnects in the paper's clusters.
var (
	NVLink     = Link{BandwidthGBs: 150, LatencyUS: 5}
	Eth800Gbps = Link{BandwidthGBs: 100, LatencyUS: 20}
	Eth100Gbps = Link{BandwidthGBs: 12.5, LatencyUS: 30}
)

// TransferTime returns seconds to move `bytes` across the link.
func (l Link) TransferTime(bytes float64) float64 {
	return l.LatencyUS*1e-6 + bytes/(l.BandwidthGBs*1e9)
}
