package hardware

import (
	"testing"
)

func TestCatalogComplete(t *testing.T) {
	for _, name := range []string{"T4", "P100", "V100", "A100-40G", "A800-80G"} {
		g, err := GPUByName(name)
		if err != nil {
			t.Fatalf("GPUByName(%q): %v", name, err)
		}
		for _, b := range Bits {
			if g.ComputeEff[b] <= 0 || g.MemEff[b] <= 0 {
				t.Errorf("%s: missing efficiency for %d-bit", name, b)
			}
		}
		if g.MemoryBytes() <= 0 || g.FLOPS(16) <= 0 || g.Bandwidth(16) <= 0 {
			t.Errorf("%s: nonpositive capability", name)
		}
	}
	if _, err := GPUByName("H100"); err == nil {
		t.Error("expected error for unknown GPU")
	}
}

func TestT4FastINT8VsV100SlowINT8(t *testing.T) {
	// Paper §2.5: "T4 supports fast INT8 due to its tensor core, making the
	// execution time of the 8-bit layer comparable to FP16, while V100's
	// INT8 implementation always incurs longer latency than FP16."
	if T4.ComputeEff[8] < 1.0 {
		t.Errorf("T4 INT8 compute eff %.2f should be >= FP16", T4.ComputeEff[8])
	}
	if V100.ComputeEff[8] >= 1.0 {
		t.Errorf("V100 INT8 compute eff %.2f should be < FP16", V100.ComputeEff[8])
	}
	if P100.ComputeEff[8] >= 1.0 {
		t.Errorf("P100 INT8 compute eff %.2f should be < FP16", P100.ComputeEff[8])
	}
}

func TestSubByteKernelsPayComputeButSaveMemory(t *testing.T) {
	for _, g := range []GPU{T4, P100, V100, A100, A800} {
		for _, b := range []int{3, 4} {
			if g.ComputeEff[b] >= 1.0 {
				t.Errorf("%s: %d-bit compute eff %.2f should pay dequant overhead", g.Name, b, g.ComputeEff[b])
			}
		}
		// Effective bytes moved per weight still shrink with bitwidth:
		// (bits/8)/MemEff must be decreasing.
		prev := 1e18
		for _, b := range []int{16, 8, 4, 3} {
			cost := float64(b) / 8 / g.MemEff[b]
			if cost >= prev {
				t.Errorf("%s: %d-bit weight streaming not cheaper than next precision up", g.Name, b)
			}
			prev = cost
		}
	}
}

func TestTable3Clusters(t *testing.T) {
	wantDevices := map[int]int{1: 1, 2: 1, 3: 4, 4: 4, 5: 6, 6: 4, 7: 8, 8: 6, 9: 4, 10: 4, 11: 4}
	wantHetero := map[int]bool{1: false, 2: false, 3: true, 4: true, 5: true, 6: true, 7: true, 8: true, 9: false, 10: false, 11: false}
	for id := 1; id <= 11; id++ {
		c, err := ClusterByID(id)
		if err != nil {
			t.Fatalf("cluster %d: %v", id, err)
		}
		if c.NumDevices() != wantDevices[id] {
			t.Errorf("cluster %d: %d devices, want %d", id, c.NumDevices(), wantDevices[id])
		}
		if c.Heterogeneous() != wantHetero[id] {
			t.Errorf("cluster %d: heterogeneous=%v, want %v", id, c.Heterogeneous(), wantHetero[id])
		}
	}
	if _, err := ClusterByID(12); err == nil {
		t.Error("expected error for cluster 12")
	}
}

func TestModelFitsClusterScale(t *testing.T) {
	// Table 3 pairs each cluster with a model whose FP16 weights are
	// comparable to total cluster memory — meaning FP16 generally does NOT
	// fit with KV cache, which is what motivates quantization.
	paramsB := map[string]float64{"opt-13b": 13, "opt-30b": 30, "opt-66b": 66, "bloom-176b": 176}
	for id := 1; id <= 11; id++ {
		c, _ := ClusterByID(id)
		weights := paramsB[c.ModelName] * 1e9 * 2 // FP16 bytes
		mem := c.TotalMemoryBytes()
		if weights < 0.4*mem || weights > 3.0*mem {
			t.Errorf("cluster %d: model %s weights %.0fGB vs memory %.0fGB out of expected band",
				id, c.ModelName, weights/1e9, mem/1e9)
		}
	}
}

func TestLinkBetween(t *testing.T) {
	c, _ := ClusterByID(3) // 3xT4 (node 0) + 1xV100 (node 1)
	same := c.LinkBetween(c.Devices[0], c.Devices[1])
	cross := c.LinkBetween(c.Devices[0], c.Devices[3])
	if same != NVLink {
		t.Errorf("intra-node link should be NVLink, got %+v", same)
	}
	if cross != Eth800Gbps {
		t.Errorf("inter-node link should be 800Gbps Ethernet, got %+v", cross)
	}
	if NVLink.TransferTime(1e9) >= Eth100Gbps.TransferTime(1e9) {
		t.Error("NVLink should be faster than 100Gbps Ethernet for 1GB")
	}
}

func TestNewCluster(t *testing.T) {
	c, err := NewCluster([]string{"T4", "V100"}, []int{3, 1}, Eth800Gbps, "opt-30b")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDevices() != 4 || !c.Heterogeneous() {
		t.Errorf("bad custom cluster: %+v", c)
	}
	if _, err := NewCluster([]string{"T4"}, []int{1, 2}, NVLink, "x"); err == nil {
		t.Error("expected mismatch error")
	}
	if _, err := NewCluster([]string{"Z9"}, []int{1}, NVLink, "x"); err == nil {
		t.Error("expected unknown GPU error")
	}
	if _, err := NewCluster([]string{"T4"}, []int{0}, NVLink, "x"); err == nil {
		t.Error("expected nonpositive count error")
	}
}
