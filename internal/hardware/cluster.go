package hardware

import "fmt"

// Device is one physical GPU instance inside a cluster, with its node
// placement (GPUs on the same node talk over NVLink; nodes talk over
// Ethernet).
type Device struct {
	ID   int
	GPU  GPU
	Node int
}

// Cluster is a set of devices plus the inter-node link type.
type Cluster struct {
	Name      string
	Devices   []Device
	InterNode Link
	// ModelName is the model Table 3 assigns to this cluster.
	ModelName string
}

// NumDevices returns the device count.
func (c Cluster) NumDevices() int { return len(c.Devices) }

// TotalMemoryBytes sums usable memory across devices.
func (c Cluster) TotalMemoryBytes() float64 {
	var t float64
	for _, d := range c.Devices {
		t += d.GPU.MemoryBytes()
	}
	return t
}

// HourlyUSD sums the cluster's on-demand price.
func (c Cluster) HourlyUSD() float64 {
	var t float64
	for _, d := range c.Devices {
		t += d.GPU.HourlyUSD
	}
	return t
}

// CostPerMTok converts a measured throughput (generated tokens/second) to
// dollars per million generated tokens on this cluster — the serving-cost
// metric behind the paper's motivation.
func (c Cluster) CostPerMTok(tokensPerSec float64) float64 {
	if tokensPerSec <= 0 {
		return 0
	}
	perHour := tokensPerSec * 3600
	return c.HourlyUSD() / perHour * 1e6
}

// LinkBetween returns the link connecting two devices: NVLink within a
// node, the cluster's inter-node Ethernet across nodes.
func (c Cluster) LinkBetween(a, b Device) Link {
	if a.Node == b.Node {
		return NVLink
	}
	return c.InterNode
}

// Heterogeneous reports whether the cluster mixes GPU types.
func (c Cluster) Heterogeneous() bool {
	for _, d := range c.Devices[1:] {
		if d.GPU.Name != c.Devices[0].GPU.Name {
			return true
		}
	}
	return false
}

// mk builds a cluster from (gpu, count) pairs, assigning one node per GPU
// type as in the paper ("GPUs of the same type are located on the same
// node, intra-connected with NV-LINK").
func mk(name, modelName string, inter Link, groups ...struct {
	GPU   GPU
	Count int
}) Cluster {
	c := Cluster{Name: name, InterNode: inter, ModelName: modelName}
	id := 0
	for node, g := range groups {
		for i := 0; i < g.Count; i++ {
			c.Devices = append(c.Devices, Device{ID: id, GPU: g.GPU, Node: node})
			id++
		}
	}
	return c
}

func grp(g GPU, n int) struct {
	GPU   GPU
	Count int
} {
	return struct {
		GPU   GPU
		Count int
	}{g, n}
}

// Clusters reproduces Table 3. Index 1..11 (0 unused).
var Clusters = map[int]Cluster{
	1:  mk("cluster-1", "opt-13b", NVLink, grp(V100, 1)),
	2:  mk("cluster-2", "opt-13b", NVLink, grp(A100, 1)),
	3:  mk("cluster-3", "opt-30b", Eth800Gbps, grp(T4, 3), grp(V100, 1)),
	4:  mk("cluster-4", "opt-30b", Eth100Gbps, grp(P100, 3), grp(V100, 1)),
	5:  mk("cluster-5", "opt-66b", Eth800Gbps, grp(T4, 4), grp(V100, 2)),
	6:  mk("cluster-6", "opt-66b", Eth100Gbps, grp(V100, 2), grp(A100, 2)),
	7:  mk("cluster-7", "bloom-176b", Eth100Gbps, grp(V100, 4), grp(A100, 4)),
	8:  mk("cluster-8", "bloom-176b", Eth800Gbps, grp(V100, 4), grp(A800, 2)),
	9:  mk("cluster-9", "opt-30b", NVLink, grp(T4, 4)),
	10: mk("cluster-10", "opt-66b", NVLink, grp(V100, 4)),
	11: mk("cluster-11", "bloom-176b", Eth800Gbps, grp(A800, 4)),
}

// ClusterByID returns one of the Table 3 clusters.
func ClusterByID(id int) (Cluster, error) {
	c, ok := Clusters[id]
	if !ok {
		return Cluster{}, fmt.Errorf("hardware: unknown cluster %d (have 1..11)", id)
	}
	return c, nil
}

// NewCluster assembles an ad-hoc cluster from device type names and counts,
// mirroring the paper's CLI (--device_names, --device_numbers). Each device
// type occupies its own node.
func NewCluster(names []string, counts []int, inter Link, modelName string) (Cluster, error) {
	if len(names) != len(counts) {
		return Cluster{}, fmt.Errorf("hardware: %d device names but %d counts", len(names), len(counts))
	}
	c := Cluster{Name: "custom", InterNode: inter, ModelName: modelName}
	id := 0
	for node, n := range names {
		g, err := GPUByName(n)
		if err != nil {
			return Cluster{}, err
		}
		if counts[node] <= 0 {
			return Cluster{}, fmt.Errorf("hardware: device count for %s must be positive, got %d", n, counts[node])
		}
		for i := 0; i < counts[node]; i++ {
			c.Devices = append(c.Devices, Device{ID: id, GPU: g, Node: node})
			id++
		}
	}
	return c, nil
}
