// Package ilp solves small mixed-integer linear programs with LP-based
// branch and bound — the substitute for the Gurobi solver the paper uses
// for its bitwidth-assignment / layer-partition ILP (§4.3).
//
// The search is depth-first with best-incumbent pruning, most-fractional
// branching, and an optional wall-clock limit mirroring the paper's
// "60-second time limit for the ILP solver" (§6.7). Variable bounds are
// expressed as extra ≤ rows in the node LPs, which keeps internal/lp
// untouched.
package ilp

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/lp"
)

// Problem is a MILP: min cᵀx subject to inequality/equality constraints,
// x ≥ 0, per-variable upper bounds, and integrality on selected variables.
type Problem struct {
	C       []float64
	Aub     [][]float64
	Bub     []float64
	Aeq     [][]float64
	Beq     []float64
	Integer []bool    // len n; true = integral variable
	Upper   []float64 // len n; +Inf allowed (binary vars: 1)
}

// Result of a solve.
type Result struct {
	Status   lp.Status
	X        []float64
	Obj      float64
	Nodes    int  // branch-and-bound nodes explored
	Pivots   int  // simplex pivots summed across node relaxations
	TimedOut bool // hit the time limit; result is best incumbent if any
}

// ErrNoIncumbent is returned when the time limit expires before any integer
// feasible solution is found.
var ErrNoIncumbent = errors.New("ilp: time limit hit with no incumbent")

const intTol = 1e-6

// Validate checks dimensions.
func (p *Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return errors.New("ilp: empty objective")
	}
	if len(p.Integer) != n {
		return fmt.Errorf("ilp: Integer length %d != %d", len(p.Integer), n)
	}
	if len(p.Upper) != n {
		return fmt.Errorf("ilp: Upper length %d != %d", len(p.Upper), n)
	}
	base := lp.Problem{C: p.C, Aub: p.Aub, Bub: p.Bub, Aeq: p.Aeq, Beq: p.Beq}
	return base.Validate()
}

type node struct {
	lower []float64
	upper []float64
}

// Solve runs branch and bound. A zero timeLimit means no limit.
//
// Solve is safe for concurrent use: the problem is only read and the node
// stack, incumbent, and every relaxation LP are confined to the call. The
// parallel assigner search runs one Solve per order-worker concurrently.
func Solve(p *Problem, timeLimit time.Duration) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	n := len(p.C)
	deadline := time.Time{}
	if timeLimit > 0 {
		deadline = time.Now().Add(timeLimit) //llmpq:allow(simwallclock): the time limit is a real compute budget for branch-and-bound, not sim time
	}

	root := node{lower: make([]float64, n), upper: append([]float64(nil), p.Upper...)}
	stack := []node{root}
	best := Result{Status: lp.Infeasible, Obj: math.Inf(1)}
	nodes := 0
	pivots := 0
	timedOut := false

	for len(stack) > 0 {
		//llmpq:allow(simwallclock): deadline check against the caller's real compute budget; timeout status is reported, never byte-diffed
		if !deadline.IsZero() && time.Now().After(deadline) {
			timedOut = true
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		rel, err := solveRelaxation(p, nd)
		if err != nil {
			return Result{}, err
		}
		pivots += rel.Pivots
		if rel.Status != lp.Optimal {
			continue // infeasible or unbounded subtree (unbounded cannot improve with bounds tightening here)
		}
		if rel.Obj >= best.Obj-1e-9 {
			continue // pruned by bound
		}
		// Find most fractional integer variable.
		branch := -1
		worst := intTol
		for j := 0; j < n; j++ {
			if !p.Integer[j] {
				continue
			}
			f := math.Abs(rel.X[j] - math.Round(rel.X[j]))
			if f > worst {
				worst = f
				branch = j
			}
		}
		if branch < 0 {
			// Integer feasible: round off the tolerance noise.
			x := append([]float64(nil), rel.X...)
			for j := 0; j < n; j++ {
				if p.Integer[j] {
					x[j] = math.Round(x[j])
				}
			}
			obj := 0.0
			for j := range p.C {
				obj += p.C[j] * x[j]
			}
			if obj < best.Obj {
				best = Result{Status: lp.Optimal, X: x, Obj: obj}
			}
			continue
		}
		v := rel.X[branch]
		down := node{lower: append([]float64(nil), nd.lower...), upper: append([]float64(nil), nd.upper...)}
		down.upper[branch] = math.Floor(v)
		up := node{lower: append([]float64(nil), nd.lower...), upper: append([]float64(nil), nd.upper...)}
		up.lower[branch] = math.Ceil(v)
		// Push the branch nearer the relaxation value last so DFS explores
		// it first (better incumbents earlier).
		if v-math.Floor(v) < 0.5 {
			stack = append(stack, up, down)
		} else {
			stack = append(stack, down, up)
		}
	}

	best.Nodes = nodes
	best.Pivots = pivots
	best.TimedOut = timedOut
	if timedOut && best.Status != lp.Optimal {
		return best, ErrNoIncumbent
	}
	return best, nil
}

func solveRelaxation(p *Problem, nd node) (lp.Result, error) {
	n := len(p.C)
	sub := lp.Problem{C: p.C, Aeq: p.Aeq, Beq: p.Beq}
	sub.Aub = append(sub.Aub, p.Aub...)
	sub.Bub = append(sub.Bub, p.Bub...)
	for j := 0; j < n; j++ {
		if !math.IsInf(nd.upper[j], 1) {
			row := make([]float64, n)
			row[j] = 1
			sub.Aub = append(sub.Aub, row)
			sub.Bub = append(sub.Bub, nd.upper[j])
		}
		if nd.lower[j] > 0 {
			row := make([]float64, n)
			row[j] = -1
			sub.Aub = append(sub.Aub, row)
			sub.Bub = append(sub.Bub, -nd.lower[j])
		}
	}
	return lp.Solve(&sub)
}

// Binary returns an n-length Integer mask (all true) and Upper (all 1),
// convenience for pure 0/1 programs.
func Binary(n int) ([]bool, []float64) {
	ints := make([]bool, n)
	ups := make([]float64, n)
	for i := range ints {
		ints[i] = true
		ups[i] = 1
	}
	return ints, ups
}
