package ilp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// max 10a+6b+4c s.t. a+b+c≤2 (binary) → min -(…); best {a,b} = 16.
	ints, ups := Binary(3)
	p := &Problem{
		C:       []float64{-10, -6, -4},
		Aub:     [][]float64{{1, 1, 1}},
		Bub:     []float64{2},
		Integer: ints,
		Upper:   ups,
	}
	r, err := Solve(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != lp.Optimal || math.Abs(r.Obj+16) > 1e-6 {
		t.Fatalf("got %v obj=%.4f x=%v, want -16", r.Status, r.Obj, r.X)
	}
	if r.X[0] != 1 || r.X[1] != 1 || r.X[2] != 0 {
		t.Errorf("wrong selection: %v", r.X)
	}
}

func TestIntegerRounding(t *testing.T) {
	// LP relax of max x s.t. 2x ≤ 3 is 1.5; integer optimum 1.
	p := &Problem{
		C:       []float64{-1},
		Aub:     [][]float64{{2}},
		Bub:     []float64{3},
		Integer: []bool{true},
		Upper:   []float64{math.Inf(1)},
	}
	r, err := Solve(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Obj != -1 || r.X[0] != 1 {
		t.Fatalf("got obj=%.4f x=%v, want x=1", r.Obj, r.X)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min -x - 2y, x integer ≤ 2.5 bound via constraint x ≤ 2.5, y ≤ 1.7
	// continuous. Optimum: x=2, y=1.7 → -5.4.
	p := &Problem{
		C:       []float64{-1, -2},
		Aub:     [][]float64{{1, 0}, {0, 1}},
		Bub:     []float64{2.5, 1.7},
		Integer: []bool{true, false},
		Upper:   []float64{math.Inf(1), math.Inf(1)},
	}
	r, err := Solve(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Obj+5.4) > 1e-6 || r.X[0] != 2 {
		t.Fatalf("got obj=%.4f x=%v, want x=2,y=1.7", r.Obj, r.X)
	}
}

func TestInfeasibleMILP(t *testing.T) {
	ints, ups := Binary(2)
	// a+b = 3 with binaries is infeasible.
	p := &Problem{
		C:       []float64{1, 1},
		Aeq:     [][]float64{{1, 1}},
		Beq:     []float64{3},
		Integer: ints,
		Upper:   ups,
	}
	r, err := Solve(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != lp.Infeasible {
		t.Fatalf("got %v, want infeasible", r.Status)
	}
}

func TestEqualityPartitionLike(t *testing.T) {
	// Miniature of the paper's assignment structure: 3 layers × 2 bits,
	// exactly one bit per layer, memory cap picks the cheap bit for two
	// layers. Variables z[l][b], b∈{heavy(q=4 mem, gain0), light(1 mem,
	// penalty w_l)}; minimize Σ w_l·light_l s.t. Σ mem ≤ 6.
	// Optimum keeps the most sensitive layer heavy.
	w := []float64{5, 1, 2} // sensitivity penalty if quantized light
	nv := 6                 // z[l][0]=heavy, z[l][1]=light
	c := []float64{0, w[0], 0, w[1], 0, w[2]}
	var aeq [][]float64
	var beq []float64
	for l := 0; l < 3; l++ {
		row := make([]float64, nv)
		row[2*l] = 1
		row[2*l+1] = 1
		aeq = append(aeq, row)
		beq = append(beq, 1)
	}
	mem := make([]float64, nv)
	for l := 0; l < 3; l++ {
		mem[2*l] = 4
		mem[2*l+1] = 1
	}
	ints, ups := Binary(nv)
	p := &Problem{C: c, Aub: [][]float64{mem}, Bub: []float64{6}, Aeq: aeq, Beq: beq, Integer: ints, Upper: ups}
	r, err := Solve(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Only one layer can stay heavy (4+1+1=6); it should be layer 0.
	if r.X[0] != 1 || r.X[3] != 1 || r.X[5] != 1 {
		t.Fatalf("wrong assignment x=%v obj=%.2f", r.X, r.Obj)
	}
	if math.Abs(r.Obj-3) > 1e-6 {
		t.Fatalf("obj=%.4f want 3", r.Obj)
	}
}

func TestBranchAndBoundMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		n := 8
		c := make([]float64, n)
		wts := make([]float64, n)
		for j := 0; j < n; j++ {
			c[j] = -(rng.Float64()*9 + 1) // maximize value
			wts[j] = rng.Float64()*4 + 1
		}
		cap := 10.0
		ints, ups := Binary(n)
		p := &Problem{C: c, Aub: [][]float64{wts}, Bub: []float64{cap}, Integer: ints, Upper: ups}
		r, err := Solve(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force 2^8.
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			var wsum, v float64
			for j := 0; j < n; j++ {
				if mask>>j&1 == 1 {
					wsum += wts[j]
					v += c[j]
				}
			}
			if wsum <= cap && v < best {
				best = v
			}
		}
		if math.Abs(r.Obj-best) > 1e-6 {
			t.Errorf("trial %d: B&B obj %.6f != brute force %.6f", trial, r.Obj, best)
		}
	}
}

func TestTimeLimitReturnsIncumbent(t *testing.T) {
	// A 24-var knapsack with an absurdly short limit: either it finishes
	// (fine) or returns a feasible incumbent/ErrNoIncumbent.
	rng := rand.New(rand.NewSource(3))
	n := 24
	c := make([]float64, n)
	wts := make([]float64, n)
	for j := 0; j < n; j++ {
		c[j] = -rng.Float64()
		wts[j] = rng.Float64() + 0.1
	}
	ints, ups := Binary(n)
	p := &Problem{C: c, Aub: [][]float64{wts}, Bub: []float64{3}, Integer: ints, Upper: ups}
	r, err := Solve(p, 2*time.Millisecond)
	if err != nil && err != ErrNoIncumbent {
		t.Fatal(err)
	}
	if err == nil && r.Status == lp.Optimal {
		// Incumbent must be feasible.
		var w float64
		for j := 0; j < n; j++ {
			w += wts[j] * r.X[j]
		}
		if w > 3+1e-6 {
			t.Errorf("incumbent violates knapsack: %.4f", w)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(&Problem{}, 0); err == nil {
		t.Error("expected empty error")
	}
	if _, err := Solve(&Problem{C: []float64{1}, Integer: []bool{true, false}, Upper: []float64{1}}, 0); err == nil {
		t.Error("expected Integer length error")
	}
}

func TestNodesCounted(t *testing.T) {
	ints, ups := Binary(4)
	p := &Problem{
		C:       []float64{-3, -5, -4, -1},
		Aub:     [][]float64{{2, 3, 2, 1}},
		Bub:     []float64{5},
		Integer: ints,
		Upper:   ups,
	}
	r, err := Solve(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes < 1 {
		t.Errorf("expected at least one node, got %d", r.Nodes)
	}
}

// TestSolveConcurrent runs the knapsack MILP from many goroutines sharing
// one Problem; under -race it proves the call-confined branch-and-bound
// contract that concurrent order-workers in the assigner rely on.
func TestSolveConcurrent(t *testing.T) {
	ints, ups := Binary(3)
	p := &Problem{
		C:       []float64{-10, -6, -4},
		Aub:     [][]float64{{1, 1, 1}},
		Bub:     []float64{2},
		Integer: ints,
		Upper:   ups,
	}
	const workers = 8
	results := make([]Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 25; rep++ {
				results[w], errs[w] = Solve(p, 0)
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		r := results[w]
		if r.Status != lp.Optimal || math.Abs(r.Obj+16) > 1e-9 {
			t.Fatalf("worker %d: got %v obj=%.9f, want optimal -16", w, r.Status, r.Obj)
		}
		if r.X[0] != 1 || r.X[1] != 1 || r.X[2] != 0 {
			t.Errorf("worker %d: selection %v, want [1 1 0]", w, r.X)
		}
		if r.Nodes != results[0].Nodes || r.Pivots != results[0].Pivots {
			t.Errorf("worker %d: nodes/pivots %d/%d differ from worker 0's %d/%d", w, r.Nodes, r.Pivots, results[0].Nodes, results[0].Pivots)
		}
	}
}
