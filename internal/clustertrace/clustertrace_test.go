package clustertrace

import (
	"math"
	"testing"
)

func TestFleetSharesSumToOne(t *testing.T) {
	var sum float64
	for _, s := range FleetShare {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fleet shares sum to %.4f", sum)
	}
}

func TestFig1Shape(t *testing.T) {
	rows, err := Summarize(1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]TypeSummary{}
	for _, r := range rows {
		byName[r.GPUType] = r
		if r.MeanUtil < 0 || r.MeanUtil > 1 {
			t.Errorf("%s utilization %.3f", r.GPUType, r.MeanUtil)
		}
	}
	// Fig 1a: low-calibre inference GPUs dominate the fleet.
	if byName["T4"].Share <= byName["A100-40G"].Share {
		t.Error("T4 share should dwarf A100 share")
	}
	// Fig 1b: A100 runs far hotter than T4/P100.
	if byName["A100-40G"].MeanUtil <= byName["T4"].MeanUtil {
		t.Error("A100 should be far busier than T4")
	}
	if byName["A100-40G"].MeanUtil <= byName["P100"].MeanUtil {
		t.Error("A100 should be far busier than P100")
	}
	// The harvestable idle capacity is dominated by the low-calibre types.
	if byName["T4"].IdleShare <= byName["A100-40G"].IdleShare {
		t.Error("idle capacity should concentrate in T4s")
	}
}

func TestMonthlyUtilization(t *testing.T) {
	series, err := MonthlyUtilization("V100", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 30 {
		t.Fatalf("%d days", len(series))
	}
	again, _ := MonthlyUtilization("V100", 2)
	for i := range series {
		if series[i] != again[i] {
			t.Fatal("not reproducible")
		}
		if series[i].Util < 0 || series[i].Util > 1 {
			t.Fatalf("day %d util %.3f", i, series[i].Util)
		}
	}
	if _, err := MonthlyUtilization("H100", 1); err == nil {
		t.Error("expected unknown type error")
	}
}
