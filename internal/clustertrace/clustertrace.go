// Package clustertrace synthesizes the production-cluster fleet statistics
// behind Fig 1: the share of each GPU type in the fleet and each type's
// average utilization over a month. High-calibre training GPUs (A100,
// A800) are scarce and busy; the numerous inference GPUs (T4, P100) sit
// largely idle — the capacity LLM-PQ proposes to harvest.
package clustertrace

import (
	"fmt"
	"math/rand"
)

// FleetShare is the deployed proportion of each GPU type (Fig 1a shape).
var FleetShare = map[string]float64{
	"A100-40G": 0.07,
	"A800-80G": 0.05,
	"V100":     0.16,
	"P100":     0.18,
	"T4":       0.54,
}

// meanUtil is the monthly average utilization per type (Fig 1b shape).
var meanUtil = map[string]float64{
	"A100-40G": 0.86,
	"A800-80G": 0.81,
	"V100":     0.48,
	"P100":     0.27,
	"T4":       0.33,
}

// DayUtil is one day's average utilization for one GPU type.
type DayUtil struct {
	Day  int
	Util float64
}

// MonthlyUtilization generates a 30-day utilization series for a GPU type:
// the type's mean with weekly seasonality and reproducible noise.
func MonthlyUtilization(gpuType string, seed int64) ([]DayUtil, error) {
	mu, ok := meanUtil[gpuType]
	if !ok {
		return nil, fmt.Errorf("clustertrace: unknown GPU type %q", gpuType)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]DayUtil, 30)
	for d := 0; d < 30; d++ {
		season := 1.0
		if d%7 >= 5 { // weekends dip
			season = 0.85
		}
		u := mu*season + rng.NormFloat64()*0.04
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		out[d] = DayUtil{Day: d + 1, Util: u}
	}
	return out, nil
}

// TypeSummary is one row of the Fig 1 reproduction.
type TypeSummary struct {
	GPUType   string
	Share     float64
	MeanUtil  float64
	IdleShare float64 // share of fleet capacity this type leaves idle
}

// Summarize produces the per-type fleet summary for a seed.
func Summarize(seed int64) ([]TypeSummary, error) {
	order := []string{"A100-40G", "A800-80G", "V100", "P100", "T4"}
	var out []TypeSummary
	for i, name := range order {
		series, err := MonthlyUtilization(name, seed+int64(i))
		if err != nil {
			return nil, err
		}
		var sum float64
		for _, d := range series {
			sum += d.Util
		}
		mu := sum / float64(len(series))
		out = append(out, TypeSummary{
			GPUType:   name,
			Share:     FleetShare[name],
			MeanUtil:  mu,
			IdleShare: FleetShare[name] * (1 - mu),
		})
	}
	return out, nil
}
