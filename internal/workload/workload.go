// Package workload generates the paper's serving workloads: offline
// batches with padded prompts and fixed generation length (§2.3, §6.1),
// and the ShareGPT-style prompt-length distribution used to motivate
// phase-aware planning (§2.1: "the prompt length varies substantially").
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Offline is a deterministic offline serving task (the paper's target
// setting: prompt length and generation number known ahead of time).
type Offline struct {
	Batch    int
	Prompt   int // padded prompt length
	Generate int // tokens generated per request
}

// NewOffline validates and builds an offline workload.
func NewOffline(batch, prompt, generate int) (Offline, error) {
	if batch <= 0 || prompt <= 0 || generate <= 0 {
		return Offline{}, fmt.Errorf("workload: all fields must be positive (%d,%d,%d)", batch, prompt, generate)
	}
	return Offline{Batch: batch, Prompt: prompt, Generate: generate}, nil
}

// TotalTokens returns the number of generated tokens the task produces.
func (o Offline) TotalTokens() int { return o.Batch * o.Generate }

// Prompts materializes token ID prompts (padded to Prompt length) over a
// vocabulary, reproducible by seed.
func (o Offline) Prompts(vocab int, seed int64) ([][]int, error) {
	if vocab < 2 {
		return nil, fmt.Errorf("workload: vocab %d too small", vocab)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int, o.Batch)
	for i := range out {
		p := make([]int, o.Prompt)
		for j := range p {
			p[j] = rng.Intn(vocab)
		}
		out[i] = p
	}
	return out, nil
}

// ShareGPTLengths samples n prompt lengths from a heavy-tailed mixture
// calibrated to the ShareGPT conversation statistics the paper samples:
// a large short-prompt mode (<128 tokens) plus a long tail out to the
// context limit.
func ShareGPTLengths(n int, maxLen int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		var l float64
		if rng.Float64() < 0.55 {
			// Short conversational turns: lognormal around ~40 tokens.
			l = math.Exp(rng.NormFloat64()*0.9 + 3.7)
		} else {
			// Long context-carrying prompts: lognormal around ~450 tokens.
			l = math.Exp(rng.NormFloat64()*0.8 + 6.1)
		}
		li := int(l)
		if li < 1 {
			li = 1
		}
		if li > maxLen {
			li = maxLen
		}
		out[i] = li
	}
	return out
}

// LengthStats summarizes a sample of prompt lengths.
type LengthStats struct {
	Mean       float64
	P50        int
	P90        int
	P99        int
	ShortShare float64 // fraction under 128 tokens (the paper's cut)
}

// Summarize computes distribution statistics.
func Summarize(lengths []int) (LengthStats, error) {
	if len(lengths) == 0 {
		return LengthStats{}, fmt.Errorf("workload: empty sample")
	}
	sorted := append([]int(nil), lengths...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var sum float64
	short := 0
	for _, l := range lengths {
		sum += float64(l)
		if l < 128 {
			short++
		}
	}
	pick := func(q float64) int {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return LengthStats{
		Mean:       sum / float64(len(lengths)),
		P50:        pick(0.50),
		P90:        pick(0.90),
		P99:        pick(0.99),
		ShortShare: float64(short) / float64(len(lengths)),
	}, nil
}
