package workload

import (
	"testing"
	"testing/quick"
)

func TestNewOfflineValidation(t *testing.T) {
	if _, err := NewOffline(0, 512, 100); err == nil {
		t.Error("expected batch error")
	}
	w, err := NewOffline(32, 512, 100)
	if err != nil {
		t.Fatal(err)
	}
	if w.TotalTokens() != 3200 {
		t.Errorf("total tokens %d", w.TotalTokens())
	}
}

func TestPromptsShapeAndDeterminism(t *testing.T) {
	w, _ := NewOffline(4, 16, 10)
	a, err := w.Prompts(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := w.Prompts(100, 7)
	if len(a) != 4 {
		t.Fatalf("%d prompts", len(a))
	}
	for i := range a {
		if len(a[i]) != 16 {
			t.Fatalf("prompt %d length %d", i, len(a[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("prompts not reproducible")
			}
			if a[i][j] < 0 || a[i][j] >= 100 {
				t.Fatalf("token %d out of vocab", a[i][j])
			}
		}
	}
	if _, err := w.Prompts(1, 7); err == nil {
		t.Error("expected vocab error")
	}
}

func TestShareGPTDistributionShape(t *testing.T) {
	// §2.1: prompt lengths vary substantially, with a large share of short
	// (<128) prompts and a heavy tail.
	lengths := ShareGPTLengths(10000, 2048, 1)
	st, err := Summarize(lengths)
	if err != nil {
		t.Fatal(err)
	}
	if st.ShortShare < 0.35 || st.ShortShare > 0.8 {
		t.Errorf("short-prompt share %.2f outside the ShareGPT-like band", st.ShortShare)
	}
	if st.P99 < 4*st.P50 {
		t.Errorf("tail too light: p50=%d p99=%d", st.P50, st.P99)
	}
	if st.P90 <= st.P50 || st.P99 <= st.P90 {
		t.Errorf("quantiles not ordered: %+v", st)
	}
	for _, l := range lengths {
		if l < 1 || l > 2048 {
			t.Fatalf("length %d out of range", l)
		}
	}
}

func TestShareGPTDeterministic(t *testing.T) {
	a := ShareGPTLengths(100, 2048, 3)
	b := ShareGPTLengths(100, 2048, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not reproducible")
		}
	}
}

func TestSummarizeProperties(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("expected empty error")
	}
	err := quick.Check(func(seed int64) bool {
		ls := ShareGPTLengths(200, 1024, seed)
		st, err := Summarize(ls)
		if err != nil {
			return false
		}
		return st.Mean >= 1 && st.P50 <= st.P90 && st.P90 <= st.P99
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}
