package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatMulATEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := Randn(6, 4, 1, rng)
	b := Randn(6, 5, 1, rng)
	// aᵀ·b via explicit transpose.
	at := New(4, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 4; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want, err := MatMul(at, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MatMulAT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 4 || got.Cols != 5 {
		t.Fatalf("shape %dx%d", got.Rows, got.Cols)
	}
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("MatMulAT mismatch at %d: %g vs %g", i, got.Data[i], want.Data[i])
		}
	}
	if _, err := MatMulAT(a, New(3, 2)); err == nil {
		t.Error("expected shape mismatch error")
	}
}
