// Package tensor provides the minimal dense linear algebra the reference
// transformer (internal/nn) needs: row-major float64 matrices with matmul,
// broadcast row ops, softmax, layernorm, and GELU. Everything is pure Go
// with cache-friendly ikj matmul; sizes stay small (the reference models run
// on CPUs), so no further blocking is needed.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New allocates a zero matrix.
func New(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromData wraps existing data (not copied).
func FromData(rows, cols int, data []float64) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("tensor: data length %d != %dx%d", len(data), rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}, nil
}

// Randn fills a new matrix with N(0, sigma²) entries.
func Randn(rows, cols int, sigma float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * sigma
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns a view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// MatMul computes a × b.
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("tensor: matmul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := ar[k]
			if av == 0 {
				continue
			}
			br := b.Row(k)
			for j := range br {
				or[j] += av * br[j]
			}
		}
	}
	return out, nil
}

// MatMulAT computes aᵀ × b — the shape that appears in weight gradients
// (dW = Xᵀ·dY).
func MatMulAT(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows {
		return nil, fmt.Errorf("tensor: matmulAT shape mismatch (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := New(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		ar := a.Row(k)
		br := b.Row(k)
		for i, av := range ar {
			if av == 0 {
				continue
			}
			or := out.Row(i)
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
	return out, nil
}

// MatMulT computes a × bᵀ.
func MatMulT(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Cols {
		return nil, fmt.Errorf("tensor: matmulT shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		for j := 0; j < b.Rows; j++ {
			br := b.Row(j)
			var s float64
			for k := range ar {
				s += ar[k] * br[k]
			}
			out.Set(i, j, s)
		}
	}
	return out, nil
}

// AddRow adds bias vector v to each row in place.
func (m *Matrix) AddRow(v []float64) error {
	if len(v) != m.Cols {
		return fmt.Errorf("tensor: bias length %d != cols %d", len(v), m.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		for j := range r {
			r[j] += v[j]
		}
	}
	return nil
}

// Add adds b elementwise in place.
func (m *Matrix) Add(b *Matrix) error {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return fmt.Errorf("tensor: add shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
	}
	for i := range m.Data {
		m.Data[i] += b.Data[i]
	}
	return nil
}

// Scale multiplies all elements in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// SoftmaxRows applies a numerically stable softmax to each row in place.
func (m *Matrix) SoftmaxRows() {
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		maxV := math.Inf(-1)
		for _, v := range r {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range r {
			e := math.Exp(v - maxV)
			r[j] = e
			sum += e
		}
		for j := range r {
			r[j] /= sum
		}
	}
}

// CausalMask sets entries above the diagonal offset to -inf, for
// autoregressive attention. offset is the number of past (cached) positions:
// row i may attend to columns 0..offset+i.
func (m *Matrix) CausalMask(offset int) {
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		for j := offset + i + 1; j < m.Cols; j++ {
			r[j] = math.Inf(-1)
		}
	}
}

// LayerNormRows normalizes each row to zero mean / unit variance, then
// applies elementwise gain and bias.
func (m *Matrix) LayerNormRows(gain, bias []float64) error {
	if len(gain) != m.Cols || len(bias) != m.Cols {
		return fmt.Errorf("tensor: layernorm params length %d/%d != cols %d", len(gain), len(bias), m.Cols)
	}
	const eps = 1e-5
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		var mean float64
		for _, v := range r {
			mean += v
		}
		mean /= float64(len(r))
		var variance float64
		for _, v := range r {
			d := v - mean
			variance += d * d
		}
		variance /= float64(len(r))
		inv := 1 / math.Sqrt(variance+eps)
		for j := range r {
			r[j] = (r[j]-mean)*inv*gain[j] + bias[j]
		}
	}
	return nil
}

// GELU applies the tanh-approximated Gaussian error linear unit in place.
func (m *Matrix) GELU() {
	const c = 0.7978845608028654 // sqrt(2/pi)
	for i, v := range m.Data {
		m.Data[i] = 0.5 * v * (1 + math.Tanh(c*(v+0.044715*v*v*v)))
	}
}

// Mean returns the mean of all elements.
func (m *Matrix) Mean() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s / float64(len(m.Data))
}

// Variance returns the population variance of all elements.
func (m *Matrix) Variance() float64 {
	mean := m.Mean()
	var s float64
	for _, v := range m.Data {
		d := v - mean
		s += d * d
	}
	return s / float64(len(m.Data))
}

// Slice returns a copy of rows [lo, hi).
func (m *Matrix) Slice(lo, hi int) (*Matrix, error) {
	if lo < 0 || hi > m.Rows || lo > hi {
		return nil, fmt.Errorf("tensor: slice [%d,%d) out of %d rows", lo, hi, m.Rows)
	}
	out := New(hi-lo, m.Cols)
	copy(out.Data, m.Data[lo*m.Cols:hi*m.Cols])
	return out, nil
}

// VStack concatenates matrices by rows.
func VStack(ms ...*Matrix) (*Matrix, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("tensor: vstack of nothing")
	}
	cols := ms[0].Cols
	rows := 0
	for _, m := range ms {
		if m.Cols != cols {
			return nil, fmt.Errorf("tensor: vstack col mismatch %d vs %d", m.Cols, cols)
		}
		rows += m.Rows
	}
	out := New(rows, cols)
	off := 0
	for _, m := range ms {
		copy(out.Data[off:], m.Data)
		off += len(m.Data)
	}
	return out, nil
}
