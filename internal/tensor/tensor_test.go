package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulKnown(t *testing.T) {
	a, _ := FromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b, _ := FromData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Errorf("matmul[%d]=%g want %g", i, c.Data[i], v)
		}
	}
	if _, err := MatMul(a, a); err == nil {
		t.Error("expected shape mismatch")
	}
}

func TestMatMulTEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(5, 7, 1, rng)
	b := Randn(4, 7, 1, rng)
	// a × bᵀ must equal MatMul(a, transpose(b)).
	bt := New(7, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 7; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	want, _ := MatMul(a, bt)
	got, err := MatMulT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("MatMulT mismatch at %d: %g vs %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Randn(4, 9, 10, rng)
		m.SoftmaxRows()
		for i := 0; i < m.Rows; i++ {
			var s float64
			for _, v := range m.Row(i) {
				if v < 0 || v > 1 {
					return false
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestSoftmaxStableWithLargeValues(t *testing.T) {
	m, _ := FromData(1, 3, []float64{1e30, 1e30, 0})
	m.SoftmaxRows()
	if math.IsNaN(m.Data[0]) || math.Abs(m.Data[0]-0.5) > 1e-9 {
		t.Errorf("softmax unstable: %v", m.Data)
	}
}

func TestCausalMask(t *testing.T) {
	m := New(3, 5)
	m.CausalMask(2) // 2 cached positions: row i sees cols 0..2+i
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			masked := math.IsInf(m.At(i, j), -1)
			want := j > 2+i
			if masked != want {
				t.Errorf("mask(%d,%d)=%v want %v", i, j, masked, want)
			}
		}
	}
	// Masked softmax puts zero probability on future positions.
	m2 := New(2, 4)
	m2.CausalMask(0)
	m2.SoftmaxRows()
	if m2.At(0, 1) != 0 || m2.At(0, 0) != 1 {
		t.Errorf("row 0 after causal softmax: %v", m2.Row(0))
	}
}

func TestLayerNormRows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := Randn(6, 32, 5, rng)
	gain := make([]float64, 32)
	bias := make([]float64, 32)
	for i := range gain {
		gain[i] = 1
	}
	if err := m.LayerNormRows(gain, bias); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.Rows; i++ {
		r := m.Row(i)
		var mean, v float64
		for _, x := range r {
			mean += x
		}
		mean /= float64(len(r))
		for _, x := range r {
			v += (x - mean) * (x - mean)
		}
		v /= float64(len(r))
		if math.Abs(mean) > 1e-9 || math.Abs(v-1) > 1e-3 {
			t.Errorf("row %d: mean=%.3g var=%.3g after layernorm", i, mean, v)
		}
	}
	if err := m.LayerNormRows(gain[:3], bias); err == nil {
		t.Error("expected param-length error")
	}
}

func TestGELUProperties(t *testing.T) {
	m, _ := FromData(1, 4, []float64{-10, 0, 1, 10})
	m.GELU()
	if math.Abs(m.Data[0]) > 1e-3 {
		t.Errorf("gelu(-10) should be ≈0, got %g", m.Data[0])
	}
	if m.Data[1] != 0 {
		t.Errorf("gelu(0)=%g want 0", m.Data[1])
	}
	if math.Abs(m.Data[2]-0.8412) > 0.01 {
		t.Errorf("gelu(1)=%g want ≈0.8412", m.Data[2])
	}
	if math.Abs(m.Data[3]-10) > 1e-3 {
		t.Errorf("gelu(10)=%g want ≈10", m.Data[3])
	}
}

func TestSliceVStackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := Randn(10, 3, 1, rng)
	a, err := m.Slice(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Slice(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	back, err := VStack(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Data {
		if back.Data[i] != m.Data[i] {
			t.Fatal("vstack(slice) did not round-trip")
		}
	}
	if _, err := m.Slice(5, 3); err == nil {
		t.Error("expected slice range error")
	}
	if _, err := VStack(); err == nil {
		t.Error("expected empty vstack error")
	}
}

func TestAddRowAndStats(t *testing.T) {
	m, _ := FromData(2, 2, []float64{1, 2, 3, 4})
	if err := m.AddRow([]float64{10, 20}); err != nil {
		t.Fatal(err)
	}
	if m.At(1, 1) != 24 {
		t.Errorf("addrow gave %v", m.Data)
	}
	if m.Mean() != 17.5 { // (11+22+13+24)/4
		t.Errorf("mean=%g want 17.5", m.Mean())
	}
	if v := m.Variance(); v <= 0 {
		t.Errorf("variance should be positive, got %g", v)
	}
}
