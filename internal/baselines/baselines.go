// Package baselines implements the comparison systems of the paper's
// evaluation (§6.1):
//
//   - PipeEdge: uniform quantization + heterogeneous partition that
//     balances a SINGLE phase (prefill) — the phase-unaware planner the
//     paper extends;
//   - Uniform: uniform quantization + even layer partition with
//     latency-minimizing micro-batch sizing (the HF-Transformers /
//     DeepSpeed policy);
//   - FlexGen / FlexGen-int8: an offloading throughput model — weights and
//     KV that exceed device memory live in host RAM and stream over PCIe
//     on every use (multi-hierarchy offloading).
//
// PipeEdge and Uniform emit assigner.Plans executable on the runtime
// engine; both lower the uniform bitwidth from FP16 until the model fits
// (or report OOM like the missing entries of Table 4). FlexGen never OOMs
// — it pays swap time instead.
package baselines

import (
	"fmt"
	"math"

	"repro/internal/assigner"
)

// ErrOOM is returned when no uniform precision fits the cluster.
var ErrOOM = fmt.Errorf("baselines: model does not fit at any candidate precision")

// bitsDescending returns candidate bits from highest to lowest ("keep
// lowering the quantization bitwidth from the maximum until the model can
// fit", §6.1).
func bitsDescending(bits []int) []int {
	out := append([]int(nil), bits...)
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] > out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func uniformPlan(s *assigner.Spec, t *assigner.Tables, order []int, boundaries []int, bits int) *assigner.Plan {
	gb := make([]int, s.Omega.Layers())
	for i := range gb {
		gb[i] = bits
	}
	return &assigner.Plan{
		Order:      append([]int(nil), order...),
		Boundaries: boundaries,
		GroupBits:  gb,
		Group:      1,
		PrefillMB:  t.PrefillMB,
		DecodeMB:   t.DecodeMB,
	}
}

// evenBoundaries splits L groups into n near-equal contiguous stages.
func evenBoundaries(L, n int) []int {
	b := make([]int, n+1)
	for j := 0; j <= n; j++ {
		b[j] = j * L / n
	}
	// Guarantee non-empty stages when L ≥ n.
	for j := 1; j <= n; j++ {
		if b[j] <= b[j-1] {
			b[j] = b[j-1] + 1
		}
	}
	if b[n] != L {
		b[n] = L
	}
	return b
}

// Uniform builds the Uniform baseline plan: even partition, uniform
// precision lowered until feasible, micro-batch chosen to minimize the
// evaluated latency.
func Uniform(s *assigner.Spec, timer assigner.LayerTimer) (*assigner.Plan, *assigner.Evaluation, error) {
	if timer == nil {
		timer = assigner.ProfilerTimer{}
	}
	n := s.Cluster.NumDevices()
	order := identityOrder(n)
	var best *assigner.Plan
	var bestEv assigner.Evaluation
	for _, mbp := range candidateMBs(s) {
		t, err := assigner.BuildTables(s, timer, mbp)
		if err != nil {
			return nil, nil, err
		}
		for _, bits := range bitsDescending(s.Bits) {
			p := uniformPlan(s, t, order, evenBoundaries(s.Omega.Layers(), n), bits)
			ev, err := assigner.Evaluate(t, p)
			if err != nil {
				return nil, nil, err
			}
			if !ev.Feasible {
				continue
			}
			if best == nil || ev.LatencySec < bestEv.LatencySec {
				best, bestEv = p, ev
			}
			break // highest feasible precision for this micro-batch
		}
	}
	if best == nil {
		return nil, nil, ErrOOM
	}
	best.Finalize(bestEv)
	return best, &bestEv, nil
}

// PipeEdge builds the PipeEdge baseline: uniform precision (highest that
// fits) with a partition balancing the PREFILL phase only across
// heterogeneous devices — phase-unaware, per §2.2. Micro-batch is the
// global batch divided by the number of stages for both phases (§6.1).
func PipeEdge(s *assigner.Spec, timer assigner.LayerTimer) (*assigner.Plan, *assigner.Evaluation, error) {
	if timer == nil {
		timer = assigner.ProfilerTimer{}
	}
	n := s.Cluster.NumDevices()
	mbp := (s.Work.GlobalBatch + n - 1) / n
	t, err := assigner.BuildTables(s, timer, mbp)
	if err != nil {
		return nil, nil, err
	}
	var best *assigner.Plan
	var bestEv assigner.Evaluation
	for _, order := range assigner.CandidateOrders(s.Cluster) {
		for _, bits := range bitsDescending(s.Bits) {
			bounds, ok := pipeEdgePartition(s, t, order, bits)
			if !ok {
				continue
			}
			p := uniformPlan(s, t, order, bounds, bits)
			ev, err := assigner.Evaluate(t, p)
			if err != nil {
				return nil, nil, err
			}
			if !ev.Feasible {
				continue
			}
			if best == nil || ev.LatencySec < bestEv.LatencySec {
				best, bestEv = p, ev
			}
			break
		}
	}
	if best == nil {
		return nil, nil, ErrOOM
	}
	best.Finalize(bestEv)
	return best, &bestEv, nil
}

// pipeEdgePartition minimizes the maximum per-stage PREFILL time (the
// single phase PipeEdge knows about) subject to memory, via binary search
// on the bottleneck + greedy packing.
func pipeEdgePartition(s *assigner.Spec, t *assigner.Tables, order []int, bits int) ([]int, bool) {
	n := len(order)
	L := s.Omega.Layers()
	bi := -1
	for i, b := range s.Bits {
		if b == bits {
			bi = i
		}
	}
	if bi < 0 {
		return nil, false
	}
	feasible := func(cap float64) ([]int, bool) {
		bounds := make([]int, n+1)
		l := 0
		for j := 0; j < n; j++ {
			bounds[j] = l
			cPre, _, cMem := assigner.StageConstants(t, order, j)
			memCap := t.Capacity[order[j]] - cMem
			k := 0
			for l+k < L {
				nt := float64(k+1)*t.TPre[order[j]][bi] + cPre
				nm := float64(k+1) * t.GroupMem[bi]
				if nt > cap || nm > memCap {
					break
				}
				k++
			}
			if k == 0 {
				return nil, false
			}
			// Leave enough for remaining stages.
			if rem := L - (l + k); rem < n-1-j {
				k -= (n - 1 - j) - rem
				if k <= 0 {
					return nil, false
				}
			}
			l += k
		}
		bounds[n] = L
		return bounds, l == L
	}
	lo, hi := 0.0, 0.0
	for j := 0; j < n; j++ {
		cPre, _, _ := assigner.StageConstants(t, order, j)
		hi += float64(L)*t.TPre[order[j]][bi] + cPre
	}
	bounds, ok := feasible(hi)
	if !ok {
		return nil, false
	}
	for iter := 0; iter < 48; iter++ {
		mid := (lo + hi) / 2
		if b, ok := feasible(mid); ok {
			bounds = b
			hi = mid
		} else {
			lo = mid
		}
	}
	return bounds, true
}

// FlexGenStats is the analytic result of the offloading baseline.
type FlexGenStats struct {
	LatencySec float64
	Throughput float64
	Bits       int
	// OffloadFraction is the share of per-stage state streamed over PCIe
	// each use.
	OffloadFraction float64
}

// PCIeGBs is the host↔device bandwidth the offloading model assumes.
const PCIeGBs = 16.0

// FlexGen estimates the offloading baseline ("CPU and disk swapping ... to
// maximize the throughput", §6.1): even partition, uniform precision
// (FP16, or INT8 for FlexGen-int8), and any state beyond device memory
// streams over PCIe on every use. FlexGen is specialized for OPT models —
// callers mirror the paper by not invoking it for BLOOM.
func FlexGen(s *assigner.Spec, timer assigner.LayerTimer, int8 bool) (*FlexGenStats, error) {
	if timer == nil {
		timer = assigner.ProfilerTimer{}
	}
	bits := 16
	if int8 {
		bits = 8
	}
	n := s.Cluster.NumDevices()
	mbp := (s.Work.GlobalBatch + n - 1) / n
	t, err := assigner.BuildTables(s, timer, mbp)
	if err != nil {
		return nil, err
	}
	bi := -1
	for i, b := range s.Bits {
		if b == bits {
			bi = i
		}
	}
	if bi < 0 {
		return nil, fmt.Errorf("baselines: %d-bit not among candidates %v", bits, s.Bits)
	}
	bounds := evenBoundaries(s.Omega.Layers(), n)
	order := identityOrder(n)

	var sumPre, sumDec, maxPre, maxDec, worstOffload float64
	for j := 0; j < n; j++ {
		k := float64(bounds[j+1] - bounds[j])
		cPre, cDec, cMem := assigner.StageConstants(t, order, j)
		need := k * t.GroupMem[bi]
		have := t.Capacity[order[j]] - cMem
		offload := 0.0
		if need > have {
			offload = (need - have) / need
		}
		if offload > worstOffload {
			worstOffload = offload
		}
		// Streamed bytes per pass: the offloaded share of the stage state.
		swap := offload * need / (PCIeGBs * 1e9)
		pre := k*t.TPre[order[j]][bi] + cPre + swap
		dec := k*t.TDec[order[j]][bi] + cDec + swap
		sumPre += pre
		sumDec += dec
		maxPre = math.Max(maxPre, pre)
		maxDec = math.Max(maxDec, dec)
	}
	kp := (s.Work.GlobalBatch + mbp - 1) / mbp
	kd := (s.Work.GlobalBatch + t.DecodeMB - 1) / t.DecodeMB
	latency := sumPre + float64(kp-1)*maxPre
	rounds := (s.Work.Generate - 1) * kd
	if rounds > 0 {
		latency += sumDec + float64(rounds-1)*maxDec
	}
	return &FlexGenStats{
		LatencySec:      latency,
		Throughput:      float64(s.Work.GlobalBatch*s.Work.Generate) / latency,
		Bits:            bits,
		OffloadFraction: worstOffload,
	}, nil
}

func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

func candidateMBs(s *assigner.Spec) []int {
	var out []int
	for mb := 1; mb <= s.Work.GlobalBatch; mb *= 2 {
		out = append(out, mb)
	}
	if out[len(out)-1] != s.Work.GlobalBatch {
		out = append(out, s.Work.GlobalBatch)
	}
	return out
}
