package baselines

import (
	"errors"
	"testing"

	"repro/internal/assigner"
	"repro/internal/hardware"
	"repro/internal/indicator"
	"repro/internal/model"
)

func testGPU(name string, memGB, tflops, bw float64) hardware.GPU {
	return hardware.GPU{
		Name: name, MemoryGB: memGB, FP16TFLOPS: tflops, BandwidthGBs: bw,
		ComputeEff:       map[int]float64{3: 0.45, 4: 0.5, 8: 0.8, 16: 1.0},
		MemEff:           map[int]float64{3: 0.7, 4: 0.78, 8: 0.91, 16: 1.0},
		LaunchOverheadUS: 10,
	}
}

var blModel = model.Config{
	Name: "bl-test", Family: model.OPT, Hidden: 2048, FFN: 8192,
	Layers: 8, Heads: 16, VocabSize: 50272, MaxPosEmb: 2048, TiedEmbed: true,
}

func blSpec(memA, memB float64) *assigner.Spec {
	fast := testGPU("fast", memA, 50, 600)
	slow := testGPU("slow", memB, 12, 300)
	full := indicator.Synthetic(blModel, []int{3, 4, 8, 16}, 7)
	return &assigner.Spec{
		Cfg: blModel,
		Cluster: hardware.Cluster{
			Name: "bl", InterNode: hardware.Eth800Gbps,
			Devices: []hardware.Device{
				{ID: 0, GPU: slow, Node: 0},
				{ID: 1, GPU: fast, Node: 1},
			},
		},
		Work:   assigner.Workload{GlobalBatch: 8, Prompt: 128, Generate: 32},
		Bits:   []int{3, 4, 8, 16},
		Omega:  full,
		Theta:  0.01,
		Method: assigner.MethodDP,
	}
}

func TestUniformPicksHighestFeasibleBits(t *testing.T) {
	// Plenty of memory → FP16 everywhere.
	p, ev, err := Uniform(blSpec(24, 24), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range p.GroupBits {
		if b != 16 {
			t.Fatalf("with abundant memory Uniform should stay FP16, got %v", p.GroupBits)
		}
	}
	if !ev.Feasible {
		t.Fatal("infeasible")
	}
	// Tight memory → a lower uniform precision.
	p2, _, err := Uniform(blSpec(0.68, 0.68), nil)
	if err != nil {
		t.Fatal(err)
	}
	if p2.GroupBits[0] == 16 {
		t.Errorf("tight memory should force uniform quantization, got %v", p2.GroupBits)
	}
	for i := 1; i < len(p2.GroupBits); i++ {
		if p2.GroupBits[i] != p2.GroupBits[0] {
			t.Fatalf("Uniform must be uniform: %v", p2.GroupBits)
		}
	}
}

func TestUniformEvenPartition(t *testing.T) {
	p, _, err := Uniform(blSpec(24, 24), nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Boundaries[1] != 4 {
		t.Errorf("even split of 8 layers over 2 devices should cut at 4, got %v", p.Boundaries)
	}
}

func TestUniformOOM(t *testing.T) {
	_, _, err := Uniform(blSpec(0.1, 0.1), nil)
	if !errors.Is(err, ErrOOM) {
		t.Fatalf("expected ErrOOM, got %v", err)
	}
}

func TestPipeEdgeBalancesPrefill(t *testing.T) {
	// The faster device must receive more layers than the slow one.
	p, ev, err := PipeEdge(blSpec(24, 24), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Feasible {
		t.Fatal("infeasible")
	}
	counts := map[string]int{}
	for j := 0; j < p.NumStages(); j++ {
		lo, hi, _ := p.StageRange(j)
		counts[pName(p, j)] += hi - lo
	}
	if counts["fast"] <= counts["slow"] {
		t.Errorf("PipeEdge gave fast=%d slow=%d layers", counts["fast"], counts["slow"])
	}
}

func pName(p *assigner.Plan, j int) string {
	// Device 0 = slow, 1 = fast in these tests.
	if p.Order[j] == 1 {
		return "fast"
	}
	return "slow"
}

func TestPipeEdgeUniformBits(t *testing.T) {
	p, _, err := PipeEdge(blSpec(0.68, 0.68), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(p.GroupBits); i++ {
		if p.GroupBits[i] != p.GroupBits[0] {
			t.Fatalf("PipeEdge must use uniform precision: %v", p.GroupBits)
		}
	}
}

func TestLLMPQBeatsBaselinesOnHeterogeneousCluster(t *testing.T) {
	// The core claim (Table 4): phase-aware partition + adaptive
	// quantization outperforms both baselines on a heterogeneous cluster
	// with tight memory.
	s := blSpec(1.6, 1.1)
	res, err := assigner.Optimize(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, pe, err := PipeEdge(blSpec(1.6, 1.1), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, un, err := Uniform(blSpec(1.6, 1.1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Eval.LatencySec > pe.LatencySec*1.001 {
		t.Errorf("LLM-PQ latency %.3fs should beat PipeEdge %.3fs", res.Eval.LatencySec, pe.LatencySec)
	}
	if res.Eval.LatencySec > un.LatencySec*1.001 {
		t.Errorf("LLM-PQ latency %.3fs should beat Uniform %.3fs", res.Eval.LatencySec, un.LatencySec)
	}
}

func TestFlexGenNeverOOMs(t *testing.T) {
	// Starved memory that OOMs Uniform must still produce a FlexGen number
	// — just a slow one.
	s := blSpec(0.35, 0.35)
	st, err := FlexGen(s, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.OffloadFraction <= 0 {
		t.Errorf("starved devices should offload, fraction=%.3f", st.OffloadFraction)
	}
	if st.Throughput <= 0 {
		t.Errorf("throughput %.3f", st.Throughput)
	}
	// And with abundant memory there is no offload penalty.
	st2, err := FlexGen(blSpec(24, 24), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if st2.OffloadFraction != 0 {
		t.Errorf("no offload expected, got %.3f", st2.OffloadFraction)
	}
	if st2.Throughput <= st.Throughput {
		t.Error("offloading should cost throughput")
	}
}

func TestFlexGenInt8ReducesSwap(t *testing.T) {
	// INT8 halves the streamed bytes → faster than FP16 when offloading
	// (the Table 4 pattern: FlexGen-int8 ≥ FlexGen).
	s := blSpec(0.5, 0.5)
	fp16, err := FlexGen(s, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	int8, err := FlexGen(s, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if int8.Throughput <= fp16.Throughput {
		t.Errorf("FlexGen-int8 %.2f tok/s should beat FlexGen %.2f tok/s under heavy offload",
			int8.Throughput, fp16.Throughput)
	}
	if int8.OffloadFraction >= fp16.OffloadFraction {
		t.Errorf("INT8 should offload less: %.3f vs %.3f", int8.OffloadFraction, fp16.OffloadFraction)
	}
}
