package assigner

import (
	"fmt"

	"repro/internal/indicator"
)

// Evaluation is the canonical scoring of a plan. Every solver, test, and
// experiment scores plans through this one function so numbers are
// comparable across methods and against the runtime.
type Evaluation struct {
	Feasible   bool
	Violation  string // first memory violation, if any
	StagePre   []float64
	StageDec   []float64
	StageMemGB []float64
	MemUtil    []float64
	PrefillSec float64
	DecodeSec  float64
	LatencySec float64
	Throughput float64 // generated tokens per second
	OmegaSum   float64
	Objective  float64
}

// Evaluate scores a plan under the given tables.
//
// The pipeline model (paper eq. 4 discussion): with k_p prefill
// micro-batches the prefill phase costs Σ_j t_pre,j + (k_p−1)·max_j t_pre,j
// (fill + steady drain bounded by the slowest stage). Decode runs
// (n−1)·k_d further micro-batch rounds through the slowest stage after a
// one-pipeline fill, so it costs Σ_j t_dec,j + ((n−1)·k_d − 1)·max_j t_dec,j.
func Evaluate(t *Tables, p *Plan) (Evaluation, error) {
	s := t.Spec
	if err := p.Validate(s); err != nil {
		return Evaluation{}, err
	}
	if p.PrefillMB != t.PrefillMB {
		return Evaluation{}, fmt.Errorf("assigner: plan prefill mb %d but tables built for %d", p.PrefillMB, t.PrefillMB)
	}
	n := p.NumStages()
	ev := Evaluation{
		Feasible:   true,
		StagePre:   make([]float64, n),
		StageDec:   make([]float64, n),
		StageMemGB: make([]float64, n),
		MemUtil:    make([]float64, n),
	}
	for j := 0; j < n; j++ {
		d := p.Order[j]
		lo, hi, err := p.StageRange(j)
		if err != nil {
			return Evaluation{}, err
		}
		var pre, dec, mem float64
		for gIdx := lo; gIdx < hi; gIdx++ {
			bi, err := t.bitIndex(p.GroupBits[gIdx])
			if err != nil {
				return Evaluation{}, err
			}
			pre += t.TPre[d][bi]
			dec += t.TDec[d][bi]
			mem += t.GroupMem[bi]
			w, err := s.Omega.At(gIdx, p.GroupBits[gIdx])
			if err != nil {
				return Evaluation{}, err
			}
			ev.OmegaSum += w
		}
		if j == 0 {
			pre += t.EmbedPre
			dec += t.EmbedDec
			mem += t.EmbedMem
		}
		if j == n-1 {
			mem += t.HeadMem
			if n > 1 {
				// Return hop to the master engine (small: one token's
				// hidden state per request).
				pre += t.CommDec[d][p.Order[0]]
				dec += t.CommDec[d][p.Order[0]]
			}
		}
		if j < n-1 {
			next := p.Order[j+1]
			pre += t.CommPre[d][next]
			dec += t.CommDec[d][next]
		}
		mem += t.TempMem
		ev.StagePre[j] = pre
		ev.StageDec[j] = dec
		ev.StageMemGB[j] = mem / 1e9
		ev.MemUtil[j] = mem / t.Capacity[d]
		if mem > t.Capacity[d] && ev.Feasible {
			ev.Feasible = false
			ev.Violation = fmt.Sprintf("stage %d on device %d (%s): needs %.1fGB, capacity %.1fGB",
				j, d, s.Cluster.Devices[d].GPU.Name, mem/1e9, t.Capacity[d]/1e9)
		}
	}
	kp := (s.Work.GlobalBatch + t.PrefillMB - 1) / t.PrefillMB
	kd := (s.Work.GlobalBatch + t.DecodeMB - 1) / t.DecodeMB
	var maxPre, maxDec, sumPre, sumDec float64
	for j := 0; j < n; j++ {
		sumPre += ev.StagePre[j]
		sumDec += ev.StageDec[j]
		if ev.StagePre[j] > maxPre {
			maxPre = ev.StagePre[j]
		}
		if ev.StageDec[j] > maxDec {
			maxDec = ev.StageDec[j]
		}
	}
	ev.PrefillSec = sumPre + float64(kp-1)*maxPre
	rounds := (s.Work.Generate - 1) * kd
	if rounds > 0 {
		ev.DecodeSec = sumDec + float64(rounds-1)*maxDec
	}
	ev.LatencySec = ev.PrefillSec + ev.DecodeSec
	ev.Throughput = float64(s.Work.GlobalBatch*s.Work.Generate) / ev.LatencySec
	ev.Objective = ev.LatencySec + s.Theta*ev.OmegaSum
	return ev, nil
}

// Finalize stamps evaluation results into the plan.
func (p *Plan) Finalize(ev Evaluation) {
	p.Objective = ev.Objective
	p.LatencySec = ev.LatencySec
	p.OmegaSum = ev.OmegaSum
}

// GroupOmega collapses a per-layer Omega into a per-group Omega by summing
// members, matching Optimization #2 where a whole group shares one bit.
func GroupOmega(o indicator.Omega, group int) indicator.Omega {
	if group <= 1 {
		return o
	}
	out := indicator.Omega{Bits: o.Bits}
	for lo := 0; lo < o.Layers(); lo += group {
		hi := lo + group
		if hi > o.Layers() {
			hi = o.Layers()
		}
		row := make([]float64, len(o.Bits))
		for i := lo; i < hi; i++ {
			for bi := range o.Bits {
				row[bi] += o.Values[i][bi]
			}
		}
		out.Values = append(out.Values, row)
	}
	return out
}
