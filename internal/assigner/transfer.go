package assigner

// Algorithm 2: bitwidth transfer. Starting from an adabits solution, the
// heuristic repeatedly identifies the straggler (slowest) stage and applies
// the best improving transformation from the rule set C — moving boundary
// layers between adjacent stages (optionally converting their precision)
// or re-precision-ing a layer in place — until no single transformation
// improves the exact objective.

const transferMaxIters = 400

// bitwidthTransfer refines a plan in place-by-copy and returns the best
// found plan with its evaluation.
func bitwidthTransfer(t *Tables, start *Plan) (*Plan, *Evaluation, error) {
	best := clonePlan(start)
	bestEv, err := Evaluate(t, best)
	if err != nil {
		return nil, nil, err
	}
	for iter := 0; iter < transferMaxIters; iter++ {
		improved := false
		for _, cand := range neighbors(t.Spec, best) {
			ev, err := Evaluate(t, cand)
			if err != nil {
				return nil, nil, err
			}
			if ev.Feasible && ev.Objective < bestEv.Objective-1e-12 {
				best, bestEv = cand, ev
				improved = true
				break // greedy first-improvement, then re-derive neighbors
			}
		}
		if !improved {
			break
		}
	}
	return best, &bestEv, nil
}

func clonePlan(p *Plan) *Plan {
	q := *p
	q.Order = append([]int(nil), p.Order...)
	q.Boundaries = append([]int(nil), p.Boundaries...)
	q.GroupBits = append([]int(nil), p.GroupBits...)
	return &q
}

// neighbors generates the transformation candidates of rule set C:
//
//   - boundary shifts: move the edge group of a stage to its neighbor,
//     keeping or converting its precision (e.g. the paper's (4, 8, 2) rule
//     — replacing one 8-bit layer with 4-bit layers on another stage — is
//     a composition of a shift plus precision conversions);
//   - in-place precision steps: one group one step up or down the
//     candidate bit ladder.
func neighbors(s *Spec, p *Plan) []*Plan {
	var out []*Plan
	n := p.NumStages()
	// Boundary shifts with optional precision conversion of the moved
	// group.
	for b := 1; b < n; b++ {
		// Shift boundary left: first group of stage b moves to stage b-1?
		// Boundaries[b] separates stage b-1 (left) and stage b (right).
		// Move right: stage b-1 grows by taking group Boundaries[b].
		if p.Boundaries[b+1]-p.Boundaries[b] > 1 { // right stage keeps ≥1
			for _, nb := range bitChoices(s, p.GroupBits[p.Boundaries[b]]) {
				q := clonePlan(p)
				q.GroupBits[q.Boundaries[b]] = nb
				q.Boundaries[b]++
				out = append(out, q)
			}
		}
		// Move left: stage b grows by taking group Boundaries[b]-1.
		if p.Boundaries[b]-p.Boundaries[b-1] > 1 { // left stage keeps ≥1
			for _, nb := range bitChoices(s, p.GroupBits[p.Boundaries[b]-1]) {
				q := clonePlan(p)
				q.GroupBits[q.Boundaries[b]-1] = nb
				q.Boundaries[b]--
				out = append(out, q)
			}
		}
	}
	// In-place precision steps on every group (the straggler's groups come
	// first in evaluation order anyway; trying all keeps the rule set
	// complete and the instance sizes make it cheap).
	for g := 0; g < len(p.GroupBits); g++ {
		cur := bitIndexIn(s.Bits, p.GroupBits[g])
		if cur > 0 {
			q := clonePlan(p)
			q.GroupBits[g] = s.Bits[cur-1]
			out = append(out, q)
		}
		if cur >= 0 && cur < len(s.Bits)-1 {
			q := clonePlan(p)
			q.GroupBits[g] = s.Bits[cur+1]
			out = append(out, q)
		}
	}
	return out
}

// bitChoices returns the current bit plus its immediate ladder neighbors.
func bitChoices(s *Spec, cur int) []int {
	i := bitIndexIn(s.Bits, cur)
	out := []int{cur}
	if i > 0 {
		out = append(out, s.Bits[i-1])
	}
	if i >= 0 && i < len(s.Bits)-1 {
		out = append(out, s.Bits[i+1])
	}
	return out
}

func bitIndexIn(bits []int, b int) int {
	for i, v := range bits {
		if v == b {
			return i
		}
	}
	return -1
}
