package assigner

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hardware"
	"repro/internal/indicator"
	"repro/internal/model"
)

// randomSpec builds a randomized-but-plausible planning instance.
func randomSpec(seed int64) *Spec {
	rng := rand.New(rand.NewSource(seed))
	layers := 4 + rng.Intn(9) // 4..12
	cfg := model.Config{
		Name: "prop-test", Family: model.OPT,
		Hidden: 1024 * (1 + rng.Intn(3)), // 1024..3072
		Layers: layers, Heads: 16, VocabSize: 50272, MaxPosEmb: 2048, TiedEmbed: true,
	}
	cfg.FFN = cfg.Hidden * 4
	nDev := 1 + rng.Intn(3) // 1..3 devices
	if nDev > layers {
		nDev = layers
	}
	var devices []hardware.Device
	// Memory sized so the FP16 model roughly fits across the cluster with
	// some pressure: total weights in GB × factor 0.6..1.6.
	weightsGB := float64(cfg.TotalParams()) * 2 / 1e9
	factor := 0.6 + rng.Float64()
	for i := 0; i < nDev; i++ {
		share := (0.5 + rng.Float64()) / float64(nDev)
		devices = append(devices, hardware.Device{
			ID: i,
			GPU: hardware.GPU{
				Name: "prop", MemoryGB: weightsGB * factor * share * 2, // ×2: KV+extras headroom
				FP16TFLOPS: 20 + rng.Float64()*100, BandwidthGBs: 300 + rng.Float64()*900,
				ComputeEff:       map[int]float64{3: 0.45, 4: 0.5, 8: 0.8, 16: 1.0},
				MemEff:           map[int]float64{3: 0.7, 4: 0.78, 8: 0.91, 16: 1.0},
				LaunchOverheadUS: 10,
			},
			Node: i,
		})
	}
	return &Spec{
		Cfg: cfg,
		Cluster: hardware.Cluster{
			Name: "prop", InterNode: hardware.Eth800Gbps, Devices: devices,
		},
		Work: Workload{
			GlobalBatch: 1 << (1 + rng.Intn(4)), // 2..16
			Prompt:      64 * (1 + rng.Intn(4)),
			Generate:    8 + rng.Intn(48),
		},
		Bits:                []int{3, 4, 8, 16},
		Omega:               indicator.Synthetic(cfg, []int{3, 4, 8, 16}, seed),
		Theta:               rng.Float64() * 2,
		Method:              MethodDP,
		PrefillMicroBatches: []int{1, 2},
	}
}

func TestPropertyPlansAlwaysValidAndFeasible(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		s := randomSpec(seed)
		res, err := Optimize(s, nil)
		if err != nil {
			// Infeasible instances are allowed — but then adabits must
			// fail too (no method magically fits what cannot fit).
			s2 := randomSpec(seed)
			s2.Method = MethodAdabits
			if _, err2 := Optimize(s2, nil); err2 == nil {
				t.Logf("seed %d: DP failed (%v) but adabits succeeded", seed, err)
				return false
			}
			return true
		}
		if err := res.Plan.Validate(s); err != nil {
			t.Logf("seed %d: invalid plan: %v", seed, err)
			return false
		}
		if !res.Eval.Feasible {
			t.Logf("seed %d: infeasible plan returned: %s", seed, res.Eval.Violation)
			return false
		}
		// Boundaries strictly increasing and spanning.
		b := res.Plan.Boundaries
		if b[0] != 0 || b[len(b)-1] != s.layerGroups() {
			return false
		}
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				return false
			}
		}
		return res.Eval.LatencySec > 0 && res.Eval.Throughput > 0
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyDPDominatesAdabits(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		dp := randomSpec(seed)
		ada := randomSpec(seed)
		ada.Method = MethodAdabits
		rDP, errDP := Optimize(dp, nil)
		rAda, errAda := Optimize(ada, nil)
		if errDP != nil || errAda != nil {
			return true // feasibility handled in the other property
		}
		// MethodDP explores a superset (it descends from the adabits basin
		// too), so its objective can never be worse.
		return rDP.Eval.Objective <= rAda.Eval.Objective*1.0001
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyDeterministicPlanning(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		a, errA := Optimize(randomSpec(seed), nil)
		b, errB := Optimize(randomSpec(seed), nil)
		if (errA == nil) != (errB == nil) {
			return false
		}
		if errA != nil {
			return true
		}
		if a.Eval.Objective != b.Eval.Objective {
			return false
		}
		for i := range a.Plan.GroupBits {
			if a.Plan.GroupBits[i] != b.Plan.GroupBits[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestPropertyMoreMemoryNeverHurts(t *testing.T) {
	// Doubling every device's memory can only grow the feasible set, so an
	// exact solver's objective would never worsen. Our solver's ε-cap grid
	// and local search admit small basin effects, so the check is
	// statistical over a fixed seed set: violations must be rare and
	// bounded (never large).
	violations := 0
	for seed := int64(1); seed <= 40; seed++ {
		base := randomSpec(seed)
		big := randomSpec(seed)
		for i := range big.Cluster.Devices {
			g := big.Cluster.Devices[i].GPU
			g.MemoryGB *= 2
			big.Cluster.Devices[i].GPU = g
		}
		rBase, errBase := Optimize(base, nil)
		if errBase != nil {
			continue // base infeasible: nothing to compare
		}
		rBig, errBig := Optimize(big, nil)
		if errBig != nil {
			t.Fatalf("seed %d: doubling memory made the instance infeasible", seed)
		}
		ratio := rBig.Eval.Objective / rBase.Eval.Objective
		if ratio > 1.15 {
			t.Errorf("seed %d: more memory worsened the objective %.1f%% — beyond discretization noise", seed, (ratio-1)*100)
		}
		if ratio > 1.02 {
			violations++
		}
	}
	if violations > 4 {
		t.Errorf("more-memory regressions in %d/40 instances — solver basin effects too common", violations)
	}
}
