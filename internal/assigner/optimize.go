package assigner

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hardware"
)

// Result bundles the best plan with its evaluation and solve metadata.
type Result struct {
	Plan     *Plan
	Eval     Evaluation
	Solve    time.Duration
	Explored int // (order, micro-batch) combinations tried
}

// defaultParallelism is the process-wide worker-pool fallback used when
// Spec.Parallelism is zero (the CLIs' -parallel flag installs it); 0 falls
// through to runtime.NumCPU().
var defaultParallelism atomic.Int32

// SetDefaultParallelism installs the process-wide fallback for
// Spec.Parallelism == 0. n <= 0 restores the runtime.NumCPU() default.
func SetDefaultParallelism(n int) {
	if n < 0 {
		n = 0
	}
	defaultParallelism.Store(int32(n))
}

// parallelism resolves the effective worker count for one Optimize call.
func (s *Spec) parallelism() int {
	if s.Parallelism > 0 {
		return s.Parallelism
	}
	if n := int(defaultParallelism.Load()); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// comboOutcome is the result of one (micro-batch, order) combination.
// plan == nil with err == nil means the combination is infeasible.
type comboOutcome struct {
	plan *Plan
	ev   *Evaluation
	err  error
}

// testComboFault, when non-nil, injects an error before solving the given
// canonical combination index — the test seam for the early-abort path.
// Production code never sets it.
var testComboFault func(idx int) error

// Optimize is Algorithm 1: enumerate candidate device orderings and
// (phase, micro-batch size) pairs in the pruned search space; for each,
// solve the inner bitwidth-assignment / layer-partition problem with the
// spec's Method; return the plan with the best exact objective.
//
// The scan runs on a bounded worker pool of Spec.Parallelism goroutines.
// Each prefill micro-batch's Tables are built once and shared read-only by
// every order-worker; results land in a slot indexed by the canonical
// combination index (micro-batch index × #orders + order index) and are
// reduced in that index order with the serial search's strict-improvement
// rule, so the winning plan — and any error reported — is byte-identical
// to a serial scan regardless of goroutine scheduling. Solver metrics
// (Spec.Obs) aggregate through the registry's own synchronization;
// counter totals are order-independent.
func Optimize(s *Spec, timer LayerTimer) (*Result, error) {
	start := time.Now() //llmpq:allow(simwallclock): measures the solver's own wall time for reporting; plan bytes never depend on it
	explored := 0
	fail := func(err error) (*Result, error) {
		//llmpq:allow(simwallclock): solver wall-time observation only; the failure itself is deterministic
		obsPlanFail(s.Obs, s.Method, time.Since(start).Seconds(), explored)
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return fail(err)
	}
	if timer == nil {
		timer = ProfilerTimer{}
	}
	orders := CandidateOrders(s.Cluster)
	mbps := s.prefillCandidates()

	// Build each micro-batch's cost tables once, up front; the inner
	// solvers only ever read them. The builds are independent (BuildTables
	// derives everything from the spec and the timer, which must be safe
	// for concurrent use — ProfilerTimer is stateless), so they run on the
	// same bounded pool the combination scan uses. Each result lands in
	// its own slot and errors are reported for the lowest micro-batch
	// index, so both the tables and any failure are identical to a serial
	// build.
	tables := make([]*Tables, len(mbps))
	tableErrs := make([]error, len(mbps))
	var tnext atomic.Int64
	var twg sync.WaitGroup
	builders := s.parallelism()
	if builders > len(mbps) {
		builders = len(mbps)
	}
	for w := 0; w < builders; w++ {
		twg.Add(1)
		go func() {
			defer twg.Done()
			for {
				i := int(tnext.Add(1)) - 1
				if i >= len(mbps) {
					return
				}
				tables[i], tableErrs[i] = BuildTables(s, timer, mbps[i])
			}
		}()
	}
	twg.Wait()
	for _, err := range tableErrs {
		if err != nil {
			return fail(err)
		}
	}

	// One benefit table serves every inner solve of this call (and, via
	// the cache, future calls): see benefitsFor. MethodILP never reads it.
	var bt *benefitTable
	if s.Method != MethodILP {
		var err error
		if bt, err = benefitsFor(s); err != nil {
			return fail(err)
		}
	}

	// Warm start: re-score the incumbent (if any, and if it is valid for
	// this spec) on this call's tables. Its exact objective becomes the
	// pruning bar for the scan below; combinations whose cheap lower
	// bound cannot beat it are skipped, with a post-barrier fallback that
	// keeps the result byte-identical to a cold solve (DESIGN.md §13).
	incObj := math.Inf(1)
	if s.Incumbent != nil {
		incObj = incumbentObjective(s, tables, mbps)
	}
	var minOmega float64
	if !math.IsInf(incObj, 1) {
		mo, err := minOmegaTotal(s)
		if err != nil {
			incObj = math.Inf(1) // no pruning; the cold path surfaces the error
		} else {
			minOmega = mo
		}
	}

	combos := len(mbps) * len(orders)
	results := make([]comboOutcome, combos)
	pruned := make([]bool, combos)
	workers := s.parallelism()
	if workers > combos {
		workers = combos
	}
	// Parallelism slots the outer scan leaves unused are lent to the
	// ε-cap sweeps inside solveStructured, so a narrow scan (one order,
	// one micro-batch — the common replan shape) still fills the budget.
	pool := newWorkPool(s.parallelism() - workers)
	comboBase := ""
	if s.Cache != nil {
		if timerKey, ok := timerCacheKey(timer); ok {
			comboBase = s.comboBaseKey(timerKey)
		}
	}
	solveCombo := func(idx int) (*Plan, *Evaluation, error) {
		t := tables[idx/len(orders)]
		order := orders[idx%len(orders)]
		if comboBase == "" {
			return solveInner(s, t, order, bt, pool)
		}
		return s.Cache.combo(comboKey(comboBase, t.PrefillMB, order), func() (*Plan, *Evaluation, error) {
			return solveInner(s, t, order, bt, pool)
		})
	}
	// Early abort (ROADMAP): a hard solver error cancels the context so
	// in-flight workers stop claiming new combinations instead of
	// finishing the scan. Determinism of the reported error survives
	// cancellation: the atomic counter hands out indices in increasing
	// order and workers only abort *between* combinations, so the claimed
	// set is always a prefix [0, next) that runs to completion before the
	// barrier — the canonical-order scan below still sees every index
	// below any erroring one, and reports the lowest.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				idx := int(next.Add(1)) - 1
				if idx >= combos {
					return
				}
				var plan *Plan
				var ev *Evaluation
				var err error
				if testComboFault != nil {
					err = testComboFault(idx)
				}
				if err == nil {
					if lbPrunes(tables[idx/len(orders)], orders[idx%len(orders)], incObj, minOmega) {
						pruned[idx] = true
					} else {
						plan, ev, err = solveCombo(idx)
					}
				}
				results[idx] = comboOutcome{plan: plan, ev: ev, err: err}
				if err != nil {
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if explored = int(next.Load()); explored > combos {
		explored = combos
	}

	// Deterministic reduction over the canonical combination order.
	var best *Plan
	var bestEv Evaluation
	reduce := func() error {
		best, bestEv = nil, Evaluation{}
		for _, r := range results {
			if r.err != nil {
				return r.err
			}
			if r.plan == nil {
				continue
			}
			if best == nil || r.ev.Objective < bestEv.Objective {
				best, bestEv = r.plan, *r.ev
			}
		}
		return nil
	}
	if err := reduce(); err != nil {
		return fail(err)
	}
	// Warm-start soundness check. If the un-pruned scan matched or beat
	// the incumbent, every pruned combination is certified strictly worse
	// than the winner (its lower bound exceeded the incumbent's
	// objective), so the reduction above is already the cold answer —
	// including ties, which all sit in the un-pruned set. Otherwise the
	// incumbent's bar was never met (the inner solvers are ε-grid
	// heuristics and may score worse than an externally supplied plan):
	// solve the pruned combinations after all and re-reduce, which is
	// exactly the cold scan.
	if best == nil || bestEv.Objective > incObj {
		var rest []int
		for idx, p := range pruned {
			if p {
				rest = append(rest, idx)
			}
		}
		if len(rest) > 0 {
			var rnext atomic.Int64
			var rwg sync.WaitGroup
			rworkers := workers
			if rworkers > len(rest) {
				rworkers = len(rest)
			}
			for w := 0; w < rworkers; w++ {
				rwg.Add(1)
				go func() {
					defer rwg.Done()
					for {
						i := int(rnext.Add(1)) - 1
						if i >= len(rest) {
							return
						}
						idx := rest[i]
						plan, ev, err := solveCombo(idx)
						results[idx] = comboOutcome{plan: plan, ev: ev, err: err}
					}
				}()
			}
			rwg.Wait()
			if err := reduce(); err != nil {
				return fail(err)
			}
		}
	}
	if best == nil {
		return fail(fmt.Errorf("assigner: no feasible plan for %s on %s (method %s): even the lowest precisions exceed device memory",
			s.Cfg.Name, s.Cluster.Name, s.Method))
	}
	best.Finalize(bestEv)
	solve := time.Since(start) //llmpq:allow(simwallclock): reported solve duration; the chosen plan is independent of it
	obsPlanDone(s.Obs, s.Method, solve.Seconds(), explored)
	return &Result{Plan: best, Eval: bestEv, Solve: solve, Explored: explored}, nil
}

func solveInner(s *Spec, t *Tables, order []int, bt *benefitTable, pool *workPool) (*Plan, *Evaluation, error) {
	switch s.Method {
	case MethodDP:
		return solveStructured(t, order, bt, pool)
	case MethodILP:
		plan, err := solveILP(t, order, s.TimeLimit)
		if err != nil || plan == nil {
			return nil, nil, err
		}
		return evaluated(t, plan)
	case MethodAdabits:
		plan, err := solveAdabits(t, order, bt)
		if err != nil || plan == nil {
			return nil, nil, err
		}
		return evaluated(t, plan)
	case MethodHeuristic:
		seed, err := solveAdabits(t, order, bt)
		if err != nil || seed == nil {
			return nil, nil, err
		}
		plan, ev, err := bitwidthTransfer(t, seed)
		if err != nil {
			return nil, nil, err
		}
		if !ev.Feasible {
			return nil, nil, nil
		}
		return plan, ev, nil
	default:
		return nil, nil, fmt.Errorf("assigner: unknown method %v", s.Method)
	}
}

func evaluated(t *Tables, p *Plan) (*Plan, *Evaluation, error) {
	ev, err := Evaluate(t, p)
	if err != nil {
		return nil, nil, err
	}
	if !ev.Feasible {
		return nil, nil, nil
	}
	return p, &ev, nil
}

// CandidateOrders enumerates device orderings as permutations of same-type
// blocks (devices of one GPU type are interchangeable, so only the relative
// order of types matters — the pruning the paper's GetDeviceOrder relies
// on).
func CandidateOrders(c hardware.Cluster) [][]int {
	var typeNames []string
	blocks := map[string][]int{}
	for i, d := range c.Devices {
		name := d.GPU.Name
		if _, seen := blocks[name]; !seen {
			typeNames = append(typeNames, name)
		}
		blocks[name] = append(blocks[name], i)
	}
	perms := permutations(len(typeNames))
	var out [][]int
	for _, pm := range perms {
		var order []int
		for _, ti := range pm {
			order = append(order, blocks[typeNames[ti]]...)
		}
		out = append(out, order)
	}
	return out
}

func permutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	var rec func(cur []int, used []bool)
	rec = func(cur []int, used []bool) {
		if len(cur) == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			rec(append(cur, i), used)
			used[i] = false
		}
	}
	rec(nil, make([]bool, n))
	return out
}
