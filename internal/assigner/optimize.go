package assigner

import (
	"fmt"
	"time"

	"repro/internal/hardware"
)

// Result bundles the best plan with its evaluation and solve metadata.
type Result struct {
	Plan     *Plan
	Eval     Evaluation
	Solve    time.Duration
	Explored int // (order, micro-batch) combinations tried
}

// Optimize is Algorithm 1: enumerate candidate device orderings and
// (phase, micro-batch size) pairs in the pruned search space; for each,
// solve the inner bitwidth-assignment / layer-partition problem with the
// spec's Method; return the plan with the best exact objective.
func Optimize(s *Spec, timer LayerTimer) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if timer == nil {
		timer = ProfilerTimer{}
	}
	start := time.Now()
	orders := CandidateOrders(s.Cluster)
	var best *Plan
	var bestEv Evaluation
	explored := 0
	for _, mbp := range s.prefillCandidates() {
		t, err := BuildTables(s, timer, mbp)
		if err != nil {
			return nil, err
		}
		for _, order := range orders {
			explored++
			plan, ev, err := solveInner(s, t, order)
			if err != nil {
				return nil, err
			}
			if plan == nil {
				continue
			}
			if best == nil || ev.Objective < bestEv.Objective {
				best, bestEv = plan, *ev
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("assigner: no feasible plan for %s on %s (method %s): even the lowest precisions exceed device memory",
			s.Cfg.Name, s.Cluster.Name, s.Method)
	}
	best.Finalize(bestEv)
	solve := time.Since(start)
	obsPlanDone(s.Obs, s.Method, solve.Seconds(), explored)
	return &Result{Plan: best, Eval: bestEv, Solve: solve, Explored: explored}, nil
}

func solveInner(s *Spec, t *Tables, order []int) (*Plan, *Evaluation, error) {
	switch s.Method {
	case MethodDP:
		return solveStructured(t, order)
	case MethodILP:
		plan, err := solveILP(t, order, s.TimeLimit)
		if err != nil || plan == nil {
			return nil, nil, err
		}
		return evaluated(t, plan)
	case MethodAdabits:
		plan, err := solveAdabits(t, order)
		if err != nil || plan == nil {
			return nil, nil, err
		}
		return evaluated(t, plan)
	case MethodHeuristic:
		seed, err := solveAdabits(t, order)
		if err != nil || seed == nil {
			return nil, nil, err
		}
		plan, ev, err := bitwidthTransfer(t, seed)
		if err != nil {
			return nil, nil, err
		}
		if !ev.Feasible {
			return nil, nil, nil
		}
		return plan, ev, nil
	default:
		return nil, nil, fmt.Errorf("assigner: unknown method %v", s.Method)
	}
}

func evaluated(t *Tables, p *Plan) (*Plan, *Evaluation, error) {
	ev, err := Evaluate(t, p)
	if err != nil {
		return nil, nil, err
	}
	if !ev.Feasible {
		return nil, nil, nil
	}
	return p, &ev, nil
}

// CandidateOrders enumerates device orderings as permutations of same-type
// blocks (devices of one GPU type are interchangeable, so only the relative
// order of types matters — the pruning the paper's GetDeviceOrder relies
// on).
func CandidateOrders(c hardware.Cluster) [][]int {
	var typeNames []string
	blocks := map[string][]int{}
	for i, d := range c.Devices {
		name := d.GPU.Name
		if _, seen := blocks[name]; !seen {
			typeNames = append(typeNames, name)
		}
		blocks[name] = append(blocks[name], i)
	}
	perms := permutations(len(typeNames))
	var out [][]int
	for _, pm := range perms {
		var order []int
		for _, ti := range pm {
			order = append(order, blocks[typeNames[ti]]...)
		}
		out = append(out, order)
	}
	return out
}

func permutations(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	var rec func(cur []int, used []bool)
	rec = func(cur []int, used []bool) {
		if len(cur) == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			rec(append(cur, i), used)
			used[i] = false
		}
	}
	rec(nil, make([]bool, n))
	return out
}
