package assigner

import (
	"strings"
	"testing"
)

func TestDescribe(t *testing.T) {
	s := tinySpec(MethodDP, 1, 2.2, 1.4)
	res, err := Optimize(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Plan.Describe(s, &res.Eval)
	for _, want := range []string{"tiny-test", "stage 0", "stage 1", "tok/s", "mem "} {
		if !strings.Contains(out, want) {
			t.Errorf("describe output missing %q:\n%s", want, out)
		}
	}
	// Without an evaluation: no memory/latency lines.
	bare := res.Plan.Describe(s, nil)
	if strings.Contains(bare, "tok/s") {
		t.Error("bare describe should omit evaluation details")
	}
	if !strings.Contains(bare, "groups [") {
		t.Errorf("bare describe missing stage ranges:\n%s", bare)
	}
}

func TestBitHist(t *testing.T) {
	got := bitHist([]int{8, 8, 16, 8})
	if got != "1x16b 3x8b" {
		t.Errorf("bitHist = %q", got)
	}
}
