package assigner

import "math"

// Warm-start pruning (DESIGN.md §13).
//
// A replan rarely needs the full (order × micro-batch) scan: the caller
// already holds a feasible plan for the same spec — the surviving
// assignment projected onto the reduced cluster — and most combinations
// provably cannot beat it. comboLowerBound certifies that: it is a cheap
// lower bound on the exact Evaluate objective of EVERY plan an inner
// solver could return for one (tables, order) combination, feasible or
// not. A combination is skipped only when its bound strictly exceeds the
// incumbent's exact objective (with a relative slack absorbing float
// noise), and Optimize falls back to solving the skipped set whenever the
// un-pruned scan fails to match the incumbent — so the scan's winner is
// always byte-identical to the cold solve's.

// lbFloatSlack is the relative safety margin on the pruning comparison:
// comboLowerBound and Evaluate accumulate the same non-negative terms in
// different orders, so their float results can differ by a few ulps. The
// bound must only prune when it exceeds the incumbent by more than that
// noise; 1e-9 relative is ~6 orders of magnitude above the worst drift
// these sums can accumulate and ~6 below any real objective gap.
const lbFloatSlack = 1e-9

// lbPrunes reports whether the (tables, order) combination is certified
// to be unable to beat the incumbent objective. Infinite incObj (no
// usable incumbent) never prunes.
func lbPrunes(t *Tables, order []int, incObj, minOmega float64) bool {
	if math.IsInf(incObj, 1) {
		return false
	}
	return comboLowerBound(t, order, minOmega) > incObj*(1+lbFloatSlack)
}

// comboLowerBound bounds, from below, the objective of every plan for
// this combination, by relaxing the partition: each stage runs its
// position-dependent constants plus at least one group at the device's
// fastest bitwidth, the remaining L−n groups each cost at least the
// cluster-wide fastest group time, and the pipeline premium charges the
// slowest certainly-incurred stage. The quality term is bounded by the
// per-group minimum ω (see minOmegaTotal). Every term under-approximates
// its Evaluate counterpart, so the bound is sound for any boundaries and
// any bit assignment.
func comboLowerBound(t *Tables, order []int, minOmega float64) float64 {
	s := t.Spec
	n := len(order)
	L := s.layerGroups()
	minPreAll, minDecAll := math.Inf(1), math.Inf(1)
	var sumPre, sumDec, maxPre, maxDec float64
	for j, d := range order {
		cPre, cDec, _ := stageConst(t, order, j)
		mp, md := math.Inf(1), math.Inf(1)
		for bi := range s.Bits {
			if t.TPre[d][bi] < mp {
				mp = t.TPre[d][bi]
			}
			if t.TDec[d][bi] < md {
				md = t.TDec[d][bi]
			}
		}
		sumPre += cPre + mp
		sumDec += cDec + md
		if cPre+mp > maxPre {
			maxPre = cPre + mp
		}
		if cDec+md > maxDec {
			maxDec = cDec + md
		}
		if mp < minPreAll {
			minPreAll = mp
		}
		if md < minDecAll {
			minDecAll = md
		}
	}
	sumPre += float64(L-n) * minPreAll
	sumDec += float64(L-n) * minDecAll
	kp := (s.Work.GlobalBatch + t.PrefillMB - 1) / t.PrefillMB
	kd := (s.Work.GlobalBatch + t.DecodeMB - 1) / t.DecodeMB
	lb := sumPre + float64(kp-1)*maxPre
	rounds := (s.Work.Generate - 1) * kd
	if rounds > 0 {
		lb += sumDec + float64(rounds-1)*maxDec
	}
	return lb + s.Theta*minOmega
}

// minOmegaTotal is Σ_l min_{b ∈ Bits} ω(l, b): the smallest quality
// penalty any bit assignment can reach. With Theta ≥ 0 (Validate) this
// under-approximates every plan's θ·OmegaSum term.
func minOmegaTotal(s *Spec) (float64, error) {
	var total float64
	for l := 0; l < s.layerGroups(); l++ {
		m := math.Inf(1)
		for _, bits := range s.Bits {
			w, err := s.Omega.At(l, bits)
			if err != nil {
				return 0, err
			}
			if w < m {
				m = w
			}
		}
		total += m
	}
	return total, nil
}

// incumbentObjective re-scores Spec.Incumbent on this call's tables and
// returns its exact objective, or +Inf when the incumbent is unusable
// for this spec (wrong shape, micro-batch not a candidate, stale decode
// micro-batch, infeasible, or any evaluation error) — pruning then
// simply never fires and the scan is the cold scan.
func incumbentObjective(s *Spec, tables []*Tables, mbps []int) float64 {
	inc := s.Incumbent
	for i, mb := range mbps {
		if mb != inc.PrefillMB {
			continue
		}
		if inc.DecodeMB != tables[i].DecodeMB {
			return math.Inf(1)
		}
		ev, err := Evaluate(tables[i], inc)
		if err != nil || !ev.Feasible {
			return math.Inf(1)
		}
		return ev.Objective
	}
	return math.Inf(1)
}
