package assigner

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/hardware"
	"repro/internal/indicator"
	"repro/internal/obs"
)

// cacheSpec is the staleness-audit base: tinySpec with enough memory that
// every mutation below stays feasible.
func cacheSpec() *Spec {
	return tinySpec(MethodDP, 0.1, 3, 3)
}

// TestSolveCacheRepeatSolveAddsNoMisses: re-solving an unchanged spec
// through a populated cache must hit on every lookup — zero new misses —
// and return the identical plan.
func TestSolveCacheRepeatSolveAddsNoMisses(t *testing.T) {
	s := cacheSpec()
	s.Cache = NewSolveCache()
	first, err := Optimize(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	st1 := s.Cache.Stats()
	if st1.Misses == 0 {
		t.Fatal("first solve through an empty cache counted no misses")
	}
	second, err := Optimize(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	st2 := s.Cache.Stats()
	if st2.Misses != st1.Misses {
		t.Errorf("unchanged re-solve added %d misses, want 0", st2.Misses-st1.Misses)
	}
	if st2.Hits <= st1.Hits {
		t.Errorf("unchanged re-solve added no hits (%d -> %d)", st1.Hits, st2.Hits)
	}
	if !reflect.DeepEqual(first.Plan, second.Plan) {
		t.Errorf("cached re-solve diverged:\nfirst:  %+v\nsecond: %+v", first.Plan, second.Plan)
	}
	if !reflect.DeepEqual(first.Eval, second.Eval) {
		t.Errorf("cached re-solve evaluation diverged")
	}
}

// TestSolveCacheStaleness mutates each spec field that participates in a
// cache key and asserts two things: the lookup misses (no stale entry is
// served) and the warm result equals a cold solve of the mutated spec.
func TestSolveCacheStaleness(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(s *Spec)
	}{
		{"work-prompt", func(s *Spec) { s.Work.Prompt += 64 }},
		{"work-global-batch", func(s *Spec) { s.Work.GlobalBatch = 16 }},
		{"work-generate", func(s *Spec) { s.Work.Generate += 16 }},
		{"theta", func(s *Spec) { s.Theta *= 2 }},
		{"omega-value", func(s *Spec) { s.Omega.Values[0][0] += 0.5 }},
		{"bits-subset", func(s *Spec) {
			s.Bits = []int{8, 16}
			s.Omega = subsetOmega(s.Omega, []int{8, 16})
		}},
		{"kv-bits", func(s *Spec) { s.KVBits = 8 }},
		{"memory-reserve", func(s *Spec) { s.MemoryReserve = 0.10 }},
		{"model-hidden", func(s *Spec) { s.Cfg.Hidden += 512 }},
		{"gpu-compute-eff", func(s *Spec) {
			d := &s.Cluster.Devices[0]
			m := make(map[int]float64, len(d.GPU.ComputeEff))
			for k, v := range d.GPU.ComputeEff {
				m[k] = v
			}
			m[16] = 0.9
			d.GPU.ComputeEff = m
		}},
		{"gpu-memory", func(s *Spec) { s.Cluster.Devices[1].GPU.MemoryGB = 2.5 }},
		{"device-loss", func(s *Spec) {
			s.Cluster.Devices = s.Cluster.Devices[:1]
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			seed := cacheSpec()
			seed.Cache = NewSolveCache()
			if _, err := Optimize(seed, nil); err != nil {
				t.Fatal(err)
			}
			m0 := seed.Cache.Stats().Misses

			cold := cacheSpec()
			tc.mutate(cold)
			coldRes, coldErr := Optimize(cold, nil)

			warm := cacheSpec()
			tc.mutate(warm)
			warm.Cache = seed.Cache
			warmRes, warmErr := Optimize(warm, nil)

			if (coldErr == nil) != (warmErr == nil) {
				t.Fatalf("cold err %v, warm err %v — cache changed feasibility", coldErr, warmErr)
			}
			if coldErr != nil {
				return
			}
			if !reflect.DeepEqual(coldRes.Plan, warmRes.Plan) {
				t.Errorf("stale cache entry served:\ncold: %+v\nwarm: %+v", coldRes.Plan, warmRes.Plan)
			}
			if !reflect.DeepEqual(coldRes.Eval, warmRes.Eval) {
				t.Errorf("warm evaluation diverged from cold")
			}
			if m1 := warm.Cache.Stats().Misses; m1 <= m0 {
				t.Errorf("mutation %q never missed the cache (misses %d -> %d): a key is missing a field",
					tc.name, m0, m1)
			}
		})
	}
}

// TestSolveCacheExportDelta: Export flushes only the delta since the last
// Export, so repeated flushes across replans never double-count.
func TestSolveCacheExportDelta(t *testing.T) {
	s := cacheSpec()
	s.Cache = NewSolveCache()
	if _, err := Optimize(s, nil); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.Cache.Export(reg)
	st := s.Cache.Stats()
	if got := reg.Counter(metricSolverCacheMisses).Value(); got != float64(st.Misses) {
		t.Errorf("misses counter %v after first export, want %d", got, st.Misses)
	}
	if got := reg.Counter(metricSolverCacheHits).Value(); got != float64(st.Hits) {
		t.Errorf("hits counter %v after first export, want %d", got, st.Hits)
	}

	if _, err := Optimize(s, nil); err != nil {
		t.Fatal(err)
	}
	s.Cache.Export(reg)
	st = s.Cache.Stats()
	if got := reg.Counter(metricSolverCacheMisses).Value(); got != float64(st.Misses) {
		t.Errorf("misses counter %v after second export, want %d (delta double-counted?)", got, st.Misses)
	}
	if got := reg.Counter(metricSolverCacheHits).Value(); got != float64(st.Hits) {
		t.Errorf("hits counter %v after second export, want %d", got, st.Hits)
	}
	// Exporting with nothing new must not move the counters.
	before := reg.Counter(metricSolverCacheMisses).Value()
	s.Cache.Export(reg)
	if got := reg.Counter(metricSolverCacheMisses).Value(); got != before {
		t.Errorf("no-op export moved the misses counter %v -> %v", before, got)
	}
	// Nil cache and nil registry are no-ops, not panics.
	var nilCache *SolveCache
	nilCache.Export(reg)
	s.Cache.Export(nil)
}

// TestMaxDeviceTypesRejected: a cluster mixing more GPU types than
// MaxDeviceTypes must fail validation with a clear error instead of
// disappearing into a factorial order enumeration.
func TestMaxDeviceTypesRejected(t *testing.T) {
	s := tinySpec(MethodDP, 0.1, 3, 3)
	// Large model so 7 devices still satisfy devices <= layer groups.
	s.Cfg.Layers = 24
	s.Omega = subsetOmega(indicator.Synthetic(s.Cfg, []int{3, 4, 8, 16}, 7), []int{4, 8, 16})
	s.Cluster.Devices = nil
	for i := 0; i < MaxDeviceTypes+1; i++ {
		g := tinyGPU("gpu-type", 3, 50, 600)
		g.Name = g.Name + string(rune('a'+i))
		s.Cluster.Devices = append(s.Cluster.Devices, hardware.Device{ID: i, GPU: g, Node: i})
	}
	err := s.Validate()
	if err == nil {
		t.Fatalf("%d GPU types passed validation, max is %d", MaxDeviceTypes+1, MaxDeviceTypes)
	}
	if got := err.Error(); !strings.Contains(got, "GPU types") || !strings.Contains(got, "factorial") {
		t.Errorf("error does not explain the bound: %v", err)
	}
	if _, err := Optimize(s, nil); err == nil {
		t.Error("Optimize accepted the over-mixed cluster")
	}
	// Exactly MaxDeviceTypes types (on enough layer groups) still validates.
	s.Cluster.Devices = s.Cluster.Devices[:MaxDeviceTypes]
	if err := s.Validate(); err != nil {
		t.Errorf("%d GPU types must validate: %v", MaxDeviceTypes, err)
	}
}
