package assigner_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/assigner"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/profiler"
)

// TestParallelSearchDeterminism runs the same Table-3 instances at worker
// counts 1, 4 and 8 and requires deeply equal plans and evaluations: the
// canonical-combination-index reduction must make the winner independent
// of goroutine scheduling.
func TestParallelSearchDeterminism(t *testing.T) {
	cases := []goldenCase{
		{"cluster3-opt-13b", 3, "opt-13b", 4},
		{"cluster9-opt-13b", 9, "opt-13b", 4},
	}
	for _, gc := range cases {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			var base *assigner.Result
			for _, workers := range []int{1, 4, 8} {
				s := goldenSpec(t, gc)
				s.Parallelism = workers
				res, err := assigner.Optimize(s, nil)
				if err != nil {
					t.Fatalf("parallelism %d: %v", workers, err)
				}
				if base == nil {
					base = res
					continue
				}
				if !reflect.DeepEqual(base.Plan, res.Plan) {
					t.Errorf("parallelism %d plan diverged:\nserial:   %+v\nparallel: %+v", workers, base.Plan, res.Plan)
				}
				if !reflect.DeepEqual(base.Eval, res.Eval) {
					t.Errorf("parallelism %d evaluation diverged:\nserial:   %+v\nparallel: %+v", workers, base.Eval, res.Eval)
				}
				if base.Explored != res.Explored {
					t.Errorf("parallelism %d explored %d combinations, serial %d", workers, res.Explored, base.Explored)
				}
			}
		})
	}
}

// prefillFaultTimer delegates to the roofline timer but fails every
// prefill measurement whose micro-batch is in bad — so several of the
// concurrently built per-micro-batch Tables error at once, each with a
// batch-specific message.
type prefillFaultTimer struct{ bad map[int]bool }

func (ft prefillFaultTimer) Layer(gpu hardware.GPU, cfg model.Config, w profiler.Workload) (float64, error) {
	if w.Prefill && ft.bad[w.Batch] {
		return 0, fmt.Errorf("profiler down for prefill batch %d", w.Batch)
	}
	return assigner.ProfilerTimer{}.Layer(gpu, cfg, w)
}

// TestParallelTableBuildErrorDeterminism: when multiple micro-batch table
// builds fail, Optimize must report the same error regardless of worker
// count — the lowest micro-batch index, exactly as a serial build would.
func TestParallelTableBuildErrorDeterminism(t *testing.T) {
	timer := prefillFaultTimer{bad: map[int]bool{1: true, 2: true, 4: true, 8: true}}
	var want string
	for _, workers := range []int{1, 4, 8} {
		s := goldenSpec(t, goldenCase{"cluster3-opt-13b", 3, "opt-13b", 4})
		s.Parallelism = workers
		_, err := assigner.Optimize(s, timer)
		if err == nil {
			t.Fatalf("parallelism %d: poisoned timer must fail the build", workers)
		}
		if want == "" {
			want = err.Error()
			continue
		}
		if err.Error() != want {
			t.Errorf("parallelism %d reported %q, serial reported %q", workers, err, want)
		}
	}
}

// BenchmarkOptimize compares the planner at different worker counts on a
// Table-3 cluster. With GOMAXPROCS > 1 the parallel rows show the
// speedup; on a single-core host they bound the pool's overhead instead.
func BenchmarkOptimize(b *testing.B) {
	gc := goldenCase{"cluster3-opt-13b", 3, "opt-13b", 4}
	for _, workers := range []int{1, 4, 8} {
		b.Run(map[int]string{1: "parallel=1", 4: "parallel=4", 8: "parallel=8"}[workers], func(b *testing.B) {
			s := goldenSpec(b, gc)
			s.Parallelism = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := assigner.Optimize(s, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
