package assigner_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/assigner"
	"repro/internal/core/floats"
	"repro/internal/hardware"
	"repro/internal/indicator"
	"repro/internal/model"
)

var updateGolden = flag.Bool("update", false, "rewrite golden plan fixtures")

// goldenEps bounds objective drift across platforms: the solvers are pure
// deterministic float64 arithmetic, so anything beyond rounding noise is a
// behavior change.
const goldenEps = 1e-6

// goldenPlan is the serialized fixture: the plan decisions plus the exact
// objective decomposition.
type goldenPlan struct {
	Cluster    string  `json:"cluster"`
	Model      string  `json:"model"`
	Order      []int   `json:"order"`
	Boundaries []int   `json:"boundaries"`
	GroupBits  []int   `json:"group_bits"`
	PrefillMB  int     `json:"prefill_mb"`
	DecodeMB   int     `json:"decode_mb"`
	Objective  float64 `json:"objective"`
	LatencySec float64 `json:"latency_sec"`
	OmegaSum   float64 `json:"omega_sum"`
}

type goldenCase struct {
	name      string
	clusterID int
	model     string
	group     int
}

// Three Table-3 clusters × two models each; Workload and ω seed are fixed
// so any diff is a solver change, not an input change.
func goldenCases() []goldenCase {
	return []goldenCase{
		{"cluster3-opt-30b", 3, "opt-30b", 4},
		{"cluster3-opt-13b", 3, "opt-13b", 4},
		{"cluster9-opt-30b", 9, "opt-30b", 4},
		{"cluster9-opt-13b", 9, "opt-13b", 4},
		{"cluster10-opt-66b", 10, "opt-66b", 8},
		{"cluster10-opt-30b", 10, "opt-30b", 8},
	}
}

func goldenSpec(t testing.TB, gc goldenCase) *assigner.Spec {
	t.Helper()
	cl, err := hardware.ClusterByID(gc.clusterID)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := model.ByName(gc.model)
	if err != nil {
		t.Fatal(err)
	}
	bits := []int{3, 4, 8, 16}
	omega := assigner.GroupOmega(indicator.Synthetic(cfg, bits, 42), gc.group)
	return &assigner.Spec{
		Cfg:     cfg,
		Cluster: cl,
		Work:    assigner.Workload{GlobalBatch: 32, Prompt: 512, Generate: 80},
		Bits:    bits,
		Omega:   omega,
		Theta:   0.1,
		Group:   gc.group,
		Method:  assigner.MethodDP,
	}
}

func solveGolden(t *testing.T, gc goldenCase) goldenPlan {
	t.Helper()
	res, err := assigner.Optimize(goldenSpec(t, gc), nil)
	if err != nil {
		t.Fatalf("%s: %v", gc.name, err)
	}
	p := res.Plan
	return goldenPlan{
		Cluster:    fmt.Sprintf("cluster-%d", gc.clusterID),
		Model:      gc.model,
		Order:      p.Order,
		Boundaries: p.Boundaries,
		GroupBits:  p.GroupBits,
		PrefillMB:  p.PrefillMB,
		DecodeMB:   p.DecodeMB,
		Objective:  p.Objective,
		LatencySec: p.LatencySec,
		OmegaSum:   p.OmegaSum,
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

// TestGoldenPlans re-solves each fixture's instance and diffs the plan
// against the checked-in result. Run with -update to rewrite fixtures
// after an intentional solver change.
func TestGoldenPlans(t *testing.T) {
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			got := solveGolden(t, gc)
			path := goldenPath(gc.name)
			if *updateGolden {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", path)
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture %s (run with -update to create): %v", path, err)
			}
			var want goldenPlan
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("corrupt fixture %s: %v", path, err)
			}
			if diff := diffGolden(want, got); diff != "" {
				t.Errorf("plan for %s diverged from %s:\n%s\n(if the solver change is intentional, refresh with: go test ./internal/assigner/ -run TestGoldenPlans -update)",
					gc.name, path, diff)
			}
		})
	}
}

// diffGolden reports mismatches field by field so a regression reads as a
// story, not a JSON blob.
func diffGolden(want, got goldenPlan) string {
	var b strings.Builder
	intSlice := func(field string, w, g []int) {
		if len(w) != len(g) {
			fmt.Fprintf(&b, "  %s: length %d -> %d (%v -> %v)\n", field, len(w), len(g), w, g)
			return
		}
		for i := range w {
			if w[i] != g[i] {
				fmt.Fprintf(&b, "  %s: %v -> %v (first diff at index %d: %d -> %d)\n", field, w, g, i, w[i], g[i])
				return
			}
		}
	}
	intSlice("order", want.Order, got.Order)
	intSlice("boundaries", want.Boundaries, got.Boundaries)
	intSlice("group_bits", want.GroupBits, got.GroupBits)
	if want.PrefillMB != got.PrefillMB {
		fmt.Fprintf(&b, "  prefill_mb: %d -> %d\n", want.PrefillMB, got.PrefillMB)
	}
	if want.DecodeMB != got.DecodeMB {
		fmt.Fprintf(&b, "  decode_mb: %d -> %d\n", want.DecodeMB, got.DecodeMB)
	}
	flt := func(field string, w, g float64) {
		if !floats.EqTol(w, g, goldenEps) {
			fmt.Fprintf(&b, "  %s: %.9f -> %.9f (|Δ|=%.3g > %.0e)\n", field, w, g, g-w, goldenEps)
		}
	}
	flt("objective", want.Objective, got.Objective)
	flt("latency_sec", want.LatencySec, got.LatencySec)
	flt("omega_sum", want.OmegaSum, got.OmegaSum)
	return b.String()
}

// TestGoldenDiffIsLoud guards the guard: a perturbed plan must produce a
// non-empty, field-naming diff.
func TestGoldenDiffIsLoud(t *testing.T) {
	base := goldenPlan{
		Order: []int{0, 1}, Boundaries: []int{0, 4, 8}, GroupBits: []int{8, 8, 16, 16, 8, 8, 4, 4},
		PrefillMB: 8, DecodeMB: 16, Objective: 12.5, LatencySec: 11.5, OmegaSum: 10,
	}
	perturbed := base
	perturbed.GroupBits = append([]int(nil), base.GroupBits...)
	perturbed.GroupBits[2] = 4
	perturbed.Objective = base.Objective + 1e-3
	diff := diffGolden(base, perturbed)
	if diff == "" {
		t.Fatal("perturbed plan produced an empty diff")
	}
	for _, want := range []string{"group_bits", "objective"} {
		if !strings.Contains(diff, want) {
			t.Errorf("diff does not name %q:\n%s", want, diff)
		}
	}
	if diffGolden(base, base) != "" {
		t.Errorf("identical plans produced a diff: %s", diffGolden(base, base))
	}
}
