package assigner

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// The structured DP solver (DESIGN.md §5.1).
//
// Because every decoder layer of an LLM has identical shape, a stage's
// execution time and memory depend only on *how many* of its groups use
// each bitwidth — not on which ones. Sensitivity ω varies per group, so
// once per-bit counts are fixed, giving the higher precision to the most
// sensitive groups in the stage's range is optimal (exchange argument).
//
// Stages are restricted to at most two distinct precisions. This mirrors
// the mixtures the paper observes in practice (e.g. INT8+FP16 when memory
// remains after uniform INT8, §2.4) and is verified against the full MILP
// on small instances in tests.
//
// The pipeline-max terms ((k_p−1)·max_j t_pre,j etc.) are handled by an
// ε-constraint scan: the DP minimizes the additive objective subject to
// per-stage time caps, and the caps are swept over a grid derived from the
// unconstrained solution; every candidate plan is re-scored exactly with
// Evaluate and the true best kept.

// infCost is the shared infeasibility sentinel: the initial value of DP
// cells and the "no cap" ε-scan time cap. It sits far enough below
// math.MaxFloat64 that saturating arithmetic (satAdd) can absorb real
// stage costs without overflowing to +Inf, and far above any finite
// objective the cost tables can produce, so a sentinel can never alias a
// feasible plan's value. Every comparison against it uses >=.
const infCost = math.MaxFloat64 / 4

// satAdd adds two non-negative costs, saturating at infCost: once either
// operand is the sentinel (or the sum would reach it), the result is
// exactly infCost and stays recognizable as infeasible.
func satAdd(a, b float64) float64 {
	if sum := a + b; sum < infCost {
		return sum
	}
	return infCost
}

// StageConstants exposes the position-dependent stage constants to other
// planners (the baselines build their own partitions over the same cost
// tables).
func StageConstants(t *Tables, order []int, j int) (pre, dec, mem float64) {
	return stageConst(t, order, j)
}

// stageConst returns the position-dependent constants of stage j under a
// device order: extra prefill/decode time (embedding, comm hops) and extra
// memory (embedding table, LM head, temporaries).
func stageConst(t *Tables, order []int, j int) (pre, dec, mem float64) {
	n := len(order)
	d := order[j]
	if j == 0 {
		pre += t.EmbedPre
		dec += t.EmbedDec
		mem += t.EmbedMem
	}
	if j == n-1 {
		mem += t.HeadMem
		if n > 1 {
			pre += t.CommDec[d][order[0]]
			dec += t.CommDec[d][order[0]]
		}
	}
	if j < n-1 {
		pre += t.CommPre[d][order[j+1]]
		dec += t.CommDec[d][order[j+1]]
	}
	mem += t.TempMem
	return pre, dec, mem
}

// pairOption is one stage precision mixture: cntB groups at Bits[biB]
// (higher precision), the remaining groups at Bits[biA].
type pairOption struct {
	biA, biB int
	cntB     int
}

// benefitTable precomputes, for each bit pair and each range start, the
// ω savings of upgrading groups from bits A to bits B, sorted descending,
// as prefix sums. benefit[pair][lo] covers ranges starting at lo.
type benefitTable struct {
	pairs [][2]int // index pairs (biA, biB), biA < biB by index
	// base[biA][lo] = prefix sums of ω(l, bitsA): baseSum(lo,hi) fast.
	base [][]float64
	// prefix[pi][lo][hi-lo]: sorted-benefit prefix sums for range [lo,hi).
	prefix [][][]float64
}

func buildBenefits(s *Spec, kmax int) (*benefitTable, error) {
	nb := len(s.Bits)
	L := s.layerGroups()
	bt := &benefitTable{}
	for a := 0; a < nb; a++ {
		for b := a + 1; b < nb; b++ {
			bt.pairs = append(bt.pairs, [2]int{a, b})
		}
	}
	bt.base = make([][]float64, nb)
	for bi, bits := range s.Bits {
		ps := make([]float64, L+1)
		for l := 0; l < L; l++ {
			w, err := s.Omega.At(l, bits)
			if err != nil {
				return nil, err
			}
			ps[l+1] = ps[l] + w
		}
		bt.base[bi] = ps
	}
	bt.prefix = make([][][]float64, len(bt.pairs))
	for pi, pr := range bt.pairs {
		bt.prefix[pi] = make([][]float64, L)
		bitsA, bitsB := s.Bits[pr[0]], s.Bits[pr[1]]
		for lo := 0; lo < L; lo++ {
			hiMax := lo + kmax
			if hiMax > L {
				hiMax = L
			}
			benefits := make([]float64, 0, hiMax-lo)
			for l := lo; l < hiMax; l++ {
				wa, err := s.Omega.At(l, bitsA)
				if err != nil {
					return nil, err
				}
				wb, err := s.Omega.At(l, bitsB)
				if err != nil {
					return nil, err
				}
				benefits = append(benefits, wa-wb)
			}
			// For each sub-range [lo,hi) we need its own sorted prefix; we
			// store per (lo, k) the prefix sums of the k largest benefits
			// among the first k entries. Computing per k by re-sorting is
			// O(k² log k) per lo; keep k small via kmax.
			prefixes := make([][]float64, hiMax-lo+1)
			for k := 1; k <= hiMax-lo; k++ {
				sub := append([]float64(nil), benefits[:k]...)
				sort.Sort(sort.Reverse(sort.Float64Slice(sub)))
				ps := make([]float64, k+1)
				for i, v := range sub {
					ps[i+1] = ps[i] + v
				}
				prefixes[k] = ps
			}
			bt.prefix[pi][lo] = flatten(prefixes)
		}
	}
	return bt, nil
}

// flatten packs per-k prefix arrays into one slice with offsets k(k+1)/2.
func flatten(prefixes [][]float64) []float64 {
	var out []float64
	for k := 1; k < len(prefixes); k++ {
		out = append(out, prefixes[k]...)
	}
	return out
}

// omegaFor returns the minimum ω of range [lo, lo+k) with cntB groups at
// pair's high bit and k-cntB at the low bit, plus which groups to upgrade.
func (bt *benefitTable) omegaFor(pi, lo, k, cntB int) float64 {
	pr := bt.pairs[pi]
	base := bt.base[pr[0]][lo+k] - bt.base[pr[0]][lo]
	// Locate prefix sums for this k: offset = Σ_{i=1}^{k-1} (i+1).
	off := 0
	for i := 1; i < k; i++ {
		off += i + 1
	}
	ps := bt.prefix[pi][lo][off : off+k+1]
	return base - ps[cntB]
}

// upgradedSet returns the cntB group indices in [lo,lo+k) with the largest
// upgrade benefit for pair pi (recomputed directly; reconstruction only).
func upgradedSet(s *Spec, pi int, bt *benefitTable, lo, k, cntB int) ([]int, error) {
	pr := bt.pairs[pi]
	bitsA, bitsB := s.Bits[pr[0]], s.Bits[pr[1]]
	type lb struct {
		idx int
		ben float64
	}
	var arr []lb
	for l := lo; l < lo+k; l++ {
		wa, err := s.Omega.At(l, bitsA)
		if err != nil {
			return nil, err
		}
		wb, err := s.Omega.At(l, bitsB)
		if err != nil {
			return nil, err
		}
		arr = append(arr, lb{l, wa - wb})
	}
	sort.Slice(arr, func(i, j int) bool {
		if arr[i].ben > arr[j].ben {
			return true
		}
		if arr[i].ben < arr[j].ben {
			return false
		}
		return arr[i].idx < arr[j].idx
	})
	var out []int
	for i := 0; i < cntB; i++ {
		out = append(out, arr[i].idx)
	}
	return out, nil
}

type dpChoice struct {
	k    int
	pi   int
	cntB int
}

// solveDP finds the best plan for a fixed device order and micro-batch
// sizing under per-stage time caps. Returns nil if infeasible.
func solveDP(t *Tables, order []int, bt *benefitTable, kmax int, capPre, capDec float64) (*Plan, error) {
	s := t.Spec
	n := len(order)
	L := s.layerGroups()
	dp := make([][]float64, n+1)
	choice := make([][]dpChoice, n+1)
	for j := range dp {
		dp[j] = make([]float64, L+1)
		choice[j] = make([]dpChoice, L+1)
		for l := range dp[j] {
			dp[j][l] = infCost
		}
	}
	dp[0][0] = 0
	cells := 0
	// Surrogate weights: the true objective charges the bottleneck stage
	// (k_p−1)× extra prefill rounds and (rounds−1)× extra decode rounds.
	// A balanced pipeline spreads that premium evenly across stages, so
	// weighting every stage's time by 1 + extra/n steers the additive DP
	// toward the right basin; the ε-cap scan plus exact re-evaluation
	// still decide the final plan.
	kp := (s.Work.GlobalBatch + t.PrefillMB - 1) / t.PrefillMB
	kd := (s.Work.GlobalBatch + t.DecodeMB - 1) / t.DecodeMB
	rounds := (s.Work.Generate - 1) * kd
	preW := 1 + float64(kp-1)/float64(n)
	decW := 1.0
	if rounds > 0 {
		decW = 1 + float64(rounds-1)/float64(n)
	}
	for j := 1; j <= n; j++ {
		d := order[j-1]
		cPre, cDec, cMem := stageConst(t, order, j-1)
		capMem := t.Capacity[d] - cMem
		for l := j; l <= L-(n-j); l++ {
			for k := 1; k <= kmax && k <= l-(j-1); k++ {
				prev := dp[j-1][l-k]
				if prev >= infCost {
					continue
				}
				lo := l - k
				for pi := range bt.pairs {
					pr := bt.pairs[pi]
					memA, memB := t.GroupMem[pr[0]], t.GroupMem[pr[1]]
					preA, preB := t.TPre[d][pr[0]], t.TPre[d][pr[1]]
					decA, decB := t.TDec[d][pr[0]], t.TDec[d][pr[1]]
					for cntB := 0; cntB <= k; cntB++ {
						cells++
						cA := float64(k - cntB)
						cB := float64(cntB)
						mem := cA*memA + cB*memB
						if mem > capMem {
							continue
						}
						pre := cA*preA + cB*preB + cPre
						if pre > capPre {
							continue
						}
						dec := cA*decA + cB*decB + cDec
						if dec > capDec {
							continue
						}
						omega := bt.omegaFor(pi, lo, k, cntB)
						// Nested so finite sums keep the historical left-to-right
						// association — golden plans are sensitive to the rounding.
						cost := satAdd(satAdd(satAdd(prev, preW*pre), decW*dec), s.Theta*omega)
						if cost < dp[j][l] {
							dp[j][l] = cost
							choice[j][l] = dpChoice{k: k, pi: pi, cntB: cntB}
						}
					}
				}
			}
		}
	}
	obsDPCells(s.Obs, cells)
	if dp[n][L] >= infCost {
		return nil, nil
	}
	// Reconstruct.
	p := &Plan{
		Order:      append([]int(nil), order...),
		Boundaries: make([]int, n+1),
		GroupBits:  make([]int, L),
		Group:      s.groupSize(),
		PrefillMB:  t.PrefillMB,
		DecodeMB:   t.DecodeMB,
	}
	l := L
	p.Boundaries[n] = L
	for j := n; j >= 1; j-- {
		ch := choice[j][l]
		lo := l - ch.k
		p.Boundaries[j-1] = lo
		pr := bt.pairs[ch.pi]
		for g := lo; g < l; g++ {
			p.GroupBits[g] = s.Bits[pr[0]]
		}
		up, err := upgradedSet(s, ch.pi, bt, lo, ch.k, ch.cntB)
		if err != nil {
			return nil, err
		}
		for _, g := range up {
			p.GroupBits[g] = s.Bits[pr[1]]
		}
		l = lo
	}
	if l != 0 {
		return nil, fmt.Errorf("assigner: DP reconstruction consumed %d groups, expected 0 left", l)
	}
	return p, nil
}

// benefitsFor builds (or fetches from the spec's cache) the one benefit
// table every inner solver of an Optimize call shares. It is always built
// at kmax = layerGroups: the per-(lo, k) prefix sums depend only on k,
// never on the build bound (omegaFor's offsets are functions of k alone),
// so the maximal table answers every query a tighter bound would — with
// bit-identical values — and stays valid when a fleet change alters the
// per-stage bound.
func benefitsFor(s *Spec) (*benefitTable, error) {
	build := func() (*benefitTable, error) { return buildBenefits(s, s.layerGroups()) }
	if s.Cache == nil {
		return build()
	}
	return s.Cache.benefits("benefits|"+s.benefitsKey(), build)
}

// workPool is the spare-worker budget of one Optimize call: the slots of
// Spec.Parallelism not consumed by the outer (order × micro-batch) scan.
// The ε-cap sweep inside solveStructured borrows extra goroutines from it
// non-blockingly — when the outer scan is wide enough to use every slot,
// tryAcquire fails and the sweep stays serial, so the total goroutine
// count never exceeds the requested parallelism. A nil pool always
// declines.
type workPool struct {
	sem chan struct{}
}

func newWorkPool(spare int) *workPool {
	if spare <= 0 {
		return nil
	}
	return &workPool{sem: make(chan struct{}, spare)}
}

func (p *workPool) tryAcquire() bool {
	if p == nil {
		return false
	}
	select {
	case p.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (p *workPool) release() {
	if p != nil {
		<-p.sem
	}
}

// sweepSlot is one ε-grid entry's outcome, reduced in grid order.
type sweepSlot struct {
	plan *Plan
	ev   Evaluation
	ok   bool
	err  error
}

// solveStructured runs the ε-constraint scan for one (order, tables) pair
// and returns the best exactly-evaluated feasible plan, or nil. The grid
// entries are independent re-solves over the shared read-only benefit
// table, so they run concurrently on whatever spare workers pool grants;
// each lands in its own slot and the slots are reduced in grid index
// order with the strict-improvement rule, keeping the winner — and any
// error reported — byte-identical to the serial sweep.
func solveStructured(t *Tables, order []int, bt *benefitTable, pool *workPool) (*Plan, *Evaluation, error) {
	s := t.Spec
	n := len(order)
	kmax := s.layerGroups() - (n - 1)
	perStage := (s.layerGroups() + n - 1) / n
	if lim := 3*perStage + 2; lim < kmax {
		kmax = lim
	}
	// Unconstrained pass: the caps are the shared sentinel, which no
	// finite stage time can reach.
	base, err := solveDP(t, order, bt, kmax, infCost, infCost)
	if err != nil || base == nil {
		return nil, nil, err
	}
	bestPlan := base
	bestEv, err := Evaluate(t, base)
	if err != nil {
		return nil, nil, err
	}
	maxPre, maxDec := maxOf(bestEv.StagePre), maxOf(bestEv.StageDec)
	// Degenerate-input guard: a timer that leaks NaN into the stage times
	// must not poison the ε-caps (NaN caps make every > comparison false,
	// silently disabling the memory/time pruning). satAdd already absorbs
	// NaN cells into the infeasibility sentinel; if NaN still reached the
	// base evaluation, declare the combination infeasible rather than
	// sweep garbage.
	if math.IsNaN(maxPre) || math.IsNaN(maxDec) {
		return nil, nil, nil
	}
	grid := [][2]float64{
		{0.92, 0.92}, {0.82, 0.82}, {0.7, 0.7}, {0.55, 0.55}, {0.4, 0.4},
		{1, 0.7}, {0.7, 1}, {1, 0.45}, {0.45, 1}, {0.85, 0.6}, {0.6, 0.85},
	}
	slots := make([]sweepSlot, len(grid))
	run := func(i int) {
		fc := grid[i]
		p, err := solveDP(t, order, bt, kmax, fc[0]*maxPre, fc[1]*maxDec)
		if err != nil {
			slots[i].err = err
			return
		}
		if p == nil {
			return
		}
		ev, err := Evaluate(t, p)
		if err != nil {
			slots[i].err = err
			return
		}
		slots[i] = sweepSlot{plan: p, ev: ev, ok: true}
	}
	var next atomic.Int64
	claim := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(grid) {
				return
			}
			run(i)
		}
	}
	var wg sync.WaitGroup
	for spawned := 0; spawned < len(grid)-1 && pool.tryAcquire(); spawned++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer pool.release()
			claim()
		}()
	}
	claim()
	wg.Wait()
	for i := range slots {
		if slots[i].err != nil {
			return nil, nil, slots[i].err
		}
		if slots[i].ok && slots[i].ev.Feasible && slots[i].ev.Objective < bestEv.Objective {
			bestPlan, bestEv = slots[i].plan, slots[i].ev
		}
	}
	if !bestEv.Feasible {
		return nil, nil, nil
	}
	// Local-search polish: the DP restricts stages to two precisions; a
	// bitwidth-transfer pass (Algorithm 2's move set) recovers any gain a
	// third precision or a cap the ε-grid missed could offer.
	polished, pev, err := bitwidthTransfer(t, bestPlan)
	if err != nil {
		return nil, nil, err
	}
	if pev.Feasible && pev.Objective < bestEv.Objective {
		bestPlan, bestEv = polished, *pev
	}
	// Also descend from the adabits basin: guarantees MethodDP dominates
	// both the pure-quantization baseline and the heuristic.
	if seed, err := solveAdabits(t, order, bt); err != nil {
		return nil, nil, err
	} else if seed != nil {
		hplan, hev, err := bitwidthTransfer(t, seed)
		if err != nil {
			return nil, nil, err
		}
		if hev.Feasible && hev.Objective < bestEv.Objective {
			bestPlan, bestEv = hplan, *hev
		}
	}
	return bestPlan, &bestEv, nil
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
