package assigner

import (
	"math"
	"testing"
	"time"

	"repro/internal/hardware"
	"repro/internal/indicator"
	"repro/internal/model"
)

// tinyGPU builds a down-scaled GPU so memory constraints bind on small
// test models.
func tinyGPU(name string, memGB, tflops, bw float64) hardware.GPU {
	return hardware.GPU{
		Name: name, MemoryGB: memGB, FP16TFLOPS: tflops, BandwidthGBs: bw,
		ComputeEff:       map[int]float64{3: 0.45, 4: 0.5, 8: 0.8, 16: 1.0},
		MemEff:           map[int]float64{3: 0.7, 4: 0.78, 8: 0.91, 16: 1.0},
		LaunchOverheadUS: 10,
	}
}

func tinyCluster(memA, memB float64) hardware.Cluster {
	fast := tinyGPU("fast", memA, 50, 600)
	slow := tinyGPU("slow", memB, 12, 300)
	return hardware.Cluster{
		Name:      "test",
		InterNode: hardware.Eth800Gbps,
		Devices: []hardware.Device{
			{ID: 0, GPU: slow, Node: 0},
			{ID: 1, GPU: fast, Node: 1},
		},
	}
}

var tinyModel = model.Config{
	Name: "tiny-test", Family: model.OPT, Hidden: 2048, FFN: 8192,
	Layers: 8, Heads: 16, VocabSize: 50272, MaxPosEmb: 2048, TiedEmbed: true,
}

func tinySpec(method Method, theta float64, memA, memB float64) *Spec {
	return &Spec{
		Cfg:     tinyModel,
		Cluster: tinyCluster(memA, memB),
		Work:    Workload{GlobalBatch: 8, Prompt: 128, Generate: 16},
		Bits:    []int{4, 8, 16},
		Omega:   subsetOmega(indicator.Synthetic(tinyModel, []int{3, 4, 8, 16}, 7), []int{4, 8, 16}),
		Theta:   theta,
		Method:  method,
	}
}

// subsetOmega restricts an Omega to a subset of bit candidates.
func subsetOmega(o indicator.Omega, bits []int) indicator.Omega {
	out := indicator.Omega{Bits: bits}
	for l := 0; l < o.Layers(); l++ {
		row := make([]float64, len(bits))
		for i, b := range bits {
			v, err := o.At(l, b)
			if err != nil {
				panic(err)
			}
			row[i] = v
		}
		out.Values = append(out.Values, row)
	}
	return out
}

func TestSpecValidation(t *testing.T) {
	s := tinySpec(MethodDP, 1, 2, 2)
	if err := s.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := *s
	bad.Work.GlobalBatch = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected workload error")
	}
	bad = *s
	bad.Bits = nil
	if err := bad.Validate(); err == nil {
		t.Error("expected bits error")
	}
	bad = *s
	bad.Theta = -1
	if err := bad.Validate(); err == nil {
		t.Error("expected theta error")
	}
	bad = *s
	bad.Group = 5 // 8 layers / 5 = 2 groups < omega layers
	if err := bad.Validate(); err == nil {
		t.Error("expected omega/group mismatch error")
	}
	bad = *s
	bad.Parallelism = -1
	if err := bad.Validate(); err == nil {
		t.Error("expected negative-parallelism error")
	}
	for _, mbs := range [][]int{{0}, {-2}, {4, 0}} {
		bad = *s
		bad.PrefillMicroBatches = mbs
		if err := bad.Validate(); err == nil {
			t.Errorf("expected non-positive micro-batch error for %v", mbs)
		}
	}
	bad = *s
	bad.PrefillMicroBatches = []int{s.Work.GlobalBatch + 1}
	if err := bad.Validate(); err == nil {
		t.Error("expected micro-batch-exceeds-global-batch error")
	}
}

// TestPrefillCandidatesDegenerateBatch pins the fix for a panic: a zero
// (or negative) global batch used to index an empty candidate slice.
func TestPrefillCandidatesDegenerateBatch(t *testing.T) {
	s := tinySpec(MethodDP, 1, 2, 2)
	for _, gb := range []int{0, -3} {
		s.Work.GlobalBatch = gb
		if got := s.prefillCandidates(); got != nil {
			t.Errorf("GlobalBatch=%d: got candidates %v, want nil", gb, got)
		}
	}
	s.Work.GlobalBatch = 8
	if got := s.prefillCandidates(); len(got) == 0 {
		t.Error("positive batch yielded no candidates")
	}
}

func TestCandidateOrders(t *testing.T) {
	c3, _ := hardware.ClusterByID(3) // T4 + V100: 2 types → 2 orders
	if got := len(CandidateOrders(c3)); got != 2 {
		t.Errorf("cluster 3: %d orders, want 2", got)
	}
	c9, _ := hardware.ClusterByID(9) // homogeneous → 1 order
	if got := len(CandidateOrders(c9)); got != 1 {
		t.Errorf("cluster 9: %d orders, want 1", got)
	}
	for _, order := range CandidateOrders(c3) {
		seen := map[int]bool{}
		for _, id := range order {
			if seen[id] {
				t.Fatalf("duplicate device in order %v", order)
			}
			seen[id] = true
		}
		if len(order) != c3.NumDevices() {
			t.Fatalf("order %v misses devices", order)
		}
	}
}

func TestOptimizeDPFindsFeasiblePlan(t *testing.T) {
	s := tinySpec(MethodDP, 1, 2.0, 1.2)
	res, err := Optimize(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(s); err != nil {
		t.Fatalf("invalid plan: %v", err)
	}
	if !res.Eval.Feasible {
		t.Fatalf("infeasible plan returned: %s", res.Eval.Violation)
	}
	if res.Eval.LatencySec <= 0 || res.Eval.Throughput <= 0 {
		t.Errorf("bad evaluation %+v", res.Eval)
	}
	if res.Explored < 2 {
		t.Errorf("expected ≥2 (order, mb) combinations, got %d", res.Explored)
	}
}

func TestMemoryConstraintForcesQuantization(t *testing.T) {
	// Shrink memory until FP16 cannot fit; the plan must use lower bits.
	s := tinySpec(MethodDP, 0.001, 1.1, 0.9)
	res, err := Optimize(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	fp16 := 0
	for _, b := range res.Plan.GroupBits {
		if b == 16 {
			fp16++
		}
	}
	if fp16 == len(res.Plan.GroupBits) {
		t.Error("tight memory should force some quantization")
	}
	// And with plentiful memory + large theta, everything stays FP16.
	s2 := tinySpec(MethodDP, 1e6, 24, 24)
	res2, err := Optimize(s2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range res2.Plan.GroupBits {
		if b != 16 {
			t.Errorf("group %d quantized to %d despite abundant memory and huge theta", i, b)
		}
	}
}

func TestThetaTradesLatencyForQuality(t *testing.T) {
	// Fig 8: larger θ → lower ω (better quality), possibly slower.
	lowTheta, err := Optimize(tinySpec(MethodDP, 1e-4, 1.6, 1.0), nil)
	if err != nil {
		t.Fatal(err)
	}
	highTheta, err := Optimize(tinySpec(MethodDP, 10, 1.6, 1.0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if highTheta.Eval.OmegaSum > lowTheta.Eval.OmegaSum+1e-9 {
		t.Errorf("higher theta should not worsen quality: ω %.4g vs %.4g",
			highTheta.Eval.OmegaSum, lowTheta.Eval.OmegaSum)
	}
	if highTheta.Eval.LatencySec < lowTheta.Eval.LatencySec-1e-9 {
		t.Errorf("higher theta should not be faster: %.4g vs %.4g",
			highTheta.Eval.LatencySec, lowTheta.Eval.LatencySec)
	}
}

func TestFasterDeviceGetsMoreLayers(t *testing.T) {
	// Phase-aware partition: the fast device should carry more groups.
	s := tinySpec(MethodDP, 1e-4, 2.2, 2.2)
	res, err := Optimize(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for j := 0; j < res.Plan.NumStages(); j++ {
		lo, hi, _ := res.Plan.StageRange(j)
		name := s.Cluster.Devices[res.Plan.Order[j]].GPU.Name
		counts[name] += hi - lo
	}
	if counts["fast"] <= counts["slow"] {
		t.Errorf("fast device got %d groups, slow %d — partition ignores speed", counts["fast"], counts["slow"])
	}
}

func TestDPMatchesILPOnSmallInstance(t *testing.T) {
	// DESIGN.md §5.1: the structured solver must agree with the exact MILP.
	// Small instance (6 groups × 2 stages × 2 bits) so branch-and-bound
	// terminates without a time limit.
	small := tinyModel
	small.Layers = 6
	mk := func(m Method) *Spec {
		s := &Spec{
			Cfg:     small,
			Cluster: tinyCluster(1.4, 1.0),
			Work:    Workload{GlobalBatch: 4, Prompt: 128, Generate: 8},
			Bits:    []int{4, 16},
			Omega:   subsetOmega(indicator.Synthetic(small, []int{3, 4, 8, 16}, 7), []int{4, 16}),
			Theta:   0.01,
			Method:  m,
			// Single micro-batch candidate keeps it apples-to-apples.
			PrefillMicroBatches: []int{2},
			TimeLimit:           60 * time.Second,
		}
		return s
	}
	rDP, err := Optimize(mk(MethodDP), nil)
	if err != nil {
		t.Fatal(err)
	}
	rILP, err := Optimize(mk(MethodILP), nil)
	if err != nil {
		t.Fatal(err)
	}
	// ILP is exact: it can only be ≤ DP (within the ε-cap discretization).
	if rILP.Eval.Objective > rDP.Eval.Objective*1.001 {
		t.Errorf("ILP objective %.6g worse than DP %.6g — MILP must be exact",
			rILP.Eval.Objective, rDP.Eval.Objective)
	}
	if rDP.Eval.Objective > rILP.Eval.Objective*1.02 {
		t.Errorf("DP objective %.6g more than 2%% above ILP %.6g",
			rDP.Eval.Objective, rILP.Eval.Objective)
	}
}

func TestHeuristicBeatsAdabits(t *testing.T) {
	// Fig 9: LLM-PQ (joint optimization) outperforms pure adaptive
	// quantization. The heuristic starts from adabits, so it can only
	// improve the objective.
	ada, err := Optimize(tinySpec(MethodAdabits, 0.01, 1.4, 1.0), nil)
	if err != nil {
		t.Fatal(err)
	}
	heu, err := Optimize(tinySpec(MethodHeuristic, 0.01, 1.4, 1.0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if heu.Eval.Objective > ada.Eval.Objective+1e-9 {
		t.Errorf("heuristic objective %.6g worse than adabits %.6g", heu.Eval.Objective, ada.Eval.Objective)
	}
	if heu.Eval.LatencySec > ada.Eval.LatencySec*1.001 {
		t.Errorf("heuristic latency %.4g should not exceed adabits %.4g", heu.Eval.LatencySec, ada.Eval.LatencySec)
	}
}

func TestDPBeatsOrMatchesHeuristic(t *testing.T) {
	dp, err := Optimize(tinySpec(MethodDP, 0.01, 1.4, 1.0), nil)
	if err != nil {
		t.Fatal(err)
	}
	heu, err := Optimize(tinySpec(MethodHeuristic, 0.01, 1.4, 1.0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Eval.Objective > heu.Eval.Objective*1.02 {
		t.Errorf("DP %.6g should not lose to heuristic %.6g by more than 2%%", dp.Eval.Objective, heu.Eval.Objective)
	}
}

func TestGroupingReducesSolveTimeSameBallpark(t *testing.T) {
	// Table 8: group=2 shrinks the search space with modest quality loss.
	s1 := tinySpec(MethodDP, 0.01, 1.4, 1.0)
	s2 := tinySpec(MethodDP, 0.01, 1.4, 1.0)
	s2.Group = 2
	s2.Omega = GroupOmega(s1.Omega, 2)
	r1, err := Optimize(s1, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Optimize(s2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Plan.Validate(s2); err != nil {
		t.Fatalf("grouped plan invalid: %v", err)
	}
	if len(r2.Plan.GroupBits) != 4 {
		t.Errorf("group=2 over 8 layers should yield 4 groups, got %d", len(r2.Plan.GroupBits))
	}
	// Grouped objective in the same ballpark (group=2 over only 8 layers is
	// much coarser than the paper's 48+-layer setting; Table 8 reports the
	// realistic gap).
	if r2.Eval.Objective > r1.Eval.Objective*1.5 {
		t.Errorf("grouping lost too much: %.6g vs %.6g", r2.Eval.Objective, r1.Eval.Objective)
	}
	// Expanded per-layer bits must have length 8.
	if lb := r2.Plan.LayerBits(8); len(lb) != 8 {
		t.Errorf("expanded layer bits %v", lb)
	}
}

func TestEvaluateAgainstHandComputation(t *testing.T) {
	s := tinySpec(MethodDP, 0, 24, 24)
	tab, err := BuildTables(s, ProfilerTimer{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := &Plan{
		Order: []int{0, 1}, Boundaries: []int{0, 4, 8},
		GroupBits: []int{16, 16, 16, 16, 16, 16, 16, 16},
		Group:     1, PrefillMB: 4, DecodeMB: tab.DecodeMB,
	}
	ev, err := Evaluate(tab, p)
	if err != nil {
		t.Fatal(err)
	}
	bi, _ := tab.bitIndex(16)
	pre0 := 4*tab.TPre[0][bi] + tab.EmbedPre + tab.CommPre[0][1]
	pre1 := 4*tab.TPre[1][bi] + tab.CommDec[1][0]
	if math.Abs(ev.StagePre[0]-pre0) > 1e-12 || math.Abs(ev.StagePre[1]-pre1) > 1e-12 {
		t.Errorf("stage prefill times %.6g/%.6g, hand-computed %.6g/%.6g",
			ev.StagePre[0], ev.StagePre[1], pre0, pre1)
	}
	kp := 2 // batch 8 / mb 4
	maxPre := math.Max(pre0, pre1)
	wantPre := pre0 + pre1 + float64(kp-1)*maxPre
	if math.Abs(ev.PrefillSec-wantPre) > 1e-12 {
		t.Errorf("prefill %.6g want %.6g", ev.PrefillSec, wantPre)
	}
	if ev.Objective != ev.LatencySec { // theta = 0
		t.Errorf("objective %.6g should equal latency %.6g at theta=0", ev.Objective, ev.LatencySec)
	}
}

func TestPlanValidateCatchesCorruption(t *testing.T) {
	s := tinySpec(MethodDP, 1, 2, 2)
	res, err := Optimize(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := clonePlan(res.Plan)
	bad.Boundaries[1] = bad.Boundaries[0] // empty stage
	if err := bad.Validate(s); err == nil {
		t.Error("expected empty-stage error")
	}
	bad = clonePlan(res.Plan)
	bad.GroupBits[0] = 5
	if err := bad.Validate(s); err == nil {
		t.Error("expected invalid-bit error")
	}
	bad = clonePlan(res.Plan)
	bad.Order = []int{0, 0}
	if err := bad.Validate(s); err == nil {
		t.Error("expected duplicate-device error")
	}
}

func TestGroupOmegaSums(t *testing.T) {
	o := indicator.Synthetic(tinyModel, []int{4, 8, 16}, 1)
	g := GroupOmega(o, 3) // 8 layers → groups of 3,3,2
	if g.Layers() != 3 {
		t.Fatalf("grouped layers=%d want 3", g.Layers())
	}
	v0, _ := o.At(0, 4)
	v1, _ := o.At(1, 4)
	v2, _ := o.At(2, 4)
	got, _ := g.At(0, 4)
	if math.Abs(got-(v0+v1+v2)) > 1e-12 {
		t.Errorf("group omega %.6g != member sum %.6g", got, v0+v1+v2)
	}
}

func TestSingleDeviceCluster(t *testing.T) {
	// Cluster 1 analogue: one device, memory tight → quantize.
	gpu := tinyGPU("solo", 1.0, 50, 600)
	s := tinySpec(MethodDP, 0.01, 0, 0)
	s.Cluster = hardware.Cluster{Name: "solo", InterNode: hardware.NVLink,
		Devices: []hardware.Device{{ID: 0, GPU: gpu, Node: 0}}}
	res, err := Optimize(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.NumStages() != 1 {
		t.Errorf("single device should give one stage")
	}
	if !res.Eval.Feasible {
		t.Error("plan infeasible")
	}
}

func TestInfeasibleClusterErrors(t *testing.T) {
	// Absurdly small memory: nothing fits even at 3-4 bits.
	s := tinySpec(MethodDP, 1, 0.05, 0.05)
	if _, err := Optimize(s, nil); err == nil {
		t.Error("expected no-feasible-plan error")
	}
}
