package assigner

import (
	"math"
	"testing"

	"repro/internal/hardware"
	"repro/internal/indicator"
	"repro/internal/model"
	"repro/internal/profiler"
)

// constTimer prices every layer at a fixed value (zero, NaN, and +Inf
// included) — with zero the ε-cap grid degenerates to all-zero caps and
// every stage constant vanishes.
type constTimer float64

func (c constTimer) Layer(hardware.GPU, model.Config, profiler.Workload) (float64, error) {
	return float64(c), nil
}

// TestDegenerateEpsilonGrid drives solveStructured's ε sweep through
// inputs that historically produce NaN caps or panics in cap-scan DPs:
// zero layer times, NaN layer times, a single-device order, and exactly
// one layer group per device. The contract: a valid finite plan or a
// clean infeasibility error — never NaN, never a panic.
func TestDegenerateEpsilonGrid(t *testing.T) {
	cases := []struct {
		name  string
		spec  func() *Spec
		timer LayerTimer
		// wantErr: "" = must solve; "any" = must error cleanly.
		wantErr string
	}{
		{
			name:  "zero-times-two-devices",
			spec:  func() *Spec { return tinySpec(MethodDP, 0.1, 3, 3) },
			timer: constTimer(0),
		},
		{
			name: "zero-times-single-device",
			spec: func() *Spec {
				s := tinySpec(MethodDP, 0.1, 0, 0)
				s.Cluster = hardware.Cluster{Name: "solo", InterNode: hardware.NVLink,
					Devices: []hardware.Device{{ID: 0, GPU: tinyGPU("solo", 3, 50, 600), Node: 0}}}
				return s
			},
			timer: constTimer(0),
		},
		{
			name:    "nan-times",
			spec:    func() *Spec { return tinySpec(MethodDP, 0.1, 3, 3) },
			timer:   constTimer(math.NaN()),
			wantErr: "any",
		},
		{
			name:    "inf-times",
			spec:    func() *Spec { return tinySpec(MethodDP, 0.1, 3, 3) },
			timer:   constTimer(math.Inf(1)),
			wantErr: "any",
		},
		{
			name: "one-group-per-device",
			spec: func() *Spec {
				cfg := tinyModel
				cfg.Layers = 2
				s := tinySpec(MethodDP, 0.1, 3, 3)
				s.Cfg = cfg
				s.Omega = subsetOmega(indicator.Synthetic(cfg, []int{3, 4, 8, 16}, 7), []int{4, 8, 16})
				return s
			},
		},
		{
			name: "one-group-per-device-zero-times",
			spec: func() *Spec {
				cfg := tinyModel
				cfg.Layers = 2
				s := tinySpec(MethodDP, 0.1, 3, 3)
				s.Cfg = cfg
				s.Omega = subsetOmega(indicator.Synthetic(cfg, []int{3, 4, 8, 16}, 7), []int{4, 8, 16})
				return s
			},
			timer: constTimer(0),
		},
		{
			name: "theta-zero",
			spec: func() *Spec { return tinySpec(MethodDP, 0, 3, 3) },
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("solver panicked on degenerate input: %v", r)
				}
			}()
			res, err := Optimize(tc.spec(), tc.timer)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("want a clean infeasibility error, got plan %+v", res.Plan)
				}
				return
			}
			if err != nil {
				t.Fatalf("degenerate-but-solvable input errored: %v", err)
			}
			p := res.Plan
			for _, v := range []struct {
				name string
				val  float64
			}{
				{"objective", p.Objective},
				{"latency_sec", p.LatencySec},
				{"omega_sum", p.OmegaSum},
			} {
				if math.IsNaN(v.val) {
					t.Errorf("plan %s is NaN", v.name)
				}
				if math.IsInf(v.val, 0) {
					t.Errorf("plan %s is infinite", v.name)
				}
			}
			if err := p.Validate(tc.spec()); err != nil {
				t.Errorf("degenerate input produced a structurally invalid plan: %v", err)
			}
			if !res.Eval.Feasible {
				t.Error("returned plan is marked infeasible")
			}
		})
	}
}
