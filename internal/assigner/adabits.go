package assigner

import (
	"math"
	"sort"
)

// solveAdabits is the pure adaptive-quantization baseline of §6.9 and the
// starting point of the Algorithm 2 heuristic: the latency objective is
// dropped, layers are partitioned across devices in proportion to memory
// capacity, and each stage independently picks the quality-optimal (minimum
// ω) two-precision mixture that fits its memory. bt is the shared
// kmax = layerGroups benefit table from benefitsFor.
func solveAdabits(t *Tables, order []int, bt *benefitTable) (*Plan, error) {
	s := t.Spec
	n := len(order)
	L := s.layerGroups()

	// Capacity-proportional partition (largest-remainder rounding), with
	// at least one group per stage.
	counts := make([]int, n)
	var totalCap float64
	for _, d := range order {
		totalCap += t.Capacity[d]
	}
	type rem struct {
		j    int
		frac float64
	}
	var rems []rem
	assigned := 0
	for j, d := range order {
		exact := float64(L) * t.Capacity[d] / totalCap
		counts[j] = int(exact)
		rems = append(rems, rem{j, exact - float64(counts[j])})
		assigned += counts[j]
	}
	sort.Slice(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for i := 0; assigned < L; i++ {
		counts[rems[i%n].j]++
		assigned++
	}
	for {
		moved := false
		for j := 0; j < n; j++ {
			if counts[j] == 0 {
				k := richestStage(counts)
				counts[k]--
				counts[j]++
				moved = true
			}
		}
		if !moved {
			break
		}
	}

	p := &Plan{
		Order:      append([]int(nil), order...),
		Boundaries: make([]int, n+1),
		GroupBits:  make([]int, L),
		Group:      s.groupSize(),
		PrefillMB:  t.PrefillMB,
		DecodeMB:   t.DecodeMB,
	}
	lo := 0
	for j := 0; j < n; j++ {
		p.Boundaries[j] = lo
		lo += counts[j]
	}
	p.Boundaries[n] = L

	for j := 0; j < n; j++ {
		d := order[j]
		_, _, cMem := stageConst(t, order, j)
		capMem := t.Capacity[d] - cMem
		lo, hi := p.Boundaries[j], p.Boundaries[j+1]
		k := hi - lo
		bestOmega := math.Inf(1)
		bestPi, bestCntB := -1, 0
		for pi := range bt.pairs {
			pr := bt.pairs[pi]
			memA, memB := t.GroupMem[pr[0]], t.GroupMem[pr[1]]
			for cntB := 0; cntB <= k; cntB++ {
				mem := float64(k-cntB)*memA + float64(cntB)*memB
				if mem > capMem {
					continue
				}
				w := bt.omegaFor(pi, lo, k, cntB)
				if w < bestOmega {
					bestOmega = w
					bestPi, bestCntB = pi, cntB
				}
			}
		}
		if bestPi < 0 {
			return nil, nil // stage cannot fit even at the lowest precision
		}
		pr := bt.pairs[bestPi]
		for g := lo; g < hi; g++ {
			p.GroupBits[g] = s.Bits[pr[0]]
		}
		up, err := upgradedSet(s, bestPi, bt, lo, k, bestCntB)
		if err != nil {
			return nil, err
		}
		for _, g := range up {
			p.GroupBits[g] = s.Bits[pr[1]]
		}
	}
	return p, nil
}

func richestStage(counts []int) int {
	max := 0
	for j, c := range counts {
		if c > counts[max] {
			max = j
		}
	}
	return max
}
