package assigner

import (
	"errors"
	"math"
	"time"

	"repro/internal/ilp"
	"repro/internal/lp"
)

// solveILP builds and solves the paper's MILP (eqs 4–16) for a fixed
// device ordering and micro-batch sizing.
//
// Optimize calls it from concurrent order-workers: the Tables are shared
// read-only, every matrix built here and all branch-and-bound state in
// internal/ilp is confined to the call, and the node/pivot tallies flow
// into the concurrency-safe registry, so no synchronization is needed
// beyond the pool's own barrier.
//
// Variables: binary z[g][j][b] (group g on stage j at bit b) plus two
// continuous epigraph variables TpreMax, TdecMax that linearize the
// pipeline-max terms. Constraints: each group placed exactly once (eq 9),
// per-stage memory (eqs 12–13), stage times ≤ Tmax (within eq 4), stages
// non-empty and contiguous (eqs 15–16, via stage-index monotonicity).
func solveILP(t *Tables, order []int, limit time.Duration) (*Plan, error) {
	s := t.Spec
	n := len(order)
	L := s.layerGroups()
	nb := len(s.Bits)
	nz := L * n * nb
	nv := nz + 2 // + TpreMax, TdecMax
	idx := func(g, j, b int) int { return (g*n+j)*nb + b }
	iPre, iDec := nz, nz+1

	kp := (s.Work.GlobalBatch + t.PrefillMB - 1) / t.PrefillMB
	kd := (s.Work.GlobalBatch + t.DecodeMB - 1) / t.DecodeMB
	rounds := (s.Work.Generate - 1) * kd

	c := make([]float64, nv)
	for g := 0; g < L; g++ {
		for j := 0; j < n; j++ {
			d := order[j]
			for b := 0; b < nb; b++ {
				w, err := s.Omega.At(g, s.Bits[b])
				if err != nil {
					return nil, err
				}
				c[idx(g, j, b)] = t.TPre[d][b] + t.TDec[d][b] + s.Theta*w
			}
		}
	}
	c[iPre] = float64(kp - 1)
	if rounds > 0 {
		c[iDec] = float64(rounds - 1)
	}

	var aub [][]float64
	var bub []float64
	var aeq [][]float64
	var beq []float64

	// Each group on exactly one (stage, bit).
	for g := 0; g < L; g++ {
		row := make([]float64, nv)
		for j := 0; j < n; j++ {
			for b := 0; b < nb; b++ {
				row[idx(g, j, b)] = 1
			}
		}
		aeq = append(aeq, row)
		beq = append(beq, 1)
	}
	for j := 0; j < n; j++ {
		d := order[j]
		cPre, cDec, cMem := stageConst(t, order, j)
		// Memory.
		mrow := make([]float64, nv)
		for g := 0; g < L; g++ {
			for b := 0; b < nb; b++ {
				mrow[idx(g, j, b)] = t.GroupMem[b]
			}
		}
		aub = append(aub, mrow)
		bub = append(bub, t.Capacity[d]-cMem)
		// Stage prefill time ≤ TpreMax.
		prow := make([]float64, nv)
		drow := make([]float64, nv)
		for g := 0; g < L; g++ {
			for b := 0; b < nb; b++ {
				prow[idx(g, j, b)] = t.TPre[d][b]
				drow[idx(g, j, b)] = t.TDec[d][b]
			}
		}
		prow[iPre] = -1
		drow[iDec] = -1
		aub = append(aub, prow)
		bub = append(bub, -cPre)
		aub = append(aub, drow)
		bub = append(bub, -cDec)
		// Stage non-empty.
		nrow := make([]float64, nv)
		for g := 0; g < L; g++ {
			for b := 0; b < nb; b++ {
				nrow[idx(g, j, b)] = -1
			}
		}
		aub = append(aub, nrow)
		bub = append(bub, -1)
	}
	// Contiguity (eq 16): if group g sits on stage j, group g−1 must sit on
	// a stage ≤ j. Formulated per (g, j) — Σ_b z[g][j][b] ≤ Σ_{k≤j, b}
	// z[g−1][k][b] — which is much tighter in the LP relaxation than an
	// aggregated stage-index inequality.
	for g := 1; g < L; g++ {
		for j := 0; j < n-1; j++ { // j = n−1 is vacuous
			row := make([]float64, nv)
			for b := 0; b < nb; b++ {
				row[idx(g, j, b)] = 1
			}
			for k := 0; k <= j; k++ {
				for b := 0; b < nb; b++ {
					row[idx(g-1, k, b)] -= 1
				}
			}
			aub = append(aub, row)
			bub = append(bub, 0)
		}
	}

	ints := make([]bool, nv)
	ups := make([]float64, nv)
	for i := 0; i < nz; i++ {
		ints[i] = true
		ups[i] = 1
	}
	ups[iPre] = math.Inf(1)
	ups[iDec] = math.Inf(1)

	res, err := ilp.Solve(&ilp.Problem{
		C: c, Aub: aub, Bub: bub, Aeq: aeq, Beq: beq, Integer: ints, Upper: ups,
	}, limit)
	obsILPSolve(s.Obs, res.Nodes, res.Pivots)
	if errors.Is(err, ilp.ErrNoIncumbent) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if res.Status != lp.Optimal {
		return nil, nil
	}

	p := &Plan{
		Order:      append([]int(nil), order...),
		Boundaries: make([]int, n+1),
		GroupBits:  make([]int, L),
		Group:      s.groupSize(),
		PrefillMB:  t.PrefillMB,
		DecodeMB:   t.DecodeMB,
	}
	stageOf := make([]int, L)
	for g := 0; g < L; g++ {
		found := false
		for j := 0; j < n && !found; j++ {
			for b := 0; b < nb; b++ {
				if res.X[idx(g, j, b)] > 0.5 {
					stageOf[g] = j
					p.GroupBits[g] = s.Bits[b]
					found = true
					break
				}
			}
		}
		if !found {
			return nil, errors.New("assigner: ILP solution leaves a group unassigned")
		}
	}
	for j := 1; j <= n; j++ {
		// Boundary j = first group at stage ≥ j.
		bnd := L
		for g := 0; g < L; g++ {
			if stageOf[g] >= j {
				bnd = g
				break
			}
		}
		p.Boundaries[j] = bnd
	}
	p.Boundaries[n] = L
	return p, nil
}
