package assigner

import (
	"strings"
	"testing"
	"time"

	"repro/internal/indicator"
	"repro/internal/obs"
)

// TestOptimizeObserved checks solver instrumentation for both exact
// methods: the registry must record time-to-plan, the enumerated search
// space, and the method-specific work counters — and attaching it must
// not change the plan.
func TestOptimizeObserved(t *testing.T) {
	// The ILP case must stay small (6 groups × 2 bits, one micro-batch
	// candidate) so branch-and-bound terminates quickly; DP runs the full
	// tiny spec.
	small := tinyModel
	small.Layers = 6
	mkSpec := func(method Method) *Spec {
		if method == MethodDP {
			return tinySpec(method, 0.1, 2.0, 2.0)
		}
		return &Spec{
			Cfg:                 small,
			Cluster:             tinyCluster(1.4, 1.0),
			Work:                Workload{GlobalBatch: 4, Prompt: 128, Generate: 8},
			Bits:                []int{4, 16},
			Omega:               subsetOmega(indicator.Synthetic(small, []int{3, 4, 8, 16}, 7), []int{4, 16}),
			Theta:               0.01,
			Method:              method,
			PrefillMicroBatches: []int{2},
			TimeLimit:           60 * time.Second,
		}
	}
	for _, method := range []Method{MethodDP, MethodILP} {
		t.Run(method.String(), func(t *testing.T) {
			plain, err := Optimize(mkSpec(method), nil)
			if err != nil {
				t.Fatal(err)
			}

			reg := obs.NewRegistry()
			si := mkSpec(method)
			si.Obs = reg
			res, err := Optimize(si, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !plansEqual(plain.Plan, res.Plan) {
				t.Errorf("instrumentation changed the plan:\nplain: %+v\nobs:   %+v", plain.Plan, res.Plan)
			}

			ml := obs.L("method", method.String())
			h := reg.Histogram(metricSolverPlanTime, obs.TimeBuckets(), ml)
			if h.Count() != 1 {
				t.Errorf("time-to-plan histogram has %d samples, want 1", h.Count())
			}
			if got := reg.Counter(metricSolverCombinations, ml).Value(); int(got) != res.Explored {
				t.Errorf("combinations counter %.0f, want %d", got, res.Explored)
			}
			switch method {
			case MethodDP:
				if cells := reg.Counter(metricSolverDPCells).Value(); cells <= 0 {
					t.Errorf("DP cells counter %.0f, want >0", cells)
				}
			case MethodILP:
				if nodes := reg.Counter(metricSolverILPNodes).Value(); nodes <= 0 {
					t.Errorf("ILP nodes counter %.0f, want >0", nodes)
				}
				if piv := reg.Counter(metricSolverILPPivots).Value(); piv <= 0 {
					t.Errorf("ILP pivots counter %.0f, want >0", piv)
				}
			}

			var sb strings.Builder
			if err := reg.WriteText(&sb); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(sb.String(), metricSolverPlanTime+`_count{method="`+method.String()+`"}`) {
				t.Errorf("metrics dump missing plan-time count for %s:\n%s", method, sb.String())
			}
		})
	}
}

func plansEqual(a, b *Plan) bool {
	if len(a.Order) != len(b.Order) || len(a.Boundaries) != len(b.Boundaries) || len(a.GroupBits) != len(b.GroupBits) {
		return false
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			return false
		}
	}
	for i := range a.Boundaries {
		if a.Boundaries[i] != b.Boundaries[i] {
			return false
		}
	}
	for i := range a.GroupBits {
		if a.GroupBits[i] != b.GroupBits[i] {
			return false
		}
	}
	return a.PrefillMB == b.PrefillMB && a.DecodeMB == b.DecodeMB
}

// TestOptimizeFailureObserved checks that failed Optimize calls still emit
// time-to-plan and explored-combination metrics, plus the failure counter
// — previously error paths returned without touching the registry at all.
func TestOptimizeFailureObserved(t *testing.T) {
	t.Run("infeasible", func(t *testing.T) {
		reg := obs.NewRegistry()
		s := tinySpec(MethodDP, 1, 0.05, 0.05) // nothing fits even at 4 bits
		s.Obs = reg
		if _, err := Optimize(s, nil); err == nil {
			t.Fatal("expected no-feasible-plan error")
		}
		ml := obs.L("method", MethodDP.String())
		if c := reg.Histogram(metricSolverPlanTime, obs.TimeBuckets(), ml).Count(); c != 1 {
			t.Errorf("time-to-plan histogram has %d samples, want 1", c)
		}
		if got := reg.Counter(metricSolverPlanFailures, ml).Value(); got != 1 {
			t.Errorf("failure counter %.0f, want 1", got)
		}
		// The whole search space was explored before failing.
		if got := reg.Counter(metricSolverCombinations, ml).Value(); got <= 0 {
			t.Errorf("combinations counter %.0f, want >0", got)
		}
	})
	t.Run("invalid-spec", func(t *testing.T) {
		reg := obs.NewRegistry()
		s := tinySpec(MethodDP, 1, 2, 2)
		s.Obs = reg
		s.Parallelism = -1
		if _, err := Optimize(s, nil); err == nil {
			t.Fatal("expected validation error")
		}
		ml := obs.L("method", MethodDP.String())
		if c := reg.Histogram(metricSolverPlanTime, obs.TimeBuckets(), ml).Count(); c != 1 {
			t.Errorf("time-to-plan histogram has %d samples, want 1", c)
		}
		if got := reg.Counter(metricSolverPlanFailures, ml).Value(); got != 1 {
			t.Errorf("failure counter %.0f, want 1", got)
		}
		if got := reg.Counter(metricSolverCombinations, ml).Value(); got != 0 {
			t.Errorf("combinations counter %.0f, want 0 (failed before the scan)", got)
		}
	})
}
