package assigner

import (
	"fmt"
	"hash"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/hardware"
	"repro/internal/obs"
)

// SolveCache memoizes the spec-derived artifacts Optimize otherwise
// rebuilds from scratch on every call, so a replan after a fleet change
// recomputes only what the change invalidated (DESIGN.md §13). Three
// layers, coarsest savings first:
//
//   - combination outcomes: the full (plan, evaluation) result of one
//     (device order, prefill micro-batch) inner solve. A repeated solve
//     of an unchanged spec — the failover retry, the autoscaler probing
//     the same fleet shape twice — returns without touching the DP.
//   - timing rows: TPre/TDec per (GPU type, micro-batch) — the layer-timer
//     sweeps BuildTables runs per device. Keyed by GPU *content*, not
//     device index, so survivors of a device loss reuse their rows.
//   - benefit tables: the sorted ω-savings prefix sums of buildBenefits,
//     which depend only on (Bits, Omega) — fleet changes never invalidate
//     them.
//
// Every key is a content hash of exactly the spec fields that feed the
// cached computation (plus the timer's CacheKey identity), so a cache can
// be shared across arbitrary specs: a lookup either misses or returns a
// value that is bit-identical to recomputing it. Plans are therefore
// byte-identical with and without a cache. Safe for concurrent use by
// any number of Optimize calls.
type SolveCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry

	hits   atomic.Int64
	misses atomic.Int64

	// Export bookkeeping: counters already flushed to a registry.
	expMu              sync.Mutex
	expHits, expMisses int64
}

// cacheEntry is a singleflight slot: the goroutine that inserts the entry
// computes it under once; concurrent lookups of the same key wait and
// share the result. Exactly one miss is ever counted per key, so the
// hit/miss totals of a deterministic workload are deterministic at any
// parallelism.
type cacheEntry struct {
	once sync.Once
	val  any
	err  error
}

// NewSolveCache returns an empty cache ready for concurrent use.
func NewSolveCache() *SolveCache {
	return &SolveCache{entries: map[string]*cacheEntry{}}
}

// CacheStats is a point-in-time snapshot of lookup counters.
type CacheStats struct {
	Hits   int64
	Misses int64
}

// Stats returns cumulative lookup counters.
func (c *SolveCache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// Export flushes the lookup counters into reg as
// llmpq_solver_cache_{hits,misses}_total, adding only the delta since the
// previous Export so repeated flushes never double-count. The counters
// are deterministic for a deterministic workload (see cacheEntry), so
// they are safe on the byte-diffed sim registry. Nil cache or registry is
// a no-op.
func (c *SolveCache) Export(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	c.expMu.Lock()
	defer c.expMu.Unlock()
	h, m := c.hits.Load(), c.misses.Load()
	if d := h - c.expHits; d > 0 {
		reg.Counter(metricSolverCacheHits).Add(float64(d))
	}
	if d := m - c.expMisses; d > 0 {
		reg.Counter(metricSolverCacheMisses).Add(float64(d))
	}
	c.expHits, c.expMisses = h, m
}

// do is the singleflight get-or-compute. Errors are cached too: the
// computation is a pure function of the key, so retrying cannot succeed.
func (c *SolveCache) do(key string, fn func() (any, error)) (any, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.val, e.err = fn() })
	return e.val, e.err
}

// timeRow memoizes one TPre/TDec row. The returned slice is shared and
// read-only by contract (solvers only index into it).
func (c *SolveCache) timeRow(key string, fn func() ([]float64, error)) ([]float64, error) {
	v, err := c.do(key, func() (any, error) { return fn() })
	if err != nil {
		return nil, err
	}
	return v.([]float64), nil
}

// benefits memoizes one benefit table (shared, read-only).
func (c *SolveCache) benefits(key string, fn func() (*benefitTable, error)) (*benefitTable, error) {
	v, err := c.do(key, func() (any, error) { return fn() })
	if err != nil {
		return nil, err
	}
	return v.(*benefitTable), nil
}

// comboResult is a cached inner-solve outcome. plan == nil means the
// combination is infeasible (solver errors are cached through do's err).
type comboResult struct {
	plan *Plan
	ev   *Evaluation
}

// combo memoizes one (order, micro-batch) inner solve. Plans and
// evaluations are deep-copied on the way out: callers mutate them
// (Finalize stamps the objective into the plan).
func (c *SolveCache) combo(key string, fn func() (*Plan, *Evaluation, error)) (*Plan, *Evaluation, error) {
	v, err := c.do(key, func() (any, error) {
		plan, ev, err := fn()
		if err != nil {
			return nil, err
		}
		return comboResult{plan: plan, ev: ev}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	r := v.(comboResult)
	return r.plan.clone(), r.ev.clone(), nil
}

// clone deep-copies a plan; nil stays nil.
func (p *Plan) clone() *Plan {
	if p == nil {
		return nil
	}
	q := *p
	q.Order = append([]int(nil), p.Order...)
	q.Boundaries = append([]int(nil), p.Boundaries...)
	q.GroupBits = append([]int(nil), p.GroupBits...)
	return &q
}

// clone deep-copies an evaluation; nil stays nil.
func (ev *Evaluation) clone() *Evaluation {
	if ev == nil {
		return nil
	}
	out := *ev
	out.StagePre = append([]float64(nil), ev.StagePre...)
	out.StageDec = append([]float64(nil), ev.StageDec...)
	out.StageMemGB = append([]float64(nil), ev.StageMemGB...)
	out.MemUtil = append([]float64(nil), ev.MemUtil...)
	return &out
}

// CacheKeyer is implemented by LayerTimers whose timings are a pure
// function of a stable identity string. Timers that do not implement it
// (e.g. FittedTimer, whose model content has no cheap identity) bypass
// the SolveCache entirely — correctness over reuse.
type CacheKeyer interface {
	CacheKey() string
}

// CacheKey identifies the analytic roofline timer; it has no tunable
// state, so the name alone is the identity.
func (ProfilerTimer) CacheKey() string { return "profiler" }

// timerCacheKey resolves a timer's cache identity, reporting whether the
// timer is cacheable at all.
func timerCacheKey(t LayerTimer) (string, bool) {
	if ck, ok := t.(CacheKeyer); ok {
		return ck.CacheKey(), true
	}
	return "", false
}

// hasher wraps FNV-1a 64 with length-framed writes so that concatenated
// fields cannot alias ("ab","c" vs "a","bc").
type hasher struct {
	h   hash.Hash64
	buf [8]byte
}

func newHasher() *hasher { return &hasher{h: fnv.New64a()} }

func (x *hasher) u64(v uint64) {
	for i := 0; i < 8; i++ {
		x.buf[i] = byte(v >> (8 * i))
	}
	x.h.Write(x.buf[:])
}

func (x *hasher) i64(v int64)   { x.u64(uint64(v)) }
func (x *hasher) f64(v float64) { x.u64(math.Float64bits(v)) }
func (x *hasher) sum() string   { return fmt.Sprintf("%016x", x.h.Sum64()) }

func (x *hasher) boolean(v bool) {
	if v {
		x.u64(1)
	} else {
		x.u64(0)
	}
}

func (x *hasher) str(s string) {
	x.i64(int64(len(s)))
	x.h.Write([]byte(s))
}

func (x *hasher) ints(vs []int) {
	x.i64(int64(len(vs)))
	for _, v := range vs {
		x.i64(int64(v))
	}
}

// effMap hashes a bitwidth-keyed efficiency map in sorted key order.
func (x *hasher) effMap(m map[int]float64) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	x.i64(int64(len(keys)))
	for _, k := range keys {
		x.i64(int64(k))
		x.f64(m[k])
	}
}

// hashGPU folds in every GPU field that can influence layer timings or
// capacities. Keying rows by content rather than name means a renamed or
// re-binned GPU type can never alias a stale row.
func (x *hasher) hashGPU(g hardware.GPU) {
	x.str(g.Name)
	x.f64(g.MemoryGB)
	x.f64(g.FP16TFLOPS)
	x.f64(g.BandwidthGBs)
	x.f64(g.LaunchOverheadUS)
	x.f64(g.HourlyUSD)
	x.effMap(g.ComputeEff)
	x.effMap(g.MemEff)
}

// hashTimingBase folds in the spec fields every timer query depends on:
// model shape, workload, candidate bits, KV precision, and grouping.
func (s *Spec) hashTimingBase(x *hasher) {
	x.str(s.Cfg.Name)
	x.str(string(s.Cfg.Family))
	x.i64(int64(s.Cfg.Hidden))
	x.i64(int64(s.Cfg.FFN))
	x.i64(int64(s.Cfg.Layers))
	x.i64(int64(s.Cfg.Heads))
	x.i64(int64(s.Cfg.VocabSize))
	x.i64(int64(s.Cfg.MaxPosEmb))
	x.boolean(s.Cfg.TiedEmbed)
	x.i64(int64(s.Work.GlobalBatch))
	x.i64(int64(s.Work.Prompt))
	x.i64(int64(s.Work.Generate))
	x.ints(s.Bits)
	x.i64(int64(s.kvBits()))
	x.i64(int64(s.groupSize()))
}

// rowBaseKey is the shared prefix of every timing-row key for this spec
// and timer; gpuKey + the micro-batch complete the key.
func (s *Spec) rowBaseKey(timerKey string) string {
	x := newHasher()
	x.str(timerKey)
	s.hashTimingBase(x)
	return x.sum()
}

// gpuKey is the content identity of one GPU type.
func gpuKey(g hardware.GPU) string {
	x := newHasher()
	x.hashGPU(g)
	return x.sum()
}

// benefitsKey identifies a benefit table: it depends only on the
// candidate bits and the (grouped) ω indicator, never on the fleet, so
// device losses keep hitting it. The table is always built at kmax =
// layerGroups (see benefitsFor), so the bound is not part of the key.
func (s *Spec) benefitsKey() string {
	x := newHasher()
	x.ints(s.Bits)
	x.ints(s.Omega.Bits)
	x.i64(int64(len(s.Omega.Values)))
	for _, row := range s.Omega.Values {
		x.i64(int64(len(row)))
		for _, v := range row {
			x.f64(v)
		}
	}
	x.i64(int64(s.layerGroups()))
	return x.sum()
}

// comboBaseKey is the shared prefix of every combination key for one
// Optimize call: everything solveInner's outcome depends on except the
// (order, prefill micro-batch) pair itself. Parallelism, Obs, Cache, and
// Incumbent are deliberately excluded — outcomes are independent of them
// (the byte-identity guarantee), so solves may share entries across those
// settings. The cluster is hashed by device content in index order;
// cluster *names* (e.g. the "-degraded" suffix) don't affect plans.
func (s *Spec) comboBaseKey(timerKey string) string {
	x := newHasher()
	x.str(timerKey)
	s.hashTimingBase(x)
	x.i64(int64(len(s.Omega.Values)))
	for _, row := range s.Omega.Values {
		x.i64(int64(len(row)))
		for _, v := range row {
			x.f64(v)
		}
	}
	x.ints(s.Omega.Bits)
	x.f64(s.Theta)
	x.f64(s.memoryReserve())
	x.i64(int64(s.Method))
	x.i64(int64(s.TimeLimit))
	x.i64(int64(len(s.Cluster.Devices)))
	for _, d := range s.Cluster.Devices {
		x.hashGPU(d.GPU)
		x.i64(int64(d.Node))
	}
	x.f64(s.Cluster.InterNode.BandwidthGBs)
	x.f64(s.Cluster.InterNode.LatencyUS)
	return x.sum()
}

// comboKey completes a combination key for one (micro-batch, order).
func comboKey(base string, prefillMB int, order []int) string {
	x := newHasher()
	x.str(base)
	x.i64(int64(prefillMB))
	x.ints(order)
	return "combo|" + x.sum()
}
