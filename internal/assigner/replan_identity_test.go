package assigner_test

import (
	"reflect"
	"testing"

	"repro/internal/assigner"
	"repro/internal/hardware"
)

// degradedGoldenSpec is goldenSpec after losing its last device — the
// replan instance a failover would solve on the surviving fleet.
func degradedGoldenSpec(t testing.TB, gc goldenCase) *assigner.Spec {
	t.Helper()
	s := goldenSpec(t, gc)
	n := len(s.Cluster.Devices)
	if n < 2 {
		t.Fatalf("%s: cluster too small to degrade", gc.name)
	}
	s.Cluster.Name += "-degraded"
	s.Cluster.Devices = append([]hardware.Device(nil), s.Cluster.Devices[:n-1]...)
	return s
}

// TestWarmReplanByteIdentical is the warm-start acceptance gate: for
// every golden fixture, a replan solve through a populated SolveCache
// with an incumbent plan must return a plan and evaluation deeply equal
// to a cold solve of the same degraded instance — at parallelism 1, 4,
// and 8. The cache is seeded by solving the full (pre-loss) instance, as
// failover does; the incumbent is the cold optimum itself, which pins the
// hardest case for prune soundness: a tie, where every combination may be
// pruned and the fallback must still reproduce the winner exactly.
func TestWarmReplanByteIdentical(t *testing.T) {
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			cache := assigner.NewSolveCache()
			full := goldenSpec(t, gc)
			full.Cache = cache
			if _, err := assigner.Optimize(full, nil); err != nil {
				t.Fatalf("seeding solve: %v", err)
			}

			for _, par := range []int{1, 4, 8} {
				cold := degradedGoldenSpec(t, gc)
				cold.Parallelism = par
				coldRes, coldErr := assigner.Optimize(cold, nil)

				warm := degradedGoldenSpec(t, gc)
				warm.Parallelism = par
				warm.Cache = cache
				if coldErr == nil {
					warm.Incumbent = coldRes.Plan
				}
				warmRes, warmErr := assigner.Optimize(warm, nil)

				if (coldErr == nil) != (warmErr == nil) {
					t.Fatalf("parallelism %d: cold err %v, warm err %v", par, coldErr, warmErr)
				}
				if coldErr != nil {
					continue
				}
				if !reflect.DeepEqual(coldRes.Plan, warmRes.Plan) {
					t.Errorf("parallelism %d: warm plan diverged from cold:\ncold: %+v\nwarm: %+v",
						par, coldRes.Plan, warmRes.Plan)
				}
				if !reflect.DeepEqual(coldRes.Eval, warmRes.Eval) {
					t.Errorf("parallelism %d: warm evaluation diverged from cold", par)
				}
				if coldRes.Explored != warmRes.Explored {
					t.Errorf("parallelism %d: warm explored %d combinations, cold %d",
						par, warmRes.Explored, coldRes.Explored)
				}
			}
			if st := cache.Stats(); st.Hits == 0 {
				t.Error("replan solves never hit the seeded cache")
			}
		})
	}
}
