package assigner

import (
	"math"
	"testing"
)

// TestInfCostSentinel pins the contract of the shared infeasibility
// sentinel: saturating arithmetic keeps the sentinel exactly recognizable
// (== infCost, never +Inf) and no realistic finite objective can ever
// reach it, so a sentinel cannot alias a feasible plan's cost.
func TestInfCostSentinel(t *testing.T) {
	// Finite adds are exact: satAdd is a plain + below the sentinel.
	for _, pair := range [][2]float64{{0, 0}, {1.5, 2.25}, {1e9, 3e12}, {0.1, 0.2}} {
		if got, want := satAdd(pair[0], pair[1]), pair[0]+pair[1]; got != want {
			t.Errorf("satAdd(%g, %g) = %g, want exact sum %g", pair[0], pair[1], got, want)
		}
	}
	// The sentinel absorbs any further cost and stays bit-exact.
	for _, b := range []float64{0, 1, 1e300, infCost} {
		if got := satAdd(infCost, b); got != infCost {
			t.Errorf("satAdd(infCost, %g) = %g, want infCost", b, got)
		}
	}
	// Saturation can never overflow to +Inf, even from near-max operands.
	if got := satAdd(math.MaxFloat64/2, math.MaxFloat64/2); math.IsInf(got, 1) || got != infCost {
		t.Errorf("satAdd near max = %g, want infCost", got)
	}
	// A pessimistic real accumulation — a million stages at a billion
	// seconds each — stays far below the sentinel, so the >= infCost
	// infeasibility checks can never misclassify a finite plan.
	cost := 0.0
	for i := 0; i < 1e6; i++ {
		cost = satAdd(cost, 1e9)
	}
	if cost >= infCost {
		t.Errorf("accumulated finite cost %g reached the sentinel", cost)
	}
	if cost != 1e15 {
		t.Errorf("accumulated cost %g, want exact 1e15", cost)
	}
	// Headroom: the sentinel still dwarfs that accumulation by >100×, so
	// the margin is structural, not incidental.
	if infCost/cost < 100 {
		t.Errorf("sentinel headroom %g too small", infCost/cost)
	}
}
