// Package assigner implements LLM-PQ's offline assigner (paper §4): the
// joint optimizer that decides, for a given model, heterogeneous cluster,
// and offline workload,
//
//   - the pipeline device ordering,
//   - the contiguous layer partition across devices,
//   - the per-layer quantization bitwidth, and
//   - the prefill/decode micro-batch sizes,
//
// minimizing end-to-end batch latency plus θ-weighted quality degradation
// (the variance indicator ω), subject to per-device memory constraints.
//
// Solvers provided (paper §4.3):
//
//   - MethodILP: the exact MILP of eqs (4)–(16), solved with the pure-Go
//     branch-and-bound in internal/ilp. Practical for grouped instances.
//   - MethodDP: an exact structured dynamic program exploiting the fact
//     that all decoder layers share identical per-bit cost; stages are
//     restricted to at most two distinct precisions (the mixtures the
//     paper itself advocates, e.g. INT8+FP16), verified against the MILP.
//   - MethodHeuristic: adabits initialization + Algorithm 2 bitwidth
//     transfer.
//   - MethodAdabits: the pure adaptive-quantization baseline of §6.9.
package assigner

import (
	"fmt"
	"time"

	"repro/internal/hardware"
	"repro/internal/indicator"
	"repro/internal/model"
	"repro/internal/obs"
)

// Workload is the offline serving task: prompts padded to Prompt tokens,
// exactly Generate tokens produced per request, GlobalBatch requests.
type Workload struct {
	GlobalBatch int
	Prompt      int
	Generate    int
}

// Validate checks the workload.
func (w Workload) Validate() error {
	if w.GlobalBatch <= 0 || w.Prompt <= 0 || w.Generate <= 0 {
		return fmt.Errorf("assigner: workload fields must be positive: %+v", w)
	}
	return nil
}

// Method selects the inner solver.
type Method int

const (
	// MethodDP is the structured exact solver (default).
	MethodDP Method = iota
	// MethodILP solves the full MILP of eqs (4)-(16).
	MethodILP
	// MethodHeuristic is adabits + Algorithm 2 bitwidth transfer.
	MethodHeuristic
	// MethodAdabits is pure adaptive quantization (no latency objective),
	// the §6.9 comparison point.
	MethodAdabits
)

func (m Method) String() string {
	switch m {
	case MethodDP:
		return "dp"
	case MethodILP:
		return "ilp"
	case MethodHeuristic:
		return "heuristic"
	case MethodAdabits:
		return "adabits"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Spec is the full optimizer input (the paper's llmpq-algo arguments).
type Spec struct {
	Cfg     model.Config
	Cluster hardware.Cluster
	Work    Workload
	Bits    []int           // candidate precisions, e.g. {3,4,8,16}
	Omega   indicator.Omega // per-(layer,bit) quality perturbation
	Theta   float64         // quality scalar θ
	Group   int             // layer grouping (Optimization #2); 0/1 = none
	Method  Method
	// TimeLimit bounds the ILP solve (0 = none); the paper uses 60 s.
	TimeLimit time.Duration
	// MemoryReserve is the fraction of device memory withheld from the
	// planner (allocator slack). Default 0.05 when zero.
	MemoryReserve float64
	// KVBits is the KV-cache precision: 0/16 = FP16 (the paper's runtime),
	// 8 = INT8 KV quantization (extension; near-lossless, halves KV memory
	// and decode KV traffic).
	KVBits int
	// PrefillMicroBatches overrides the candidate prefill micro-batch set
	// (Optimization #1 enumerates within [1, ξ]); nil = powers of two.
	PrefillMicroBatches []int
	// Parallelism bounds the worker goroutines Optimize spreads the
	// (prefill micro-batch × device order) search over. 0 picks the
	// process-wide default (SetDefaultParallelism, else runtime.NumCPU());
	// 1 forces a serial scan. The result is byte-identical at every
	// setting: see the deterministic reduction in Optimize.
	Parallelism int
	// Obs, when non-nil, receives solver metrics: time-to-plan, (order,
	// micro-batch) combinations, DP cells expanded, ILP nodes and simplex
	// pivots (DESIGN.md §8). Nil keeps the solve uninstrumented.
	Obs *obs.Registry
	// Cache, when non-nil, memoizes spec-derived solver artifacts (timing
	// rows, benefit tables, combination outcomes) across Optimize calls,
	// keyed by content hashes of the fields that feed each computation
	// (DESIGN.md §13). A replan after a fleet change then recomputes only
	// what the change invalidated. Plans are byte-identical with or
	// without a cache; the cache may be shared across specs and
	// concurrent solves. Timers that don't implement CacheKeyer bypass it.
	Cache *SolveCache
	// Incumbent, when non-nil, warm-starts the scan: it is re-evaluated
	// on this spec's tables and its exact objective is used to prune
	// (order, micro-batch) combinations whose cheap lower bound proves
	// they cannot beat it. Pruning never changes the answer — if the
	// un-pruned scan fails to match the incumbent, the pruned
	// combinations are solved after all — so the result stays
	// byte-identical to a cold solve (DESIGN.md §13). An incumbent that
	// doesn't validate against this spec is ignored. failover projects
	// the surviving assignment into one via SurvivorIncumbent.
	Incumbent *Plan
}

// MaxDeviceTypes bounds the distinct GPU types Validate accepts.
// CandidateOrders enumerates one device ordering per permutation of the
// same-type blocks, so the scan grows factorially in the type count:
// 6 types already mean 720 orderings per micro-batch candidate, and 8
// would mean 40320 — a solve that looks hung. Real heterogeneous
// deployments mix a handful of GPU generations; reject anything beyond
// that with a clear error instead of disappearing into permutations.
const MaxDeviceTypes = 6

// Validate checks the spec.
func (s *Spec) Validate() error {
	if err := s.Work.Validate(); err != nil {
		return err
	}
	if len(s.Bits) == 0 {
		return fmt.Errorf("assigner: no candidate bitwidths")
	}
	if s.Omega.Layers() != s.layerGroups() {
		return fmt.Errorf("assigner: omega covers %d groups, model has %d (L=%d, group=%d)",
			s.Omega.Layers(), s.layerGroups(), s.Cfg.Layers, s.groupSize())
	}
	if s.Cluster.NumDevices() == 0 {
		return fmt.Errorf("assigner: empty cluster")
	}
	if s.Cluster.NumDevices() > s.layerGroups() {
		return fmt.Errorf("assigner: %d devices but only %d layer groups", s.Cluster.NumDevices(), s.layerGroups())
	}
	types := map[string]bool{}
	for _, d := range s.Cluster.Devices {
		types[d.GPU.Name] = true
	}
	if len(types) > MaxDeviceTypes {
		return fmt.Errorf("assigner: cluster %s mixes %d GPU types, max %d (the order scan enumerates one ordering per type permutation — %d types would mean a factorial blow-up)",
			s.Cluster.Name, len(types), MaxDeviceTypes, len(types))
	}
	if s.Theta < 0 {
		return fmt.Errorf("assigner: negative theta %g", s.Theta)
	}
	if s.Parallelism < 0 {
		return fmt.Errorf("assigner: negative parallelism %d", s.Parallelism)
	}
	for i, mb := range s.PrefillMicroBatches {
		if mb <= 0 {
			return fmt.Errorf("assigner: prefill micro-batch candidate %d is %d, must be positive", i, mb)
		}
		if mb > s.Work.GlobalBatch {
			return fmt.Errorf("assigner: prefill micro-batch candidate %d is %d, exceeds global batch %d", i, mb, s.Work.GlobalBatch)
		}
	}
	switch s.KVBits {
	case 0, 8, 16:
	default:
		return fmt.Errorf("assigner: unsupported KV precision %d (want 8 or 16)", s.KVBits)
	}
	return nil
}

func (s *Spec) groupSize() int {
	if s.Group <= 1 {
		return 1
	}
	return s.Group
}

// layerGroups returns the number of planning units after grouping.
func (s *Spec) layerGroups() int {
	g := s.groupSize()
	return (s.Cfg.Layers + g - 1) / g
}

// kvBits returns the effective KV-cache precision.
func (s *Spec) kvBits() int {
	if s.KVBits == 0 {
		return 16
	}
	return s.KVBits
}

func (s *Spec) memoryReserve() float64 {
	if s.MemoryReserve <= 0 {
		return 0.05
	}
	return s.MemoryReserve
}

// decodeMicroBatch follows Optimization #1: the global batch is evenly
// partitioned across pipeline stages during decode.
func (s *Spec) decodeMicroBatch() int {
	n := s.Cluster.NumDevices()
	mb := (s.Work.GlobalBatch + n - 1) / n
	if mb < 1 {
		mb = 1
	}
	return mb
}

// DecodeMicroBatch exposes the decode micro-batch size the planner uses
// for this spec (Optimization #1): ceil(GlobalBatch / NumDevices).
// failover uses it to project an incumbent plan onto a reduced cluster.
func (s *Spec) DecodeMicroBatch() int { return s.decodeMicroBatch() }

// prefillCandidates returns the micro-batch sizes to enumerate.
func (s *Spec) prefillCandidates() []int {
	if len(s.PrefillMicroBatches) > 0 {
		return s.PrefillMicroBatches
	}
	if s.Work.GlobalBatch <= 0 {
		// Validate rejects such workloads; empty rather than a panic on
		// out[len(out)-1] for callers that probe before validating.
		return nil
	}
	var out []int
	for mb := 1; mb <= s.Work.GlobalBatch; mb *= 2 {
		out = append(out, mb)
	}
	if last := out[len(out)-1]; last != s.Work.GlobalBatch {
		out = append(out, s.Work.GlobalBatch)
	}
	return out
}

// Plan is the assigner's output: a complete inference execution plan.
type Plan struct {
	// Order lists device IDs in pipeline order.
	Order []int
	// Boundaries has NumStages+1 entries; stage j owns layer groups
	// [Boundaries[j], Boundaries[j+1]).
	Boundaries []int
	// GroupBits is the bitwidth per layer group (len = layerGroups).
	GroupBits []int
	// Group is the group size the plan was computed with.
	Group int
	// PrefillMB / DecodeMB are the phase micro-batch sizes.
	PrefillMB int
	DecodeMB  int

	// Objective and its decomposition, from Evaluate.
	Objective  float64
	LatencySec float64
	OmegaSum   float64
}

// NumStages returns the pipeline depth.
func (p *Plan) NumStages() int { return len(p.Order) }

// StageRange returns the layer-group range of stage j.
func (p *Plan) StageRange(j int) (lo, hi int, err error) {
	if j < 0 || j >= p.NumStages() {
		return 0, 0, fmt.Errorf("assigner: stage %d out of range [0,%d)", j, p.NumStages())
	}
	return p.Boundaries[j], p.Boundaries[j+1], nil
}

// LayerBits expands the per-group bits to per-layer bits for a model with
// L layers.
func (p *Plan) LayerBits(totalLayers int) []int {
	g := p.Group
	if g <= 1 {
		g = 1
	}
	bits := make([]int, totalLayers)
	for i := range bits {
		gi := i / g
		if gi >= len(p.GroupBits) {
			gi = len(p.GroupBits) - 1
		}
		bits[i] = p.GroupBits[gi]
	}
	return bits
}

// StageLayerBits returns per-stage slices of per-layer bits.
func (p *Plan) StageLayerBits(totalLayers int) [][]int {
	g := p.Group
	if g <= 1 {
		g = 1
	}
	all := p.LayerBits(totalLayers)
	out := make([][]int, p.NumStages())
	for j := 0; j < p.NumStages(); j++ {
		lo := p.Boundaries[j] * g
		hi := p.Boundaries[j+1] * g
		if hi > totalLayers {
			hi = totalLayers
		}
		out[j] = all[lo:hi]
	}
	return out
}

// Validate checks structural consistency of a plan against a spec.
func (p *Plan) Validate(s *Spec) error {
	n := s.Cluster.NumDevices()
	if len(p.Order) != n {
		return fmt.Errorf("assigner: plan orders %d devices, cluster has %d", len(p.Order), n)
	}
	seen := make(map[int]bool)
	for _, id := range p.Order {
		if id < 0 || id >= n || seen[id] {
			return fmt.Errorf("assigner: invalid device order %v", p.Order)
		}
		seen[id] = true
	}
	if len(p.Boundaries) != n+1 || p.Boundaries[0] != 0 || p.Boundaries[n] != s.layerGroups() {
		return fmt.Errorf("assigner: bad boundaries %v for %d groups", p.Boundaries, s.layerGroups())
	}
	for j := 0; j < n; j++ {
		if p.Boundaries[j+1] <= p.Boundaries[j] {
			return fmt.Errorf("assigner: empty stage %d in boundaries %v", j, p.Boundaries)
		}
	}
	if len(p.GroupBits) != s.layerGroups() {
		return fmt.Errorf("assigner: %d group bits for %d groups", len(p.GroupBits), s.layerGroups())
	}
	valid := make(map[int]bool)
	for _, b := range s.Bits {
		valid[b] = true
	}
	for i, b := range p.GroupBits {
		if !valid[b] {
			return fmt.Errorf("assigner: group %d has bitwidth %d not in %v", i, b, s.Bits)
		}
	}
	if p.PrefillMB <= 0 || p.DecodeMB <= 0 {
		return fmt.Errorf("assigner: nonpositive micro-batch sizes %d/%d", p.PrefillMB, p.DecodeMB)
	}
	return nil
}
