package assigner

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestEarlyAbortDeterministicError: a hard error on one combination
// cancels the scan, and the error reported is the lowest canonical
// combination index regardless of worker count — the claimed set is
// always a prefix [0, next) run to completion, so the canonical-order
// reduction sees every index below the failing one.
func TestEarlyAbortDeterministicError(t *testing.T) {
	s := tinySpec(MethodDP, 1, 2, 2)
	combos := len(s.prefillCandidates()) * len(CandidateOrders(s.Cluster))
	const faultAt = 3
	if combos <= faultAt+1 {
		t.Fatalf("test needs > %d combinations to observe the abort, got %d", faultAt+1, combos)
	}
	testComboFault = func(idx int) error {
		if idx >= faultAt {
			return fmt.Errorf("injected solver fault at combo %d", idx)
		}
		return nil
	}
	defer func() { testComboFault = nil }()

	for _, workers := range []int{1, 4, 8} {
		spec := *s
		spec.Parallelism = workers
		reg := obs.NewRegistry()
		spec.Obs = reg
		_, err := Optimize(&spec, nil)
		if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("combo %d", faultAt)) {
			t.Fatalf("parallelism %d: error %v, want injected fault at combo %d", workers, err, faultAt)
		}
		explored := int(reg.Counter(metricSolverCombinations, obs.L("method", MethodDP.String())).Value())
		if workers == 1 {
			// Serial: the worker claims 0..faultAt then aborts; the rest of
			// the space is never scanned.
			if explored != faultAt+1 {
				t.Errorf("serial explored %d combinations, want %d", explored, faultAt+1)
			}
		}
		if explored >= combos+workers {
			t.Errorf("parallelism %d: abort never triggered (explored %d of %d)", workers, explored, combos)
		}
	}
}

// TestEarlyAbortSeamInertWhenUnset: the production path (seam nil) is
// untouched — same plan as a clean Optimize.
func TestEarlyAbortSeamInertWhenUnset(t *testing.T) {
	if testComboFault != nil {
		t.Fatal("seam leaked from another test")
	}
	s := tinySpec(MethodDP, 1, 2, 2)
	if _, err := Optimize(s, nil); err != nil {
		t.Fatalf("clean optimize failed: %v", err)
	}
}
