package assigner

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/profiler"
)

// LayerTimer supplies per-layer execution times. The assigner accepts
// either the profiler's ground truth (the paper's
// --use_profiler_prediction) or a fitted latency cost model (--fit).
type LayerTimer interface {
	Layer(gpu hardware.GPU, cfg model.Config, w profiler.Workload) (float64, error)
}

// ProfilerTimer uses the analytic roofline ground truth.
type ProfilerTimer struct{}

// Layer implements LayerTimer.
func (ProfilerTimer) Layer(gpu hardware.GPU, cfg model.Config, w profiler.Workload) (float64, error) {
	return profiler.LayerTime(gpu, cfg, w)
}

// FittedTimer uses pre-fitted latency cost models, keyed by GPU name.
type FittedTimer struct {
	Models map[string]*costmodel.LatencyModel
}

// Layer implements LayerTimer.
func (f FittedTimer) Layer(gpu hardware.GPU, cfg model.Config, w profiler.Workload) (float64, error) {
	m, ok := f.Models[gpu.Name]
	if !ok {
		return 0, fmt.Errorf("assigner: no fitted latency model for %s", gpu.Name)
	}
	return m.PredictLayer(w)
}

// Tables caches every quantity the inner solvers need for one
// (spec, prefill micro-batch) pair: per-device per-bit group times, memory
// per group, communication and embedding overheads, and device capacities.
type Tables struct {
	Spec      *Spec
	PrefillMB int
	DecodeMB  int

	// TPre[d][bitIdx] / TDec[d][bitIdx]: execution time of ONE layer group
	// on device d (cluster device index) at Bits[bitIdx], for one
	// prefill/decode micro-batch.
	TPre [][]float64
	TDec [][]float64
	// GroupMem[bitIdx]: bytes one layer group occupies (weights at bit +
	// KV reservation for the full global batch).
	GroupMem []float64
	// Capacity[d]: planner-visible memory of device d.
	Capacity []float64
	// TempMem[d]: peak temporary memory on any stage (depends on prefill
	// micro-batch, not on the device).
	TempMem float64
	// EmbedMem / HeadMem: extra bytes on the first / last pipeline stage.
	EmbedMem float64
	HeadMem  float64
	// EmbedPre / EmbedDec: master-engine embedding + LM-head time added to
	// the first stage, per micro-batch.
	EmbedPre float64
	EmbedDec float64
	// CommPre[d][e] / CommDec[d][e]: time to ship one micro-batch's
	// activations from device d to device e.
	CommPre [][]float64
	CommDec [][]float64
}

// BuildTables computes the cost tables for a prefill micro-batch size.
func BuildTables(s *Spec, timer LayerTimer, prefillMB int) (*Tables, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if prefillMB <= 0 || prefillMB > s.Work.GlobalBatch {
		return nil, fmt.Errorf("assigner: prefill micro-batch %d out of [1,%d]", prefillMB, s.Work.GlobalBatch)
	}
	n := s.Cluster.NumDevices()
	g := s.groupSize()
	decodeMB := s.decodeMicroBatch()
	t := &Tables{
		Spec: s, PrefillMB: prefillMB, DecodeMB: decodeMB,
		TPre: make([][]float64, n), TDec: make([][]float64, n),
		GroupMem: make([]float64, len(s.Bits)),
		Capacity: make([]float64, n),
		CommPre:  make([][]float64, n), CommDec: make([][]float64, n),
	}
	maxSeq := s.Work.Prompt + s.Work.Generate
	for bi, bits := range s.Bits {
		t.GroupMem[bi] = float64(g) * (s.Cfg.LayerWeightBytes(bits) +
			s.Cfg.KVBytesPerLayer(s.Work.GlobalBatch, maxSeq, s.kvBits()))
	}
	// Timing rows depend on the GPU type, not the device index, so a
	// SolveCache keys them by GPU content: same-type devices share one
	// row, and a replan on survivors reuses every row the loss didn't
	// touch. Cached rows are shared slices — read-only by contract.
	var rowBase string
	if s.Cache != nil {
		if timerKey, ok := timerCacheKey(timer); ok {
			rowBase = s.rowBaseKey(timerKey)
		}
	}
	for d, dev := range s.Cluster.Devices {
		t.Capacity[d] = dev.GPU.MemoryBytes() * (1 - s.memoryReserve())
		var err error
		if rowBase != "" {
			gk := gpuKey(dev.GPU)
			t.TPre[d], err = s.Cache.timeRow(fmt.Sprintf("pre|%s|%s|%d", rowBase, gk, prefillMB), func() ([]float64, error) {
				return buildPrefillRow(s, timer, dev.GPU, prefillMB)
			})
			if err != nil {
				return nil, err
			}
			t.TDec[d], err = s.Cache.timeRow(fmt.Sprintf("dec|%s|%s|%d", rowBase, gk, decodeMB), func() ([]float64, error) {
				return buildDecodeRow(s, timer, dev.GPU, decodeMB)
			})
		} else {
			t.TPre[d], err = buildPrefillRow(s, timer, dev.GPU, prefillMB)
			if err != nil {
				return nil, err
			}
			t.TDec[d], err = buildDecodeRow(s, timer, dev.GPU, decodeMB)
		}
		if err != nil {
			return nil, err
		}
	}
	// Peak temporary memory (same accounting as costmodel.StageMemory).
	br, err := costmodel.StageMemory(costmodel.MemoryInput{
		Cfg: s.Cfg, LayerBits: []int{16}, GlobalBatch: s.Work.GlobalBatch,
		MaxSeq: maxSeq, MicroBatch: prefillMB, PromptLen: s.Work.Prompt,
	})
	if err != nil {
		return nil, err
	}
	t.TempMem = br.Temp
	t.EmbedMem = s.Cfg.EmbedBytes()
	t.HeadMem = s.Cfg.LMHeadBytes()
	if s.Cfg.TiedEmbed {
		t.HeadMem = float64(s.Cfg.VocabSize) * float64(s.Cfg.Hidden) * 2
	}
	// Master engine pre/post-processing time (first stage).
	masterGPU := s.Cluster.Devices[0].GPU
	pre, err := profiler.EmbedTime(masterGPU, s.Cfg, prefillMB, s.Work.Prompt)
	if err != nil {
		return nil, err
	}
	dec, err := profiler.EmbedTime(masterGPU, s.Cfg, decodeMB, 1)
	if err != nil {
		return nil, err
	}
	t.EmbedPre = pre
	t.EmbedDec = dec
	// Inter-device activation transfer times.
	h := float64(s.Cfg.Hidden)
	preBytes := float64(prefillMB) * float64(s.Work.Prompt) * h * 2
	decBytes := float64(decodeMB) * h * 2
	for d := range s.Cluster.Devices {
		t.CommPre[d] = make([]float64, n)
		t.CommDec[d] = make([]float64, n)
		for e := range s.Cluster.Devices {
			if d == e {
				continue
			}
			link := s.Cluster.LinkBetween(s.Cluster.Devices[d], s.Cluster.Devices[e])
			t.CommPre[d][e] = link.TransferTime(preBytes)
			t.CommDec[d][e] = link.TransferTime(decBytes)
		}
	}
	return t, nil
}

// buildPrefillRow computes one device type's per-bit prefill group times.
func buildPrefillRow(s *Spec, timer LayerTimer, gpu hardware.GPU, prefillMB int) ([]float64, error) {
	g := s.groupSize()
	row := make([]float64, len(s.Bits))
	for bi, bits := range s.Bits {
		pre, err := timer.Layer(gpu, s.Cfg, profiler.Workload{
			Batch: prefillMB, Prompt: s.Work.Prompt, Prefill: true, Bits: bits, KV: s.kvBits(),
		})
		if err != nil {
			return nil, err
		}
		row[bi] = pre * float64(g)
	}
	return row, nil
}

// buildDecodeRow computes one device type's per-bit decode group times at
// the representative mid-generation context.
func buildDecodeRow(s *Spec, timer LayerTimer, gpu hardware.GPU, decodeMB int) ([]float64, error) {
	g := s.groupSize()
	ctx := s.Work.Prompt + s.Work.Generate/2
	row := make([]float64, len(s.Bits))
	for bi, bits := range s.Bits {
		dec, err := timer.Layer(gpu, s.Cfg, profiler.Workload{
			Batch: decodeMB, Prompt: s.Work.Prompt, Context: ctx, Bits: bits, KV: s.kvBits(),
		})
		if err != nil {
			return nil, err
		}
		row[bi] = dec * float64(g)
	}
	return row, nil
}

// bitIndex maps a bitwidth to its index in Spec.Bits.
func (t *Tables) bitIndex(bits int) (int, error) {
	for i, b := range t.Spec.Bits {
		if b == bits {
			return i, nil
		}
	}
	return 0, fmt.Errorf("assigner: bitwidth %d not a candidate (%v)", bits, t.Spec.Bits)
}
