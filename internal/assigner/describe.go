package assigner

import (
	"fmt"
	"sort"
	"strings"
)

// Describe renders a human-readable summary of the plan against its spec:
// per-stage device, layer range, bit histogram, and memory utilization
// when an evaluation is supplied.
func (p *Plan) Describe(s *Spec, ev *Evaluation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s: %d stages, micro-batch prefill=%d decode=%d\n",
		s.Cfg.Name, s.Cluster.Name, p.NumStages(), p.PrefillMB, p.DecodeMB)
	for j := 0; j < p.NumStages(); j++ {
		lo, hi, err := p.StageRange(j)
		if err != nil {
			fmt.Fprintf(&b, "stage %d: <%v>\n", j, err)
			continue
		}
		d := s.Cluster.Devices[p.Order[j]]
		fmt.Fprintf(&b, "  stage %d: %-9s groups [%d,%d) bits %s", j, d.GPU.Name, lo, hi, bitHist(p.GroupBits[lo:hi]))
		if ev != nil && j < len(ev.MemUtil) {
			fmt.Fprintf(&b, "  mem %.0f%%", ev.MemUtil[j]*100)
		}
		b.WriteString("\n")
	}
	if ev != nil {
		fmt.Fprintf(&b, "  est. latency %.2fs, throughput %.2f tok/s, ω %.4f\n",
			ev.LatencySec, ev.Throughput, ev.OmegaSum)
	}
	return b.String()
}

// bitHist formats a bit multiset as "16x8 3x16" style counts.
func bitHist(bits []int) string {
	counts := map[int]int{}
	for _, b := range bits {
		counts[b]++
	}
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(keys)))
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%dx%db", counts[k], k))
	}
	return strings.Join(parts, " ")
}
