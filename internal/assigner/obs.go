package assigner

import (
	"repro/internal/obs"
)

// Metric family names exported by the assigner's solvers (DESIGN.md §8).
const (
	metricSolverPlanTime     = "llmpq_solver_time_to_plan_seconds"
	metricSolverCombinations = "llmpq_solver_combinations_total"
	metricSolverPlanFailures = "llmpq_solver_plan_failures_total"
	metricSolverDPCells      = "llmpq_solver_dp_cells_total"
	metricSolverILPNodes     = "llmpq_solver_ilp_nodes_total"
	metricSolverILPPivots    = "llmpq_solver_ilp_pivots_total"
	// SolveCache lookup counters (flushed by SolveCache.Export). Hit/miss
	// totals are deterministic for a deterministic workload — exactly one
	// miss is ever counted per cache key — so they live in the sim
	// llmpq_solver_* family.
	metricSolverCacheHits   = "llmpq_solver_cache_hits_total"
	metricSolverCacheMisses = "llmpq_solver_cache_misses_total"
)

// obsPlanDone records one completed Optimize call: end-to-end time to plan
// and the (order, micro-batch) combinations enumerated. Nil registry = no-op.
func obsPlanDone(r *obs.Registry, method Method, seconds float64, combinations int) {
	if r == nil {
		return
	}
	ml := obs.L("method", method.String())
	r.Histogram(metricSolverPlanTime, obs.TimeBuckets(), ml).Observe(seconds)
	r.Counter(metricSolverCombinations, ml).Add(float64(combinations))
}

// obsPlanFail records one failed Optimize call. Failed solves still cost
// planning time and explored combinations, so they land in the same
// families as successes, plus a failure counter. Nil registry = no-op.
func obsPlanFail(r *obs.Registry, method Method, seconds float64, combinations int) {
	if r == nil {
		return
	}
	ml := obs.L("method", method.String())
	r.Histogram(metricSolverPlanTime, obs.TimeBuckets(), ml).Observe(seconds)
	r.Counter(metricSolverCombinations, ml).Add(float64(combinations))
	r.Counter(metricSolverPlanFailures, ml).Inc()
}

// obsDPCells accumulates the DP cells (candidate (stage, groups, pair,
// count) tuples) expanded by one solveDP run.
func obsDPCells(r *obs.Registry, cells int) {
	if r == nil || cells == 0 {
		return
	}
	r.Counter(metricSolverDPCells).Add(float64(cells))
}

// obsILPSolve accumulates branch-and-bound nodes and simplex pivots of one
// MILP solve.
func obsILPSolve(r *obs.Registry, nodes, pivots int) {
	if r == nil {
		return
	}
	r.Counter(metricSolverILPNodes).Add(float64(nodes))
	r.Counter(metricSolverILPPivots).Add(float64(pivots))
}
