package assigner

import (
	"testing"

	"repro/internal/indicator"
)

func TestKVQuantValidation(t *testing.T) {
	s := tinySpec(MethodDP, 1, 2, 2)
	s.KVBits = 4
	if err := s.Validate(); err == nil {
		t.Error("expected KV precision error for 4-bit KV")
	}
	s.KVBits = 8
	if err := s.Validate(); err != nil {
		t.Errorf("8-bit KV should validate: %v", err)
	}
}

func TestKVQuantHalvesKVMemory(t *testing.T) {
	s16 := tinySpec(MethodDP, 1, 2, 2)
	s8 := tinySpec(MethodDP, 1, 2, 2)
	s8.KVBits = 8
	t16, err := BuildTables(s16, ProfilerTimer{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := BuildTables(s8, ProfilerTimer{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// GroupMem = weights + KV: the KV half shrinks 2x.
	bi, _ := t16.bitIndex(16)
	w := s16.Cfg.LayerWeightBytes(16)
	kv16 := t16.GroupMem[bi] - w
	kv8 := t8.GroupMem[bi] - w
	if kv8 <= kv16/2*0.99 || kv8 >= kv16/2*1.01 {
		t.Errorf("INT8 KV should halve KV bytes: %.0f vs %.0f", kv8, kv16)
	}
	// Decode is memory-bound; less KV traffic → faster decode.
	if t8.TDec[0][bi] >= t16.TDec[0][bi] {
		t.Errorf("INT8 KV decode %.5g should beat FP16 KV %.5g", t8.TDec[0][bi], t16.TDec[0][bi])
	}
}

func TestKVQuantEnablesHigherWeightBits(t *testing.T) {
	// With tight memory, halving the KV reservation leaves room for higher
	// weight precisions — better ω at equal or better latency.
	mk := func(kv int) *Result {
		s := tinySpec(MethodDP, 5, 1.2, 0.9)
		s.KVBits = kv
		s.Omega = normalizeTest(s.Omega)
		res, err := Optimize(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fp16 := mk(16)
	int8 := mk(8)
	if int8.Eval.OmegaSum > fp16.Eval.OmegaSum+1e-9 {
		t.Errorf("INT8 KV should allow better quality: ω %.4f vs %.4f", int8.Eval.OmegaSum, fp16.Eval.OmegaSum)
	}
	if int8.Eval.Objective > fp16.Eval.Objective+1e-9 {
		t.Errorf("INT8 KV objective %.4f should not be worse than %.4f", int8.Eval.Objective, fp16.Eval.Objective)
	}
}

func normalizeTest(o indicator.Omega) indicator.Omega {
	var total float64
	for l := 0; l < o.Layers(); l++ {
		v, _ := o.At(l, 4)
		total += v
	}
	out := indicator.Omega{Bits: o.Bits}
	for l := 0; l < o.Layers(); l++ {
		row := make([]float64, len(o.Bits))
		for bi := range o.Bits {
			row[bi] = o.Values[l][bi] / total
		}
		out.Values = append(out.Values, row)
	}
	return out
}
