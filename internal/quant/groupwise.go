// Group-wise and per-channel quantization — the newer weight-only schemes
// the paper's §7 discusses as drop-in candidates (AWQ, SpQR, GPTQ's
// group-size variants). Instead of one scale per tensor, the weight matrix
// is split into groups of `groupSize` consecutive elements per output
// channel (or one group per channel), each with its own scale: outliers
// then inflate only their own group's scale, recovering most of the
// quality lost to per-tensor scaling at a small metadata cost.
package quant

import (
	"fmt"
	"math"
	"math/rand"
)

// Scheme identifies a weight-quantization scheme.
type Scheme int

const (
	// PerTensor is the baseline scheme of the paper's main experiments:
	// one (scale, zero) pair for the whole tensor.
	PerTensor Scheme = iota
	// PerChannel uses one (scale, zero) pair per output channel (column).
	PerChannel
	// GroupWise uses one pair per group of GroupSize weights within a
	// channel (AWQ/GPTQ-style; the paper's §7 candidates).
	GroupWise
)

func (s Scheme) String() string {
	switch s {
	case PerTensor:
		return "per-tensor"
	case PerChannel:
		return "per-channel"
	case GroupWise:
		return "group-wise"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// GroupedTensor is a quantized tensor with fine-grained scales.
type GroupedTensor struct {
	Bits      int
	Scheme    Scheme
	GroupSize int // rows per group within a column (GroupWise only)
	Rows      int
	Cols      int
	Q         []int32
	// Scales and Zeros are indexed by group: col*groupsPerCol + rowGroup.
	Scales []float64
	Zeros  []float64
}

// groupsPerCol returns the number of row-groups per column.
func (t *GroupedTensor) groupsPerCol() int {
	if t.Scheme != GroupWise {
		return 1
	}
	return (t.Rows + t.GroupSize - 1) / t.GroupSize
}

func (t *GroupedTensor) groupIndex(r, c int) int {
	if t.Scheme != GroupWise {
		return c
	}
	return c*t.groupsPerCol() + r/t.GroupSize
}

// QuantizeGrouped quantizes w (row-major rows×cols, rows = input dim,
// cols = output channels) under the given scheme.
func QuantizeGrouped(w []float64, rows, cols, bits int, scheme Scheme, groupSize int, r Rounding, rng *rand.Rand) (*GroupedTensor, error) {
	if len(w) != rows*cols {
		return nil, fmt.Errorf("quant: data length %d != %d x %d", len(w), rows, cols)
	}
	if bits < 2 || bits > 16 {
		return nil, fmt.Errorf("quant: unsupported bitwidth %d", bits)
	}
	if r == Stochastic && rng == nil {
		return nil, fmt.Errorf("quant: stochastic rounding requires a rand source")
	}
	if scheme == PerTensor {
		// Delegate and wrap, keeping one code path authoritative.
		pt, err := Quantize(w, rows, cols, bits, r, rng)
		if err != nil {
			return nil, err
		}
		return &GroupedTensor{
			Bits: bits, Scheme: PerTensor, Rows: rows, Cols: cols,
			Q: pt.Q, Scales: []float64{pt.Scale}, Zeros: []float64{pt.Zero},
		}, nil
	}
	if scheme == GroupWise {
		if groupSize < 1 {
			return nil, fmt.Errorf("quant: group size must be ≥1, got %d", groupSize)
		}
	} else {
		groupSize = rows
	}
	t := &GroupedTensor{
		Bits: bits, Scheme: scheme, GroupSize: groupSize,
		Rows: rows, Cols: cols, Q: make([]int32, len(w)),
	}
	if scheme == PerChannel {
		t.Scheme = PerChannel
	}
	nGroups := cols * t.groupsPerCol()
	t.Scales = make([]float64, nGroups)
	t.Zeros = make([]float64, nGroups)
	// Pass 1: ranges per group.
	mins := make([]float64, nGroups)
	maxs := make([]float64, nGroups)
	for i := range mins {
		mins[i] = math.Inf(1)
		maxs[i] = math.Inf(-1)
	}
	for rI := 0; rI < rows; rI++ {
		for c := 0; c < cols; c++ {
			g := t.groupIndex(rI, c)
			v := w[rI*cols+c]
			if v < mins[g] {
				mins[g] = v
			}
			if v > maxs[g] {
				maxs[g] = v
			}
		}
	}
	for g := range t.Scales {
		t.Scales[g] = ScaleFor(mins[g], maxs[g], bits)
		t.Zeros[g] = mins[g]
	}
	// Pass 2: quantize.
	maxLevel := int32(Levels(bits) - 1)
	for rI := 0; rI < rows; rI++ {
		for c := 0; c < cols; c++ {
			g := t.groupIndex(rI, c)
			x := (w[rI*cols+c] - t.Zeros[g]) / t.Scales[g]
			var q float64
			switch r {
			case Stochastic:
				fl := math.Floor(x)
				if rng.Float64() < x-fl {
					q = fl + 1
				} else {
					q = fl
				}
			default:
				q = math.Round(x)
			}
			qi := int32(q)
			if qi < 0 {
				qi = 0
			}
			if qi > maxLevel {
				qi = maxLevel
			}
			t.Q[rI*cols+c] = qi
		}
	}
	return t, nil
}

// Dequantize reconstructs the float weights.
func (t *GroupedTensor) Dequantize() []float64 {
	out := make([]float64, len(t.Q))
	if t.Scheme == PerTensor {
		for i, q := range t.Q {
			out[i] = float64(q)*t.Scales[0] + t.Zeros[0]
		}
		return out
	}
	for r := 0; r < t.Rows; r++ {
		for c := 0; c < t.Cols; c++ {
			g := t.groupIndex(r, c)
			out[r*t.Cols+c] = float64(t.Q[r*t.Cols+c])*t.Scales[g] + t.Zeros[g]
		}
	}
	return out
}

// MetadataBytes returns the per-tensor overhead of storing scales/zeros in
// FP16 — the cost finer schemes pay (relevant to the memory model).
func (t *GroupedTensor) MetadataBytes() float64 {
	return float64(len(t.Scales)+len(t.Zeros)) * 2
}

// RoundTripGrouped quantizes and dequantizes under a scheme.
func RoundTripGrouped(w []float64, rows, cols, bits int, scheme Scheme, groupSize int, r Rounding, rng *rand.Rand) ([]float64, error) {
	t, err := QuantizeGrouped(w, rows, cols, bits, scheme, groupSize, r, rng)
	if err != nil {
		return nil, err
	}
	return t.Dequantize(), nil
}

// SchemeErrorStats measures elementwise round-trip error under a scheme.
func SchemeErrorStats(w []float64, rows, cols, bits int, scheme Scheme, groupSize int) (ErrorStats, error) {
	t, err := QuantizeGrouped(w, rows, cols, bits, scheme, groupSize, Deterministic, nil)
	if err != nil {
		return ErrorStats{}, err
	}
	deq := t.Dequantize()
	var sum, sumSq, maxAbs, maxScale float64
	for i := range w {
		e := deq[i] - w[i]
		sum += e
		sumSq += e * e
		if a := math.Abs(e); a > maxAbs {
			maxAbs = a
		}
	}
	for _, s := range t.Scales {
		if s > maxScale {
			maxScale = s
		}
	}
	n := float64(len(w))
	mean := sum / n
	return ErrorStats{MeanErr: mean, VarErr: sumSq/n - mean*mean, MaxAbs: maxAbs, Scale: maxScale}, nil
}
