package quant

// Fuzz lanes for the quantizer: every input must round-trip within the
// Theorem 1 error envelope (deterministic rounding error ∈ [−s/2, s/2],
// stochastic ∈ (−s, s)) and the group-wise packing must keep its
// (col, rowGroup) index layout consistent. `make fuzz-smoke` (wired into
// scripts/verify.sh) runs each target for 15 s.

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// fuzzFloats derives up to maxN finite floats in [−1e6, 1e6] from raw
// fuzz bytes.
func fuzzFloats(data []byte, maxN int) []float64 {
	n := len(data) / 8
	if n > maxN {
		n = maxN
	}
	w := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		u := binary.LittleEndian.Uint64(data[i*8:])
		frac := float64(u>>11) / (1 << 53) // [0,1)
		w = append(w, (frac*2-1)*1e6)
	}
	return w
}

func clampBits(bits int) int {
	if bits < 0 {
		bits = -bits
	}
	return 2 + bits%15 // [2,16]
}

func FuzzQuantDequantRoundTrip(f *testing.F) {
	f.Add(int64(1), 4, []byte("seed-corpus-entry-with-16+b"))
	f.Add(int64(7), 3, make([]byte, 64))
	f.Add(int64(42), 16, []byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, seed int64, bits int, data []byte) {
		bits = clampBits(bits)
		w := fuzzFloats(data, 256)
		if len(w) == 0 {
			return
		}
		for _, rounding := range []Rounding{Deterministic, Stochastic} {
			rng := rand.New(rand.NewSource(seed))
			qt, err := Quantize(w, len(w), 1, bits, rounding, rng)
			if err != nil {
				t.Fatalf("Quantize(%s): %v", rounding, err)
			}
			maxLevel := int32(Levels(bits) - 1)
			for i, q := range qt.Q {
				if q < 0 || q > maxLevel {
					t.Fatalf("%s: level %d at %d outside [0,%d]", rounding, q, i, maxLevel)
				}
			}
			// Theorem 1 envelope: deterministic error ≤ s/2, stochastic < s,
			// with a relative slack for float evaluation of (v−min)/s.
			bound := qt.Scale / 2
			if rounding == Stochastic {
				bound = qt.Scale
			}
			bound += 1e-9*qt.Scale + 1e-9
			deq := qt.Dequantize()
			for i := range w {
				if e := math.Abs(deq[i] - w[i]); e > bound {
					t.Fatalf("%s bits=%d: element %d error %g exceeds Theorem-1 bound %g (scale %g)",
						rounding, bits, i, e, bound, qt.Scale)
				}
			}
		}
		// Determinism: the same input quantizes identically twice.
		a, err := RoundTrip(w, len(w), 1, bits, Deterministic, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RoundTrip(w, len(w), 1, bits, Deterministic, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] { //llmpq:ignore floateq bitwise reproducibility is the property under test
				t.Fatalf("deterministic round-trip differs at %d: %g vs %g", i, a[i], b[i])
			}
		}
	})
}

func FuzzGroupwisePack(f *testing.F) {
	f.Add(4, 3, byte(2), make([]byte, 96))
	f.Add(16, 1, byte(1), []byte("groupwise-pack-corpus-seed-entry"))
	f.Add(8, 7, byte(0), make([]byte, 200))
	f.Fuzz(func(t *testing.T, bits, groupSize int, schemeByte byte, data []byte) {
		bits = clampBits(bits)
		scheme := Scheme(int(schemeByte) % 3)
		w := fuzzFloats(data, 240)
		if len(w) < 2 {
			return
		}
		cols := 1 + int(schemeByte>>2)%4
		rows := len(w) / cols
		if rows == 0 {
			return
		}
		w = w[:rows*cols]
		if groupSize < 0 {
			groupSize = -groupSize
		}
		groupSize = 1 + groupSize%(rows+2) // exercise size > rows too
		qt, err := QuantizeGrouped(w, rows, cols, bits, scheme, groupSize, Deterministic, nil)
		if err != nil {
			t.Fatalf("QuantizeGrouped: %v", err)
		}
		if len(qt.Q) != rows*cols {
			t.Fatalf("packed %d levels for %d weights", len(qt.Q), rows*cols)
		}
		wantGroups := cols * qt.groupsPerCol()
		if scheme == PerTensor {
			wantGroups = 1
		}
		if len(qt.Scales) != wantGroups || len(qt.Zeros) != wantGroups {
			t.Fatalf("%v: %d scales / %d zeros for %d groups", scheme, len(qt.Scales), len(qt.Zeros), wantGroups)
		}
		if got, want := qt.MetadataBytes(), float64(2*wantGroups*2); got != want { //llmpq:ignore floateq exact FP16 byte count
			t.Fatalf("MetadataBytes %g, want %g", got, want)
		}
		maxLevel := int32(Levels(bits) - 1)
		deq := qt.Dequantize()
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				i := r*cols + c
				if qt.Q[i] < 0 || qt.Q[i] > maxLevel {
					t.Fatalf("level %d outside [0,%d]", qt.Q[i], maxLevel)
				}
				g := 0
				if scheme != PerTensor {
					g = qt.groupIndex(r, c)
				}
				s := qt.Scales[g]
				if s <= 0 || math.IsInf(s, 0) || math.IsNaN(s) {
					t.Fatalf("degenerate scale %g in group %d", s, g)
				}
				bound := s/2 + 1e-9*s + 1e-9
				if e := math.Abs(deq[i] - w[i]); e > bound {
					t.Fatalf("%v bits=%d group=%d: error %g exceeds s/2 bound %g", scheme, bits, g, e, bound)
				}
			}
		}
		// Per-channel must be exactly group-wise with one group per column.
		if scheme == PerChannel {
			gw, err := QuantizeGrouped(w, rows, cols, bits, GroupWise, rows, Deterministic, nil)
			if err != nil {
				t.Fatalf("GroupWise(rows): %v", err)
			}
			for i := range qt.Q {
				if qt.Q[i] != gw.Q[i] {
					t.Fatalf("per-channel and group-size=rows packs differ at %d", i)
				}
			}
		}
	})
}
