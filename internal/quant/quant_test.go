package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func gaussian(n int, rng *rand.Rand, sigma float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.NormFloat64() * sigma
	}
	return w
}

func TestRoundTripErrorBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := gaussian(4096, rng, 0.02)
	for _, bits := range []int{3, 4, 8, 16} {
		st, err := MeasureError(w, 64, 64, bits, Deterministic, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Deterministic rounding error per element is within s/2 (clamping
		// can only pull values toward range, which Gaussian data respects).
		if st.MaxAbs > st.Scale/2+1e-12 {
			t.Errorf("bits=%d: max |err| %.3g > s/2 = %.3g", bits, st.MaxAbs, st.Scale/2)
		}
	}
}

func TestHigherBitsLowerError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := gaussian(8192, rng, 0.02)
	prev := math.Inf(1)
	for _, bits := range []int{3, 4, 8, 16} {
		st, err := MeasureError(w, 128, 64, bits, Deterministic, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.VarErr >= prev {
			t.Errorf("bits=%d: error variance %.3g not lower than %d-bit", bits, st.VarErr, bits/2)
		}
		prev = st.VarErr
	}
}

func TestTheorem1DeterministicVarianceBound(t *testing.T) {
	// Empirical per-element error variance must respect s²/4; for a smooth
	// distribution it concentrates near s²/12 (uniform rounding error).
	rng := rand.New(rand.NewSource(3))
	w := gaussian(1<<15, rng, 0.05)
	for _, bits := range []int{3, 4, 8} {
		st, err := MeasureError(w, 1<<9, 1<<6, bits, Deterministic, nil)
		if err != nil {
			t.Fatal(err)
		}
		bound := st.Scale * st.Scale / 4
		if st.VarErr > bound {
			t.Errorf("bits=%d: var %.3g exceeds deterministic bound s²/4=%.3g", bits, st.VarErr, bound)
		}
		if bits <= 4 {
			continue // coarse grids interact with the Gaussian shape
		}
		uniform := st.Scale * st.Scale / 12
		if st.VarErr < uniform/3 || st.VarErr > uniform*3 {
			t.Errorf("bits=%d: var %.3g far from s²/12=%.3g", bits, st.VarErr, uniform)
		}
	}
}

func TestTheorem1StochasticUnbiasedAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := gaussian(1<<15, rng, 0.05)
	for _, bits := range []int{4, 8} {
		st, err := MeasureError(w, 1<<9, 1<<6, bits, Stochastic, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Unbiased: mean error ≈ 0 relative to the scale.
		if math.Abs(st.MeanErr) > st.Scale*0.02 {
			t.Errorf("bits=%d: stochastic mean err %.3g not ≈0 (scale %.3g)", bits, st.MeanErr, st.Scale)
		}
		// Var[err] ≤ s²/4 always; for uniform fractional part it is s²/6.
		bound := st.Scale * st.Scale / 4
		if st.VarErr > bound {
			t.Errorf("bits=%d: stochastic var %.3g exceeds s²/4=%.3g", bits, st.VarErr, bound)
		}
	}
}

func TestStochasticNoisierThanDeterministic(t *testing.T) {
	// Theorem 1: the stochastic variance term (s²/6)(E[X]²+Var[X]) exceeds
	// the deterministic one (s²/4)Var[X] whenever E[X]² > Var[X]/2; for the
	// raw rounding error the stochastic rule is always at least as noisy.
	rng := rand.New(rand.NewSource(5))
	w := gaussian(1<<14, rng, 0.05)
	for _, bits := range []int{4, 8} {
		det, _ := MeasureError(w, 1<<8, 1<<6, bits, Deterministic, nil)
		sto, _ := MeasureError(w, 1<<8, 1<<6, bits, Stochastic, rng)
		if sto.VarErr < det.VarErr {
			t.Errorf("bits=%d: stochastic var %.3g < deterministic %.3g", bits, sto.VarErr, det.VarErr)
		}
	}
}

func TestOutputVarianceBoundFormula(t *testing.T) {
	d, s := 1024, 0.01
	varX, meanX := 2.0, 3.0
	det := OutputVarianceBound(d, s, meanX, varX, Deterministic)
	sto := OutputVarianceBound(d, s, meanX, varX, Stochastic)
	wantDet := float64(d) * s * s / 4 * varX
	wantSto := float64(d) * s * s / 6 * (meanX*meanX + varX)
	if math.Abs(det-wantDet) > 1e-12 {
		t.Errorf("deterministic bound %.6g want %.6g", det, wantDet)
	}
	if math.Abs(sto-wantSto) > 1e-12 {
		t.Errorf("stochastic bound %.6g want %.6g", sto, wantSto)
	}
}

func TestOutputVarianceBoundEmpirical(t *testing.T) {
	// Monte-Carlo check of Theorem 1: quantize W, multiply by random X, and
	// compare Var[(Ŵ−W)X] against the bound.
	rng := rand.New(rand.NewSource(6))
	rows, cols := 64, 64
	w := gaussian(rows*cols, rng, 0.05)
	for _, r := range []Rounding{Deterministic, Stochastic} {
		tq, err := Quantize(w, rows, cols, 4, r, rng)
		if err != nil {
			t.Fatal(err)
		}
		deq := tq.Dequantize()
		meanX, varX := 0.5, 1.0
		trials := 2000
		var sum, sumSq float64
		for n := 0; n < trials; n++ {
			x := make([]float64, cols)
			for i := range x {
				x[i] = meanX + rng.NormFloat64()*math.Sqrt(varX)
			}
			row := rng.Intn(rows)
			var y float64
			for j := 0; j < cols; j++ {
				y += (deq[row*cols+j] - w[row*cols+j]) * x[j]
			}
			sum += y
			sumSq += y * y
		}
		m := sum / float64(trials)
		v := sumSq/float64(trials) - m*m
		bound := OutputVarianceBound(cols, tq.Scale, meanX, varX, r)
		if v > bound*1.35 { // MC slack
			t.Errorf("%v: empirical added var %.4g exceeds Theorem 1 bound %.4g", r, v, bound)
		}
	}
}

func TestQuantizeValidation(t *testing.T) {
	if _, err := Quantize([]float64{1, 2, 3}, 2, 2, 4, Deterministic, nil); err == nil {
		t.Error("expected size mismatch error")
	}
	if _, err := Quantize([]float64{1, 2}, 1, 2, 1, Deterministic, nil); err == nil {
		t.Error("expected unsupported bitwidth error")
	}
	if _, err := Quantize([]float64{1, 2}, 1, 2, 4, Stochastic, nil); err == nil {
		t.Error("expected missing rng error")
	}
}

func TestConstantTensor(t *testing.T) {
	w := []float64{0.5, 0.5, 0.5, 0.5}
	deq, err := RoundTrip(w, 2, 2, 4, Deterministic, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range deq {
		if math.Abs(v-0.5) > 1e-12 {
			t.Errorf("constant tensor should round-trip exactly, got %v", deq)
		}
	}
}

func TestQuantizePropertyLevelsInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	err := quick.Check(func(seed int64, bits8 uint8) bool {
		bits := []int{3, 4, 8}[int(bits8)%3]
		r := rand.New(rand.NewSource(seed))
		w := gaussian(256, r, 0.1)
		tq, err := Quantize(w, 16, 16, bits, Stochastic, rng)
		if err != nil {
			return false
		}
		maxL := int32(Levels(bits) - 1)
		for _, q := range tq.Q {
			if q < 0 || q > maxL {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestScaleShrinksWithBits(t *testing.T) {
	s3 := ScaleFor(-1, 1, 3)
	s8 := ScaleFor(-1, 1, 8)
	if s8 >= s3 {
		t.Errorf("scale should shrink with bits: s3=%.4g s8=%.4g", s3, s8)
	}
	if ScaleFor(2, 2, 4) != 1 {
		t.Error("degenerate range should produce scale 1")
	}
}
