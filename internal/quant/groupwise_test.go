package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func outlierWeights(rows, cols int, rng *rand.Rand) []float64 {
	w := make([]float64, rows*cols)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.02
	}
	// A few large outliers, concentrated in one column — the structure
	// that hurts per-tensor scaling most.
	for k := 0; k < rows/16+1; k++ {
		w[rng.Intn(rows)*cols] *= 12
	}
	return w
}

func TestFinerSchemesReduceError(t *testing.T) {
	// §7: AWQ/SpQR-style fine-grained scaling recovers accuracy. With
	// outliers, per-channel must beat per-tensor, and group-wise must beat
	// per-channel.
	rng := rand.New(rand.NewSource(1))
	w := outlierWeights(256, 64, rng)
	pt, err := SchemeErrorStats(w, 256, 64, 4, PerTensor, 0)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := SchemeErrorStats(w, 256, 64, 4, PerChannel, 0)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := SchemeErrorStats(w, 256, 64, 4, GroupWise, 32)
	if err != nil {
		t.Fatal(err)
	}
	if pc.VarErr >= pt.VarErr {
		t.Errorf("per-channel var %.3g should beat per-tensor %.3g", pc.VarErr, pt.VarErr)
	}
	if gw.VarErr >= pc.VarErr {
		t.Errorf("group-wise var %.3g should beat per-channel %.3g", gw.VarErr, pc.VarErr)
	}
}

func TestPerTensorMatchesBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := outlierWeights(64, 32, rng)
	base, err := RoundTrip(w, 64, 32, 4, Deterministic, nil)
	if err != nil {
		t.Fatal(err)
	}
	viaGrouped, err := RoundTripGrouped(w, 64, 32, 4, PerTensor, 0, Deterministic, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if base[i] != viaGrouped[i] {
			t.Fatal("PerTensor grouped path must match the baseline quantizer exactly")
		}
	}
}

func TestGroupIndexing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := outlierWeights(64, 8, rng)
	tq, err := QuantizeGrouped(w, 64, 8, 4, GroupWise, 16, Deterministic, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g := tq.groupsPerCol(); g != 4 {
		t.Errorf("64 rows / group 16 = %d groups, want 4", g)
	}
	if len(tq.Scales) != 8*4 {
		t.Errorf("%d scales, want 32", len(tq.Scales))
	}
	// Uneven division rounds up.
	tq2, err := QuantizeGrouped(w, 64, 8, 4, GroupWise, 48, Deterministic, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g := tq2.groupsPerCol(); g != 2 {
		t.Errorf("ceil(64/48) = %d, want 2", g)
	}
}

func TestMetadataCostGrowsWithFineness(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := outlierWeights(256, 64, rng)
	var prev float64 = -1
	for _, tc := range []struct {
		scheme Scheme
		group  int
	}{{PerTensor, 0}, {PerChannel, 0}, {GroupWise, 64}, {GroupWise, 16}} {
		tq, err := QuantizeGrouped(w, 256, 64, 4, tc.scheme, tc.group, Deterministic, nil)
		if err != nil {
			t.Fatal(err)
		}
		mb := tq.MetadataBytes()
		if mb <= prev {
			t.Errorf("%v group=%d: metadata %.0fB not greater than coarser scheme %.0fB", tc.scheme, tc.group, mb, prev)
		}
		prev = mb
	}
}

func TestGroupedErrorBound(t *testing.T) {
	// Error must stay within each group's s/2 under deterministic rounding.
	rng := rand.New(rand.NewSource(5))
	w := outlierWeights(128, 16, rng)
	for _, scheme := range []Scheme{PerChannel, GroupWise} {
		tq, err := QuantizeGrouped(w, 128, 16, 4, scheme, 32, Deterministic, nil)
		if err != nil {
			t.Fatal(err)
		}
		deq := tq.Dequantize()
		for r := 0; r < 128; r++ {
			for c := 0; c < 16; c++ {
				g := tq.groupIndex(r, c)
				e := math.Abs(deq[r*16+c] - w[r*16+c])
				if e > tq.Scales[g]/2+1e-12 {
					t.Fatalf("%v: error %.4g exceeds group scale/2 %.4g at (%d,%d)", scheme, e, tq.Scales[g]/2, r, c)
				}
			}
		}
	}
}

func TestGroupedValidation(t *testing.T) {
	if _, err := QuantizeGrouped([]float64{1, 2}, 2, 2, 4, GroupWise, 16, Deterministic, nil); err == nil {
		t.Error("expected size mismatch error")
	}
	if _, err := QuantizeGrouped([]float64{1, 2, 3, 4}, 2, 2, 1, GroupWise, 16, Deterministic, nil); err == nil {
		t.Error("expected bits error")
	}
	if _, err := QuantizeGrouped([]float64{1, 2, 3, 4}, 2, 2, 4, GroupWise, 0, Deterministic, nil); err == nil {
		t.Error("expected group size error")
	}
	if _, err := QuantizeGrouped([]float64{1, 2, 3, 4}, 2, 2, 4, GroupWise, 2, Stochastic, nil); err == nil {
		t.Error("expected missing rng error")
	}
}

func TestGroupedQuantPropertyLevelsInRange(t *testing.T) {
	err := quick.Check(func(seed int64, schemeSel, bitsSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := outlierWeights(32, 8, rng)
		scheme := []Scheme{PerTensor, PerChannel, GroupWise}[schemeSel%3]
		bits := []int{3, 4, 8}[bitsSel%3]
		tq, err := QuantizeGrouped(w, 32, 8, bits, scheme, 8, Deterministic, nil)
		if err != nil {
			return false
		}
		maxL := int32(Levels(bits) - 1)
		for _, q := range tq.Q {
			if q < 0 || q > maxL {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}
