// Package quant implements the weight-only symmetric quantization scheme of
// the paper (§2.4): values are mapped to n-bit integers via a per-tensor
// scale, using either deterministic (round-to-nearest) or stochastic
// rounding. It also exposes the quantization-variance quantities of
// Theorem 1 that feed the assigner's sensitivity indicator (§4.2).
//
// Unlike the cost models, this package operates on real float data: the
// reference transformer in internal/nn is quantized through it, so the
// quality numbers in the experiments come from actual rounding error, not a
// formula.
package quant

import (
	"fmt"
	"math"
	"math/rand"
)

// Rounding selects the rounding rule.
type Rounding int

const (
	// Deterministic rounds to the nearest representable level.
	Deterministic Rounding = iota
	// Stochastic rounds up with probability equal to the fractional part,
	// giving an unbiased estimate with larger variance (Theorem 1).
	Stochastic
)

func (r Rounding) String() string {
	switch r {
	case Deterministic:
		return "deterministic"
	case Stochastic:
		return "stochastic"
	default:
		return fmt.Sprintf("Rounding(%d)", int(r))
	}
}

// Tensor is a quantized weight tensor: packed integer levels plus the
// affine parameters needed to dequantize.
type Tensor struct {
	Bits  int
	Scale float64 // s_W
	Zero  float64 // q_W (symmetric: min of range)
	Q     []int32 // quantized levels
	Rows  int
	Cols  int
}

// Levels returns the number of representable levels at b bits.
func Levels(bits int) int { return 1 << bits }

// ScaleFor computes the symmetric scale s_W for data in [min,max] at the
// given bitwidth: the full range is split into 2^b - 1 steps.
func ScaleFor(minV, maxV float64, bits int) float64 {
	steps := float64(Levels(bits) - 1)
	r := maxV - minV
	if r == 0 {
		return 1
	}
	return r / steps
}

// Quantize quantizes w (row-major rows×cols) to bits using the given
// rounding rule. rng is required for Stochastic and ignored for
// Deterministic.
func Quantize(w []float64, rows, cols, bits int, r Rounding, rng *rand.Rand) (*Tensor, error) {
	if len(w) != rows*cols {
		return nil, fmt.Errorf("quant: data length %d != %d x %d", len(w), rows, cols)
	}
	if bits < 2 || bits > 16 {
		return nil, fmt.Errorf("quant: unsupported bitwidth %d", bits)
	}
	if r == Stochastic && rng == nil {
		return nil, fmt.Errorf("quant: stochastic rounding requires a rand source")
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, v := range w {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	s := ScaleFor(minV, maxV, bits)
	t := &Tensor{Bits: bits, Scale: s, Zero: minV, Q: make([]int32, len(w)), Rows: rows, Cols: cols}
	maxLevel := int32(Levels(bits) - 1)
	for i, v := range w {
		x := (v - minV) / s
		var q float64
		switch r {
		case Deterministic:
			q = math.Round(x)
		case Stochastic:
			fl := math.Floor(x)
			if rng.Float64() < x-fl {
				q = fl + 1
			} else {
				q = fl
			}
		}
		qi := int32(q)
		if qi < 0 {
			qi = 0
		}
		if qi > maxLevel {
			qi = maxLevel
		}
		t.Q[i] = qi
	}
	return t, nil
}

// Dequantize reconstructs float weights: ŵ = q·s + zero.
func (t *Tensor) Dequantize() []float64 {
	out := make([]float64, len(t.Q))
	for i, q := range t.Q {
		out[i] = float64(q)*t.Scale + t.Zero
	}
	return out
}

// RoundTrip quantizes and immediately dequantizes, the common path when
// loading a mixed-precision model.
func RoundTrip(w []float64, rows, cols, bits int, r Rounding, rng *rand.Rand) ([]float64, error) {
	t, err := Quantize(w, rows, cols, bits, r, rng)
	if err != nil {
		return nil, err
	}
	return t.Dequantize(), nil
}

// ErrorStats summarizes elementwise quantization error ŵ − w.
type ErrorStats struct {
	MeanErr float64
	VarErr  float64
	MaxAbs  float64
	Scale   float64
}

// MeasureError quantizes w and reports error statistics. Used by tests to
// validate Theorem 1's rounding-variance terms: deterministic rounding has
// per-element error variance ≤ s²/4 (error in [−s/2, s/2]); stochastic
// rounding is unbiased with variance ≤ s²/4, and for a uniformly
// distributed fractional part E[var] = s²/6.
func MeasureError(w []float64, rows, cols, bits int, r Rounding, rng *rand.Rand) (ErrorStats, error) {
	t, err := Quantize(w, rows, cols, bits, r, rng)
	if err != nil {
		return ErrorStats{}, err
	}
	deq := t.Dequantize()
	var sum, sumSq, maxAbs float64
	for i := range w {
		e := deq[i] - w[i]
		sum += e
		sumSq += e * e
		if a := math.Abs(e); a > maxAbs {
			maxAbs = a
		}
	}
	n := float64(len(w))
	mean := sum / n
	return ErrorStats{
		MeanErr: mean,
		VarErr:  sumSq/n - mean*mean,
		MaxAbs:  maxAbs,
		Scale:   t.Scale,
	}, nil
}

// OutputVarianceBound returns the Theorem 1 upper bound on the *added*
// variance of a linear operator's output W·X after weight-only quantization:
//
//	deterministic: D_W · s_W² · (1/4) · Var[X]
//	stochastic:    D_W · s_W² · (1/6) · (E[X]² + Var[X])
//
// where D_W is the weight inner dimension and s_W the scale.
func OutputVarianceBound(dW int, scale, meanX, varX float64, r Rounding) float64 {
	d := float64(dW)
	switch r {
	case Stochastic:
		return d * scale * scale / 6 * (meanX*meanX + varX)
	default:
		return d * scale * scale / 4 * varX
	}
}
