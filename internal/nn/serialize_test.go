package nn

import (
	"path/filepath"
	"testing"

	"repro/internal/quant"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := newTestModel(t)
	seq := []int{1, 5, 9, 2, 7, 3}
	before, err := m.CrossEntropy(seq)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	after, err := back.CrossEntropy(seq)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Errorf("round trip changed CE: %.10f vs %.10f", before, after)
	}
}

func TestSaveStoresMasterWeightsNotQuantized(t *testing.T) {
	m := newTestModel(t)
	seq := []int{1, 5, 9, 2, 7, 3}
	fp16, _ := m.CrossEntropy(seq)
	// Quantize, save, load: the checkpoint must hold FP16 masters.
	for i := range m.Layers {
		if err := m.SetLayerBits(i, 3, quant.Deterministic, nil); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, _ := back.CrossEntropy(seq)
	if loaded != fp16 {
		t.Errorf("checkpoint should hold master weights: CE %.8f vs FP16 %.8f", loaded, fp16)
	}
}

func TestTrainedModelSurvivesCheckpoint(t *testing.T) {
	m, err := New(trainCfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(m, 3e-3)
	if err != nil {
		t.Fatal(err)
	}
	corpus := MarkovCorpus(trainCfg.Vocab, 40, 12, 7)
	for step := 0; step < 30; step++ {
		if _, err := tr.Step(corpus[(step%4)*8 : (step%4)*8+8]); err != nil {
			t.Fatal(err)
		}
	}
	eval := corpus[32]
	before, _ := m.CrossEntropy(eval)
	path := filepath.Join(t.TempDir(), "trained.ckpt")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	after, _ := back.CrossEntropy(eval)
	if before != after {
		t.Errorf("trained checkpoint round trip: CE %.8f vs %.8f", before, after)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Error("expected missing-file error")
	}
}
