package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/quant"
)

var testCfg = Config{Vocab: 128, Hidden: 32, FFN: 128, Layers: 4, Heads: 4, MaxSeq: 48, SensitivitySlope: 1.0}

func newTestModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(testCfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	bad := testCfg
	bad.Heads = 5
	if _, err := New(bad, 1); err == nil {
		t.Error("expected heads-divisibility error")
	}
	bad = testCfg
	bad.Vocab = 1
	if _, err := New(bad, 1); err == nil {
		t.Error("expected degenerate vocab error")
	}
}

func TestForwardShapes(t *testing.T) {
	m := newTestModel(t)
	logits, err := m.Forward([]int{1, 2, 3, 4, 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if logits.Rows != 5 || logits.Cols != testCfg.Vocab {
		t.Errorf("logits shape %dx%d, want 5x%d", logits.Rows, logits.Cols, testCfg.Vocab)
	}
	if _, err := m.Forward(nil, nil); err == nil {
		t.Error("expected empty-batch error")
	}
	if _, err := m.Forward([]int{999}, nil); err == nil {
		t.Error("expected out-of-vocab error")
	}
	if _, err := m.Forward(make([]int, testCfg.MaxSeq+1), nil); err == nil {
		t.Error("expected MaxSeq error")
	}
}

func TestKVCacheMatchesFullForward(t *testing.T) {
	// Incremental decoding through the KV cache must produce the same
	// logits as a full forward pass — the core correctness property of the
	// prefill/decode split (Fig 2).
	m := newTestModel(t)
	seq := []int{3, 17, 54, 9, 21, 77, 5}
	full, err := m.Forward(seq, nil)
	if err != nil {
		t.Fatal(err)
	}
	cache := m.NewCache()
	// Prefill with first 4 tokens, decode the rest one at a time.
	got, err := m.Forward(seq[:4], cache)
	if err != nil {
		t.Fatal(err)
	}
	lastRows := [][]float64{append([]float64(nil), got.Row(3)...)}
	for _, tok := range seq[4:] {
		got, err = m.Forward([]int{tok}, cache)
		if err != nil {
			t.Fatal(err)
		}
		lastRows = append(lastRows, append([]float64(nil), got.Row(0)...))
	}
	for i, row := range lastRows {
		fullRow := full.Row(3 + i)
		for j := range row {
			if math.Abs(row[j]-fullRow[j]) > 1e-9 {
				t.Fatalf("cached logits diverge at step %d col %d: %g vs %g", i, j, row[j], fullRow[j])
			}
		}
	}
	if cache.Len() != len(seq) {
		t.Errorf("cache length %d, want %d", cache.Len(), len(seq))
	}
}

func TestDeterministicForward(t *testing.T) {
	m1 := newTestModel(t)
	m2 := newTestModel(t)
	a, _ := m1.Forward([]int{1, 2, 3}, nil)
	b, _ := m2.Forward([]int{1, 2, 3}, nil)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed should give identical forward pass")
		}
	}
}

func TestQuantizationDegradesQualityMonotonically(t *testing.T) {
	m := newTestModel(t)
	rng := rand.New(rand.NewSource(7))
	// Evaluate on several low-temperature sequences the FP model is
	// confident about, so quantization noise shows up clearly in CE.
	var corpus [][]int
	for s := 0; s < 6; s++ {
		seq, err := m.Generate([]int{5 + s, 9}, 30, 0.7, rng)
		if err != nil {
			t.Fatal(err)
		}
		corpus = append(corpus, seq)
	}
	ceAt := func(bits int) float64 {
		for i := range m.Layers {
			if err := m.SetLayerBits(i, bits, quant.Deterministic, nil); err != nil {
				t.Fatal(err)
			}
		}
		var total float64
		for _, seq := range corpus {
			ce, err := m.CrossEntropy(seq)
			if err != nil {
				t.Fatal(err)
			}
			total += ce
		}
		return total / float64(len(corpus))
	}
	ce16 := ceAt(16)
	ce8 := ceAt(8)
	ce4 := ceAt(4)
	ce3 := ceAt(3)
	// INT8 may land a hair better than FP16 (the paper observes the same on
	// cluster 6); allow a small negative delta but require the coarse
	// precisions to degrade monotonically.
	if !(ce8 <= ce4 && ce4 <= ce3) {
		t.Errorf("CE should degrade with lower bits: 16→%.4f 8→%.4f 4→%.4f 3→%.4f", ce16, ce8, ce4, ce3)
	}
	if math.Abs(ce8-ce16) > 0.15*(ce3-ce16)+1e-9 {
		t.Errorf("INT8 delta %.4f not near-lossless vs INT3 %.4f (paper §4.2)", ce8-ce16, ce3-ce16)
	}
}

func TestSetLayerBitsRestores16(t *testing.T) {
	m := newTestModel(t)
	seq := []int{1, 2, 3, 4, 5, 6}
	base, _ := m.CrossEntropy(seq)
	if err := m.SetLayerBits(0, 3, quant.Deterministic, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.SetLayerBits(0, 16, quant.Deterministic, nil); err != nil {
		t.Fatal(err)
	}
	back, _ := m.CrossEntropy(seq)
	if math.Abs(back-base) > 1e-12 {
		t.Errorf("restoring 16-bit should recover master weights exactly: %.8f vs %.8f", back, base)
	}
	if err := m.SetLayerBits(99, 4, quant.Deterministic, nil); err == nil {
		t.Error("expected layer range error")
	}
}

func TestApplyBitAssignment(t *testing.T) {
	m := newTestModel(t)
	bits := []int{3, 4, 8, 16}
	if err := m.ApplyBitAssignment(bits, quant.Deterministic, nil); err != nil {
		t.Fatal(err)
	}
	for i, l := range m.Layers {
		if l.Bits() != bits[i] {
			t.Errorf("layer %d bits=%d want %d", i, l.Bits(), bits[i])
		}
	}
	if err := m.ApplyBitAssignment([]int{4}, quant.Deterministic, nil); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestLaterLayersMoreSensitive(t *testing.T) {
	// Table 1: quantizing later layer ranges to 4-bit degrades quality
	// more. Our SensitivitySlope must reproduce that ordering.
	cfg := testCfg
	cfg.Layers = 8
	m, err := New(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	seq, err := m.Generate([]int{7}, 30, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	quantRange := func(lo, hi int) float64 {
		for i := 0; i < cfg.Layers; i++ {
			b := 16
			if i >= lo && i < hi {
				b = 3
			}
			if err := m.SetLayerBits(i, b, quant.Deterministic, nil); err != nil {
				t.Fatal(err)
			}
		}
		ce, err := m.CrossEntropy(seq)
		if err != nil {
			t.Fatal(err)
		}
		return ce
	}
	early := quantRange(0, 4)
	late := quantRange(4, 8)
	if early >= late {
		t.Errorf("early-layer quantization (CE %.4f) should hurt less than late (CE %.4f)", early, late)
	}
}

func TestCalibrateStatsFillsInputStats(t *testing.T) {
	m := newTestModel(t)
	if err := m.CalibrateStats([]int{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	st, err := m.LayerLinearStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 6 {
		t.Fatalf("expected 6 linear operators per layer, got %d", len(st))
	}
	for i, s := range st {
		if s.InVar <= 0 {
			t.Errorf("op %d: calibrated input variance should be positive, got %g", i, s.InVar)
		}
		if s.WMax <= s.WMin {
			t.Errorf("op %d: weight range degenerate [%g,%g]", i, s.WMin, s.WMax)
		}
		if s.DW <= 0 {
			t.Errorf("op %d: DW=%d", i, s.DW)
		}
	}
	if _, err := m.LayerLinearStats(-1); err == nil {
		t.Error("expected range error")
	}
}

func TestGenerateRespectsMaxSeq(t *testing.T) {
	m := newTestModel(t)
	rng := rand.New(rand.NewSource(9))
	seq, err := m.Generate([]int{1, 2, 3}, 1000, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) > testCfg.MaxSeq {
		t.Errorf("generated sequence length %d exceeds MaxSeq %d", len(seq), testCfg.MaxSeq)
	}
	for _, tok := range seq {
		if tok < 0 || tok >= testCfg.Vocab {
			t.Errorf("generated token %d out of vocab", tok)
		}
	}
}

func TestCrossEntropyValidation(t *testing.T) {
	m := newTestModel(t)
	if _, err := m.CrossEntropy([]int{1}); err == nil {
		t.Error("expected short-sequence error")
	}
	ce, err := m.CrossEntropy([]int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if ce <= 0 || math.IsNaN(ce) {
		t.Errorf("CE should be positive and finite, got %g", ce)
	}
	// Untrained model CE is near ln(vocab).
	if ce > math.Log(float64(testCfg.Vocab))*2 {
		t.Errorf("CE %.3f implausibly high vs ln(V)=%.3f", ce, math.Log(float64(testCfg.Vocab)))
	}
}

func TestMixedPrecisionBetweenUniformBounds(t *testing.T) {
	// Fig 4: mixed 4-8 quality sits between uniform-4 and uniform-8.
	m := newTestModel(t)
	rng := rand.New(rand.NewSource(5))
	seq, err := m.Generate([]int{11, 3}, 30, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	uniform := func(b int) float64 {
		bits := make([]int, testCfg.Layers)
		for i := range bits {
			bits[i] = b
		}
		if err := m.ApplyBitAssignment(bits, quant.Deterministic, nil); err != nil {
			t.Fatal(err)
		}
		ce, _ := m.CrossEntropy(seq)
		return ce
	}
	ce4 := uniform(4)
	ce8 := uniform(8)
	bits := make([]int, testCfg.Layers)
	mixRng := rand.New(rand.NewSource(8))
	for i := range bits {
		if mixRng.Intn(2) == 0 {
			bits[i] = 4
		} else {
			bits[i] = 8
		}
	}
	if err := m.ApplyBitAssignment(bits, quant.Deterministic, nil); err != nil {
		t.Fatal(err)
	}
	ceMix, _ := m.CrossEntropy(seq)
	lo, hi := math.Min(ce8, ce4), math.Max(ce8, ce4)
	slack := (hi - lo) * 0.25
	if ceMix < lo-slack || ceMix > hi+slack {
		t.Errorf("mixed4-8 CE %.4f outside [%.4f, %.4f]", ceMix, lo, hi)
	}
}
