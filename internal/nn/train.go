// Training support for the reference transformer: a taped forward pass,
// manual backpropagation through every operator (tied-embedding head,
// LayerNorm, causal multi-head attention, GELU MLP, residuals), and an
// Adam optimizer — all in pure Go.
//
// Training matters for the reproduction's quality experiments: a trained
// model makes confident, structured predictions, so quantization damage
// measured on it behaves like the paper's real checkpoints rather than
// like noise on a random network. Gradients are verified against finite
// differences in tests.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// layerTape stores one decoder layer's forward intermediates.
type layerTape struct {
	xIn     *tensor.Matrix // layer input (residual stream)
	ln1In   *tensor.Matrix
	ln1Out  *tensor.Matrix
	q, k, v *tensor.Matrix
	probs   []*tensor.Matrix // per head, s×s
	ctx     *tensor.Matrix
	resid2  *tensor.Matrix // xIn + attnOut (input to LN2 path)
	ln2Out  *tensor.Matrix
	fc1Out  *tensor.Matrix // pre-GELU
	gelu    *tensor.Matrix
}

type tape struct {
	tokens []int
	x0     *tensor.Matrix // embedding output
	layers []layerTape
	lnfIn  *tensor.Matrix // input to the final LayerNorm
	lnfOut *tensor.Matrix
	logits *tensor.Matrix
}

// forwardTape runs the full-sequence forward pass recording intermediates.
func (m *Model) forwardTape(tokens []int) (*tape, error) {
	x, err := m.EmbedTokens(tokens, 0)
	if err != nil {
		return nil, err
	}
	tp := &tape{tokens: tokens, x0: x.Clone()}
	for _, l := range m.Layers {
		lt := layerTape{xIn: x.Clone()}
		// LN1.
		lt.ln1In = x.Clone()
		ln1 := x.Clone()
		if err := ln1.LayerNormRows(l.ln1g, l.ln1b); err != nil {
			return nil, err
		}
		lt.ln1Out = ln1.Clone()
		// QKV.
		if lt.q, err = l.wq.apply(ln1); err != nil {
			return nil, err
		}
		if lt.k, err = l.wk.apply(ln1); err != nil {
			return nil, err
		}
		if lt.v, err = l.wv.apply(ln1); err != nil {
			return nil, err
		}
		// Attention with saved probabilities.
		nh := m.Cfg.Heads
		dh := m.Cfg.Hidden / nh
		ctx := tensor.New(len(tokens), m.Cfg.Hidden)
		scale := 1 / math.Sqrt(float64(dh))
		for h := 0; h < nh; h++ {
			qh := headSlice(lt.q, h, dh)
			kh := headSlice(lt.k, h, dh)
			vh := headSlice(lt.v, h, dh)
			scores, err := tensor.MatMulT(qh, kh)
			if err != nil {
				return nil, err
			}
			scores.Scale(scale)
			scores.CausalMask(0)
			scores.SoftmaxRows()
			lt.probs = append(lt.probs, scores.Clone())
			chead, err := tensor.MatMul(scores, vh)
			if err != nil {
				return nil, err
			}
			for i := 0; i < chead.Rows; i++ {
				copy(ctx.Row(i)[h*dh:(h+1)*dh], chead.Row(i))
			}
		}
		lt.ctx = ctx.Clone()
		attnOut, err := l.wo.apply(ctx)
		if err != nil {
			return nil, err
		}
		if err := attnOut.Add(lt.xIn); err != nil {
			return nil, err
		}
		lt.resid2 = attnOut.Clone()
		// LN2 + MLP.
		ln2 := attnOut.Clone()
		if err := ln2.LayerNormRows(l.ln2g, l.ln2b); err != nil {
			return nil, err
		}
		lt.ln2Out = ln2.Clone()
		fc1, err := l.fc1.apply(ln2)
		if err != nil {
			return nil, err
		}
		lt.fc1Out = fc1.Clone()
		g := fc1.Clone()
		g.GELU()
		lt.gelu = g.Clone()
		fc2, err := l.fc2.apply(g)
		if err != nil {
			return nil, err
		}
		if err := fc2.Add(lt.resid2); err != nil {
			return nil, err
		}
		x = fc2
		tp.layers = append(tp.layers, lt)
	}
	tp.lnfIn = x.Clone()
	out := x.Clone()
	if err := out.LayerNormRows(m.LNFg, m.LNFb); err != nil {
		return nil, err
	}
	tp.lnfOut = out.Clone()
	logits, err := tensor.MatMulT(out, m.Embed)
	if err != nil {
		return nil, err
	}
	tp.logits = logits
	return tp, nil
}

// Grads accumulates gradients for every parameter (paired with the model's
// parameter registry order).
type Grads struct {
	bufs [][]float64
}

// trainState is the Adam optimizer state.
type trainState struct {
	params [][]float64 // views into the model's master tensors
	m, v   [][]float64
	step   int
}

// Trainer runs Adam on a reference model.
type Trainer struct {
	Model *Model
	LR    float64
	state *trainState
}

// NewTrainer prepares a model for training (all layers must be FP16).
func NewTrainer(m *Model, lr float64) (*Trainer, error) {
	for i, l := range m.Layers {
		if l.Bits() != 16 {
			return nil, fmt.Errorf("nn: layer %d quantized (%d-bit); train in FP16", i, l.Bits())
		}
	}
	if lr <= 0 {
		return nil, fmt.Errorf("nn: learning rate must be positive")
	}
	st := &trainState{params: m.paramSlices()}
	for _, p := range st.params {
		st.m = append(st.m, make([]float64, len(p)))
		st.v = append(st.v, make([]float64, len(p)))
	}
	return &Trainer{Model: m, LR: lr, state: st}, nil
}

// paramSlices enumerates every trainable tensor in a fixed order.
func (m *Model) paramSlices() [][]float64 {
	out := [][]float64{m.Embed.Data, m.Pos.Data, m.LNFg, m.LNFb}
	for _, l := range m.Layers {
		for _, lin := range l.linears() {
			out = append(out, lin.master.Data, lin.bias)
		}
		out = append(out, l.ln1g, l.ln1b, l.ln2g, l.ln2b)
	}
	return out
}

// zeroGrads allocates a gradient set matching paramSlices.
func (m *Model) zeroGrads() *Grads {
	g := &Grads{}
	for _, p := range m.paramSlices() {
		g.bufs = append(g.bufs, make([]float64, len(p)))
	}
	return g
}

// lossAndGrads computes mean next-token cross-entropy on seq and
// accumulates gradients into g.
func (m *Model) lossAndGrads(seq []int, g *Grads) (float64, error) {
	if len(seq) < 2 {
		return 0, fmt.Errorf("nn: need ≥2 tokens to train")
	}
	inputs := seq[:len(seq)-1]
	tp, err := m.forwardTape(inputs)
	if err != nil {
		return 0, err
	}
	s := len(inputs)
	V := m.Cfg.Vocab
	// Softmax CE loss and dLogits.
	dLogits := tensor.New(s, V)
	var loss float64
	for i := 0; i < s; i++ {
		row := tp.logits.Row(i)
		maxV := math.Inf(-1)
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(v - maxV)
		}
		lse := maxV + math.Log(sum)
		tgt := seq[i+1]
		loss += lse - row[tgt]
		dr := dLogits.Row(i)
		for j := 0; j < V; j++ {
			dr[j] = math.Exp(row[j]-lse) / float64(s)
		}
		dr[tgt] -= 1 / float64(s)
	}
	loss /= float64(s)

	gi := newGradIndex(m, g)
	// Tied head: logits = lnfOut · Embedᵀ.
	dLnfOut, err := tensor.MatMul(dLogits, m.Embed)
	if err != nil {
		return 0, err
	}
	dEmbHead, err := tensor.MatMulAT(dLogits, tp.lnfOut)
	if err != nil {
		return 0, err
	}
	gi.add(gi.embed, dEmbHead.Data)
	// Final LN.
	dx := layerNormBackward(tp.lnfIn, m.LNFg, dLnfOut, gi.buf(gi.lnfG), gi.buf(gi.lnfB))
	// Layers in reverse.
	for li := len(m.Layers) - 1; li >= 0; li-- {
		dx, err = m.layerBackward(li, &tp.layers[li], dx, gi)
		if err != nil {
			return 0, err
		}
	}
	// Embedding lookup: x0[i] = E[tok] + P[i].
	embedG := gi.buf(gi.embed)
	posG := gi.buf(gi.pos)
	h := m.Cfg.Hidden
	for i, tok := range inputs {
		dr := dx.Row(i)
		for j := 0; j < h; j++ {
			embedG[tok*h+j] += dr[j]
			posG[i*h+j] += dr[j]
		}
	}
	return loss, nil
}

// gradIndex maps parameter names to Grads buffer indices (mirrors
// paramSlices order).
type gradIndex struct {
	g            *Grads
	embed, pos   int
	lnfG, lnfB   int
	layerBase    int // first buffer index of layer 0
	perLayerBufs int
}

func newGradIndex(m *Model, g *Grads) *gradIndex {
	return &gradIndex{g: g, embed: 0, pos: 1, lnfG: 2, lnfB: 3, layerBase: 4, perLayerBufs: 16}
}

func (gi *gradIndex) buf(i int) []float64 { return gi.g.bufs[i] }

func (gi *gradIndex) add(i int, v []float64) {
	dst := gi.g.bufs[i]
	for j := range v {
		dst[j] += v[j]
	}
}

// Layer buffer layout: 6 linears × (w, b) = 12, then ln1g, ln1b, ln2g, ln2b.
func (gi *gradIndex) linW(layer, op int) int { return gi.layerBase + layer*gi.perLayerBufs + 2*op }
func (gi *gradIndex) linB(layer, op int) int { return gi.layerBase + layer*gi.perLayerBufs + 2*op + 1 }
func (gi *gradIndex) ln(layer, which int) int {
	return gi.layerBase + layer*gi.perLayerBufs + 12 + which
}

// linearBackward: y = x·W + b. Returns dx; accumulates dW, db.
func linearBackward(x *tensor.Matrix, w *tensor.Matrix, dy *tensor.Matrix, dW, dB []float64) (*tensor.Matrix, error) {
	gw, err := tensor.MatMulAT(x, dy)
	if err != nil {
		return nil, err
	}
	for i := range gw.Data {
		dW[i] += gw.Data[i]
	}
	for i := 0; i < dy.Rows; i++ {
		r := dy.Row(i)
		for j := range r {
			dB[j] += r[j]
		}
	}
	return tensor.MatMulT(dy, w)
}

// layerNormBackward: y = g⊙x̂ + b over rows of x. Returns dx; accumulates
// dGain, dBias.
func layerNormBackward(x *tensor.Matrix, gain []float64, dy *tensor.Matrix, dGain, dBias []float64) *tensor.Matrix {
	const eps = 1e-5
	dx := tensor.New(x.Rows, x.Cols)
	n := float64(x.Cols)
	for i := 0; i < x.Rows; i++ {
		xr := x.Row(i)
		dyr := dy.Row(i)
		var mean float64
		for _, v := range xr {
			mean += v
		}
		mean /= n
		var variance float64
		for _, v := range xr {
			d := v - mean
			variance += d * d
		}
		variance /= n
		inv := 1 / math.Sqrt(variance+eps)
		// x̂ and the two reduction terms.
		var sumDxhat, sumDxhatXhat float64
		xhat := make([]float64, x.Cols)
		dxhat := make([]float64, x.Cols)
		for j := range xr {
			xhat[j] = (xr[j] - mean) * inv
			dGain[j] += dyr[j] * xhat[j]
			dBias[j] += dyr[j]
			dxhat[j] = dyr[j] * gain[j]
			sumDxhat += dxhat[j]
			sumDxhatXhat += dxhat[j] * xhat[j]
		}
		dr := dx.Row(i)
		for j := range xr {
			dr[j] = inv * (dxhat[j] - sumDxhat/n - xhat[j]*sumDxhatXhat/n)
		}
	}
	return dx
}

// geluBackward applies the tanh-approximation derivative elementwise.
func geluBackward(pre *tensor.Matrix, dy *tensor.Matrix) *tensor.Matrix {
	const c = 0.7978845608028654
	dx := tensor.New(pre.Rows, pre.Cols)
	for i, x := range pre.Data {
		u := c * (x + 0.044715*x*x*x)
		t := math.Tanh(u)
		du := c * (1 + 3*0.044715*x*x)
		dx.Data[i] = dy.Data[i] * (0.5*(1+t) + 0.5*x*(1-t*t)*du)
	}
	return dx
}

// layerBackward backpropagates through one decoder layer.
func (m *Model) layerBackward(li int, lt *layerTape, dOut *tensor.Matrix, gi *gradIndex) (*tensor.Matrix, error) {
	l := m.Layers[li]
	// dOut flows into fc2-output and (via residual) resid2.
	dFc2 := dOut
	dResid2 := dOut.Clone()
	dGelu, err := linearBackward(lt.gelu, l.fc2.master, dFc2, gi.buf(gi.linW(li, 5)), gi.buf(gi.linB(li, 5)))
	if err != nil {
		return nil, err
	}
	dFc1 := geluBackward(lt.fc1Out, dGelu)
	dLn2Out, err := linearBackward(lt.ln2Out, l.fc1.master, dFc1, gi.buf(gi.linW(li, 4)), gi.buf(gi.linB(li, 4)))
	if err != nil {
		return nil, err
	}
	dResidFromLN2 := layerNormBackward(lt.resid2, l.ln2g, dLn2Out, gi.buf(gi.ln(li, 2)), gi.buf(gi.ln(li, 3)))
	if err := dResid2.Add(dResidFromLN2); err != nil {
		return nil, err
	}
	// resid2 = xIn + woOut.
	dWoOut := dResid2
	dXin := dResid2.Clone()
	dCtx, err := linearBackward(lt.ctx, l.wo.master, dWoOut, gi.buf(gi.linW(li, 3)), gi.buf(gi.linB(li, 3)))
	if err != nil {
		return nil, err
	}
	// Attention backward per head.
	nh := m.Cfg.Heads
	dh := m.Cfg.Hidden / nh
	sLen := lt.ctx.Rows
	scale := 1 / math.Sqrt(float64(dh))
	dQ := tensor.New(sLen, m.Cfg.Hidden)
	dK := tensor.New(sLen, m.Cfg.Hidden)
	dV := tensor.New(sLen, m.Cfg.Hidden)
	for h := 0; h < nh; h++ {
		dCtxH := headSlice(dCtx, h, dh)
		kh := headSlice(lt.k, h, dh)
		vh := headSlice(lt.v, h, dh)
		qh := headSlice(lt.q, h, dh)
		probs := lt.probs[h]
		// ctx_h = probs · v_h.
		dProbs, err := tensor.MatMulT(dCtxH, vh)
		if err != nil {
			return nil, err
		}
		dVh, err := tensor.MatMulAT(probs, dCtxH)
		if err != nil {
			return nil, err
		}
		// Softmax backward: ds = p ⊙ (dp − Σ_j dp_j p_j).
		dScores := tensor.New(sLen, sLen)
		for i := 0; i < sLen; i++ {
			pr := probs.Row(i)
			dpr := dProbs.Row(i)
			var dot float64
			for j := range pr {
				dot += dpr[j] * pr[j]
			}
			dsr := dScores.Row(i)
			for j := range pr {
				dsr[j] = pr[j] * (dpr[j] - dot)
			}
		}
		dScores.Scale(scale)
		// scores = q·kᵀ (pre-scale folded above).
		dQh, err := tensor.MatMul(dScores, kh)
		if err != nil {
			return nil, err
		}
		dKh, err := tensor.MatMulAT(dScores, qh)
		if err != nil {
			return nil, err
		}
		for i := 0; i < sLen; i++ {
			copy(dQ.Row(i)[h*dh:(h+1)*dh], dQh.Row(i))
			copy(dK.Row(i)[h*dh:(h+1)*dh], dKh.Row(i))
			copy(dV.Row(i)[h*dh:(h+1)*dh], dVh.Row(i))
		}
	}
	dLn1A, err := linearBackward(lt.ln1Out, l.wq.master, dQ, gi.buf(gi.linW(li, 0)), gi.buf(gi.linB(li, 0)))
	if err != nil {
		return nil, err
	}
	dLn1B, err := linearBackward(lt.ln1Out, l.wk.master, dK, gi.buf(gi.linW(li, 1)), gi.buf(gi.linB(li, 1)))
	if err != nil {
		return nil, err
	}
	dLn1C, err := linearBackward(lt.ln1Out, l.wv.master, dV, gi.buf(gi.linW(li, 2)), gi.buf(gi.linB(li, 2)))
	if err != nil {
		return nil, err
	}
	if err := dLn1A.Add(dLn1B); err != nil {
		return nil, err
	}
	if err := dLn1A.Add(dLn1C); err != nil {
		return nil, err
	}
	dXinFromLN1 := layerNormBackward(lt.ln1In, l.ln1g, dLn1A, gi.buf(gi.ln(li, 0)), gi.buf(gi.ln(li, 1)))
	if err := dXin.Add(dXinFromLN1); err != nil {
		return nil, err
	}
	return dXin, nil
}

// Step runs one Adam update over a mini-batch of sequences and returns the
// mean loss.
func (tr *Trainer) Step(batch [][]int) (float64, error) {
	if len(batch) == 0 {
		return 0, fmt.Errorf("nn: empty training batch")
	}
	m := tr.Model
	g := m.zeroGrads()
	var loss float64
	for _, seq := range batch {
		l, err := m.lossAndGrads(seq, g)
		if err != nil {
			return 0, err
		}
		loss += l
	}
	loss /= float64(len(batch))
	inv := 1 / float64(len(batch))
	st := tr.state
	st.step++
	const (
		b1, b2, eps = 0.9, 0.999, 1e-8
	)
	c1 := 1 - math.Pow(b1, float64(st.step))
	c2 := 1 - math.Pow(b2, float64(st.step))
	for pi, p := range st.params {
		gb := g.bufs[pi]
		mb := st.m[pi]
		vb := st.v[pi]
		for j := range p {
			grad := gb[j] * inv
			mb[j] = b1*mb[j] + (1-b1)*grad
			vb[j] = b2*vb[j] + (1-b2)*grad*grad
			p[j] -= tr.LR * (mb[j] / c1) / (math.Sqrt(vb[j]/c2) + eps)
		}
	}
	// Working copies must follow the updated masters.
	for _, l := range m.Layers {
		for _, lin := range l.linears() {
			lin.work = lin.master.Clone()
		}
	}
	return loss, nil
}

// MarkovCorpus generates training text from a sparse first-order Markov
// chain over the vocabulary (every token has a handful of likely
// successors), giving the model real structure to learn. The chain's
// conditional entropy is far below ln(V), so a trained model's CE
// separates cleanly from an untrained one's.
func MarkovCorpus(vocab, sequences, length int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	const successors = 4
	next := make([][]int, vocab)
	for t := 0; t < vocab; t++ {
		for k := 0; k < successors; k++ {
			next[t] = append(next[t], rng.Intn(vocab))
		}
	}
	out := make([][]int, sequences)
	for s := range out {
		seq := make([]int, length)
		seq[0] = rng.Intn(vocab)
		for i := 1; i < length; i++ {
			opts := next[seq[i-1]]
			seq[i] = opts[rng.Intn(len(opts))]
		}
		out[s] = seq
	}
	return out
}
