// Package nn implements a real (small) decoder-only transformer — the
// "reference model" — used to measure the quality impact of mixed-precision
// quantization with actual arithmetic rather than formulas.
//
// The paper measures perplexity of OPT/BLOOM checkpoints under bit
// assignments; without those weights (or a GPU ecosystem) we instead build a
// structurally identical decoder stack with controlled synthetic weights,
// generate a corpus from the full-precision model itself, and score any
// quantized variant by its cross-entropy on that corpus
// (pseudo-perplexity). Orderings between quantization schemes — the only
// thing the assigner consumes — transfer (DESIGN.md §3).
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// Config shapes a reference model.
type Config struct {
	Vocab  int
	Hidden int
	FFN    int
	Layers int
	Heads  int
	MaxSeq int
	// SensitivitySlope controls how strongly quantization sensitivity grows
	// with depth: deeper layers receive a sparse set of outlier weights
	// whose magnitude grows with SensitivitySlope·depth. Outliers inflate
	// the symmetric quantization range (hence the scale s_W and the real
	// rounding error) without adding proportional signal — the mechanism
	// behind hard-to-quantize layers in real LLMs — reproducing Table 1,
	// where quantizing later layer ranges hurts more. 0 means uniform.
	SensitivitySlope float64
}

// Validate checks structural invariants.
func (c Config) Validate() error {
	if c.Hidden%c.Heads != 0 {
		return fmt.Errorf("nn: hidden %d not divisible by heads %d", c.Hidden, c.Heads)
	}
	if c.Vocab < 2 || c.Layers < 1 || c.MaxSeq < 2 {
		return fmt.Errorf("nn: degenerate config %+v", c)
	}
	return nil
}

// TinyOPT is the default reference config standing in for OPT-1.3b in
// quality experiments.
var TinyOPT = Config{Vocab: 384, Hidden: 64, FFN: 256, Layers: 24, Heads: 4, MaxSeq: 96, SensitivitySlope: 2.0}

// TinyBLOOM stands in for BLOOM-3b (more layers, wider FFN ratio).
var TinyBLOOM = Config{Vocab: 384, Hidden: 64, FFN: 256, Layers: 30, Heads: 4, MaxSeq: 96, SensitivitySlope: 2.0}

// linear is one quantizable weight matrix with its master full-precision
// copy, the working (possibly dequantized) copy, and calibration statistics
// of its input activations.
type linear struct {
	master *tensor.Matrix
	work   *tensor.Matrix
	bias   []float64
	// Calibration stats of the input X, captured by CalibrateStats.
	InMean float64
	InVar  float64
}

func (l *linear) apply(x *tensor.Matrix) (*tensor.Matrix, error) {
	out, err := tensor.MatMul(x, l.work)
	if err != nil {
		return nil, err
	}
	if err := out.AddRow(l.bias); err != nil {
		return nil, err
	}
	return out, nil
}

// Layer is one decoder layer.
type Layer struct {
	wq, wk, wv, wo, fc1, fc2 *linear
	ln1g, ln1b, ln2g, ln2b   []float64
	bits                     int // current precision (16 = master weights)
}

// Bits returns the layer's current bitwidth.
func (l *Layer) Bits() int { return l.bits }

// KVCache stores per-layer key/value histories for incremental decoding.
type KVCache struct {
	K, V []*tensor.Matrix // one per layer, rows = past positions
}

// Len returns the cached context length (the first populated layer's
// history; a stage-local cache populates only its own layers).
func (kv *KVCache) Len() int {
	for _, k := range kv.K {
		if k != nil {
			return k.Rows
		}
	}
	return 0
}

// Model is the reference transformer.
type Model struct {
	Cfg    Config
	Embed  *tensor.Matrix // vocab × hidden
	Pos    *tensor.Matrix // maxseq × hidden
	LNFg   []float64
	LNFb   []float64
	Layers []*Layer
	// KVBits quantizes KV-cache entries as they are written (16 = off).
	// This is the real-arithmetic counterpart of the planner's KV-cache
	// quantization extension: K/V blocks are rounded to KVBits with
	// per-block scales before storage, so attention reads dequantized
	// values exactly as an INT8-KV kernel would.
	KVBits int
}

// SetKVBits selects the KV-cache storage precision (8 or 16).
func (m *Model) SetKVBits(bits int) error {
	switch bits {
	case 8, 16:
		m.KVBits = bits
		return nil
	default:
		return fmt.Errorf("nn: unsupported KV precision %d (want 8 or 16)", bits)
	}
}

// quantizeKV rounds a freshly-computed K or V block to the model's KV
// precision (per-block symmetric scales).
func (m *Model) quantizeKV(x *tensor.Matrix) (*tensor.Matrix, error) {
	if m.KVBits == 0 || m.KVBits >= 16 {
		return x, nil
	}
	deq, err := quant.RoundTrip(x.Data, x.Rows, x.Cols, m.KVBits, quant.Deterministic, nil)
	if err != nil {
		return nil, err
	}
	return tensor.FromData(x.Rows, x.Cols, deq)
}

// New creates a reference model with seeded Gaussian weights. Weight
// magnitude grows with depth according to SensitivitySlope so that deeper
// layers are more quantization-sensitive.
func New(cfg Config, seed int64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	h, f := cfg.Hidden, cfg.FFN
	sigmaEmbed := 1.0 / math.Sqrt(float64(h))
	m := &Model{
		Cfg:   cfg,
		Embed: tensor.Randn(cfg.Vocab, h, sigmaEmbed, rng),
		Pos:   tensor.Randn(cfg.MaxSeq, h, sigmaEmbed*0.5, rng),
		LNFg:  ones(h),
		LNFb:  make([]float64, h),
	}
	for i := 0; i < cfg.Layers; i++ {
		depth := float64(i) / math.Max(1, float64(cfg.Layers-1))
		sw := 1 / math.Sqrt(float64(h))
		sf := 1 / math.Sqrt(float64(f))
		l := &Layer{
			wq:   newLinear(h, h, sw, rng),
			wk:   newLinear(h, h, sw, rng),
			wv:   newLinear(h, h, sw, rng),
			wo:   newLinear(h, h, sw/math.Sqrt(2*float64(cfg.Layers)), rng),
			fc1:  newLinear(h, f, sw, rng),
			fc2:  newLinear(f, h, sf/math.Sqrt(2*float64(cfg.Layers)), rng),
			ln1g: ones(h), ln1b: make([]float64, h),
			ln2g: ones(h), ln2b: make([]float64, h),
			bits: 16,
		}
		// Depth-growing outlier weights: ~0.5% of each linear's entries are
		// magnified, widening the quantization range without adding
		// proportional signal. Relative rounding error therefore grows
		// with depth even though typical weight scales stay constant.
		outlier := 1 + 5*cfg.SensitivitySlope*depth
		if outlier > 1 {
			for _, lin := range l.linears() {
				injectOutliers(lin.master.Data, 0.005, outlier, rng)
				lin.work = lin.master.Clone()
			}
		}
		m.Layers = append(m.Layers, l)
	}
	return m, nil
}

// injectOutliers multiplies a random `frac` of entries by `factor`.
func injectOutliers(w []float64, frac, factor float64, rng *rand.Rand) {
	n := int(frac * float64(len(w)))
	if n < 1 {
		n = 1
	}
	for k := 0; k < n; k++ {
		w[rng.Intn(len(w))] *= factor
	}
}

func newLinear(in, out int, sigma float64, rng *rand.Rand) *linear {
	w := tensor.Randn(in, out, sigma, rng)
	return &linear{master: w, work: w.Clone(), bias: make([]float64, out)}
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// linears enumerates a layer's quantizable operators (paper §4.2: weight-only
// quantization targets linear operators).
func (l *Layer) linears() []*linear {
	return []*linear{l.wq, l.wk, l.wv, l.wo, l.fc1, l.fc2}
}

// SetLayerBits quantizes layer i's linear weights to the given bitwidth
// (16 restores master weights). The master copy is never modified, so bit
// assignments can be swapped freely.
func (m *Model) SetLayerBits(i, bits int, r quant.Rounding, rng *rand.Rand) error {
	if i < 0 || i >= len(m.Layers) {
		return fmt.Errorf("nn: layer %d out of range [0,%d)", i, len(m.Layers))
	}
	l := m.Layers[i]
	if bits == 16 {
		for _, lin := range l.linears() {
			lin.work = lin.master.Clone()
		}
		l.bits = 16
		return nil
	}
	for _, lin := range l.linears() {
		deq, err := quant.RoundTrip(lin.master.Data, lin.master.Rows, lin.master.Cols, bits, r, rng)
		if err != nil {
			return err
		}
		w, err := tensor.FromData(lin.master.Rows, lin.master.Cols, deq)
		if err != nil {
			return err
		}
		lin.work = w
	}
	l.bits = bits
	return nil
}

// SetLayerScheme quantizes layer i with a fine-grained scheme (per-channel
// or group-wise scales) — the §7 drop-in candidates (AWQ/SpQR/GPTQ group
// variants). bits == 16 restores master weights regardless of scheme.
func (m *Model) SetLayerScheme(i, bits int, scheme quant.Scheme, groupSize int, r quant.Rounding, rng *rand.Rand) error {
	if i < 0 || i >= len(m.Layers) {
		return fmt.Errorf("nn: layer %d out of range [0,%d)", i, len(m.Layers))
	}
	l := m.Layers[i]
	if bits == 16 {
		for _, lin := range l.linears() {
			lin.work = lin.master.Clone()
		}
		l.bits = 16
		return nil
	}
	for _, lin := range l.linears() {
		deq, err := quant.RoundTripGrouped(lin.master.Data, lin.master.Rows, lin.master.Cols, bits, scheme, groupSize, r, rng)
		if err != nil {
			return err
		}
		w, err := tensor.FromData(lin.master.Rows, lin.master.Cols, deq)
		if err != nil {
			return err
		}
		lin.work = w
	}
	l.bits = bits
	return nil
}

// ApplyBitAssignment sets every layer's precision from the given slice
// (len == Layers).
func (m *Model) ApplyBitAssignment(bits []int, r quant.Rounding, rng *rand.Rand) error {
	if len(bits) != len(m.Layers) {
		return fmt.Errorf("nn: %d bit entries for %d layers", len(bits), len(m.Layers))
	}
	for i, b := range bits {
		if err := m.SetLayerBits(i, b, r, rng); err != nil {
			return err
		}
	}
	return nil
}

// NewCache allocates an empty KV cache for incremental decoding.
func (m *Model) NewCache() *KVCache {
	return &KVCache{K: make([]*tensor.Matrix, len(m.Layers)), V: make([]*tensor.Matrix, len(m.Layers))}
}

// Forward runs the decoder on `tokens` (appended after cache contents) and
// returns logits for each new position (rows = len(tokens)). With a non-nil
// cache this is the prefill/decode path of the paper's Fig 2: prefill passes
// the whole prompt, decode passes one token re-using cached KV pairs.
func (m *Model) Forward(tokens []int, cache *KVCache) (*tensor.Matrix, error) {
	past := 0
	if cache != nil {
		past = cache.Len()
	}
	x, err := m.EmbedTokens(tokens, past)
	if err != nil {
		return nil, err
	}
	x, err = m.ForwardRange(0, len(m.Layers), x, cache)
	if err != nil {
		return nil, err
	}
	return m.Logits(x)
}

// EmbedTokens is the master engine's preprocessing step (paper §3):
// token-embedding lookup plus position embedding at offset `past`.
func (m *Model) EmbedTokens(tokens []int, past int) (*tensor.Matrix, error) {
	if len(tokens) == 0 {
		return nil, fmt.Errorf("nn: empty token batch")
	}
	if past < 0 || past+len(tokens) > m.Cfg.MaxSeq {
		return nil, fmt.Errorf("nn: sequence %d exceeds MaxSeq %d", past+len(tokens), m.Cfg.MaxSeq)
	}
	h := m.Cfg.Hidden
	x := tensor.New(len(tokens), h)
	for i, tok := range tokens {
		if tok < 0 || tok >= m.Cfg.Vocab {
			return nil, fmt.Errorf("nn: token %d out of vocab %d", tok, m.Cfg.Vocab)
		}
		copy(x.Row(i), m.Embed.Row(tok))
		pos := m.Pos.Row(past + i)
		xr := x.Row(i)
		for j := range xr {
			xr[j] += pos[j]
		}
	}
	return x, nil
}

// ForwardRange runs layers [lo, hi) on hidden states x — one pipeline
// stage's share of the model. The cache is indexed by absolute layer, so a
// stage can pass its own KVCache covering only its layers.
func (m *Model) ForwardRange(lo, hi int, x *tensor.Matrix, cache *KVCache) (*tensor.Matrix, error) {
	if lo < 0 || hi > len(m.Layers) || lo >= hi {
		return nil, fmt.Errorf("nn: layer range [%d,%d) out of [0,%d]", lo, hi, len(m.Layers))
	}
	for li := lo; li < hi; li++ {
		var err error
		x, err = m.layerForward(m.Layers[li], li, x, cache)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d: %w", li, err)
		}
	}
	return x, nil
}

// Logits is the master engine's postprocessing step: final LayerNorm plus
// the (tied) LM-head projection.
func (m *Model) Logits(x *tensor.Matrix) (*tensor.Matrix, error) {
	out := x.Clone()
	if err := out.LayerNormRows(m.LNFg, m.LNFb); err != nil {
		return nil, err
	}
	return tensor.MatMulT(out, m.Embed)
}

func (m *Model) layerForward(l *Layer, li int, x *tensor.Matrix, cache *KVCache) (*tensor.Matrix, error) {
	resid := x.Clone()
	if err := x.LayerNormRows(l.ln1g, l.ln1b); err != nil {
		return nil, err
	}
	recordStats(l.wq, x)
	recordStats(l.wk, x)
	recordStats(l.wv, x)
	q, err := l.wq.apply(x)
	if err != nil {
		return nil, err
	}
	k, err := l.wk.apply(x)
	if err != nil {
		return nil, err
	}
	v, err := l.wv.apply(x)
	if err != nil {
		return nil, err
	}
	past := 0
	if cache != nil {
		if k, err = m.quantizeKV(k); err != nil {
			return nil, err
		}
		if v, err = m.quantizeKV(v); err != nil {
			return nil, err
		}
		if cache.K[li] != nil {
			past = cache.K[li].Rows
			if k, err = tensor.VStack(cache.K[li], k); err != nil {
				return nil, err
			}
			if v, err = tensor.VStack(cache.V[li], v); err != nil {
				return nil, err
			}
		}
		cache.K[li] = k
		cache.V[li] = v
	}
	ctx, err := m.attention(q, k, v, past)
	if err != nil {
		return nil, err
	}
	recordStats(l.wo, ctx)
	attnOut, err := l.wo.apply(ctx)
	if err != nil {
		return nil, err
	}
	if err := attnOut.Add(resid); err != nil {
		return nil, err
	}
	resid2 := attnOut.Clone()
	if err := attnOut.LayerNormRows(l.ln2g, l.ln2b); err != nil {
		return nil, err
	}
	recordStats(l.fc1, attnOut)
	hid, err := l.fc1.apply(attnOut)
	if err != nil {
		return nil, err
	}
	hid.GELU()
	recordStats(l.fc2, hid)
	out, err := l.fc2.apply(hid)
	if err != nil {
		return nil, err
	}
	if err := out.Add(resid2); err != nil {
		return nil, err
	}
	return out, nil
}

// attention computes multi-head causal attention. q has rows = new tokens;
// k, v include `past` cached rows.
func (m *Model) attention(q, k, v *tensor.Matrix, past int) (*tensor.Matrix, error) {
	nh := m.Cfg.Heads
	dh := m.Cfg.Hidden / nh
	out := tensor.New(q.Rows, m.Cfg.Hidden)
	scale := 1 / math.Sqrt(float64(dh))
	for hIdx := 0; hIdx < nh; hIdx++ {
		qh := headSlice(q, hIdx, dh)
		kh := headSlice(k, hIdx, dh)
		vh := headSlice(v, hIdx, dh)
		scores, err := tensor.MatMulT(qh, kh)
		if err != nil {
			return nil, err
		}
		scores.Scale(scale)
		scores.CausalMask(past)
		scores.SoftmaxRows()
		ctx, err := tensor.MatMul(scores, vh)
		if err != nil {
			return nil, err
		}
		for i := 0; i < ctx.Rows; i++ {
			copy(out.Row(i)[hIdx*dh:(hIdx+1)*dh], ctx.Row(i))
		}
	}
	return out, nil
}

func headSlice(m *tensor.Matrix, h, dh int) *tensor.Matrix {
	out := tensor.New(m.Rows, dh)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[h*dh:(h+1)*dh])
	}
	return out
}

// statsEnabled toggles activation-statistic capture (calibration pass).
var statsEnabled bool

func recordStats(l *linear, x *tensor.Matrix) {
	if !statsEnabled {
		return
	}
	l.InMean = x.Mean()
	l.InVar = x.Variance()
}

// CalibrateStats runs a forward pass over the calibration tokens with
// activation-statistics capture enabled, filling each linear's InMean/InVar.
// This is the paper's "calibration data from the C4 dataset" step (§2.4).
func (m *Model) CalibrateStats(tokens []int) error {
	statsEnabled = true
	defer func() { statsEnabled = false }()
	_, err := m.Forward(tokens, nil)
	return err
}

// LinearStats describes one quantizable operator for the indicator: its
// inner dimension D_W, full-precision weight range (for the scale), and
// calibrated input statistics.
type LinearStats struct {
	DW     int
	WMin   float64
	WMax   float64
	InMean float64
	InVar  float64
}

// LayerLinearStats exports the per-operator statistics of layer i.
func (m *Model) LayerLinearStats(i int) ([]LinearStats, error) {
	if i < 0 || i >= len(m.Layers) {
		return nil, fmt.Errorf("nn: layer %d out of range", i)
	}
	var out []LinearStats
	for _, lin := range m.Layers[i].linears() {
		minV, maxV := math.Inf(1), math.Inf(-1)
		for _, w := range lin.master.Data {
			if w < minV {
				minV = w
			}
			if w > maxV {
				maxV = w
			}
		}
		out = append(out, LinearStats{
			DW: lin.master.Rows, WMin: minV, WMax: maxV,
			InMean: lin.InMean, InVar: lin.InVar,
		})
	}
	return out, nil
}

// Generate samples `n` tokens autoregressively from the model starting at
// `prompt`, using temperature sampling. Used to build the evaluation corpus.
func (m *Model) Generate(prompt []int, n int, temp float64, rng *rand.Rand) ([]int, error) {
	seq := append([]int(nil), prompt...)
	cache := m.NewCache()
	logits, err := m.Forward(prompt, cache)
	if err != nil {
		return nil, err
	}
	for step := 0; step < n; step++ {
		last := logits.Row(logits.Rows - 1)
		tok := sample(last, temp, rng)
		seq = append(seq, tok)
		if len(seq) >= m.Cfg.MaxSeq {
			break
		}
		logits, err = m.Forward([]int{tok}, cache)
		if err != nil {
			return nil, err
		}
	}
	return seq, nil
}

func sample(logits []float64, temp float64, rng *rand.Rand) int {
	probs := make([]float64, len(logits))
	maxV := math.Inf(-1)
	for _, v := range logits {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range logits {
		p := math.Exp((v - maxV) / temp)
		probs[i] = p
		sum += p
	}
	u := rng.Float64() * sum
	for i, p := range probs {
		u -= p
		if u <= 0 {
			return i
		}
	}
	return len(probs) - 1
}

// CrossEntropy scores the model's next-token prediction over seq (teacher
// forcing) and returns mean negative log-likelihood in nats.
func (m *Model) CrossEntropy(seq []int) (float64, error) {
	if len(seq) < 2 {
		return 0, fmt.Errorf("nn: need at least 2 tokens, got %d", len(seq))
	}
	logits, err := m.Forward(seq[:len(seq)-1], nil)
	if err != nil {
		return 0, err
	}
	var total float64
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		maxV := math.Inf(-1)
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var lse float64
		for _, v := range row {
			lse += math.Exp(v - maxV)
		}
		lse = maxV + math.Log(lse)
		total += lse - row[seq[i+1]]
	}
	return total / float64(logits.Rows), nil
}
