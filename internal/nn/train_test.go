package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/quant"
)

var trainCfg = Config{Vocab: 24, Hidden: 16, FFN: 32, Layers: 2, Heads: 2, MaxSeq: 16, SensitivitySlope: 0}

func TestGradientsMatchFiniteDifferences(t *testing.T) {
	// The gold-standard backprop check: analytic gradients vs central
	// finite differences for randomly sampled parameters of every kind.
	m, err := New(trainCfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	seq := []int{1, 5, 9, 13, 2, 7}
	g := m.zeroGrads()
	if _, err := m.lossAndGrads(seq, g); err != nil {
		t.Fatal(err)
	}
	params := m.paramSlices()
	lossAt := func() float64 {
		// Working copies must track masters for the forward pass.
		for _, l := range m.Layers {
			for _, lin := range l.linears() {
				lin.work = lin.master.Clone()
			}
		}
		tp, err := m.forwardTape(seq[:len(seq)-1])
		if err != nil {
			t.Fatal(err)
		}
		var loss float64
		for i := 0; i < tp.logits.Rows; i++ {
			row := tp.logits.Row(i)
			maxV := math.Inf(-1)
			for _, v := range row {
				if v > maxV {
					maxV = v
				}
			}
			var sum float64
			for _, v := range row {
				sum += math.Exp(v - maxV)
			}
			loss += maxV + math.Log(sum) - row[seq[i+1]]
		}
		return loss / float64(tp.logits.Rows)
	}
	rng := rand.New(rand.NewSource(9))
	const h = 1e-6
	checked := 0
	for trial := 0; trial < 60; trial++ {
		pi := rng.Intn(len(params))
		if len(params[pi]) == 0 {
			continue
		}
		j := rng.Intn(len(params[pi]))
		orig := params[pi][j]
		params[pi][j] = orig + h
		up := lossAt()
		params[pi][j] = orig - h
		down := lossAt()
		params[pi][j] = orig
		numeric := (up - down) / (2 * h)
		analytic := g.bufs[pi][j]
		denom := math.Max(1e-6, math.Abs(numeric)+math.Abs(analytic))
		if math.Abs(numeric-analytic)/denom > 2e-3 {
			t.Errorf("param[%d][%d]: analytic %.8g vs numeric %.8g", pi, j, analytic, numeric)
		}
		checked++
	}
	if checked < 40 {
		t.Fatalf("only %d gradient checks ran", checked)
	}
	// Restore work copies.
	for _, l := range m.Layers {
		for _, lin := range l.linears() {
			lin.work = lin.master.Clone()
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	m, err := New(trainCfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(m, 3e-3)
	if err != nil {
		t.Fatal(err)
	}
	corpus := MarkovCorpus(trainCfg.Vocab, 16, 12, 7)
	first, err := tr.Step(corpus[:8])
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for step := 0; step < 120; step++ {
		last, err = tr.Step(corpus[(step%2)*8 : (step%2)*8+8])
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first*0.75 {
		t.Errorf("training barely moved: first loss %.4f, last %.4f", first, last)
	}
	// A trained model must beat chance (ln V) and approach the chain's
	// conditional entropy (ln 4 ≈ 1.39 for 4 successors).
	if last > math.Log(float64(trainCfg.Vocab))*0.8 {
		t.Errorf("loss %.4f still near chance %.4f", last, math.Log(float64(trainCfg.Vocab)))
	}
}

func TestTrainedModelQuantizationOrdering(t *testing.T) {
	// The point of training for this repo: quantization damage on a
	// TRAINED model must still be ordered 16 ≤ 8 ≤ 4 — now measured on
	// genuinely learned structure instead of random weights.
	m, err := New(trainCfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(m, 3e-3)
	if err != nil {
		t.Fatal(err)
	}
	// One corpus = one Markov chain; the chain supplies unlimited fresh
	// samples, so every step trains on new sequences (no memorization) and
	// the tail is held out for evaluation.
	const steps = 200
	corpus := MarkovCorpus(trainCfg.Vocab, steps*8+8, 16, 13)
	heldOut := corpus[steps*8:]
	for step := 0; step < steps; step++ {
		if _, err := tr.Step(corpus[step*8 : (step+1)*8]); err != nil {
			t.Fatal(err)
		}
	}
	ceAt := func(bits int) float64 {
		for i := range m.Layers {
			if err := m.SetLayerBits(i, bits, quant.Deterministic, nil); err != nil {
				t.Fatal(err)
			}
		}
		var total float64
		for _, seq := range heldOut {
			ce, err := m.CrossEntropy(seq)
			if err != nil {
				t.Fatal(err)
			}
			total += ce
		}
		return total / float64(len(heldOut))
	}
	ce16 := ceAt(16)
	ce8 := ceAt(8)
	ce4 := ceAt(4)
	ce3 := ceAt(3)
	if !(ce8 <= ce4 && ce4 <= ce3) {
		t.Errorf("trained-model CE ordering broken: 16→%.4f 8→%.4f 4→%.4f 3→%.4f", ce16, ce8, ce4, ce3)
	}
	if math.Abs(ce8-ce16) > 0.3*(ce3-ce16)+1e-9 {
		t.Errorf("trained INT8 delta %.4f not small vs INT3 %.4f", ce8-ce16, ce3-ce16)
	}
	// Held-out CE of the trained model must be far below chance.
	if ce16 > math.Log(float64(trainCfg.Vocab))*0.8 {
		t.Errorf("trained model CE %.4f near chance — training failed", ce16)
	}
}

func TestTrainerValidation(t *testing.T) {
	m, _ := New(trainCfg, 1)
	if _, err := NewTrainer(m, 0); err == nil {
		t.Error("expected lr error")
	}
	m.SetLayerBits(0, 8, quant.Deterministic, nil)
	if _, err := NewTrainer(m, 1e-3); err == nil {
		t.Error("expected quantized-layer error")
	}
	m.SetLayerBits(0, 16, quant.Deterministic, nil)
	tr, err := NewTrainer(m, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(nil); err == nil {
		t.Error("expected empty batch error")
	}
	if _, err := tr.Step([][]int{{1}}); err == nil {
		t.Error("expected short sequence error")
	}
}

func TestMarkovCorpusShape(t *testing.T) {
	c := MarkovCorpus(32, 5, 20, 1)
	if len(c) != 5 {
		t.Fatalf("%d sequences", len(c))
	}
	for _, seq := range c {
		if len(seq) != 20 {
			t.Fatalf("sequence length %d", len(seq))
		}
		for _, tok := range seq {
			if tok < 0 || tok >= 32 {
				t.Fatalf("token %d out of vocab", tok)
			}
		}
	}
	a := MarkovCorpus(32, 2, 10, 3)
	b := MarkovCorpus(32, 2, 10, 3)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("corpus not reproducible")
			}
		}
	}
}
