package nn

import (
	"math"
	"math/rand"
	"testing"
)

// kvGreedy generates greedily through the KV cache at the model's current
// KV precision.
func kvGreedy(t *testing.T, m *Model, prompt []int, n int) []int {
	t.Helper()
	seq := append([]int(nil), prompt...)
	cache := m.NewCache()
	logits, err := m.Forward(prompt, cache)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		row := logits.Row(logits.Rows - 1)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		seq = append(seq, best)
		if len(seq) >= m.Cfg.MaxSeq {
			break
		}
		logits, err = m.Forward([]int{best}, cache)
		if err != nil {
			t.Fatal(err)
		}
	}
	return seq
}

func TestSetKVBitsValidation(t *testing.T) {
	m := newTestModel(t)
	if err := m.SetKVBits(4); err == nil {
		t.Error("expected error for 4-bit KV")
	}
	if err := m.SetKVBits(8); err != nil {
		t.Fatal(err)
	}
	if err := m.SetKVBits(16); err != nil {
		t.Fatal(err)
	}
}

func TestINT8KVNearLossless(t *testing.T) {
	// The ext-kv experiment assumes INT8 KV is near-lossless; verify with
	// real arithmetic: CE degradation from INT8 KV must be far smaller
	// than from INT8 *weights*.
	m := newTestModel(t)
	rng := rand.New(rand.NewSource(13))
	var corpus [][]int
	for i := 0; i < 4; i++ {
		seq, err := m.Generate([]int{3 + i, 7}, 30, 0.7, rng)
		if err != nil {
			t.Fatal(err)
		}
		corpus = append(corpus, seq)
	}
	// CrossEntropy uses no cache, so measure via cached decoding: compare
	// next-token logits along a sequence under each KV precision.
	meanDiv := func(kvBits int) float64 {
		if err := m.SetKVBits(16); err != nil {
			t.Fatal(err)
		}
		var ref [][]int
		for _, seq := range corpus {
			ref = append(ref, kvGreedy(t, m, seq[:4], 20))
		}
		if err := m.SetKVBits(kvBits); err != nil {
			t.Fatal(err)
		}
		var mismatch, total float64
		for si, seq := range corpus {
			got := kvGreedy(t, m, seq[:4], 20)
			for i := range ref[si] {
				if got[i] != ref[si][i] {
					mismatch++
				}
				total++
			}
		}
		if err := m.SetKVBits(16); err != nil {
			t.Fatal(err)
		}
		return mismatch / total
	}
	div8 := meanDiv(8)
	if div8 > 0.25 {
		t.Errorf("INT8 KV diverges from FP16 on %.0f%% of tokens — not near-lossless", div8*100)
	}
}

func TestKVQuantDeterministic(t *testing.T) {
	m := newTestModel(t)
	if err := m.SetKVBits(8); err != nil {
		t.Fatal(err)
	}
	a := kvGreedy(t, m, []int{5, 9, 2}, 12)
	b := kvGreedy(t, m, []int{5, 9, 2}, 12)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("INT8 KV decoding not deterministic")
		}
	}
}

func TestKVQuantCachedStillMatchesScale(t *testing.T) {
	// With INT8 KV, cached incremental decoding no longer matches the
	// uncached full forward bit-for-bit (the cache stores rounded values),
	// but logits must stay close.
	m := newTestModel(t)
	if err := m.SetKVBits(8); err != nil {
		t.Fatal(err)
	}
	seq := []int{3, 17, 54, 9, 21}
	full, err := m.Forward(seq, nil) // uncached: no quantization applied
	if err != nil {
		t.Fatal(err)
	}
	cache := m.NewCache()
	got, err := m.Forward(seq, cache)
	if err != nil {
		t.Fatal(err)
	}
	var maxDiff, scale float64
	for i := range full.Data {
		d := math.Abs(full.Data[i] - got.Data[i])
		if d > maxDiff {
			maxDiff = d
		}
		if a := math.Abs(full.Data[i]); a > scale {
			scale = a
		}
	}
	if maxDiff > 0.1*scale {
		t.Errorf("INT8 KV logit drift %.4g too large vs logit scale %.4g", maxDiff, scale)
	}
}
