package nn

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"os"

	"repro/internal/tensor"
)

// checkpoint is the on-disk format of a reference model (gob-encoded).
type checkpoint struct {
	Cfg    Config
	Embed  []float64
	Pos    []float64
	LNFg   []float64
	LNFb   []float64
	Layers []layerCheckpoint
}

type layerCheckpoint struct {
	W    [6][]float64 // wq wk wv wo fc1 fc2 master weights
	B    [6][]float64
	LN1g []float64
	LN1b []float64
	LN2g []float64
	LN2b []float64
}

// Save writes the model's full-precision parameters to path. The current
// quantization state is NOT saved — checkpoints always hold master
// weights, mirroring how real serving systems store FP16 checkpoints and
// quantize at load time (§5).
func (m *Model) Save(path string) error {
	ck := checkpoint{
		Cfg:   m.Cfg,
		Embed: m.Embed.Data,
		Pos:   m.Pos.Data,
		LNFg:  m.LNFg,
		LNFb:  m.LNFb,
	}
	for _, l := range m.Layers {
		var lc layerCheckpoint
		for i, lin := range l.linears() {
			lc.W[i] = lin.master.Data
			lc.B[i] = lin.bias
		}
		lc.LN1g, lc.LN1b = l.ln1g, l.ln1b
		lc.LN2g, lc.LN2b = l.ln2g, l.ln2b
		ck.Layers = append(ck.Layers, lc)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := gob.NewEncoder(w).Encode(&ck); err != nil {
		return fmt.Errorf("nn: encode checkpoint: %w", err)
	}
	return w.Flush()
}

// Load reads a checkpoint written by Save and reconstructs the model at
// full precision.
func Load(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ck checkpoint
	if err := gob.NewDecoder(bufio.NewReader(f)).Decode(&ck); err != nil {
		return nil, fmt.Errorf("nn: decode checkpoint %s: %w", path, err)
	}
	// Build a skeleton with the right shapes, then overwrite parameters.
	m, err := New(ck.Cfg, 0)
	if err != nil {
		return nil, err
	}
	if len(ck.Layers) != len(m.Layers) {
		return nil, fmt.Errorf("nn: checkpoint has %d layers, config says %d", len(ck.Layers), len(m.Layers))
	}
	if err := fill(m.Embed, ck.Embed, "embed"); err != nil {
		return nil, err
	}
	if err := fill(m.Pos, ck.Pos, "pos"); err != nil {
		return nil, err
	}
	if err := fillVec(m.LNFg, ck.LNFg, "lnf gain"); err != nil {
		return nil, err
	}
	if err := fillVec(m.LNFb, ck.LNFb, "lnf bias"); err != nil {
		return nil, err
	}
	for li, lc := range ck.Layers {
		l := m.Layers[li]
		for i, lin := range l.linears() {
			if err := fill(lin.master, lc.W[i], fmt.Sprintf("layer %d op %d", li, i)); err != nil {
				return nil, err
			}
			if err := fillVec(lin.bias, lc.B[i], fmt.Sprintf("layer %d bias %d", li, i)); err != nil {
				return nil, err
			}
			lin.work = lin.master.Clone()
		}
		if err := fillVec(l.ln1g, lc.LN1g, "ln1g"); err != nil {
			return nil, err
		}
		if err := fillVec(l.ln1b, lc.LN1b, "ln1b"); err != nil {
			return nil, err
		}
		if err := fillVec(l.ln2g, lc.LN2g, "ln2g"); err != nil {
			return nil, err
		}
		if err := fillVec(l.ln2b, lc.LN2b, "ln2b"); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func fill(dst *tensor.Matrix, src []float64, what string) error {
	if len(src) != len(dst.Data) {
		return fmt.Errorf("nn: checkpoint %s has %d values, want %d", what, len(src), len(dst.Data))
	}
	copy(dst.Data, src)
	return nil
}

func fillVec(dst, src []float64, what string) error {
	if len(src) != len(dst) {
		return fmt.Errorf("nn: checkpoint %s has %d values, want %d", what, len(src), len(dst))
	}
	copy(dst, src)
	return nil
}
