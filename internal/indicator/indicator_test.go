package indicator

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/quant"
)

var bits = []int{3, 4, 8, 16}

func calibratedModel(t *testing.T, layers int) (*nn.Model, [][]int) {
	t.Helper()
	cfg := nn.Config{Vocab: 128, Hidden: 32, FFN: 128, Layers: layers, Heads: 4, MaxSeq: 48, SensitivitySlope: 2.5}
	m, err := nn.New(cfg, 17)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	var calib [][]int
	for i := 0; i < 3; i++ {
		seq, err := m.Generate([]int{3 + i}, 24, 0.7, rng)
		if err != nil {
			t.Fatal(err)
		}
		calib = append(calib, seq)
	}
	if err := m.CalibrateStats(calib[0]); err != nil {
		t.Fatal(err)
	}
	return m, calib
}

func TestVarianceBasicShapeAndMonotonicity(t *testing.T) {
	m, _ := calibratedModel(t, 6)
	o, err := Variance(m, bits, quant.Deterministic)
	if err != nil {
		t.Fatal(err)
	}
	if o.Layers() != 6 {
		t.Fatalf("layers=%d want 6", o.Layers())
	}
	for li := 0; li < 6; li++ {
		w3, _ := o.At(li, 3)
		w4, _ := o.At(li, 4)
		w8, _ := o.At(li, 8)
		w16, _ := o.At(li, 16)
		if !(w3 > w4 && w4 > w8 && w8 > 0) {
			t.Errorf("layer %d: ω not decreasing in bits: 3→%.3g 4→%.3g 8→%.3g", li, w3, w4, w8)
		}
		if w16 != 0 {
			t.Errorf("layer %d: FP16 ω should be 0, got %.3g", li, w16)
		}
	}
}

func TestVarianceCapturesDepthSensitivity(t *testing.T) {
	// The reference model makes later layers more sensitive; the variance
	// indicator must see that (larger weight ranges → larger scale → ω).
	m, _ := calibratedModel(t, 8)
	o, err := Variance(m, bits, quant.Deterministic)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := o.At(0, 4)
	last, _ := o.At(7, 4)
	if last <= first {
		t.Errorf("deep layer ω %.3g should exceed shallow %.3g", last, first)
	}
}

func TestStochasticGreaterOrEqualDeterministic(t *testing.T) {
	m, _ := calibratedModel(t, 4)
	det, err := Variance(m, bits, quant.Deterministic)
	if err != nil {
		t.Fatal(err)
	}
	sto, err := Variance(m, bits, quant.Stochastic)
	if err != nil {
		t.Fatal(err)
	}
	// G_sto = (E²+Var)/6 vs G_det = Var/4: with post-layernorm activations
	// (mean≈0, var≈1) the ordering can go either way but both are positive;
	// just check both produce strictly positive finite values.
	for li := 0; li < 4; li++ {
		d, _ := det.At(li, 4)
		s, _ := sto.At(li, 4)
		if d <= 0 || s <= 0 {
			t.Errorf("layer %d: nonpositive ω det=%.3g sto=%.3g", li, d, s)
		}
	}
}

func TestHessianProbeAgreesWithVarianceOrdering(t *testing.T) {
	// Table 6: Hessian and variance indicators produce the same PPL — they
	// must broadly agree on which layers are sensitive.
	m, calib := calibratedModel(t, 8)
	v, err := Variance(m, bits, quant.Deterministic)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Hessian(m, bits, calib)
	if err != nil {
		t.Fatal(err)
	}
	rho, err := SpearmanCorrelation(v, h, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.3 {
		t.Errorf("variance vs hessian rank correlation %.2f too low", rho)
	}
}

func TestHessianMuchSlowerThanVariance(t *testing.T) {
	// Table 6's overhead column: the Hessian probe costs orders of
	// magnitude more than the analytic indicator.
	m, calib := calibratedModel(t, 8)
	start := time.Now()
	if _, err := Variance(m, bits, quant.Deterministic); err != nil {
		t.Fatal(err)
	}
	tVar := time.Since(start)
	start = time.Now()
	if _, err := Hessian(m, bits, calib); err != nil {
		t.Fatal(err)
	}
	tHess := time.Since(start)
	if tHess < 10*tVar {
		t.Errorf("hessian %.3gms should dwarf variance %.3gms", float64(tHess.Microseconds())/1000, float64(tVar.Microseconds())/1000)
	}
}

func TestHessianRestoresModel(t *testing.T) {
	m, calib := calibratedModel(t, 4)
	before, err := m.CrossEntropy(calib[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Hessian(m, bits, calib); err != nil {
		t.Fatal(err)
	}
	after, err := m.CrossEntropy(calib[0])
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Errorf("hessian probe must restore weights: CE %.6f → %.6f", before, after)
	}
	if _, err := Hessian(m, bits, nil); err == nil {
		t.Error("expected calibration-needed error")
	}
}

func TestRandomReproducibleAndOrdered(t *testing.T) {
	a := Random(10, bits, 5)
	b := Random(10, bits, 5)
	for i := 0; i < 10; i++ {
		for _, bit := range bits {
			x, _ := a.At(i, bit)
			y, _ := b.At(i, bit)
			if x != y {
				t.Fatal("same seed must reproduce")
			}
		}
		w3, _ := a.At(i, 3)
		w8, _ := a.At(i, 8)
		if w3 <= w8 {
			t.Errorf("layer %d: random ω should still decrease with bits", i)
		}
	}
	c := Random(10, bits, 6)
	x, _ := a.At(0, 4)
	y, _ := c.At(0, 4)
	if x == y {
		t.Error("different seeds should differ")
	}
}

func TestSyntheticMatchesConfig(t *testing.T) {
	o := Synthetic(model.OPT30B, bits, 1)
	if o.Layers() != model.OPT30B.Layers {
		t.Fatalf("layers=%d want %d", o.Layers(), model.OPT30B.Layers)
	}
	// Depth trend holds on average across first/last quarters.
	var lo, hi float64
	q := o.Layers() / 4
	for i := 0; i < q; i++ {
		v, _ := o.At(i, 4)
		lo += v
		v, _ = o.At(o.Layers()-1-i, 4)
		hi += v
	}
	if hi <= lo {
		t.Errorf("synthetic ω should grow with depth: head %.3g vs tail %.3g", lo, hi)
	}
	total, err := o.Total(uniformAssignment(o.Layers(), 4))
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Error("total ω should be positive")
	}
}

func uniformAssignment(n, b int) []int {
	a := make([]int, n)
	for i := range a {
		a[i] = b
	}
	return a
}

func TestOmegaErrors(t *testing.T) {
	o := Random(4, bits, 1)
	if _, err := o.At(9, 4); err == nil {
		t.Error("expected layer range error")
	}
	if _, err := o.At(0, 5); err == nil {
		t.Error("expected unknown bits error")
	}
	if _, err := o.Total([]int{4}); err == nil {
		t.Error("expected assignment length error")
	}
	if _, err := SpearmanCorrelation(o, Random(5, bits, 2), 4); err == nil {
		t.Error("expected layer mismatch error")
	}
}
