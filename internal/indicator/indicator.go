// Package indicator produces the per-(layer, bitwidth) model-quality
// perturbation scores ω that the assigner's objective trades against
// latency (paper §4.2).
//
// Three generators are provided, mirroring Table 6:
//
//   - Variance: the paper's contribution (Proposition 2) — an analytic
//     upper bound on the output variance a quantized linear operator adds,
//     computed from weight ranges and calibrated activation statistics in
//     one pass. Cheap.
//   - Hessian: the HAWQ-style baseline — per-layer curvature probed by
//     actually quantizing each layer at each bitwidth and measuring the
//     loss increase on calibration data. Accurate but orders of magnitude
//     more expensive (the paper reports 58–73x).
//   - Random: the control baseline.
//
// For models too large to instantiate (OPT-13b+), Synthetic derives ω from
// the model's shape metadata with the same depth-increasing sensitivity
// profile the reference models exhibit.
package indicator

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/quant"
)

// Omega holds ω[layer][bitIndex] aligned with Bits.
type Omega struct {
	Bits   []int
	Values [][]float64 // [layer][len(Bits)]
}

// At returns ω for (layer, bits).
func (o Omega) At(layer, bits int) (float64, error) {
	if layer < 0 || layer >= len(o.Values) {
		return 0, fmt.Errorf("indicator: layer %d out of range [0,%d)", layer, len(o.Values))
	}
	for i, b := range o.Bits {
		if b == bits {
			return o.Values[layer][i], nil
		}
	}
	return 0, fmt.Errorf("indicator: bitwidth %d not in %v", bits, o.Bits)
}

// Layers returns the number of layers covered.
func (o Omega) Layers() int { return len(o.Values) }

// Total sums ω over an assignment bits[layer].
func (o Omega) Total(assignment []int) (float64, error) {
	if len(assignment) != o.Layers() {
		return 0, fmt.Errorf("indicator: assignment length %d != %d layers", len(assignment), o.Layers())
	}
	var sum float64
	for i, b := range assignment {
		v, err := o.At(i, b)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum, nil
}

// Variance computes the paper's variance indicator from a calibrated
// reference model: ω_{i,b} = Σ_o D_W · S_W(b)² · G(X_o), with
// G = Var[X]/4 for deterministic rounding and (E[X]² + Var[X])/6 for
// stochastic (Theorem 1 / Proposition 2). FP16 is defined as zero
// perturbation.
func Variance(m *nn.Model, bits []int, r quant.Rounding) (Omega, error) {
	o := Omega{Bits: bits}
	for li := 0; li < len(m.Layers); li++ {
		stats, err := m.LayerLinearStats(li)
		if err != nil {
			return Omega{}, err
		}
		row := make([]float64, len(bits))
		for bi, b := range bits {
			if b >= 16 {
				continue // reference precision: no perturbation
			}
			var w float64
			for _, s := range stats {
				scale := quant.ScaleFor(s.WMin, s.WMax, b)
				var g float64
				switch r {
				case quant.Stochastic:
					g = (s.InMean*s.InMean + s.InVar) / 6
				default:
					g = s.InVar / 4
				}
				w += float64(s.DW) * scale * scale * g
			}
			row[bi] = w
		}
		o.Values = append(o.Values, row)
	}
	return o, nil
}

// Hessian probes per-layer curvature empirically: for every (layer, bit) it
// quantizes just that layer, measures the cross-entropy increase over the
// calibration corpus, and restores the layer. This is the expensive
// baseline of Table 6.
func Hessian(m *nn.Model, bits []int, calib [][]int) (Omega, error) {
	if len(calib) == 0 {
		return Omega{}, fmt.Errorf("indicator: hessian probe needs calibration sequences")
	}
	baseline, err := meanCE(m, calib)
	if err != nil {
		return Omega{}, err
	}
	o := Omega{Bits: bits}
	for li := 0; li < len(m.Layers); li++ {
		row := make([]float64, len(bits))
		for bi, b := range bits {
			if b >= 16 {
				continue
			}
			if err := m.SetLayerBits(li, b, quant.Deterministic, nil); err != nil {
				return Omega{}, err
			}
			ce, err := meanCE(m, calib)
			if err != nil {
				return Omega{}, err
			}
			d := ce - baseline
			if d < 0 {
				d = 0
			}
			row[bi] = d
		}
		if err := m.SetLayerBits(li, 16, quant.Deterministic, nil); err != nil {
			return Omega{}, err
		}
		o.Values = append(o.Values, row)
	}
	return o, nil
}

func meanCE(m *nn.Model, calib [][]int) (float64, error) {
	var total float64
	for _, seq := range calib {
		ce, err := m.CrossEntropy(seq)
		if err != nil {
			return 0, err
		}
		total += ce
	}
	return total / float64(len(calib)), nil
}

// Random assigns seeded random sensitivities, preserving only the
// within-layer ordering (lower bits ≥ perturbation of higher bits) so the
// optimizer still behaves sanely — matching the Table 6 control.
func Random(layers int, bits []int, seed int64) Omega {
	rng := rand.New(rand.NewSource(seed))
	o := Omega{Bits: bits}
	for i := 0; i < layers; i++ {
		base := rng.Float64()
		row := make([]float64, len(bits))
		for bi, b := range bits {
			if b >= 16 {
				continue
			}
			row[bi] = base * math.Pow(2, float64(16-b)/3)
		}
		o.Values = append(o.Values, row)
	}
	return o
}

// Synthetic derives ω for a full-size model from its metadata: scale
// shrinks 2x per extra bit (so ω scales 4x per bit step down), sensitivity
// grows with depth like the reference models (Table 1 ordering), with a
// reproducible ripple so layers are not exactly interchangeable.
func Synthetic(cfg model.Config, bits []int, seed int64) Omega {
	rng := rand.New(rand.NewSource(seed))
	o := Omega{Bits: bits}
	h := float64(cfg.Hidden)
	for i := 0; i < cfg.Layers; i++ {
		depth := float64(i) / math.Max(1, float64(cfg.Layers-1))
		mag := (1 + 0.35*depth) * (1 + 0.08*rng.NormFloat64())
		// Weight std ~ mag/sqrt(h); symmetric range ≈ ±4σ.
		rangeW := 8 * mag / math.Sqrt(h)
		row := make([]float64, len(bits))
		for bi, b := range bits {
			if b >= 16 {
				continue
			}
			scale := rangeW / float64(quant.Levels(b)-1)
			// Six linear ops, D_W ≈ hidden, G(X) ≈ Var/4 with Var ≈ 1.
			row[bi] = 6 * h * scale * scale / 4
		}
		o.Values = append(o.Values, row)
	}
	return o
}

// SpearmanCorrelation computes rank correlation between two indicators at a
// given bitwidth — used to validate that the cheap variance indicator
// orders layers like the expensive Hessian probe (Table 6's "same PPL").
func SpearmanCorrelation(a, b Omega, bits int) (float64, error) {
	if a.Layers() != b.Layers() {
		return 0, fmt.Errorf("indicator: layer count mismatch %d vs %d", a.Layers(), b.Layers())
	}
	n := a.Layers()
	if n < 2 {
		return 0, fmt.Errorf("indicator: need ≥2 layers")
	}
	va := make([]float64, n)
	vb := make([]float64, n)
	for i := 0; i < n; i++ {
		x, err := a.At(i, bits)
		if err != nil {
			return 0, err
		}
		y, err := b.At(i, bits)
		if err != nil {
			return 0, err
		}
		va[i], vb[i] = x, y
	}
	ra := ranks(va)
	rb := ranks(vb)
	var d2 float64
	for i := range ra {
		d := ra[i] - rb[i]
		d2 += d * d
	}
	nf := float64(n)
	return 1 - 6*d2/(nf*(nf*nf-1)), nil
}

func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by value (n is small).
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && v[idx[j]] < v[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	r := make([]float64, len(v))
	for rank, i := range idx {
		r[i] = float64(rank)
	}
	return r
}
