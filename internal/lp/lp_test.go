package lp

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimpleMax(t *testing.T) {
	// max 3x+2y s.t. x+y≤4, x+3y≤6 → min -3x-2y; optimum x=4,y=0, obj=-12.
	p := &Problem{
		C:   []float64{-3, -2},
		Aub: [][]float64{{1, 1}, {1, 3}},
		Bub: []float64{4, 6},
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || !approx(r.Obj, -12, 1e-6) {
		t.Fatalf("got %v obj=%.6f, want optimal -12 (x=%v)", r.Status, r.Obj, r.X)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min x+y s.t. x+2y=4, x,y≥0 → y=2, x=0, obj=2.
	p := &Problem{
		C:   []float64{1, 1},
		Aeq: [][]float64{{1, 2}},
		Beq: []float64{4},
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || !approx(r.Obj, 2, 1e-6) {
		t.Fatalf("got %v obj=%.6f x=%v, want 2", r.Status, r.Obj, r.X)
	}
	if !approx(r.X[0]+2*r.X[1], 4, 1e-6) {
		t.Errorf("equality violated: x=%v", r.X)
	}
}

func TestInfeasible(t *testing.T) {
	// x ≤ 1 and x ≥ 3 (as -x ≤ -3).
	p := &Problem{
		C:   []float64{1},
		Aub: [][]float64{{1}, {-1}},
		Bub: []float64{1, -3},
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Infeasible {
		t.Fatalf("got %v, want infeasible", r.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with only x ≥ 0.
	p := &Problem{
		C:   []float64{-1},
		Aub: [][]float64{{-1}},
		Bub: []float64{0},
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Unbounded {
		t.Fatalf("got %v, want unbounded", r.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x ≤ -2  (x ≥ 2) → obj 2.
	p := &Problem{
		C:   []float64{1},
		Aub: [][]float64{{-1}},
		Bub: []float64{-2},
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || !approx(r.Obj, 2, 1e-6) {
		t.Fatalf("got %v obj=%.6f, want 2", r.Status, r.Obj)
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// A classically degenerate LP (Beale's example) must terminate under
	// Bland's rule.
	p := &Problem{
		C: []float64{-0.75, 150, -0.02, 6},
		Aub: [][]float64{
			{0.25, -60, -0.04, 9},
			{0.5, -90, -0.02, 3},
			{0, 0, 1, 0},
		},
		Bub: []float64{0, 0, 1},
	}
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || !approx(r.Obj, -0.05, 1e-6) {
		t.Fatalf("Beale: got %v obj=%.6f, want -0.05", r.Status, r.Obj)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(&Problem{}); err == nil {
		t.Error("expected empty-objective error")
	}
	if _, err := Solve(&Problem{C: []float64{1}, Aub: [][]float64{{1, 2}}, Bub: []float64{1}}); err == nil {
		t.Error("expected row-width error")
	}
	if _, err := Solve(&Problem{C: []float64{1}, Aeq: [][]float64{{1}}, Beq: []float64{}}); err == nil {
		t.Error("expected rhs-count error")
	}
}

func TestRandomLPsAgainstBruteForce(t *testing.T) {
	// Random small LPs with box constraints: compare simplex against a
	// dense grid search over the vertices of the box (the LP optimum of a
	// linear objective over box ∩ halfspaces is checked by feasibility
	// filtering of a fine grid; with a modest tolerance this catches gross
	// solver errors).
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		c := []float64{rng.NormFloat64(), rng.NormFloat64()}
		// Box 0 ≤ x ≤ 3 plus one random cut.
		a := []float64{rng.NormFloat64(), rng.NormFloat64()}
		b := rng.Float64()*4 + 0.5
		p := &Problem{
			C:   c,
			Aub: [][]float64{{1, 0}, {0, 1}, a},
			Bub: []float64{3, 3, b},
		}
		r, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != Optimal {
			continue // cut may make it infeasible only if b<0; skip others
		}
		// Grid check.
		best := math.Inf(1)
		const steps = 60
		for i := 0; i <= steps; i++ {
			for j := 0; j <= steps; j++ {
				x := 3 * float64(i) / steps
				y := 3 * float64(j) / steps
				if a[0]*x+a[1]*y > b+1e-9 {
					continue
				}
				v := c[0]*x + c[1]*y
				if v < best {
					best = v
				}
			}
		}
		if r.Obj > best+1e-6 {
			t.Errorf("trial %d: simplex obj %.6f worse than grid %.6f (c=%v a=%v b=%.3f)", trial, r.Obj, best, c, a, b)
		}
		if r.Obj < best-0.2 { // grid resolution slack
			t.Errorf("trial %d: simplex obj %.6f implausibly better than grid %.6f", trial, r.Obj, best)
		}
	}
}

func TestSolutionFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 4
		m := 3
		p := &Problem{C: make([]float64, n)}
		for j := range p.C {
			p.C[j] = rng.NormFloat64()
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = math.Abs(rng.NormFloat64()) // nonneg rows + positive rhs → bounded, feasible
			}
			p.Aub = append(p.Aub, row)
			p.Bub = append(p.Bub, rng.Float64()*5+1)
		}
		// Make objective nonnegative so min is bounded (x=0 feasible).
		for j := range p.C {
			p.C[j] = math.Abs(p.C[j])
		}
		r, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, r.Status)
		}
		for i, row := range p.Aub {
			var s float64
			for j := range row {
				s += row[j] * r.X[j]
			}
			if s > p.Bub[i]+1e-6 {
				t.Errorf("trial %d: constraint %d violated: %.6f > %.6f", trial, i, s, p.Bub[i])
			}
		}
		for j, x := range r.X {
			if x < -1e-9 {
				t.Errorf("trial %d: x[%d]=%.6g negative", trial, j, x)
			}
		}
		// With nonnegative objective, optimum is 0 at x=0.
		if !approx(r.Obj, 0, 1e-6) {
			t.Errorf("trial %d: obj %.6f, want 0", trial, r.Obj)
		}
	}
}

// TestSolveConcurrent hammers Solve with the same shared Problem from many
// goroutines; run under -race it proves the per-call-tableau concurrency
// contract the parallel assigner search depends on.
func TestSolveConcurrent(t *testing.T) {
	p := &Problem{
		C:   []float64{-3, -2},
		Aub: [][]float64{{1, 1}, {1, 3}},
		Bub: []float64{4, 6},
	}
	const workers = 8
	results := make([]Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 25; rep++ {
				results[w], errs[w] = Solve(p)
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		r := results[w]
		if r.Status != Optimal || !approx(r.Obj, -12, 1e-9) {
			t.Fatalf("worker %d: got %v obj=%.9f, want optimal -12", w, r.Status, r.Obj)
		}
		if !approx(r.X[0], 4, 1e-9) || !approx(r.X[1], 0, 1e-9) {
			t.Errorf("worker %d: x=%v, want [4 0]", w, r.X)
		}
		if r.Pivots != results[0].Pivots {
			t.Errorf("worker %d: pivots %d differ from worker 0's %d (solve not deterministic)", w, r.Pivots, results[0].Pivots)
		}
	}
}
