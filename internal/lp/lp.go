// Package lp is a dense two-phase tableau simplex solver for linear
// programs in the form
//
//	min  cᵀx
//	s.t. A_ub·x ≤ b_ub
//	     A_eq·x = b_eq
//	     x ≥ 0
//
// It is the substitute for the LP engine inside Gurobi that the paper's
// assigner calls (DESIGN.md §3): problem sizes here are small (thousands of
// variables at most), so a dense tableau with Bland's anti-cycling rule is
// both simple and fast enough. internal/ilp builds branch-and-bound on top.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Status is the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Problem is an LP in inequality/equality form. All x are implicitly ≥ 0.
type Problem struct {
	C   []float64   // objective coefficients, len n
	Aub [][]float64 // each row len n
	Bub []float64
	Aeq [][]float64
	Beq []float64
}

// Result is the solution.
type Result struct {
	Status Status
	X      []float64
	Obj    float64
	Pivots int // simplex pivots across both phases
}

// ErrMaxIter is returned when simplex exceeds its pivot budget.
var ErrMaxIter = errors.New("lp: iteration limit exceeded")

const eps = 1e-9

// Validate checks dimension consistency.
func (p *Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return errors.New("lp: empty objective")
	}
	if len(p.Aub) != len(p.Bub) {
		return fmt.Errorf("lp: %d ub rows but %d rhs", len(p.Aub), len(p.Bub))
	}
	if len(p.Aeq) != len(p.Beq) {
		return fmt.Errorf("lp: %d eq rows but %d rhs", len(p.Aeq), len(p.Beq))
	}
	for i, r := range p.Aub {
		if len(r) != n {
			return fmt.Errorf("lp: ub row %d has %d cols, want %d", i, len(r), n)
		}
	}
	for i, r := range p.Aeq {
		if len(r) != n {
			return fmt.Errorf("lp: eq row %d has %d cols, want %d", i, len(r), n)
		}
	}
	return nil
}

// Solve runs two-phase simplex.
//
// Solve is safe for concurrent use: the problem is only read (rows are
// copied into a fresh tableau) and every piece of solver state lives in
// that per-call tableau. The parallel assigner search relies on this —
// keep any future caching or scratch reuse goroutine-confined.
func Solve(p *Problem) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	n := len(p.C)
	mUB := len(p.Aub)
	mEQ := len(p.Aeq)
	m := mUB + mEQ

	// Columns: n structural + mUB slacks + m artificials.
	// Every row gets an artificial so that phase 1 always starts with an
	// identity basis; slack columns with +1 coefficient could serve as
	// basis for ≤ rows with b ≥ 0, but uniform artificials keep the code
	// simple and the sizes are small.
	total := n + mUB + m
	t := newTableau(m, total)

	for i := 0; i < mUB; i++ {
		copy(t.a[i], p.Aub[i])
		t.a[i][n+i] = 1 // slack
		t.b[i] = p.Bub[i]
	}
	for i := 0; i < mEQ; i++ {
		copy(t.a[mUB+i], p.Aeq[i])
		t.b[mUB+i] = p.Beq[i]
	}
	// Normalize to b ≥ 0.
	for i := 0; i < m; i++ {
		if t.b[i] < 0 {
			for j := 0; j < total; j++ {
				t.a[i][j] = -t.a[i][j]
			}
			t.b[i] = -t.b[i]
		}
	}
	// Artificial columns and initial basis.
	for i := 0; i < m; i++ {
		t.a[i][n+mUB+i] = 1
		t.basis[i] = n + mUB + i
	}

	// Phase 1: minimize sum of artificials.
	phase1 := make([]float64, total)
	for j := n + mUB; j < total; j++ {
		phase1[j] = 1
	}
	t.setObjective(phase1)
	st, err := t.iterate()
	if err != nil {
		return Result{}, err
	}
	if st == Unbounded {
		return Result{}, errors.New("lp: phase 1 unbounded (internal error)")
	}
	if t.objValue() > eps*math.Max(1, maxAbs(p.Bub, p.Beq)) {
		return Result{Status: Infeasible, Pivots: t.pivots}, nil
	}
	// Drive remaining artificials out of the basis where possible.
	t.purgeArtificials(n + mUB)

	// Phase 2: original objective, artificial columns frozen.
	phase2 := make([]float64, total)
	copy(phase2, p.C)
	t.forbidden = n + mUB
	t.setObjective(phase2)
	st, err = t.iterate()
	if err != nil {
		return Result{}, err
	}
	if st == Unbounded {
		return Result{Status: Unbounded, Pivots: t.pivots}, nil
	}
	x := make([]float64, n)
	for i, bi := range t.basis {
		if bi < n {
			x[bi] = t.b[i]
		}
	}
	var obj float64
	for j := range p.C {
		obj += p.C[j] * x[j]
	}
	return Result{Status: Optimal, X: x, Obj: obj, Pivots: t.pivots}, nil
}

func maxAbs(xs ...[]float64) float64 {
	m := 0.0
	for _, v := range xs {
		for _, x := range v {
			if a := math.Abs(x); a > m {
				m = a
			}
		}
	}
	return m
}

// tableau is a dense simplex tableau with reduced costs maintained by
// explicit pricing against the basis.
type tableau struct {
	m, n      int // rows, total columns
	a         [][]float64
	b         []float64
	c         []float64 // current objective (reduced costs)
	cObj      float64   // running -(objective value) of the basis
	basis     []int
	forbidden int // columns ≥ forbidden may not enter the basis (0 = none)
	pivots    int // pivot operations performed (both phases + purge)
}

func newTableau(m, n int) *tableau {
	t := &tableau{m: m, n: n, b: make([]float64, m), basis: make([]int, m)}
	t.a = make([][]float64, m)
	for i := range t.a {
		t.a[i] = make([]float64, n)
	}
	return t
}

func (t *tableau) setObjective(c []float64) {
	t.c = append([]float64(nil), c...)
	t.cObj = 0
	// Price out the basic columns so reduced costs are correct.
	for i, bi := range t.basis {
		if t.c[bi] != 0 {
			coef := t.c[bi]
			for j := 0; j < t.n; j++ {
				t.c[j] -= coef * t.a[i][j]
			}
			// Track objective constant via bObj.
			t.cObj -= coef * t.b[i]
		}
	}
}

// cObj accumulates -(objective value) of the current basis.
func (t *tableau) objValue() float64 { return -t.cObj }

func (t *tableau) pivot(row, col int) {
	t.pivots++
	p := t.a[row][col]
	inv := 1 / p
	for j := 0; j < t.n; j++ {
		t.a[row][j] *= inv
	}
	t.b[row] *= inv
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			t.a[i][j] -= f * t.a[row][j]
		}
		t.b[i] -= f * t.b[row]
	}
	f := t.c[col]
	if f != 0 {
		for j := 0; j < t.n; j++ {
			t.c[j] -= f * t.a[row][j]
		}
		t.cObj -= f * t.b[row]
	}
	t.basis[row] = col
}

// iterate runs simplex pivots until optimal or unbounded, using Bland's
// rule (smallest eligible index) which guarantees termination.
func (t *tableau) iterate() (Status, error) {
	limit := t.n
	if limit < t.m {
		limit = t.m
	}
	maxIter := 200 * (limit + 1)
	for iter := 0; iter < maxIter; iter++ {
		col := -1
		for j := 0; j < t.n; j++ {
			if t.forbidden > 0 && j >= t.forbidden {
				break
			}
			if t.c[j] < -eps {
				col = j
				break
			}
		}
		if col < 0 {
			return Optimal, nil
		}
		row := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][col] > eps {
				r := t.b[i] / t.a[i][col]
				if r < best-eps || (r < best+eps && (row < 0 || t.basis[i] < t.basis[row])) {
					best = r
					row = i
				}
			}
		}
		if row < 0 {
			return Unbounded, nil
		}
		t.pivot(row, col)
	}
	return Optimal, ErrMaxIter
}

// purgeArtificials pivots artificial variables out of the basis when a
// substitute column exists; rows where none exists are redundant and left
// with a zero-valued artificial.
func (t *tableau) purgeArtificials(artStart int) {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < artStart {
			continue
		}
		for j := 0; j < artStart; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				break
			}
		}
	}
}
