// Package chaos is the deterministic seeded fault injector behind the
// runtime's robustness story. LLM-PQ targets in-house heterogeneous
// clusters whose spare GPUs are exactly the ones that get preempted,
// fail, or straggle; the offline planner implicitly assumes the cluster
// it planned for is the cluster it serves on. This package models the
// ways that assumption breaks:
//
//   - KindCrash: a pipeline stage goes down at AtSec and (unless
//     Permanent) comes back RecoverySec later via the §5 on-the-fly
//     loader. Permanent crashes model device loss/preemption and are the
//     trigger for internal/failover's replanning loop.
//   - KindStraggler: a stage's compute slows by Factor for DurationSec
//     (thermal throttling, a noisy neighbour, a background job).
//   - KindSlowLink: the interconnect hop out of a stage slows by Factor
//     for DurationSec (congestion, a flapping NIC).
//   - KindKVAlloc: paged-KV allocations fail transiently with
//     probability Factor for DurationSec (memory pressure in online
//     serving; consumed by internal/online, ignored by the offline
//     engine).
//
// Everything is explicit-seed deterministic: a Schedule is plain data,
// and the Profile generator derives faults from a caller-supplied seed,
// so a fault run reproduces byte-for-byte (the -chaos-seed contract of
// llmpq-bench).
package chaos

import "fmt"

// Kind discriminates fault types.
type Kind int

const (
	// KindCrash takes a stage down at AtSec; it recovers after
	// RecoverySec unless Permanent.
	KindCrash Kind = iota
	// KindStraggler multiplies a stage's compute time by Factor during
	// [AtSec, AtSec+DurationSec).
	KindStraggler
	// KindSlowLink multiplies the transfer time of the edge leaving a
	// stage (stage → stage+1, and the tail stage's return hop) by Factor
	// during [AtSec, AtSec+DurationSec).
	KindSlowLink
	// KindKVAlloc makes paged-KV allocations fail with probability
	// Factor during [AtSec, AtSec+DurationSec) — online serving only.
	KindKVAlloc
	// KindConnDrop kills accepted control-plane connection Conn after it
	// has carried AfterFrames frames — a transient wire drop the client
	// heals with reconnect-and-backoff. Consumed by internal/dist's
	// fault-injecting listener; ignored by the in-process engine.
	KindConnDrop
	// KindPartition black-holes the control plane during [AtSec,
	// AtSec+DurationSec) measured in wall-clock seconds since the
	// listener opened: existing connections are severed and new ones
	// refused. Conn -1 targets every connection (the only supported
	// scope today). Consumed by internal/dist.
	KindPartition
	// KindNetDelay stalls each frame on connection Conn (-1 = all) by
	// DelaySec during [AtSec, AtSec+DurationSec) of wall-clock time —
	// the fault that trips per-round deadline propagation. Consumed by
	// internal/dist.
	KindNetDelay
	// KindCoordCrash kills the coordinator itself after AfterCalls
	// completed remote stage evaluations — the control-plane death the
	// journal/recovery path exists for. Counted in completed calls, not
	// wall time, so the crash point is deterministic. Consumed by
	// cmd/llmpq-dist (which arms Config.CoordFailAfter); ignored by the
	// in-process engine and the fault-injecting listener.
	KindCoordCrash
)

func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindStraggler:
		return "straggler"
	case KindSlowLink:
		return "slowlink"
	case KindKVAlloc:
		return "kvalloc"
	case KindConnDrop:
		return "conndrop"
	case KindPartition:
		return "partition"
	case KindNetDelay:
		return "netdelay"
	case KindCoordCrash:
		return "coordcrash"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Network reports whether the kind targets the distributed control
// plane's wire (realized by internal/dist's fault-injecting listener)
// rather than the simulated pipeline.
func (k Kind) Network() bool {
	switch k {
	case KindConnDrop, KindPartition, KindNetDelay:
		return true
	default:
		return false
	}
}

// Fault is one scheduled fault. Which fields matter depends on Kind; see
// the Kind constants.
type Fault struct {
	Kind  Kind
	Stage int // pipeline stage (ignored by KindKVAlloc)
	AtSec float64
	// RecoverySec is the crash downtime (KindCrash, non-permanent): the
	// device stalls but keeps its plan, state, and membership. It is
	// mutually exclusive with Permanent — a permanent loss that later
	// heals is a RecoverAfterSec schedule, not downtime.
	RecoverySec float64
	// Permanent marks a crash as unrecoverable device loss (KindCrash):
	// the device surrenders its state, the fleet replans without it.
	Permanent bool
	// RecoverAfterSec, when positive on a Permanent crash, is the heal
	// schedule: the lost device returns (fresh process, empty state)
	// that many seconds after the loss and may be replanned back in via
	// the failover restore path. Zero means the loss never heals.
	RecoverAfterSec float64
	// Flaps is the number of extra loss/rejoin cycles the healed device
	// goes through before its lease finally stabilizes (KindCrash with
	// RecoverAfterSec). Flap damping quarantines devices that exceed
	// the controller's tolerance.
	Flaps int
	// Factor is the slowdown multiplier (>= 1) for KindStraggler and
	// KindSlowLink, or the failure probability in (0, 1] for KindKVAlloc.
	Factor float64
	// DurationSec is the fault window for the windowed kinds.
	DurationSec float64
	// Conn is the 0-based accepted-connection ordinal targeted by the
	// network kinds; -1 targets every connection (KindPartition and
	// KindNetDelay only — KindConnDrop needs a specific connection).
	Conn int
	// AfterFrames is the frame count after which KindConnDrop severs its
	// connection (>= 1, counted over frames read server-side).
	AfterFrames int
	// AfterCalls is the completed-stage-call count after which
	// KindCoordCrash kills the coordinator (>= 1).
	AfterCalls int
	// DelaySec is the per-frame stall KindNetDelay injects.
	DelaySec float64
}

// EndSec returns when the fault stops acting: recovery for transient
// crashes, window end for windowed kinds, +Inf never happens — permanent
// crashes return AtSec (they act instantaneously and forever).
func (f Fault) EndSec() float64 {
	switch f.Kind {
	case KindCrash:
		if f.Permanent {
			return f.AtSec
		}
		return f.AtSec + f.RecoverySec
	default:
		return f.AtSec + f.DurationSec
	}
}

// activeAt reports whether a windowed fault covers virtual time t.
func (f Fault) activeAt(t float64) bool {
	return t >= f.AtSec && t < f.AtSec+f.DurationSec
}

// Validate checks one fault against a pipeline depth and an optional run
// horizon (0 = unbounded).
func (f Fault) Validate(stages int, horizonSec float64) error {
	if f.Kind != KindKVAlloc && f.Kind != KindCoordCrash && !f.Kind.Network() && (f.Stage < 0 || f.Stage >= stages) {
		return fmt.Errorf("chaos: %s fault stage %d out of [0,%d)", f.Kind, f.Stage, stages)
	}
	if f.AtSec < 0 {
		return fmt.Errorf("chaos: %s fault at negative time %g", f.Kind, f.AtSec)
	}
	if horizonSec > 0 && f.AtSec > horizonSec {
		return fmt.Errorf("chaos: %s fault at %.3fs is beyond the %.3fs run horizon", f.Kind, f.AtSec, horizonSec)
	}
	if f.Kind != KindCrash && (f.RecoverAfterSec != 0 || f.Flaps != 0) {
		return fmt.Errorf("chaos: %s fault cannot schedule a heal (RecoverAfterSec/Flaps are crash-only)", f.Kind)
	}
	switch f.Kind {
	case KindCrash:
		if f.RecoverySec < 0 {
			return fmt.Errorf("chaos: crash recovery %g is negative", f.RecoverySec)
		}
		if f.Permanent && f.RecoverySec != 0 {
			return fmt.Errorf("chaos: permanent crash cannot set RecoverySec %g (transient downtime); use RecoverAfterSec to schedule the heal", f.RecoverySec)
		}
		if f.RecoverAfterSec < 0 {
			return fmt.Errorf("chaos: crash RecoverAfterSec %g is negative", f.RecoverAfterSec)
		}
		if f.RecoverAfterSec > 0 && !f.Permanent {
			return fmt.Errorf("chaos: RecoverAfterSec %g only applies to permanent loss; transient downtime is RecoverySec", f.RecoverAfterSec)
		}
		if f.Flaps < 0 {
			return fmt.Errorf("chaos: crash flap count %d is negative", f.Flaps)
		}
		if f.Flaps > 0 && f.RecoverAfterSec == 0 {
			return fmt.Errorf("chaos: %d flaps without a RecoverAfterSec heal schedule", f.Flaps)
		}
	case KindStraggler, KindSlowLink:
		if f.Factor < 1 {
			return fmt.Errorf("chaos: %s factor %g must be >= 1", f.Kind, f.Factor)
		}
		if f.DurationSec <= 0 {
			return fmt.Errorf("chaos: %s duration %g must be positive", f.Kind, f.DurationSec)
		}
		if f.Permanent {
			return fmt.Errorf("chaos: %s fault cannot be permanent", f.Kind)
		}
	case KindKVAlloc:
		if f.Factor <= 0 || f.Factor > 1 {
			return fmt.Errorf("chaos: kvalloc failure probability %g outside (0,1]", f.Factor)
		}
		if f.DurationSec <= 0 {
			return fmt.Errorf("chaos: kvalloc duration %g must be positive", f.DurationSec)
		}
		if f.Permanent {
			return fmt.Errorf("chaos: kvalloc fault cannot be permanent")
		}
	case KindConnDrop:
		if f.Conn < 0 {
			return fmt.Errorf("chaos: conndrop needs a specific connection ordinal, got %d", f.Conn)
		}
		if f.AfterFrames < 1 {
			return fmt.Errorf("chaos: conndrop after %d frames, must be >= 1", f.AfterFrames)
		}
		if f.Permanent {
			return fmt.Errorf("chaos: conndrop fault cannot be permanent")
		}
	case KindPartition:
		if f.Conn < -1 {
			return fmt.Errorf("chaos: partition connection %d out of range (-1 = all)", f.Conn)
		}
		if f.DurationSec <= 0 {
			return fmt.Errorf("chaos: partition duration %g must be positive", f.DurationSec)
		}
		if f.Permanent {
			return fmt.Errorf("chaos: partition fault cannot be permanent")
		}
	case KindNetDelay:
		if f.Conn < -1 {
			return fmt.Errorf("chaos: netdelay connection %d out of range (-1 = all)", f.Conn)
		}
		if f.DelaySec <= 0 {
			return fmt.Errorf("chaos: netdelay delay %g must be positive", f.DelaySec)
		}
		if f.DurationSec <= 0 {
			return fmt.Errorf("chaos: netdelay duration %g must be positive", f.DurationSec)
		}
		if f.Permanent {
			return fmt.Errorf("chaos: netdelay fault cannot be permanent")
		}
	case KindCoordCrash:
		if f.AfterCalls < 1 {
			return fmt.Errorf("chaos: coordcrash after %d calls, must be >= 1", f.AfterCalls)
		}
		if f.Permanent {
			return fmt.Errorf("chaos: coordcrash fault cannot be permanent")
		}
	default:
		return fmt.Errorf("chaos: unknown fault kind %v", f.Kind)
	}
	return nil
}

// Schedule is a full fault plan for one serving run: plain data, fully
// determined by its fields — replaying the same schedule reproduces the
// same run byte-for-byte.
type Schedule struct {
	// Seed is the reproducibility handle: profile generation derives the
	// faults from it, and consumers (online KV-failure draws, retry
	// jitter) fold it into their own explicit seeds.
	Seed int64
	// HorizonSec, when positive, bounds fault start times: a fault
	// scheduled past the horizon can never fire and is a configuration
	// error, not a silent no-op.
	HorizonSec float64
	Faults     []Fault
}

// Validate checks every fault against the pipeline depth and the
// schedule's own horizon, and enforces at most one permanent device loss
// per schedule (the failover controller replans exactly once per loss;
// cascading losses are a separate, future scenario).
func (s *Schedule) Validate(stages int) error {
	if s == nil {
		return nil
	}
	if stages <= 0 {
		return fmt.Errorf("chaos: schedule for %d stages", stages)
	}
	if s.HorizonSec < 0 {
		return fmt.Errorf("chaos: negative horizon %g", s.HorizonSec)
	}
	perm := 0
	for i, f := range s.Faults {
		if err := f.Validate(stages, s.HorizonSec); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
		if f.Kind == KindCrash && f.Permanent {
			perm++
		}
	}
	if perm > 1 {
		return fmt.Errorf("chaos: %d permanent device losses in one schedule (at most one supported)", perm)
	}
	return nil
}

// Permanent returns the schedule's permanent device-loss fault, if any.
func (s *Schedule) Permanent() (Fault, bool) {
	if s == nil {
		return Fault{}, false
	}
	for _, f := range s.Faults {
		if f.Kind == KindCrash && f.Permanent {
			return f, true
		}
	}
	return Fault{}, false
}

// ComputeMult returns the product of straggler factors active on a stage
// at virtual time t (1 when none).
func (s *Schedule) ComputeMult(stage int, t float64) float64 {
	return s.multAt(KindStraggler, stage, t)
}

// CommMult returns the product of slow-link factors active on the edge
// leaving a stage at virtual time t (1 when none).
func (s *Schedule) CommMult(stage int, t float64) float64 {
	return s.multAt(KindSlowLink, stage, t)
}

func (s *Schedule) multAt(kind Kind, stage int, t float64) float64 {
	if s == nil {
		return 1
	}
	mult := 1.0
	for _, f := range s.Faults {
		if f.Kind == kind && f.Stage == stage && f.activeAt(t) {
			mult *= f.Factor
		}
	}
	return mult
}

// KVFailProb returns the combined probability that a paged-KV allocation
// fails at virtual time t: 1 − Π(1−pᵢ) over active KindKVAlloc windows.
func (s *Schedule) KVFailProb(t float64) float64 {
	if s == nil {
		return 0
	}
	ok := 1.0
	for _, f := range s.Faults {
		if f.Kind == KindKVAlloc && f.activeAt(t) {
			ok *= 1 - f.Factor
		}
	}
	return 1 - ok
}

// NetFaults returns the schedule's network faults (conn drops,
// partitions, frame delays) in schedule order — the subset
// internal/dist's fault-injecting listener realizes. The in-process
// engine ignores them, exactly as it ignores KV-allocation faults.
func (s *Schedule) NetFaults() []Fault {
	if s == nil {
		return nil
	}
	var out []Fault
	for _, f := range s.Faults {
		if f.Kind.Network() {
			out = append(out, f)
		}
	}
	return out
}

// CoordCrashAfter returns the call count of the schedule's coordinator
// crash, if one is scheduled (the first wins).
func (s *Schedule) CoordCrashAfter() (int, bool) {
	if s == nil {
		return 0, false
	}
	for _, f := range s.Faults {
		if f.Kind == KindCoordCrash {
			return f.AfterCalls, true
		}
	}
	return 0, false
}

// HasKVFaults reports whether any KV-allocation fault is scheduled.
func (s *Schedule) HasKVFaults() bool {
	if s == nil {
		return false
	}
	for _, f := range s.Faults {
		if f.Kind == KindKVAlloc {
			return true
		}
	}
	return false
}
