package chaos

import (
	"fmt"
	"math/rand"
	"sort"
)

// Profile names understood by New (and llmpq-bench -chaos-profile).
const (
	ProfileCrash      = "crash"       // one transient stage crash
	ProfilePermLoss   = "perm-loss"   // one permanent device loss mid-run
	ProfileStragglers = "stragglers"  // two compute stragglers + one slow link
	ProfileSlowLink   = "slow-link"   // one congested interconnect hop
	ProfileKVPressure = "kv-pressure" // transient KV-allocation failures (online)
	ProfileMixed      = "mixed"       // crash + straggler + slow link overlapping
	ProfileConnDrop   = "conn-drop"   // control-plane connection drops (dist)
	ProfilePartition  = "partition"   // control-plane partition window (dist)
	ProfileNetDelay   = "net-delay"   // control-plane frame delays (dist)
	ProfileCoordCrash = "coord-crash" // coordinator self-kill mid-run (dist)

	// ProfileFlap schedules a permanent loss that heals: the device
	// returns after RecoverAfterSec (possibly flapping first) and the
	// failover controller replans it back in after the dwell.
	ProfileFlap = "flap"
	// ProfilePartitionHeal is a long full partition (dist): leases
	// expire mid-window, the partition heals, and workers rejoin.
	ProfilePartitionHeal = "partition-heal"
)

// Profiles lists the known profile names, sorted.
func Profiles() []string {
	names := []string{
		ProfileCrash, ProfilePermLoss, ProfileStragglers,
		ProfileSlowLink, ProfileKVPressure, ProfileMixed,
		ProfileConnDrop, ProfilePartition, ProfileNetDelay,
		ProfileCoordCrash, ProfileFlap, ProfilePartitionHeal,
	}
	sort.Strings(names)
	return names
}

// New builds the named fault schedule for a pipeline of `stages` stages
// and a run expected to last horizonSec. All fault placement (which
// stage, when, how hard) derives from the explicit seed, so the same
// (name, seed, stages, horizonSec) tuple always yields the identical
// schedule. Fault start times land in the middle 60% of the horizon so
// they hit a busy pipeline rather than the ramp-up or drain.
func New(name string, seed int64, stages int, horizonSec float64) (*Schedule, error) {
	if stages <= 0 {
		return nil, fmt.Errorf("chaos: profile for %d stages", stages)
	}
	if horizonSec <= 0 {
		return nil, fmt.Errorf("chaos: profile needs a positive horizon, got %g", horizonSec)
	}
	rng := rand.New(rand.NewSource(seed))
	// at draws a start time in [0.2, 0.8) of the horizon.
	at := func() float64 { return horizonSec * (0.2 + 0.6*rng.Float64()) }
	stage := func() int { return rng.Intn(stages) }
	window := func() float64 { return horizonSec * (0.1 + 0.2*rng.Float64()) }

	s := &Schedule{Seed: seed, HorizonSec: horizonSec}
	switch name {
	case ProfileCrash:
		s.Faults = []Fault{{
			Kind: KindCrash, Stage: stage(), AtSec: at(),
			RecoverySec: horizonSec * (0.05 + 0.15*rng.Float64()),
		}}
	case ProfilePermLoss:
		s.Faults = []Fault{{
			Kind: KindCrash, Stage: stage(), AtSec: at(), Permanent: true,
		}}
	case ProfileStragglers:
		s.Faults = []Fault{
			{Kind: KindStraggler, Stage: stage(), AtSec: at(), Factor: 1.5 + 2*rng.Float64(), DurationSec: window()},
			{Kind: KindStraggler, Stage: stage(), AtSec: at(), Factor: 1.5 + 2*rng.Float64(), DurationSec: window()},
			{Kind: KindSlowLink, Stage: stage(), AtSec: at(), Factor: 2 + 3*rng.Float64(), DurationSec: window()},
		}
	case ProfileSlowLink:
		s.Faults = []Fault{{
			Kind: KindSlowLink, Stage: stage(), AtSec: at(),
			Factor: 3 + 5*rng.Float64(), DurationSec: window(),
		}}
	case ProfileKVPressure:
		s.Faults = []Fault{{
			Kind: KindKVAlloc, AtSec: at(),
			Factor: 0.3 + 0.4*rng.Float64(), DurationSec: window(),
		}}
	case ProfileMixed:
		s.Faults = []Fault{
			{Kind: KindCrash, Stage: stage(), AtSec: at(), RecoverySec: horizonSec * (0.05 + 0.1*rng.Float64())},
			{Kind: KindStraggler, Stage: stage(), AtSec: at(), Factor: 1.5 + 1.5*rng.Float64(), DurationSec: window()},
			{Kind: KindSlowLink, Stage: stage(), AtSec: at(), Factor: 2 + 2*rng.Float64(), DurationSec: window()},
		}
	// The network profiles target internal/dist's control plane. For
	// them `stages` bounds the connection ordinal (one initial
	// connection per worker, workers join in ordinal order) and
	// horizonSec is the expected wall-clock run length, not simulated
	// time. Frame-count triggers keep the conn-drop profile's injected
	// fault count — and hence the exported metrics — byte-reproducible
	// regardless of wall-clock jitter.
	case ProfileConnDrop:
		s.Faults = []Fault{{
			Kind: KindConnDrop, Conn: stage(), AfterFrames: 4 + rng.Intn(8),
		}}
	case ProfilePartition:
		s.Faults = []Fault{{
			Kind: KindPartition, Conn: -1, AtSec: at(), DurationSec: window(),
		}}
	case ProfileNetDelay:
		s.Faults = []Fault{{
			Kind: KindNetDelay, Conn: -1, AtSec: at(),
			DelaySec: 0.01 + 0.04*rng.Float64(), DurationSec: window(),
		}}
	case ProfileFlap:
		// Loss early in the busy window so the heal (loss + recover +
		// dwell) still lands inside the degraded run's decode tail. At
		// most one extra flap: below the controller's default quarantine
		// threshold, so the device is always replanned back in.
		s.Faults = []Fault{{
			Kind: KindCrash, Stage: stage(), AtSec: horizonSec * (0.2 + 0.2*rng.Float64()),
			Permanent:       true,
			RecoverAfterSec: horizonSec * (0.1 + 0.1*rng.Float64()),
			Flaps:           rng.Intn(2),
		}}
	case ProfilePartitionHeal:
		// A partition long enough for leases to expire before it heals
		// (the plain partition profile stays under the lease, so workers
		// only detach). Rejoin-enabled coordinators readmit afterwards.
		s.Faults = []Fault{{
			Kind: KindPartition, Conn: -1, AtSec: at(),
			DurationSec: horizonSec * (0.3 + 0.2*rng.Float64()),
		}}
	case ProfileCoordCrash:
		// Call-count triggered, like conn-drop's frame trigger: the crash
		// lands at the same evaluation on every run with this seed.
		s.Faults = []Fault{{
			Kind: KindCoordCrash, AfterCalls: 8 + rng.Intn(24),
		}}
	default:
		return nil, fmt.Errorf("chaos: unknown profile %q (have %v)", name, Profiles())
	}
	if err := s.Validate(stages); err != nil {
		return nil, fmt.Errorf("chaos: profile %q generated an invalid schedule: %w", name, err)
	}
	return s, nil
}
